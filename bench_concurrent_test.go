// Concurrency benchmarks for the sharded lease manager and the
// networked server under parallel clients. These quantify the scaling
// work of PR 1 (see BENCH_pr1.json for recorded before/after numbers):
// the global server mutex was replaced by lock-striped shards, and the
// O(all-data) deadline scan in ReadyWrites/NextDeadline by a per-shard
// expiry min-heap.
//
// Run with:
//
//	go test -bench='Parallel|Concurrent|Pending' -benchmem -cpu 1,8
package leases_test

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leases"
	"leases/internal/core"
	"leases/internal/vfs"
)

// BenchmarkManagerParallelGlobalMutex is the seed architecture at the
// manager layer: every operation funnels through one mutex around one
// Manager. It is the baseline BenchmarkShardedManagerParallel is
// measured against.
func BenchmarkManagerParallelGlobalMutex(b *testing.B) {
	var mu sync.Mutex
	m := core.NewManager(core.FixedTerm(10 * time.Second))
	now := time.Now()
	var next atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		worker := next.Add(1)
		client := core.ClientID(fmt.Sprintf("c%d", worker))
		i := 0
		for pb.Next() {
			d := vfs.Datum{Kind: vfs.FileData, Node: vfs.NodeID(uint64(worker)<<20 | uint64(i%4096) + 2)}
			mu.Lock()
			m.Grant(client, d, now)
			mu.Unlock()
			i++
		}
	})
}

// BenchmarkShardedManagerParallel is the same workload over the
// lock-striped ShardedManager: distinct data hash to distinct stripes,
// so parallel grants rarely contend on a lock.
func BenchmarkShardedManagerParallel(b *testing.B) {
	m := core.NewShardedManager(core.DefaultShards, core.FixedTerm(10*time.Second))
	now := time.Now()
	var next atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		worker := next.Add(1)
		client := core.ClientID(fmt.Sprintf("c%d", worker))
		i := 0
		for pb.Next() {
			d := vfs.Datum{Kind: vfs.FileData, Node: vfs.NodeID(uint64(worker)<<20 | uint64(i%4096) + 2)}
			m.Grant(client, d, now)
			i++
		}
	})
}

// BenchmarkManagerReadyWritesManyPending measures the deadline-timer
// path with many far-future pending writes outstanding: the seed scanned
// every datum on each ReadyWrites/NextDeadline call; the heap pops only
// due entries.
func BenchmarkManagerReadyWritesManyPending(b *testing.B) {
	for _, pending := range []int{100, 5000} {
		b.Run(fmt.Sprintf("pending=%d", pending), func(b *testing.B) {
			m := core.NewManager(core.FixedTerm(time.Hour))
			now := time.Now()
			for i := 0; i < pending; i++ {
				d := vfs.Datum{Kind: vfs.FileData, Node: vfs.NodeID(i + 2)}
				m.Grant("holder", d, now)
				m.SubmitWrite("writer", d, now)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := m.ReadyWrites(now); len(got) != 0 {
					b.Fatalf("unexpected ready writes: %d", len(got))
				}
				if _, ok := m.NextDeadline(); !ok {
					b.Fatal("expected a deadline")
				}
			}
		})
	}
}

// BenchmarkTCPConcurrentClients measures server throughput under 1, 8
// and 64 concurrent clients issuing lease-extension requests — the
// pure lease-manager hot path of the TCP deployment. Each client holds
// leases on its own file and its directory binding, so requests from
// different clients touch disjoint data and, post-sharding, mostly
// disjoint locks.
func BenchmarkTCPConcurrentClients(b *testing.B) {
	for _, nc := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("clients=%d", nc), func(b *testing.B) {
			srv := leases.NewServer(leases.ServerConfig{Term: time.Hour})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(ln)
			b.Cleanup(srv.Stop)
			st := srv.Store()
			clients := make([]*leases.Client, nc)
			for i := range clients {
				path := fmt.Sprintf("/bench-%d", i)
				a, err := st.Create(path, "root", vfs.DefaultPerm|vfs.WorldWrite)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := st.WriteFile(a.ID, []byte("contents")); err != nil {
					b.Fatal(err)
				}
				c, err := leases.Dial(ln.Addr().String(), leases.ClientConfig{ID: fmt.Sprintf("bench-%d", i)})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { c.Close() })
				if _, err := c.Read(path); err != nil {
					b.Fatal(err)
				}
				clients[i] = c
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for i, c := range clients {
				n := b.N / nc
				if i < b.N%nc {
					n++
				}
				wg.Add(1)
				go func(c *leases.Client, n int) {
					defer wg.Done()
					for j := 0; j < n; j++ {
						if err := c.ExtendAll(); err != nil {
							b.Error(err)
							return
						}
					}
				}(c, n)
			}
			wg.Wait()
		})
	}
}
