package leases_test

import (
	"net"
	"testing"
	"time"

	"leases"
	"leases/internal/vfs"
)

func TestFacadeEndToEnd(t *testing.T) {
	srv := leases.NewServer(leases.ServerConfig{Term: 10 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	defer func() { srv.Stop(); <-done }()

	srv.Store().Create("/bin", "root", vfs.DefaultPerm|vfs.WorldWrite)

	c, err := leases.Dial(ln.Addr().String(), leases.ClientConfig{ID: "ws1"})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	if err := c.Write("/bin", []byte("latex")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	for i := 0; i < 5; i++ {
		data, err := c.Read("/bin")
		if err != nil || string(data) != "latex" {
			t.Fatalf("Read: %q %v", data, err)
		}
	}
	if c.Metrics().ReadHits < 4 {
		t.Fatalf("ReadHits = %d", c.Metrics().ReadHits)
	}
}

func TestFacadeManagerHolder(t *testing.T) {
	m := leases.NewManager(leases.FixedTerm(10 * time.Second))
	h := leases.NewHolder(leases.HolderConfig{})
	now := time.Now()
	d := leases.Datum{Kind: vfs.FileData, Node: 5}
	g := m.Grant("c1", d, now)
	if !g.Leased {
		t.Fatal("grant refused")
	}
	h.ApplyGrant(d, 1, g.Term, now, now)
	if !h.Valid(d, now.Add(5*time.Second)) {
		t.Fatal("lease invalid")
	}
}

func TestChooseTerm(t *testing.T) {
	m := leases.VParams()
	// Unshared: any term helps → max.
	if got := leases.ChooseTerm(m, time.Second, 30*time.Second); got != 30*time.Second {
		t.Fatalf("unshared ChooseTerm = %v", got)
	}
	// Shared at V rates: a short finite term.
	m.S = 10
	got := leases.ChooseTerm(m, time.Second, 30*time.Second)
	if got < time.Second || got > 30*time.Second {
		t.Fatalf("shared ChooseTerm = %v", got)
	}
	// Heavy write sharing: zero.
	m.W = 10
	if got := leases.ChooseTerm(m, time.Second, 30*time.Second); got != 0 {
		t.Fatalf("write-hot ChooseTerm = %v", got)
	}
}

func TestInfiniteConstantExported(t *testing.T) {
	if leases.Infinite <= 0 {
		t.Fatal("Infinite not positive")
	}
}
