// Package leases is a Go implementation of leases, the time-based
// fault-tolerant mechanism for distributed file cache consistency of
// Gray & Cheriton (SOSP 1989).
//
// A lease is a contract given by a file server to a caching client:
// during the lease term, the server must obtain the client's approval
// before the covered datum may be written, so the client may serve reads
// from its cache without any server communication. When the term
// expires, the contract lapses by the passage of physical time alone —
// so a crashed or unreachable client delays conflicting writes by at
// most the remaining term and never causes inconsistency. Short terms
// (around ten seconds for workstation file workloads) capture nearly all
// of the caching benefit while keeping failure delays small.
//
// The package offers three levels of entry:
//
//   - A deployable networked file service: NewServer and Dial give a
//     TCP lease file server and write-through caching client
//     (internal/server, internal/client) over a versioned in-memory file
//     store (internal/vfs).
//
//   - The transport-free protocol core: NewManager (server side) and
//     NewHolder (client side) for embedding leases into other systems —
//     every method takes explicit time, so the protocol runs identically
//     under test clocks, simulated networks, and production transports.
//
//   - The paper's evaluation apparatus: the analytic model of §3.1
//     (Model, VParams), workload generators (internal/trace), and the
//     trace-driven simulator (internal/tracesim) that regenerates every
//     figure and headline number in the paper; see EXPERIMENTS.md.
//
// # Quickstart
//
//	srv := leases.NewServer(leases.ServerConfig{Term: 10 * time.Second})
//	go srv.ListenAndServe("127.0.0.1:7025")
//	// ...
//	c, err := leases.Dial("127.0.0.1:7025", leases.ClientConfig{ID: "ws1"})
//	data, err := c.Read("/bin/latex") // first read fetches + takes a lease
//	data, err = c.Read("/bin/latex")  // served from cache, no server traffic
//
// See examples/ for complete programs.
package leases

import (
	"time"

	"leases/internal/analytic"
	"leases/internal/client"
	"leases/internal/core"
	"leases/internal/server"
	"leases/internal/vfs"
)

// Infinite is the lease term that never expires — the revised-Andrew
// callback baseline. FixedTerm(0) is the check-on-every-use baseline.
const Infinite = core.Infinite

// Core protocol types, for embedding leases into other systems.
type (
	// Manager is the server side of the lease protocol: the lease table
	// and write-deferral queue. See core.NewManager.
	Manager = core.Manager
	// Holder is the client side: the record of held leases and their
	// effective terms. See core.NewHolder.
	Holder = core.Holder
	// HolderConfig sets the client's timing assumptions (ε, delivery).
	HolderConfig = core.HolderConfig
	// ClientID names a caching client.
	ClientID = core.ClientID
	// WriteID identifies a deferred write.
	WriteID = core.WriteID
	// TermPolicy chooses the lease term the server offers.
	TermPolicy = core.TermPolicy
	// FixedTerm grants every lease the same term.
	FixedTerm = core.FixedTerm
	// AdaptiveTerm picks terms from observed access rates using the
	// paper's analytic model (§4).
	AdaptiveTerm = core.AdaptiveTerm
	// InstalledSet implements the §4 installed-files optimization.
	InstalledSet = core.InstalledSet
	// Datum names one leasable unit: a file's contents or a directory's
	// name-to-file bindings.
	Datum = vfs.Datum
	// Attr describes a file or directory.
	Attr = vfs.Attr
	// Store is the versioned in-memory file store.
	Store = vfs.Store
)

// NewManager returns a server-side lease manager granting terms from
// policy.
func NewManager(policy TermPolicy, opts ...core.ManagerOption) *Manager {
	return core.NewManager(policy, opts...)
}

// NewHolder returns an empty client-side lease holder.
func NewHolder(cfg HolderConfig) *Holder { return core.NewHolder(cfg) }

// Token extension: leases generalized to non-write-through caches (§2,
// §6 — "tokens ... can be regarded as limited-term leases, but
// supporting non-write-through caches").
type (
	// TokenManager is the server side of the token protocol: shared
	// read tokens, exclusive write tokens, recalls and expiry.
	TokenManager = core.TokenManager
	// TokenHolder is the client side, with dirty-data (write-back)
	// tracking.
	TokenHolder = core.TokenHolder
	// TokenMode is TokenRead or TokenWrite.
	TokenMode = core.TokenMode
)

// Token modes.
const (
	TokenRead  = core.TokenRead
	TokenWrite = core.TokenWrite
)

// NewTokenManager returns a server-side token manager.
func NewTokenManager(policy TermPolicy) *TokenManager { return core.NewTokenManager(policy) }

// NewTokenHolder returns an empty client-side token holder.
func NewTokenHolder(cfg HolderConfig) *TokenHolder { return core.NewTokenHolder(cfg) }

// Networked deployment.
type (
	// Server is the TCP lease file server.
	Server = server.Server
	// ServerConfig parameterizes a server.
	ServerConfig = server.Config
	// Client is the write-through caching client.
	Client = client.Cache
	// ClientConfig parameterizes a client.
	ClientConfig = client.Config
	// ReadCall, WriteCall and ExtendCall are in-flight pipelined
	// operations: Client.StartRead / StartWrite / StartExtendAll issue
	// without waiting, the client's write coalescer batches the frames,
	// and Wait completes each one as its reply arrives (in any order).
	ReadCall   = client.ReadCall
	WriteCall  = client.WriteCall
	ExtendCall = client.ExtendCall
)

// NewServer creates a lease file server with an empty store.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// Dial connects a caching client to a server.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	return client.Dial(addr, cfg)
}

// Analytic model (§3.1).
type (
	// Model holds the analytic model parameters (Table 1): N, R, W, S,
	// message times and the clock allowance ε.
	Model = analytic.Params
)

// VParams returns the V-system parameters of Table 2 (see DESIGN.md for
// the reconstruction).
func VParams() Model { return analytic.VParams() }

// ChooseTerm suggests a lease term for the given model parameters: zero
// when leasing cannot help (α ≤ 1), otherwise a small multiple of the
// break-even threshold clamped to [min, max]. This is the calculation a
// server performs when setting terms dynamically (§4).
func ChooseTerm(m Model, min, max time.Duration) time.Duration {
	th := m.TermThreshold()
	switch {
	case th < 0:
		return 0
	case th == 0:
		return max
	}
	term := 10*th + m.Delivery() + m.Eps
	if term < min {
		term = min
	}
	if term > max {
		term = max
	}
	return term
}
