package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"leases/internal/core"
	"leases/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// promSnapshot builds a fixed, fully deterministic snapshot exercising
// every exposition section: manager counters, two shards, event
// totals, and one op histogram with observations in distinct buckets.
func promSnapshot() MetricsSnapshot {
	o := New(Config{RingSize: 8, Now: fixedClock()})
	o.Record(Event{Type: EvGrant})
	o.Record(Event{Type: EvGrant})
	o.Record(Event{Type: EvWriteDefer})
	o.ObserveOp("read", 200*time.Microsecond)
	o.ObserveOp("read", 200*time.Microsecond)
	o.ObserveOp("read", 30*time.Millisecond)
	o.ObserveOp("write", 20*time.Second) // overflow bucket
	o.ObserveFlush(1, 96)
	o.ObserveFlush(12, 4000)
	o.ObserveFlush(300, 2<<20) // overflow buckets
	ff, fb := o.FlushStats()
	return MetricsSnapshot{
		Manager: core.ManagerMetrics{
			Grants: 12, Refusals: 3, WritesImmediate: 4, WritesDeferred: 2,
			ApprovalsApplied: 5, ExpiryReleases: 1, Releases: 6,
		},
		Shards: []core.ManagerMetrics{
			{Grants: 8, WritesDeferred: 2},
			{Grants: 4},
		},
		LeaseCount:    7,
		Events:        o.EventCounts(),
		Ops:           o.OpLatencies(),
		FlushFrames:   ff,
		FlushBytes:    fb,
		ReplicaRole:   "master",
		ReplicaMaster: 1,
	}
}

// TestWritePromGolden pins the Prometheus text exposition format: any
// change to metric names, label sets, bucket bounds or float rendering
// shows up as a golden diff and must be deliberate.
func TestWritePromGolden(t *testing.T) {
	snap := promSnapshot()
	var buf bytes.Buffer
	WriteProm(&buf, &snap)

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition format drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWritePromWellFormed(t *testing.T) {
	snap := promSnapshot()
	var buf bytes.Buffer
	WriteProm(&buf, &snap)
	out := buf.String()

	for _, want := range []string{
		"leases_grants_total 12",
		"leases_lease_records 7",
		`leases_shard_grants_total{shard="0"} 8`,
		`leases_shard_writes_deferred_total{shard="1"} 0`,
		`leases_events_total{type="grant"} 2`,
		`leases_op_latency_seconds_bucket{op="read",le="+Inf"} 3`,
		`leases_op_latency_seconds_count{op="write"} 1`,
		`lease_replica_role{role="master"} 1`,
		`lease_replica_role{role="follower"} 0`,
		`lease_replica_master_index 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Histogram buckets must be cumulative: the 30ms read lands in the
	// 0.05 bucket, so le="0.05" carries all three observations.
	if !strings.Contains(out, `leases_op_latency_seconds_bucket{op="read",le="0.05"} 3`) {
		t.Errorf("buckets not cumulative:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// A standalone server (empty ReplicaRole) exposes no replication
// metrics at all — the gauge appearing is the signal that the server
// is part of a replica set.
func TestWritePromStandaloneOmitsRole(t *testing.T) {
	snap := promSnapshot()
	snap.ReplicaRole = ""
	var buf bytes.Buffer
	WriteProm(&buf, &snap)
	if strings.Contains(buf.String(), "lease_replica_") {
		t.Errorf("standalone exposition leaks replica metrics:\n%s", buf.String())
	}
}

func TestDumpText(t *testing.T) {
	snap := promSnapshot()
	o := New(Config{RingSize: 8, Now: fixedClock()})
	o.Record(Event{Type: EvExpire, WriteID: 5, Shard: 1})
	var buf bytes.Buffer
	DumpText(&buf, &snap, o.Events(10))
	out := buf.String()
	for _, want := range []string{
		"leases_grants_total", "shard 0", "op read", "p95=", "expire", "write=5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

// sanity: the latency bounds used by ObserveOp match stats' defaults,
// so the golden bucket layout tracks LatencyBounds.
func TestOpHistogramUsesLatencyBounds(t *testing.T) {
	o := New(Config{RingSize: 8})
	o.ObserveOp("x", time.Millisecond)
	got := o.OpLatencies()[0].Hist.Bounds
	want := stats.LatencyBounds()
	if len(got) != len(want) {
		t.Fatalf("bounds len %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("bound %d = %v, want %v", i, got[i], want[i])
		}
	}
}
