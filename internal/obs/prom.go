package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"leases/internal/core"
	"leases/internal/stats"
)

// MetricsSnapshot gathers everything the /metrics endpoint (and the
// SIGUSR1 stderr dump) exports: the lease manager's protocol counters,
// the same counters per shard (so stripe imbalance is visible), the
// live lease-record count, and the observer's event totals, latency
// histograms and write-coalescer flush digests.
type MetricsSnapshot struct {
	Manager    core.ManagerMetrics
	Shards     []core.ManagerMetrics
	LeaseCount int
	Events     []EventCount
	Ops        []OpLatency
	// FlushFrames/FlushBytes are the coalescer batch-size digests
	// (frames and bytes per flush syscall); zero-count when no flush
	// has been observed.
	FlushFrames stats.HistogramSnapshot
	FlushBytes  stats.HistogramSnapshot
	// ReplicaRole is this server's replication role ("master",
	// "candidate", "follower"); empty on a standalone server, which
	// suppresses the lease_replica_role gauge. ReplicaMaster is the
	// believed master's replica index (-1 unknown).
	ReplicaRole   string
	ReplicaMaster int
	// ShardRingEpoch/ShardGroup describe this server's place in a
	// sharded deployment: the ring epoch it serves and its group ID.
	// A zero epoch means unsharded and suppresses the lease_shard_*
	// gauges (ring epochs start at 1).
	ShardRingEpoch uint64
	ShardGroup     int
	// Wire is the per-message-type traffic breakdown (frames and bytes,
	// by direction), already in its exposition order. Empty suppresses
	// the section.
	Wire []WireTraffic
}

// WireTraffic is one message type's traffic in one direction, as
// counted by proto.WireStats and converted by the endpoint that owns
// the counters.
type WireTraffic struct {
	Type   string // message type name ("extend", "broadcast-ext", ...)
	Dir    string // "in" or "out"
	Frames uint64
	Bytes  uint64
}

// managerCounters fixes the exposition order and naming of the
// core.ManagerMetrics fields.
var managerCounters = []struct {
	name, help string
	get        func(*core.ManagerMetrics) int64
}{
	{"leases_grants_total", "Leases granted or extended.",
		func(m *core.ManagerMetrics) int64 { return m.Grants }},
	{"leases_refusals_total", "Lease grants refused (write pending or zero-term policy).",
		func(m *core.ManagerMetrics) int64 { return m.Refusals }},
	{"leases_writes_immediate_total", "Writes applied with no conflicting leases.",
		func(m *core.ManagerMetrics) int64 { return m.WritesImmediate }},
	{"leases_writes_deferred_total", "Writes queued behind conflicting leases.",
		func(m *core.ManagerMetrics) int64 { return m.WritesDeferred }},
	{"leases_approvals_total", "Approval callbacks received and recorded.",
		func(m *core.ManagerMetrics) int64 { return m.ApprovalsApplied }},
	{"leases_expiry_releases_total", "Deferred writes released by lease expiry.",
		func(m *core.ManagerMetrics) int64 { return m.ExpiryReleases }},
	{"leases_releases_total", "Leases relinquished voluntarily.",
		func(m *core.ManagerMetrics) int64 { return m.Releases }},
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (hand-rolled; the repo takes no dependencies). The output is
// deterministic for a given snapshot — counters in fixed order, shards
// by index, ops pre-sorted by OpLatencies — and is pinned by a golden
// test.
func WriteProm(w io.Writer, s *MetricsSnapshot) {
	for _, c := range managerCounters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.get(&s.Manager))
	}

	fmt.Fprintf(w, "# HELP leases_lease_records Live lease records at the server.\n")
	fmt.Fprintf(w, "# TYPE leases_lease_records gauge\n")
	fmt.Fprintf(w, "leases_lease_records %d\n", s.LeaseCount)

	if s.ReplicaRole != "" {
		fmt.Fprintf(w, "# HELP lease_replica_role Replication role of this server (one-hot by role label).\n")
		fmt.Fprintf(w, "# TYPE lease_replica_role gauge\n")
		for _, role := range []string{"follower", "candidate", "master"} {
			v := 0
			if role == s.ReplicaRole {
				v = 1
			}
			fmt.Fprintf(w, "lease_replica_role{role=%q} %d\n", role, v)
		}
		fmt.Fprintf(w, "# HELP lease_replica_master_index Replica index this server believes is master (-1 unknown).\n")
		fmt.Fprintf(w, "# TYPE lease_replica_master_index gauge\n")
		fmt.Fprintf(w, "lease_replica_master_index %d\n", s.ReplicaMaster)
	}

	if s.ShardRingEpoch != 0 {
		fmt.Fprintf(w, "# HELP lease_shard_ring_epoch Ring epoch this server is serving.\n")
		fmt.Fprintf(w, "# TYPE lease_shard_ring_epoch gauge\n")
		fmt.Fprintf(w, "lease_shard_ring_epoch %d\n", s.ShardRingEpoch)
		fmt.Fprintf(w, "# HELP lease_shard_group_id Replica group this server belongs to.\n")
		fmt.Fprintf(w, "# TYPE lease_shard_group_id gauge\n")
		fmt.Fprintf(w, "lease_shard_group_id %d\n", s.ShardGroup)
	}

	if len(s.Shards) > 0 {
		fmt.Fprintf(w, "# HELP leases_shard_grants_total Leases granted or extended, by manager shard.\n")
		fmt.Fprintf(w, "# TYPE leases_shard_grants_total counter\n")
		for i := range s.Shards {
			fmt.Fprintf(w, "leases_shard_grants_total{shard=\"%d\"} %d\n", i, s.Shards[i].Grants)
		}
		fmt.Fprintf(w, "# HELP leases_shard_writes_deferred_total Writes queued behind leases, by manager shard.\n")
		fmt.Fprintf(w, "# TYPE leases_shard_writes_deferred_total counter\n")
		for i := range s.Shards {
			fmt.Fprintf(w, "leases_shard_writes_deferred_total{shard=\"%d\"} %d\n", i, s.Shards[i].WritesDeferred)
		}
	}

	if len(s.Events) > 0 {
		fmt.Fprintf(w, "# HELP leases_events_total Protocol trace events recorded, by type.\n")
		fmt.Fprintf(w, "# TYPE leases_events_total counter\n")
		for _, ec := range s.Events {
			fmt.Fprintf(w, "leases_events_total{type=%q} %d\n", ec.Type, ec.N)
		}
	}

	if len(s.Wire) > 0 {
		fmt.Fprintf(w, "# HELP leases_wire_frames_total Wire frames by message type and direction.\n")
		fmt.Fprintf(w, "# TYPE leases_wire_frames_total counter\n")
		for _, t := range s.Wire {
			fmt.Fprintf(w, "leases_wire_frames_total{type=%q,dir=%q} %d\n", t.Type, t.Dir, t.Frames)
		}
		fmt.Fprintf(w, "# HELP leases_wire_bytes_total Wire bytes (headers included) by message type and direction.\n")
		fmt.Fprintf(w, "# TYPE leases_wire_bytes_total counter\n")
		for _, t := range s.Wire {
			fmt.Fprintf(w, "leases_wire_bytes_total{type=%q,dir=%q} %d\n", t.Type, t.Dir, t.Bytes)
		}
	}

	if s.FlushFrames.Count > 0 {
		writePromHist(w, "leases_flush_frames",
			"Frames coalesced per flush syscall (connection queue depth at flush).", s.FlushFrames)
		writePromHist(w, "leases_flush_bytes",
			"Bytes written per flush syscall.", s.FlushBytes)
	}

	if len(s.Ops) > 0 {
		fmt.Fprintf(w, "# HELP leases_op_latency_seconds Server-side request latency by operation.\n")
		fmt.Fprintf(w, "# TYPE leases_op_latency_seconds histogram\n")
		for _, op := range s.Ops {
			var cum int64
			for i, bound := range op.Hist.Bounds {
				cum += op.Hist.Counts[i]
				fmt.Fprintf(w, "leases_op_latency_seconds_bucket{op=%q,le=%q} %d\n",
					op.Op, promFloat(bound), cum)
			}
			cum += op.Hist.Counts[len(op.Hist.Bounds)]
			fmt.Fprintf(w, "leases_op_latency_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", op.Op, cum)
			fmt.Fprintf(w, "leases_op_latency_seconds_sum{op=%q} %s\n", op.Op, promFloat(op.Hist.Sum))
			fmt.Fprintf(w, "leases_op_latency_seconds_count{op=%q} %d\n", op.Op, op.Hist.Count)
		}
	}
}

// writePromHist renders one unlabelled histogram in exposition format.
func writePromHist(w io.Writer, name, help string, h stats.HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum)
	}
	cum += h.Counts[len(h.Bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(h.Sum))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// promFloat formats a float the way Prometheus expects: shortest
// round-trip representation, +Inf spelled out.
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// DumpText renders an operator-readable summary — the SIGUSR1 /
// shutdown dump for servers running without the HTTP plane: every
// counter, per-op quantiles, per-shard grant/defer lines, and the last
// events in the ring.
func DumpText(w io.Writer, s *MetricsSnapshot, events []Event) {
	fmt.Fprintf(w, "== lease server metrics ==\n")
	for _, c := range managerCounters {
		fmt.Fprintf(w, "%-32s %d\n", c.name, c.get(&s.Manager))
	}
	fmt.Fprintf(w, "%-32s %d\n", "leases_lease_records", s.LeaseCount)
	for _, ec := range s.Events {
		fmt.Fprintf(w, "event %-26s %d\n", ec.Type, ec.N)
	}
	for i := range s.Shards {
		fmt.Fprintf(w, "shard %-3d grants=%d deferred=%d\n",
			i, s.Shards[i].Grants, s.Shards[i].WritesDeferred)
	}
	for _, op := range s.Ops {
		fmt.Fprintf(w, "op %-10s n=%d mean=%s p50=%s p95=%s p99=%s\n",
			op.Op, op.Hist.Count, promSeconds(op.Hist.Mean),
			promSeconds(op.Hist.P50), promSeconds(op.Hist.P95), promSeconds(op.Hist.P99))
	}
	if len(events) > 0 {
		fmt.Fprintf(w, "== last %d trace events ==\n", len(events))
		for _, ev := range events {
			fmt.Fprintf(w, "#%d %s %s client=%s datum=%v shard=%d",
				ev.Seq, ev.At.Format("15:04:05.000"), ev.Type, ev.Client, ev.Datum, ev.Shard)
			if ev.Term != 0 {
				fmt.Fprintf(w, " term=%v", ev.Term)
			}
			if ev.WriteID != 0 {
				fmt.Fprintf(w, " write=%d", ev.WriteID)
			}
			if ev.Wait != 0 {
				fmt.Fprintf(w, " wait=%v", ev.Wait)
			}
			fmt.Fprintln(w)
		}
	}
}

// promSeconds renders a quantile in seconds compactly, tolerating the
// +Inf overflow bound.
func promSeconds(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', 4, 64) + "s"
}
