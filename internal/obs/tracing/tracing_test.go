package tracing

import (
	"testing"
	"time"

	"leases/internal/clock"
)

func simNow(c *clock.Sim) func() time.Time { return c.Now }

// TestSpanTreeAssembly walks a trace shaped like a real write — root,
// dispatch child, two approval pushes, a replication ship — and checks
// the completed segment holds all spans with resolvable parents.
func TestSpanTreeAssembly(t *testing.T) {
	sim := clock.NewSim()
	tr := New(Config{Now: simNow(sim), Node: "s0", SampleRate: 1, Seed: 7})

	root := tr.StartRoot("client.write")
	if !root.Recording() {
		t.Fatal("sampled root not recording")
	}
	disp := tr.StartChild(root.Context(), "server.write")
	disp.SetFanout(2)
	p1 := tr.StartChild(disp.Context(), "approve.push")
	p2 := tr.StartChild(disp.Context(), "approve.push")
	sim.Advance(3 * time.Millisecond)
	p1.EndNote("approve")
	p2.EndNote("expire")
	ship := tr.StartChild(disp.Context(), "repl.ship")
	sim.Advance(1 * time.Millisecond)
	ship.EndNote("peer=1 ok")
	disp.End()
	sim.Advance(time.Millisecond)
	root.End()

	if n := tr.ActiveCount(); n != 0 {
		t.Fatalf("ActiveCount = %d after all spans ended", n)
	}
	got := tr.Recent(0)
	if len(got) != 1 {
		t.Fatalf("Recent: %d traces, want 1", len(got))
	}
	seg := got[0]
	if seg.Op != "client.write" || seg.ID != root.Context().TraceID {
		t.Fatalf("segment op=%q id=%x, want root's", seg.Op, seg.ID)
	}
	if len(seg.Spans) != 5 {
		t.Fatalf("segment has %d spans, want 5", len(seg.Spans))
	}
	if seg.Duration != 5*time.Millisecond {
		t.Fatalf("trace duration = %v, want 5ms", seg.Duration)
	}
	ids := map[SpanID]bool{}
	for _, s := range seg.Spans {
		ids[s.ID] = true
	}
	fanout := 0
	for _, s := range seg.Spans {
		if s.Parent != 0 && !ids[s.Parent] {
			t.Errorf("span %q parent %x not in segment", s.Name, s.Parent)
		}
		if s.End.Before(s.Start) {
			t.Errorf("span %q ends before it starts", s.Name)
		}
		if s.Name == "approve.push" && s.Parent == disp.Context().SpanID {
			fanout++
		}
	}
	for _, s := range seg.Spans {
		if s.Fanout != 0 && s.Fanout != fanout {
			t.Errorf("declared fanout %d, counted %d", s.Fanout, fanout)
		}
	}
}

// TestSamplingDeterministic pins that equal seeds make equal sampling
// decisions and that the rate roughly holds.
func TestSamplingDeterministic(t *testing.T) {
	decide := func(seed int64) []bool {
		tr := New(Config{SampleRate: 0.25, Seed: seed})
		out := make([]bool, 200)
		for i := range out {
			sp := tr.StartRoot("op")
			out[i] = sp.Recording()
			sp.End()
		}
		return out
	}
	a, b := decide(42), decide(42)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampling diverged at %d for equal seeds", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits < 20 || hits > 80 {
		t.Fatalf("rate 0.25 sampled %d/200", hits)
	}
	c := decide(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds made identical decisions")
	}
}

// TestUnsampledPropagation: a rejected root's context is invalid, and
// children of an invalid context never record.
func TestUnsampledPropagation(t *testing.T) {
	tr := New(Config{SampleRate: 0})
	root := tr.StartRoot("op")
	if root.Recording() {
		t.Fatal("rate-0 root recorded")
	}
	if root.Context().Valid() {
		t.Fatal("rejected root has valid context")
	}
	if ch := tr.StartChild(root.Context(), "child"); ch.Recording() {
		t.Fatal("child of unsampled context recorded")
	}
	// All methods on the zero Span are no-ops.
	root.Annotate("x")
	root.SetFanout(3)
	root.End()
	root.End()
}

// TestRemoteParentSegment: a child arriving with a wire context opens
// its own segment flagged Remote, as on a server receiving a traced
// request.
func TestRemoteParentSegment(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 1, Node: "srv"})
	wire := Context{TraceID: 0xabc, SpanID: 0xdef, Sampled: true}
	sp := tr.StartChild(wire, "server.write")
	sp.End()
	segs := tr.Recent(0)
	if len(segs) != 1 {
		t.Fatalf("%d segments, want 1", len(segs))
	}
	s := segs[0].Spans[0]
	if !s.Remote || s.Parent != 0xdef || s.Trace != 0xabc {
		t.Fatalf("remote span not flagged/linked: %+v", s)
	}
}

// TestLateRetryOpensNewSegment: after a TraceID completes, a late span
// (delayed duplicate of an at-least-once retry) must open a fresh
// segment, never mutate the completed one.
func TestLateRetryOpensNewSegment(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 3, RetainIndex: true})
	root := tr.StartRoot("client.write")
	ctx := root.Context()
	first := tr.StartChild(ctx, "server.write")
	first.End()
	root.End()
	if len(tr.Recent(0)) != 1 {
		t.Fatal("first segment not completed")
	}
	late := tr.StartChild(ctx, "server.write")
	if !late.Recording() {
		t.Fatal("late child not recorded")
	}
	if tr.ActiveCount() != 1 {
		t.Fatal("late child did not open a new segment")
	}
	late.End()
	segs := tr.Recent(0)
	if len(segs) != 2 {
		t.Fatalf("%d segments, want 2", len(segs))
	}
	if len(segs[1].Spans) != 2 {
		t.Fatalf("first segment grew to %d spans", len(segs[1].Spans))
	}
	if !tr.KnownSpan(ctx.TraceID, ctx.SpanID) {
		t.Fatal("index lost the root span")
	}
}

// TestAbandonNode force-ends a crashed node's spans and completes the
// segment.
func TestAbandonNode(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 5})
	root := tr.StartRootNode("c1", "client.write")
	srv := tr.StartChildNode("s0", root.Context(), "server.write")
	_ = srv
	tr.AbandonNode("s0", "crash")
	root.EndNote("given-up")
	segs := tr.Recent(0)
	if len(segs) != 1 {
		t.Fatalf("%d segments, want 1", len(segs))
	}
	if segs[0].Abandoned != 1 {
		t.Fatalf("Abandoned = %d, want 1", segs[0].Abandoned)
	}
	for _, s := range segs[0].Spans {
		if s.Node == "s0" && s.Note != "crash" {
			t.Fatalf("crashed span note = %q", s.Note)
		}
	}
	if _, _, abandoned, _ := tr.Stats(); abandoned != 1 {
		t.Fatalf("Stats abandoned = %d", abandoned)
	}
}

// TestEviction: exceeding MaxActive force-completes the oldest
// segment rather than growing without bound.
func TestEviction(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 9, MaxActive: 2})
	a := tr.StartRoot("a")
	b := tr.StartRoot("b")
	c := tr.StartRoot("c") // evicts a's segment
	if n := tr.ActiveCount(); n != 2 {
		t.Fatalf("ActiveCount = %d, want 2", n)
	}
	segs := tr.Recent(0)
	if len(segs) != 1 || segs[0].Op != "a" || segs[0].Abandoned != 1 {
		t.Fatalf("evicted segment wrong: %+v", segs)
	}
	if segs[0].Spans[0].Note != "evicted" {
		t.Fatalf("evicted span note = %q", segs[0].Spans[0].Note)
	}
	// Ending an evicted span later is harmless.
	a.End()
	b.End()
	c.End()
	if _, _, _, ev := tr.Stats(); ev != 1 {
		t.Fatalf("Stats evicted = %d", ev)
	}
}

// TestSlowestAndExemplars: the slow list orders by duration and each
// op/bucket exemplar points at a trace from that bucket.
func TestSlowestAndExemplars(t *testing.T) {
	sim := clock.NewSim()
	tr := New(Config{Now: simNow(sim), SampleRate: 1, Seed: 11, SlowN: 2})
	durs := []time.Duration{3 * time.Millisecond, 40 * time.Millisecond, 800 * time.Microsecond}
	for _, d := range durs {
		sp := tr.StartRoot("client.write")
		sim.Advance(d)
		sp.End()
	}
	slow := tr.Slowest(0)
	if len(slow) != 2 {
		t.Fatalf("Slowest kept %d, want 2", len(slow))
	}
	if slow[0].Duration != 40*time.Millisecond || slow[1].Duration != 3*time.Millisecond {
		t.Fatalf("slow order wrong: %v, %v", slow[0].Duration, slow[1].Duration)
	}
	exs := tr.Exemplars()
	if len(exs) != 3 {
		t.Fatalf("%d exemplars, want 3 distinct buckets", len(exs))
	}
	for _, ex := range exs {
		if ex.Op != "client.write" || ex.Trace == 0 || ex.N != 1 {
			t.Fatalf("bad exemplar %+v", ex)
		}
		if ex.Bucket > 0 && ex.Duration.Seconds() > ex.Bucket {
			t.Fatalf("exemplar %v above its bucket %v", ex.Duration, ex.Bucket)
		}
	}
}

// TestRecentRing: the completed ring keeps the newest N and Recent
// returns newest first.
func TestRecentRing(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 13, Completed: 4})
	for i := 0; i < 6; i++ {
		sp := tr.StartRoot("op")
		sp.End()
	}
	got := tr.Recent(0)
	if len(got) != 4 {
		t.Fatalf("ring kept %d, want 4", len(got))
	}
	if got2 := tr.Recent(2); len(got2) != 2 || got2[0] != got[0] {
		t.Fatal("Recent(2) not newest-first prefix")
	}
}

// TestNilTracer: every method on the nil tracer and zero span is a
// safe no-op.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	sp := tr.StartRoot("op")
	if sp.Recording() || sp.Context().Valid() {
		t.Fatal("nil tracer recorded")
	}
	sp.Annotate("x")
	sp.End()
	tr.StartChild(Context{TraceID: 1, SpanID: 2, Sampled: true}, "c").End()
	tr.AbandonNode("n", "crash")
	if tr.Recent(5) != nil || tr.Slowest(5) != nil || tr.Exemplars() != nil {
		t.Fatal("nil tracer returned data")
	}
	if tr.ActiveCount() != 0 || tr.KnownSpan(1, 2) {
		t.Fatal("nil tracer claims state")
	}
}

// TestAllocFreeTracingDisabled pins the disabled hot path: a nil
// tracer must allocate nothing on root, child, or span ops.
func TestAllocFreeTracingDisabled(t *testing.T) {
	var tr *Tracer
	ctx := Context{TraceID: 1, SpanID: 2, Sampled: true}
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.StartRoot("client.write")
		ch := tr.StartChild(ctx, "server.write")
		ch.Annotate("x")
		ch.End()
		sp.End()
	}); n != 0 {
		t.Fatalf("nil tracer allocates %v per op", n)
	}
}

// TestAllocFreeSamplerRejecting pins the enabled-but-rejected hot
// path: with the sampler turning a request down, StartRoot and the
// zero-span methods must allocate nothing.
func TestAllocFreeSamplerRejecting(t *testing.T) {
	tr := New(Config{SampleRate: 0, Seed: 17})
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.StartRoot("client.write")
		sp.SetFanout(2)
		sp.End()
		tr.StartChild(sp.Context(), "server.write").End()
	}); n != 0 {
		t.Fatalf("rejected sampling allocates %v per op", n)
	}
}

// TestAllocFreeUnsampledChild pins the server-side fast path: a frame
// that arrived without (or with unsampled) trace context must not
// allocate in StartChild even on an enabled, always-sampling tracer.
func TestAllocFreeUnsampledChild(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 19})
	if n := testing.AllocsPerRun(1000, func() {
		tr.StartChild(Context{}, "server.write").End()
	}); n != 0 {
		t.Fatalf("unsampled child allocates %v per op", n)
	}
}
