// Package tracing is the causal span model of the lease system: one
// TraceID follows a request across nodes — a client write through
// server dispatch, the approval fan-out to each lease holder, the
// replicate-before-apply shipping to each peer, and the reply — and a
// failover through its election, catch-up sync, promotion and §2
// recovery window. Where internal/obs records flat per-node events,
// tracing records trees: each span knows its parent, so "why did this
// write take 400ms" has an answer an operator can read off /traces.
//
// Cost model, matching obs: a nil *Tracer is the disabled state — every
// method nil-checks its receiver and returns a zero Span whose methods
// are no-ops, so instrumented hot paths cost one branch and zero
// allocations when tracing is off. An enabled tracer head-samples at
// the root: StartRoot draws from a seeded splitmix64 stream and, when
// the draw misses, returns the same zero Span — the rejected path also
// allocates nothing (both pinned by AllocsPerRun tests). Only sampled
// traces allocate, and only sampled contexts propagate on the wire.
//
// Time comes from an injected nanosecond clock (internal/clock's Now
// shape), so the simulated worlds (internal/check, internal/sim) and
// the real TCP deployment trace through the same code.
package tracing

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"leases/internal/stats"
)

// TraceID identifies one causal chain across nodes. Zero is "no trace".
type TraceID uint64

// SpanID identifies one span within a trace. Zero is "no parent".
type SpanID uint64

// MarshalJSON renders IDs as fixed-width hex, the conventional exchange
// form for trace identifiers.
func (id TraceID) MarshalJSON() ([]byte, error) {
	return json.Marshal(fmt.Sprintf("%016x", uint64(id)))
}

// MarshalJSON renders IDs as fixed-width hex.
func (id SpanID) MarshalJSON() ([]byte, error) {
	return json.Marshal(fmt.Sprintf("%016x", uint64(id)))
}

// Context is the wire-propagated trace context: which trace a request
// belongs to and which span is its remote parent. The zero Context
// means "not traced" and is what unsampled requests carry.
type Context struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled marks a head-sampled trace; only sampled contexts are
	// encoded on the wire or accepted by StartChild.
	Sampled bool
}

// Valid reports whether the context names a sampled trace.
func (c Context) Valid() bool { return c.Sampled && c.TraceID != 0 }

// SpanRec is one recorded span. Once its trace completes the record is
// immutable and safe to share with JSON encoders.
type SpanRec struct {
	Trace  TraceID `json:"trace"`
	ID     SpanID  `json:"id"`
	Parent SpanID  `json:"parent,omitempty"`
	// Remote marks a span whose parent arrived over the wire: the
	// parent span lives in another process's tracer, so it will not
	// resolve locally (the check world shares one tracer across model
	// nodes, where every parent does resolve).
	Remote bool      `json:"remote,omitempty"`
	Name   string    `json:"name"`
	Node   string    `json:"node,omitempty"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	// Note annotates the outcome: "approve", "expire", "timeout",
	// "peer=1 ok", "crash", …
	Note string `json:"note,omitempty"`
	// Fanout, when set, is the child fan-out width the recorder
	// expected under this span (the approval push count at a write
	// deferral) — the span-tree lens checks it against reality.
	Fanout int `json:"fanout,omitempty"`

	ended bool
}

// Duration is the span's recorded extent (zero while open).
func (r *SpanRec) Duration() time.Duration {
	if r.End.IsZero() {
		return 0
	}
	return r.End.Sub(r.Start)
}

// Trace is one locally assembled trace segment: every span this
// tracer recorded under one TraceID between the segment's first span
// and its completion. A distributed trace has one segment per process
// it touched; the check world's shared tracer assembles whole traces
// in one segment. A segment completes when its local root span has
// ended and no span in it remains open; a late re-appearance of the
// same TraceID (an at-least-once retry landing after the reply) opens
// a fresh segment rather than mutating a completed one.
type Trace struct {
	ID TraceID `json:"trace"`
	// Op is the local root span's name; Node its origin.
	Op    string    `json:"op"`
	Node  string    `json:"node,omitempty"`
	Start time.Time `json:"start"`
	// Duration is the local root span's extent.
	Duration time.Duration `json:"duration_ns"`
	Spans    []*SpanRec    `json:"spans"`
	// Abandoned counts spans force-ended by AbandonNode (a crash) or
	// segment eviction rather than by their recorder.
	Abandoned int `json:"abandoned,omitempty"`

	root      SpanID
	open      int
	rootEnded bool
	done      bool
}

// Span is a live handle on one recorded span. The zero Span is valid
// and disabled: every method is a no-op, Recording reports false, and
// Context returns the zero Context. Handles are value types; copy them
// freely, End them once.
type Span struct {
	t *Tracer
	r *SpanRec
}

// Recording reports whether the span actually records anything —
// the guard instrumented code uses before preparing annotations.
func (s Span) Recording() bool { return s.r != nil }

// Context returns the propagation context naming this span as parent.
func (s Span) Context() Context {
	if s.r == nil {
		return Context{}
	}
	return Context{TraceID: s.r.Trace, SpanID: s.r.ID, Sampled: true}
}

// Annotate sets the span's outcome note (last write wins).
func (s Span) Annotate(note string) {
	if s.r == nil {
		return
	}
	s.t.mu.Lock()
	if !s.r.ended {
		s.r.Note = note
	}
	s.t.mu.Unlock()
}

// SetFanout stamps the child fan-out width the recorder expects under
// this span, for the span-tree lens.
func (s Span) SetFanout(n int) {
	if s.r == nil {
		return
	}
	s.t.mu.Lock()
	if !s.r.ended {
		s.r.Fanout = n
	}
	s.t.mu.Unlock()
}

// End closes the span. Ending twice is a no-op.
func (s Span) End() { s.EndNote("") }

// EndNote closes the span with an outcome note (kept only if none was
// annotated earlier).
func (s Span) EndNote(note string) {
	if s.r == nil {
		return
	}
	s.t.endSpan(s.r, note, false)
}

// Config parameterizes a Tracer.
type Config struct {
	// Now supplies span timestamps; nil means time.Now. The check and
	// chaos worlds inject their simulated clocks here.
	Now func() time.Time
	// Node names this tracer's process ("s0", "client:w1"); stamped on
	// every span it records unless a *Node method overrides it.
	Node string
	// SampleRate is the head-sampling probability in [0,1]; 1 traces
	// everything (the checker's setting), 0 nothing. The draw is a
	// seeded splitmix64 stream, so equal seeds sample equal requests.
	SampleRate float64
	// Seed makes sampling and ID assignment deterministic; zero derives
	// an arbitrary (still fixed) default.
	Seed int64
	// MaxActive bounds concurrently open trace segments; beyond it the
	// oldest segment is force-completed (its open spans counted as
	// abandoned). Zero means 512.
	MaxActive int
	// Completed bounds the ring of finished segments kept for /traces.
	// Zero means 256.
	Completed int
	// SlowN bounds the top-by-duration list kept for /traces/slow.
	// Zero means 16.
	SlowN int
	// RetainIndex keeps a per-TraceID index of every span ID ever
	// recorded, so the span-tree lens can resolve parents across
	// segments (a retry re-opening a completed TraceID). Bounded runs
	// only — the checker sets it, servers must not.
	RetainIndex bool
}

// Tracer records spans, assembles trace segments, and keeps the
// completed ring, the slow list, and per-operation histogram-bucket
// exemplars. The nil Tracer is valid and disabled.
type Tracer struct {
	now  func() time.Time
	node string

	// sampling: sample when splitmix64(state++) <= threshold.
	threshold uint64
	state     atomic.Uint64

	maxActive int
	slowN     int

	mu        sync.Mutex
	active    map[TraceID]*Trace
	order     []TraceID // active segments in creation order, for eviction
	completed []*Trace  // ring
	compNext  int
	compFull  bool
	slow      []*Trace // sorted by Duration, descending
	exemplars map[string][]Exemplar
	bounds    []float64
	index     map[TraceID]map[SpanID]struct{} // RetainIndex only

	started   atomic.Int64
	finished  atomic.Int64
	abandoned atomic.Int64
	evicted   atomic.Int64
}

// New returns an enabled tracer.
func New(cfg Config) *Tracer {
	t := &Tracer{
		now:       cfg.Now,
		node:      cfg.Node,
		maxActive: cfg.MaxActive,
		slowN:     cfg.SlowN,
		active:    make(map[TraceID]*Trace),
		exemplars: make(map[string][]Exemplar),
		bounds:    stats.LatencyBounds(),
	}
	if t.now == nil {
		t.now = time.Now
	}
	if t.maxActive <= 0 {
		t.maxActive = 512
	}
	if t.slowN <= 0 {
		t.slowN = 16
	}
	n := cfg.Completed
	if n <= 0 {
		n = 256
	}
	t.completed = make([]*Trace, n)
	switch {
	case cfg.SampleRate >= 1:
		t.threshold = ^uint64(0)
	case cfg.SampleRate <= 0:
		t.threshold = 0
	default:
		t.threshold = uint64(cfg.SampleRate * float64(^uint64(0)))
	}
	seed := uint64(cfg.Seed)
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	t.state.Store(seed)
	if cfg.RetainIndex {
		t.index = make(map[TraceID]map[SpanID]struct{})
	}
	return t
}

// Enabled reports whether the tracer records anything at all.
func (t *Tracer) Enabled() bool { return t != nil }

// splitmix64 is the PRNG behind sampling and ID assignment: one atomic
// add plus a few multiplies, no allocation, deterministic per seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (t *Tracer) next() uint64 {
	return splitmix64(t.state.Add(0x9e3779b97f4a7c15))
}

// id draws a nonzero identifier.
func (t *Tracer) id() uint64 {
	for {
		if v := t.next(); v != 0 {
			return v
		}
	}
}

// StartRoot begins a new trace, applying the head sampler: a rejected
// draw returns the zero Span (and allocates nothing), and everything
// downstream of a rejected root stays untraced because the zero
// Context never propagates.
func (t *Tracer) StartRoot(name string) Span { return t.StartRootNode("", name) }

// StartRootNode is StartRoot with an explicit origin node name (the
// check world records many model nodes through one tracer).
func (t *Tracer) StartRootNode(node, name string) Span {
	if t == nil {
		return Span{}
	}
	if t.threshold == 0 || t.next() > t.threshold {
		return Span{}
	}
	return t.start(node, Context{TraceID: TraceID(t.id()), Sampled: true}, name, false)
}

// StartChild begins a span under parent — a local parent from
// Span.Context, or a remote one decoded off the wire. An invalid
// (unsampled) parent returns the zero Span without allocating: the
// sampling decision was made once, at the root.
func (t *Tracer) StartChild(parent Context, name string) Span {
	return t.StartChildNode("", parent, name)
}

// StartChildNode is StartChild with an explicit origin node name.
func (t *Tracer) StartChildNode(node string, parent Context, name string) Span {
	if t == nil || !parent.Valid() {
		return Span{}
	}
	return t.start(node, parent, name, true)
}

// start records a span. For roots, parent.SpanID is zero and remote is
// false; for children, parent names either a local span (same-process
// Context) or a remote one.
func (t *Tracer) start(node string, parent Context, name string, child bool) Span {
	if node == "" {
		node = t.node
	}
	r := &SpanRec{
		Trace:  parent.TraceID,
		ID:     SpanID(t.id()),
		Parent: parent.SpanID,
		Name:   name,
		Node:   node,
		Start:  t.now(),
	}
	t.started.Add(1)
	t.mu.Lock()
	tr := t.active[r.Trace]
	if tr == nil {
		tr = &Trace{ID: r.Trace, Op: name, Node: node, Start: r.Start, root: r.ID}
		// A child opening the segment means its parent is elsewhere:
		// over the wire in a distributed deployment, or in an already
		// completed segment of the same TraceID (an at-least-once
		// retry landing late).
		r.Remote = child
		t.active[r.Trace] = tr
		t.order = append(t.order, r.Trace)
		if len(t.active) > t.maxActive {
			t.evictOldestLocked()
		}
	}
	tr.Spans = append(tr.Spans, r)
	tr.open++
	if t.index != nil {
		ids := t.index[r.Trace]
		if ids == nil {
			ids = make(map[SpanID]struct{})
			t.index[r.Trace] = ids
		}
		ids[r.ID] = struct{}{}
	}
	t.mu.Unlock()
	return Span{t: t, r: r}
}

// endSpan closes one span and completes its segment when it was the
// last open span of an ended root.
func (t *Tracer) endSpan(r *SpanRec, note string, abandon bool) {
	now := t.now()
	t.mu.Lock()
	if r.ended {
		t.mu.Unlock()
		return
	}
	r.ended = true
	r.End = now
	if r.Note == "" {
		r.Note = note
	}
	tr := t.active[r.Trace]
	if tr == nil {
		// The segment was evicted under MaxActive pressure; the span's
		// record already left with it.
		t.mu.Unlock()
		return
	}
	tr.open--
	if abandon {
		tr.Abandoned++
	}
	if r.ID == tr.root {
		tr.rootEnded = true
		tr.Duration = r.End.Sub(tr.Start)
	}
	if tr.rootEnded && tr.open == 0 {
		t.completeLocked(tr)
	}
	t.mu.Unlock()
}

// completeLocked moves a segment to the completed ring, the slow list
// and the exemplar table. Callers hold t.mu.
func (t *Tracer) completeLocked(tr *Trace) {
	tr.done = true
	delete(t.active, tr.ID)
	for i, id := range t.order {
		if id == tr.ID {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	t.completed[t.compNext] = tr
	t.compNext++
	if t.compNext == len(t.completed) {
		t.compNext = 0
		t.compFull = true
	}
	t.finished.Add(1)
	// Slow list: insertion sort bounded at slowN.
	i := sort.Search(len(t.slow), func(i int) bool { return t.slow[i].Duration < tr.Duration })
	if i < t.slowN {
		t.slow = append(t.slow, nil)
		copy(t.slow[i+1:], t.slow[i:])
		t.slow[i] = tr
		if len(t.slow) > t.slowN {
			t.slow = t.slow[:t.slowN]
		}
	}
	// Exemplar: this trace stands for its op's latency bucket.
	ex := t.exemplars[tr.Op]
	if ex == nil {
		ex = make([]Exemplar, len(t.bounds)+1)
		t.exemplars[tr.Op] = ex
	}
	bi := sort.SearchFloat64s(t.bounds, tr.Duration.Seconds())
	ex[bi] = Exemplar{Op: tr.Op, Bucket: t.bucketLE(bi), Trace: tr.ID, Duration: tr.Duration, N: ex[bi].N + 1}
}

func (t *Tracer) bucketLE(i int) float64 {
	if i < len(t.bounds) {
		return t.bounds[i]
	}
	return -1 // overflow bucket (+Inf)
}

// evictOldestLocked force-completes the oldest active segment — the
// bound that keeps a peer that never answers from pinning memory.
// Callers hold t.mu.
func (t *Tracer) evictOldestLocked() {
	if len(t.order) == 0 {
		return
	}
	tr := t.active[t.order[0]]
	if tr == nil {
		t.order = t.order[1:]
		return
	}
	now := t.now()
	for _, r := range tr.Spans {
		if !r.ended {
			r.ended = true
			r.End = now
			if r.Note == "" {
				r.Note = "evicted"
			}
			tr.Abandoned++
			tr.open--
		}
	}
	if !tr.rootEnded {
		tr.Duration = now.Sub(tr.Start)
	}
	t.evicted.Add(1)
	t.completeLocked(tr)
}

// AbandonNode force-ends every open span recorded under the given node
// name — a model node crashing mid-protocol. Segments whose last open
// span this releases complete normally (flagged Abandoned).
func (t *Tracer) AbandonNode(node, note string) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	for _, id := range append([]TraceID(nil), t.order...) {
		tr := t.active[id]
		if tr == nil {
			continue
		}
		for _, r := range tr.Spans {
			if r.ended || r.Node != node {
				continue
			}
			r.ended = true
			r.End = now
			if r.Note == "" {
				r.Note = note
			}
			tr.Abandoned++
			t.abandoned.Add(1)
			tr.open--
			if r.ID == tr.root {
				tr.rootEnded = true
				tr.Duration = r.End.Sub(tr.Start)
			}
		}
		if tr.rootEnded && tr.open == 0 {
			t.completeLocked(tr)
		}
	}
	t.mu.Unlock()
}

// Recent returns up to n completed segments, newest first (n <= 0:
// everything in the ring).
func (t *Tracer) Recent(n int) []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.compNext
	if t.compFull {
		size = len(t.completed)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := t.compNext - 1 - i
		if idx < 0 {
			idx += len(t.completed)
		}
		out = append(out, t.completed[idx])
	}
	return out
}

// Slowest returns up to n completed segments by descending duration.
func (t *Tracer) Slowest(n int) []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > len(t.slow) {
		n = len(t.slow)
	}
	return append([]*Trace(nil), t.slow[:n]...)
}

// Exemplar ties one latency histogram bucket to a representative
// trace: the most recent completed trace of that operation whose
// duration fell in the bucket.
type Exemplar struct {
	Op string `json:"op"`
	// Bucket is the histogram upper bound in seconds (-1: overflow).
	Bucket   float64       `json:"le"`
	Trace    TraceID       `json:"trace"`
	Duration time.Duration `json:"duration_ns"`
	// N counts traces that landed in this bucket.
	N int64 `json:"n"`
}

// Exemplars returns every populated (op, bucket) exemplar, ordered by
// op then bucket.
func (t *Tracer) Exemplars() []Exemplar {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ops := make([]string, 0, len(t.exemplars))
	for op := range t.exemplars {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	var out []Exemplar
	for _, op := range ops {
		for _, ex := range t.exemplars[op] {
			if ex.N > 0 {
				out = append(out, ex)
			}
		}
	}
	return out
}

// ActiveCount reports trace segments still open — the span-tree lens
// asserts zero once a bounded schedule has drained.
func (t *Tracer) ActiveCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

// ActiveIDs lists the open segments' TraceIDs (diagnostics for the
// lens's violation reports).
func (t *Tracer) ActiveIDs() []TraceID {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceID(nil), t.order...)
}

// Stats reports lifetime counters: spans started, segments finished,
// spans force-ended by AbandonNode, and segments evicted under the
// MaxActive bound.
func (t *Tracer) Stats() (started, finished, abandoned, evicted int64) {
	if t == nil {
		return 0, 0, 0, 0
	}
	return t.started.Load(), t.finished.Load(), t.abandoned.Load(), t.evicted.Load()
}

// KnownSpan reports whether the tracer ever recorded (trace, span) —
// parent resolution across segments for the lens. Requires
// Config.RetainIndex.
func (t *Tracer) KnownSpan(trace TraceID, span SpanID) bool {
	if t == nil || t.index == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := t.index[trace]
	_, ok := ids[span]
	return ok
}
