package obs

import (
	"sync"
	"sync/atomic"
)

// ring is a bounded, concurrent event buffer. Writers claim a slot with
// one atomic increment on the global cursor and then copy the event
// under that slot's own mutex, so two concurrent writers contend only
// when they land on the same slot — i.e. when one laps the other, which
// at 4096 slots means the ring wrapped between them. Readers lock one
// slot at a time; a snapshot is per-slot consistent, not a frozen
// instant, which is the right trade for a diagnostic buffer that must
// never stall the request path.
type ring struct {
	mask  uint64
	next  atomic.Uint64 // next sequence number to assign
	slots []ringSlot
}

type ringSlot struct {
	mu sync.Mutex
	ev Event
	ok bool // slot has ever been written
}

// defaultRingSize is used when a Config leaves RingSize zero.
const defaultRingSize = 4096

func newRing(size int) *ring {
	if size <= 0 {
		size = defaultRingSize
	}
	// Round up to a power of two so slot routing is a mask, not a mod.
	n := 1
	for n < size {
		n <<= 1
	}
	return &ring{mask: uint64(n - 1), slots: make([]ringSlot, n)}
}

// append stores a copy of *ev and returns its sequence number (0-based,
// monotonically increasing across the observer's lifetime).
func (r *ring) append(ev *Event) uint64 {
	seq := r.next.Add(1) - 1
	s := &r.slots[seq&r.mask]
	s.mu.Lock()
	s.ev = *ev
	s.ev.Seq = seq
	s.ok = true
	s.mu.Unlock()
	return seq
}

// snapshot returns up to n of the most recent events in sequence order.
// n ≤ 0 means every event still buffered. Events overwritten mid-read
// by a racing writer appear with their new (still in-window) contents;
// slots never expose torn state.
func (r *ring) snapshot(n int) []Event {
	end := r.next.Load()
	span := uint64(len(r.slots))
	if end < span {
		span = end
	}
	if n > 0 && uint64(n) < span {
		span = uint64(n)
	}
	out := make([]Event, 0, span)
	for seq := end - span; seq < end; seq++ {
		s := &r.slots[seq&r.mask]
		s.mu.Lock()
		ev, ok := s.ev, s.ok
		s.mu.Unlock()
		// A writer may have lapped past seq already; keep only events
		// from the window we asked for.
		if ok && ev.Seq >= end-span && ev.Seq < end {
			out = append(out, ev)
		}
	}
	return out
}
