// Package obs is the live observability layer of the lease system:
// structured protocol event tracing, per-operation latency histograms,
// and the snapshot/exposition plumbing behind the HTTP admin plane.
//
// The paper's whole evaluation (§3) is about measuring the protocol —
// server message load (formula 1) and consistency-induced delay
// (formula 2). internal/trace and internal/tracesim measure those
// quantities offline, in simulation; obs is the online analogue for the
// real TCP deployment: every grant, approval callback, deferral and
// expiry-release that a running server performs is recorded as a
// structured event, and every request's latency lands in a histogram,
// so formula-1 message counts and formula-2 delay distributions can be
// read off a production server while traffic flows.
//
// Cost model: an *Observer is optional everywhere it is threaded
// (server, client, cmd tools). A nil Observer is the disabled state —
// every method nil-checks its receiver and returns immediately, so the
// instrumented hot paths cost one predictable branch and zero
// allocations when observability is off (asserted by
// TestDisabledObserverAllocFree). Enabled, the ring buffer takes one
// per-slot mutex, counters are atomic, and histograms take one short
// mutex per observation; nothing global serializes two requests.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"sort"
	"sync"
	"time"

	"leases/internal/stats"
	"leases/internal/vfs"
)

// EventType classifies a protocol event.
type EventType uint8

// The protocol event taxonomy. Together the types cover every message
// class of the paper's formula 1 (grants, extensions, approval
// round-trips) and every source of formula-2 delay (deferral, expiry
// release, timeout).
const (
	// EvGrant: a lease was granted on first contact (read, lookup,
	// readdir). Term zero means the grant was refused — a write was
	// pending (anti-starvation, §2 fn. 1) or the policy said no caching.
	EvGrant EventType = iota
	// EvExtend: a lease was extended by an explicit batch extension
	// request (§3.1). Term zero means the extension was refused.
	EvExtend
	// EvApproveRequest: the server pushed an approval callback to a
	// leaseholder blocking a write.
	EvApproveRequest
	// EvApprove: a leaseholder approved a write, having invalidated its
	// cached copy.
	EvApprove
	// EvExpire: a deferred write was released because its blocking
	// leases expired — the fault-tolerance path (§2).
	EvExpire
	// EvWriteDefer: a write was queued behind conflicting leases (or a
	// blocked window) rather than applied immediately.
	EvWriteDefer
	// EvWriteApply: a write obtained clearance and was applied; Wait is
	// how long clearance took.
	EvWriteApply
	// EvWriteTimeout: a write exceeded the server's deferral bound and
	// was failed back to the writer.
	EvWriteTimeout
	// EvEviction: a cached copy was invalidated — at the server, a
	// holder's lease record dropped by its approval; at the client, a
	// datum dropped from the local cache by an approval push.
	EvEviction
	// EvReconnect: a client session lost its connection and
	// re-established it (re-hello done, cached leases dropped for
	// revalidation). Client identifies the cache; Wait is how long the
	// session was down.
	EvReconnect
	// EvFaultInject: the fault-injection layer (internal/faultnet)
	// applied a scripted or probabilistic fault — a drop, sever,
	// partition, heal or schedule action. Client carries the fault
	// label.
	EvFaultInject
	// EvQueueFull: a connection's pending flush buffer hit its
	// backpressure bound and an appender stalled — the operator's
	// signal that a peer is draining slower than the system produces
	// for it. Client identifies the connection; Depth is the number of
	// frames queued at the stall.
	EvQueueFull
	// EvElected: this replica won the master-lease election
	// (internal/replica); Replica carries the replica index.
	EvElected
	// EvDemoted: this replica's master lease lapsed or was lost;
	// Replica carries the replica index.
	EvDemoted
	// EvExtendFailure: a client's background batch extension failed;
	// Depth is the consecutive-failure count.
	EvExtendFailure
	// EvBroadcastExt: the server sent one broadcast-extension round
	// covering the installed class (§4.3); Depth is how many
	// connections it reached. At the client: one broadcast was applied.
	EvBroadcastExt
	// EvPiggyExt: anticipatory extension grants were piggybacked on a
	// reply flush (§4); Depth is the number of grants.
	EvPiggyExt
	// EvClassPromote: a datum entered the installed-files class.
	EvClassPromote
	// EvClassDemote: drop-on-write — a write demoted a datum out of the
	// installed class (§4.3).
	EvClassDemote
	// EvNotOwner: a sharded server refused a path operation it does not
	// own and redirected the client to the owning group (Depth is the
	// owner's group ID).
	EvNotOwner
	// EvShardPrepare: this group staged an incoming cross-shard rename
	// (destination side of the two-phase protocol).
	EvShardPrepare
	// EvShardCommit: a staged cross-shard rename became visible on the
	// destination, or (at the source) the source committed its removal.
	EvShardCommit
	// EvShardAbort: a cross-shard rename was abandoned and its staged
	// destination entry discarded.
	EvShardAbort

	numEventTypes = int(EvShardAbort) + 1
)

var eventTypeNames = [numEventTypes]string{
	"grant", "extend", "approve-request", "approve", "expire",
	"write-defer", "write-apply", "write-timeout", "eviction",
	"reconnect", "fault-inject", "queue-full", "elected", "demoted",
	"extend-failure", "broadcast-ext", "piggy-ext", "class-promote",
	"class-demote", "not-owner", "shard-prepare", "shard-commit",
	"shard-abort",
}

// String names the event type ("grant", "write-defer", …).
func (t EventType) String() string {
	if int(t) < numEventTypes {
		return eventTypeNames[t]
	}
	return fmt.Sprintf("event%d", uint8(t))
}

// MarshalJSON writes the type as its name, so JSONL sinks stay readable
// and stable across reorderings of the enum.
func (t EventType) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// Event is one structured protocol event.
type Event struct {
	// Seq is the event's global sequence number, assigned by Record.
	Seq uint64 `json:"seq"`
	// At is when the event happened. Record stamps it if zero.
	At   time.Time `json:"at"`
	Type EventType `json:"type"`
	// Client is the client the event concerns, when known.
	Client string `json:"client,omitempty"`
	// Datum is the datum the event concerns, when known.
	Datum vfs.Datum `json:"datum"`
	// Shard is the lease-manager shard that owns the datum or write.
	Shard int `json:"shard"`
	// Replica is the replica index for election events
	// (elected/demoted), which concern a whole node rather than a
	// lease-manager shard.
	Replica int `json:"replica,omitempty"`
	// Term is the granted term for grant/extend events (zero = refused).
	Term time.Duration `json:"term_ns,omitempty"`
	// WriteID identifies the pending write for approval and write events.
	WriteID uint64 `json:"write_id,omitempty"`
	// Wait is the deferral duration for write-apply/write-timeout events.
	Wait time.Duration `json:"wait_ns,omitempty"`
	// Depth is the frames queued at a queue-full stall.
	Depth int `json:"depth,omitempty"`
}

// Config parameterizes an Observer.
type Config struct {
	// RingSize bounds the event ring buffer (rounded up to a power of
	// two). Zero means 4096.
	RingSize int
	// Sink, when non-nil, receives every event as one JSON line — the
	// live counterpart of internal/trace's offline codec, so a recorded
	// stream can be replayed or post-processed by the leasetrace
	// tooling's analysis habits.
	Sink io.Writer
	// SlowWrite, when positive, logs any write deferred for at least
	// this long to SlowLog — the operator's view of formula-2 outliers.
	SlowWrite time.Duration
	// SlowLog receives slow-write lines; nil means log.Default().
	SlowLog *log.Logger
	// Now supplies event timestamps; nil means time.Now. Tests inject a
	// fixed clock for deterministic golden output.
	Now func() time.Time
}

// Observer records protocol events and operation latencies. The nil
// Observer is valid and disabled: every method returns immediately.
type Observer struct {
	now  func() time.Time
	ring *ring

	counts [numEventTypes]stats.Counter

	sinkMu sync.Mutex
	sink   io.Writer

	slowWrite time.Duration
	slowLog   *log.Logger

	opMu sync.RWMutex
	ops  map[string]*stats.Histogram

	// flushFrames/flushBytes record the write coalescer's batch sizes:
	// frames and bytes per flush syscall. frames-per-flush is also the
	// connection queue depth at each flush point, so the mean here is
	// the amortization factor the paper's §4 scaling argument assumes.
	flushFrames *stats.Histogram
	flushBytes  *stats.Histogram
}

// New returns an enabled Observer.
func New(cfg Config) *Observer {
	o := &Observer{
		now:         cfg.Now,
		ring:        newRing(cfg.RingSize),
		sink:        cfg.Sink,
		slowWrite:   cfg.SlowWrite,
		slowLog:     cfg.SlowLog,
		ops:         make(map[string]*stats.Histogram),
		flushFrames: stats.NewHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256),
		flushBytes:  stats.NewHistogram(64, 256, 1024, 4096, 16384, 65536, 262144, 1<<20),
	}
	if o.now == nil {
		o.now = time.Now
	}
	if o.slowLog == nil {
		o.slowLog = log.Default()
	}
	return o
}

// Enabled reports whether the observer records anything. It is the
// nil-check instrumented code guards expensive argument preparation
// with (e.g. reading the clock before timing an operation).
func (o *Observer) Enabled() bool { return o != nil }

// Record files one event: it is stamped, sequenced, counted, appended
// to the ring, mirrored to the JSONL sink, and — for writes deferred
// beyond the slow threshold — logged. Safe for concurrent use; a nil
// receiver is a no-op.
func (o *Observer) Record(ev Event) {
	if o == nil {
		return
	}
	if ev.At.IsZero() {
		ev.At = o.now()
	}
	ev.Seq = o.ring.append(&ev)
	if int(ev.Type) < numEventTypes {
		o.counts[ev.Type].Inc()
	}
	if o.slowWrite > 0 && ev.Wait >= o.slowWrite &&
		(ev.Type == EvWriteApply || ev.Type == EvWriteTimeout) {
		o.slowLog.Printf("obs: slow write: client=%s datum=%v write=%d wait=%v (%s)",
			ev.Client, ev.Datum, ev.WriteID, ev.Wait, ev.Type)
	}
	if o.sink != nil {
		line, err := json.Marshal(ev)
		if err != nil {
			return
		}
		line = append(line, '\n')
		o.sinkMu.Lock()
		o.sink.Write(line)
		o.sinkMu.Unlock()
	}
}

// ObserveOp records one operation latency under the given name. Safe
// for concurrent use; a nil receiver is a no-op.
func (o *Observer) ObserveOp(op string, d time.Duration) {
	if o == nil {
		return
	}
	o.opMu.RLock()
	h := o.ops[op]
	o.opMu.RUnlock()
	if h == nil {
		o.opMu.Lock()
		h = o.ops[op]
		if h == nil {
			h = stats.NewLatencyHistogram()
			o.ops[op] = h
		}
		o.opMu.Unlock()
	}
	h.Observe(d.Seconds())
}

// ObserveFlush records one coalesced flush: how many frames and bytes
// went out in a single write syscall. Safe for concurrent use; a nil
// receiver is a no-op.
func (o *Observer) ObserveFlush(frames, bytes int) {
	if o == nil {
		return
	}
	o.flushFrames.Observe(float64(frames))
	o.flushBytes.Observe(float64(bytes))
}

// FlushStats returns the flush batch-size digests: frames per flush
// (the queue depth at each flush point) and bytes per flush.
func (o *Observer) FlushStats() (frames, bytes stats.HistogramSnapshot) {
	if o == nil {
		return stats.HistogramSnapshot{}, stats.HistogramSnapshot{}
	}
	return o.flushFrames.Snapshot(), o.flushBytes.Snapshot()
}

// Events returns up to n of the most recent events, oldest first. n ≤ 0
// means everything still in the ring.
func (o *Observer) Events(n int) []Event {
	if o == nil {
		return nil
	}
	return o.ring.snapshot(n)
}

// EventCount is one event type's running total.
type EventCount struct {
	Type string `json:"type"`
	N    int64  `json:"n"`
}

// EventCounts returns the running total of every event type, in
// taxonomy order (including zero counts, so exposition stays stable).
func (o *Observer) EventCounts() []EventCount {
	if o == nil {
		return nil
	}
	out := make([]EventCount, numEventTypes)
	for i := range out {
		out[i] = EventCount{Type: EventType(i).String(), N: o.counts[i].Value()}
	}
	return out
}

// OpLatency is one operation's latency digest.
type OpLatency struct {
	Op   string
	Hist stats.HistogramSnapshot
}

// OpLatencies returns a snapshot of every operation latency histogram,
// sorted by operation name.
func (o *Observer) OpLatencies() []OpLatency {
	if o == nil {
		return nil
	}
	o.opMu.RLock()
	names := make([]string, 0, len(o.ops))
	for n := range o.ops {
		names = append(names, n)
	}
	o.opMu.RUnlock()
	sort.Strings(names)
	out := make([]OpLatency, 0, len(names))
	for _, n := range names {
		o.opMu.RLock()
		h := o.ops[n]
		o.opMu.RUnlock()
		out = append(out, OpLatency{Op: n, Hist: h.Snapshot()})
	}
	return out
}
