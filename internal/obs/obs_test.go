package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log"
	"strings"
	"sync"
	"testing"
	"time"

	"leases/internal/vfs"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	return func() time.Time { return t0 }
}

func TestEventTypeNames(t *testing.T) {
	want := []string{
		"grant", "extend", "approve-request", "approve", "expire",
		"write-defer", "write-apply", "write-timeout", "eviction",
	}
	for i, w := range want {
		if got := EventType(i).String(); got != w {
			t.Errorf("EventType(%d) = %q, want %q", i, got, w)
		}
	}
	if got := EventType(200).String(); got != "event200" {
		t.Errorf("unknown type = %q", got)
	}
}

func TestRecordAndEvents(t *testing.T) {
	o := New(Config{RingSize: 8, Now: fixedClock()})
	d := vfs.Datum{Kind: vfs.FileData, Node: 7}
	for i := 0; i < 3; i++ {
		o.Record(Event{Type: EvGrant, Client: "c1", Datum: d, Term: 10 * time.Second})
	}
	o.Record(Event{Type: EvWriteDefer, Client: "c2", Datum: d, WriteID: 42})

	evs := o.Events(0)
	if len(evs) != 4 {
		t.Fatalf("Events(0) = %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		if ev.At.IsZero() {
			t.Errorf("event %d not timestamped", i)
		}
	}
	if last := evs[3]; last.Type != EvWriteDefer || last.WriteID != 42 || last.Client != "c2" {
		t.Errorf("last event = %+v", last)
	}

	if got := o.Events(2); len(got) != 2 || got[0].Seq != 2 {
		t.Errorf("Events(2) = %+v, want seqs 2,3", got)
	}

	counts := o.EventCounts()
	if len(counts) != numEventTypes {
		t.Fatalf("EventCounts() has %d entries, want %d", len(counts), numEventTypes)
	}
	if counts[EvGrant].N != 3 || counts[EvWriteDefer].N != 1 || counts[EvExpire].N != 0 {
		t.Errorf("counts = %+v", counts)
	}
}

func TestRingWrapKeepsMostRecent(t *testing.T) {
	o := New(Config{RingSize: 4, Now: fixedClock()})
	for i := 0; i < 10; i++ {
		o.Record(Event{Type: EvGrant, WriteID: uint64(i)})
	}
	evs := o.Events(0)
	if len(evs) != 4 {
		t.Fatalf("ring of 4 returned %d events", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want || ev.WriteID != want {
			t.Errorf("event %d = seq %d write %d, want %d", i, ev.Seq, ev.WriteID, want)
		}
	}
}

// TestRingConcurrentWriters hammers the ring from many goroutines while
// snapshots run, under -race: no torn events, snapshot sequences always
// monotonically increasing and within the live window.
func TestRingConcurrentWriters(t *testing.T) {
	o := New(Config{RingSize: 64})
	const writers, perWriter = 8, 500
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := o.Events(0)
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq <= evs[i-1].Seq {
					t.Errorf("snapshot not in sequence order: %d then %d", evs[i-1].Seq, evs[i].Seq)
					return
				}
			}
			for _, ev := range evs {
				// Writers encode their identity redundantly; a torn slot
				// would disagree with itself.
				if ev.Wait != time.Duration(ev.WriteID) || ev.Term != time.Duration(ev.WriteID) {
					t.Errorf("torn event: %+v", ev)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*perWriter + i)
				o.Record(Event{
					Type: EvGrant, WriteID: id,
					Wait: time.Duration(id), Term: time.Duration(id),
				})
			}
		}(w)
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()

	if got := o.EventCounts()[EvGrant].N; got != writers*perWriter {
		t.Fatalf("recorded %d events, want %d", got, writers*perWriter)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	o := New(Config{RingSize: 8, Sink: &buf, Now: fixedClock()})
	o.Record(Event{Type: EvWriteApply, Client: "w", Datum: vfs.Datum{Kind: vfs.FileData, Node: 3},
		Shard: 2, WriteID: 17, Wait: 250 * time.Millisecond})

	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("sink empty")
	}
	var got map[string]any
	if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
		t.Fatalf("sink line is not JSON: %v", err)
	}
	if got["type"] != "write-apply" || got["client"] != "w" || got["write_id"] != float64(17) {
		t.Errorf("sink line = %v", got)
	}
	if got["wait_ns"] != float64(250*time.Millisecond) {
		t.Errorf("wait_ns = %v", got["wait_ns"])
	}
}

func TestSlowWriteLog(t *testing.T) {
	var buf bytes.Buffer
	o := New(Config{
		RingSize: 8, SlowWrite: 100 * time.Millisecond,
		SlowLog: log.New(&buf, "", 0), Now: fixedClock(),
	})
	o.Record(Event{Type: EvWriteApply, Client: "w", Wait: 50 * time.Millisecond})
	if buf.Len() != 0 {
		t.Fatalf("fast write logged: %q", buf.String())
	}
	o.Record(Event{Type: EvGrant, Client: "w", Wait: time.Hour}) // wrong type: no log
	if buf.Len() != 0 {
		t.Fatalf("grant logged as slow write: %q", buf.String())
	}
	o.Record(Event{Type: EvWriteTimeout, Client: "w", WriteID: 9, Wait: 2 * time.Second})
	if !strings.Contains(buf.String(), "slow write") || !strings.Contains(buf.String(), "write=9") {
		t.Fatalf("slow write not logged: %q", buf.String())
	}
}

func TestObserveOpHistograms(t *testing.T) {
	o := New(Config{RingSize: 8})
	for i := 0; i < 10; i++ {
		o.ObserveOp("read", time.Millisecond)
	}
	o.ObserveOp("write", 2*time.Second)
	ops := o.OpLatencies()
	if len(ops) != 2 || ops[0].Op != "read" || ops[1].Op != "write" {
		t.Fatalf("ops = %+v", ops)
	}
	if ops[0].Hist.Count != 10 {
		t.Errorf("read count = %d", ops[0].Hist.Count)
	}
	if p := ops[0].Hist.P99; p < 0.001 || p > 0.0025 {
		t.Errorf("read p99 = %v, want the 1ms bucket bound", p)
	}
}

// TestDisabledObserverAllocFree pins the contract the server hot path
// relies on: with observability off (nil Observer) the instrumentation
// hooks perform zero allocations.
func TestDisabledObserverAllocFree(t *testing.T) {
	var o *Observer
	d := vfs.Datum{Kind: vfs.FileData, Node: 9}
	allocs := testing.AllocsPerRun(1000, func() {
		if o.Enabled() {
			t.Fatal("nil observer reports enabled")
		}
		o.Record(Event{Type: EvGrant, Client: "c", Datum: d, Term: time.Second})
		o.ObserveOp("read", time.Millisecond)
		_ = o.Events(4)
		_ = o.EventCounts()
		_ = o.OpLatencies()
	})
	if allocs != 0 {
		t.Fatalf("disabled observer allocates %.1f per op, want 0", allocs)
	}
}

// TestEnabledRecordAllocFree documents that even the enabled event path
// does not allocate once the ring exists (no sink attached) — the ring
// slot copy is in place and counters are atomic.
func TestEnabledRecordAllocFree(t *testing.T) {
	o := New(Config{RingSize: 64, Now: fixedClock()})
	d := vfs.Datum{Kind: vfs.FileData, Node: 9}
	allocs := testing.AllocsPerRun(1000, func() {
		o.Record(Event{Type: EvGrant, Client: "c", Datum: d, Term: time.Second})
	})
	if allocs != 0 {
		t.Fatalf("enabled Record allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkRecordDisabled(b *testing.B) {
	var o *Observer
	d := vfs.Datum{Kind: vfs.FileData, Node: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Record(Event{Type: EvGrant, Client: "c", Datum: d, Term: time.Second})
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	o := New(Config{RingSize: 4096})
	d := vfs.Datum{Kind: vfs.FileData, Node: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Record(Event{Type: EvGrant, Client: "c", Datum: d, Term: time.Second})
	}
}

func BenchmarkRecordEnabledParallel(b *testing.B) {
	o := New(Config{RingSize: 4096})
	d := vfs.Datum{Kind: vfs.FileData, Node: 9}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			o.Record(Event{Type: EvGrant, Client: "c", Datum: d, Term: time.Second})
		}
	})
}

func BenchmarkObserveOpEnabled(b *testing.B) {
	o := New(Config{RingSize: 16})
	o.ObserveOp("read", time.Millisecond) // pre-create the histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.ObserveOp("read", time.Millisecond)
	}
}
