package portfolio

import (
	"testing"
	"time"

	"leases/internal/vfs"
)

func datum(n uint64) vfs.Datum {
	return vfs.Datum{Kind: vfs.FileData, Node: vfs.NodeID(n)}
}

func TestSnapshotAndBroadcast(t *testing.T) {
	p := New()
	if p.Stale() {
		t.Fatal("fresh portfolio reports stale")
	}
	if p.ObserveBroadcast(3, time.Second) {
		t.Fatal("broadcast for unknown generation applied")
	}
	if !p.Stale() {
		t.Fatal("generation mismatch did not mark stale")
	}

	data := []vfs.Datum{datum(1), datum(2)}
	p.ApplySnapshot(3, 30*time.Second, data)
	if p.Stale() {
		t.Fatal("ApplySnapshot left portfolio stale")
	}
	if p.Generation() != 3 || p.Len() != 2 || p.Term() != 30*time.Second {
		t.Fatalf("snapshot state = gen %d len %d term %v", p.Generation(), p.Len(), p.Term())
	}
	if !p.Installed(datum(1)) || p.Installed(datum(9)) {
		t.Fatal("Installed membership wrong")
	}

	if !p.ObserveBroadcast(3, 40*time.Second) {
		t.Fatal("matching broadcast refused")
	}
	if p.Term() != 40*time.Second {
		t.Fatalf("broadcast did not update term: %v", p.Term())
	}
	// Membership changed at the server: the next broadcast carries a new
	// generation and must not extend under the old member list.
	if p.ObserveBroadcast(4, 40*time.Second) {
		t.Fatal("stale-generation broadcast applied")
	}
	if !p.Stale() {
		t.Fatal("newer generation did not mark stale")
	}
}

func TestZeroGenerationNeverMatches(t *testing.T) {
	p := New()
	if p.ObserveBroadcast(0, time.Second) {
		t.Fatal("generation-zero broadcast applied to empty portfolio")
	}
}

func TestClear(t *testing.T) {
	p := New()
	p.ApplySnapshot(7, time.Second, []vfs.Datum{datum(1)})
	p.MarkStale()
	p.Clear()
	if p.Generation() != 0 || p.Len() != 0 || p.Stale() || p.Term() != 0 {
		t.Fatal("Clear left state behind")
	}
	if len(p.Members()) != 0 {
		t.Fatal("Clear left members")
	}
}

func TestPlanRenewal(t *testing.T) {
	now := time.Unix(1000, 0)
	base := 8 * time.Second // lead 4s, floor 1s
	leases := []Lease{
		{Datum: datum(1), Expiry: now.Add(2 * time.Second)}, // inside lead: due
		{Datum: datum(2), Expiry: now.Add(-time.Second)},    // expired: due
		{Datum: datum(3)}, // infinite: never due
		{Datum: datum(4), Expiry: now.Add(6 * time.Second)},  // 2s past lead
		{Datum: datum(5), Expiry: now.Add(60 * time.Second)}, // far out
	}
	plan := PlanRenewal(now, base, leases)
	if len(plan.Due) != 2 || plan.Due[0] != datum(1) || plan.Due[1] != datum(2) {
		t.Fatalf("Due = %v", plan.Due)
	}
	// Next finite expiry (datum 4) enters the lead window in 2s.
	if plan.Wake != 2*time.Second {
		t.Fatalf("Wake = %v, want 2s", plan.Wake)
	}
}

func TestPlanRenewalBounds(t *testing.T) {
	now := time.Unix(1000, 0)
	base := 8 * time.Second

	// Nothing held: sleep a full period.
	if p := PlanRenewal(now, base, nil); len(p.Due) != 0 || p.Wake != base {
		t.Fatalf("empty plan = %+v", p)
	}

	// An expiry just past the lead window clamps to the floor rather
	// than spinning.
	leases := []Lease{{Datum: datum(1), Expiry: now.Add(4*time.Second + time.Millisecond)}}
	if p := PlanRenewal(now, base, leases); p.Wake != time.Second {
		t.Fatalf("Wake = %v, want floor 1s", p.Wake)
	}

	// Far-future expiries never extend the sleep past one period.
	leases = []Lease{{Datum: datum(1), Expiry: now.Add(time.Hour)}}
	if p := PlanRenewal(now, base, leases); p.Wake != base {
		t.Fatalf("Wake = %v, want base", p.Wake)
	}
}
