// Package portfolio is the client's sans-IO view of its lease
// portfolio under the §4 options: which data the server has placed in
// the installed-files class (covered by one directory-granularity lease
// renewed by broadcast, §4.3), and when the remaining per-file leases
// should be renewed ahead of expiry (anticipatory extension, §4).
//
// Like core.Holder it is transport-free and not safe for concurrent
// use; the client serializes access under its cache mutex. The package
// holds no clocks and issues no frames — it answers two questions:
// "is this datum installed?" and "what should the renewal loop extend
// now, and when should it wake next?" — so both answers are unit
// testable without a server.
package portfolio

import (
	"time"

	"leases/internal/vfs"
)

// Portfolio tracks the client's snapshot of the server's installed
// class. The snapshot is identified by its generation: the server bumps
// the generation on every membership change (promotion or drop-on-write
// demotion), and stamps every broadcast extension with the generation
// it covers. A broadcast matching the held generation renews the whole
// snapshot in O(1) wire bytes; a mismatch means the snapshot is stale —
// the client stops treating it as current and refetches.
type Portfolio struct {
	gen     uint64
	term    time.Duration
	members map[vfs.Datum]struct{}
	order   []vfs.Datum // members in wire order, reused by extensions
	stale   bool
}

// New returns an empty portfolio. It starts non-stale: with no snapshot
// there is nothing to refetch until the server advertises a class (the
// first broadcast, carrying a nonzero generation, marks it stale).
func New() *Portfolio {
	return &Portfolio{members: make(map[vfs.Datum]struct{})}
}

// ApplySnapshot replaces the held snapshot with a freshly fetched one
// and clears staleness. The data slice is retained.
func (p *Portfolio) ApplySnapshot(gen uint64, term time.Duration, data []vfs.Datum) {
	p.gen = gen
	p.term = term
	p.order = data
	p.members = make(map[vfs.Datum]struct{}, len(data))
	for _, d := range data {
		p.members[d] = struct{}{}
	}
	p.stale = false
}

// ObserveBroadcast processes the stamp of one broadcast extension and
// reports whether the held snapshot covers it — in which case the
// caller extends every member it holds for the broadcast term. On a
// generation mismatch the snapshot is marked stale and nothing may be
// extended: membership changed at the server, and extending under the
// old member list could cover a datum that was just demoted by a write.
func (p *Portfolio) ObserveBroadcast(gen uint64, term time.Duration) bool {
	if gen != p.gen || gen == 0 {
		p.stale = true
		return false
	}
	p.term = term
	return true
}

// Installed reports whether d is in the held snapshot.
func (p *Portfolio) Installed(d vfs.Datum) bool {
	_, ok := p.members[d]
	return ok
}

// Members returns the snapshot's member list in wire order. The slice
// is shared, not copied; callers must not mutate it.
func (p *Portfolio) Members() []vfs.Datum { return p.order }

// Generation returns the held snapshot's generation (zero = none).
func (p *Portfolio) Generation() uint64 { return p.gen }

// Term returns the class term of the latest snapshot or broadcast.
func (p *Portfolio) Term() time.Duration { return p.term }

// Len reports how many data the snapshot covers.
func (p *Portfolio) Len() int { return len(p.members) }

// Stale reports whether the snapshot must be refetched before the
// next broadcast can be applied.
func (p *Portfolio) Stale() bool { return p.stale }

// MarkStale forces a refetch — used after a reconnect, when the
// snapshot may describe a different server incarnation entirely.
func (p *Portfolio) MarkStale() { p.stale = true }

// Clear discards the snapshot — the reconnect path's
// drop-everything-and-revalidate, applied to class state.
func (p *Portfolio) Clear() {
	p.gen = 0
	p.term = 0
	p.order = nil
	p.members = make(map[vfs.Datum]struct{})
	p.stale = false
}

// Lease is one held lease as the renewal planner sees it: its datum and
// its local effective expiry (zero = infinite, never renewed).
type Lease struct {
	Datum  vfs.Datum
	Expiry time.Time
}

// RenewPlan is one renewal round's decision.
type RenewPlan struct {
	// Due lists the leases to extend in this round's batch, in input
	// order: those expired or expiring within the anticipation lead.
	Due []vfs.Datum
	// Wake is how long to sleep before planning again: until the
	// earliest remaining expiry enters the lead window, clamped to
	// [base/8, base] so a far-off portfolio still gets a periodic
	// liveness check and a busy one cannot spin.
	Wake time.Duration
}

// PlanRenewal computes one anticipatory-extension round (§4) over the
// held leases. base is the configured renewal period; the lead — how
// far ahead of expiry a lease is renewed — is base/2, so one missed
// round still leaves half a period of margin before anything expires.
//
// Installed members need no per-file renewal (the broadcast covers
// them), but they are planned by the same expiry rule rather than
// excluded: while broadcasts arrive their expiries sit a full class
// term out and they never come due; if broadcasts stop — a partitioned
// or wedged server — their expiries drift into the lead window and the
// planner falls back to explicit extension automatically.
func PlanRenewal(now time.Time, base time.Duration, leases []Lease) RenewPlan {
	lead := base / 2
	deadline := now.Add(lead)
	plan := RenewPlan{Wake: base}
	floor := base / 8
	if floor <= 0 {
		floor = time.Millisecond
	}
	for _, l := range leases {
		if l.Expiry.IsZero() {
			continue
		}
		if !l.Expiry.After(deadline) {
			plan.Due = append(plan.Due, l.Datum)
			continue
		}
		if until := l.Expiry.Sub(deadline); until < plan.Wake {
			plan.Wake = until
		}
	}
	if plan.Wake < floor {
		plan.Wake = floor
	}
	return plan
}
