package trace

import (
	"bytes"
	"testing"
	"time"
)

// FuzzRead feeds arbitrary bytes to the trace decoder: never panic, and
// any trace it accepts must round-trip through Write/Read unchanged.
func FuzzRead(f *testing.F) {
	tr := Poisson(PoissonConfig{Seed: 1, Duration: time.Minute, Clients: 1, Files: 2, ReadRate: 1, WriteRate: 0.1})
	var seed bytes.Buffer
	tr.Write(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("VTR1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := got.Write(&buf); werr != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", werr)
		}
		again, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("re-encoded trace failed to parse: %v", rerr)
		}
		if len(again.Events) != len(got.Events) || again.Duration != got.Duration {
			t.Fatal("round trip mismatch")
		}
		for i := range got.Events {
			if again.Events[i] != got.Events[i] {
				t.Fatalf("event %d mismatch", i)
			}
		}
	})
}
