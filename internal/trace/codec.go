package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// Binary trace format:
//
//	magic    [4]byte  "VTR1"
//	duration int64    nanoseconds
//	clients  uint32
//	files    uint32
//	ninst    uint32   number of installed-file indices
//	inst     [ninst]uint32
//	nevents  uint64
//	events   [nevents]{at int64, client uint32, file uint32, op uint8}
//
// All integers are little-endian.

var magic = [4]byte{'V', 'T', 'R', '1'}

// ErrBadFormat reports a malformed trace stream.
var ErrBadFormat = errors.New("trace: bad format")

// Write encodes the trace to w.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	var hdr [20]byte
	le.PutUint64(hdr[0:8], uint64(t.Duration))
	le.PutUint32(hdr[8:12], uint32(t.Clients))
	le.PutUint32(hdr[12:16], uint32(t.Files))
	le.PutUint32(hdr[16:20], uint32(len(t.Installed)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	inst := make([]uint32, 0, len(t.Installed))
	for f := range t.Installed {
		inst = append(inst, f)
	}
	sort.Slice(inst, func(i, j int) bool { return inst[i] < inst[j] })
	var u32 [4]byte
	for _, f := range inst {
		le.PutUint32(u32[:], f)
		if _, err := bw.Write(u32[:]); err != nil {
			return err
		}
	}
	var n64 [8]byte
	le.PutUint64(n64[:], uint64(len(t.Events)))
	if _, err := bw.Write(n64[:]); err != nil {
		return err
	}
	var ev [17]byte
	for _, e := range t.Events {
		le.PutUint64(ev[0:8], uint64(e.At))
		le.PutUint32(ev[8:12], e.Client)
		le.PutUint32(ev[12:16], e.File)
		ev[16] = byte(e.Op)
		if _, err := bw.Write(ev[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, m)
	}
	le := binary.LittleEndian
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadFormat, err)
	}
	t := &Trace{
		Duration: time.Duration(le.Uint64(hdr[0:8])),
		Clients:  int(le.Uint32(hdr[8:12])),
		Files:    int(le.Uint32(hdr[12:16])),
	}
	ninst := le.Uint32(hdr[16:20])
	const maxInstalled = 1 << 24
	if ninst > maxInstalled {
		return nil, fmt.Errorf("%w: %d installed files exceeds limit", ErrBadFormat, ninst)
	}
	if ninst > 0 {
		// Never preallocate from an untrusted count: grow as the bytes
		// actually arrive.
		t.Installed = make(map[uint32]bool, min(int(ninst), 1<<12))
		var u32 [4]byte
		for i := uint32(0); i < ninst; i++ {
			if _, err := io.ReadFull(br, u32[:]); err != nil {
				return nil, fmt.Errorf("%w: truncated installed list: %v", ErrBadFormat, err)
			}
			t.Installed[le.Uint32(u32[:])] = true
		}
	}
	var n64 [8]byte
	if _, err := io.ReadFull(br, n64[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated event count: %v", ErrBadFormat, err)
	}
	n := le.Uint64(n64[:])
	const maxEvents = 1 << 30
	if n > maxEvents {
		return nil, fmt.Errorf("%w: %d events exceeds limit", ErrBadFormat, n)
	}
	// Preallocate conservatively; an untrusted count must not drive a
	// multi-gigabyte allocation before the bytes exist.
	t.Events = make([]Event, 0, min(int(n), 1<<16))
	var ev [17]byte
	var prev time.Duration
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, ev[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated events: %v", ErrBadFormat, err)
		}
		e := Event{
			At:     time.Duration(le.Uint64(ev[0:8])),
			Client: le.Uint32(ev[8:12]),
			File:   le.Uint32(ev[12:16]),
			Op:     Op(ev[16]),
		}
		if e.Op != OpRead && e.Op != OpWrite {
			return nil, fmt.Errorf("%w: bad op %d", ErrBadFormat, ev[16])
		}
		if e.At < prev {
			return nil, fmt.Errorf("%w: events out of order", ErrBadFormat)
		}
		prev = e.At
		t.Events = append(t.Events, e)
	}
	return t, nil
}
