package trace

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPoissonRatesMatchConfig(t *testing.T) {
	tr := Poisson(PoissonConfig{
		Seed:      1,
		Duration:  2 * time.Hour,
		Clients:   4,
		Files:     20,
		ReadRate:  0.864,
		WriteRate: 0.04,
	})
	s := tr.Measure()
	if math.Abs(s.ReadRate-0.864) > 0.05 {
		t.Fatalf("measured read rate %.4f, want ≈0.864", s.ReadRate)
	}
	if math.Abs(s.WriteRate-0.04) > 0.01 {
		t.Fatalf("measured write rate %.4f, want ≈0.04", s.WriteRate)
	}
}

func TestPoissonEventsSortedAndInRange(t *testing.T) {
	tr := Poisson(PoissonConfig{Seed: 2, Duration: time.Hour, Clients: 3, Files: 5, ReadRate: 1, WriteRate: 0.1})
	var prev time.Duration
	for _, e := range tr.Events {
		if e.At < prev {
			t.Fatal("events out of order")
		}
		prev = e.At
		if e.At < 0 || e.At >= tr.Duration {
			t.Fatalf("event at %v outside [0, %v)", e.At, tr.Duration)
		}
		if int(e.Client) >= tr.Clients || int(e.File) >= tr.Files {
			t.Fatalf("event indices out of range: %+v", e)
		}
		if e.Op != OpRead && e.Op != OpWrite {
			t.Fatalf("bad op %v", e.Op)
		}
	}
}

func TestPoissonDeterministicPerSeed(t *testing.T) {
	cfg := PoissonConfig{Seed: 7, Duration: time.Hour, Clients: 2, Files: 3, ReadRate: 0.5, WriteRate: 0.05}
	a, b := Poisson(cfg), Poisson(cfg)
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed produced different traces")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("same seed produced different events")
		}
	}
	cfg.Seed = 8
	c := Poisson(cfg)
	if len(c.Events) == len(a.Events) {
		same := true
		for i := range c.Events {
			if c.Events[i] != a.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestPoissonBurstinessNearOne(t *testing.T) {
	tr := Poisson(PoissonConfig{Seed: 3, Duration: 4 * time.Hour, Clients: 1, Files: 10, ReadRate: 1})
	b := tr.BurstinessIndex()
	if b < 0.7 || b > 1.4 {
		t.Fatalf("Poisson burstiness index %.3f, want ≈1", b)
	}
}

func TestBurstyIsBurstierThanPoisson(t *testing.T) {
	p := Poisson(PoissonConfig{Seed: 4, Duration: 4 * time.Hour, Clients: 1, Files: 10, ReadRate: 0.864})
	b := Bursty(BurstyConfig{Seed: 4, Duration: 4 * time.Hour, Clients: 1, Files: 10, ReadRate: 0.864})
	pi, bi := p.BurstinessIndex(), b.BurstinessIndex()
	if bi <= pi*1.5 {
		t.Fatalf("bursty index %.3f not clearly above Poisson %.3f", bi, pi)
	}
}

func TestBurstyLongRunRateCalibrated(t *testing.T) {
	tr := Bursty(BurstyConfig{
		Seed: 5, Duration: 8 * time.Hour, Clients: 2, Files: 10,
		ReadRate: 0.864, WriteRate: 0.04,
	})
	s := tr.Measure()
	if math.Abs(s.ReadRate-0.864) > 0.1 {
		t.Fatalf("bursty read rate %.4f, want ≈0.864", s.ReadRate)
	}
	if math.Abs(s.WriteRate-0.04) > 0.015 {
		t.Fatalf("bursty write rate %.4f, want ≈0.04", s.WriteRate)
	}
}

func TestVWorkloadShape(t *testing.T) {
	tr := V(VConfig{
		Seed: 6, Duration: 4 * time.Hour, Clients: 2,
		RegularFiles: 30, InstalledFiles: 20,
		ReadRate: 0.864, WriteRate: 0.04,
	})
	s := tr.Measure()
	// Installed files take about half of reads and no writes.
	share := float64(s.InstalledReads) / float64(s.Reads)
	if math.Abs(share-0.5) > 0.08 {
		t.Fatalf("installed read share %.3f, want ≈0.5", share)
	}
	for _, e := range tr.Events {
		if e.Op == OpWrite && tr.Installed[e.File] {
			t.Fatal("write to an installed file")
		}
	}
	if len(tr.Installed) != 20 {
		t.Fatalf("installed set size %d, want 20", len(tr.Installed))
	}
	// Read/write ratio ≈ 0.864/0.04 = 21.6 — "almost an order of
	// magnitude higher" than the 2-4:1 of Unix block-level traces.
	if s.ReadWriteRatio < 15 || s.ReadWriteRatio > 30 {
		t.Fatalf("read/write ratio %.1f, want ≈21.6", s.ReadWriteRatio)
	}
}

func TestVWorkloadInstalledIndicesFollowRegular(t *testing.T) {
	tr := V(VConfig{
		Seed: 6, Duration: time.Hour, Clients: 1,
		RegularFiles: 10, InstalledFiles: 5,
		ReadRate: 1, WriteRate: 0.1,
	})
	for f := range tr.Installed {
		if f < 10 || f >= 15 {
			t.Fatalf("installed index %d outside [10,15)", f)
		}
	}
	if tr.Files != 15 {
		t.Fatalf("Files = %d, want 15", tr.Files)
	}
}

func TestMerge(t *testing.T) {
	a := Poisson(PoissonConfig{Seed: 1, Duration: time.Hour, Clients: 1, Files: 5, ReadRate: 1})
	b := Poisson(PoissonConfig{Seed: 2, Duration: 2 * time.Hour, Clients: 2, Files: 3, ReadRate: 0.5})
	m := Merge(a, b)
	if m.Duration != 2*time.Hour || m.Clients != 2 || m.Files != 5 {
		t.Fatalf("merge header = %+v", m)
	}
	if len(m.Events) != len(a.Events)+len(b.Events) {
		t.Fatal("merge lost events")
	}
	var prev time.Duration
	for _, e := range m.Events {
		if e.At < prev {
			t.Fatal("merged events out of order")
		}
		prev = e.At
	}
}

func TestGeneratorsValidateConfig(t *testing.T) {
	cases := []func(){
		func() { Poisson(PoissonConfig{Duration: 0, Clients: 1, Files: 1, ReadRate: 1}) },
		func() { Poisson(PoissonConfig{Duration: time.Second, Clients: 0, Files: 1, ReadRate: 1}) },
		func() { Poisson(PoissonConfig{Duration: time.Second, Clients: 1, Files: 0, ReadRate: 1}) },
		func() {
			V(VConfig{Duration: time.Second, Clients: 1, RegularFiles: 1, InstalledFiles: 0, ReadRate: 1})
		},
		func() {
			V(VConfig{Duration: time.Second, Clients: 1, RegularFiles: 1, InstalledFiles: 1, ReadRate: 1, InstalledShare: 2})
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCodecRoundTrip(t *testing.T) {
	orig := V(VConfig{
		Seed: 9, Duration: time.Hour, Clients: 3,
		RegularFiles: 10, InstalledFiles: 4,
		ReadRate: 0.864, WriteRate: 0.04,
	})
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Duration != orig.Duration || got.Clients != orig.Clients || got.Files != orig.Files {
		t.Fatalf("header mismatch: %+v vs %+v", got, orig)
	}
	if len(got.Events) != len(orig.Events) {
		t.Fatalf("event count %d vs %d", len(got.Events), len(orig.Events))
	}
	for i := range got.Events {
		if got.Events[i] != orig.Events[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
	if len(got.Installed) != len(orig.Installed) {
		t.Fatal("installed set mismatch")
	}
	for f := range orig.Installed {
		if !got.Installed[f] {
			t.Fatalf("installed file %d lost", f)
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("VTR1"), // truncated header
		append([]byte("VTR1"), make([]byte, 20)...), // truncated event count
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader(c)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("case %d: err = %v, want ErrBadFormat", i, err)
		}
	}
}

func TestCodecRejectsBadOp(t *testing.T) {
	orig := Poisson(PoissonConfig{Seed: 1, Duration: time.Minute, Clients: 1, Files: 1, ReadRate: 1})
	if len(orig.Events) == 0 {
		t.Skip("empty trace")
	}
	var buf bytes.Buffer
	orig.Write(&buf)
	data := buf.Bytes()
	data[len(data)-1] = 99 // corrupt last op
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}

func TestMeasureEmptyTrace(t *testing.T) {
	tr := &Trace{Duration: time.Hour, Clients: 1, Files: 1}
	s := tr.Measure()
	if s.Reads != 0 || s.Writes != 0 || !math.IsInf(s.ReadWriteRatio, 1) {
		t.Fatalf("empty measure = %+v", s)
	}
	if tr.BurstinessIndex() != 0 {
		t.Fatal("empty burstiness nonzero")
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("Op strings wrong")
	}
	if Op(9).String() == "" {
		t.Fatal("unknown op string empty")
	}
}

// Property: codec round-trips arbitrary well-formed traces.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, clients, files uint8) bool {
		tr := Poisson(PoissonConfig{
			Seed:      seed,
			Duration:  10 * time.Minute,
			Clients:   int(clients%5) + 1,
			Files:     int(files%5) + 1,
			ReadRate:  0.5,
			WriteRate: 0.05,
		})
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range got.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
