package replica

import (
	"net"
	"sync"
	"testing"
	"time"

	"leases/internal/obs/tracing"
)

// freeAddrs reserves n distinct loopback addresses.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	var addrs []string
	var lns []net.Listener
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func startSet(t *testing.T, n int, term time.Duration) []*Node {
	t.Helper()
	addrs := freeAddrs(t, n)
	var nodes []*Node
	for i := 0; i < n; i++ {
		nd, err := NewNode(NodeConfig{
			ID: i, Peers: addrs, Term: term,
			Allowance: term / 10, Seed: int64(i) + 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		t.Cleanup(nd.Stop)
	}
	return nodes
}

// waitMaster polls until exactly one live node is master, returning
// its index (-1 on timeout). skip marks dead nodes.
func waitMaster(nodes []*Node, skip map[int]bool, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for i, nd := range nodes {
			if skip[i] {
				continue
			}
			if nd.IsMaster() {
				return i
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return -1
}

const nodeTerm = 300 * time.Millisecond

// TestNodeElection: three TCP nodes elect exactly one master after the
// boot quiet period.
func TestNodeElection(t *testing.T) {
	nodes := startSet(t, 3, nodeTerm)
	id := waitMaster(nodes, nil, 10*time.Second)
	if id < 0 {
		t.Fatal("no master elected over TCP")
	}
	// Mastership is exclusive at every sample.
	for i := 0; i < 20; i++ {
		masters := 0
		for _, nd := range nodes {
			if nd.IsMaster() {
				masters++
			}
		}
		if masters > 1 {
			t.Fatalf("%d simultaneous masters", masters)
		}
		time.Sleep(nodeTerm / 10)
	}
	// Followers learn who the master is.
	for i, nd := range nodes {
		if i == id {
			continue
		}
		if got := nd.MasterIndex(); got != id {
			t.Logf("follower %d believes master is %d (want %d) — belief may lag", i, got, id)
		}
	}
}

// TestNodeFailover: stopping the master yields a new one within a few
// terms.
func TestNodeFailover(t *testing.T) {
	nodes := startSet(t, 3, nodeTerm)
	old := waitMaster(nodes, nil, 10*time.Second)
	if old < 0 {
		t.Fatal("no master elected")
	}
	nodes[old].Stop()
	id := waitMaster(nodes, map[int]bool{old: true}, 10*time.Second)
	if id < 0 || id == old {
		t.Fatalf("no failover after stopping master %d (got %d)", old, id)
	}
}

// TestNodeRoleCallback: OnRole fires with elected/demoted transitions
// in order.
func TestNodeRoleCallback(t *testing.T) {
	addrs := freeAddrs(t, 3)
	var mu sync.Mutex
	roles := map[int][]Role{}
	var nodes []*Node
	for i := 0; i < 3; i++ {
		i := i
		nd, err := NewNode(NodeConfig{
			ID: i, Peers: addrs, Term: nodeTerm, Allowance: nodeTerm / 10, Seed: int64(i),
			OnRole: func(r Role, master int) {
				mu.Lock()
				roles[i] = append(roles[i], r)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		t.Cleanup(nd.Stop)
	}
	id := waitMaster(nodes, nil, 10*time.Second)
	if id < 0 {
		t.Fatal("no master")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		var sawMaster bool
		for _, r := range roles[id] {
			if r == RoleMaster {
				sawMaster = true
			}
		}
		mu.Unlock()
		if sawMaster {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("master %d never got an OnRole(master) callback: %v", id, roles[id])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicationRPCs: quorum write replication, max-term replication,
// and catch-up sync over real TCP.
func TestReplicationRPCs(t *testing.T) {
	addrs := freeAddrs(t, 3)
	var mu sync.Mutex
	applied := map[int][]FileState{}
	maxTerms := map[int][]time.Duration{}
	var nodes []*Node
	for i := 0; i < 3; i++ {
		i := i
		nd, err := NewNode(NodeConfig{
			ID: i, Peers: addrs, Term: nodeTerm, Allowance: nodeTerm / 10, Seed: int64(i),
			OnReplApply: func(f FileState) (bool, error) {
				mu.Lock()
				applied[i] = append(applied[i], f)
				mu.Unlock()
				return true, nil
			},
			OnSyncState: func() ([]FileState, time.Duration) {
				mu.Lock()
				defer mu.Unlock()
				out := append([]FileState(nil), applied[i]...)
				var floor time.Duration
				for _, d := range maxTerms[i] {
					if d > floor {
						floor = d
					}
				}
				return out, floor
			},
			OnMaxTerm: func(d time.Duration) error {
				mu.Lock()
				maxTerms[i] = append(maxTerms[i], d)
				mu.Unlock()
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		t.Cleanup(nd.Stop)
	}
	id := waitMaster(nodes, nil, 10*time.Second)
	if id < 0 {
		t.Fatal("no master")
	}
	master := nodes[id]
	if err := master.ReplicateWrite(tracing.Context{}, FileState{Path: "/f0", Seq: 1, Data: []byte("hello")}); err != nil {
		t.Fatalf("ReplicateWrite: %v", err)
	}
	if err := master.ReplicateMaxTerm(nodeTerm); err != nil {
		t.Fatalf("ReplicateMaxTerm: %v", err)
	}
	mu.Lock()
	gotApply, gotTerm := 0, 0
	for i := range nodes {
		if i == id {
			continue
		}
		if len(applied[i]) > 0 {
			gotApply++
			if applied[i][0].Path != "/f0" || string(applied[i][0].Data) != "hello" {
				t.Errorf("peer %d applied %+v", i, applied[i][0])
			}
		}
		if len(maxTerms[i]) > 0 {
			gotTerm++
		}
	}
	mu.Unlock()
	if gotApply < 1 {
		t.Fatal("no peer applied the replicated write")
	}
	if gotTerm < 1 {
		t.Fatal("no peer persisted the replicated max term")
	}
	// A promotion merges the new master's OWN state with a quorum sync
	// (self + quorum-1 peers is a quorum, which intersects the write's
	// quorum). Model that merge for each possible successor: the one
	// that applied the push always finds the write in its own state,
	// whatever peer the sync's single needed ack came from.
	found := false
	for _, peerID := range []int{(id + 1) % 3, (id + 2) % 3} {
		files, _, err := nodes[peerID].SyncFromPeers(tracing.Context{})
		if err != nil {
			t.Fatalf("SyncFromPeers from %d: %v", peerID, err)
		}
		mu.Lock()
		own := append([]FileState(nil), applied[peerID]...)
		mu.Unlock()
		for _, f := range append(files, own...) {
			if f.Path == "/f0" && f.Seq == 1 && string(f.Data) == "hello" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no successor's own+synced state contains the replicated write")
	}
}

// TestReplicateWriteHonestAcks: a peer that drops a frame as stale
// answers applied=false, and such answers do not count toward the
// replication quorum — re-replicating an already-replicated sequence
// must fail rather than pretend the bytes landed.
func TestReplicateWriteHonestAcks(t *testing.T) {
	addrs := freeAddrs(t, 3)
	var mu sync.Mutex
	seqs := map[int]map[string]uint64{}
	var nodes []*Node
	for i := 0; i < 3; i++ {
		i := i
		seqs[i] = map[string]uint64{}
		nd, err := NewNode(NodeConfig{
			ID: i, Peers: addrs, Term: nodeTerm, Allowance: nodeTerm / 10, Seed: int64(i),
			OnReplApply: func(f FileState) (bool, error) {
				mu.Lock()
				defer mu.Unlock()
				if f.Seq <= seqs[i][f.Path] {
					return false, nil
				}
				seqs[i][f.Path] = f.Seq
				return true, nil
			},
			OnSyncState: func() ([]FileState, time.Duration) { return nil, 0 },
			OnMaxTerm:   func(time.Duration) error { return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		t.Cleanup(nd.Stop)
	}
	id := waitMaster(nodes, nil, 10*time.Second)
	if id < 0 {
		t.Fatal("no master")
	}
	master := nodes[id]
	if err := master.ReplicateWrite(tracing.Context{}, FileState{Path: "/f0", Seq: 1, Data: []byte("v1")}); err != nil {
		t.Fatalf("first ReplicateWrite: %v", err)
	}
	if err := master.ReplicateWrite(tracing.Context{}, FileState{Path: "/f0", Seq: 1, Data: []byte("v1")}); err == nil {
		t.Fatal("re-replicating an already-held sequence reached quorum on stale drops")
	}
	if err := master.ReplicateWrite(tracing.Context{}, FileState{Path: "/f0", Seq: 2, Data: []byte("v2")}); err != nil {
		t.Fatalf("ReplicateWrite seq 2: %v", err)
	}
}
