package replica

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"
)

// fuzzRounds is the per-run budget knob shared with the model checker:
// LEASECHECK_SEEDS scales the number of random schedules (the nightly
// deep run sets it to 20000), defaulting to a quick 300.
func fuzzRounds(t *testing.T) int {
	if s := os.Getenv("LEASECHECK_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad LEASECHECK_SEEDS %q", s)
		}
		return n
	}
	if testing.Short() {
		return 40
	}
	return 300
}

// TestElectionFuzz throws random crash/restart and link-cut schedules
// at a replica set and checks the two properties everything above is
// built on: never two masters at once (asserted every simulated
// millisecond by the bus), and — once the faults stop — a master
// emerges within a bounded number of terms.
func TestElectionFuzz(t *testing.T) {
	rounds := fuzzRounds(t)
	for seed := 0; seed < rounds; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(int64(seed)*2654435761 + 13))
		n := 3 + rng.Intn(2)*2 // 3 or 5 replicas
		b := newBus(t, n, testTerm, testAllowance)
		down := make([]int, n) // ms until restart; 0 = up

		// Fault phase: ~8 terms of random crashes and link cuts. A
		// majority stays up so progress remains possible afterwards.
		steps := int(8 * testTerm / time.Millisecond)
		for s := 0; s < steps; s++ {
			if rng.Intn(200) == 0 {
				victim := rng.Intn(n)
				crashed := 0
				for _, d := range down {
					if d > 0 {
						crashed++
					}
				}
				if down[victim] == 0 && crashed < (n-1)/2 {
					down[victim] = 1 + rng.Intn(int(2*testTerm/time.Millisecond))
					// Crash-stop: sever every link; restart below heals
					// them and puts the machine through its honest
					// amnesia + quiet period.
					for i := 0; i < n; i++ {
						b.cut[victim][i] = true
						b.cut[i][victim] = true
					}
				}
			}
			if rng.Intn(400) == 0 {
				// Transient one-way link cut, healed a moment later by
				// the restart sweep or left for the fault phase's end.
				b.cut[rng.Intn(n)][rng.Intn(n)] = true
			}
			for v := range down {
				if down[v] > 0 {
					down[v]--
					if down[v] == 0 {
						b.machines[v].Restart(b.now)
						for i := 0; i < n; i++ {
							b.cut[v][i] = false
							b.cut[i][v] = false
						}
					}
				}
			}
			b.step(time.Millisecond)
		}

		// Heal everything and require convergence. The longest wait is
		// a freshly restarted machine's quiet period plus a few
		// contended election rounds.
		for i := 0; i < n; i++ {
			if down[i] > 0 {
				down[i] = 0
				b.machines[i].Restart(b.now)
			}
			for j := 0; j < n; j++ {
				b.cut[i][j] = false
			}
		}
		b.step(8 * testTerm)
		if b.master() < 0 {
			t.Fatalf("seed %d: no master within 8 terms after faults healed", seed)
		}
	}
}
