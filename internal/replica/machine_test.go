package replica

import (
	"testing"
	"time"
)

// bus is a tiny deterministic test harness: N machines, messages
// delivered after a fixed delay, time advanced in lockstep.
type bus struct {
	t        *testing.T
	machines []*Machine
	now      time.Time
	delay    time.Duration
	queue    []busMsg
	// cut[i][j] drops messages from i to j when true.
	cut [][]bool
}

type busMsg struct {
	at  time.Time
	to  int
	msg Msg
}

func newBus(t *testing.T, n int, term, allowance time.Duration) *bus {
	start := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	b := &bus{t: t, now: start, delay: time.Millisecond}
	for i := 0; i < n; i++ {
		b.machines = append(b.machines, NewMachine(Config{
			ID: i, N: n, Term: term, Allowance: allowance, Seed: int64(i) + 7,
		}, start))
		b.cut = append(b.cut, make([]bool, n))
	}
	return b
}

// send enqueues outgoing messages, routed by their To field.
func (b *bus) send(from int, out []Msg) {
	for _, m := range out {
		if b.cut[from][m.To] {
			continue
		}
		b.queue = append(b.queue, busMsg{at: b.now.Add(b.delay), to: m.To, msg: m})
	}
}

// step advances time by d, running ticks and deliveries in order.
func (b *bus) step(d time.Duration) {
	target := b.now.Add(d)
	for b.now.Before(target) {
		b.now = b.now.Add(time.Millisecond)
		// Deliveries first, then ticks. send appends replies to
		// b.queue, so drain into a local slice first.
		pending := b.queue
		b.queue = nil
		for _, qm := range pending {
			if qm.at.After(b.now) {
				b.queue = append(b.queue, qm)
				continue
			}
			b.send(qm.to, b.machines[qm.to].HandleMessage(b.now, qm.msg))
		}
		for i, m := range b.machines {
			if !b.now.Before(m.NextWake()) {
				b.send(i, m.Tick(b.now))
			}
		}
		b.assertAtMostOneMaster()
	}
}

func (b *bus) assertAtMostOneMaster() {
	masters := 0
	for _, m := range b.machines {
		if m.IsMaster(b.now) {
			masters++
		}
	}
	if masters > 1 {
		b.t.Fatalf("%v: %d simultaneous masters", b.now, masters)
	}
}

func (b *bus) master() int {
	for i, m := range b.machines {
		if m.IsMaster(b.now) {
			return i
		}
	}
	return -1
}

const (
	testTerm      = 200 * time.Millisecond
	testAllowance = 20 * time.Millisecond
)

// TestElectionConverges: from a cold start, exactly one of three
// replicas wins the master lease after the quiet period.
func TestElectionConverges(t *testing.T) {
	b := newBus(t, 3, testTerm, testAllowance)
	b.step(testTerm + 5*testTerm) // quiet period + election time
	if b.master() < 0 {
		t.Fatal("no master elected after quiet period + 5 terms")
	}
}

// TestMasterRenews: the winner keeps renewing; the mastership is
// stable over many terms.
func TestMasterRenews(t *testing.T) {
	b := newBus(t, 3, testTerm, testAllowance)
	b.step(6 * testTerm)
	first := b.master()
	if first < 0 {
		t.Fatal("no master elected")
	}
	for i := 0; i < 10; i++ {
		b.step(testTerm)
		if got := b.master(); got != first {
			t.Fatalf("mastership moved from %d to %d with no faults", first, got)
		}
	}
}

// TestFailover: crashing the master yields a new master within a few
// terms, never two at once (asserted every step).
func TestFailover(t *testing.T) {
	b := newBus(t, 3, testTerm, testAllowance)
	b.step(6 * testTerm)
	old := b.master()
	if old < 0 {
		t.Fatal("no master elected")
	}
	// Crash: cut the old master off entirely and restart its machine.
	for i := range b.machines {
		b.cut[old][i] = true
		b.cut[i][old] = true
	}
	b.machines[old].Restart(b.now)
	b.step(6 * testTerm)
	got := b.master()
	if got < 0 || got == old {
		t.Fatalf("no failover: master is %d (old %d)", got, old)
	}
}

// TestPartitionedMasterStepsDown: a master that cannot reach its peers
// loses its own lease (on its own clock) no later than the acceptors'
// view expires, so a successor can never overlap it.
func TestPartitionedMasterStepsDown(t *testing.T) {
	b := newBus(t, 3, testTerm, testAllowance)
	b.step(6 * testTerm)
	old := b.master()
	if old < 0 {
		t.Fatal("no master elected")
	}
	// Asymmetric partition: master's outbound messages dropped.
	for i := range b.machines {
		b.cut[old][i] = true
	}
	b.step(6 * testTerm)
	if b.machines[old].IsMaster(b.now) {
		t.Fatal("partitioned master still believes it is master")
	}
	if b.master() < 0 {
		t.Fatal("peers elected no successor")
	}
}

// TestRestartQuietPeriod: a restarted machine answers no election
// traffic for a full quiet window.
func TestRestartQuietPeriod(t *testing.T) {
	start := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	m := NewMachine(Config{ID: 1, N: 3, Term: testTerm, Allowance: testAllowance}, start)
	m.Restart(start)
	during := start.Add(testTerm / 2)
	if out := m.HandleMessage(during, Msg{Kind: MsgPrepare, From: 0, Ballot: 3}); out != nil {
		t.Fatalf("machine answered prepare during quiet period: %v", out)
	}
	after := start.Add(testTerm + time.Millisecond)
	out := m.HandleMessage(after, Msg{Kind: MsgPrepare, From: 0, Ballot: 3})
	if len(out) != 1 || out[0].Kind != MsgPromise || !out[0].Ack {
		t.Fatalf("machine did not promise after quiet period: %v", out)
	}
}

// TestBallotUniqueness: ballots from different replicas never collide.
func TestBallotUniqueness(t *testing.T) {
	start := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	seen := map[uint64]int{}
	for id := 0; id < 3; id++ {
		m := NewMachine(Config{ID: id, N: 3, Term: testTerm}, start)
		for k := 0; k < 50; k++ {
			b := m.nextBallot()
			if prev, dup := seen[b]; dup {
				t.Fatalf("ballot %d drawn by both %d and %d", b, prev, id)
			}
			seen[b] = id
		}
	}
}

// TestRoleReporting covers the Role view the admin plane exposes.
func TestRoleReporting(t *testing.T) {
	b := newBus(t, 3, testTerm, testAllowance)
	for _, m := range b.machines {
		if r := m.Role(b.now); r != RoleFollower {
			t.Fatalf("fresh machine role %v", r)
		}
	}
	b.step(6 * testTerm)
	id := b.master()
	if id < 0 {
		t.Fatal("no master")
	}
	if r := b.machines[id].Role(b.now); r != RoleMaster {
		t.Fatalf("master reports role %v", r)
	}
	if exp := b.machines[id].MasterUntil(); !exp.After(b.now) {
		t.Fatalf("master lease expiry %v not in the future (%v)", exp, b.now)
	}
}

// TestMasterBallot: the ballot view is non-zero exactly while the
// machine holds the master lease.
func TestMasterBallot(t *testing.T) {
	b := newBus(t, 3, testTerm, testAllowance)
	for _, m := range b.machines {
		if bal := m.MasterBallot(b.now); bal != 0 {
			t.Fatalf("fresh machine reports master ballot %d", bal)
		}
	}
	b.step(6 * testTerm)
	id := b.master()
	if id < 0 {
		t.Fatal("no master elected")
	}
	if bal := b.machines[id].MasterBallot(b.now); bal == 0 {
		t.Fatal("live master reports ballot 0")
	}
	for i, m := range b.machines {
		if i != id && m.MasterBallot(b.now) != 0 {
			t.Fatalf("follower %d reports a master ballot", i)
		}
	}
}

// TestAcceptsMasterFrame covers the replication fence: a follower
// honours frames stamped with the live master's current ballot,
// rejects frames from anyone else, rejects stale ballots once a newer
// one has been promised or accepted, and keeps honouring the same
// master across lease renewals (senders re-stamp the current ballot).
func TestAcceptsMasterFrame(t *testing.T) {
	b := newBus(t, 3, testTerm, testAllowance)
	b.step(6 * testTerm)
	old := b.master()
	if old < 0 {
		t.Fatal("no master elected")
	}
	follower := (old + 1) % 3
	bal := b.machines[old].MasterBallot(b.now)
	if !b.machines[follower].AcceptsMasterFrame(b.now, old, bal) {
		t.Fatal("follower rejects the live master's current ballot")
	}
	if b.machines[follower].AcceptsMasterFrame(b.now, follower, bal) {
		t.Fatal("follower accepts a frame from a non-master sender")
	}
	if b.machines[follower].AcceptsMasterFrame(b.now, old, 0) {
		t.Fatal("follower accepts a frame below its accepted ballot")
	}

	// Renewals raise the ballot; a re-stamped frame must still pass.
	b.step(4 * testTerm)
	if b.master() != old {
		t.Fatalf("mastership moved with no faults")
	}
	renewed := b.machines[old].MasterBallot(b.now)
	if !b.machines[follower].AcceptsMasterFrame(b.now, old, renewed) {
		t.Fatal("follower rejects the renewed ballot")
	}

	// Fail the master over; the deposed reign's ballot must be dead at
	// the followers even though it once was the live master's.
	for i := range b.machines {
		b.cut[old][i] = true
		b.cut[i][old] = true
	}
	b.machines[old].Restart(b.now)
	b.step(6 * testTerm)
	succ := b.master()
	if succ < 0 || succ == old {
		t.Fatalf("no failover: master is %d (old %d)", succ, old)
	}
	other := 3 - succ - old
	if b.machines[other].AcceptsMasterFrame(b.now, old, renewed) {
		t.Fatal("follower still accepts the deposed master's ballot")
	}
	if !b.machines[other].AcceptsMasterFrame(b.now, succ, b.machines[succ].MasterBallot(b.now)) {
		t.Fatal("follower rejects the successor's ballot")
	}
}
