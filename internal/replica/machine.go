// Package replica implements a PaxosLease-style diskless master lease
// among N leasesrv replicas (Trencseni et al., "PaxosLease: Diskless
// Paxos for Leases"). Exactly one replica at a time — the master —
// grants file leases to clients; the others redirect. The master's
// authority is itself a lease: it expires on the master's own clock a
// margin ε before it expires on any acceptor's clock, so a partitioned
// master provably steps down before its peers can elect a successor.
//
// The negotiation is diskless: acceptors persist nothing. Safety
// instead comes from a quiet period — a restarted replica answers no
// election traffic for one full maximum lease duration after boot, so
// any promise it made before crashing has expired before it can
// contradict it. This mirrors the paper's §2 recovery argument for
// file leases, applied one level up.
//
// The package is split in two layers:
//
//   - Machine (this file): the pure protocol state machine. It owns no
//     goroutines, sockets, or timers; callers feed it messages and
//     explicit `now` instants and it returns messages to send. The
//     model checker (internal/check) drives a Machine per simulated
//     replica directly on the netsim substrate.
//   - Node (node.go): the TCP runtime that runs a Machine over
//     internal/proto framing with internal/clock timers — the form
//     cmd/leasesrv embeds.
package replica

import (
	"fmt"
	"math/rand"
	"time"
)

// MsgKind identifies an election message between replicas.
type MsgKind uint8

// Election message kinds; they map 1:1 onto proto.TPrepare..TAccept on
// the wire and onto netsim payload kinds in the model.
const (
	MsgPrepare MsgKind = iota + 1
	MsgPromise
	MsgPropose
	MsgAccept
)

func (k MsgKind) String() string {
	switch k {
	case MsgPrepare:
		return "prepare"
	case MsgPromise:
		return "promise"
	case MsgPropose:
		return "propose"
	case MsgAccept:
		return "accept"
	}
	return fmt.Sprintf("msg%d", uint8(k))
}

// Msg is one election message. Remaining is meaningful on MsgPromise
// (the acceptor's view of how long its accepted lease still runs;
// zero if none) and on MsgPropose (the lease duration being granted).
// Owner is the lease owner being reported (MsgPromise) or proposed
// (MsgPropose). Outgoing messages carry an explicit To so transports
// route without positional conventions.
type Msg struct {
	Kind      MsgKind
	From      int
	To        int
	Ballot    uint64
	Owner     int
	Remaining time.Duration
	// Ack reports whether a promise/accept is positive; a negative
	// reply (rejected ballot) just updates the proposer's ballot floor.
	Ack bool
}

// Role is a replica's current standing in the election.
type Role string

// Roles. A replica is Master only while its own timer says the master
// lease it won is still valid (minus ε); Candidate while it has an
// election round in flight; Follower otherwise.
const (
	RoleFollower  Role = "follower"
	RoleCandidate Role = "candidate"
	RoleMaster    Role = "master"
)

// Config parameterizes a Machine.
type Config struct {
	// ID is this replica's index in [0, N).
	ID int
	// N is the replica-set size.
	N int
	// Term is the master-lease duration T. The winner's authority runs
	// [prepare-send, prepare-send+T-Allowance) on its own clock and
	// [receipt, receipt+T) on each acceptor's.
	Term time.Duration
	// Allowance is the clock margin ε subtracted from the master's own
	// view of its lease, covering bounded drift between replicas.
	Allowance time.Duration
	// Quiet is how long a freshly-started machine stays silent before
	// joining elections — the diskless-safety window. It must be at
	// least Term; zero defaults to Term.
	Quiet time.Duration
	// Seed drives election backoff jitter deterministically.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Term == 0 {
		c.Term = 2 * time.Second
	}
	if c.Quiet < c.Term {
		c.Quiet = c.Term
	}
	return c
}

// acceptor is the promise/accept half of the machine: what this
// replica has guaranteed to the rest of the set.
type acceptor struct {
	promised uint64 // highest ballot promised
	accepted uint64 // ballot of the accepted lease, 0 if none
	owner    int    // owner of the accepted lease
	expires  time.Time
}

// proposer is the prepare/propose half: this replica's own attempt to
// win (or renew) the master lease.
type proposer struct {
	ballot    uint64
	preparing bool
	proposing bool
	sentAt    time.Time // prepare send instant anchoring the lease
	promises  int
	accepts   int
	// othersLease reports that some prepare round saw a live lease
	// owned by another replica; the round is abandoned.
	othersLease bool
}

// Machine is the pure PaxosLease state machine for one replica. It is
// not safe for concurrent use; Node serializes access.
type Machine struct {
	cfg Config
	acc acceptor
	prp proposer
	rng *rand.Rand

	// quietUntil gates all participation after (re)start.
	quietUntil time.Time
	// masterUntil is this replica's own conservative view of the lease
	// it holds (zero when not master).
	masterUntil time.Time
	// masterBallot is the ballot the current master lease was won (or
	// last renewed) with; zero when not master. Replication frames are
	// stamped with it so acceptors can fence out frames from an older
	// lease incarnation.
	masterBallot uint64
	// ballotFloor is the highest ballot seen anywhere, so the next
	// round starts above it.
	ballotFloor uint64
	// backoffUntil delays the next election attempt after a failed
	// round, breaking simultaneous-candidate livelock.
	backoffUntil time.Time
	// wake is the earliest instant Tick must next run.
	wake time.Time
}

// NewMachine returns a machine that stays quiet until start+Quiet and
// then campaigns whenever it observes no live master.
func NewMachine(cfg Config, start time.Time) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.ID)<<32 ^ 0x9e3779b9)),
	}
	m.quietUntil = start.Add(cfg.Quiet)
	m.wake = m.quietUntil
	return m
}

// Config reports the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// IsMaster reports whether this replica holds the master lease at now,
// judged conservatively on its own clock (term minus ε).
func (m *Machine) IsMaster(now time.Time) bool {
	return !m.masterUntil.IsZero() && now.Before(m.masterUntil)
}

// MasterUntil reports when this replica's own master lease expires on
// its clock (zero when it is not master).
func (m *Machine) MasterUntil() time.Time { return m.masterUntil }

// MasterBallot reports the ballot the master lease held at now was won
// with, and zero when this replica is not master. The master stamps
// replication frames with it; see AcceptsMasterFrame.
func (m *Machine) MasterBallot(now time.Time) uint64 {
	if !m.IsMaster(now) {
		return 0
	}
	return m.masterBallot
}

// AcceptsMasterFrame is the replication fence: it reports whether a
// frame claiming to come from replica `from` under election ballot
// `ballot` should be honoured at now. The claim is checked against this
// acceptor's own election state, not the frame's say-so: `from` must be
// the replica this acceptor currently believes holds a live master
// lease, and the ballot must be no older than anything the acceptor has
// promised or accepted — so a deposed master's late-flushed frames,
// stamped with the ballot of a lease a successor has since superseded,
// die here instead of poisoning per-path sequence state. Frames from a
// renewal the acceptor has not yet processed (ballot above its accepted
// one, same owner) pass; the master's one-shot retry covers the
// opposite race.
func (m *Machine) AcceptsMasterFrame(now time.Time, from int, ballot uint64) bool {
	owner, live := m.Master(now)
	if !live || owner != from {
		return false
	}
	return ballot >= m.acc.promised && ballot >= m.acc.accepted
}

// Master reports which replica this machine believes holds the master
// lease at now, and whether it believes anyone does. The belief comes
// from its acceptor state — the lease it last accepted — so it is
// exactly as stale as PaxosLease allows beliefs to be.
func (m *Machine) Master(now time.Time) (int, bool) {
	if m.IsMaster(now) {
		return m.cfg.ID, true
	}
	if m.acc.accepted != 0 && now.Before(m.acc.expires) {
		return m.acc.owner, true
	}
	return -1, false
}

// Role classifies the replica at now.
func (m *Machine) Role(now time.Time) Role {
	switch {
	case m.IsMaster(now):
		return RoleMaster
	case m.prp.preparing || m.prp.proposing:
		return RoleCandidate
	default:
		return RoleFollower
	}
}

// NextWake reports the earliest instant at which Tick has work to do.
func (m *Machine) NextWake() time.Time { return m.wake }

// Restart re-enters the post-boot quiet period, as after a crash: all
// volatile promise/accept state is gone and the machine must not
// answer election traffic until every promise it might have made has
// expired.
func (m *Machine) Restart(now time.Time) {
	cfg := m.cfg
	seed := m.rng.Int63()
	*m = Machine{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	m.quietUntil = now.Add(cfg.Quiet)
	m.wake = m.quietUntil
}

// nextBallot returns a fresh ballot unique to this replica: ballots
// are k*N + ID, so no two replicas ever share one.
func (m *Machine) nextBallot() uint64 {
	n := uint64(m.cfg.N)
	id := uint64(m.cfg.ID)
	k := m.ballotFloor/n + 1
	b := k*n + id
	for b <= m.ballotFloor {
		k++
		b = k*n + id
	}
	m.ballotFloor = b
	return b
}

// majority is the quorum size: floor(N/2)+1.
func (m *Machine) majority() int { return m.cfg.N/2 + 1 }

// Tick runs the machine's timers at now and returns messages to send.
// Callers must invoke it no later than NextWake and may invoke it any
// time earlier.
func (m *Machine) Tick(now time.Time) []Msg {
	// Master lease expired on our own clock: step down before any
	// acceptor could have granted a successor.
	if !m.masterUntil.IsZero() && !now.Before(m.masterUntil) {
		m.masterUntil = time.Time{}
		m.masterBallot = 0
	}
	if now.Before(m.quietUntil) {
		m.wake = m.quietUntil
		return nil
	}
	// Renew early (at T/2 before our own expiry) while master;
	// otherwise campaign when nobody holds a live lease.
	if m.IsMaster(now) {
		if m.prp.preparing || m.prp.proposing {
			return nil // renewal round already in flight
		}
		renewAt := m.masterUntil.Add(-m.cfg.Term / 2)
		if now.Before(renewAt) {
			m.wake = renewAt
			return nil
		}
		return m.startRound(now)
	}
	if m.prp.preparing || m.prp.proposing {
		// A round is in flight; if it stalls (lost messages), retry
		// after a full term plus jitter.
		if now.Before(m.wake) {
			return nil
		}
		m.abandonRound(now)
	}
	if now.Before(m.backoffUntil) {
		m.wake = m.backoffUntil
		return nil
	}
	if _, live := m.Master(now); live {
		m.wake = m.acc.expires
		return nil
	}
	return m.startRound(now)
}

// startRound begins a prepare phase and returns the prepares to send.
func (m *Machine) startRound(now time.Time) []Msg {
	b := m.nextBallot()
	m.prp = proposer{ballot: b, preparing: true, sentAt: now}
	// Stall timeout: if the round hasn't completed in a term, abandon
	// and re-campaign with jittered backoff.
	m.wake = now.Add(m.cfg.Term)
	out := make([]Msg, 0, m.cfg.N)
	for i := 0; i < m.cfg.N; i++ {
		if i == m.cfg.ID {
			continue
		}
		out = append(out, Msg{Kind: MsgPrepare, From: m.cfg.ID, To: i, Ballot: b})
	}
	// Self-delivery: count our own promise/accept locally. (At N=1
	// the self promise completes the round immediately.)
	out = append(out, m.handlePrepareSelf(now)...)
	return out
}

func (m *Machine) abandonRound(now time.Time) {
	m.prp = proposer{}
	// Jittered backoff within [T/2, T): simultaneous candidates that
	// collided draw different waits and separate.
	half := m.cfg.Term / 2
	m.backoffUntil = now.Add(half + time.Duration(m.rng.Int63n(int64(half)+1)))
	if m.backoffUntil.After(m.wake) || m.wake.Before(now) {
		m.wake = m.backoffUntil
	}
}

// handlePrepareSelf applies our own prepare to our own acceptor and
// feeds the resulting promise straight back to the proposer, returning
// any propose fan-out it triggers.
func (m *Machine) handlePrepareSelf(now time.Time) []Msg {
	rep := m.acceptPrepare(now, m.cfg.ID, m.prp.ballot)
	return m.onPromise(now, rep)
}

// HandleMessage applies one incoming election message at now and
// returns messages to send in response. Messages during the quiet
// period are dropped unanswered.
func (m *Machine) HandleMessage(now time.Time, msg Msg) []Msg {
	if now.Before(m.quietUntil) {
		return nil
	}
	switch msg.Kind {
	case MsgPrepare:
		rep := m.acceptPrepare(now, msg.From, msg.Ballot)
		return []Msg{rep}
	case MsgPropose:
		rep := m.acceptPropose(now, msg)
		return []Msg{rep}
	case MsgPromise:
		return m.onPromise(now, msg)
	case MsgAccept:
		m.onAccept(now, msg)
		return nil
	}
	return nil
}

// acceptPrepare is the acceptor's prepare handler: promise the ballot
// if it is the highest seen, reporting any live accepted lease so the
// proposer can back off.
func (m *Machine) acceptPrepare(now time.Time, from int, ballot uint64) Msg {
	if ballot > m.ballotFloor {
		m.ballotFloor = ballot
	}
	rep := Msg{Kind: MsgPromise, From: m.cfg.ID, To: from, Ballot: ballot}
	if ballot <= m.acc.promised {
		return rep // Ack stays false: ballot too old.
	}
	m.acc.promised = ballot
	rep.Ack = true
	if m.acc.accepted != 0 && now.Before(m.acc.expires) {
		rep.Owner = m.acc.owner
		rep.Remaining = m.acc.expires.Sub(now)
	} else {
		rep.Owner = -1
		m.acc.accepted = 0
	}
	return rep
}

// acceptPropose is the acceptor's propose handler: accept the lease if
// the ballot still holds the promise.
func (m *Machine) acceptPropose(now time.Time, msg Msg) Msg {
	rep := Msg{Kind: MsgAccept, From: m.cfg.ID, To: msg.From, Ballot: msg.Ballot}
	if msg.Ballot < m.acc.promised {
		return rep
	}
	m.acc.promised = msg.Ballot
	m.acc.accepted = msg.Ballot
	m.acc.owner = msg.Owner
	m.acc.expires = now.Add(msg.Remaining)
	rep.Ack = true
	return rep
}

// onPromise counts a promise toward the proposer's prepare quorum.
func (m *Machine) onPromise(now time.Time, msg Msg) []Msg {
	if !m.prp.preparing || msg.Ballot != m.prp.ballot {
		return nil
	}
	if !msg.Ack {
		m.abandonRound(now)
		return nil
	}
	if msg.Owner >= 0 && msg.Owner != m.cfg.ID && msg.Remaining > 0 {
		// A live lease owned by someone else: abandon and wait it out.
		m.prp.othersLease = true
	}
	m.prp.promises++
	if m.prp.promises < m.majority() {
		return nil
	}
	if m.prp.othersLease {
		m.abandonRound(now)
		return nil
	}
	// Majority of empty (or self-owned) promises: propose ourselves.
	m.prp.preparing = false
	m.prp.proposing = true
	out := make([]Msg, 0, m.cfg.N)
	prop := Msg{Kind: MsgPropose, From: m.cfg.ID, Ballot: m.prp.ballot, Owner: m.cfg.ID, Remaining: m.cfg.Term}
	for i := 0; i < m.cfg.N; i++ {
		if i == m.cfg.ID {
			continue
		}
		p := prop
		p.To = i
		out = append(out, p)
	}
	prop.To = m.cfg.ID
	self := m.acceptPropose(now, prop)
	m.onAccept(now, self)
	return out
}

// onAccept counts an accept; a majority makes us master. The lease is
// anchored at the prepare send instant on OUR clock minus ε, so it
// expires here strictly before it expires at any acceptor.
func (m *Machine) onAccept(now time.Time, msg Msg) {
	if !m.prp.proposing || msg.Ballot != m.prp.ballot || !msg.Ack {
		return
	}
	m.prp.accepts++
	if m.prp.accepts < m.majority() {
		return
	}
	until := m.prp.sentAt.Add(m.cfg.Term - m.cfg.Allowance)
	ballot := m.prp.ballot
	m.prp = proposer{}
	if !until.After(now) {
		// The round took longer than the lease itself; worthless.
		m.wake = now
		return
	}
	m.masterUntil = until
	m.masterBallot = ballot
	// Wake at the renewal point.
	m.wake = until.Add(-m.cfg.Term / 2)
	if m.wake.Before(now) {
		m.wake = now
	}
}
