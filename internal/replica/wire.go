package replica

import (
	"fmt"
	"time"

	"leases/internal/proto"
)

// Election messages travel as proto frames with reqID 0; the frame
// type encodes the Msg kind, the payload the rest.

// msgFrameType maps a Msg kind onto its frame type.
func msgFrameType(k MsgKind) proto.MsgType {
	switch k {
	case MsgPrepare:
		return proto.TPrepare
	case MsgPromise:
		return proto.TPromise
	case MsgPropose:
		return proto.TPropose
	case MsgAccept:
		return proto.TAccept
	}
	panic(fmt.Sprintf("replica: unknown msg kind %d", k))
}

// frameMsgKind maps a frame type back onto a Msg kind (0 if not an
// election frame).
func frameMsgKind(t proto.MsgType) MsgKind {
	switch t {
	case proto.TPrepare:
		return MsgPrepare
	case proto.TPromise:
		return MsgPromise
	case proto.TPropose:
		return MsgPropose
	case proto.TAccept:
		return MsgAccept
	}
	return 0
}

// encodeMsg renders an election message payload.
func encodeMsg(m Msg) []byte {
	var e proto.Enc
	e.I64(int64(m.From)).I64(int64(m.To)).U64(m.Ballot).I64(int64(m.Owner)).Dur(m.Remaining)
	if m.Ack {
		e.U8(1)
	} else {
		e.U8(0)
	}
	return e.Bytes()
}

// decodeMsg parses an election message payload for kind k.
func decodeMsg(k MsgKind, payload []byte) (Msg, error) {
	d := proto.NewDec(payload)
	m := Msg{
		Kind:      k,
		From:      int(d.I64()),
		To:        int(d.I64()),
		Ballot:    d.U64(),
		Owner:     int(d.I64()),
		Remaining: d.Dur(),
		Ack:       d.U8() == 1,
	}
	return m, d.Err
}

// FileState is one replicated file's state, exchanged during a new
// master's catch-up sync and applied by followers.
type FileState struct {
	Path string
	Seq  uint64
	Data []byte
}

// encodeSyncRep renders a peer's full replicated file state plus its
// max-term floor — the largest lease term it has seen replicated. The
// floor rides the sync because a term raise is only quorum-acked, not
// everywhere: the new master must take the max over a quorum to bound
// its §2 recovery window.
func encodeSyncRep(files []FileState, maxTerm time.Duration) []byte {
	var e proto.Enc
	e.U32(uint32(len(files)))
	for _, f := range files {
		e.Str(f.Path).U64(f.Seq).Blob(f.Data)
	}
	e.Dur(maxTerm)
	return e.Bytes()
}

// decodeSyncRep parses a sync reply.
func decodeSyncRep(payload []byte) ([]FileState, time.Duration, error) {
	d := proto.NewDec(payload)
	n := d.U32()
	var out []FileState
	for i := uint32(0); i < n && d.Err == nil; i++ {
		out = append(out, FileState{Path: d.Str(), Seq: d.U64(), Data: d.Blob()})
	}
	maxTerm := d.Dur()
	return out, maxTerm, d.Err
}
