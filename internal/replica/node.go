package replica

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"leases/internal/clock"
	"leases/internal/obs"
	"leases/internal/obs/tracing"
	"leases/internal/proto"
)

// NodeConfig parameterizes the TCP runtime around a Machine.
type NodeConfig struct {
	// ID is this replica's index; Peers[ID] is its own peer-mesh
	// listen address.
	ID int
	// Peers lists the replica set's peer-mesh addresses in replica-ID
	// order. Replica IDs — and the NOT_MASTER index hints clients
	// receive — are positions in this list, so every replica and every
	// client must be configured with the same ordering.
	Peers []string
	// Term is the master-lease duration; Allowance the clock margin ε.
	Term      time.Duration
	Allowance time.Duration
	// Clock defaults to the wall clock.
	Clock clock.Clock
	// Seed drives election jitter.
	Seed int64
	// RPCTimeout bounds replication round-trips (default 2s).
	RPCTimeout time.Duration
	// DialTimeout bounds peer dials (default 2s).
	DialTimeout time.Duration
	Obs         *obs.Observer
	// Tracer, when enabled, records per-peer replication ship spans
	// under a sampled write's trace context and gives each election its
	// own trace (prepare → elected → the server's promote/recovery
	// spans). Nil is the disabled state and costs one branch.
	Tracer *tracing.Tracer

	// OnRole is invoked (from a dedicated goroutine) on role
	// transitions with the new role and the master index this replica
	// believes in (-1 unknown). Transitions are never dropped: while a
	// callback runs, later transitions coalesce to the latest state,
	// which is delivered next — so an elected or demoted edge always
	// reaches the callback, possibly merged with newer ones.
	OnRole func(role Role, master int)
	// OnReplApply applies one replicated write pushed by the master,
	// reporting whether it was actually applied (false: dropped as
	// stale, i.e. this replica already holds that sequence or newer).
	// Only real applies count toward the master's replication quorum.
	OnReplApply func(f FileState) (applied bool, err error)
	// OnSyncState dumps this replica's replicated file state and its
	// max-term floor for a new master's catch-up sync.
	OnSyncState func() ([]FileState, time.Duration)
	// OnMaxTerm persists a max-term raise replicated by the master.
	OnMaxTerm func(d time.Duration) error
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 2 * time.Second
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	return c
}

// roleChange is one ordered role-transition notification.
type roleChange struct {
	role    Role
	master  int
	elected bool // this replica just became master
	demoted bool // this replica just ceased being master
}

// Node runs a Machine over real TCP: a peer-mesh listener, lazily
// dialed outgoing connections, clock-driven ticks, and the replication
// RPCs the master uses to commit writes on a quorum.
type Node struct {
	cfg NodeConfig
	clk clock.Clock
	ln  net.Listener

	mu         sync.Mutex // guards m and the role snapshot
	m          *Machine
	lastRole   Role
	lastMaster int

	peers    []*peer
	kick     chan struct{}
	stopped  chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Role-change mailbox: a 1-slot latest-value cell instead of a
	// queue, so transitions are coalesced — never dropped — when the
	// consumer (notifyLoop running OnRole) is slow. A dropped
	// 'elected' would skip the promotion catch-up sync for a whole
	// mastership; a dropped 'demoted' would leave client sessions
	// attached to a deposed master.
	notifyMu  sync.Mutex
	pending   *roleChange
	notifySig chan struct{}

	// shipOps are precomputed per-peer latency histogram names
	// ("repl-ship-peer2"), so the replication hot path never formats a
	// string.
	shipOps []string

	// Election trace state: one root span per election attempt, with an
	// elect.prepare child covering the candidate round. The root stays
	// open across the promotion catch-up (the server's failover.promote
	// and recovery.window spans attach under it via ElectionContext) and
	// is closed by EndElection or a demotion.
	electMu   sync.Mutex
	electRoot tracing.Span
	electPrep tracing.Span
}

// NewNode creates (but does not start) a node.
func NewNode(cfg NodeConfig) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.ID < 0 || cfg.ID >= len(cfg.Peers) {
		return nil, fmt.Errorf("replica: id %d out of range for %d peers", cfg.ID, len(cfg.Peers))
	}
	n := &Node{
		cfg:        cfg,
		clk:        cfg.Clock,
		kick:       make(chan struct{}, 1),
		notifySig:  make(chan struct{}, 1),
		stopped:    make(chan struct{}),
		lastRole:   RoleFollower,
		lastMaster: -1,
	}
	n.m = NewMachine(Config{
		ID: cfg.ID, N: len(cfg.Peers), Term: cfg.Term,
		Allowance: cfg.Allowance, Seed: cfg.Seed,
	}, n.clk.Now())
	for i, addr := range cfg.Peers {
		n.shipOps = append(n.shipOps, fmt.Sprintf("repl-ship-peer%d", i))
		if i == cfg.ID {
			n.peers = append(n.peers, nil)
			continue
		}
		n.peers = append(n.peers, newPeer(n, i, addr))
	}
	return n, nil
}

// Start binds the peer-mesh listener and launches the node's loops.
func (n *Node) Start() error {
	ln, err := net.Listen("tcp", n.cfg.Peers[n.cfg.ID])
	if err != nil {
		return err
	}
	n.ln = ln
	n.wg.Add(3)
	go n.acceptLoop()
	go n.timerLoop()
	go n.notifyLoop()
	return nil
}

// Addr reports the peer-mesh listen address (useful with ":0").
func (n *Node) Addr() string {
	if n.ln == nil {
		return n.cfg.Peers[n.cfg.ID]
	}
	return n.ln.Addr().String()
}

// Stop shuts the node down and waits for its goroutines.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stopped)
		if n.ln != nil {
			n.ln.Close()
		}
		for _, p := range n.peers {
			if p != nil {
				p.close()
			}
		}
		n.EndElection("shutdown")
	})
	n.wg.Wait()
}

// IsMaster reports whether this replica currently holds the master
// lease on its own conservative clock.
func (n *Node) IsMaster() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.m.IsMaster(n.clk.Now())
}

// Role reports the replica's current election role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.m.Role(n.clk.Now())
}

// MasterIndex reports which replica this node believes is master (-1
// unknown).
func (n *Node) MasterIndex() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if id, ok := n.m.Master(n.clk.Now()); ok {
		return id
	}
	return -1
}

// MasterExpiry reports when this replica's own master lease expires
// (zero when it is not master).
func (n *Node) MasterExpiry() time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.m.MasterUntil()
}

// MasterBallot reports the election ballot the current master lease
// was won with (zero when this replica is not master) — the fencing
// token stamped into replication frames.
func (n *Node) MasterBallot() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.m.MasterBallot(n.clk.Now())
}

// ID reports the replica's index.
func (n *Node) ID() int { return n.cfg.ID }

// quorum is the majority size over the full replica set.
func (n *Node) quorum() int { return len(n.cfg.Peers)/2 + 1 }

// deliver feeds one incoming election message to the machine.
func (n *Node) deliver(msg Msg) {
	n.mu.Lock()
	out := n.m.HandleMessage(n.clk.Now(), msg)
	n.roleCheckLocked()
	n.mu.Unlock()
	n.send(out)
	// The machine's wake point may have moved; let the timer recompute.
	select {
	case n.kick <- struct{}{}:
	default:
	}
}

// roleCheckLocked detects role transitions; callers hold n.mu.
func (n *Node) roleCheckLocked() {
	now := n.clk.Now()
	role := n.m.Role(now)
	master := -1
	if id, ok := n.m.Master(now); ok {
		master = id
	}
	if role == n.lastRole && master == n.lastMaster {
		return
	}
	rc := roleChange{
		role: role, master: master,
		elected: role == RoleMaster && n.lastRole != RoleMaster,
		demoted: n.lastRole == RoleMaster && role != RoleMaster,
	}
	n.lastRole, n.lastMaster = role, master
	n.electionSpans(role, rc)
	// Coalesce into the latest-value mailbox: the consumer always sees
	// the newest role, with elected/demoted edges OR-ed so neither
	// safety-relevant transition is ever lost. Never blocks the
	// protocol on a slow consumer.
	n.notifyMu.Lock()
	if n.pending == nil {
		n.pending = &rc
	} else {
		n.pending.role, n.pending.master = rc.role, rc.master
		n.pending.elected = n.pending.elected || rc.elected
		n.pending.demoted = n.pending.demoted || rc.demoted
	}
	n.notifyMu.Unlock()
	select {
	case n.notifySig <- struct{}{}:
	default: // a signal is already pending; the consumer will see ours
	}
}

// electionSpans turns role transitions into an election trace: entering
// the candidate role roots a new "election" trace with an
// "elect.prepare" child covering the PaxosLease round; winning ends the
// prepare span ("elected") but leaves the root open for the promotion
// sequence (catch-up sync, Promote, recovery window — recorded by the
// server under ElectionContext); losing the round or being demoted
// closes everything. Sampling is the tracer's: an unsampled election
// records nothing and the handles stay zero.
func (n *Node) electionSpans(role Role, rc roleChange) {
	if !n.cfg.Tracer.Enabled() {
		return
	}
	n.electMu.Lock()
	defer n.electMu.Unlock()
	switch {
	case rc.elected:
		if !n.electRoot.Recording() {
			// Defensive: an election observed without a candidate
			// transition (coalesced edges) still gets a trace.
			n.electRoot = n.cfg.Tracer.StartRoot("election")
		}
		if n.electPrep.Recording() {
			n.electPrep.EndNote("elected")
			n.electPrep = tracing.Span{}
		}
	case rc.demoted:
		n.endElectionLocked("demoted")
	case role == RoleCandidate:
		if !n.electRoot.Recording() {
			n.electRoot = n.cfg.Tracer.StartRoot("election")
			n.electPrep = n.cfg.Tracer.StartChild(n.electRoot.Context(), "elect.prepare")
		}
	case role == RoleFollower:
		// A candidate round that lapsed without a win.
		n.endElectionLocked("lost")
	}
}

func (n *Node) endElectionLocked(note string) {
	if n.electPrep.Recording() {
		n.electPrep.EndNote(note)
		n.electPrep = tracing.Span{}
	}
	if n.electRoot.Recording() {
		n.electRoot.EndNote(note)
		n.electRoot = tracing.Span{}
	}
}

// ElectionContext exposes the open election trace's context (zero when
// none is open or the election was unsampled), so the promotion
// sequence in cmd/leasesrv can attach its sync and promote spans to the
// failover that caused them.
func (n *Node) ElectionContext() tracing.Context {
	n.electMu.Lock()
	defer n.electMu.Unlock()
	return n.electRoot.Context()
}

// EndElection closes the open election trace with an outcome note —
// called once the promotion sequence completes (or fails) so the trace
// covers election through serving.
func (n *Node) EndElection(note string) {
	n.electMu.Lock()
	defer n.electMu.Unlock()
	n.endElectionLocked(note)
}

// send dispatches outgoing election messages to their peers.
func (n *Node) send(msgs []Msg) {
	for _, m := range msgs {
		if m.To == n.cfg.ID || m.To < 0 || m.To >= len(n.peers) {
			continue
		}
		n.peers[m.To].enqueue(msgFrameType(m.Kind), 0, encodeMsg(m))
	}
}

// timerLoop drives Machine.Tick at its requested wake points.
func (n *Node) timerLoop() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		now := n.clk.Now()
		var out []Msg
		if !now.Before(n.m.NextWake()) {
			out = n.m.Tick(now)
			n.roleCheckLocked()
		}
		wait := n.m.NextWake().Sub(n.clk.Now())
		n.mu.Unlock()
		n.send(out)
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		ch, cancel := n.clk.After(wait)
		select {
		case <-ch:
		case <-n.kick:
			cancel()
		case <-n.stopped:
			cancel()
			return
		}
	}
}

// notifyLoop delivers role transitions: obs events first, then the
// OnRole callback. Each iteration takes the coalesced latest state from
// the mailbox, so a long-running callback (a promotion catch-up sync)
// delays delivery but never loses a transition.
func (n *Node) notifyLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.notifySig:
		case <-n.stopped:
			return
		}
		n.notifyMu.Lock()
		rc := n.pending
		n.pending = nil
		n.notifyMu.Unlock()
		if rc == nil {
			continue
		}
		if o := n.cfg.Obs; o.Enabled() {
			// When both edges coalesced, order them toward the final
			// role: a replica ending up master was demoted first.
			if rc.elected && rc.demoted && rc.role == RoleMaster {
				o.Record(obs.Event{Type: obs.EvDemoted, Replica: n.cfg.ID})
				o.Record(obs.Event{Type: obs.EvElected, Replica: n.cfg.ID})
			} else {
				if rc.elected {
					o.Record(obs.Event{Type: obs.EvElected, Replica: n.cfg.ID})
				}
				if rc.demoted {
					o.Record(obs.Event{Type: obs.EvDemoted, Replica: n.cfg.ID})
				}
			}
		}
		if n.cfg.OnRole != nil {
			n.cfg.OnRole(rc.role, rc.master)
		}
	}
}

// acceptLoop serves inbound peer-mesh connections.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.stopped:
				return
			default:
				continue
			}
		}
		n.wg.Add(1)
		go n.serveConn(c)
	}
}

// serveConn handles one inbound peer connection: election messages are
// fed to the machine, replication RPCs answered in place.
func (n *Node) serveConn(c net.Conn) {
	defer n.wg.Done()
	defer c.Close()
	go func() { // unblock the read on shutdown
		<-n.stopped
		c.Close()
	}()
	fr := proto.GetReader(c)
	defer proto.PutReader(fr)
	// The first RPC frame's self-declared sender identity is bound to
	// the connection; frames claiming a different identity later kill
	// it. The mesh carries no cryptographic authentication (DESIGN.md
	// §9 assumes a trusted network), but binding stops one peer — or
	// one stray process — from speaking as several replicas on a
	// single connection.
	boundFrom := -1
	for {
		f, err := fr.Next()
		if err != nil {
			return
		}
		if k := frameMsgKind(f.Type); k != 0 {
			msg, derr := decodeMsg(k, f.Payload)
			f.Recycle()
			if derr == nil {
				n.deliver(msg)
			}
			continue
		}
		if err := n.handleRPC(c, f, &boundFrom); err != nil {
			return
		}
	}
}

// handleRPC answers one replication RPC on the inbound connection.
// boundFrom pins the connection to the first sender identity seen; a
// non-nil return closes the connection.
func (n *Node) handleRPC(c net.Conn, f proto.Frame, boundFrom *int) error {
	reply := func(t proto.MsgType, payload []byte) error {
		return proto.WriteFrame(c, proto.Frame{Type: t, ReqID: f.ReqID, Payload: payload})
	}
	fail := func(err error) error {
		var e proto.Enc
		e.Str(err.Error())
		return reply(proto.TError, e.Bytes())
	}
	// bind validates the frame's claimed sender and pins it to the
	// connection. A violation is not a protocol reply but a connection
	// error: the peer (or impostor) is not speaking the mesh contract.
	bind := func(from int) error {
		if from < 0 || from >= len(n.cfg.Peers) || from == n.cfg.ID {
			return fmt.Errorf("replica: frame claims invalid replica id %d", from)
		}
		if *boundFrom < 0 {
			*boundFrom = from
			return nil
		}
		if *boundFrom != from {
			return fmt.Errorf("replica: connection bound to replica %d, frame claims %d", *boundFrom, from)
		}
		return nil
	}
	defer f.Recycle()
	switch f.Type {
	case proto.TReplApply:
		d := proto.NewDec(f.Payload)
		from := int(d.I64())
		ballot := d.U64()
		fs := FileState{Seq: d.U64(), Path: d.Str(), Data: d.Blob()}
		if d.Err != nil {
			return fail(d.Err)
		}
		if err := bind(from); err != nil {
			fail(err)
			return err
		}
		if !n.masterFrameOK(from, ballot) {
			return fail(fmt.Errorf("replica: apply from %d ballot %d, not the live master lease", from, ballot))
		}
		if n.cfg.OnReplApply == nil {
			return fail(errors.New("replica: no apply hook"))
		}
		applied, err := n.cfg.OnReplApply(fs)
		if err != nil {
			return fail(err)
		}
		// The reply distinguishes a real apply from a stale-sequence
		// drop, so the master counts only replicas that actually hold
		// the write toward its quorum.
		var e proto.Enc
		if applied {
			e.U8(1)
		} else {
			e.U8(0)
		}
		return reply(proto.TOK, e.Bytes())
	case proto.TReplSync:
		d := proto.NewDec(f.Payload)
		from := int(d.I64())
		d.U64() // ballot: sync is read-only and also serves diskless rejoin, so it is not master-fenced
		if d.Err != nil {
			return fail(d.Err)
		}
		if err := bind(from); err != nil {
			fail(err)
			return err
		}
		var files []FileState
		var maxTerm time.Duration
		if n.cfg.OnSyncState != nil {
			files, maxTerm = n.cfg.OnSyncState()
		}
		return reply(proto.TReplSyncRep, encodeSyncRep(files, maxTerm))
	case proto.TReplMaxTerm:
		d := proto.NewDec(f.Payload)
		from := int(d.I64())
		ballot := d.U64()
		term := d.Dur()
		if d.Err != nil {
			return fail(d.Err)
		}
		if err := bind(from); err != nil {
			fail(err)
			return err
		}
		if !n.masterFrameOK(from, ballot) {
			return fail(fmt.Errorf("replica: max-term from %d ballot %d, not the live master lease", from, ballot))
		}
		if n.cfg.OnMaxTerm != nil {
			if err := n.cfg.OnMaxTerm(term); err != nil {
				return fail(err)
			}
		}
		return reply(proto.TOK, nil)
	default:
		return fail(fmt.Errorf("replica: unexpected frame type %v", f.Type))
	}
}

// masterFrameOK fences replication RPCs by the acceptor's own election
// state: the sender must be the replica this node believes holds a live
// master lease AND the frame's ballot must be no older than anything
// this node has promised or accepted. Belief alone (the pre-fix check)
// let a deposed master's late-flushed frames — or any process writing
// the right 'from' byte — mutate per-path sequence state; the ballot
// ties a frame to one specific lease incarnation.
func (n *Node) masterFrameOK(from int, ballot uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.m.AcceptsMasterFrame(n.clk.Now(), from, ballot)
}

// broadcastRPC issues one RPC to every peer concurrently and returns
// the number of COUNTED acknowledgements, waiting only until enough
// have (or all have answered). each consumes (and must recycle) every
// successful non-error reply and reports whether it counts toward the
// quorum; nil counts every TOK-class reply.
//
// tc and span attach one child span per peer round-trip to a sampled
// request's trace (the zero context records nothing); ops, when
// non-nil, is the per-peer latency histogram name table (indexed by
// peer id) each round-trip is observed under.
func (n *Node) broadcastRPC(tc tracing.Context, span string, ops []string, t proto.MsgType, payload []byte, need int, each func(proto.Frame) bool) int {
	var others []*peer
	for _, p := range n.peers {
		if p != nil {
			others = append(others, p)
		}
	}
	if len(others) == 0 {
		return 0
	}
	type result struct {
		f   proto.Frame
		err error
	}
	results := make(chan result, len(others))
	for _, p := range others {
		p := p
		go func() {
			sp := n.cfg.Tracer.StartChild(tc, span)
			o := n.cfg.Obs
			var start time.Time
			if ops != nil && o.Enabled() {
				start = n.clk.Now()
			}
			f, err := p.rpc(t, payload)
			if ops != nil && o.Enabled() {
				o.ObserveOp(ops[p.id], n.clk.Now().Sub(start))
			}
			if sp.Recording() {
				switch {
				case err != nil:
					sp.EndNote(fmt.Sprintf("peer=%d err", p.id))
				case f.Type == proto.TError:
					sp.EndNote(fmt.Sprintf("peer=%d refused", p.id))
				default:
					sp.EndNote(fmt.Sprintf("peer=%d ok", p.id))
				}
			}
			results <- result{f, err}
		}()
	}
	acks := 0
	for i := 0; i < len(others); i++ {
		r := <-results
		if r.err != nil {
			continue
		}
		if r.f.Type == proto.TError {
			r.f.Recycle()
			continue
		}
		counted := true
		if each != nil {
			counted = each(r.f)
		} else {
			r.f.Recycle()
		}
		if counted {
			acks++
		}
		if acks >= need {
			// Late responses are drained (and recycled) by the
			// buffered channel + GC; stop waiting.
			break
		}
	}
	return acks
}

// appliedReply reports whether a TReplApply TOK reply marks a real
// apply (as opposed to a stale-sequence drop), recycling the frame.
func appliedReply(f proto.Frame) bool {
	d := proto.NewDec(f.Payload)
	applied := d.U8() == 1 && d.Err == nil
	f.Recycle()
	return applied
}

// ReplicateWrite pushes one committed write to the peer set and
// returns nil once a quorum (counting this replica) has actually
// applied it — stale-sequence drops and fencing rejections do not
// count, so a successful return really means the bytes are durable on
// a quorum. The master calls this BEFORE applying locally and acking
// the client, so no reader ever observes a value a failover could
// lose. Frames are stamped with the master lease's election ballot;
// one retry re-stamps the current ballot to cover a frame racing a
// lease renewal at a peer.
//
// tc is the causing write's trace context: a sampled write records one
// "repl.ship" child span per peer round-trip, so /traces shows which
// peer the quorum waited on. The zero context records nothing.
func (n *Node) ReplicateWrite(tc tracing.Context, fs FileState) error {
	need := n.quorum() - 1 // counting ourselves
	if need <= 0 {
		return nil
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		ballot := n.MasterBallot()
		if ballot == 0 {
			return errors.New("replica: not master")
		}
		var e proto.Enc
		e.I64(int64(n.cfg.ID)).U64(ballot).U64(fs.Seq).Str(fs.Path).Blob(fs.Data)
		acks := n.broadcastRPC(tc, "repl.ship", n.shipOps, proto.TReplApply, e.Bytes(), need, appliedReply)
		if acks >= need {
			return nil
		}
		lastErr = fmt.Errorf("replica: write %s#%d applied at %d/%d peers", fs.Path, fs.Seq, acks, need)
	}
	return lastErr
}

// ReplicateMaxTerm pushes a durable max-term raise to a quorum before
// the grant that caused it is released to the client, preserving the
// §2 ordering across failover: any future master's recovery window
// covers every lease any past master granted. Ballot-stamped and
// retried once, like ReplicateWrite.
func (n *Node) ReplicateMaxTerm(d time.Duration) error {
	need := n.quorum() - 1
	if need <= 0 {
		return nil
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		ballot := n.MasterBallot()
		if ballot == 0 {
			return errors.New("replica: not master")
		}
		var e proto.Enc
		e.I64(int64(n.cfg.ID)).U64(ballot).Dur(d)
		acks := n.broadcastRPC(tracing.Context{}, "", nil, proto.TReplMaxTerm, e.Bytes(), need, nil)
		if acks >= need {
			return nil
		}
		lastErr = fmt.Errorf("replica: max-term %v replicated to %d/%d peers", d, acks, need)
	}
	return lastErr
}

// SyncFromPeers collects the replicated file state and max-term floor
// from a quorum of the full set (counting this replica) and merges
// them: files by per-path maximum sequence, the floor by maximum. Any
// write or term raise that was ever quorum-acked is present in at
// least one member of any quorum, so the merge recovers every
// acknowledged one. The caller's own state participates implicitly —
// applying the merged files through a seq-guarded apply keeps newer
// local entries, and the caller maxes the floor with its own.
//
// tc is the election trace's context during a promotion catch-up (one
// "repl.sync" child span per peer round-trip); the zero context — a
// follower's diskless rejoin — records nothing.
func (n *Node) SyncFromPeers(tc tracing.Context) ([]FileState, time.Duration, error) {
	need := n.quorum() - 1
	if need <= 0 {
		return nil, 0, nil
	}
	merged := map[string]FileState{}
	var maxTerm time.Duration
	var mu sync.Mutex
	// The request carries (from, ballot) like every replication frame;
	// peers bind from to the connection but do not master-fence syncs,
	// which also serve a restarted follower's diskless rejoin (ballot
	// zero).
	var e proto.Enc
	e.I64(int64(n.cfg.ID)).U64(n.MasterBallot())
	acks := n.broadcastRPC(tc, "repl.sync", nil, proto.TReplSync, e.Bytes(), need, func(f proto.Frame) bool {
		if f.Type != proto.TReplSyncRep {
			f.Recycle()
			return false
		}
		files, floor, err := decodeSyncRep(f.Payload)
		f.Recycle()
		if err != nil {
			return false
		}
		mu.Lock()
		for _, fs := range files {
			if cur, ok := merged[fs.Path]; !ok || fs.Seq > cur.Seq {
				merged[fs.Path] = fs
			}
		}
		if floor > maxTerm {
			maxTerm = floor
		}
		mu.Unlock()
		return true
	})
	if acks < need {
		return nil, 0, fmt.Errorf("replica: sync reached %d/%d peers", acks, need)
	}
	out := make([]FileState, 0, len(merged))
	for _, fs := range merged {
		out = append(out, fs)
	}
	return out, maxTerm, nil
}

// SyncForPromotion runs the catch-up sync for a freshly elected
// master, retrying while the election lease still stands: a transient
// quorum shortfall (a peer mid-restart, a partition healing) must not
// let a master serve without the merged state — the §2 recovery window
// and the per-path sequence floor both come from this merge. It
// returns an error only when the node stops or the mastership lapses,
// in which case the caller must NOT promote: serving stays gated and
// the next election retries the whole sequence.
func (n *Node) SyncForPromotion(tc tracing.Context) ([]FileState, time.Duration, error) {
	for {
		files, floor, err := n.SyncFromPeers(tc)
		if err == nil {
			return files, floor, nil
		}
		if !n.IsMaster() {
			return nil, 0, fmt.Errorf("replica: mastership lapsed during catch-up sync: %w", err)
		}
		wait, cancel := n.clk.After(100 * time.Millisecond)
		select {
		case <-wait:
		case <-n.stopped:
			cancel()
			return nil, 0, errors.New("replica: node stopped during catch-up sync")
		}
	}
}

// peer is one outgoing peer-mesh connection: a send queue for
// fire-and-forget election messages plus an RPC layer demultiplexing
// responses by request ID.
type peer struct {
	n    *Node
	id   int
	addr string

	mu         sync.Mutex // guards conn and writes on it
	conn       net.Conn
	nextDialAt time.Time

	callsMu sync.Mutex
	calls   map[uint64]chan proto.Frame
	nextID  uint64

	out chan outFrame
}

type outFrame struct {
	t       proto.MsgType
	reqID   uint64
	payload []byte
}

func newPeer(n *Node, id int, addr string) *peer {
	p := &peer{n: n, id: id, addr: addr, calls: make(map[uint64]chan proto.Frame), out: make(chan outFrame, 128)}
	n.wg.Add(1)
	go p.sendLoop()
	return p
}

// enqueue queues a fire-and-forget frame; full queues drop (the
// election protocol retries by timer).
func (p *peer) enqueue(t proto.MsgType, reqID uint64, payload []byte) {
	select {
	case p.out <- outFrame{t, reqID, payload}:
	default:
	}
}

func (p *peer) sendLoop() {
	defer p.n.wg.Done()
	for {
		select {
		case f := <-p.out:
			p.writeFrame(f) // errors drop the message; timers retry
		case <-p.n.stopped:
			return
		}
	}
}

// writeFrame sends one frame on the (lazily dialed) connection.
func (p *peer) writeFrame(f outFrame) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		now := time.Now()
		if now.Before(p.nextDialAt) {
			return errors.New("replica: peer dial backoff")
		}
		c, err := net.DialTimeout("tcp", p.addr, p.n.cfg.DialTimeout)
		if err != nil {
			p.nextDialAt = now.Add(100 * time.Millisecond)
			return err
		}
		p.conn = c
		p.n.wg.Add(1)
		go p.readLoop(c)
	}
	err := proto.WriteFrame(p.conn, proto.Frame{Type: f.t, ReqID: f.reqID, Payload: f.payload})
	if err != nil {
		p.conn.Close()
		p.conn = nil
		p.failCalls(err)
	}
	return err
}

// readLoop demultiplexes RPC responses on the outgoing connection.
func (p *peer) readLoop(c net.Conn) {
	defer p.n.wg.Done()
	go func() {
		<-p.n.stopped
		c.Close()
	}()
	fr := proto.GetReader(c)
	defer proto.PutReader(fr)
	for {
		f, err := fr.Next()
		if err != nil {
			p.mu.Lock()
			if p.conn == c {
				p.conn.Close()
				p.conn = nil
			}
			p.mu.Unlock()
			p.failCalls(err)
			return
		}
		if k := frameMsgKind(f.Type); k != 0 {
			// Defensive: a peer answering election traffic on this leg.
			msg, derr := decodeMsg(k, f.Payload)
			f.Recycle()
			if derr == nil {
				p.n.deliver(msg)
			}
			continue
		}
		p.callsMu.Lock()
		ch, ok := p.calls[f.ReqID]
		if ok {
			delete(p.calls, f.ReqID)
		}
		p.callsMu.Unlock()
		if ok {
			ch <- f
		} else {
			f.Recycle()
		}
	}
}

// failCalls aborts every pending RPC after a connection failure.
func (p *peer) failCalls(error) {
	p.callsMu.Lock()
	calls := p.calls
	p.calls = make(map[uint64]chan proto.Frame)
	p.callsMu.Unlock()
	for _, ch := range calls {
		close(ch)
	}
}

// rpc issues one request and waits for its response within the node's
// RPC timeout.
func (p *peer) rpc(t proto.MsgType, payload []byte) (proto.Frame, error) {
	p.callsMu.Lock()
	p.nextID++
	id := p.nextID
	ch := make(chan proto.Frame, 1)
	p.calls[id] = ch
	p.callsMu.Unlock()
	deregister := func() {
		p.callsMu.Lock()
		delete(p.calls, id)
		p.callsMu.Unlock()
	}
	if err := p.writeFrame(outFrame{t, id, payload}); err != nil {
		deregister()
		return proto.Frame{}, err
	}
	timer, cancel := p.n.clk.After(p.n.cfg.RPCTimeout)
	defer cancel()
	select {
	case f, ok := <-ch:
		if !ok {
			return proto.Frame{}, errors.New("replica: peer connection lost")
		}
		return f, nil
	case <-timer:
		deregister()
		return proto.Frame{}, fmt.Errorf("replica: rpc %v to peer %d timed out", t, p.id)
	case <-p.n.stopped:
		deregister()
		return proto.Frame{}, errors.New("replica: node stopped")
	}
}

func (p *peer) close() {
	p.mu.Lock()
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	p.mu.Unlock()
	p.failCalls(errors.New("replica: node stopped"))
}
