package check

import (
	"testing"
	"time"
)

// replicatedGen is the standard 3-replica generator configuration the
// replicated gates explore.
func replicatedGen(p Profile) GenConfig {
	return GenConfig{Servers: 3, Profile: p}
}

// TestReplicatedBasicSchedule hand-builds the canonical failover
// shape: a 3-replica set elects a master, serves a read/write mix,
// loses the master mid-grant, elects a successor, and keeps serving —
// with the sequential-consistency oracle watching every operation.
func TestReplicatedBasicSchedule(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sc := Scenario{
		Clients: 2, Files: 2, Servers: 3,
		Ops: []Op{
			{At: ms(30), Client: 0, File: 0, Kind: OpRead},
			{At: ms(55), Client: 0, File: 0, Kind: OpRead}, // cache hit on the lease
			{At: ms(70), Client: 0, Kind: OpExtend},
			{At: ms(90), Client: 1, File: 0, Kind: OpWrite},
			{At: ms(110), Client: 1, File: 1, Kind: OpWrite},
			// The failover window: ops land while the master is dead and
			// must redirect to (or time out onto) the successor.
			{At: ms(700), Client: 0, File: 0, Kind: OpRead},
			{At: ms(750), Client: 1, File: 0, Kind: OpWrite},
			{At: ms(1400), Client: 0, File: 0, Kind: OpRead},
			{At: ms(1500), Client: 1, File: 1, Kind: OpRead},
		},
		Faults: []Fault{
			{Kind: FaultMasterCrash, At: ms(600), Dur: ms(400)},
		},
	}
	out, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("failover schedule violated: %v", out.Violations)
	}
	if out.WritesAcked == 0 {
		t.Fatalf("no write survived the failover: %+v", out)
	}
	if out.Reads == 0 || out.Extends == 0 || out.CacheHits == 0 {
		t.Fatalf("schedule ran no work: %+v", out)
	}
}

// TestReplicatedAsymPartitionSchedule pins the "partitioned master on
// a stale lease" shape: the master keeps hearing the world while
// everything it sends is held until the window closes. It must step
// down on its own clock, its flushed backlog must be fenced off, and
// every client op must stay sequentially consistent.
func TestReplicatedAsymPartitionSchedule(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sc := Scenario{
		Clients: 2, Files: 1, Servers: 3,
		Ops: []Op{
			{At: ms(30), Client: 0, File: 0, Kind: OpRead},
			{At: ms(50), Client: 1, File: 0, Kind: OpWrite},
			// Into the partition window: the old master receives these
			// but its replies hang in the void.
			{At: ms(650), Client: 0, File: 0, Kind: OpRead},
			{At: ms(700), Client: 1, File: 0, Kind: OpWrite},
			// After heal: the flushed backlog arrives late and must not
			// poison anyone.
			{At: ms(1600), Client: 0, File: 0, Kind: OpRead},
			{At: ms(1700), Client: 1, File: 0, Kind: OpRead},
		},
		Faults: []Fault{
			{Kind: FaultAsymPartition, At: ms(600), Dur: ms(500)},
		},
	}
	out, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("asym-partition schedule violated: %v", out.Violations)
	}
	if out.Reads == 0 || out.Writes == 0 {
		t.Fatalf("schedule ran no work: %+v", out)
	}
}

// TestModelCheckReplicatedQuick is the replicated counterpart of
// TestModelCheckQuick: random multi-server schedules — master crashes,
// asymmetric master partitions, follower crashes, independent replica
// clock drift at the ε budget, plus the whole single-server grammar —
// must stay violation-free under the same oracle.
func TestModelCheckReplicatedQuick(t *testing.T) {
	seeds := quickSeeds(t)
	base := baseSeed(t)
	t.Logf("exploring %d replicated schedules from base seed %d (replay: LEASECHECK_SEED=%d)", seeds, base, base)
	rep, err := Explore(ExploreConfig{
		Gen:      replicatedGen(ProfileAll),
		Mode:     "random",
		Seeds:    seeds,
		BaseSeed: base,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating != nil {
		dir := t.TempDir()
		path := ""
		if rep.Counterexample != nil {
			path, _ = rep.Counterexample.Save(dir)
		}
		t.Fatalf("replicated schedule %d (seed %d) violated: %v\nshrunk counterexample: %s",
			rep.Schedules, rep.Violating.Seed, rep.Outcome.Violations, path)
	}
	t.Logf("%d replicated schedules clean", rep.Schedules)
}

// TestReplicatedProfilesClean localizes failures per fault dimension,
// like TestProfilesClean but with three replicas.
func TestReplicatedProfilesClean(t *testing.T) {
	for _, p := range []Profile{ProfileDrift, ProfilePartition, ProfileCrash} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			t.Parallel()
			rep, err := Explore(ExploreConfig{
				Gen:      replicatedGen(p),
				Mode:     "random",
				Seeds:    150,
				BaseSeed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Violating != nil {
				t.Fatalf("seed %d violated: %v", rep.Violating.Seed, rep.Outcome.Violations)
			}
		})
	}
}

// TestReplicatedDeterministic extends the nondeterminism audit to
// replicated worlds: elections, replication frames, promotion syncs
// and failovers must replay byte-identically.
func TestReplicatedDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		runTwice(t, Generate(seed, replicatedGen(ProfileAll)))
	}
}

// TestBreakQuietCaught demonstrates the election quiet period is
// load-bearing: with restarted replicas rejoining immediately (and
// amnesiac), overlapping follower crashes let a second master win a
// quorum inside the first master's live lease — a diskless split
// brain the oracle observes as a stale read. The same schedules are
// clean under the honest protocol (TestModelCheckReplicatedQuick
// covers the grammar; the pinned artifact covers this exact shape).
func TestBreakQuietCaught(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	for seed := int64(1); seed <= 400; seed++ {
		sc := splitBrainTemplate(seed, ms)
		out, err := RunScenario(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Ok() {
			t.Logf("seed %d caught the quiet break: %v", seed, out.Violations[0])
			honest := sc.clone()
			honest.Break = ""
			hout, err := RunScenario(honest, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !hout.Ok() {
				t.Fatalf("honest run of the same schedule also fails: %v", hout.Violations)
			}
			return
		}
	}
	t.Fatal("no schedule caught the quiet break in 400 seeds")
}

// splitBrainTemplate builds the crash choreography that needs the
// quiet period: while replica A holds the master lease, both of its
// peers crash and restart; amnesiac restarts can then promise and
// accept a second master before A's lease expires. Client 0 holds a
// read lease via A; client 1 writes via the usurper; client 0's
// cache hit is then provably stale. The seed jitters every instant so
// a range of interleavings is explored.
func splitBrainTemplate(seed int64, ms func(int) time.Duration) Scenario {
	j := func(n int64) time.Duration { return time.Duration((seed*7919+n*104729)%97) * time.Millisecond / 10 }
	return Scenario{
		Seed:    seed,
		Clients: 2, Files: 1, Servers: 3,
		Break: BreakQuiet,
		Ops: []Op{
			{At: ms(40) + j(1), Client: 0, File: 0, Kind: OpRead},
			// Renewed on the legitimate master right before the
			// choreography: the cached lease runs to roughly 550ms.
			{At: ms(300) + j(2), Client: 0, Kind: OpExtend},
			{At: ms(420) + j(3), Client: 1, File: 0, Kind: OpWrite},
			// Reads inside the poisoned window: after the usurper applies
			// client 1's write, before the cached lease expires.
			{At: ms(480) + j(5), Client: 0, File: 0, Kind: OpRead},
			{At: ms(510) + j(6), Client: 0, File: 0, Kind: OpRead},
		},
		Faults: []Fault{
			// Replica 2 wins the genesis election (highest ballot in the
			// first round), so 0 and 1 are the followers whose amnesiac
			// restarts can hand out a second quorum.
			{Kind: FaultServerCrash, Server: 0, At: ms(320) + j(7), Dur: ms(25) + j(8)/4},
			{Kind: FaultServerCrash, Server: 1, At: ms(330) + j(9), Dur: ms(25) + j(10)/4},
			// Keep the writer away from the true master: if its write
			// ever reaches replica 2, the legitimate grant table asks
			// client 0 for approval and the stale cache is evicted — the
			// usurper is the only server that can apply the write behind
			// client 0's back.
			{Kind: FaultPartition, Client: 1, Server: 2, At: ms(340), Dur: ms(700)},
		},
	}
}
