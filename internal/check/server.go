package check

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"leases/internal/core"
	"leases/internal/netsim"
	"leases/internal/obs"
	"leases/internal/obs/tracing"
	"leases/internal/replica"
	"leases/internal/sim"
	"leases/internal/vfs"
)

// checkShards exercises the sharded manager's cross-shard routing
// without drowning the small model configurations.
const checkShards = 2

// maxStagedRetries bounds replication-frame retransmission; a staged
// write that cannot reach quorum is dropped unacked (the client has
// long given up) so the engine drains.
const maxStagedRetries = 10

// engineClock adapts the discrete-event engine to clock.Clock for the
// vfs store; only Now is meaningful inside the simulation.
type engineClock struct{ engine *sim.Engine }

func (c engineClock) Now() time.Time { return c.engine.Now() }
func (c engineClock) After(time.Duration) (<-chan time.Time, func() bool) {
	panic("check: After on engine clock")
}
func (c engineClock) Sleep(time.Duration) { panic("check: Sleep on engine clock") }

// Wire payloads. The model speaks typed structs instead of the TCP
// deployment's byte frames, but the message flow — extend/grant,
// write/ack, approval-request/approve — and the SentAt stamps the
// fence depends on are the same.
type extendReq struct {
	ReqID uint64
	From  core.ClientID
	Data  []vfs.Datum
	// TC is the client root's trace context — the model analogue of
	// the TraceFlag wire header.
	TC tracing.Context
}

type grantInfo struct {
	Datum   vfs.Datum
	Term    time.Duration
	Version uint64
	Value   string
	Leased  bool
}

type extendRep struct {
	ReqID  uint64
	Grants []grantInfo
}

type writeReq struct {
	ReqID uint64
	From  core.ClientID
	Datum vfs.Datum
	Value string
	TC    tracing.Context
}

type writeAck struct {
	ReqID   uint64
	Version uint64
}

type approvalReq struct {
	WriteID core.WriteID
	Datum   vfs.Datum
}

type approveMsg struct {
	WriteID core.WriteID
	From    core.ClientID
}

// notMasterRep refuses a client op at a non-master replica, carrying
// the replier's belief about who the master is (-1 when unknown). The
// hint is a within-group replica index.
type notMasterRep struct {
	ReqID uint64
	Hint  int
}

// notOwnerRep refuses a path operation at a group that does not own the
// file, naming the owning group — the model analogue of TNotOwner.
type notOwnerRep struct {
	ReqID uint64
	File  int
	Owner int
}

// renameReq asks the file's owning group to move it to the other group
// — the model's cross-shard rename.
type renameReq struct {
	ReqID uint64
	From  core.ClientID
	File  int
	TC    tracing.Context
}

// renameAck acknowledges a committed move, naming the file's new group.
type renameAck struct {
	ReqID uint64
	Owner int
}

// xferPrepare/xferPrepared are the inter-group prepare exchange of the
// two-phase cross-shard rename. The prepare reserves nothing (the value
// travels at the commit point), but its ack proves a synced master is
// serving on the far side before the source starts tearing down leases
// — a move must not strand a file at a group that cannot serve it.
type xferPrepare struct {
	XferID uint64
	File   int
}

type xferPrepared struct {
	XferID uint64
	File   int
}

// electMsg carries one PaxosLease election message between replicas.
type electMsg struct{ M replica.Msg }

// replFrame replicates one staged write: the master may only apply and
// ack the write after quorum-1 peers have applied seq. Ballot is the
// election ballot the sender's master lease was won (or last renewed)
// with; receivers fence on it, so a deposed master's late frames die
// even at a peer whose belief has not yet caught up.
type replFrame struct {
	From   int
	Ballot uint64
	File   int
	Seq    uint64
	Value  string
}

type replAck struct {
	From int
	File int
	Seq  uint64
}

// syncReq/syncRep implement promotion state sync: a fresh master
// merges quorum-1 peer snapshots before serving, so every write that
// was ever acked (it reached a quorum) is in its store.
type syncReq struct {
	From  int
	ReqID uint64
}

type fileRepl struct {
	File  int
	Seq   uint64
	Value string
}

type syncRep struct {
	From  int
	ReqID uint64
	Files []fileRepl
}

// installMsg pushes the new master's merged snapshot to every peer,
// healing laggards and sequence gaps left by a dead master's partial
// replication.
type installMsg struct {
	From   int
	Ballot uint64
	Files  []fileRepl
}

// classBcast is the periodic §4.3 broadcast extension (TBroadcastExt):
// generation plus class term, stamped with the sender's local clock.
// Clients anchor their coverage at SentAt + Term − ε, so a delayed
// delivery can never extend belief past the horizon the server
// recorded before sending.
type classBcast struct {
	Gen    uint64
	Term   time.Duration
	SentAt time.Time
}

// classFetch asks for the installed-membership snapshot (TInstalled);
// classSnap is the reply (TInstalledRep).
type classFetch struct {
	ReqID uint64
	From  core.ClientID
}

type classSnap struct {
	ReqID  uint64
	Gen    uint64
	Term   time.Duration
	SentAt time.Time
	Data   []vfs.Datum
}

// mwriter is the server's record of one deferred write.
type mwriter struct {
	client   core.ClientID
	reqID    uint64
	datum    vfs.Datum
	value    string
	queuedAt time.Time // server-local, for the write-wait lens
	// tc is the server dispatch span's context: write.apply and the
	// repl.ship fan-out parent under it, like the TCP server.
	tc tracing.Context
}

// stagedWrite is one write past its lease deferral but not yet at
// quorum: its replication frames are in flight.
type stagedWrite struct {
	wtr     mwriter
	seq     uint64
	acks    []bool // by replica index
	retries int
	retryEv *sim.Event
	// ships[i] spans peer i's replication (first transmit to ack),
	// retries included.
	ships []tracing.Span
}

// writeSpans tracks the open spans of one deferred write: the
// write.defer parent and one approve.push child per holder, ended on
// approve, expiry, or teardown.
type writeSpans struct {
	deferSp tracing.Span
	pushes  map[core.ClientID]tracing.Span
}

// xferState is the source master's record of one in-flight outbound
// cross-shard transfer: prepare retries until the destination's master
// acks, then the §2 clearance barrier runs, then the commit point.
type xferState struct {
	id       uint64
	file     int
	dest     int // destination group
	reqID    uint64
	from     core.ClientID
	prepared bool
	// draining marks a transfer whose clearance finished while writes
	// for the file were still in the replication pipeline; the commit
	// fires when the staged queue drains, so the move carries them.
	draining bool
	// barrier is the clearance write's ID once SubmitWrite deferred it;
	// hasBarrier distinguishes "no barrier yet" from WriteID zero.
	hasBarrier bool
	barrier    core.WriteID
	retries    int
	retryEv    *sim.Event
	sp         tracing.Span // server.rename root, ended at commit/abort
}

// mserver is the model file server: the real vfs store and the real
// sharded lease manager under the model's message loop, mirroring the
// TCP deployment's write-deferral and crash-recovery semantics. In
// replicated worlds (sc.Servers > 1) it additionally runs the real
// PaxosLease Machine and the replicate-before-apply pipeline; mach is
// nil in single-server worlds, which behave exactly as before.
type mserver struct {
	w    *world
	idx  int // global server index
	node netsim.NodeID
	// group/rep split idx for sharded worlds: elections, replication
	// frames, and promotion sync all stay within the group, addressed by
	// within-group replica index rep.
	group   int
	rep     int
	store   *vfs.Store
	mgr     *core.ShardedManager
	writers map[core.WriteID]mwriter
	wspans  map[core.WriteID]*writeSpans
	// seen dedupes at-least-once writes per client: reqID → applied
	// version (lost on crash, so duplicates across a crash re-apply —
	// the at-least-once behaviour the oracle must tolerate).
	seen map[core.ClientID]map[uint64]uint64

	deadlineEv *sim.Event
	deadlineAt time.Time
	down       bool
	// persistedMaxTerm survives crashes, like the durable max-term
	// file in internal/server (§5 recovery rule).
	persistedMaxTerm time.Duration

	// Installed-class state (sc.Installed only). Volatile: a crash or
	// promotion reinstalls it under a fresh generation base, and the §5
	// recovery window (stretched to the class term) covers whatever
	// broadcast coverage the previous incarnation left outstanding.
	classGen     uint64
	classMembers []bool // by file; true = installed
	// classCover is the broadcast coverage horizon (server-local):
	// raised to SentAt + InstalledTerm before any broadcast or snapshot
	// leaves, so it bounds every client belief those frames can create.
	classCover time.Time
	// classDemoted records, per demoted file, the coverage horizon
	// captured at demotion; writes to the file wait it out.
	classDemoted []time.Time
	classEv      *sim.Event

	// Replication state (Servers > 1 only).
	mach       *replica.Machine
	machGen    int64
	machEv     *sim.Event
	wasMaster  bool
	lastBelief int
	// applied and nextSeq are per file: the last replication sequence
	// applied to the store and the last one assigned. They are durable
	// (the store survives crashes); sequences double as client-facing
	// versions so version guards stay comparable across failovers.
	applied []uint64
	nextSeq []uint64
	staged  [][]*stagedWrite
	parked  []map[uint64]replFrame
	synced  bool
	syncID  uint64
	syncGot []*syncRep
	syncTry int
	syncEv  *sim.Event

	// Sharding state (Groups > 1 only). peerBelief[g] is the replica
	// this server currently believes is group g's master, rotated when
	// prepare retries go unanswered; xfers tracks in-flight outbound
	// transfers by file, xferByBarrier by clearance-barrier WriteID.
	peerBelief    []int
	xfers         map[int]*xferState
	xferByBarrier map[core.WriteID]*xferState
}

func newMserver(w *world, idx int) *mserver {
	srv := &mserver{
		w:          w,
		idx:        idx,
		group:      w.groupOf(idx),
		rep:        w.replicaOf(idx),
		writers:    make(map[core.WriteID]mwriter),
		wspans:     make(map[core.WriteID]*writeSpans),
		seen:       make(map[core.ClientID]map[uint64]uint64),
		lastBelief: -1,
	}
	srv.node = w.serverNodeID(idx)
	srv.store = vfs.New(engineClock{w.engine}, string(srv.node))
	for f := 0; f < w.sc.Files; f++ {
		path := "/f" + strconv.Itoa(f)
		if _, err := srv.store.Create(path, "srv", vfs.DefaultPerm|vfs.WorldWrite); err != nil {
			panic(fmt.Sprintf("check: seeding %s: %v", path, err))
		}
		val := "init#" + strconv.Itoa(f)
		if _, _, err := srv.store.WriteFile(datumForFile(f).Node, []byte(val)); err != nil {
			panic(fmt.Sprintf("check: seeding %s: %v", path, err))
		}
		if idx == 0 {
			w.orc.initialApplied(f, val)
		}
	}
	srv.resetManager(time.Time{})
	if w.sc.Servers > 1 || w.groups() > 1 {
		// Sequence-based versions: replicated worlds need them because
		// store versions diverge across replicas; sharded worlds because
		// they must stay comparable across a file's moves between groups.
		srv.applied = make([]uint64, w.sc.Files)
		srv.nextSeq = make([]uint64, w.sc.Files)
		for f := 0; f < w.sc.Files; f++ {
			v, err := srv.store.Version(datumForFile(f))
			if err != nil {
				panic(fmt.Sprintf("check: version of file %d: %v", f, err))
			}
			srv.applied[f] = v
			srv.nextSeq[f] = v
		}
	}
	if w.sc.Servers > 1 {
		srv.staged = make([][]*stagedWrite, w.sc.Files)
		srv.parked = make([]map[uint64]replFrame, w.sc.Files)
		for f := 0; f < w.sc.Files; f++ {
			srv.parked[f] = make(map[uint64]replFrame)
		}
		// Genesis machines skip the quiet period: a fresh cluster has no
		// prior promises to contradict, so the first election may start
		// at t0. Restarts go through the honest quiet period.
		srv.mach = srv.newMach(w.start.Add(-w.sc.Term))
		srv.armMach()
	}
	if w.groups() > 1 {
		srv.peerBelief = make([]int, w.groups())
		srv.xfers = make(map[int]*xferState)
		srv.xferByBarrier = make(map[core.WriteID]*xferState)
	}
	srv.resetClass()
	w.fabric.Register(srv.node, srv.handle)
	srv.armClass()
	return srv
}

func (srv *mserver) newMach(start time.Time) *replica.Machine {
	return replica.NewMachine(replica.Config{
		ID:        srv.rep,
		N:         srv.w.sc.Servers,
		Term:      srv.w.sc.Term,
		Allowance: srv.w.sc.Allowance,
		Seed:      mix(srv.w.sc.Seed, 0xe1ec7^int64(srv.idx)<<8^srv.machGen<<20),
	}, start)
}

// resetManager builds a fresh lease manager, optionally inside a
// recovery window ending at recoverUntil (server-local time).
func (srv *mserver) resetManager(recoverUntil time.Time) {
	var opts []core.ManagerOption
	if !recoverUntil.IsZero() {
		opts = append(opts, core.WithRecoveryWindow(recoverUntil))
	}
	srv.mgr = core.NewShardedManager(checkShards, core.FixedTerm(srv.w.sc.Term), opts...)
}

func (srv *mserver) rate() float64       { return srv.w.sc.ServerRates[srv.idx] }
func (srv *mserver) skew() time.Duration { return srv.w.sc.ServerSkews[srv.idx] }

// localNow reads the server's drifting clock.
func (srv *mserver) localNow() time.Time {
	return localAt(srv.w.start, srv.w.engine.Now(), srv.rate(), srv.skew())
}

// quorumPeers is how many peer acknowledgements (excluding the master
// itself) a staged write or promotion sync needs.
func (srv *mserver) quorumPeers() int { return srv.w.sc.Servers / 2 }

// masterFrameOK is the replication fence: replication traffic is only
// honoured from the replica this machine currently believes holds a
// live master lease, AND only when the frame's ballot is at least this
// acceptor's promised/accepted ballot — so a deposed master's
// late-flushed frames die here instead of poisoning the store, even
// when this acceptor's belief has not caught up with the new election.
// Senders re-stamp the current ballot on every retransmit, which
// covers the renewal-boundary race (frame stamped just before the
// sender renewed its own lease at a higher ballot).
func (srv *mserver) masterFrameOK(from int, ballot uint64) bool {
	return srv.mach.AcceptsMasterFrame(srv.localNow(), from, ballot)
}

// ---- election machine pump ----

func (srv *mserver) armMach() {
	if srv.mach == nil || srv.down {
		return
	}
	if srv.machEv != nil {
		srv.w.engine.Cancel(srv.machEv)
		srv.machEv = nil
	}
	at := trueAt(srv.w.start, srv.mach.NextWake(), srv.rate(), srv.skew())
	if at.After(srv.w.machStop) {
		return
	}
	if at.Before(srv.w.engine.Now()) {
		at = srv.w.engine.Now()
	}
	srv.machEv = srv.w.engine.At(at, srv.onMachWake)
}

func (srv *mserver) onMachWake() {
	srv.machEv = nil
	if srv.down {
		return
	}
	srv.sendElect(srv.mach.Tick(srv.localNow()))
	srv.machChanged()
}

func (srv *mserver) sendElect(msgs []replica.Msg) {
	for _, m := range msgs {
		if m.To == srv.rep {
			continue
		}
		srv.w.fabric.Unicast(srv.node, srv.w.serverNodeID(srv.w.globalIdx(srv.group, m.To)), kindElect, electMsg{M: m})
	}
}

// machChanged runs after every machine interaction: it clears the
// parked-frame buffer when the believed master changes (a parked frame
// from a dead reign must never fill a live reign's sequence gap),
// detects this replica's own promotion and demotion edges, and rearms
// the wake timer.
func (srv *mserver) machChanged() {
	now := srv.localNow()
	owner, live := srv.mach.Master(now)
	if !live {
		owner = -1
	}
	if owner != srv.lastBelief {
		srv.lastBelief = owner
		for f := range srv.parked {
			srv.parked[f] = make(map[uint64]replFrame)
		}
	}
	if is := srv.mach.IsMaster(now); is != srv.wasMaster {
		srv.wasMaster = is
		if is {
			srv.onPromote()
		} else {
			srv.onDemote()
		}
	}
	srv.armMach()
}

// onPromote installs a fresh lease manager inside a §5-style recovery
// window: any predecessor may have granted leases this replica never
// saw, so for one maximum term plus the clock allowance every datum is
// treated as possibly leased by unknown clients. Serving starts only
// after the promotion sync completes.
func (srv *mserver) onPromote() {
	srv.w.obs.Record(obs.Event{Type: obs.EvElected, Replica: srv.idx})
	// A fresh reign reinstalls the class under a new generation base
	// (the model's rebind-on-promote), and honours the class term in
	// its recovery window: the deployment replicates the raised term
	// before any broadcast creates coverage from it, so a promotable
	// replica always knows it — the model's replicas know it from
	// configuration.
	srv.resetClass()
	srv.classDurable()
	if srv.w.sc.Break == BreakQuiet {
		// Sabotage: trust PaxosLease mastership alone and serve
		// immediately. The predecessor's grants are still live, so a
		// write applied now can slide in under a lease this replica
		// has never heard of.
		srv.resetManager(time.Time{})
		srv.clearServing()
		srv.beginSync()
		return
	}
	maxTerm := srv.w.sc.Term
	if srv.persistedMaxTerm > maxTerm && srv.persistedMaxTerm < core.Infinite {
		maxTerm = srv.persistedMaxTerm
	}
	srv.resetManager(srv.localNow().Add(maxTerm + srv.w.sc.Allowance))
	srv.clearServing()
	srv.beginSync()
}

func (srv *mserver) onDemote() {
	srv.w.obs.Record(obs.Event{Type: obs.EvDemoted, Replica: srv.idx})
	if t := srv.mgr.MaxTermGranted(); t > srv.persistedMaxTerm {
		srv.persistedMaxTerm = t
	}
	if srv.xfers != nil {
		srv.dropXfers("demoted")
	}
	srv.dropAllStaged()
	srv.clearServing()
	srv.resetManager(time.Time{})
	srv.synced = false
	srv.syncGot = nil
	if srv.syncEv != nil {
		srv.w.engine.Cancel(srv.syncEv)
		srv.syncEv = nil
	}
}

// endWriteSpans closes a deferred write's trace spans: any push still
// open gets pushNote, then the write.defer parent ends with note.
func (srv *mserver) endWriteSpans(id core.WriteID, pushNote, note string) {
	ws := srv.wspans[id]
	if ws == nil {
		return
	}
	delete(srv.wspans, id)
	holders := make([]core.ClientID, 0, len(ws.pushes))
	for h := range ws.pushes {
		holders = append(holders, h)
	}
	sort.Slice(holders, func(i, j int) bool { return holders[i] < holders[j] })
	for _, h := range holders {
		ws.pushes[h].EndNote(pushNote)
	}
	ws.deferSp.EndNote(note)
}

// clearServing drops the deferred-writer table and pending dedupe
// markers — a non-master will never finish them, and a black-holed
// marker would silently eat the client's retransmit to a later reign.
func (srv *mserver) clearServing() {
	ids := make([]core.WriteID, 0, len(srv.wspans))
	for id := range srv.wspans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		srv.endWriteSpans(id, "dropped", "dropped")
	}
	srv.writers = make(map[core.WriteID]mwriter)
	if srv.deadlineEv != nil {
		srv.w.engine.Cancel(srv.deadlineEv)
		srv.deadlineEv = nil
	}
	srv.deadlineAt = time.Time{}
	for _, m := range srv.seen {
		for req, v := range m {
			if v == 0 {
				delete(m, req)
			}
		}
	}
}

func (srv *mserver) dropAllStaged() {
	for f := range srv.staged {
		for _, e := range srv.staged[f] {
			if e.retryEv != nil {
				srv.w.engine.Cancel(e.retryEv)
				e.retryEv = nil
			}
			e.endShips("dropped")
		}
		srv.staged[f] = nil
	}
}

// endShips closes every still-open replication span of a staged write.
func (e *stagedWrite) endShips(note string) {
	for _, sp := range e.ships {
		sp.EndNote(note)
	}
}

// ---- promotion sync ----

func (srv *mserver) beginSync() {
	if srv.syncEv != nil {
		srv.w.engine.Cancel(srv.syncEv)
		srv.syncEv = nil
	}
	srv.synced = false
	srv.syncID++
	srv.syncGot = make([]*syncRep, srv.w.sc.Servers)
	srv.syncTry = 0
	srv.sendSync()
}

func (srv *mserver) sendSync() {
	req := syncReq{From: srv.rep, ReqID: srv.syncID}
	for r := 0; r < srv.w.sc.Servers; r++ {
		if r == srv.rep || srv.syncGot[r] != nil {
			continue
		}
		srv.w.fabric.Unicast(srv.node, srv.w.serverNodeID(srv.w.globalIdx(srv.group, r)), kindSyncReq, req)
	}
	backoff := srv.w.retryBase() << uint(min(srv.syncTry, 6))
	srv.syncEv = srv.w.engine.After(backoff, srv.onSyncRetry)
}

func (srv *mserver) onSyncRetry() {
	srv.syncEv = nil
	if srv.down || srv.synced || !srv.mach.IsMaster(srv.localNow()) {
		return
	}
	if srv.syncTry >= maxRetries {
		return // stranded: serves nothing until its lease lapses
	}
	srv.syncTry++
	srv.sendSync()
}

func (srv *mserver) handleSyncReq(p syncReq) {
	srv.w.fabric.Unicast(srv.node, srv.w.serverNodeID(srv.w.globalIdx(srv.group, p.From)), kindSyncRep,
		syncRep{From: srv.rep, ReqID: p.ReqID, Files: srv.fileSnapshot()})
}

func (srv *mserver) fileSnapshot() []fileRepl {
	out := make([]fileRepl, srv.w.sc.Files)
	for f := 0; f < srv.w.sc.Files; f++ {
		data, _, err := srv.store.ReadFile(datumForFile(f).Node)
		if err != nil {
			panic(fmt.Sprintf("check: snapshot file %d: %v", f, err))
		}
		out[f] = fileRepl{File: f, Seq: srv.applied[f], Value: string(data)}
	}
	return out
}

func (srv *mserver) handleSyncRep(p syncRep) {
	if srv.mach == nil || srv.synced || p.ReqID != srv.syncID || !srv.mach.IsMaster(srv.localNow()) {
		return
	}
	if p.From < 0 || p.From >= len(srv.syncGot) || srv.syncGot[p.From] != nil {
		return
	}
	rep := p
	srv.syncGot[p.From] = &rep
	got := 0
	for _, r := range srv.syncGot {
		if r != nil {
			got++
		}
	}
	if got < srv.quorumPeers() {
		return
	}
	srv.finishSync()
}

// finishSync merges the quorum's snapshots — per file, the highest
// applied sequence wins; quorum intersection guarantees every acked
// write is among them — then pushes the merged state to all peers.
func (srv *mserver) finishSync() {
	if srv.syncEv != nil {
		srv.w.engine.Cancel(srv.syncEv)
		srv.syncEv = nil
	}
	for f := 0; f < srv.w.sc.Files; f++ {
		for i := 0; i < srv.w.sc.Servers; i++ {
			r := srv.syncGot[i]
			if r == nil {
				continue
			}
			if fr := r.Files[f]; fr.Seq > srv.applied[f] {
				srv.applyRepl(f, fr.Seq, fr.Value)
			}
		}
	}
	srv.synced = true
	srv.syncGot = nil
	// A file moved into this group while the group had no serving
	// master leaves its value only in the group-durable moved record;
	// fold it in before the snapshot is pushed, so peers heal too.
	for f := 0; f < srv.w.sc.Files; f++ {
		if srv.owns(f) {
			srv.absorbMoved(f)
		}
	}
	inst := installMsg{From: srv.rep, Ballot: srv.mach.MasterBallot(srv.localNow()), Files: srv.fileSnapshot()}
	for r := 0; r < srv.w.sc.Servers; r++ {
		if r != srv.rep {
			srv.w.fabric.Unicast(srv.node, srv.w.serverNodeID(srv.w.globalIdx(srv.group, r)), kindInstall, inst)
		}
	}
}

func (srv *mserver) handleInstall(p installMsg) {
	if srv.mach == nil || !srv.masterFrameOK(p.From, p.Ballot) {
		return
	}
	for _, fr := range p.Files {
		if fr.Seq > srv.applied[fr.File] {
			srv.applyRepl(fr.File, fr.Seq, fr.Value)
		}
		for s := range srv.parked[fr.File] {
			if s <= srv.applied[fr.File] {
				delete(srv.parked[fr.File], s)
			}
		}
		srv.drainParked(fr.File)
	}
}

// ---- replication pipeline ----

// stageWrite enters a write into the replicate-before-apply pipeline:
// frames fan out to the peers, and only quorum-1 acks commit the write
// locally and ack the client — no reader can ever observe a value a
// failover could lose. The value's serialization position is fixed
// now, because replicas apply strictly in sequence order.
func (srv *mserver) stageWrite(wtr mwriter) {
	f := fileForDatum(wtr.datum)
	if srv.seen[wtr.client] == nil {
		srv.seen[wtr.client] = make(map[uint64]uint64)
	}
	srv.seen[wtr.client][wtr.reqID] = 0
	srv.nextSeq[f]++
	e := &stagedWrite{wtr: wtr, seq: srv.nextSeq[f], acks: make([]bool, srv.w.sc.Servers), ships: make([]tracing.Span, srv.w.sc.Servers)}
	for i := range e.ships {
		if i != srv.rep {
			e.ships[i] = srv.w.tracer.StartChildNode(string(srv.node), wtr.tc, "repl.ship")
		}
	}
	srv.staged[f] = append(srv.staged[f], e)
	srv.w.orc.applied(f, wtr.value)
	srv.sendFrames(e)
}

func (srv *mserver) sendFrames(e *stagedWrite) {
	f := fileForDatum(e.wtr.datum)
	// Stamp the current ballot on every (re)transmit: a frame staged
	// just before this master renewed its own lease would otherwise be
	// rejected by peers that already accepted the renewal's ballot.
	fr := replFrame{From: srv.rep, Ballot: srv.mach.MasterBallot(srv.localNow()), File: f, Seq: e.seq, Value: e.wtr.value}
	for r := 0; r < srv.w.sc.Servers; r++ {
		if r == srv.rep || e.acks[r] {
			continue
		}
		srv.w.fabric.Unicast(srv.node, srv.w.serverNodeID(srv.w.globalIdx(srv.group, r)), kindReplWrite, fr)
	}
	backoff := srv.w.retryBase() << uint(min(e.retries, 6))
	e.retryEv = srv.w.engine.After(backoff, func() { srv.retryStaged(e) })
}

func (srv *mserver) retryStaged(e *stagedWrite) {
	e.retryEv = nil
	if srv.down {
		return
	}
	f := fileForDatum(e.wtr.datum)
	live := false
	for _, s := range srv.staged[f] {
		if s == e {
			live = true
			break
		}
	}
	if !live {
		return
	}
	if e.retries >= maxStagedRetries {
		srv.dropStagedFrom(f, e)
		return
	}
	e.retries++
	srv.sendFrames(e)
}

// dropStagedFrom abandons a staged write that cannot reach quorum, and
// everything queued behind it (their sequences would gap). None were
// acked, so no oracle guarantee is lost; the sequence gap itself heals
// at the next promotion's install push.
func (srv *mserver) dropStagedFrom(f int, e *stagedWrite) {
	q := srv.staged[f]
	for i, s := range q {
		if s != e {
			continue
		}
		for _, d := range q[i:] {
			if d.retryEv != nil {
				srv.w.engine.Cancel(d.retryEv)
				d.retryEv = nil
			}
			d.endShips("dropped")
		}
		srv.staged[f] = q[:i]
		if i == 0 {
			srv.xferDrained(f)
		}
		return
	}
}

func (srv *mserver) handleReplAck(p replAck) {
	if srv.mach == nil {
		return
	}
	for _, e := range srv.staged[p.File] {
		if e.seq == p.Seq {
			if p.From >= 0 && p.From < len(e.acks) {
				if !e.acks[p.From] {
					e.ships[p.From].EndNote(fmt.Sprintf("peer=%d ok", p.From))
				}
				e.acks[p.From] = true
			}
			break
		}
	}
	srv.drainStaged(p.File)
}

func (srv *mserver) drainStaged(f int) {
	for len(srv.staged[f]) > 0 {
		e := srv.staged[f][0]
		n := 0
		for _, a := range e.acks {
			if a {
				n++
			}
		}
		if n < srv.quorumPeers() {
			return
		}
		srv.staged[f] = srv.staged[f][1:]
		srv.commitStaged(e)
	}
	srv.xferDrained(f)
}

// xferDrained fires a transfer commit that was waiting for the file's
// replication pipeline to empty.
func (srv *mserver) xferDrained(f int) {
	if x := srv.xfers[f]; x != nil && x.draining {
		srv.commitXfer(x)
	}
}

func (srv *mserver) commitStaged(e *stagedWrite) {
	if e.retryEv != nil {
		srv.w.engine.Cancel(e.retryEv)
		e.retryEv = nil
	}
	// Quorum reached: peers that have not acked will never be waited
	// for again — their ship spans end as stragglers, like the real
	// master's rpc returning after the quorum count moved on.
	for i, sp := range e.ships {
		if sp.Recording() && !e.acks[i] && i != srv.rep {
			sp.EndNote(fmt.Sprintf("peer=%d straggler", i))
		}
	}
	now := srv.localNow()
	f := fileForDatum(e.wtr.datum)
	applySp := srv.w.tracer.StartChildNode(string(srv.node), e.wtr.tc, "write.apply")
	if _, _, err := srv.store.WriteFile(e.wtr.datum.Node, []byte(e.wtr.value)); err != nil {
		panic(fmt.Sprintf("check: commit staged write %v: %v", e.wtr.datum, err))
	}
	applySp.End()
	srv.applied[f] = e.seq
	wait := now.Sub(e.wtr.queuedAt)
	if wait < 0 {
		wait = 0
	}
	if wait > srv.w.out.MaxWriteWait {
		srv.w.out.MaxWriteWait = wait
	}
	if srv.seen[e.wtr.client] == nil {
		srv.seen[e.wtr.client] = make(map[uint64]uint64)
	}
	srv.seen[e.wtr.client][e.wtr.reqID] = e.seq
	srv.w.obs.Record(obs.Event{
		Type:   obs.EvWriteApply,
		Client: string(e.wtr.client),
		Datum:  e.wtr.datum,
		Shard:  srv.mgr.ShardFor(e.wtr.datum),
		Wait:   wait,
	})
	srv.w.fabric.Unicast(srv.node, netsim.NodeID(e.wtr.client), kindAck, writeAck{ReqID: e.wtr.reqID, Version: e.seq})
}

func (srv *mserver) handleReplFrame(p replFrame) {
	if srv.mach == nil || !srv.masterFrameOK(p.From, p.Ballot) {
		return
	}
	f := p.File
	// A moved-in file's sequence numbering continues from the moved
	// record: absorb it first or the frame looks like a gap forever.
	srv.absorbMoved(f)
	switch {
	case p.Seq <= srv.applied[f]:
		// Duplicate of an applied frame: re-ack so a lost ack cannot
		// stall the master's commit.
	case p.Seq == srv.applied[f]+1:
		srv.applyRepl(f, p.Seq, p.Value)
	default:
		// Out of order: hold until the gap fills. Acked only once
		// applied — an acked-but-parked frame could vanish in a crash
		// after the master committed on the strength of the ack.
		srv.parked[f][p.Seq] = p
		return
	}
	srv.w.fabric.Unicast(srv.node, srv.w.serverNodeID(srv.w.globalIdx(srv.group, p.From)), kindReplAck, replAck{From: srv.rep, File: f, Seq: p.Seq})
	srv.drainParked(f)
}

func (srv *mserver) drainParked(f int) {
	for {
		fr, ok := srv.parked[f][srv.applied[f]+1]
		if !ok {
			return
		}
		delete(srv.parked[f], fr.Seq)
		srv.applyRepl(f, fr.Seq, fr.Value)
		srv.w.fabric.Unicast(srv.node, srv.w.serverNodeID(srv.w.globalIdx(srv.group, fr.From)), kindReplAck, replAck{From: srv.rep, File: f, Seq: fr.Seq})
	}
}

func (srv *mserver) applyRepl(f int, seq uint64, val string) {
	if _, _, err := srv.store.WriteFile(datumForFile(f).Node, []byte(val)); err != nil {
		panic(fmt.Sprintf("check: replicate file %d: %v", f, err))
	}
	srv.applied[f] = seq
	if srv.nextSeq[f] < seq {
		srv.nextSeq[f] = seq
	}
}

// ---- cross-shard transfers (sharded worlds) ----

// owns reports whether this server's group owns file f. Always true in
// unsharded worlds.
func (srv *mserver) owns(f int) bool {
	if srv.w.groups() <= 1 {
		return true
	}
	return srv.w.shards[srv.group].owned[f]
}

// ownerOf names the group that owns f. Ownership flips atomically at
// the commit point, so exactly one group owns every file at all times.
func (srv *mserver) ownerOf(f int) int {
	for g, sh := range srv.w.shards {
		if sh.owned[f] {
			return g
		}
	}
	panic(fmt.Sprintf("check: file %d has no owning group", f))
}

func (srv *mserver) notOwner(to netsim.NodeID, reqID uint64, f int) {
	srv.w.fabric.Unicast(srv.node, to, kindNotOwner, notOwnerRep{ReqID: reqID, File: f, Owner: srv.ownerOf(f)})
}

// absorbMoved folds the last committed inbound move of f into this
// replica's local copy, if newer. Called before every serving or
// replication path touches a file, so the moved-in value (and its
// sequence, which client-facing versions continue from) is in place
// before anything depends on it. A sequence tie means the values are
// already identical: any post-move write strictly exceeds the moved
// sequence, because absorbing raises nextSeq first.
func (srv *mserver) absorbMoved(f int) {
	if srv.w.groups() <= 1 {
		return
	}
	mv := srv.w.shards[srv.group].moved[f]
	if mv.Seq == 0 || mv.Seq <= srv.applied[f] {
		return
	}
	if _, _, err := srv.store.WriteFile(datumForFile(f).Node, []byte(mv.Value)); err != nil {
		panic(fmt.Sprintf("check: absorb moved file %d: %v", f, err))
	}
	srv.applied[f] = mv.Seq
	if srv.nextSeq[f] < mv.Seq {
		srv.nextSeq[f] = mv.Seq
	}
}

// handleRename runs at the source group's serving master: dedupe,
// ownership check, then the two-phase move — prepare at the destination
// group, §2 clearance of this group's own leases on the file, commit.
func (srv *mserver) handleRename(from netsim.NodeID, req renameReq) {
	if seen, ok := srv.seen[req.From]; ok {
		if marker, dup := seen[req.ReqID]; dup {
			if marker > 0 {
				// Retransmit of a completed rename: re-ack with the
				// file's current owner.
				srv.w.fabric.Unicast(srv.node, from, kindRenameAck, renameAck{ReqID: req.ReqID, Owner: srv.ownerOf(req.File)})
			}
			return // in flight: the commit acks it
		}
	}
	f := req.File
	if !srv.owns(f) {
		srv.notOwner(from, req.ReqID, f)
		return
	}
	if srv.xfers[f] != nil {
		// A move of this file is already in flight (another client's
		// rename); stay silent, the retry ladder re-asks after it lands.
		return
	}
	srv.absorbMoved(f)
	if srv.seen[req.From] == nil {
		srv.seen[req.From] = make(map[uint64]uint64)
	}
	srv.seen[req.From][req.ReqID] = 0 // pending marker, set by commitXfer
	srv.w.nextXfer++
	x := &xferState{
		id:    srv.w.nextXfer,
		file:  f,
		dest:  (srv.group + 1) % srv.w.groups(),
		reqID: req.ReqID,
		from:  req.From,
		sp:    srv.w.tracer.StartChildNode(string(srv.node), req.TC, "server.rename"),
	}
	srv.xfers[f] = x
	srv.sendPrepare(x)
}

func (srv *mserver) sendPrepare(x *xferState) {
	target := srv.w.globalIdx(x.dest, srv.peerBelief[x.dest])
	srv.w.fabric.Unicast(srv.node, srv.w.serverNodeID(target), kindXferPrepare,
		xferPrepare{XferID: x.id, File: x.file})
	backoff := srv.w.retryBase() << uint(min(x.retries, 6))
	x.retryEv = srv.w.engine.After(backoff, func() { srv.retryPrepare(x) })
}

func (srv *mserver) retryPrepare(x *xferState) {
	x.retryEv = nil
	if srv.down || srv.xfers[x.file] != x || x.prepared {
		return
	}
	if x.retries >= maxRetries {
		srv.abortXfer(x, "prepare given-up")
		return
	}
	x.retries++
	if srv.w.sc.Servers > 1 {
		// Silence may mean the believed destination master is down or
		// mid-promotion: rotate to the next replica.
		srv.peerBelief[x.dest] = (srv.peerBelief[x.dest] + 1) % srv.w.sc.Servers
	}
	srv.sendPrepare(x)
}

// abortXfer abandons an outbound transfer before its commit point:
// ownership never moved, so the file simply stays home. The pending
// dedupe marker is released so the client's retransmit can restart the
// move at whichever master then serves the group.
func (srv *mserver) abortXfer(x *xferState, note string) {
	if x.retryEv != nil {
		srv.w.engine.Cancel(x.retryEv)
		x.retryEv = nil
	}
	delete(srv.xfers, x.file)
	if x.hasBarrier {
		delete(srv.xferByBarrier, x.barrier)
		srv.mgr.CancelWrite(x.barrier, srv.localNow())
		srv.endWriteSpans(x.barrier, "dropped", "dropped")
	}
	if m := srv.seen[x.from]; m != nil && m[x.reqID] == 0 {
		delete(m, x.reqID)
	}
	x.sp.EndNote(note)
}

// dropXfers aborts every in-flight outbound transfer — demotion or
// shutdown teardown. None has committed, so ownership is intact.
func (srv *mserver) dropXfers(note string) {
	files := make([]int, 0, len(srv.xfers))
	for f := range srv.xfers {
		files = append(files, f)
	}
	sort.Ints(files)
	for _, f := range files {
		srv.abortXfer(srv.xfers[f], note)
	}
}

// handleXferPrepare runs at the destination group: only a serving
// master acks, proving the far side can serve the file the moment
// ownership flips. The prepare reserves nothing, so no teardown is
// needed if the source aborts.
func (srv *mserver) handleXferPrepare(m netsim.Message, p xferPrepare) {
	if srv.mach != nil && !srv.servingMaster() {
		return // silence; the source's retry ladder rotates replicas
	}
	srv.w.fabric.Unicast(srv.node, m.From, kindXferPrepared, xferPrepared{XferID: p.XferID, File: p.File})
}

// handleXferPrepared starts the source-side clearance: the move behaves
// like a §2 write on the file — every conflicting leaseholder approves
// or expires before ownership transfers — except under BreakRenameOrder,
// which commits on the prepare ack alone.
func (srv *mserver) handleXferPrepared(p xferPrepared) {
	x := srv.xfers[p.File]
	if x == nil || x.id != p.XferID || x.prepared {
		return
	}
	x.prepared = true
	if x.retryEv != nil {
		srv.w.engine.Cancel(x.retryEv)
		x.retryEv = nil
	}
	if srv.w.sc.Break == BreakRenameOrder {
		// Sabotage: skip the clearance. Read leases this group granted
		// stay live across the transfer, so a destination write can
		// land while a stale copy is still covered — the ordering bug
		// the pinned counterexample exhibits.
		srv.maybeCommitXfer(x)
		return
	}
	now := srv.localNow()
	d := datumForFile(x.file)
	disp := srv.mgr.SubmitWrite(core.ClientID(fmt.Sprintf("xfer-%d", x.id)), d, now)
	if disp.Ready {
		srv.maybeCommitXfer(x)
		return
	}
	x.hasBarrier = true
	x.barrier = disp.WriteID
	srv.xferByBarrier[disp.WriteID] = x
	deferSp := srv.w.tracer.StartChildNode(string(srv.node), x.sp.Context(), "write.defer")
	deferSp.SetFanout(len(disp.NeedApproval))
	ws := &writeSpans{deferSp: deferSp, pushes: make(map[core.ClientID]tracing.Span, len(disp.NeedApproval))}
	srv.wspans[disp.WriteID] = ws
	targets := make([]netsim.NodeID, 0, len(disp.NeedApproval))
	for _, holder := range disp.NeedApproval {
		targets = append(targets, netsim.NodeID(holder))
		ws.pushes[holder] = srv.w.tracer.StartChildNode(string(srv.node), deferSp.Context(), "approve.push")
		srv.w.obs.Record(obs.Event{
			Type:    obs.EvApproveRequest,
			Client:  string(holder),
			Datum:   d,
			Shard:   srv.mgr.ShardFor(d),
			WriteID: uint64(disp.WriteID),
		})
	}
	srv.w.fabric.Multicast(srv.node, targets, kindApprovalReq, approvalReq{WriteID: disp.WriteID, Datum: d})
	srv.armDeadline()
}

// maybeCommitXfer gates the commit point on the replication pipeline:
// a write past its lease deferral but not yet at quorum would commit
// and ack at the source AFTER the move took the old value — a lost
// update at the destination. The commit waits until the file's staged
// queue drains (drainStaged and dropStagedFrom re-check); no new lease
// can appear meanwhile, because extends refuse leases while a staged
// write is outstanding.
func (srv *mserver) maybeCommitXfer(x *xferState) {
	if srv.mach != nil && len(srv.staged[x.file]) > 0 {
		x.draining = true
		return
	}
	srv.commitXfer(x)
}

// commitXfer is the commit point: conflicting leases are cleared (or
// deliberately not, under the sabotage), so ownership and the current
// value transfer to the destination group in one group-durable step.
// Writes still queued behind the barrier arrived for a home the file is
// leaving; they are cancelled and their retransmits bounce with
// NOT_OWNER so the clients re-route.
func (srv *mserver) commitXfer(x *xferState) {
	delete(srv.xfers, x.file)
	if x.hasBarrier {
		delete(srv.xferByBarrier, x.barrier)
	}
	d := datumForFile(x.file)
	ids := make([]core.WriteID, 0, len(srv.writers))
	for id, wtr := range srv.writers {
		if wtr.datum == d {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	now := srv.localNow()
	for _, id := range ids {
		wtr := srv.writers[id]
		delete(srv.writers, id)
		srv.mgr.CancelWrite(id, now)
		srv.endWriteSpans(id, "dropped", "moved away")
		if m := srv.seen[wtr.client]; m != nil && m[wtr.reqID] == 0 {
			delete(m, wtr.reqID)
		}
	}
	srv.absorbMoved(x.file)
	data, _, err := srv.store.ReadFile(d.Node)
	if err != nil {
		panic(fmt.Sprintf("check: read moving file %d: %v", x.file, err))
	}
	src, dst := srv.w.shards[srv.group], srv.w.shards[x.dest]
	src.owned[x.file] = false
	dst.owned[x.file] = true
	dst.moved[x.file] = fileRepl{File: x.file, Seq: srv.applied[x.file], Value: string(data)}
	if srv.seen[x.from] == nil {
		srv.seen[x.from] = make(map[uint64]uint64)
	}
	srv.seen[x.from][x.reqID] = 1 // done marker, for at-least-once re-acks
	x.sp.EndNote(fmt.Sprintf("moved to group %d", x.dest))
	srv.w.out.Renames++
	srv.w.fabric.Unicast(srv.node, netsim.NodeID(x.from), kindRenameAck, renameAck{ReqID: x.reqID, Owner: x.dest})
}

// ---- installed class (§4.3) ----

// classOn reports whether this world runs the installed-files class.
func (srv *mserver) classOn() bool { return srv.w.sc.Installed }

// resetClass (re)installs the class: every file installed, under a
// generation base no previous reign ever used (world-unique), so a
// client's snapshot from an earlier incarnation can never satisfy the
// generation fence against this one. The deployment gets the same
// property from connection-scoped snapshots — a reconnecting client
// drops and refetches — and from replicated generation rebinding at
// promotion.
func (srv *mserver) resetClass() {
	if !srv.classOn() {
		return
	}
	srv.w.classReigns++
	srv.classGen = srv.w.classReigns << 32
	srv.classMembers = make([]bool, srv.w.sc.Files)
	for f := range srv.classMembers {
		srv.classMembers[f] = true
	}
	srv.classCover = time.Time{}
	srv.classDemoted = make([]time.Time, srv.w.sc.Files)
}

func (srv *mserver) classMemberData() []vfs.Datum {
	var out []vfs.Datum
	for f, in := range srv.classMembers {
		if in {
			out = append(out, datumForFile(f))
		}
	}
	return out
}

// classDurable persists the class term before any coverage is created
// from it — the model analogue of the durable max-term raise (and its
// replication) preceding every broadcast in internal/server. The §5
// recovery window after a crash or promotion then covers whatever
// broadcast coverage a predecessor left outstanding.
func (srv *mserver) classDurable() {
	if srv.w.sc.InstalledTerm > srv.persistedMaxTerm {
		srv.persistedMaxTerm = srv.w.sc.InstalledTerm
	}
}

// armClass keeps the periodic broadcast timer running until the
// world's quiesce bound (shared with the election machines) so the
// engine drains.
func (srv *mserver) armClass() {
	if !srv.classOn() || srv.down {
		return
	}
	if srv.classEv != nil {
		srv.w.engine.Cancel(srv.classEv)
		srv.classEv = nil
	}
	at := srv.w.engine.Now().Add(srv.w.sc.BroadcastEvery)
	if at.After(srv.w.machStop) {
		return
	}
	srv.classEv = srv.w.engine.At(at, srv.onClassTick)
}

func (srv *mserver) onClassTick() {
	srv.classEv = nil
	if srv.down {
		return
	}
	srv.broadcastClass()
	srv.armClass()
}

// broadcastClass multicasts one §4.3 broadcast extension. The coverage
// horizon is recorded before the frames leave (record-then-send), so
// classCover bounds every client belief the broadcast can create even
// if deliveries are delayed arbitrarily.
func (srv *mserver) broadcastClass() {
	if !srv.servingMaster() {
		return
	}
	members := 0
	for _, in := range srv.classMembers {
		if in {
			members++
		}
	}
	if members == 0 {
		return
	}
	srv.classDurable()
	now := srv.localNow()
	if horizon := now.Add(srv.w.sc.InstalledTerm); horizon.After(srv.classCover) {
		srv.classCover = horizon
	}
	bc := classBcast{Gen: srv.classGen, Term: srv.w.sc.InstalledTerm, SentAt: now}
	targets := make([]netsim.NodeID, 0, len(srv.w.clients))
	for _, c := range srv.w.clients {
		targets = append(targets, c.node)
	}
	srv.w.fabric.Multicast(srv.node, targets, kindBroadcast, bc)
	srv.w.obs.Record(obs.Event{Type: obs.EvBroadcastExt, Depth: members})
}

// handleClassFetch serves the membership snapshot. A non-serving
// replica stays silent: broadcasts only ever come from the live
// master, so the client's next mismatching broadcast re-aims the
// fetch there.
func (srv *mserver) handleClassFetch(from netsim.NodeID, p classFetch) {
	if !srv.classOn() || !srv.servingMaster() {
		return
	}
	srv.classDurable()
	now := srv.localNow()
	// Record-then-send, like the broadcast: the snapshot reply also
	// anchors client coverage at SentAt + Term.
	if horizon := now.Add(srv.w.sc.InstalledTerm); horizon.After(srv.classCover) {
		srv.classCover = horizon
	}
	srv.w.fabric.Unicast(srv.node, from, kindClassSnap, classSnap{
		ReqID:  p.ReqID,
		Gen:    srv.classGen,
		Term:   srv.w.sc.InstalledTerm,
		SentAt: now,
		Data:   srv.classMemberData(),
	})
}

// classParkWrite demotes an installed file on its first write (§4.3
// drop-on-write) and reports the true-time instant the write may
// proceed, when the broadcast coverage horizon captured at demotion is
// still in the future. BreakClassHorizon demotes but skips the wait —
// the sabotage the oracle must catch.
func (srv *mserver) classParkWrite(d vfs.Datum) (time.Time, bool) {
	if !srv.classOn() {
		return time.Time{}, false
	}
	f := fileForDatum(d)
	now := srv.localNow()
	if srv.classMembers[f] {
		srv.classMembers[f] = false
		srv.classGen++
		srv.classDemoted[f] = srv.classCover
		srv.w.obs.Record(obs.Event{Type: obs.EvClassDemote, Datum: d})
	}
	horizon := srv.classDemoted[f]
	if srv.w.sc.Break == BreakClassHorizon || !horizon.After(now) {
		return time.Time{}, false
	}
	return trueAt(srv.w.start, horizon.Add(time.Microsecond), srv.rate(), srv.skew()), true
}

// ---- client-facing handlers ----

func (srv *mserver) handle(m netsim.Message) {
	if srv.down {
		return
	}
	switch p := m.Payload.(type) {
	case extendReq:
		if !srv.gateClient(m.From, p.ReqID) {
			return
		}
		srv.handleExtend(m.From, p)
	case writeReq:
		if !srv.gateClient(m.From, p.ReqID) {
			return
		}
		srv.handleWrite(m.From, p)
	case renameReq:
		if !srv.gateClient(m.From, p.ReqID) {
			return
		}
		srv.handleRename(m.From, p)
	case xferPrepare:
		srv.handleXferPrepare(m, p)
	case xferPrepared:
		srv.handleXferPrepared(p)
	case approveMsg:
		if srv.mach != nil && !srv.servingMaster() {
			return // approvals for a reign this replica no longer runs
		}
		srv.handleApprove(p)
	case electMsg:
		if srv.mach == nil {
			return
		}
		srv.sendElect(srv.mach.HandleMessage(srv.localNow(), p.M))
		srv.machChanged()
	case replFrame:
		srv.handleReplFrame(p)
	case replAck:
		srv.handleReplAck(p)
	case syncReq:
		srv.handleSyncReq(p)
	case syncRep:
		srv.handleSyncRep(p)
	case installMsg:
		srv.handleInstall(p)
	case classFetch:
		srv.handleClassFetch(m.From, p)
	default:
		panic(fmt.Sprintf("check: server got %T", m.Payload))
	}
}

func (srv *mserver) servingMaster() bool {
	return srv.mach == nil || (srv.mach.IsMaster(srv.localNow()) && srv.synced)
}

// gateClient is the replica gate: a non-master refuses with a redirect
// hint; a master still syncing stays silent (the client's retry lands
// a round trip later, when sync has almost certainly finished).
func (srv *mserver) gateClient(from netsim.NodeID, reqID uint64) bool {
	if srv.mach == nil {
		return true
	}
	if !srv.mach.IsMaster(srv.localNow()) {
		srv.refuse(from, reqID)
		return false
	}
	return srv.synced
}

func (srv *mserver) refuse(to netsim.NodeID, reqID uint64) {
	owner, live := srv.mach.Master(srv.localNow())
	hint := -1
	if live && owner != srv.rep {
		hint = owner
	}
	srv.w.fabric.Unicast(srv.node, to, kindNotMaster, notMasterRep{ReqID: reqID, Hint: hint})
}

// fileVersion is the client-facing version: the store's in
// single-server worlds, the applied sequence in replicated or sharded
// ones (store versions diverge across replicas and do not survive a
// file's move between groups; sequences do).
func (srv *mserver) fileVersion(d vfs.Datum) uint64 {
	if srv.applied == nil {
		v, err := srv.store.Version(d)
		if err != nil {
			panic(fmt.Sprintf("check: version of %v: %v", d, err))
		}
		return v
	}
	return srv.applied[fileForDatum(d)]
}

func (srv *mserver) handleExtend(from netsim.NodeID, req extendReq) {
	now := srv.localNow()
	sp := srv.w.tracer.StartChildNode(string(srv.node), req.TC, "server.extend")
	defer sp.End()
	rep := extendRep{ReqID: req.ReqID}
	for _, d := range req.Data {
		f := fileForDatum(d)
		if srv.w.groups() > 1 && !srv.owns(f) {
			if len(req.Data) == 1 {
				// A single-datum fetch is a routed read: redirect it to
				// the owning group.
				srv.notOwner(from, req.ReqID, f)
				return
			}
			// Batched renewals silently drop files that moved away; the
			// client's lease lapses and its next read re-routes.
			continue
		}
		srv.absorbMoved(f)
		data, _, err := srv.store.ReadFile(d.Node)
		if err != nil {
			panic(fmt.Sprintf("check: read %v: %v", d, err))
		}
		version := srv.fileVersion(d)
		if srv.mach != nil && len(srv.staged[f]) > 0 {
			// A write is between staging and quorum commit: a lease
			// granted now would cover a value about to be superseded
			// without the holder's approval. Serve the committed value
			// usable-once, like the write-pending refusal below.
			rep.Grants = append(rep.Grants, grantInfo{Datum: d, Version: version, Value: string(data), Leased: false})
			continue
		}
		g := srv.mgr.Grant(req.From, d, now)
		rep.Grants = append(rep.Grants, grantInfo{
			Datum:   d,
			Term:    g.Term,
			Version: version,
			Value:   string(data),
			Leased:  g.Leased,
		})
		srv.w.obs.Record(obs.Event{
			Type:   obs.EvGrant,
			Client: string(req.From),
			Datum:  d,
			Shard:  srv.mgr.ShardFor(d),
			Term:   g.Term,
		})
	}
	srv.w.fabric.Unicast(srv.node, from, kindGrant, rep)
}

func (srv *mserver) handleWrite(from netsim.NodeID, req writeReq) {
	if at, park := srv.classParkWrite(req.Datum); park {
		// The file just left the installed class: hold the write until
		// every broadcast-covered copy has expired, then run the normal
		// per-file deferral. Retransmits parked alongside are deduped
		// when they land.
		srv.w.engine.At(at, func() {
			if srv.down || !srv.servingMaster() {
				return // the client's retry finds the live master
			}
			srv.handleWrite(from, req)
		})
		return
	}
	now := srv.localNow()
	if seen, ok := srv.seen[req.From]; ok {
		if version, dup := seen[req.ReqID]; dup {
			// At-least-once retransmit: re-ack an applied write;
			// stay silent for one still deferred (version 0), whose
			// eventual apply acks it.
			if version > 0 {
				srv.w.fabric.Unicast(srv.node, from, kindAck, writeAck{ReqID: req.ReqID, Version: version})
			}
			return
		}
	}
	if f := fileForDatum(req.Datum); srv.w.groups() > 1 {
		// Ownership is checked after dedupe: a write applied here just
		// before the file moved away must still re-ack its retransmits.
		if !srv.owns(f) {
			srv.notOwner(from, req.ReqID, f)
			return
		}
		srv.absorbMoved(f)
	}
	sp := srv.w.tracer.StartChildNode(string(srv.node), req.TC, "server.write")
	disp := srv.mgr.SubmitWrite(req.From, req.Datum, now)
	wtr := mwriter{client: req.From, reqID: req.ReqID, datum: req.Datum, value: req.Value, queuedAt: now, tc: sp.Context()}
	if disp.Ready {
		srv.finishWrite(wtr, now)
		sp.End()
		return
	}
	if srv.w.sc.Break == BreakWriteDefer {
		// §2 sabotage: apply immediately, ignoring the unexpired read
		// leases the manager just told us about.
		srv.mgr.CancelWrite(disp.WriteID, now)
		srv.finishWrite(wtr, now)
		sp.End()
		return
	}
	srv.writers[disp.WriteID] = wtr
	if srv.seen[req.From] == nil {
		srv.seen[req.From] = make(map[uint64]uint64)
	}
	srv.seen[req.From][req.ReqID] = 0 // pending marker, set by applyWrite
	srv.w.obs.Record(obs.Event{
		Type:    obs.EvWriteDefer,
		Client:  string(req.From),
		Datum:   req.Datum,
		Shard:   srv.mgr.ShardFor(req.Datum),
		WriteID: uint64(disp.WriteID),
	})
	deferSp := srv.w.tracer.StartChildNode(string(srv.node), sp.Context(), "write.defer")
	deferSp.SetFanout(len(disp.NeedApproval))
	ws := &writeSpans{deferSp: deferSp, pushes: make(map[core.ClientID]tracing.Span, len(disp.NeedApproval))}
	srv.wspans[disp.WriteID] = ws
	targets := make([]netsim.NodeID, 0, len(disp.NeedApproval))
	for _, holder := range disp.NeedApproval {
		targets = append(targets, netsim.NodeID(holder))
		ws.pushes[holder] = srv.w.tracer.StartChildNode(string(srv.node), deferSp.Context(), "approve.push")
		srv.w.obs.Record(obs.Event{
			Type:    obs.EvApproveRequest,
			Client:  string(holder),
			Datum:   req.Datum,
			Shard:   srv.mgr.ShardFor(req.Datum),
			WriteID: uint64(disp.WriteID),
		})
	}
	srv.w.fabric.Multicast(srv.node, targets, kindApprovalReq, approvalReq{WriteID: disp.WriteID, Datum: req.Datum})
	sp.EndNote("deferred")
	srv.armDeadline()
}

func (srv *mserver) handleApprove(ap approveMsg) {
	now := srv.localNow()
	if srv.mgr.Approve(ap.From, ap.WriteID, now) {
		srv.w.obs.Record(obs.Event{
			Type:    obs.EvApprove,
			Client:  string(ap.From),
			WriteID: uint64(ap.WriteID),
		})
	}
	if ws := srv.wspans[ap.WriteID]; ws != nil {
		if psp, ok := ws.pushes[ap.From]; ok {
			psp.EndNote("approve")
			delete(ws.pushes, ap.From)
		}
	}
	srv.applyReady(now)
	srv.armDeadline()
}

// applyReady drains writes whose approvals arrived or whose deadlines
// passed, in the manager's deterministic (sorted WriteID) order. It
// loops to a fixpoint: applying a queue head promotes its successor,
// which may already be releasable (its blockers expired while it
// waited) without ever appearing on the deadline heap.
func (srv *mserver) applyReady(now time.Time) {
	for {
		ids := srv.mgr.ReadyWrites(now)
		if len(ids) == 0 {
			return
		}
		for _, id := range ids {
			if x, ok := srv.xferByBarrier[id]; ok {
				// A cross-shard clearance barrier came due: every
				// conflicting lease approved or expired, so the move may
				// commit. The commit point cancels writers queued behind
				// the barrier, so the id snapshot is stale after it.
				srv.endWriteSpans(id, "expire", "")
				srv.mgr.WriteApplied(id, now)
				srv.maybeCommitXfer(x)
				break
			}
			wtr, ok := srv.writers[id]
			if !ok {
				panic(fmt.Sprintf("check: ready write %d has no writer record", id))
			}
			delete(srv.writers, id)
			// Pushes still open at release time went unanswered: the
			// blocking leases expired instead.
			srv.endWriteSpans(id, "expire", "")
			srv.mgr.WriteApplied(id, now)
			srv.finishWrite(wtr, now)
		}
	}
}

// finishWrite dispatches a write that has cleared lease deferral:
// straight to the store in single-server worlds, into the replication
// pipeline otherwise.
func (srv *mserver) finishWrite(wtr mwriter, now time.Time) {
	if srv.mach == nil {
		srv.applyWrite(wtr, now.Sub(wtr.queuedAt), now)
		return
	}
	srv.stageWrite(wtr)
}

// applyWrite commits a write to the store, informs the oracle, and
// acks the writer. The writer keeps its lease (§3.1: a write carries
// implicit approval and the writer's cache stays valid).
func (srv *mserver) applyWrite(wtr mwriter, wait time.Duration, now time.Time) {
	applySp := srv.w.tracer.StartChildNode(string(srv.node), wtr.tc, "write.apply")
	attr, _, err := srv.store.WriteFile(wtr.datum.Node, []byte(wtr.value))
	if err != nil {
		panic(fmt.Sprintf("check: apply write %v: %v", wtr.datum, err))
	}
	applySp.End()
	srv.w.orc.applied(fileForDatum(wtr.datum), wtr.value)
	version := attr.Version
	if srv.applied != nil {
		// Sharded single-replica groups use the applied sequence as the
		// client-facing version so it survives the file's moves.
		f := fileForDatum(wtr.datum)
		srv.nextSeq[f]++
		srv.applied[f] = srv.nextSeq[f]
		version = srv.applied[f]
	}
	if srv.seen[wtr.client] == nil {
		srv.seen[wtr.client] = make(map[uint64]uint64)
	}
	srv.seen[wtr.client][wtr.reqID] = version
	if wait > srv.w.out.MaxWriteWait {
		srv.w.out.MaxWriteWait = wait
	}
	srv.w.obs.Record(obs.Event{
		Type:   obs.EvWriteApply,
		Client: string(wtr.client),
		Datum:  wtr.datum,
		Shard:  srv.mgr.ShardFor(wtr.datum),
		Wait:   wait,
	})
	srv.w.fabric.Unicast(srv.node, netsim.NodeID(wtr.client), kindAck, writeAck{ReqID: wtr.reqID, Version: version})
}

// armDeadline keeps exactly one engine timer at the manager's earliest
// write deadline, converted from server-local to true time with 1µs of
// slack so the deadline has strictly passed when the timer fires.
func (srv *mserver) armDeadline() {
	dl, ok := srv.mgr.NextDeadline()
	if !ok {
		if len(srv.writers) > 0 {
			// Writes pending but nothing on the deadline heap: either
			// they await approvals (no timer can help) or a due-set
			// entry was held back at an exact expiry instant. A short
			// re-poll keeps the latter live without busy-waiting.
			dl = srv.localNow().Add(time.Millisecond)
			ok = true
		} else {
			if srv.deadlineEv != nil {
				srv.w.engine.Cancel(srv.deadlineEv)
				srv.deadlineEv = nil
			}
			srv.deadlineAt = time.Time{}
			return
		}
	}
	if srv.deadlineEv != nil && srv.deadlineAt.Equal(dl) {
		return
	}
	if srv.deadlineEv != nil {
		srv.w.engine.Cancel(srv.deadlineEv)
	}
	at := trueAt(srv.w.start, dl.Add(time.Microsecond), srv.rate(), srv.skew())
	if at.Before(srv.w.engine.Now()) {
		at = srv.w.engine.Now()
	}
	srv.deadlineAt = dl
	srv.deadlineEv = srv.w.engine.At(at, srv.onDeadline)
}

func (srv *mserver) onDeadline() {
	srv.deadlineEv = nil
	srv.deadlineAt = time.Time{}
	if srv.down {
		return
	}
	now := srv.localNow()
	srv.applyReady(now)
	srv.armDeadline()
}

// crash loses all volatile server state — the lease manager, the
// deferred-writer table, the dedupe table, the election machine's
// promises, staged and parked replication frames — but not the store,
// the applied sequences, or the persisted max term.
func (srv *mserver) crash() {
	if srv.down {
		return
	}
	srv.down = true
	if t := srv.mgr.MaxTermGranted(); t > srv.persistedMaxTerm {
		srv.persistedMaxTerm = t
	}
	srv.w.fabric.SetDown(srv.node, true)
	if srv.deadlineEv != nil {
		srv.w.engine.Cancel(srv.deadlineEv)
		srv.deadlineEv = nil
		srv.deadlineAt = time.Time{}
	}
	srv.writers = make(map[core.WriteID]mwriter)
	srv.wspans = make(map[core.WriteID]*writeSpans)
	srv.seen = make(map[core.ClientID]map[uint64]uint64)
	if srv.xfers != nil {
		// In-flight transfers die with the process; none committed, so
		// ownership is intact. Spans are swept by AbandonNode below.
		for _, x := range srv.xfers {
			if x.retryEv != nil {
				srv.w.engine.Cancel(x.retryEv)
				x.retryEv = nil
			}
		}
		srv.xfers = make(map[int]*xferState)
		srv.xferByBarrier = make(map[core.WriteID]*xferState)
	}
	if srv.classEv != nil {
		srv.w.engine.Cancel(srv.classEv)
		srv.classEv = nil
	}
	srv.w.tracer.AbandonNode(string(srv.node), "crash")
	if srv.mach != nil {
		if srv.machEv != nil {
			srv.w.engine.Cancel(srv.machEv)
			srv.machEv = nil
		}
		if srv.syncEv != nil {
			srv.w.engine.Cancel(srv.syncEv)
			srv.syncEv = nil
		}
		srv.dropAllStaged()
		for f := range srv.parked {
			srv.parked[f] = make(map[uint64]replFrame)
		}
		srv.synced = false
		srv.syncGot = nil
		srv.wasMaster = false
		srv.lastBelief = -1
	}
}

// restart brings the server back. Single-server worlds re-enter the §5
// recovery window immediately; replicated worlds impose it at the next
// promotion instead, and the election machine re-enters its quiet
// period — unless BreakQuiet sabotages exactly that.
func (srv *mserver) restart() {
	if !srv.down {
		return
	}
	srv.down = false
	srv.w.fabric.SetDown(srv.node, false)
	// The class state was volatile: reinstall it under a fresh
	// generation base. Outstanding pre-crash broadcast coverage is
	// inside the recovery window, because the class term was persisted
	// before any broadcast raised coverage toward it.
	srv.resetClass()
	srv.armClass()
	if srv.mach == nil {
		var until time.Time
		if srv.persistedMaxTerm > 0 && srv.persistedMaxTerm < core.Infinite {
			until = srv.localNow().Add(srv.persistedMaxTerm)
		}
		srv.resetManager(until)
		return
	}
	srv.resetManager(time.Time{})
	now := srv.localNow()
	if srv.w.sc.Break == BreakQuiet {
		// Sabotage: rejoin elections immediately, with amnesia about
		// the promises the previous incarnation made. Two amnesiac
		// acceptors can then elect a second master inside the first
		// one's live lease — the diskless split brain.
		srv.machGen++
		srv.mach = srv.newMach(now.Add(-srv.w.sc.Term))
	} else {
		srv.mach.Restart(now)
	}
	srv.armMach()
}
