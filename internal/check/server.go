package check

import (
	"fmt"
	"strconv"
	"time"

	"leases/internal/core"
	"leases/internal/netsim"
	"leases/internal/obs"
	"leases/internal/sim"
	"leases/internal/vfs"
)

// checkShards exercises the sharded manager's cross-shard routing
// without drowning the small model configurations.
const checkShards = 2

// engineClock adapts the discrete-event engine to clock.Clock for the
// vfs store; only Now is meaningful inside the simulation.
type engineClock struct{ engine *sim.Engine }

func (c engineClock) Now() time.Time { return c.engine.Now() }
func (c engineClock) After(time.Duration) (<-chan time.Time, func() bool) {
	panic("check: After on engine clock")
}
func (c engineClock) Sleep(time.Duration) { panic("check: Sleep on engine clock") }

// Wire payloads. The model speaks typed structs instead of the TCP
// deployment's byte frames, but the message flow — extend/grant,
// write/ack, approval-request/approve — and the SentAt stamps the
// fence depends on are the same.
type extendReq struct {
	ReqID uint64
	From  core.ClientID
	Data  []vfs.Datum
}

type grantInfo struct {
	Datum   vfs.Datum
	Term    time.Duration
	Version uint64
	Value   string
	Leased  bool
}

type extendRep struct {
	ReqID  uint64
	Grants []grantInfo
}

type writeReq struct {
	ReqID uint64
	From  core.ClientID
	Datum vfs.Datum
	Value string
}

type writeAck struct {
	ReqID   uint64
	Version uint64
}

type approvalReq struct {
	WriteID core.WriteID
	Datum   vfs.Datum
}

type approveMsg struct {
	WriteID core.WriteID
	From    core.ClientID
}

// mwriter is the server's record of one deferred write.
type mwriter struct {
	client   core.ClientID
	reqID    uint64
	datum    vfs.Datum
	value    string
	queuedAt time.Time // server-local, for the write-wait lens
}

// mserver is the model file server: the real vfs store and the real
// sharded lease manager under the model's message loop, mirroring the
// TCP deployment's write-deferral and crash-recovery semantics.
type mserver struct {
	w       *world
	store   *vfs.Store
	mgr     *core.ShardedManager
	writers map[core.WriteID]mwriter
	// seen dedupes at-least-once writes per client: reqID → applied
	// version (lost on crash, so duplicates across a crash re-apply —
	// the at-least-once behaviour the oracle must tolerate).
	seen map[core.ClientID]map[uint64]uint64

	deadlineEv *sim.Event
	deadlineAt time.Time
	down       bool
	// persistedMaxTerm survives crashes, like the durable max-term
	// file in internal/server (§5 recovery rule).
	persistedMaxTerm time.Duration
}

func newMserver(w *world) *mserver {
	srv := &mserver{
		w:       w,
		writers: make(map[core.WriteID]mwriter),
		seen:    make(map[core.ClientID]map[uint64]uint64),
	}
	srv.store = vfs.New(engineClock{w.engine}, "srv")
	for f := 0; f < w.sc.Files; f++ {
		path := "/f" + strconv.Itoa(f)
		if _, err := srv.store.Create(path, "srv", vfs.DefaultPerm|vfs.WorldWrite); err != nil {
			panic(fmt.Sprintf("check: seeding %s: %v", path, err))
		}
		val := "init#" + strconv.Itoa(f)
		if _, _, err := srv.store.WriteFile(datumForFile(f).Node, []byte(val)); err != nil {
			panic(fmt.Sprintf("check: seeding %s: %v", path, err))
		}
		w.orc.initialApplied(f, val)
	}
	srv.resetManager(time.Time{})
	w.fabric.Register(serverNode, srv.handle)
	return srv
}

// resetManager builds a fresh lease manager, optionally inside a
// recovery window ending at recoverUntil (server-local time).
func (srv *mserver) resetManager(recoverUntil time.Time) {
	var opts []core.ManagerOption
	if !recoverUntil.IsZero() {
		opts = append(opts, core.WithRecoveryWindow(recoverUntil))
	}
	srv.mgr = core.NewShardedManager(checkShards, core.FixedTerm(srv.w.sc.Term), opts...)
}

// localNow reads the server's drifting clock.
func (srv *mserver) localNow() time.Time {
	return localAt(srv.w.start, srv.w.engine.Now(), srv.w.sc.ServerRate, srv.w.sc.ServerSkew)
}

func (srv *mserver) handle(m netsim.Message) {
	if srv.down {
		return
	}
	switch p := m.Payload.(type) {
	case extendReq:
		srv.handleExtend(m.From, p)
	case writeReq:
		srv.handleWrite(m.From, p)
	case approveMsg:
		srv.handleApprove(p)
	default:
		panic(fmt.Sprintf("check: server got %T", m.Payload))
	}
}

func (srv *mserver) handleExtend(from netsim.NodeID, req extendReq) {
	now := srv.localNow()
	rep := extendRep{ReqID: req.ReqID}
	for _, d := range req.Data {
		g := srv.mgr.Grant(req.From, d, now)
		version, err := srv.store.Version(d)
		if err != nil {
			panic(fmt.Sprintf("check: version of %v: %v", d, err))
		}
		data, _, err := srv.store.ReadFile(d.Node)
		if err != nil {
			panic(fmt.Sprintf("check: read %v: %v", d, err))
		}
		rep.Grants = append(rep.Grants, grantInfo{
			Datum:   d,
			Term:    g.Term,
			Version: version,
			Value:   string(data),
			Leased:  g.Leased,
		})
		srv.w.obs.Record(obs.Event{
			Type:   obs.EvGrant,
			Client: string(req.From),
			Datum:  d,
			Shard:  srv.w.srvShardFor(d),
			Term:   g.Term,
		})
	}
	srv.w.fabric.Unicast(serverNode, from, kindGrant, rep)
}

// srvShardFor tolerates being called during server construction, when
// w.srv is not yet assigned.
func (w *world) srvShardFor(d vfs.Datum) int {
	if w.srv == nil {
		return 0
	}
	return w.srv.mgr.ShardFor(d)
}

func (srv *mserver) handleWrite(from netsim.NodeID, req writeReq) {
	now := srv.localNow()
	if seen, ok := srv.seen[req.From]; ok {
		if version, dup := seen[req.ReqID]; dup {
			// At-least-once retransmit: re-ack an applied write;
			// stay silent for one still deferred (version 0), whose
			// eventual apply acks it.
			if version > 0 {
				srv.w.fabric.Unicast(serverNode, from, kindAck, writeAck{ReqID: req.ReqID, Version: version})
			}
			return
		}
	}
	disp := srv.mgr.SubmitWrite(req.From, req.Datum, now)
	wtr := mwriter{client: req.From, reqID: req.ReqID, datum: req.Datum, value: req.Value, queuedAt: now}
	if disp.Ready {
		srv.applyWrite(wtr, 0, now)
		return
	}
	if srv.w.sc.Break == BreakWriteDefer {
		// §2 sabotage: apply immediately, ignoring the unexpired read
		// leases the manager just told us about.
		srv.mgr.CancelWrite(disp.WriteID, now)
		srv.applyWrite(wtr, 0, now)
		return
	}
	srv.writers[disp.WriteID] = wtr
	if srv.seen[req.From] == nil {
		srv.seen[req.From] = make(map[uint64]uint64)
	}
	srv.seen[req.From][req.ReqID] = 0 // pending marker, set by applyWrite
	srv.w.obs.Record(obs.Event{
		Type:    obs.EvWriteDefer,
		Client:  string(req.From),
		Datum:   req.Datum,
		Shard:   srv.mgr.ShardFor(req.Datum),
		WriteID: uint64(disp.WriteID),
	})
	targets := make([]netsim.NodeID, 0, len(disp.NeedApproval))
	for _, holder := range disp.NeedApproval {
		targets = append(targets, netsim.NodeID(holder))
		srv.w.obs.Record(obs.Event{
			Type:    obs.EvApproveRequest,
			Client:  string(holder),
			Datum:   req.Datum,
			Shard:   srv.mgr.ShardFor(req.Datum),
			WriteID: uint64(disp.WriteID),
		})
	}
	srv.w.fabric.Multicast(serverNode, targets, kindApprovalReq, approvalReq{WriteID: disp.WriteID, Datum: req.Datum})
	srv.armDeadline()
}

func (srv *mserver) handleApprove(ap approveMsg) {
	now := srv.localNow()
	if srv.mgr.Approve(ap.From, ap.WriteID, now) {
		srv.w.obs.Record(obs.Event{
			Type:    obs.EvApprove,
			Client:  string(ap.From),
			WriteID: uint64(ap.WriteID),
		})
	}
	srv.applyReady(now)
	srv.armDeadline()
}

// applyReady drains writes whose approvals arrived or whose deadlines
// passed, in the manager's deterministic (sorted WriteID) order. It
// loops to a fixpoint: applying a queue head promotes its successor,
// which may already be releasable (its blockers expired while it
// waited) without ever appearing on the deadline heap.
func (srv *mserver) applyReady(now time.Time) {
	for {
		ids := srv.mgr.ReadyWrites(now)
		if len(ids) == 0 {
			return
		}
		for _, id := range ids {
			wtr, ok := srv.writers[id]
			if !ok {
				panic(fmt.Sprintf("check: ready write %d has no writer record", id))
			}
			delete(srv.writers, id)
			srv.mgr.WriteApplied(id, now)
			srv.applyWrite(wtr, now.Sub(wtr.queuedAt), now)
		}
	}
}

// applyWrite commits a write to the store, informs the oracle, and
// acks the writer. The writer keeps its lease (§3.1: a write carries
// implicit approval and the writer's cache stays valid).
func (srv *mserver) applyWrite(wtr mwriter, wait time.Duration, now time.Time) {
	attr, _, err := srv.store.WriteFile(wtr.datum.Node, []byte(wtr.value))
	if err != nil {
		panic(fmt.Sprintf("check: apply write %v: %v", wtr.datum, err))
	}
	srv.w.orc.applied(fileForDatum(wtr.datum), wtr.value)
	if srv.seen[wtr.client] == nil {
		srv.seen[wtr.client] = make(map[uint64]uint64)
	}
	srv.seen[wtr.client][wtr.reqID] = attr.Version
	if wait > srv.w.out.MaxWriteWait {
		srv.w.out.MaxWriteWait = wait
	}
	srv.w.obs.Record(obs.Event{
		Type:   obs.EvWriteApply,
		Client: string(wtr.client),
		Datum:  wtr.datum,
		Shard:  srv.mgr.ShardFor(wtr.datum),
		Wait:   wait,
	})
	srv.w.fabric.Unicast(serverNode, netsim.NodeID(wtr.client), kindAck, writeAck{ReqID: wtr.reqID, Version: attr.Version})
}

// armDeadline keeps exactly one engine timer at the manager's earliest
// write deadline, converted from server-local to true time with 1µs of
// slack so the deadline has strictly passed when the timer fires.
func (srv *mserver) armDeadline() {
	dl, ok := srv.mgr.NextDeadline()
	if !ok {
		if len(srv.writers) > 0 {
			// Writes pending but nothing on the deadline heap: either
			// they await approvals (no timer can help) or a due-set
			// entry was held back at an exact expiry instant. A short
			// re-poll keeps the latter live without busy-waiting.
			dl = srv.localNow().Add(time.Millisecond)
			ok = true
		} else {
			if srv.deadlineEv != nil {
				srv.w.engine.Cancel(srv.deadlineEv)
				srv.deadlineEv = nil
			}
			srv.deadlineAt = time.Time{}
			return
		}
	}
	if srv.deadlineEv != nil && srv.deadlineAt.Equal(dl) {
		return
	}
	if srv.deadlineEv != nil {
		srv.w.engine.Cancel(srv.deadlineEv)
	}
	at := trueAt(srv.w.start, dl.Add(time.Microsecond), srv.w.sc.ServerRate, srv.w.sc.ServerSkew)
	if at.Before(srv.w.engine.Now()) {
		at = srv.w.engine.Now()
	}
	srv.deadlineAt = dl
	srv.deadlineEv = srv.w.engine.At(at, srv.onDeadline)
}

func (srv *mserver) onDeadline() {
	srv.deadlineEv = nil
	srv.deadlineAt = time.Time{}
	if srv.down {
		return
	}
	now := srv.localNow()
	srv.applyReady(now)
	srv.armDeadline()
}

// crash loses all volatile server state — the lease manager, the
// deferred-writer table, the dedupe table — but not the store or the
// persisted max term.
func (srv *mserver) crash() {
	if srv.down {
		return
	}
	srv.down = true
	if t := srv.mgr.MaxTermGranted(); t > srv.persistedMaxTerm {
		srv.persistedMaxTerm = t
	}
	srv.w.fabric.SetDown(serverNode, true)
	if srv.deadlineEv != nil {
		srv.w.engine.Cancel(srv.deadlineEv)
		srv.deadlineEv = nil
		srv.deadlineAt = time.Time{}
	}
	srv.writers = make(map[core.WriteID]mwriter)
	srv.seen = make(map[core.ClientID]map[uint64]uint64)
}

// restart brings the server back inside the §5 recovery window: for
// one persisted max term it assumes every datum may be leased by
// unknown clients, so writes defer for the full window.
func (srv *mserver) restart() {
	if !srv.down {
		return
	}
	srv.down = false
	srv.w.fabric.SetDown(serverNode, false)
	var until time.Time
	if srv.persistedMaxTerm > 0 && srv.persistedMaxTerm < core.Infinite {
		until = srv.localNow().Add(srv.persistedMaxTerm)
	}
	srv.resetManager(until)
}
