package check

import (
	"strings"
	"testing"

	"leases/internal/clock"
	"leases/internal/obs/tracing"
	"leases/internal/sim"
)

// lensWorld is the minimal world the span lens needs: an engine clock,
// a tracer, and the oracle's violation sink.
func lensWorld() *world {
	w := &world{sc: Scenario{Files: 1}, out: &Outcome{}}
	w.engine = sim.New(clock.Epoch)
	w.start = w.engine.Now()
	w.tracer = tracing.New(tracing.Config{Now: w.engine.Now, SampleRate: 1, RetainIndex: true})
	w.orc = newOracle(w, 8)
	return w
}

func kinds(w *world) []string {
	var out []string
	for _, v := range w.out.Violations {
		out = append(out, v.Kind)
	}
	return out
}

// The lens is only trustworthy if it fires on the trees it claims to
// reject: an unended root, a fan-out that disagrees with its pushes,
// and a span whose parent the tracer has never seen.
func TestSpanLensCatchesMalformedTrees(t *testing.T) {
	t.Run("leak", func(t *testing.T) {
		w := lensWorld()
		w.tracer.StartRoot("client.write") // never ended
		w.spanLens()
		if ks := kinds(w); len(ks) != 1 || ks[0] != vSpanLeak {
			t.Fatalf("violations = %v, want [%s]", ks, vSpanLeak)
		}
	})
	t.Run("fanout", func(t *testing.T) {
		w := lensWorld()
		root := w.tracer.StartRoot("client.write")
		d := w.tracer.StartChild(root.Context(), "write.defer")
		d.SetFanout(2) // claims two pushes...
		p := w.tracer.StartChild(d.Context(), "approve.push")
		p.EndNote("approve") // ...issues one
		d.End()
		root.End()
		w.spanLens()
		if ks := kinds(w); len(ks) != 1 || ks[0] != vSpanFanout {
			t.Fatalf("violations = %v, want [%s]", ks, vSpanFanout)
		}
	})
	t.Run("orphan", func(t *testing.T) {
		w := lensWorld()
		// A context the tracer never issued: the model analogue of a
		// corrupted wire header.
		forged := tracing.Context{TraceID: 99, SpanID: 42, Sampled: true}
		sp := w.tracer.StartChild(forged, "server.write")
		sp.End()
		w.spanLens()
		found := false
		for _, v := range w.out.Violations {
			if v.Kind == vSpanOrphan && strings.Contains(v.Detail, "unknown parent") {
				found = true
			}
		}
		if !found {
			t.Fatalf("violations = %v, want a %s", w.out.Violations, vSpanOrphan)
		}
	})
	t.Run("clean", func(t *testing.T) {
		w := lensWorld()
		root := w.tracer.StartRoot("client.write")
		d := w.tracer.StartChild(root.Context(), "write.defer")
		d.SetFanout(1)
		p := w.tracer.StartChild(d.Context(), "approve.push")
		p.EndNote("approve")
		d.End()
		root.End()
		w.spanLens()
		if len(w.out.Violations) != 0 {
			t.Fatalf("clean tree violated: %v", w.out.Violations)
		}
	})
}
