package check

import (
	"fmt"
	"io"
	"math/rand"
)

// ExploreConfig bounds one exploration run.
type ExploreConfig struct {
	// Gen parameterizes scenario generation (random mode) or the
	// alphabet (exhaustive mode).
	Gen GenConfig
	// Mode is "random" (seeded walks) or "exhaustive" (bounded
	// enumeration).
	Mode string
	// Seeds is how many random scenarios to run; exhaustive mode uses
	// it as a schedule budget when positive.
	Seeds int
	// BaseSeed derives the per-scenario seeds; equal BaseSeeds explore
	// equal schedule sets.
	BaseSeed int64
	// NoShrink skips minimization of a found failure.
	NoShrink bool
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// Report summarizes an exploration.
type Report struct {
	Schedules int
	// Violating is the first failing scenario found, nil if none.
	Violating *Scenario
	// Outcome is the failing scenario's outcome, nil if none.
	Outcome *Outcome
	// Counterexample is the shrunk failure, nil if none (or NoShrink).
	Counterexample *Counterexample
}

func (r *Report) logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// Explore runs schedules until one fails or the budget is exhausted.
func Explore(cfg ExploreConfig) (*Report, error) {
	r := &Report{}
	switch cfg.Mode {
	case "", "random":
		if cfg.Seeds <= 0 {
			cfg.Seeds = 1000
		}
		seedRNG := rand.New(rand.NewSource(cfg.BaseSeed))
		for i := 0; i < cfg.Seeds; i++ {
			seed := seedRNG.Int63()
			sc := Generate(seed, cfg.Gen)
			out, err := RunScenario(sc, Options{})
			if err != nil {
				return nil, fmt.Errorf("check: scenario seed %d: %w", seed, err)
			}
			r.Schedules++
			if !out.Ok() {
				r.Violating = &sc
				r.Outcome = out
				r.logf(cfg.Log, "seed %d violates after %d schedules: %v", seed, r.Schedules, out.Violations[0])
				break
			}
			if cfg.Log != nil && (i+1)%500 == 0 {
				r.logf(cfg.Log, "%d/%d schedules clean", i+1, cfg.Seeds)
			}
		}
	case "exhaustive":
		budget := cfg.Seeds
		visited := ExhaustiveWalk(cfg.Gen, budget, func(sc Scenario) bool {
			out, err := RunScenario(sc, Options{})
			if err != nil || !out.Ok() {
				copied := sc.clone()
				r.Violating = &copied
				r.Outcome = out
				return false
			}
			return true
		})
		r.Schedules = visited
		if r.Violating != nil {
			r.logf(cfg.Log, "schedule %d of exhaustive walk violates: %v", visited, r.Outcome.Violations)
		}
	default:
		return nil, fmt.Errorf("check: unknown mode %q", cfg.Mode)
	}

	if r.Violating != nil && !cfg.NoShrink {
		r.logf(cfg.Log, "shrinking %d-step failure...", r.Violating.Steps())
		r.Counterexample = Minimize("", *r.Violating, r.Violating.Seed)
		r.logf(cfg.Log, "shrunk to %d steps", r.Counterexample.Steps)
	}
	return r, nil
}
