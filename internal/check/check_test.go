package check

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// quickSeeds reports the schedule budget for TestModelCheckQuick: 2000
// by default (the CI budget), overridable for nightly runs via
// LEASECHECK_SEEDS.
func quickSeeds(t *testing.T) int {
	if s := os.Getenv("LEASECHECK_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad LEASECHECK_SEEDS=%q", s)
		}
		return n
	}
	return 2000
}

// baseSeed lets CI rotate the explored schedule set per commit while
// keeping the run replayable: the logged value, fed back through
// LEASECHECK_SEED, reproduces the exact walk.
func baseSeed(t *testing.T) int64 {
	if s := os.Getenv("LEASECHECK_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad LEASECHECK_SEED=%q", s)
		}
		return n
	}
	return 1
}

// TestModelCheckQuick is the model checker's standing gate: random
// schedule exploration across the full fault grammar must stay
// violation-free. On failure the shrunk counterexample is saved so it
// can be committed as a regression artifact.
func TestModelCheckQuick(t *testing.T) {
	seeds := quickSeeds(t)
	base := baseSeed(t)
	t.Logf("exploring %d schedules from base seed %d (replay: LEASECHECK_SEED=%d)", seeds, base, base)
	rep, err := Explore(ExploreConfig{
		Gen:      GenConfig{Profile: ProfileAll},
		Mode:     "random",
		Seeds:    seeds,
		BaseSeed: base,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating != nil {
		dir := os.Getenv("LEASECHECK_ARTIFACT_DIR")
		if dir == "" {
			dir = t.TempDir()
		}
		path := ""
		if rep.Counterexample != nil {
			path, _ = rep.Counterexample.Save(dir)
		}
		t.Fatalf("schedule %d (seed %d) violated: %v\nshrunk counterexample: %s",
			rep.Schedules, rep.Violating.Seed, rep.Outcome.Violations, path)
	}
	t.Logf("%d schedules clean", rep.Schedules)
}

// TestProfilesClean runs each fault grammar on its own, so a failure
// localizes to the fault dimension that caused it.
func TestProfilesClean(t *testing.T) {
	for _, p := range []Profile{ProfileDrift, ProfilePartition, ProfileCrash} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			t.Parallel()
			rep, err := Explore(ExploreConfig{
				Gen:      GenConfig{Profile: p},
				Mode:     "random",
				Seeds:    200,
				BaseSeed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Violating != nil {
				t.Fatalf("seed %d violated: %v", rep.Violating.Seed, rep.Outcome.Violations)
			}
		})
	}
}

// TestExhaustiveSmoke enumerates every 4-op schedule over 2 clients
// and 1 file (6^4 = 1296 sequences) and requires all of them clean.
func TestExhaustiveSmoke(t *testing.T) {
	rep, err := Explore(ExploreConfig{
		Gen:  GenConfig{Clients: 2, Files: 1, Ops: 4},
		Mode: "exhaustive",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating != nil {
		t.Fatalf("exhaustive schedule violated: %+v\n%v", rep.Violating, rep.Outcome.Violations)
	}
	if want := ExhaustiveCount(GenConfig{Clients: 2, Files: 1, Ops: 4}); rep.Schedules != want {
		t.Fatalf("visited %d schedules, want %d", rep.Schedules, want)
	}
}

// TestBreakWriteDeferShrinks is the harness's own acceptance test:
// deliberately breaking the §2 write-defer path must be caught by the
// oracle, shrink to a short counterexample, replay deterministically
// from its JSON form, and pass again once the break is removed.
func TestBreakWriteDeferShrinks(t *testing.T) {
	var failing *Scenario
	var foundSeed int64
	for seed := int64(1); seed <= 300; seed++ {
		sc := Generate(seed, GenConfig{Profile: ProfileDrift})
		sc.Break = BreakWriteDefer
		out, err := RunScenario(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Ok() {
			failing = &sc
			foundSeed = seed
			break
		}
	}
	if failing == nil {
		t.Fatal("no generated schedule caught the write-defer break in 300 seeds")
	}
	ce := Minimize("write-defer-break", *failing, foundSeed)
	t.Logf("shrunk %d steps -> %d steps: %v", failing.Steps(), ce.Steps, ce.Violation)
	if ce.Steps > 12 {
		t.Fatalf("counterexample has %d steps, want <= 12", ce.Steps)
	}

	// Round-trip through the JSON artifact and replay twice.
	dir := t.TempDir()
	path, err := ce.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCounterexample(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplayMatches(loaded); err != nil {
		t.Fatal(err)
	}

	// The same schedule under the honest protocol is clean.
	honest := loaded.Scenario.clone()
	honest.Break = ""
	out, err := RunScenario(honest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Ok() {
		t.Fatalf("honest replay of the counterexample still fails: %v", out.Violations)
	}
}

// TestBreakFenceCaught covers the other safety hook: with the
// invalidation fence disabled, some schedule must cache a stale reply.
func TestBreakFenceCaught(t *testing.T) {
	for seed := int64(1); seed <= 2000; seed++ {
		sc := Generate(seed, GenConfig{Profile: ProfileAll})
		sc.Break = BreakFence
		out, err := RunScenario(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Ok() {
			t.Logf("seed %d caught the fence break: %v", seed, out.Violations[0])
			return
		}
	}
	t.Fatal("no schedule caught the fence break in 2000 seeds")
}

// TestGenerateDeterministic pins the generator: equal seeds yield
// deeply equal scenarios.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, GenConfig{Profile: ProfileAll})
	b := Generate(42, GenConfig{Profile: ProfileAll})
	aj, err := a.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("seed 42 generated two different scenarios:\n%s\n---\n%s", aj, bj)
	}
}

// TestScenarioValidate rejects out-of-range references.
func TestScenarioValidate(t *testing.T) {
	sc := Scenario{Clients: 1, Files: 1, Ops: []Op{{Client: 3, Kind: OpRead}}}
	if _, err := RunScenario(sc, Options{}); err == nil {
		t.Fatal("out-of-range client accepted")
	}
	sc = Scenario{Clients: 1, Files: 1, Faults: []Fault{{Kind: "meteor", At: time.Millisecond}}}
	if _, err := RunScenario(sc, Options{}); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
}

// TestPipelinedBurstSchedule hand-builds the schedule shape the
// generator now also emits: one client issuing several operations at
// the same instant, so its requests are concurrently in flight (the
// deployment's futures API on the model substrate). The burst crosses
// another client's leases, forcing approval pushes to interleave with
// the burst's replies, and the oracle must stay clean.
func TestPipelinedBurstSchedule(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sc := Scenario{
		Clients: 3, Files: 2,
		Ops: []Op{
			// Client 1 takes leases on both files.
			{At: ms(0), Client: 1, File: 0, Kind: OpRead},
			{At: ms(0), Client: 1, File: 1, Kind: OpRead},
			// Client 0 pipelines a mixed burst: two writes (each must
			// collect client 1's approval), a read, and an extend, all in
			// flight together.
			{At: ms(20), Client: 0, File: 0, Kind: OpWrite},
			{At: ms(20), Client: 0, File: 1, Kind: OpWrite},
			{At: ms(20), Client: 0, File: 0, Kind: OpRead},
			{At: ms(20), Client: 0, Kind: OpExtend},
			// Client 1 reads into the middle of the burst: its reply may
			// cross the approval pushes aimed at it.
			{At: ms(21), Client: 1, File: 0, Kind: OpRead},
			// A second burst from a third client against the same files.
			{At: ms(40), Client: 2, File: 0, Kind: OpRead},
			{At: ms(40), Client: 2, File: 1, Kind: OpWrite},
			{At: ms(40), Client: 2, File: 1, Kind: OpRead},
		},
	}
	out, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("pipelined burst schedule violated: %v", out.Violations)
	}
	if out.Reads == 0 || out.Writes == 0 {
		t.Fatalf("burst schedule ran no work: %+v", out)
	}
}
