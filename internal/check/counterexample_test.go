package check

import (
	"path/filepath"
	"testing"
)

// TestCounterexampleArtifacts is the table-driven regression loader:
// every JSON artifact under testdata/counterexamples/ must (a) replay
// its recorded violation deterministically with the scenario's
// deliberate break enabled, and (b) run clean once the break is
// removed. Together the two directions make each artifact a
// revert-guard: grant-approval-reorder fails if the invalidation fence
// is removed from the client, write-defer-immediate-apply fails if the
// server stops deferring writes behind live leases.
func TestCounterexampleArtifacts(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "counterexamples", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no counterexample artifacts found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			ce, err := LoadCounterexample(path)
			if err != nil {
				t.Fatal(err)
			}
			if ce.Scenario.Break == "" {
				t.Fatal("artifact has no protocol break; it cannot guard anything")
			}
			if got := ce.Scenario.Steps(); got != ce.Steps {
				t.Errorf("artifact declares %d steps, scenario has %d", ce.Steps, got)
			}
			if ce.Steps > 12 {
				t.Errorf("counterexample has %d steps; artifacts should stay minimal (<= 12)", ce.Steps)
			}
			if err := ReplayMatches(ce); err != nil {
				t.Fatalf("broken replay: %v", err)
			}
			honest := ce.Scenario.clone()
			honest.Break = ""
			out, err := RunScenario(honest, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !out.Ok() {
				t.Fatalf("honest protocol still violates: %v", out.Violations)
			}
		})
	}
}
