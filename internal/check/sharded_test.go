package check

import (
	"testing"
	"time"
)

// shardedGen is the standard sharded generator configuration: two
// replica groups of three replicas each, cross-shard renames in the op
// mix, group-targeted failover faults.
func shardedGen(p Profile) GenConfig {
	return GenConfig{Servers: 3, Groups: 2, Profile: p}
}

// TestShardedBasicSchedule hand-builds the canonical sharded shape on
// two single-replica groups: reads home to both groups, a cross-shard
// rename moves a file, a client with a stale routing belief converges
// via NOT_OWNER redirects, and the oracle watches every operation.
func TestShardedBasicSchedule(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sc := Scenario{
		Clients: 2, Files: 2, Servers: 1, Groups: 2,
		Ops: []Op{
			// f0 homes at group 0, f1 at group 1.
			{At: ms(30), Client: 0, File: 0, Kind: OpRead},
			{At: ms(40), Client: 1, File: 1, Kind: OpRead},
			// The rename's §2 clearance must invalidate client 0's own
			// read lease on f0 before ownership transfers to group 1.
			{At: ms(60), Client: 0, File: 0, Kind: OpRename},
			// Client 1 still believes f0 homes at group 0: NOT_OWNER
			// steers the write to group 1.
			{At: ms(120), Client: 1, File: 0, Kind: OpWrite},
			// Client 0's cache was invalidated by the clearance; its
			// stale route also converges via NOT_OWNER.
			{At: ms(160), Client: 0, File: 0, Kind: OpRead},
			{At: ms(180), Client: 0, File: 0, Kind: OpRead}, // cache hit at the new home
			{At: ms(220), Client: 0, Kind: OpExtend},        // renewals split per group
			{At: ms(300), Client: 0, File: 1, Kind: OpWrite},
			{At: ms(350), Client: 1, File: 1, Kind: OpRead},
		},
	}
	out, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("sharded schedule violated: %v", out.Violations)
	}
	if out.Renames == 0 || out.RenamesAcked == 0 {
		t.Fatalf("rename did not commit: %+v", out)
	}
	if out.Redirected == 0 {
		t.Fatalf("no stale route converged via NOT_OWNER: %+v", out)
	}
	if out.WritesAcked != 2 || out.CacheHits == 0 {
		t.Fatalf("schedule lost work: %+v", out)
	}
}

// TestShardedFailoverSchedule crosses the two fault axes: a rename is
// issued while the SOURCE group's master is about to die, and another
// after the successor takes over. The prepare retry ladder, the clients'
// per-group master beliefs, and the ownership handoff must all converge
// with no oracle violation.
func TestShardedFailoverSchedule(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sc := Scenario{
		Clients: 2, Files: 2, Servers: 3, Groups: 2,
		Ops: []Op{
			{At: ms(30), Client: 0, File: 0, Kind: OpRead},
			{At: ms(50), Client: 1, File: 1, Kind: OpWrite},
			{At: ms(90), Client: 0, File: 0, Kind: OpRename},
			// Into group 0's failover window: ops must redirect to (or
			// time out onto) the successor replica.
			{At: ms(700), Client: 1, File: 0, Kind: OpWrite},
			{At: ms(760), Client: 0, File: 0, Kind: OpRead},
			// A rename ISSUED mid-failover: the client's retry ladder
			// finds group 1's master, whose prepare finds group 0's
			// successor (f0 moved to group 1 at ms 90).
			{At: ms(800), Client: 1, File: 0, Kind: OpRename},
			{At: ms(1500), Client: 0, File: 0, Kind: OpRead},
			{At: ms(1600), Client: 1, File: 1, Kind: OpRead},
		},
		Faults: []Fault{
			{Kind: FaultMasterCrash, Group: 0, At: ms(600), Dur: ms(400)},
		},
	}
	out, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) != 0 {
		t.Fatalf("sharded failover schedule violated: %v", out.Violations)
	}
	if out.RenamesAcked == 0 {
		t.Fatalf("no rename survived the failover: %+v", out)
	}
	if out.WritesAcked == 0 || out.Reads == 0 {
		t.Fatalf("schedule ran no work: %+v", out)
	}
}

// TestModelCheckShardedQuick explores random sharded schedules — two
// replicated groups, cross-shard renames racing writes, reads, group
// master crashes, asymmetric partitions, and replica clock drift — and
// requires every one violation-free under the same oracle.
func TestModelCheckShardedQuick(t *testing.T) {
	seeds := quickSeeds(t)
	base := baseSeed(t)
	t.Logf("exploring %d sharded schedules from base seed %d (replay: LEASECHECK_SEED=%d)", seeds, base, base)
	rep, err := Explore(ExploreConfig{
		Gen:      shardedGen(ProfileAll),
		Mode:     "random",
		Seeds:    seeds,
		BaseSeed: base,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating != nil {
		dir := t.TempDir()
		path := ""
		if rep.Counterexample != nil {
			path, _ = rep.Counterexample.Save(dir)
		}
		t.Fatalf("sharded schedule %d (seed %d) violated: %v\nshrunk counterexample: %s",
			rep.Schedules, rep.Violating.Seed, rep.Outcome.Violations, path)
	}
	t.Logf("%d sharded schedules clean", rep.Schedules)
}

// TestShardedUnreplicatedQuick covers the cheap sharded corner — two
// single-replica groups, no elections — where every schedule cost goes
// into rename/routing interleavings rather than failovers.
func TestShardedUnreplicatedQuick(t *testing.T) {
	rep, err := Explore(ExploreConfig{
		Gen:      GenConfig{Servers: 1, Groups: 2, Profile: ProfileAll},
		Mode:     "random",
		Seeds:    300,
		BaseSeed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating != nil {
		t.Fatalf("seed %d violated: %v", rep.Violating.Seed, rep.Outcome.Violations)
	}
}

// TestShardedProfilesClean localizes failures per fault dimension with
// the full two-group, three-replica topology.
func TestShardedProfilesClean(t *testing.T) {
	for _, p := range []Profile{ProfileDrift, ProfilePartition, ProfileCrash} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			t.Parallel()
			rep, err := Explore(ExploreConfig{
				Gen:      shardedGen(p),
				Mode:     "random",
				Seeds:    100,
				BaseSeed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Violating != nil {
				t.Fatalf("seed %d violated: %v", rep.Violating.Seed, rep.Outcome.Violations)
			}
		})
	}
}

// TestShardedDeterministic extends the nondeterminism audit to sharded
// worlds: renames, prepare retries, NOT_OWNER redirects, per-group
// elections and moves must replay byte-identically.
func TestShardedDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		runTwice(t, Generate(seed, shardedGen(ProfileAll)))
	}
}

// TestBreakRenameOrderCaught demonstrates the rename clearance is
// load-bearing: committing the ownership transfer on the prepare ack
// alone — without first obtaining §2 approval from (or waiting out) the
// source group's leaseholders — lets a destination-group write land
// while a stale cached copy is still covered by a live source lease.
// The oracle observes it as a stale read; the same schedule is clean
// under the honest protocol.
func TestBreakRenameOrderCaught(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	for seed := int64(1); seed <= 200; seed++ {
		sc := renameOrderTemplate(seed, ms)
		out, err := RunScenario(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Ok() {
			t.Logf("seed %d caught the rename-order break: %v", seed, out.Violations[0])
			honest := sc.clone()
			honest.Break = ""
			hout, err := RunScenario(honest, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !hout.Ok() {
				t.Fatalf("honest run of the same schedule also fails: %v", hout.Violations)
			}
			return
		}
	}
	t.Fatal("no schedule caught the rename-order break in 200 seeds")
}

// renameOrderTemplate builds the minimal choreography that needs the
// clearance: client 0 caches f0 under a group-0 read lease; client 1
// renames f0 to group 1 (the sabotage commits without invalidating
// client 0) and then writes it at its new home; client 0's cache hit is
// then provably stale, inside the lease term. The seed jitters every
// instant so a range of interleavings is explored.
func renameOrderTemplate(seed int64, ms func(int) time.Duration) Scenario {
	j := func(n int64) time.Duration { return time.Duration((seed*7919+n*104729)%97) * time.Millisecond / 10 }
	return Scenario{
		Seed:    seed,
		Clients: 2, Files: 1, Servers: 1, Groups: 2,
		Break: BreakRenameOrder,
		Ops: []Op{
			{At: ms(30) + j(1), Client: 0, File: 0, Kind: OpRead},
			{At: ms(60) + j(2), Client: 1, File: 0, Kind: OpRename},
			{At: ms(90) + j(3), Client: 1, File: 0, Kind: OpWrite},
			{At: ms(130) + j(4), Client: 0, File: 0, Kind: OpRead},
		},
	}
}
