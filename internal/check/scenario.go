// Package check is a deterministic model checker for the lease
// protocol. It runs the real protocol pieces — the sharded lease
// manager (internal/core), a server and client faithful to the TCP
// deployment's semantics — on the simulated substrate (internal/sim,
// internal/netsim) and checks every completed operation against an
// independent sequential-consistency oracle.
//
// A Scenario is a complete, replayable description of one execution:
// the topology, the clock behaviour of every node, the operation
// trace, and the fault schedule. Scenarios are generated from a seed
// (random mode), enumerated exhaustively over a bounded alphabet
// (exhaustive mode), or loaded from JSON counterexample artifacts.
// Equal scenarios produce byte-identical executions, which is what
// makes shrinking and regression replay possible.
package check

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// OpKind classifies a client operation.
type OpKind string

// Client operations: a read consults the cache and fetches on a miss,
// a write submits a new value, an extend renews every held lease (the
// explicit batch extension of §3.1).
const (
	OpRead   OpKind = "read"
	OpWrite  OpKind = "write"
	OpExtend OpKind = "extend"
	// OpRename (sharded worlds only) asks the file's owning group to
	// move it to the other group — the model's cross-shard rename. The
	// source master must obtain §2 clearance on the file (conflicting
	// leaseholders approve or expire) before ownership transfers.
	OpRename OpKind = "rename"
)

// Op is one step of the operation trace.
type Op struct {
	// At is the virtual offset from the scenario start.
	At     time.Duration `json:"at"`
	Client int           `json:"client"`
	// File indexes the target file; ignored for extends.
	File int    `json:"file,omitempty"`
	Kind OpKind `json:"kind"`
}

// FaultKind classifies a fault-schedule entry.
type FaultKind string

// Fault kinds drawn by the schedule grammar. Window faults (partition,
// loss, delay, drop) are active during [At, At+Dur); crash faults take
// the node down at At and restart it at At+Dur.
const (
	// FaultPartition cuts the link between one client and the server.
	FaultPartition FaultKind = "partition"
	// FaultClientCrash crashes a client, losing its volatile state
	// (cache, leases, in-flight requests); it restarts with a fresh
	// incarnation.
	FaultClientCrash FaultKind = "client-crash"
	// FaultServerCrash crashes the server, losing lease state but not
	// storage; on restart it honours the durable max-term recovery
	// window (§5).
	FaultServerCrash FaultKind = "server-crash"
	// FaultDrop discards every matching message in the window.
	FaultDrop FaultKind = "drop"
	// FaultDelay adds Extra latency to every matching message in the
	// window, reordering it against later traffic.
	FaultDelay FaultKind = "delay"
	// FaultLoss drops each message in the window with probability Rate.
	FaultLoss FaultKind = "loss"
	// FaultMasterCrash (replicated worlds only) crashes whichever
	// replica holds the master lease at At and restarts it at At+Dur;
	// a no-op if no replica is master at At.
	FaultMasterCrash FaultKind = "master-crash"
	// FaultAsymPartition (replicated worlds only) asymmetrically
	// partitions the replica that is master at At: everything it SENDS
	// is held in flight and delivered just after the window closes,
	// while everything addressed to it still arrives — the shape under
	// which a master must step down on its own clock, and under which
	// its stale frames arrive late and must be rejected by fencing.
	FaultAsymPartition FaultKind = "asym-partition"
)

// Fault is one entry of the fault schedule.
type Fault struct {
	Kind FaultKind     `json:"kind"`
	At   time.Duration `json:"at"`
	Dur  time.Duration `json:"dur"`
	// Client selects the affected client for partition, client-crash,
	// drop, and delay faults.
	Client int `json:"client,omitempty"`
	// Server selects the affected replica for server-crash faults and
	// the far end of partition/drop/delay faults in replicated worlds
	// (ignored when Servers <= 1; master-crash and asym-partition
	// resolve their target dynamically instead).
	Server int `json:"server,omitempty"`
	// Group selects the replica group whose master a master-crash or
	// asym-partition fault targets in sharded worlds (Groups > 1);
	// ignored otherwise.
	Group int `json:"group,omitempty"`
	// MsgKind, when non-empty, restricts drop/delay to one message
	// class (e.g. "lease.grant"); empty matches every kind.
	MsgKind string `json:"msg_kind,omitempty"`
	// ToServer selects the direction for drop/delay: client→server
	// when true, server→client when false.
	ToServer bool `json:"to_server,omitempty"`
	// Extra is the added latency for delay faults.
	Extra time.Duration `json:"extra,omitempty"`
	// Rate is the drop probability for loss faults.
	Rate float64 `json:"rate,omitempty"`
}

// Deliberate protocol breaks, enabled through Scenario.Break. Each
// disables one safety mechanism so the oracle can demonstrate it is
// load-bearing; the model checker proper always runs with Break empty.
const (
	// BreakWriteDefer applies writes immediately instead of deferring
	// them behind conflicting leases — the §2 invariant's enforcement
	// point.
	BreakWriteDefer = "write-defer"
	// BreakFence disables the invalidation fence: grant and ack replies
	// that crossed an approval push on the wire are cached anyway,
	// resurrecting invalidated leases (the PR 4 reorder race).
	BreakFence = "fence"
	// BreakAllowance sets the client's clock allowance ε to zero, so
	// drifted clocks make the client trust expired leases.
	BreakAllowance = "allowance"
	// BreakQuiet removes the failover waiting discipline: restarted
	// replicas rejoin elections immediately (amnesiac about the
	// promises their previous incarnation made), and a freshly
	// promoted master serves without the §5 recovery window. The first
	// shortcut lets two amnesiac acceptors elect a second master while
	// the first one's lease is still running — the diskless split
	// brain the PaxosLease quiet period exists to prevent. The second
	// embodies the belief that mastership alone makes failover safe:
	// the usurper applies writes inside leases the deposed master
	// granted and never told it about.
	BreakQuiet = "quiet"
	// BreakClassHorizon (installed worlds only) demotes a written file
	// from the installed class but applies the write immediately instead
	// of waiting out the broadcast coverage horizon — the §4.3
	// drop-on-write discipline's enforcement point. Clients whose class
	// coverage is still live then read the old value from cache after
	// the write was acknowledged.
	BreakClassHorizon = "class-horizon"
	// BreakRenameOrder (sharded worlds only) commits a cross-shard
	// rename the moment the destination group acknowledges the prepare,
	// skipping the source's §2 clearance barrier. Read leases the source
	// granted stay live across the ownership transfer, so a holder's
	// cache hit can return the pre-move value after a post-move write
	// was acknowledged on the destination — the stale read the
	// prepare/clear/commit ordering exists to prevent.
	BreakRenameOrder = "rename-order"
)

// Scenario fully determines one model-checked execution.
type Scenario struct {
	Seed    int64 `json:"seed"`
	Clients int   `json:"clients"`
	Files   int   `json:"files"`
	// Servers is the replica-set size PER GROUP; 1 (the default) runs
	// the original single-server world, >1 runs a PaxosLease replica
	// set: one election Machine per server, master-only lease granting,
	// replicate-before-apply writes, and promotion state sync.
	Servers int `json:"servers,omitempty"`
	// Groups is the number of replica groups the namespace is sharded
	// across; 0/1 (the default) runs the unsharded world. With Groups >
	// 1 every group runs its own Servers-replica set (its own elections,
	// its own replication pipeline), file f starts homed at group
	// f%Groups, clients route by a per-file home belief steered by
	// NOT_OWNER redirects, and OpRename moves files between groups via
	// the two-phase prepare/clear/commit protocol.
	Groups int `json:"groups,omitempty"`

	// Term is the fixed lease term t_s; Allowance is the clock bound ε
	// clients subtract.
	Term      time.Duration `json:"term"`
	Allowance time.Duration `json:"allowance"`

	// Prop, Proc, Jitter parameterize the fabric (§3.1 cost model).
	Prop   time.Duration `json:"prop"`
	Proc   time.Duration `json:"proc"`
	Jitter time.Duration `json:"jitter,omitempty"`

	// ClientRate/ClientSkew and ServerRate/ServerSkew describe each
	// node's clock: local = start + rate·(true−start) + skew. A zero
	// rate means 1 (well-behaved).
	ClientRate []float64       `json:"client_rate,omitempty"`
	ClientSkew []time.Duration `json:"client_skew,omitempty"`
	ServerRate float64         `json:"server_rate,omitempty"`
	ServerSkew time.Duration   `json:"server_skew,omitempty"`
	// ServerRates/ServerSkews give each replica its own clock in
	// replicated worlds; entries default to the scalar
	// ServerRate/ServerSkew above, which stays authoritative for
	// single-server scenarios.
	ServerRates []float64       `json:"server_rates,omitempty"`
	ServerSkews []time.Duration `json:"server_skews,omitempty"`

	// Installed enables the §4.3 installed-files class in the model:
	// every file starts installed, the serving server multicasts
	// periodic broadcast extensions (generation + class term, stamped
	// with its local clock — the TBroadcastExt frame), clients fetch
	// the membership snapshot on a generation mismatch (TInstalled /
	// TInstalledRep), and the first write to an installed file demotes
	// it and waits out the broadcast coverage horizon before applying.
	Installed bool `json:"installed,omitempty"`
	// InstalledTerm is the class term broadcast extensions carry;
	// defaults to 2·Term. BroadcastEvery is the broadcast cadence;
	// defaults to Term/4.
	InstalledTerm  time.Duration `json:"installed_term,omitempty"`
	BroadcastEvery time.Duration `json:"broadcast_every,omitempty"`

	Ops    []Op    `json:"ops"`
	Faults []Fault `json:"faults,omitempty"`

	// Break selects a deliberate protocol break (see Break* constants);
	// empty runs the honest protocol.
	Break string `json:"break,omitempty"`
}

// Steps counts the schedule entries the shrinker minimizes over.
func (sc Scenario) Steps() int { return len(sc.Ops) + len(sc.Faults) }

// groups normalizes the group count (0 means unsharded).
func (sc Scenario) groups() int {
	if sc.Groups > 1 {
		return sc.Groups
	}
	return 1
}

// withDefaults fills zero fields with the standard model parameters.
func (sc Scenario) withDefaults() Scenario {
	if sc.Clients == 0 {
		sc.Clients = 3
	}
	if sc.Files == 0 {
		sc.Files = 2
	}
	if sc.Term == 0 {
		sc.Term = 250 * time.Millisecond
	}
	if sc.Allowance == 0 && sc.Break != BreakAllowance {
		sc.Allowance = 40 * time.Millisecond
	}
	if sc.Prop == 0 {
		sc.Prop = 2 * time.Millisecond
	}
	if sc.Proc == 0 {
		sc.Proc = 100 * time.Microsecond
	}
	if sc.Servers == 0 {
		sc.Servers = 1
	}
	if sc.ServerRate == 0 {
		sc.ServerRate = 1
	}
	for len(sc.ServerRates) < sc.Servers*sc.groups() {
		sc.ServerRates = append(sc.ServerRates, sc.ServerRate)
	}
	for len(sc.ServerSkews) < sc.Servers*sc.groups() {
		sc.ServerSkews = append(sc.ServerSkews, sc.ServerSkew)
	}
	for i, r := range sc.ServerRates {
		if r == 0 {
			sc.ServerRates[i] = 1
		}
	}
	for len(sc.ClientRate) < sc.Clients {
		sc.ClientRate = append(sc.ClientRate, 1)
	}
	for len(sc.ClientSkew) < sc.Clients {
		sc.ClientSkew = append(sc.ClientSkew, 0)
	}
	for i, r := range sc.ClientRate {
		if r == 0 {
			sc.ClientRate[i] = 1
		}
	}
	if sc.Installed {
		if sc.InstalledTerm == 0 {
			sc.InstalledTerm = 2 * sc.Term
		}
		if sc.BroadcastEvery == 0 {
			sc.BroadcastEvery = sc.Term / 4
		}
	}
	return sc
}

// Validate rejects scenarios the world cannot run.
func (sc Scenario) Validate() error {
	if sc.Clients < 1 || sc.Files < 1 {
		return fmt.Errorf("check: scenario needs at least one client and one file (%d/%d)", sc.Clients, sc.Files)
	}
	for i, op := range sc.Ops {
		if op.Client < 0 || op.Client >= sc.Clients {
			return fmt.Errorf("check: op %d targets client %d of %d", i, op.Client, sc.Clients)
		}
		if op.Kind != OpExtend && (op.File < 0 || op.File >= sc.Files) {
			return fmt.Errorf("check: op %d targets file %d of %d", i, op.File, sc.Files)
		}
		if op.Kind == OpRename && sc.groups() < 2 {
			return fmt.Errorf("check: op %d (%s) needs a sharded world (Groups >= 2)", i, op.Kind)
		}
		if op.At < 0 {
			return fmt.Errorf("check: op %d scheduled before start", i)
		}
	}
	if sc.Break == BreakRenameOrder && sc.groups() < 2 {
		return fmt.Errorf("check: break %q needs a sharded world (Groups >= 2)", sc.Break)
	}
	if sc.Installed && sc.groups() > 1 {
		// The §4.3 class broadcast has no group identity; combining it
		// with sharding is out of the checked matrix.
		return fmt.Errorf("check: installed-class scenarios do not support sharding (Groups > 1)")
	}
	if sc.Break == BreakClassHorizon && !sc.Installed {
		return fmt.Errorf("check: break %q needs an installed-class scenario", sc.Break)
	}
	if sc.InstalledTerm < 0 || sc.BroadcastEvery < 0 {
		return fmt.Errorf("check: negative installed-class timing")
	}
	servers := sc.Servers
	if servers == 0 {
		servers = 1
	}
	total := servers * sc.groups()
	for i, ft := range sc.Faults {
		if ft.At < 0 || ft.Dur < 0 {
			return fmt.Errorf("check: fault %d has negative timing", i)
		}
		switch ft.Kind {
		case FaultPartition, FaultClientCrash, FaultDrop, FaultDelay:
			if ft.Client < 0 || ft.Client >= sc.Clients {
				return fmt.Errorf("check: fault %d targets client %d of %d", i, ft.Client, sc.Clients)
			}
		case FaultServerCrash, FaultLoss:
		case FaultMasterCrash, FaultAsymPartition:
			if servers < 2 {
				return fmt.Errorf("check: fault %d (%s) needs a replicated world", i, ft.Kind)
			}
		default:
			return fmt.Errorf("check: fault %d has unknown kind %q", i, ft.Kind)
		}
		if ft.Group < 0 || ft.Group >= sc.groups() {
			return fmt.Errorf("check: fault %d targets group %d of %d", i, ft.Group, sc.groups())
		}
		if ft.Server < 0 || ft.Server >= total {
			return fmt.Errorf("check: fault %d targets server %d of %d", i, ft.Server, total)
		}
	}
	return nil
}

// clone deep-copies the scenario so shrink candidates never alias.
func (sc Scenario) clone() Scenario {
	out := sc
	out.Ops = append([]Op(nil), sc.Ops...)
	out.Faults = append([]Fault(nil), sc.Faults...)
	out.ClientRate = append([]float64(nil), sc.ClientRate...)
	out.ClientSkew = append([]time.Duration(nil), sc.ClientSkew...)
	out.ServerRates = append([]float64(nil), sc.ServerRates...)
	out.ServerSkews = append([]time.Duration(nil), sc.ServerSkews...)
	return out
}

// MarshalIndentJSON renders the scenario as a stable, human-readable
// artifact.
func (sc Scenario) MarshalIndentJSON() ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}

// Profile names a fault grammar for the generator.
type Profile string

// Generator profiles. Drift perturbs clocks only; partition exercises
// links (cuts, loss, targeted delays); crash exercises node failures;
// all unions the three.
const (
	ProfileDrift     Profile = "drift"
	ProfilePartition Profile = "partition"
	ProfileCrash     Profile = "crash"
	ProfileAll       Profile = "all"
)

// GenConfig bounds the generator.
type GenConfig struct {
	Clients int
	Files   int
	// Servers > 1 generates replicated scenarios: failover faults
	// (master crash, asymmetric master partition, follower crashes) and
	// independent per-replica clock drift at the ε budget.
	Servers int
	// Groups > 1 generates sharded scenarios: cross-shard renames in
	// the op mix (so other clients' routing beliefs go stale and must
	// converge via NOT_OWNER redirects), and failover faults that name
	// a target group.
	Groups int
	// Installed generates installed-class scenarios: broadcast
	// extensions, snapshot fetches, and drop-on-write demotion run
	// alongside the ordinary op trace and fault schedule.
	Installed bool
	Ops       int
	Horizon   time.Duration
	Term      time.Duration
	Allowance time.Duration
	Profile   Profile
}

func (cfg GenConfig) withDefaults() GenConfig {
	if cfg.Clients == 0 {
		cfg.Clients = 3
	}
	if cfg.Files == 0 {
		cfg.Files = 2
	}
	if cfg.Servers == 0 {
		cfg.Servers = 1
	}
	if cfg.Groups == 0 {
		cfg.Groups = 1
	}
	if cfg.Ops == 0 {
		cfg.Ops = 24
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 3 * time.Second
		if cfg.Servers > 1 {
			// Replicated runs spend the first election term electing a
			// master and a failover mid-run; give the workload room.
			cfg.Horizon = 4 * time.Second
		}
	}
	if cfg.Term == 0 {
		cfg.Term = 250 * time.Millisecond
	}
	if cfg.Allowance == 0 {
		cfg.Allowance = 40 * time.Millisecond
	}
	if cfg.Profile == "" {
		cfg.Profile = ProfileAll
	}
	return cfg
}

func randDur(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)))
}

// delayableKinds are the message classes a targeted delay fault may
// single out; they mirror the model's wire kinds.
var delayableKinds = []string{
	kindGrant, kindApprovalReq, kindApprove, kindAck, kindExtend, kindWrite,
}

// Generate derives a scenario from a seed under the given bounds.
// Equal (seed, cfg) pairs generate equal scenarios.
func Generate(seed int64, cfg GenConfig) Scenario {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Seed:      seed,
		Clients:   cfg.Clients,
		Files:     cfg.Files,
		Servers:   cfg.Servers,
		Term:      cfg.Term,
		Allowance: cfg.Allowance,
		Installed: cfg.Installed,
	}
	if cfg.Groups > 1 {
		sc.Groups = cfg.Groups
	}
	sc = sc.withDefaults()

	// Operation trace: uniform times over the first 80% of the horizon
	// (the tail lets deferred writes and retries drain), weighted
	// read-heavy like the paper's workload. Some slots expand into
	// pipelined bursts — several operations one client issues at the
	// same instant, so its requests are concurrently in flight the way
	// the deployment's futures API (StartRead/StartWrite) drives the
	// wire — and some into contention pairs: a read and a write of the
	// same file from two clients at the same instant, the shape of the
	// reorder race the invalidation fence guards (an approval push
	// overtaking a grant reply composed just before it).
	times := make([]time.Duration, cfg.Ops)
	for i := range times {
		times[i] = randDur(rng, 0, cfg.Horizon*8/10)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, at := range times {
		if len(sc.Ops) >= cfg.Ops {
			break
		}
		client := rng.Intn(cfg.Clients)
		if cfg.Clients > 1 && rng.Float64() < 0.2 {
			file := rng.Intn(cfg.Files)
			other := (client + 1 + rng.Intn(cfg.Clients-1)) % cfg.Clients
			sc.Ops = append(sc.Ops, Op{At: at, Client: client, File: file, Kind: OpRead})
			if len(sc.Ops) < cfg.Ops {
				sc.Ops = append(sc.Ops, Op{At: at, Client: other, File: file, Kind: OpWrite})
			}
			continue
		}
		burst := 1
		if rng.Float64() < 0.2 {
			burst = 2 + rng.Intn(3)
		}
		for i := 0; i < burst && len(sc.Ops) < cfg.Ops; i++ {
			op := Op{At: at, Client: client}
			switch r := rng.Float64(); {
			case r < 0.55:
				op.Kind = OpRead
				op.File = rng.Intn(cfg.Files)
			case r < 0.85:
				op.Kind = OpWrite
				op.File = rng.Intn(cfg.Files)
			case cfg.Groups > 1 && r < 0.93:
				// Cross-shard rename: moves the file's home and leaves
				// every other client's routing belief for it stale.
				op.Kind = OpRename
				op.File = rng.Intn(cfg.Files)
			default:
				op.Kind = OpExtend
			}
			sc.Ops = append(sc.Ops, op)
		}
	}

	p := cfg.Profile
	drift := p == ProfileDrift || p == ProfileAll
	partition := p == ProfilePartition || p == ProfileAll
	crash := p == ProfileCrash || p == ProfileAll

	if drift {
		// Keep each clock's worst-case error within ε/4 so mutual
		// error (client vs server, each contributing rate and skew
		// terms) stays under ε: rate deviation bounded by
		// ε/8 / (horizon + term), skew bounded by ε/8.
		span := cfg.Horizon + cfg.Term
		dev := float64(cfg.Allowance) / 8 / float64(span)
		skewMax := cfg.Allowance / 8
		for i := 0; i < cfg.Clients; i++ {
			sc.ClientRate[i] = 1 + (rng.Float64()*2-1)*dev
			sc.ClientSkew[i] = time.Duration((rng.Float64()*2 - 1) * float64(skewMax))
		}
		sc.ServerRate = 1 + (rng.Float64()*2-1)*dev
		sc.ServerSkew = time.Duration((rng.Float64()*2 - 1) * float64(skewMax))
		// Replicas drift independently of one another, each at the same
		// ε budget: elections must stay safe at the allowance boundary.
		for i := range sc.ServerRates {
			sc.ServerRates[i] = 1 + (rng.Float64()*2-1)*dev
			sc.ServerSkews[i] = time.Duration((rng.Float64()*2 - 1) * float64(skewMax))
		}
	}
	if partition {
		sc.Jitter = randDur(rng, 0, sc.Prop)
		cuts := 1 + rng.Intn(2)
		for i := 0; i < cuts; i++ {
			sc.Faults = append(sc.Faults, Fault{
				Kind:   FaultPartition,
				Client: rng.Intn(cfg.Clients),
				Server: rng.Intn(cfg.Servers * cfg.Groups),
				At:     randDur(rng, 0, cfg.Horizon*7/10),
				Dur:    randDur(rng, cfg.Term/2, cfg.Term*3/2),
			})
		}
		if cfg.Servers > 1 && rng.Float64() < 0.5 {
			ft := Fault{
				Kind: FaultAsymPartition,
				At:   randDur(rng, cfg.Term, cfg.Horizon*7/10),
				Dur:  randDur(rng, cfg.Term/2, cfg.Term*3/2),
			}
			if cfg.Groups > 1 {
				ft.Group = rng.Intn(cfg.Groups)
			}
			sc.Faults = append(sc.Faults, ft)
		}
		if rng.Float64() < 0.7 {
			sc.Faults = append(sc.Faults, Fault{
				Kind: FaultLoss,
				At:   randDur(rng, 0, cfg.Horizon*7/10),
				Dur:  randDur(rng, cfg.Term/2, cfg.Term*2),
				Rate: 0.05 + 0.35*rng.Float64(),
			})
		}
		if rng.Float64() < 0.7 {
			rt := 2*sc.Prop + 4*sc.Proc
			kinds := delayableKinds
			if cfg.Installed {
				// Delayed broadcasts and snapshot replies probe the
				// send-stamp anchoring: a frame held in the fabric must
				// not extend client belief past the recorded horizon.
				kinds = append(append([]string(nil), delayableKinds...), kindBroadcast, kindClassSnap)
			}
			sc.Faults = append(sc.Faults, Fault{
				Kind:     FaultDelay,
				Client:   rng.Intn(cfg.Clients),
				MsgKind:  kinds[rng.Intn(len(kinds))],
				ToServer: rng.Intn(2) == 0,
				At:       randDur(rng, 0, cfg.Horizon*7/10),
				Dur:      randDur(rng, rt, cfg.Term),
				Extra:    randDur(rng, rt, 20*rt),
			})
		}
	}
	if crash {
		if rng.Float64() < 0.8 {
			sc.Faults = append(sc.Faults, Fault{
				Kind:   FaultClientCrash,
				Client: rng.Intn(cfg.Clients),
				At:     randDur(rng, 0, cfg.Horizon*7/10),
				Dur:    randDur(rng, cfg.Term/2, cfg.Term*2),
			})
		}
		if rng.Float64() < 0.6 {
			sc.Faults = append(sc.Faults, Fault{
				Kind:   FaultServerCrash,
				Server: rng.Intn(cfg.Servers * cfg.Groups),
				At:     randDur(rng, 0, cfg.Horizon*7/10),
				Dur:    randDur(rng, cfg.Term/4, cfg.Term),
			})
		}
		if cfg.Servers > 1 && rng.Float64() < 0.6 {
			ft := Fault{
				Kind: FaultMasterCrash,
				At:   randDur(rng, cfg.Term, cfg.Horizon*7/10),
				Dur:  randDur(rng, cfg.Term/2, cfg.Term*2),
			}
			if cfg.Groups > 1 {
				// Kill one group's master mid-run — often mid-rename,
				// the window the two-phase protocol must survive.
				ft.Group = rng.Intn(cfg.Groups)
			}
			sc.Faults = append(sc.Faults, ft)
		}
	}
	sort.SliceStable(sc.Faults, func(i, j int) bool { return sc.Faults[i].At < sc.Faults[j].At })
	return sc
}

// Bounded-exhaustive limits. The alphabet grows as clients·(2·files+1),
// and the walk enumerates alphabet^ops sequences, so the bounds keep
// the space around 10^5 schedules.
const (
	MaxExhaustiveClients = 3
	MaxExhaustiveFiles   = 2
	MaxExhaustiveOps     = 6
)

type symbol struct {
	client int
	file   int
	kind   OpKind
}

func exhaustiveAlphabet(clients, files int) []symbol {
	var out []symbol
	for c := 0; c < clients; c++ {
		for f := 0; f < files; f++ {
			out = append(out, symbol{c, f, OpRead}, symbol{c, f, OpWrite})
		}
		out = append(out, symbol{c, 0, OpExtend})
	}
	return out
}

// ExhaustiveCount reports how many schedules ExhaustiveWalk would
// enumerate under cfg.
func ExhaustiveCount(cfg GenConfig) int {
	cfg = cfg.withDefaults()
	n := len(exhaustiveAlphabet(min(cfg.Clients, MaxExhaustiveClients), min(cfg.Files, MaxExhaustiveFiles)))
	ops := min(cfg.Ops, MaxExhaustiveOps)
	total := 1
	for i := 0; i < ops; i++ {
		total *= n
	}
	return total
}

// ExhaustiveWalk enumerates every operation sequence of length
// min(cfg.Ops, MaxExhaustiveOps) over the bounded alphabet, invoking fn
// for each fault-free scenario. Enumeration stops early when fn returns
// false or budget scenarios (if positive) have been visited. It reports
// how many scenarios were visited.
func ExhaustiveWalk(cfg GenConfig, budget int, fn func(Scenario) bool) int {
	cfg = cfg.withDefaults()
	clients := min(cfg.Clients, MaxExhaustiveClients)
	files := min(cfg.Files, MaxExhaustiveFiles)
	ops := min(cfg.Ops, MaxExhaustiveOps)
	alphabet := exhaustiveAlphabet(clients, files)
	// Ops are spaced half a round-trip apart (default fabric timing:
	// RT = 2·2ms + 4·100µs), so each op's messages are still in flight
	// when the next op starts and the enumeration covers concurrent
	// orderings, not just serialized ones.
	const spacing = 2200 * time.Microsecond
	idx := make([]int, ops)
	visited := 0
	for {
		sc := Scenario{Clients: clients, Files: files, Term: cfg.Term, Allowance: cfg.Allowance}
		for i, k := range idx {
			s := alphabet[k]
			sc.Ops = append(sc.Ops, Op{At: time.Duration(i) * spacing, Client: s.client, File: s.file, Kind: s.kind})
		}
		visited++
		if !fn(sc) {
			return visited
		}
		if budget > 0 && visited >= budget {
			return visited
		}
		// Odometer increment.
		i := ops - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(alphabet) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return visited
		}
	}
}
