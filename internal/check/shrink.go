package check

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Counterexample is a minimized failing scenario, replayable from its
// JSON form. Artifacts under testdata/counterexamples/ are loaded as
// regression tests.
type Counterexample struct {
	Name string `json:"name,omitempty"`
	// Violation is the oracle verdict the scenario reproduces.
	Violation Violation `json:"violation"`
	// FoundSeed is the exploration seed that first hit the failure,
	// for provenance; replay needs only Scenario.
	FoundSeed int64 `json:"found_seed,omitempty"`
	// Steps is len(Ops)+len(Faults) after shrinking.
	Steps    int      `json:"steps"`
	Scenario Scenario `json:"scenario"`
}

// Save writes the counterexample as an indented JSON artifact.
func (ce *Counterexample) Save(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := ce.Name
	if name == "" {
		name = fmt.Sprintf("%s-seed%d", ce.Violation.Kind, ce.Scenario.Seed)
	}
	path := filepath.Join(dir, name+".json")
	data, err := json.MarshalIndent(ce, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	return path, os.WriteFile(path, data, 0o644)
}

// LoadCounterexample reads a saved artifact.
func LoadCounterexample(path string) (*Counterexample, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ce Counterexample
	if err := json.Unmarshal(data, &ce); err != nil {
		return nil, fmt.Errorf("check: parsing %s: %w", path, err)
	}
	return &ce, nil
}

// fails replays a candidate and reports whether it still violates.
// Replay is deterministic, so a candidate that fails once fails always.
func fails(sc Scenario) bool {
	out, err := RunScenario(sc, Options{MaxViolations: 1})
	return err == nil && !out.Ok()
}

// Shrink minimizes a failing scenario to a small counterexample using
// ddmin-style passes: drop chunks of the fault schedule, then chunks
// of the operation trace (halving chunk sizes), then straighten the
// clocks and remove jitter, looping until a fixpoint. Every candidate
// is judged by deterministic replay, so the result provably still
// fails.
func Shrink(sc Scenario) Scenario {
	sc = sc.withDefaults().clone()
	if !fails(sc) {
		return sc
	}
	for {
		before := sc.Steps()
		sc = shrinkFaults(sc)
		sc = shrinkOps(sc)
		sc = straighten(sc)
		if sc.Steps() >= before {
			return sc
		}
	}
}

func shrinkFaults(sc Scenario) Scenario {
	for chunk := len(sc.Faults); chunk >= 1; chunk /= 2 {
		for lo := 0; lo < len(sc.Faults); {
			cand := sc.clone()
			hi := lo + chunk
			if hi > len(cand.Faults) {
				hi = len(cand.Faults)
			}
			cand.Faults = append(cand.Faults[:lo], cand.Faults[hi:]...)
			if fails(cand) {
				sc = cand
				continue // same lo, next chunk now occupies it
			}
			lo += chunk
		}
	}
	return sc
}

func shrinkOps(sc Scenario) Scenario {
	for chunk := len(sc.Ops); chunk >= 1; chunk /= 2 {
		for lo := 0; lo < len(sc.Ops); {
			cand := sc.clone()
			hi := lo + chunk
			if hi > len(cand.Ops) {
				hi = len(cand.Ops)
			}
			cand.Ops = append(cand.Ops[:lo], cand.Ops[hi:]...)
			if fails(cand) {
				sc = cand
				continue
			}
			lo += chunk
		}
	}
	return sc
}

// straighten tries to remove incidental nondeterminism sources: ideal
// clocks, zero jitter. Each simplification is kept only if the
// scenario still fails without it.
func straighten(sc Scenario) Scenario {
	cand := sc.clone()
	for i := range cand.ClientRate {
		cand.ClientRate[i] = 1
		cand.ClientSkew[i] = 0
	}
	cand.ServerRate = 1
	cand.ServerSkew = 0
	if fails(cand) {
		sc = cand
	}
	if sc.Jitter != 0 {
		cand = sc.clone()
		cand.Jitter = 0
		if fails(cand) {
			sc = cand
		}
	}
	return sc
}

// Minimize shrinks a failing scenario into a named counterexample.
func Minimize(name string, sc Scenario, foundSeed int64) *Counterexample {
	small := Shrink(sc)
	out, err := RunScenario(small, Options{MaxViolations: 1})
	if err != nil || out.Ok() {
		// Shrink only returns failing scenarios; fall back to the
		// original if something is off.
		small = sc
		out, _ = RunScenario(small, Options{MaxViolations: 1})
	}
	ce := &Counterexample{Name: name, FoundSeed: foundSeed, Steps: small.Steps(), Scenario: small}
	if out != nil && len(out.Violations) > 0 {
		ce.Violation = out.Violations[0]
	}
	return ce
}

// ReplayMatches replays a counterexample twice and reports whether
// both runs reproduce the recorded violation kind identically — the
// regression-test predicate for saved artifacts.
func ReplayMatches(ce *Counterexample) error {
	for i := 0; i < 2; i++ {
		out, err := RunScenario(ce.Scenario, Options{})
		if err != nil {
			return err
		}
		if out.Ok() {
			return fmt.Errorf("check: replay %d of %q produced no violation", i+1, ce.Name)
		}
		if ce.Violation.Kind != "" {
			found := false
			for _, v := range out.Violations {
				if v.Kind == ce.Violation.Kind {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("check: replay %d of %q produced %v, want kind %q", i+1, ce.Name, out.Violations, ce.Violation.Kind)
			}
		}
	}
	return nil
}
