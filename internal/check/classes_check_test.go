package check

import (
	"testing"
	"time"
)

// TestInstalledBroadcastModel pins the §4.3 economy on the model
// substrate: with the installed class on, a client's second read of a
// file long past the per-file term is still a cache hit, because the
// periodic broadcast extensions kept its coverage alive; with the
// class off, the identical schedule misses.
func TestInstalledBroadcastModel(t *testing.T) {
	ops := []Op{
		{At: 0, Client: 0, File: 0, Kind: OpRead},
		// 2.5 terms later: the per-file lease (250ms) is long gone.
		{At: 625 * time.Millisecond, Client: 0, File: 0, Kind: OpRead},
	}
	withClass := Scenario{Clients: 1, Files: 1, Installed: true, Ops: ops}
	out, err := RunScenario(withClass, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Ok() {
		t.Fatalf("installed scenario violated: %v", out.Violations)
	}
	if out.CacheHits != 1 {
		t.Fatalf("installed world: %d cache hits, want 1 (broadcast coverage should span the gap)", out.CacheHits)
	}
	without := Scenario{Clients: 1, Files: 1, Ops: ops}
	out, err = RunScenario(without, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHits != 0 {
		t.Fatalf("plain world: %d cache hits, want 0 (the lease must have expired)", out.CacheHits)
	}
}

// TestDropOnWriteDemotionModel runs the §4.3 write path end to end: a
// write to a broadcast-covered file demotes it, waits out the coverage
// horizon, applies, and every subsequent read — judged by the oracle —
// sees the new value. The reader's pre-write reads hit from class
// coverage alone.
func TestDropOnWriteDemotionModel(t *testing.T) {
	sc := Scenario{
		Clients: 2, Files: 2, Installed: true,
		Ops: []Op{
			{At: 0, Client: 0, File: 0, Kind: OpRead},
			// Covered rereads past the per-file term.
			{At: 400 * time.Millisecond, Client: 0, File: 0, Kind: OpRead},
			// The write demotes f0 and waits out the horizon (~500ms).
			{At: 500 * time.Millisecond, Client: 1, File: 0, Kind: OpWrite},
			// Well past the horizon: the oracle requires the new value.
			{At: 2 * time.Second, Client: 0, File: 0, Kind: OpRead},
		},
	}
	out, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Ok() {
		t.Fatalf("drop-on-write scenario violated: %v", out.Violations)
	}
	if out.WritesAcked != 1 {
		t.Fatalf("write never acked: %+v", out)
	}
	if out.CacheHits == 0 {
		t.Fatal("the covered reread should have been a cache hit")
	}
}

// TestInstalledModelClean is the standing gate for the class wire
// paths: random exploration over the full fault grammar — crashes,
// partitions, delayed broadcasts and snapshot replies, drifting clocks
// — with the installed class enabled must stay violation-free, in both
// single-server and replicated worlds.
func TestInstalledModelClean(t *testing.T) {
	for _, tc := range []struct {
		name  string
		gen   GenConfig
		seeds int
	}{
		{"single", GenConfig{Profile: ProfileAll, Installed: true}, 300},
		{"replicated", GenConfig{Profile: ProfileAll, Installed: true, Servers: 3}, 120},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rep, err := Explore(ExploreConfig{
				Gen:      tc.gen,
				Mode:     "random",
				Seeds:    tc.seeds,
				BaseSeed: 11,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Violating != nil {
				t.Fatalf("seed %d violated: %v", rep.Violating.Seed, rep.Outcome.Violations)
			}
			t.Logf("%d installed schedules clean", rep.Schedules)
		})
	}
}

// TestBreakClassHorizonShrinks proves the coverage-horizon wait is
// load-bearing: with the wait sabotaged, the oracle must catch a
// client reading a stale broadcast-covered copy after the write was
// acknowledged, the failure must shrink to a small counterexample,
// replay deterministically from JSON, and run clean with the break
// removed.
func TestBreakClassHorizonShrinks(t *testing.T) {
	var failing *Scenario
	var foundSeed int64
	for seed := int64(1); seed <= 300; seed++ {
		sc := Generate(seed, GenConfig{Profile: ProfileDrift, Installed: true})
		sc.Break = BreakClassHorizon
		out, err := RunScenario(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Ok() {
			failing = &sc
			foundSeed = seed
			break
		}
	}
	if failing == nil {
		t.Fatal("no generated schedule caught the class-horizon break in 300 seeds")
	}
	ce := Minimize("class-horizon-break", *failing, foundSeed)
	t.Logf("shrunk %d steps -> %d steps: %v", failing.Steps(), ce.Steps, ce.Violation)
	if ce.Steps > 12 {
		t.Fatalf("counterexample has %d steps, want <= 12", ce.Steps)
	}

	dir := t.TempDir()
	path, err := ce.Save(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCounterexample(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplayMatches(loaded); err != nil {
		t.Fatal(err)
	}

	honest := loaded.Scenario.clone()
	honest.Break = ""
	out, err := RunScenario(honest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Ok() {
		t.Fatalf("honest replay of the counterexample still fails: %v", out.Violations)
	}
}

// TestClassBreakNeedsInstalled pins the grammar guard: the
// class-horizon break is meaningless without the class enabled.
func TestClassBreakNeedsInstalled(t *testing.T) {
	sc := Scenario{Clients: 1, Files: 1, Break: BreakClassHorizon}
	if _, err := RunScenario(sc, Options{}); err == nil {
		t.Fatal("class-horizon break without Installed accepted")
	}
}
