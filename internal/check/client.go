package check

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"leases/internal/core"
	"leases/internal/netsim"
	"leases/internal/obs"
	"leases/internal/obs/tracing"
	"leases/internal/sim"
	"leases/internal/vfs"
)

// maxRetries bounds at-least-once retransmission so every execution
// terminates; an op that exhausts its retries is counted GivenUp, not
// failed (§5: after a partition longer than the lease term, the client
// simply starts over).
const maxRetries = 8

// maxRedirects bounds how many NOT_MASTER redirects one op will chase
// back-to-back before falling back to the paced retry timer, so a
// confused replica set cannot trap a client in a redirect storm.
const maxRedirects = 4

type mopKind int

const (
	opReadFetch mopKind = iota
	opRenew
	opWriteOp
	opRenameOp
)

// mop is one in-flight client request.
type mop struct {
	kind  mopKind
	reqID uint64
	data  []vfs.Datum
	// datum/value for writes and single-datum read fetches.
	datum vfs.Datum
	value string
	// floor and seenFloor are the oracle snapshots taken when the read
	// began: the file's acked floor and this client's newest observed
	// position.
	floor, seenFloor uint64
	// group is the replica group this op is addressed to — the client's
	// home belief for the file at send time. Always 0 unsharded.
	group int
	// startedLocal anchors the holder's conservative expiry rule: the
	// grant cannot predate the first transmission, so anchoring there
	// is safe even when a retry's reply comes back (§3.1).
	startedLocal time.Time
	retries      int
	redirects    int
	incarnation  uint64
	retryEv      *sim.Event
	// span is the op's trace root; like the TCP client it spans
	// retries, ending at the final reply or the give-up.
	span tracing.Span
}

// rootName maps an op kind to its client root span name, mirroring the
// TCP client's taxonomy.
func (k mopKind) rootName() string {
	switch k {
	case opReadFetch:
		return "client.read"
	case opWriteOp:
		return "client.write"
	case opRenameOp:
		return "client.rename"
	default:
		return "client.extend"
	}
}

// mclient is the model client: the real lease Holder plus the cache
// and invalidation-fence semantics of the TCP deployment's session
// (internal/client), driven by the scenario's operation trace.
type mclient struct {
	w     *world
	index int
	id    core.ClientID
	node  netsim.NodeID

	holder *core.Holder
	vals   map[vfs.Datum]string
	vers   map[vfs.Datum]uint64
	// invalidatedAt is the fence: per datum, the SentAt of the newest
	// approval push processed. Grants and acks stamped at or before it
	// crossed the invalidation on the wire and must not be cached
	// (the PR 4 grant/approval reorder race).
	invalidatedAt map[vfs.Datum]time.Time

	inflight    map[uint64]*mop
	nextReq     uint64
	incarnation uint64
	down        bool
	// Installed-class snapshot (Installed worlds): the last fetched
	// generation and membership — the model analogue of the client
	// portfolio. pfFetch is the reqID of the outstanding snapshot fetch
	// (0 when none); a reply that does not match is from an older fetch
	// round or a pre-crash incarnation and is dropped.
	pfGen     uint64
	pfMembers []vfs.Datum
	pfFetch   uint64
	// belief[g] is the within-group replica index this client currently
	// addresses in group g: the last replica that answered it, steered
	// by NOT_MASTER hints and rotated on timeouts. route[f] is the
	// client's belief about file f's home group, steered by NOT_OWNER
	// redirects and rename acks. Both survive client crashes, like the
	// deployment's Router state outliving a session reconnect.
	belief []int
	route  []int
}

func newMclient(w *world, index int) *mclient {
	c := &mclient{w: w, index: index, node: clientNode(index)}
	c.id = core.ClientID(c.node)
	c.belief = make([]int, w.groups())
	c.route = make([]int, w.sc.Files)
	for f := range c.route {
		c.route[f] = f % w.groups()
	}
	c.reset()
	w.fabric.Register(c.node, c.handle)
	return c
}

// reset installs fresh volatile state (boot and post-crash restart).
func (c *mclient) reset() {
	allowance := c.w.sc.Allowance
	if c.w.sc.Break == BreakAllowance {
		allowance = 0
	}
	c.holder = core.NewHolder(core.HolderConfig{Allowance: allowance})
	c.vals = make(map[vfs.Datum]string)
	c.vers = make(map[vfs.Datum]uint64)
	c.invalidatedAt = make(map[vfs.Datum]time.Time)
	c.inflight = make(map[uint64]*mop)
	c.nextReq = 0
	c.pfGen = 0
	c.pfMembers = nil
	c.pfFetch = 0
}

// localNow reads this client's drifting, skewed clock.
func (c *mclient) localNow() time.Time {
	return localAt(c.w.start, c.w.engine.Now(), c.w.sc.ClientRate[c.index], c.w.sc.ClientSkew[c.index])
}

func (c *mclient) allocReq() uint64 {
	c.nextReq++
	return c.incarnation<<32 | c.nextReq
}

func (c *mclient) doOp(op Op) {
	if c.down {
		return
	}
	switch op.Kind {
	case OpRead:
		c.read(op.File)
	case OpWrite:
		c.write(op.File)
	case OpRename:
		c.rename(op.File)
	case OpExtend:
		c.renew()
	}
}

func (c *mclient) read(file int) {
	d := datumForFile(file)
	floor, seen := c.w.orc.readStart(c.id, file)
	c.w.out.Reads++
	if c.holder.Valid(d, c.localNow()) {
		if val, ok := c.vals[d]; ok {
			c.w.out.CacheHits++
			c.w.orc.readDone(c.id, file, val, floor, seen, true)
			return
		}
	}
	op := &mop{kind: opReadFetch, data: []vfs.Datum{d}, datum: d, floor: floor, seenFloor: seen, group: c.route[file]}
	c.send(op)
}

// rename asks the file's owning group to move it to the other group —
// the model analogue of the Router's cross-shard rename.
func (c *mclient) rename(file int) {
	op := &mop{kind: opRenameOp, datum: datumForFile(file), group: c.route[file]}
	c.send(op)
}

func (c *mclient) write(file int) {
	d := datumForFile(file)
	c.w.out.Writes++
	op := &mop{kind: opWriteOp, datum: d, group: c.route[file]}
	// Values are globally unique (client · incarnation · request), so
	// the oracle can identify every value's apply positions.
	c.send(op)
	op.value = string(c.id) + "#" + strconv.FormatUint(op.reqID, 10)
	c.transmit(op)
}

func (c *mclient) renew() {
	held := c.holder.Held() // sorted, so batches are deterministic
	if len(held) == 0 {
		return
	}
	c.w.out.Extends++
	if c.w.groups() == 1 {
		op := &mop{kind: opRenew, data: held}
		c.send(op)
		c.transmit(op)
		return
	}
	// Sharded worlds renew per believed home group, like the Router's
	// per-group sessions: a batch never spans groups.
	byGroup := make([][]vfs.Datum, c.w.groups())
	for _, d := range held {
		g := c.route[fileForDatum(d)]
		byGroup[g] = append(byGroup[g], d)
	}
	for g, data := range byGroup {
		if len(data) == 0 {
			continue
		}
		c.send(&mop{kind: opRenew, data: data, group: g})
	}
}

// send registers the op; reads and renews transmit immediately, writes
// first derive their value from the allocated reqID.
func (c *mclient) send(op *mop) {
	op.reqID = c.allocReq()
	op.startedLocal = c.localNow()
	op.incarnation = c.incarnation
	op.span = c.w.tracer.StartRootNode(string(c.node), op.kind.rootName())
	c.inflight[op.reqID] = op
	if op.kind != opWriteOp {
		c.transmit(op)
	}
}

func (c *mclient) transmit(op *mop) {
	target := c.w.serverNodeID(c.w.globalIdx(op.group, c.belief[op.group]))
	switch op.kind {
	case opReadFetch, opRenew:
		c.w.fabric.Unicast(c.node, target, kindExtend, extendReq{ReqID: op.reqID, From: c.id, Data: op.data, TC: op.span.Context()})
	case opWriteOp:
		c.w.fabric.Unicast(c.node, target, kindWrite, writeReq{ReqID: op.reqID, From: c.id, Datum: op.datum, Value: op.value, TC: op.span.Context()})
	case opRenameOp:
		c.w.fabric.Unicast(c.node, target, kindRename, renameReq{ReqID: op.reqID, From: c.id, File: fileForDatum(op.datum), TC: op.span.Context()})
	}
	backoff := c.retryBase() << op.retries
	op.retryEv = c.w.engine.After(backoff, func() { c.retry(op) })
}

func (c *mclient) retryBase() time.Duration { return c.w.retryBase() }

func (c *mclient) retry(op *mop) {
	op.retryEv = nil
	if c.down || op.incarnation != c.incarnation || c.inflight[op.reqID] != op {
		return
	}
	if op.retries >= maxRetries {
		delete(c.inflight, op.reqID)
		c.w.out.GivenUp++
		op.span.EndNote("given-up")
		return
	}
	op.retries++
	if n := c.w.sc.Servers; n > 1 {
		// Silence may mean the believed replica is down, partitioned,
		// or mid-promotion: try the next one.
		c.belief[op.group] = (c.belief[op.group] + 1) % n
	}
	c.transmit(op)
}

func (c *mclient) handle(m netsim.Message) {
	if c.down {
		return
	}
	switch p := m.Payload.(type) {
	case extendRep:
		c.handleGrants(m, p)
	case writeAck:
		c.handleAck(m, p)
	case approvalReq:
		c.handleApprovalPush(m, p)
	case notMasterRep:
		c.handleNotMaster(m, p)
	case notOwnerRep:
		c.handleNotOwner(p)
	case renameAck:
		c.handleRenameAck(m, p)
	case classBcast:
		c.handleBroadcast(m, p)
	case classSnap:
		c.handleClassSnap(p)
	default:
		panic(fmt.Sprintf("check: client got %T", m.Payload))
	}
}

// handleBroadcast is the §4.3 broadcast extension. A matching
// generation extends every held member lease, anchored at the server's
// send stamp minus the allowance (the real Holder rule) — so a delayed
// broadcast can never extend belief past the horizon the server
// recorded before sending. A mismatch means the membership changed (or
// was never fetched): fetch the snapshot from whoever broadcast, which
// is always the serving master.
func (c *mclient) handleBroadcast(m netsim.Message, bc classBcast) {
	if bc.Gen == c.pfGen && c.pfGen != 0 {
		c.holder.ApplyInstalledExtension(c.pfMembers, bc.Term, bc.SentAt, c.localNow())
		return
	}
	c.pfFetch = c.allocReq()
	c.w.fabric.Unicast(c.node, m.From, kindClassFetch, classFetch{ReqID: c.pfFetch, From: c.id})
}

// handleClassSnap installs a fetched membership snapshot and applies
// its coverage. Lost fetches or replies need no retry timer: the next
// mismatching broadcast re-triggers the fetch.
func (c *mclient) handleClassSnap(sn classSnap) {
	if sn.ReqID == 0 || sn.ReqID != c.pfFetch {
		return
	}
	c.pfFetch = 0
	c.pfGen = sn.Gen
	c.pfMembers = sn.Data
	c.holder.ApplyInstalledExtension(c.pfMembers, sn.Term, sn.SentAt, c.localNow())
}

// handleNotMaster is the failover path: steer belief toward the
// replier's hint (or rotate when it has none) and retransmit
// immediately — a storm of redirected clients converges in one round
// trip instead of a backoff ladder — bounded by maxRedirects.
func (c *mclient) handleNotMaster(m netsim.Message, rep notMasterRep) {
	op, ok := c.inflight[rep.ReqID]
	if !ok || op.incarnation != c.incarnation {
		return
	}
	n := c.w.sc.Servers
	if rep.Hint >= 0 && rep.Hint < n && c.w.serverNodeID(c.w.globalIdx(op.group, rep.Hint)) != m.From {
		c.belief[op.group] = rep.Hint
	} else if sender := c.w.serverIndex(m.From); sender >= 0 && c.w.groupOf(sender) == op.group &&
		c.w.replicaOf(sender) == c.belief[op.group] && n > 1 {
		c.belief[op.group] = (c.belief[op.group] + 1) % n
	}
	if op.redirects >= maxRedirects {
		return // the paced retry timer takes it from here
	}
	op.redirects++
	if op.retryEv != nil {
		c.w.engine.Cancel(op.retryEv)
		op.retryEv = nil
	}
	c.transmit(op)
}

// handleNotOwner is the sharded routing path, the model analogue of the
// Router's NOT_OWNER steering: the refusing group names the file's
// owner, the client repairs its home belief and retransmits
// immediately, bounded by the shared redirect budget.
func (c *mclient) handleNotOwner(rep notOwnerRep) {
	op, ok := c.inflight[rep.ReqID]
	if !ok || op.incarnation != c.incarnation {
		return
	}
	if rep.File >= 0 && rep.File < len(c.route) && rep.Owner >= 0 && rep.Owner < c.w.groups() {
		c.route[rep.File] = rep.Owner
		op.group = rep.Owner
	}
	if op.redirects >= maxRedirects {
		return // the paced retry timer takes it from here
	}
	op.redirects++
	c.w.out.Redirected++
	if op.retryEv != nil {
		c.w.engine.Cancel(op.retryEv)
		op.retryEv = nil
	}
	c.transmit(op)
}

// handleRenameAck completes a rename: the file's home is now the group
// the ack names.
func (c *mclient) handleRenameAck(m netsim.Message, ack renameAck) {
	op, ok := c.inflight[ack.ReqID]
	if !ok || op.kind != opRenameOp || op.incarnation != c.incarnation {
		return
	}
	delete(c.inflight, ack.ReqID)
	if op.retryEv != nil {
		c.w.engine.Cancel(op.retryEv)
		op.retryEv = nil
	}
	op.span.End()
	c.w.out.RenamesAcked++
	if f := fileForDatum(op.datum); ack.Owner >= 0 && ack.Owner < c.w.groups() {
		c.route[f] = ack.Owner
	}
	if idx := c.w.serverIndex(m.From); idx >= 0 && c.w.groupOf(idx) == op.group {
		c.belief[op.group] = c.w.replicaOf(idx)
	}
}

func (c *mclient) handleGrants(m netsim.Message, rep extendRep) {
	op, ok := c.inflight[rep.ReqID]
	if !ok || op.incarnation != c.incarnation {
		return // duplicate reply to a retransmit, or pre-crash residue
	}
	delete(c.inflight, rep.ReqID)
	if op.retryEv != nil {
		c.w.engine.Cancel(op.retryEv)
		op.retryEv = nil
	}
	op.span.End()
	if idx := c.w.serverIndex(m.From); idx >= 0 && c.w.groupOf(idx) == op.group {
		c.belief[op.group] = c.w.replicaOf(idx) // pin to the replica that answered
	}
	now := c.localNow()
	for _, g := range rep.Grants {
		if fence, fenced := c.invalidatedAt[g.Datum]; fenced && !m.SentAt.After(fence) && c.w.sc.Break != BreakFence {
			// The reply crossed an approval push on the wire: the
			// value may satisfy the waiting read once, but caching it
			// would resurrect an invalidated lease.
			continue
		}
		if g.Leased {
			ver, val := g.Version, g.Value
			if cur, ok := c.vers[g.Datum]; ok && cur > ver {
				// The jittered fabric can reorder two replies; an
				// older snapshot must not clobber newer cached data.
				// (TCP's per-connection FIFO hides this case; a
				// datagram transport must version-guard the cache.)
				ver, val = cur, c.vals[g.Datum]
			}
			c.holder.ApplyGrant(g.Datum, ver, g.Term, op.startedLocal, now)
			c.vals[g.Datum] = val
			c.vers[g.Datum] = ver
		} else {
			// Refused (a write is pending): usable once, not cached.
			c.holder.Invalidate(g.Datum)
			delete(c.vals, g.Datum)
			delete(c.vers, g.Datum)
		}
	}
	if op.kind == opReadFetch {
		for _, g := range rep.Grants {
			if g.Datum == op.datum {
				c.w.orc.readDone(c.id, fileForDatum(op.datum), g.Value, op.floor, op.seenFloor, false)
				return
			}
		}
		c.w.out.GivenUp++ // server answered without the datum: abandoned
	}
}

func (c *mclient) handleAck(m netsim.Message, ack writeAck) {
	op, ok := c.inflight[ack.ReqID]
	if !ok || op.kind != opWriteOp || op.incarnation != c.incarnation {
		return
	}
	delete(c.inflight, ack.ReqID)
	if op.retryEv != nil {
		c.w.engine.Cancel(op.retryEv)
		op.retryEv = nil
	}
	op.span.End()
	if idx := c.w.serverIndex(m.From); idx >= 0 && c.w.groupOf(idx) == op.group {
		c.belief[op.group] = c.w.replicaOf(idx)
	}
	c.w.out.WritesAcked++
	c.w.orc.acked(c.id, fileForDatum(op.datum), op.value)
	if fence, fenced := c.invalidatedAt[op.datum]; fenced && !m.SentAt.After(fence) && c.w.sc.Break != BreakFence {
		// The ack crossed a later write's approval push: the writer's
		// retained lease was already invalidated.
		return
	}
	// §3.1: the writer's cache stays valid after its own write — but
	// only if no newer version has been cached since (a delayed ack
	// must not roll the cache back).
	if cur, ok := c.vers[op.datum]; !ok || ack.Version >= cur {
		c.vals[op.datum] = op.value
		c.vers[op.datum] = ack.Version
		c.holder.Update(op.datum, ack.Version)
	}
}

func (c *mclient) handleApprovalPush(m netsim.Message, ar approvalReq) {
	// The fence records the push's send instant; pushes and replies
	// share the fabric's SentAt clock, so any grant or ack stamped at
	// or before it was computed from pre-invalidation server state.
	if fence := c.invalidatedAt[ar.Datum]; m.SentAt.After(fence) {
		c.invalidatedAt[ar.Datum] = m.SentAt
	}
	c.holder.Invalidate(ar.Datum)
	delete(c.vals, ar.Datum)
	delete(c.vers, ar.Datum)
	c.w.obs.Record(obs.Event{
		Type:    obs.EvEviction,
		Client:  string(c.id),
		Datum:   ar.Datum,
		WriteID: uint64(ar.WriteID),
	})
	// Reply to whichever replica pushed the request — during a failover
	// the pusher may not be the replica this client believes in.
	c.w.fabric.Unicast(c.node, m.From, kindApprove, approveMsg{WriteID: ar.WriteID, From: c.id})
}

// crash loses the cache, the holder, and every in-flight request.
func (c *mclient) crash() {
	if c.down {
		return
	}
	c.down = true
	c.w.fabric.SetDown(c.node, true)
	ids := make([]uint64, 0, len(c.inflight))
	for id := range c.inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if ev := c.inflight[id].retryEv; ev != nil {
			c.w.engine.Cancel(ev)
		}
	}
	c.inflight = make(map[uint64]*mop)
	c.w.tracer.AbandonNode(string(c.node), "crash")
}

// restart boots a fresh incarnation with an empty cache.
func (c *mclient) restart() {
	if !c.down {
		return
	}
	c.down = false
	c.incarnation++
	c.reset()
	c.w.fabric.SetDown(c.node, false)
	c.w.obs.Record(obs.Event{Type: obs.EvReconnect, Client: string(c.id)})
}
