package check

import (
	"bytes"
	"fmt"
	"testing"
)

// runTwice executes the same scenario twice with event sinks attached
// and compares outcomes and full event streams byte for byte.
func runTwice(t *testing.T, sc Scenario) {
	t.Helper()
	var a, b bytes.Buffer
	outA, err := RunScenario(sc, Options{Sink: &a})
	if err != nil {
		t.Fatal(err)
	}
	outB, err := RunScenario(sc, Options{Sink: &b})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", outA) != fmt.Sprintf("%+v", outB) {
		t.Fatalf("outcomes differ:\n%+v\n%+v", outA, outB)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("event streams differ (%d vs %d bytes)", a.Len(), b.Len())
	}
	if outA.Events == 0 {
		t.Fatal("scenario recorded no events; determinism check is vacuous")
	}
}

// TestRunDeterministic is the nondeterminism audit's standing gate: a
// scenario exercising every fault dimension (drift, partitions, loss,
// jitter, crashes, same-instant ties) must produce byte-identical
// observability streams on repeated runs. Map-iteration-order leaks in
// sim, netsim, clock, or the model fail this loudly.
func TestRunDeterministic(t *testing.T) {
	for _, p := range []Profile{ProfileAll, ProfilePartition, ProfileCrash, ProfileDrift} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 25; seed++ {
				runTwice(t, Generate(seed, GenConfig{Profile: p}))
			}
		})
	}
}

// TestRunDeterministicWithBreaks covers the sabotaged paths too, since
// the shrinker replays them and relies on identical verdicts.
func TestRunDeterministicWithBreaks(t *testing.T) {
	for _, br := range []string{BreakWriteDefer, BreakFence, BreakAllowance} {
		sc := Generate(11, GenConfig{Profile: ProfileAll})
		sc.Break = br
		runTwice(t, sc)
	}
}
