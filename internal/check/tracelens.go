package check

import (
	"fmt"

	"leases/internal/obs/tracing"
)

// The span-tree lens: after the engine drains, the trace the tracer
// assembled must be structurally honest. Every segment has completed
// (no span outlives the execution), every span's parent resolves —
// within its segment or, for a retransmit that re-opened a finished
// TraceID, via the retained index — and every write deferral's
// recorded fan-out matches the approval pushes actually issued. The
// lens checks the instrumentation the deployment relies on for
// debugging with the same adversarial schedules the protocol lenses
// run under: if a crash or reorder can corrupt a trace tree, it
// corrupts it here first.
func (w *world) spanLens() {
	t := w.tracer
	if n := t.ActiveCount(); n > 0 {
		w.orc.violate(vSpanLeak, fmt.Sprintf("%d trace segments still open after quiesce: %v", n, t.ActiveIDs()))
	}
	for _, tr := range t.Recent(0) {
		ids := make(map[tracing.SpanID]*tracing.SpanRec, len(tr.Spans))
		roots := 0
		for _, sp := range tr.Spans {
			ids[sp.ID] = sp
			if sp.Parent == 0 {
				roots++
			}
		}
		for _, sp := range tr.Spans {
			if sp.End.IsZero() {
				w.orc.violate(vSpanLeak, fmt.Sprintf("span %s (%s) in completed trace %v never ended", sp.Name, sp.Node, tr.ID))
			}
			if sp.Parent != 0 {
				if _, ok := ids[sp.Parent]; !ok && !t.KnownSpan(sp.Trace, sp.Parent) {
					w.orc.violate(vSpanOrphan, fmt.Sprintf("span %s (%s) in trace %v has unknown parent %v", sp.Name, sp.Node, tr.ID, sp.Parent))
				}
			}
			if sp.Fanout > 0 {
				pushes := 0
				for _, ch := range tr.Spans {
					if ch.Parent == sp.ID && ch.Name == "approve.push" {
						pushes++
					}
				}
				if pushes != sp.Fanout {
					w.orc.violate(vSpanFanout, fmt.Sprintf("span %s in trace %v recorded fan-out %d but %d approve.push children", sp.Name, tr.ID, sp.Fanout, pushes))
				}
			}
		}
		// A segment assembles around exactly one local root; a segment
		// with none was opened by a remote child whose first span must
		// carry the Remote mark.
		if roots == 0 {
			marked := false
			for _, sp := range tr.Spans {
				if sp.Remote {
					marked = true
					break
				}
			}
			if !marked {
				w.orc.violate(vSpanOrphan, fmt.Sprintf("rootless trace segment %v has no span marked remote", tr.ID))
			}
		}
	}
}
