package check

import (
	"fmt"

	"leases/internal/chaos"
	"leases/internal/core"
)

// Violation kinds the oracle reports.
const (
	// vStaleRead: a read returned a value older than a write that was
	// already acknowledged when the read began — the §2 invariant.
	vStaleRead = "stale-read"
	// vUnapplied: a read returned a value the server never applied.
	vUnapplied = "unapplied-value"
	// vNonMonotonic: one client observed a file going backwards.
	vNonMonotonic = "non-monotonic-read"
	// vAckedLost: a write was acknowledged without ever being applied.
	vAckedLost = "acked-write-not-applied"
	// vSlowWrite: a write was deferred past the §2 bound (one lease
	// term plus slack), indicating an approval/expiry scheduling bug.
	vSlowWrite = "write-wait-bound"
	// vSpanLeak: a trace segment (or span) stayed open after the
	// execution quiesced — some path ends a request without ending its
	// span.
	vSpanLeak = "span-leak"
	// vSpanOrphan: a recorded span's parent is unknown to the tracer —
	// a context was fabricated or mis-threaded across the wire.
	vSpanOrphan = "span-orphan"
	// vSpanFanout: a write deferral's recorded fan-out disagrees with
	// the approval-push spans actually opened under it.
	vSpanFanout = "span-fanout"
)

// fileModel is the reference model of one file: the full apply log in
// server order, the latest log position of each value, and the newest
// position each client has observed.
type fileModel struct {
	applied []string
	latest  map[string]uint64
	seen    map[core.ClientID]uint64
}

// oracle is the sequential-consistency checker. It is deliberately
// dead simple — an append-only log per file plus the acked-floor lens
// shared with the chaos harness — so that its verdicts are trustworthy
// independent of the protocol machinery under test.
//
// The check is online: applied() records every server-side store write
// as it happens, acked() raises the file's floor when a writer receives
// its acknowledgement, and readDone() judges each completed read
// against the floor snapshotted when the read began (see
// chaos.FloorChecker for why snapshot-before-read makes this sound
// under concurrency). Positions are log indexes, not store versions, so
// the oracle shares no arithmetic with the code under test.
type oracle struct {
	w     *world
	max   int
	files []*fileModel
	// floors is the acked-floor lens (§2: no read is stale with
	// respect to an approved write).
	floors *chaos.FloorChecker
}

func newOracle(w *world, maxViolations int) *oracle {
	o := &oracle{w: w, max: maxViolations, floors: chaos.NewFloorChecker(w.sc.Files)}
	for i := 0; i < w.sc.Files; i++ {
		o.files = append(o.files, &fileModel{
			latest: make(map[string]uint64),
			seen:   make(map[core.ClientID]uint64),
		})
	}
	return o
}

func (o *oracle) violate(kind, detail string) {
	if len(o.w.out.Violations) >= o.max {
		return
	}
	o.w.out.Violations = append(o.w.out.Violations, Violation{
		Kind:   kind,
		At:     o.w.engine.Now().Sub(o.w.start),
		Detail: detail,
	})
}

// initialApplied seeds a file's starting contents: applied and, by
// definition, acknowledged.
func (o *oracle) initialApplied(file int, value string) {
	o.applied(file, value)
	o.floors.Acked(file, o.files[file].latest[value])
}

// applied records that the server wrote value to the file. Re-applying
// an existing value (an at-least-once duplicate across a server crash)
// appends a new position; latest tracks the newest.
func (o *oracle) applied(file int, value string) {
	fm := o.files[file]
	fm.applied = append(fm.applied, value)
	fm.latest[value] = uint64(len(fm.applied))
}

// acked records that client received the server's acknowledgement for
// its write of value, raising the file's floor.
func (o *oracle) acked(client core.ClientID, file int, value string) {
	fm := o.files[file]
	pos, ok := fm.latest[value]
	if !ok {
		o.violate(vAckedLost, fmt.Sprintf("%s got an ack for %q on f%d but the server never applied it", client, value, file))
		return
	}
	o.floors.Acked(file, pos)
}

// readStart snapshots the file's acked floor and the newest position
// this client had observed when the read began; the caller passes both
// back to readDone when the read completes. Snapshotting at start
// makes both lenses sound under concurrency: a write acked — or a
// sibling read completed — while this read was in flight is concurrent
// with it and imposes no ordering obligation.
func (o *oracle) readStart(client core.ClientID, file int) (floor, seen uint64) {
	return o.floors.Floor(file), o.files[file].seen[client]
}

// readDone judges a completed read. floorBefore and seenBefore are the
// readStart snapshots; cached marks a local cache hit (for
// diagnostics).
func (o *oracle) readDone(client core.ClientID, file int, value string, floorBefore, seenBefore uint64, cached bool) {
	fm := o.files[file]
	src := "fetched"
	if cached {
		src = "cache hit"
	}
	pos, ok := fm.latest[value]
	if !ok {
		o.violate(vUnapplied, fmt.Sprintf("%s read %q on f%d (%s), a value the server never applied", client, value, file, src))
		return
	}
	if chaos.FloorViolated(pos, floorBefore) {
		o.violate(vStaleRead, fmt.Sprintf("%s read %q on f%d (%s, apply #%d) after apply #%d was already acknowledged", client, value, file, src, pos, floorBefore))
		return
	}
	if pos < seenBefore {
		o.violate(vNonMonotonic, fmt.Sprintf("%s read apply #%d on f%d (%s) after a read that finished before this one began observed apply #%d", client, pos, file, src, seenBefore))
		return
	}
	if pos > fm.seen[client] {
		fm.seen[client] = pos
	}
}
