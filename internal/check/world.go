package check

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"time"

	"leases/internal/clock"
	"leases/internal/netsim"
	"leases/internal/obs"
	"leases/internal/obs/tracing"
	"leases/internal/sim"
	"leases/internal/vfs"
)

// Wire kinds, mirroring the trace simulator's message taxonomy so
// fabric metrics and fault filters speak one vocabulary.
const (
	kindExtend      = "lease.extend"
	kindGrant       = "lease.grant"
	kindApprovalReq = "lease.approval-req"
	kindApprove     = "lease.approve"
	kindWrite       = "data.write"
	kindAck         = "data.ack"
	// Replicated-world kinds: the election machine's traffic, the
	// replicate-before-apply pipeline, promotion state sync, and the
	// NOT_MASTER redirect.
	kindElect     = "repl.elect"
	kindReplWrite = "repl.write"
	kindReplAck   = "repl.write-ack"
	kindSyncReq   = "repl.sync-req"
	kindSyncRep   = "repl.sync-rep"
	kindInstall   = "repl.install"
	kindNotMaster = "lease.notmaster"
	// Installed-class kinds (§4.3): the periodic broadcast extension,
	// the client's membership-snapshot fetch, and its reply — the model
	// analogues of TBroadcastExt, TInstalled, and TInstalledRep.
	kindBroadcast  = "class.broadcast-ext"
	kindClassFetch = "class.fetch"
	kindClassSnap  = "class.snapshot"
	// Sharded-world kinds: the cross-shard rename request/ack, the
	// NOT_OWNER redirect (model analogue of TNotOwner), and the
	// inter-group prepare exchange of the two-phase rename protocol.
	kindRename       = "ns.rename"
	kindRenameAck    = "ns.rename-ack"
	kindNotOwner     = "lease.notowner"
	kindXferPrepare  = "shard.prepare"
	kindXferPrepared = "shard.prepared"
)

const serverNode = netsim.NodeID("srv")

func clientNode(i int) netsim.NodeID {
	return netsim.NodeID("c" + strconv.Itoa(i))
}

// serverNodeID names replica i on the fabric. Single-server worlds keep
// the historical "srv" so existing pinned artifacts replay unchanged;
// multi-server worlds (replicated, sharded, or both) use s0..sN-1.
func (w *world) serverNodeID(i int) netsim.NodeID {
	if w.nservers() <= 1 {
		return serverNode
	}
	return netsim.NodeID("s" + strconv.Itoa(i))
}

// groups is the replica-group count; nservers the total server count.
// Group g's replicas occupy global indices [g·Servers, (g+1)·Servers).
func (w *world) groups() int   { return w.sc.groups() }
func (w *world) nservers() int { return w.sc.Servers * w.groups() }

func (w *world) groupOf(idx int) int          { return idx / w.sc.Servers }
func (w *world) replicaOf(idx int) int        { return idx % w.sc.Servers }
func (w *world) globalIdx(group, rep int) int { return group*w.sc.Servers + rep }

// serverIndex inverts serverNodeID (-1 for client nodes).
func (w *world) serverIndex(id netsim.NodeID) int {
	for i := range w.servers {
		if w.serverNodeID(i) == id {
			return i
		}
	}
	return -1
}

// currentMasterOf reports the lowest-indexed live replica of group g
// whose machine holds the master lease on its own clock, or -1.
// Deterministic: the scan order and every clock involved are fixed by
// the scenario.
func (w *world) currentMasterOf(g int) int {
	for r := 0; r < w.sc.Servers; r++ {
		srv := w.servers[w.globalIdx(g, r)]
		if srv.down || srv.mach == nil {
			continue
		}
		if srv.mach.IsMaster(srv.localNow()) {
			return srv.idx
		}
	}
	return -1
}

// datumForFile maps file index f to its FileData datum. Node IDs start
// at 2: the root directory is node 1.
func datumForFile(f int) vfs.Datum {
	return vfs.Datum{Kind: vfs.FileData, Node: vfs.NodeID(2 + f)}
}

func fileForDatum(d vfs.Datum) int { return int(d.Node) - 2 }

// Options tunes one RunScenario call.
type Options struct {
	// Sink, when non-nil, receives the observability event stream as
	// JSON lines (one per protocol event, in schedule order).
	Sink io.Writer
	// MaxViolations caps how many violations are collected before the
	// oracle stops recording; zero means 8.
	MaxViolations int
}

// Violation is one oracle verdict.
type Violation struct {
	Kind string `json:"kind"`
	// At is the virtual offset from scenario start.
	At     time.Duration `json:"at"`
	Detail string        `json:"detail"`
}

func (v Violation) String() string { return fmt.Sprintf("[%s @%v] %s", v.Kind, v.At, v.Detail) }

// Outcome summarizes one execution.
type Outcome struct {
	Violations []Violation

	Reads       int
	CacheHits   int
	Writes      int
	WritesAcked int
	Extends     int
	// Renames counts cross-shard moves committed at source masters;
	// RenamesAcked counts rename acks clients observed (sharded worlds
	// only; Renames can exceed RenamesAcked when an ack is lost and the
	// retransmit's re-ack arrives post-crash).
	Renames      int
	RenamesAcked int
	// Redirected counts NOT_OWNER redirects clients followed — zero in
	// unsharded worlds, positive whenever a routing belief went stale.
	Redirected int
	// GivenUp counts operations abandoned after exhausting retries
	// (expected under partitions; never a violation by itself).
	GivenUp int

	Deliveries int64
	Losses     int64
	Events     int64
	// MaxWriteWait is the longest server-side write deferral.
	MaxWriteWait time.Duration
}

// Ok reports a violation-free execution.
func (o *Outcome) Ok() bool { return len(o.Violations) == 0 }

// world wires one scenario's components together: the discrete-event
// engine, the fabric, the model server and clients, and the oracle.
type world struct {
	sc      Scenario
	engine  *sim.Engine
	fabric  *netsim.Fabric
	obs     *obs.Observer
	tracer  *tracing.Tracer
	start   time.Time
	orc     *oracle
	servers []*mserver
	clients []*mclient
	out     *Outcome
	lossRNG *rand.Rand
	// shards is the group-durable shard state of sharded worlds, one
	// entry per group (nil when Groups <= 1): file ownership plus the
	// last committed inbound move per file. Sharing it among a group's
	// replicas abstracts the deployment's quorum-replicated commit push
	// and ring store — the checker probes the ORDERING of clearance,
	// ownership transfer, and client routing, not the durability
	// machinery, which the replicated write pipeline covers separately.
	shards []*groupShard
	// nextXfer numbers cross-shard transfers world-uniquely.
	nextXfer uint64
	// machStop bounds election-machine timer rearming (true time) so
	// replicated runs quiesce: past it, masters lapse and stragglers
	// exhaust their retries instead of electing forever.
	machStop time.Time
	// asymTarget maps an asym-partition fault's index to the replica it
	// resolved to at window start (the master of that instant). While
	// the window is open, everything that replica SENDS is delayed to
	// just past the window's end — a one-way partition whose backlog
	// flushes on heal.
	asymTarget map[int]int
	// classReigns counts installed-class state installations across all
	// servers. Each (re)initialization — boot, crash restart, promotion
	// — bases its generation at reign<<32, so generations from different
	// reigns never collide: the model analogue of the deployment's
	// connection-scoped snapshots (a TCP client re-fetches after any
	// reconnect) and replicated generation rebinding on failover.
	classReigns uint64
}

// groupShard is one group's durable shard state: which files it owns,
// and per file the last committed inbound move (Seq 0 = none). A
// cross-shard rename's commit point updates both groups' entries in one
// step; replicas absorb an inbound move's value lazily (absorbMoved)
// before serving the file, so a group never serves a file older than
// the value that moved in with it.
type groupShard struct {
	owned []bool
	moved []fileRepl
}

// mix derives independent deterministic seeds for the engine
// tie-breaker, the fabric jitter, and the loss windows, so shrinking
// one dimension does not perturb the others.
func mix(seed, salt int64) int64 {
	x := uint64(seed) ^ uint64(salt)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// localAt maps true time onto a node's drifting, skewed clock:
// local = start + rate·(now − start) + skew.
func localAt(start, now time.Time, rate float64, skew time.Duration) time.Time {
	if rate != 0 && rate != 1 {
		now = start.Add(time.Duration(float64(now.Sub(start)) * rate))
	}
	return now.Add(skew)
}

// trueAt inverts localAt: the earliest true instant at which the
// node's clock reads at least local. The float inversion truncates, so
// the result is nudged forward until the round trip lands — otherwise
// a timer converted through trueAt can fire a nanosecond early on the
// local clock, observe nothing due, rearm at the same instant, and
// livelock the engine.
func trueAt(start, local time.Time, rate float64, skew time.Duration) time.Time {
	local = local.Add(-skew)
	if rate == 0 || rate == 1 {
		return local
	}
	at := start.Add(time.Duration(float64(local.Sub(start)) / rate))
	for localAt(start, at, rate, 0).Before(local) {
		at = at.Add(time.Nanosecond)
	}
	return at
}

// RunScenario executes one scenario to completion and reports the
// outcome. Execution is fully deterministic: equal scenarios yield
// equal outcomes and equal event streams.
func RunScenario(sc Scenario, opt Options) (*Outcome, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if opt.MaxViolations <= 0 {
		opt.MaxViolations = 8
	}
	w := &world{sc: sc, out: &Outcome{}, asymTarget: make(map[int]int)}
	w.engine = sim.New(clock.Epoch)
	w.start = w.engine.Now()
	tieRNG := rand.New(rand.NewSource(mix(sc.Seed, 0x7ea5)))
	w.engine.SetTieBreaker(func(n int) int { return tieRNG.Intn(n) })
	w.fabric = netsim.New(w.engine, netsim.Params{
		Prop:   sc.Prop,
		Proc:   sc.Proc,
		Jitter: sc.Jitter,
		Seed:   mix(sc.Seed, 0xfab),
	})
	w.fabric.SetFaults(w.faultFor)
	w.lossRNG = rand.New(rand.NewSource(mix(sc.Seed, 0x1055)))
	w.obs = obs.New(obs.Config{RingSize: 1 << 15, Sink: opt.Sink, Now: w.engine.Now})
	// Every operation is traced (100% sampling) so the span-tree lens
	// sees the whole execution; RetainIndex lets it resolve parents when
	// an at-least-once retransmit re-opens a completed TraceID. The
	// engine is single-threaded, so span IDs are deterministic.
	w.tracer = tracing.New(tracing.Config{
		Now: w.engine.Now, Node: "check", SampleRate: 1,
		Seed: mix(sc.Seed, 0x7ace), MaxActive: 1 << 13, Completed: 1 << 13,
		RetainIndex: true,
	})
	w.orc = newOracle(w, opt.MaxViolations)
	// Elections keep renewing well past the last scheduled activity —
	// long enough for every client retry ladder to resolve against a
	// live master — then stop so the engine drains.
	var last time.Duration
	for _, op := range sc.Ops {
		if op.At > last {
			last = op.At
		}
	}
	for _, ft := range sc.Faults {
		if ft.At+ft.Dur > last {
			last = ft.At + ft.Dur
		}
	}
	w.machStop = w.start.Add(last + 2*sc.Term + w.retryBase()<<(maxRetries+1))
	if w.groups() > 1 {
		for g := 0; g < w.groups(); g++ {
			sh := &groupShard{owned: make([]bool, sc.Files), moved: make([]fileRepl, sc.Files)}
			for f := 0; f < sc.Files; f++ {
				sh.owned[f] = f%w.groups() == g
			}
			w.shards = append(w.shards, sh)
		}
	}
	for i := 0; i < w.nservers(); i++ {
		w.servers = append(w.servers, newMserver(w, i))
	}
	for i := 0; i < sc.Clients; i++ {
		w.clients = append(w.clients, newMclient(w, i))
	}
	w.scheduleOps()
	w.scheduleFaults()
	w.engine.Run()

	// Post-run lens: under the honest protocol a write may be deferred
	// at most one lease term (§2) plus the crash-recovery window;
	// 2·term + slack bounds both with margin. Installed worlds add the
	// class term: a write to an installed file additionally waits out
	// the broadcast coverage horizon (§4.3 drop-on-write), and crash
	// recovery windows stretch to the durable class term.
	if sc.Break == "" {
		bound := 2*sc.Term + time.Second
		if sc.Installed {
			bound += 2 * sc.InstalledTerm
		}
		if w.out.MaxWriteWait > bound {
			w.orc.violate(vSlowWrite, fmt.Sprintf("a write was deferred %v, past the %v bound", w.out.MaxWriteWait, bound))
		}
	}
	w.spanLens()
	w.out.Deliveries = w.fabric.Deliveries()
	w.out.Losses = w.fabric.Losses()
	for _, ec := range w.obs.EventCounts() {
		w.out.Events += ec.N
	}
	return w.out, nil
}

func (w *world) scheduleOps() {
	for i := range w.sc.Ops {
		op := w.sc.Ops[i]
		c := w.clients[op.Client]
		w.engine.At(w.start.Add(op.At), func() { c.doOp(op) })
	}
}

func (w *world) scheduleFaults() {
	for i := range w.sc.Faults {
		ft := w.sc.Faults[i]
		switch ft.Kind {
		case FaultPartition:
			node := clientNode(ft.Client)
			sn := w.serverNodeID(ft.Server)
			w.engine.At(w.start.Add(ft.At), func() {
				w.obs.Record(obs.Event{Type: obs.EvFaultInject, Client: string(node)})
				w.fabric.CutLink(node, sn)
			})
			w.engine.At(w.start.Add(ft.At+ft.Dur), func() {
				w.fabric.HealLink(node, sn)
			})
		case FaultClientCrash:
			c := w.clients[ft.Client]
			w.engine.At(w.start.Add(ft.At), func() {
				w.obs.Record(obs.Event{Type: obs.EvFaultInject, Client: string(c.node)})
				c.crash()
			})
			w.engine.At(w.start.Add(ft.At+ft.Dur), func() { c.restart() })
		case FaultServerCrash:
			srv := w.servers[ft.Server]
			w.engine.At(w.start.Add(ft.At), func() {
				w.obs.Record(obs.Event{Type: obs.EvFaultInject, Client: string(srv.node)})
				srv.crash()
			})
			w.engine.At(w.start.Add(ft.At+ft.Dur), func() { srv.restart() })
		case FaultMasterCrash:
			// The target is whoever holds the fault's group's master
			// lease when the fault fires; remember it so the restart
			// half matches.
			target := -1
			w.engine.At(w.start.Add(ft.At), func() {
				target = w.currentMasterOf(ft.Group)
				if target < 0 {
					return // mid-election: nobody to crash
				}
				w.obs.Record(obs.Event{Type: obs.EvFaultInject, Client: string(w.servers[target].node)})
				w.servers[target].crash()
			})
			w.engine.At(w.start.Add(ft.At+ft.Dur), func() {
				if target >= 0 {
					w.servers[target].restart()
				}
			})
		case FaultAsymPartition:
			idx := i
			w.engine.At(w.start.Add(ft.At), func() {
				target := w.currentMasterOf(ft.Group)
				if target < 0 {
					return
				}
				w.asymTarget[idx] = target
				w.obs.Record(obs.Event{Type: obs.EvFaultInject, Client: string(w.servers[target].node)})
			})
			w.engine.At(w.start.Add(ft.At+ft.Dur), func() {
				delete(w.asymTarget, idx)
			})
		case FaultDrop, FaultDelay, FaultLoss:
			// Window faults act through faultFor on each delivery.
		}
	}
}

// retryBase is the starting backoff for every at-least-once retry in
// the model (client ops, replication frames, promotion sync): a little
// over one worst-case round trip.
func (w *world) retryBase() time.Duration {
	return 3*(2*w.sc.Prop+4*w.sc.Proc) + 4*w.sc.Jitter + time.Millisecond
}

// faultFor is the fabric's per-delivery fault choice point: it scans
// the schedule's window faults active at the current virtual instant.
// The fabric consults it in deterministic delivery order, so the
// lossRNG stream — and therefore every loss decision — replays
// exactly under equal scenarios.
func (w *world) faultFor(from, to netsim.NodeID, kind string) netsim.FaultDecision {
	var dec netsim.FaultDecision
	now := w.engine.Now().Sub(w.start)
	for i := range w.sc.Faults {
		ft := &w.sc.Faults[i]
		if now < ft.At || now >= ft.At+ft.Dur {
			continue
		}
		switch ft.Kind {
		case FaultLoss:
			if w.lossRNG.Float64() < ft.Rate {
				dec.Drop = true
			}
		case FaultDrop:
			if ft.matches(from, to, kind, w.serverNodeID(ft.Server)) {
				dec.Drop = true
			}
		case FaultDelay:
			if ft.matches(from, to, kind, w.serverNodeID(ft.Server)) {
				dec.Delay += ft.Extra
			}
		case FaultAsymPartition:
			// One-way partition: everything the isolated master sends is
			// held until just past the window's end, then flushed. The
			// master still HEARS the world — the nastiest shape, because
			// it keeps believing its lease matters while its grants and
			// replication frames are stuck in the void.
			target, ok := w.asymTarget[i]
			if ok && from == w.serverNodeID(target) {
				dec.Delay += ft.At + ft.Dur - now + 2*time.Millisecond
			}
		}
	}
	return dec
}

// matches reports whether a drop/delay fault applies to one delivery.
// sn is the server endpoint the fault names (always "srv" in
// single-server worlds).
func (ft *Fault) matches(from, to netsim.NodeID, kind string, sn netsim.NodeID) bool {
	if ft.MsgKind != "" && ft.MsgKind != kind {
		return false
	}
	c := clientNode(ft.Client)
	if ft.ToServer {
		return from == c && to == sn
	}
	return from == sn && to == c
}
