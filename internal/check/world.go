package check

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"time"

	"leases/internal/clock"
	"leases/internal/netsim"
	"leases/internal/obs"
	"leases/internal/sim"
	"leases/internal/vfs"
)

// Wire kinds, mirroring the trace simulator's message taxonomy so
// fabric metrics and fault filters speak one vocabulary.
const (
	kindExtend      = "lease.extend"
	kindGrant       = "lease.grant"
	kindApprovalReq = "lease.approval-req"
	kindApprove     = "lease.approve"
	kindWrite       = "data.write"
	kindAck         = "data.ack"
)

const serverNode = netsim.NodeID("srv")

func clientNode(i int) netsim.NodeID {
	return netsim.NodeID("c" + strconv.Itoa(i))
}

// datumForFile maps file index f to its FileData datum. Node IDs start
// at 2: the root directory is node 1.
func datumForFile(f int) vfs.Datum {
	return vfs.Datum{Kind: vfs.FileData, Node: vfs.NodeID(2 + f)}
}

func fileForDatum(d vfs.Datum) int { return int(d.Node) - 2 }

// Options tunes one RunScenario call.
type Options struct {
	// Sink, when non-nil, receives the observability event stream as
	// JSON lines (one per protocol event, in schedule order).
	Sink io.Writer
	// MaxViolations caps how many violations are collected before the
	// oracle stops recording; zero means 8.
	MaxViolations int
}

// Violation is one oracle verdict.
type Violation struct {
	Kind string `json:"kind"`
	// At is the virtual offset from scenario start.
	At     time.Duration `json:"at"`
	Detail string        `json:"detail"`
}

func (v Violation) String() string { return fmt.Sprintf("[%s @%v] %s", v.Kind, v.At, v.Detail) }

// Outcome summarizes one execution.
type Outcome struct {
	Violations []Violation

	Reads       int
	CacheHits   int
	Writes      int
	WritesAcked int
	Extends     int
	// GivenUp counts operations abandoned after exhausting retries
	// (expected under partitions; never a violation by itself).
	GivenUp int

	Deliveries int64
	Losses     int64
	Events     int64
	// MaxWriteWait is the longest server-side write deferral.
	MaxWriteWait time.Duration
}

// Ok reports a violation-free execution.
func (o *Outcome) Ok() bool { return len(o.Violations) == 0 }

// world wires one scenario's components together: the discrete-event
// engine, the fabric, the model server and clients, and the oracle.
type world struct {
	sc      Scenario
	engine  *sim.Engine
	fabric  *netsim.Fabric
	obs     *obs.Observer
	start   time.Time
	orc     *oracle
	srv     *mserver
	clients []*mclient
	out     *Outcome
	lossRNG *rand.Rand
}

// mix derives independent deterministic seeds for the engine
// tie-breaker, the fabric jitter, and the loss windows, so shrinking
// one dimension does not perturb the others.
func mix(seed, salt int64) int64 {
	x := uint64(seed) ^ uint64(salt)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// localAt maps true time onto a node's drifting, skewed clock:
// local = start + rate·(now − start) + skew.
func localAt(start, now time.Time, rate float64, skew time.Duration) time.Time {
	if rate != 0 && rate != 1 {
		now = start.Add(time.Duration(float64(now.Sub(start)) * rate))
	}
	return now.Add(skew)
}

// trueAt inverts localAt: the true instant at which the node's clock
// will read local.
func trueAt(start, local time.Time, rate float64, skew time.Duration) time.Time {
	local = local.Add(-skew)
	if rate == 0 || rate == 1 {
		return local
	}
	return start.Add(time.Duration(float64(local.Sub(start)) / rate))
}

// RunScenario executes one scenario to completion and reports the
// outcome. Execution is fully deterministic: equal scenarios yield
// equal outcomes and equal event streams.
func RunScenario(sc Scenario, opt Options) (*Outcome, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if opt.MaxViolations <= 0 {
		opt.MaxViolations = 8
	}
	w := &world{sc: sc, out: &Outcome{}}
	w.engine = sim.New(clock.Epoch)
	w.start = w.engine.Now()
	tieRNG := rand.New(rand.NewSource(mix(sc.Seed, 0x7ea5)))
	w.engine.SetTieBreaker(func(n int) int { return tieRNG.Intn(n) })
	w.fabric = netsim.New(w.engine, netsim.Params{
		Prop:   sc.Prop,
		Proc:   sc.Proc,
		Jitter: sc.Jitter,
		Seed:   mix(sc.Seed, 0xfab),
	})
	w.fabric.SetFaults(w.faultFor)
	w.lossRNG = rand.New(rand.NewSource(mix(sc.Seed, 0x1055)))
	w.obs = obs.New(obs.Config{RingSize: 1 << 15, Sink: opt.Sink, Now: w.engine.Now})
	w.orc = newOracle(w, opt.MaxViolations)
	w.srv = newMserver(w)
	for i := 0; i < sc.Clients; i++ {
		w.clients = append(w.clients, newMclient(w, i))
	}
	w.scheduleOps()
	w.scheduleFaults()
	w.engine.Run()

	// Post-run lens: under the honest protocol a write may be deferred
	// at most one lease term (§2) plus the crash-recovery window;
	// 2·term + slack bounds both with margin.
	if sc.Break == "" {
		if bound := 2*sc.Term + time.Second; w.out.MaxWriteWait > bound {
			w.orc.violate(vSlowWrite, fmt.Sprintf("a write was deferred %v, past the %v bound", w.out.MaxWriteWait, bound))
		}
	}
	w.out.Deliveries = w.fabric.Deliveries()
	w.out.Losses = w.fabric.Losses()
	for _, ec := range w.obs.EventCounts() {
		w.out.Events += ec.N
	}
	return w.out, nil
}

func (w *world) scheduleOps() {
	for i := range w.sc.Ops {
		op := w.sc.Ops[i]
		c := w.clients[op.Client]
		w.engine.At(w.start.Add(op.At), func() { c.doOp(op) })
	}
}

func (w *world) scheduleFaults() {
	for i := range w.sc.Faults {
		ft := w.sc.Faults[i]
		switch ft.Kind {
		case FaultPartition:
			node := clientNode(ft.Client)
			w.engine.At(w.start.Add(ft.At), func() {
				w.obs.Record(obs.Event{Type: obs.EvFaultInject, Client: string(node)})
				w.fabric.CutLink(node, serverNode)
			})
			w.engine.At(w.start.Add(ft.At+ft.Dur), func() {
				w.fabric.HealLink(node, serverNode)
			})
		case FaultClientCrash:
			c := w.clients[ft.Client]
			w.engine.At(w.start.Add(ft.At), func() {
				w.obs.Record(obs.Event{Type: obs.EvFaultInject, Client: string(c.node)})
				c.crash()
			})
			w.engine.At(w.start.Add(ft.At+ft.Dur), func() { c.restart() })
		case FaultServerCrash:
			w.engine.At(w.start.Add(ft.At), func() {
				w.obs.Record(obs.Event{Type: obs.EvFaultInject, Client: string(serverNode)})
				w.srv.crash()
			})
			w.engine.At(w.start.Add(ft.At+ft.Dur), func() { w.srv.restart() })
		case FaultDrop, FaultDelay, FaultLoss:
			// Window faults act through faultFor on each delivery.
		}
	}
}

// faultFor is the fabric's per-delivery fault choice point: it scans
// the schedule's window faults active at the current virtual instant.
// The fabric consults it in deterministic delivery order, so the
// lossRNG stream — and therefore every loss decision — replays
// exactly under equal scenarios.
func (w *world) faultFor(from, to netsim.NodeID, kind string) netsim.FaultDecision {
	var dec netsim.FaultDecision
	now := w.engine.Now().Sub(w.start)
	for i := range w.sc.Faults {
		ft := &w.sc.Faults[i]
		if now < ft.At || now >= ft.At+ft.Dur {
			continue
		}
		switch ft.Kind {
		case FaultLoss:
			if w.lossRNG.Float64() < ft.Rate {
				dec.Drop = true
			}
		case FaultDrop:
			if ft.matches(from, to, kind) {
				dec.Drop = true
			}
		case FaultDelay:
			if ft.matches(from, to, kind) {
				dec.Delay += ft.Extra
			}
		}
	}
	return dec
}

// matches reports whether a drop/delay fault applies to one delivery.
func (ft *Fault) matches(from, to netsim.NodeID, kind string) bool {
	if ft.MsgKind != "" && ft.MsgKind != kind {
		return false
	}
	c := clientNode(ft.Client)
	if ft.ToServer {
		return from == c && to == serverNode
	}
	return from == serverNode && to == c
}
