package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestFigure1Shape(t *testing.T) {
	series := Figure1(true)
	if len(series) != 5 {
		t.Fatalf("Figure1 has %d series, want 5 (S=40,20,10,1 + Trace)", len(series))
	}
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	s1, ok1 := byName["S=1"]
	tr, ok2 := byName["Trace"]
	if !ok1 || !ok2 {
		t.Fatalf("missing series: %v", byName)
	}
	// All curves start at 1.0 (zero term) and decrease.
	for _, s := range series {
		if math.Abs(s.Y[0]-1.0) > 0.05 {
			t.Fatalf("%s starts at %.3f, want 1.0", s.Name, s.Y[0])
		}
		if s.Y[len(s.Y)-1] >= s.Y[1] {
			t.Fatalf("%s does not decrease", s.Name)
		}
	}
	// Figure 1 headline: S=1 at 10 s is ≈ 0.10 of zero term.
	if s1.Y[10] < 0.08 || s1.Y[10] > 0.13 {
		t.Fatalf("S=1 at 10s = %.3f, want ≈0.10", s1.Y[10])
	}
	// Higher sharing floors higher (writes keep costing NSW).
	if byName["S=40"].Y[30] <= byName["S=10"].Y[30] {
		t.Fatal("S=40 floor not above S=10 floor")
	}
	// The Trace curve's knee is at or below the analytic S=1 curve at
	// short terms (the paper: "sharper and at a lower term").
	if tr.Y[5] > s1.Y[5]+0.05 {
		t.Fatalf("Trace at 5s = %.3f vs S=1 %.3f — knee not sharper", tr.Y[5], s1.Y[5])
	}
}

func TestFigure2Shape(t *testing.T) {
	series := Figure2()
	if len(series) != 4 {
		t.Fatalf("Figure2 has %d series", len(series))
	}
	for _, s := range series {
		// Delay decreases with term and is maximal at term 0 (one RTT
		// per read, 1.2 ms scaled by the read share ≈ 1.15 ms).
		if s.Y[0] < 1.0 || s.Y[0] > 1.3 {
			t.Fatalf("%s at 0 = %.3f ms, want ≈1.15", s.Name, s.Y[0])
		}
		if s.Y[10] >= s.Y[1] {
			t.Fatalf("%s not decreasing", s.Name)
		}
	}
	// The curves are nearly indistinguishable (writes are a small
	// fraction of operations): S=1 and S=40 within 0.15 ms at 10 s, a
	// small fraction of the zero-term delay.
	if d := math.Abs(series[0].Y[10] - series[3].Y[10]); d > 0.15 {
		t.Fatalf("S=1 and S=40 differ by %.3f ms at 10s — paper says indistinguishable", d)
	}
}

func TestFigure3Headline(t *testing.T) {
	series := Figure3()
	var rel Series
	for _, s := range series {
		if s.Name == "degradation-%" {
			rel = s
		}
	}
	if rel.Name == "" {
		t.Fatal("missing degradation series")
	}
	if math.Abs(rel.Y[10]-10.1) > 0.7 {
		t.Fatalf("degradation at 10s = %.2f%%, want ≈10.1%%", rel.Y[10])
	}
	if math.Abs(rel.Y[30]-3.6) > 0.5 {
		t.Fatalf("degradation at 30s = %.2f%%, want ≈3.6%%", rel.Y[30])
	}
}

func TestTable2Measured(t *testing.T) {
	tbl := Table2(true)
	if len(tbl.Rows) < 8 {
		t.Fatalf("Table2 rows = %d", len(tbl.Rows))
	}
}

func TestHeadlinesWithinTolerance(t *testing.T) {
	for _, h := range Headlines() {
		relErr := math.Abs(h.Measured-h.Paper) / h.Paper
		if relErr > 0.08 {
			t.Errorf("%s: measured %.4f vs paper %.4f (%.1f%% off)",
				h.Name, h.Measured, h.Paper, relErr*100)
		}
	}
}

func TestInstalledFilesOptimizationWins(t *testing.T) {
	tbl := InstalledFiles(true)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var plainMsgs, optMsgs int64
	var plainRecs, optRecs int64
	parse := func(s string) int64 {
		var v int64
		for _, c := range s {
			if c >= '0' && c <= '9' {
				v = v*10 + int64(c-'0')
			}
		}
		return v
	}
	plainMsgs, optMsgs = parse(tbl.Rows[0][1]), parse(tbl.Rows[1][1])
	plainRecs, optRecs = parse(tbl.Rows[0][4]), parse(tbl.Rows[1][4])
	if optMsgs >= plainMsgs {
		t.Fatalf("multicast extension load %d not below per-client %d", optMsgs, plainMsgs)
	}
	if optRecs >= plainRecs {
		t.Fatalf("multicast extension records %d not below per-client %d — the point is eliminating per-client state", optRecs, plainRecs)
	}
	// Both variants must be consistent.
	if tbl.Rows[0][5] != "0" || tbl.Rows[1][5] != "0" {
		t.Fatalf("stale reads: %v / %v", tbl.Rows[0][5], tbl.Rows[1][5])
	}
}

func TestBaselinesOrdering(t *testing.T) {
	tbl := Baselines(true)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Lease rows guarantee consistency; the polling rows admit staleness.
	for i, row := range tbl.Rows {
		isLease := strings.HasPrefix(row[0], "lease")
		staleZero := row[3] == "0"
		if isLease && !staleZero {
			t.Fatalf("row %d (%s): lease regime had stale reads %s", i, row[0], row[3])
		}
	}
	if tbl.Rows[3][3] == "0" && tbl.Rows[4][3] == "0" {
		t.Fatal("neither polling variant showed staleness — comparison is vacuous")
	}
}

func TestScalingDirections(t *testing.T) {
	series := Scaling()
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	knee := series[0]
	for i := 1; i < len(knee.Y); i++ {
		if knee.Y[i] >= knee.Y[i-1] {
			t.Fatalf("relative load at 10s not decreasing in R: %v", knee.Y)
		}
	}
	deg := series[1]
	for i := 1; i < len(deg.Y); i++ {
		if deg.Y[i] <= deg.Y[i-1] {
			t.Fatalf("degradation not increasing in RTT: %v", deg.Y)
		}
	}
}

func TestFaultToleranceMatrix(t *testing.T) {
	tbl := FaultTolerance()
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		unsafe := strings.Contains(row[0], "unsafe")
		consistent := row[3] == "yes"
		if unsafe && consistent {
			t.Fatalf("%s: expected staleness, saw none", row[0])
		}
		if !unsafe && !consistent {
			t.Fatalf("%s: expected consistency, saw staleness", row[0])
		}
	}
	// The crashed-holder write delay is bounded by the term.
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "holder crashes") {
			d, err := time.ParseDuration(row[1])
			if err != nil {
				t.Fatalf("bad duration %q", row[1])
			}
			if d > 10*time.Second {
				t.Fatalf("crashed-holder write delay %v exceeds the 10s term", d)
			}
			if d < 6*time.Second {
				t.Fatalf("crashed-holder write delay %v — lease not honoured", d)
			}
		}
	}
}

func TestAdaptiveTable(t *testing.T) {
	tbl := Adaptive(true)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[4] != "0" {
			t.Fatalf("%s produced stale reads", row[0])
		}
	}
}

func TestWriteBackTable(t *testing.T) {
	tbl := WriteBack(true)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	parse := func(s string) int64 {
		var v int64
		for _, c := range s {
			if c >= '0' && c <= '9' {
				v = v*10 + int64(c-'0')
			}
		}
		return v
	}
	// On private write-heavy data, write-back sends far fewer total
	// messages than write-through.
	leaseTotal, tokenTotal := parse(tbl.Rows[0][2]), parse(tbl.Rows[1][2])
	if tokenTotal*3 >= leaseTotal {
		t.Fatalf("write-back total %d not well below write-through %d", tokenTotal, leaseTotal)
	}
	for _, row := range tbl.Rows {
		if row[4] != "0" {
			t.Fatalf("%s/%s produced stale reads", row[0], row[1])
		}
		if row[5] != "0" {
			t.Fatalf("%s/%s lost writes without crashes", row[0], row[1])
		}
	}
}

func TestRenderers(t *testing.T) {
	var sb strings.Builder
	RenderSeries(&sb, "t", "x", "y", []Series{{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}}})
	RenderTable(&sb, Table{Title: "t", Header: []string{"a"}, Rows: [][]string{{"b"}}})
	out := sb.String()
	if !strings.Contains(out, "3.0000") || !strings.Contains(out, "b") {
		t.Fatalf("render output:\n%s", out)
	}
}
