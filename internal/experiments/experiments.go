// Package experiments regenerates every table and figure of the paper's
// evaluation (§3) plus the optimization and fault-tolerance results of
// §4–§5, using the analytic model (internal/analytic), the trace-driven
// simulator (internal/tracesim) and the baselines (internal/baseline).
//
// Each experiment returns structured data (Series for figures, Table for
// tables) that cmd/leasebench renders as text and the root benchmarks
// report as metrics; EXPERIMENTS.md records paper-versus-measured for
// each.
package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"

	"leases/internal/analytic"
	"leases/internal/baseline"
	"leases/internal/core"
	"leases/internal/netsim"
	"leases/internal/tokensim"
	"leases/internal/trace"
	"leases/internal/tracesim"
)

// Series is one curve of a figure.
type Series struct {
	Name string
	X    []float64 // lease term in seconds (or sweep variable)
	Y    []float64
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// RenderSeries writes curves as aligned columns, one row per X.
func RenderSeries(w io.Writer, title, xlabel, ylabel string, series []Series) {
	fmt.Fprintf(w, "# %s\n#   x: %s, y: %s\n", title, xlabel, ylabel)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", xlabel)
	for _, s := range series {
		fmt.Fprintf(tw, "\t%s", s.Name)
	}
	fmt.Fprintln(tw)
	if len(series) > 0 {
		for i := range series[0].X {
			fmt.Fprintf(tw, "%.2f", series[0].X[i])
			for _, s := range series {
				if i < len(s.Y) {
					fmt.Fprintf(tw, "\t%.4f", s.Y[i])
				} else {
					fmt.Fprintf(tw, "\t-")
				}
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// RenderTable writes a table as aligned columns.
func RenderTable(w io.Writer, t Table) {
	fmt.Fprintf(w, "# %s\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range t.Header {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// lanNet is the Table 2 message fabric.
func lanNet() netsim.Params {
	return netsim.Params{Prop: 500 * time.Microsecond, Proc: 50 * time.Microsecond, Seed: 1}
}

// Terms is the x-axis of Figures 1–3: 0 to 30 seconds, as in the paper.
func Terms() []time.Duration {
	var out []time.Duration
	for s := 0; s <= 30; s++ {
		out = append(out, time.Duration(s)*time.Second)
	}
	return out
}

// vTrace builds the synthetic V workload used for the Trace curves.
func vTrace(dur time.Duration) *trace.Trace {
	return trace.V(trace.VConfig{
		Seed: 1989, Duration: dur, Clients: 1,
		RegularFiles: 40, InstalledFiles: 20,
		ReadRate: 0.864, WriteRate: 0.04,
	})
}

// Figure1 regenerates Figure 1: relative server consistency load versus
// lease term — analytic curves for S ∈ {1, 10, 20, 40} plus the
// trace-driven simulation curve. quick shortens the simulated trace.
func Figure1(quick bool) []Series {
	terms := Terms()
	xs := make([]float64, len(terms))
	for i, t := range terms {
		xs[i] = t.Seconds()
	}
	var out []Series
	for _, s := range []float64{40, 20, 10, 1} {
		p := analytic.VParams()
		p.S = s
		ys := make([]float64, len(terms))
		for i, t := range terms {
			ys[i] = p.RelativeLoad(t)
		}
		out = append(out, Series{Name: fmt.Sprintf("S=%g", s), X: xs, Y: ys})
	}

	dur := 2 * time.Hour
	if quick {
		dur = 20 * time.Minute
	}
	tr := vTrace(dur)
	// Batched extension matches the model's multi-file treatment
	// (§3.1): one request covers every lease the cache holds, so R and W
	// correspond to the aggregate rates.
	zero := tracesim.Run(tracesim.Config{Trace: tr, Term: 0, Net: lanNet()})
	ys := make([]float64, len(terms))
	for i, t := range terms {
		res := tracesim.Run(tracesim.Config{Trace: tr, Term: t, Net: lanNet(), BatchExtension: true})
		ys[i] = res.ConsistencyLoad / zero.ConsistencyLoad
	}
	out = append(out, Series{Name: "Trace", X: xs, Y: ys})
	return out
}

// Figure2 regenerates Figure 2: average delay added to each operation by
// consistency versus lease term, on the LAN parameters, for S ∈ {1..40}
// (the curves are nearly indistinguishable, as the paper notes).
func Figure2() []Series {
	terms := Terms()
	xs := make([]float64, len(terms))
	for i, t := range terms {
		xs[i] = t.Seconds()
	}
	var out []Series
	for _, s := range []float64{1, 10, 20, 40} {
		p := analytic.VParams()
		p.S = s
		ys := make([]float64, len(terms))
		for i, t := range terms {
			ys[i] = float64(p.AddedDelay(t)) / float64(time.Millisecond)
		}
		out = append(out, Series{Name: fmt.Sprintf("S=%g", s), X: xs, Y: ys})
	}
	return out
}

// Figure3 regenerates Figure 3: added delay with a 100 ms round-trip
// network, reported both in milliseconds and relative to the round trip.
func Figure3() []Series {
	terms := Terms()
	xs := make([]float64, len(terms))
	for i, t := range terms {
		xs[i] = t.Seconds()
	}
	p := analytic.VParams()
	p.MProp = 50 * time.Millisecond
	abs := make([]float64, len(terms))
	rel := make([]float64, len(terms))
	for i, t := range terms {
		abs[i] = float64(p.AddedDelay(t)) / float64(time.Millisecond)
		rel[i] = p.RelativeDelay(t) * 100
	}
	return []Series{
		{Name: "added-delay-ms", X: xs, Y: abs},
		{Name: "degradation-%", X: xs, Y: rel},
	}
}

// Table2 regenerates Table 2: the workload parameters, measured from the
// synthetic V trace alongside the configured values.
func Table2(quick bool) Table {
	dur := 4 * time.Hour
	if quick {
		dur = 30 * time.Minute
	}
	tr := vTrace(dur)
	s := tr.Measure()
	p := analytic.VParams()
	row := func(sym, desc, val string) []string { return []string{sym, desc, val} }
	return Table{
		Title:  "Table 2: Parameters for file caching in V (measured from synthetic trace)",
		Header: []string{"parameter", "description", "value"},
		Rows: [][]string{
			row("N", "number of clients", fmt.Sprintf("%d", tr.Clients)),
			row("R", "rate of reads (target 0.864/s)", fmt.Sprintf("%.3f/s", s.ReadRate)),
			row("W", "rate of writes (target 0.040/s)", fmt.Sprintf("%.3f/s", s.WriteRate)),
			row("R/W", "read/write ratio", fmt.Sprintf("%.1f", s.ReadWriteRatio)),
			row("inst", "share of reads to installed files", fmt.Sprintf("%.2f", float64(s.InstalledReads)/float64(max(1, s.Reads)))),
			row("m_prop", "propagation delay", p.MProp.String()),
			row("m_proc", "message processing time", p.MProc.String()),
			row("eps", "clock uncertainty allowance", p.Eps.String()),
			row("burst", "read burstiness index (Poisson=1)", fmt.Sprintf("%.1f", tr.BurstinessIndex())),
		},
	}
}

// HeadlineRow is one paper-vs-measured comparison.
type HeadlineRow struct {
	Name     string
	Paper    float64
	Measured float64
}

// Headlines computes the §3.2/§3.3 headline numbers from the analytic
// model with the reconstructed Table 2 parameters.
func Headlines() []HeadlineRow {
	p := analytic.VParams()
	p10 := p
	p10.S = 10
	wan := p
	wan.MProp = 50 * time.Millisecond
	return []HeadlineRow{
		{"S=1 relative consistency load at 10s term", 0.10, p.RelativeLoad(10 * time.Second)},
		{"S=1 total traffic reduction at 10s term", 0.27, p.TotalReduction(10*time.Second, analytic.VConsistencyShare)},
		{"S=1 total traffic over infinite term", 0.045, p.OverInfinite(10*time.Second, analytic.VConsistencyShare)},
		{"S=10 total traffic reduction at 10s term", 0.20, p10.TotalReduction(10*time.Second, analytic.VConsistencyShare)},
		{"S=10 total traffic over infinite term", 0.041, p10.OverInfinite(10*time.Second, analytic.VConsistencyShare)},
		{"100ms-RTT response degradation, 10s term", 0.101, wan.RelativeDelay(10 * time.Second)},
		{"100ms-RTT response degradation, 30s term", 0.036, wan.RelativeDelay(30 * time.Second)},
	}
}

// HeadlineTable renders Headlines as a Table.
func HeadlineTable() Table {
	t := Table{
		Title:  "Headline results (§3.2, §3.3): paper vs model with reconstructed parameters",
		Header: []string{"quantity", "paper", "measured", "rel.err"},
	}
	for _, h := range Headlines() {
		relErr := math.Abs(h.Measured-h.Paper) / h.Paper
		t.Rows = append(t.Rows, []string{
			h.Name,
			fmt.Sprintf("%.3f", h.Paper),
			fmt.Sprintf("%.3f", h.Measured),
			fmt.Sprintf("%.1f%%", relErr*100),
		})
	}
	return t
}

// InstalledFiles runs the §4 installed-files experiment: the V workload
// with many clients sharing the installed set, with and without the
// multicast-extension optimization.
func InstalledFiles(quick bool) Table {
	dur := time.Hour
	clients := 8
	if quick {
		dur = 15 * time.Minute
		clients = 4
	}
	tr := trace.V(trace.VConfig{
		Seed: 7, Duration: dur, Clients: clients,
		RegularFiles: 40, InstalledFiles: 20,
		ReadRate: 0.864, WriteRate: 0.04,
	})
	const term = 10 * time.Second
	plain := tracesim.Run(tracesim.Config{Trace: tr, Term: term, Net: lanNet()})
	opt := tracesim.Run(tracesim.Config{
		Trace: tr, Term: term, Net: lanNet(),
		Installed: &tracesim.InstalledConfig{Term: 30 * time.Second, Period: 20 * time.Second},
	})
	f := func(r *tracesim.Result) []string {
		return []string{
			fmt.Sprintf("%d", r.ServerConsistencyMsgs),
			fmt.Sprintf("%.3f/s", r.ConsistencyLoad),
			fmt.Sprintf("%d", r.CacheHits),
			fmt.Sprintf("%d", r.MaxLeaseRecords),
			fmt.Sprintf("%d", r.StaleReads),
		}
	}
	return Table{
		Title:  "Installed files (§4): per-client leases vs multicast extension",
		Header: []string{"variant", "consistency msgs", "load", "cache hits", "max lease records", "stale"},
		Rows: [][]string{
			append([]string{"per-client leases"}, f(plain)...),
			append([]string{"multicast extension"}, f(opt)...),
		},
	}
}

// Baselines compares the consistency regimes of §6 on a shared workload:
// leases at several terms, check-on-use, and TTL polling.
func Baselines(quick bool) Table {
	dur := time.Hour
	if quick {
		dur = 15 * time.Minute
	}
	tr := trace.Shared(trace.SharedConfig{
		Seed: 11, Duration: dur, Clients: 8, Files: 4,
		ReadRate: 0.864, WriteRate: 0.02,
	})
	t := Table{
		Title: "Baselines (§6): consistency load, hit rate, staleness",
		Header: []string{
			"regime", "consistency msgs", "hit rate", "stale reads", "max staleness",
		},
	}
	addLease := func(name string, term time.Duration) {
		r := tracesim.Run(tracesim.Config{Trace: tr, Term: term, Net: lanNet()})
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", r.ServerConsistencyMsgs),
			fmt.Sprintf("%.2f", float64(r.CacheHits)/float64(max64(1, r.Reads))),
			fmt.Sprintf("%d", r.StaleReads),
			"0s (guaranteed)",
		})
	}
	addLease("lease term=0 (Sprite/RFS/AFS-proto)", 0)
	addLease("lease term=10s", 10*time.Second)
	addLease("lease term=inf (AFS callbacks)", core.Infinite)
	for _, ttl := range []time.Duration{10 * time.Second, 10 * time.Minute} {
		r := baseline.Run(baseline.Config{Trace: tr, Kind: baseline.PollingHints, TTL: ttl, Net: lanNet()})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("TTL polling %v (no leases)", ttl),
			fmt.Sprintf("%d", r.ServerConsistencyMsgs),
			fmt.Sprintf("%.2f", float64(r.CacheHits)/float64(max64(1, r.Reads))),
			fmt.Sprintf("%d", r.StaleReads),
			r.MaxStaleness.Truncate(time.Millisecond).String(),
		})
	}
	return t
}

// Scaling regenerates the §3.3 argument: how the optimal term region
// shifts with processor speed (read rate) and network delay (RTT).
func Scaling() []Series {
	// Sweep read rate at fixed 10s term: relative load falls as R grows
	// (faster processors sharpen the knee).
	rates := []float64{0.25, 0.5, 0.864, 2, 4, 8, 16}
	var xs, knee []float64
	for _, r := range rates {
		p := analytic.VParams()
		p.R = r
		xs = append(xs, r)
		knee = append(knee, p.RelativeLoad(10*time.Second))
	}
	// Sweep RTT at fixed 10s term: the absolute delay consistency adds
	// to each operation grows with network latency (the relative figure
	// is nearly scale-free, which is why §3.3 argues WANs raise the
	// stakes: the same fraction of a much larger round trip).
	rtts := []float64{1, 10, 50, 100, 200, 500} // ms
	var xr, added []float64
	for _, ms := range rtts {
		p := analytic.VParams()
		p.MProp = time.Duration(ms/2*float64(time.Millisecond)) - 2*p.MProc
		if p.MProp < 0 {
			p.MProp = 0
		}
		xr = append(xr, ms)
		added = append(added, float64(p.AddedDelay(10*time.Second))/float64(time.Millisecond))
	}
	return []Series{
		{Name: "rel-load@10s vs R(/s)", X: xs, Y: knee},
		{Name: "added-delay-ms@10s vs RTT(ms)", X: xr, Y: added},
	}
}

// Adaptive runs the §4/§7 adaptive-policy experiment on a mixed
// workload (one read-mostly file, one write-hot file): the server that
// monitors access rates and sets terms from the model beats any single
// fixed term.
func Adaptive(quick bool) Table {
	dur := time.Hour
	if quick {
		dur = 20 * time.Minute
	}
	readMostly := trace.Poisson(trace.PoissonConfig{
		Seed: 51, Duration: dur, Clients: 6, Files: 1,
		ReadRate: 0.864, WriteRate: 0.005,
	})
	writeHot := trace.Poisson(trace.PoissonConfig{
		Seed: 52, Duration: dur, Clients: 6, Files: 1,
		ReadRate: 0.4, WriteRate: 1.0,
	})
	for i := range writeHot.Events {
		writeHot.Events[i].File = 1
	}
	tr := trace.Merge(readMostly, writeHot)
	tr.Files = 2

	t := Table{
		Title:  "Adaptive terms (§4/§7): per-file terms from observed rates vs fixed terms",
		Header: []string{"policy", "consistency msgs", "load", "hit rate", "stale"},
	}
	add := func(name string, cfg tracesim.Config) {
		cfg.Trace = tr
		cfg.Net = lanNet()
		r := tracesim.Run(cfg)
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", r.ServerConsistencyMsgs),
			fmt.Sprintf("%.2f/s", r.ConsistencyLoad),
			fmt.Sprintf("%.2f", float64(r.CacheHits)/float64(max64(1, r.Reads))),
			fmt.Sprintf("%d", r.StaleReads),
		})
	}
	add("fixed term=0", tracesim.Config{Term: 0})
	add("fixed term=10s", tracesim.Config{Term: 10 * time.Second})
	add("fixed term=30s", tracesim.Config{Term: 30 * time.Second})
	add("adaptive (model-driven)", tracesim.Config{Adaptive: &tracesim.AdaptiveConfig{}})
	return t
}

// WriteBack runs the §2/§6 token-extension comparison: write-through
// leases versus write-back tokens on a write-heavy private workload
// (where write-back shines) and a shared read-mostly workload (where
// the two converge).
func WriteBack(quick bool) Table {
	dur := time.Hour
	if quick {
		dur = 20 * time.Minute
	}
	private := trace.Poisson(trace.PoissonConfig{
		Seed: 61, Duration: dur, Clients: 4, Files: 4,
		ReadRate: 0.4, WriteRate: 1.0,
	})
	for j := range private.Events {
		private.Events[j].File = private.Events[j].Client
	}
	shared := trace.Shared(trace.SharedConfig{
		Seed: 62, Duration: dur, Clients: 4, Files: 2,
		ReadRate: 0.864, WriteRate: 0.01,
	})

	const term = 30 * time.Second
	t := Table{
		Title:  "Write-back tokens vs write-through leases (§2/§6 extension)",
		Header: []string{"workload", "regime", "server msgs (total)", "consistency msgs", "stale", "lost writes"},
	}
	addLease := func(name string, tr *trace.Trace) {
		r := tracesim.Run(tracesim.Config{Trace: tr, Term: term, Net: lanNet()})
		t.Rows = append(t.Rows, []string{
			name, "write-through leases",
			fmt.Sprintf("%d", r.ServerTotalMsgs),
			fmt.Sprintf("%d", r.ServerConsistencyMsgs),
			fmt.Sprintf("%d", r.StaleReads), "0",
		})
	}
	addTokens := func(name string, tr *trace.Trace) {
		r := tokensim.Run(tokensim.Config{Trace: tr, Term: term, Net: lanNet(), FlushInterval: 10 * time.Second})
		t.Rows = append(t.Rows, []string{
			name, "write-back tokens",
			fmt.Sprintf("%d", r.ServerTotalMsgs),
			fmt.Sprintf("%d", r.ServerConsistencyMsgs),
			fmt.Sprintf("%d", r.StaleReads),
			fmt.Sprintf("%d", r.LostWrites),
		})
	}
	addLease("private write-heavy", private)
	addTokens("private write-heavy", private)
	addLease("shared read-mostly", shared)
	addTokens("shared read-mostly", shared)
	return t
}

// FaultTolerance runs the §5 experiments: bounded write delay under
// client crash, server recovery, and the clock-failure matrix.
func FaultTolerance() Table {
	const term = 10 * time.Second
	mk := func(faults []tracesim.Fault, clientRates []float64, serverRate float64) *tracesim.Result {
		events := []trace.Event{
			{At: 1 * time.Second, Client: 0, File: 0, Op: trace.OpRead},
			{At: 3 * time.Second, Client: 1, File: 0, Op: trace.OpWrite},
		}
		for at := 3500 * time.Millisecond; at < 14*time.Second; at += 500 * time.Millisecond {
			events = append(events, trace.Event{At: at, Client: 0, File: 0, Op: trace.OpRead})
		}
		tr := &trace.Trace{Duration: 40 * time.Second, Clients: 2, Files: 1, Events: events}
		return tracesim.Run(tracesim.Config{
			Trace: tr, Term: term, Net: lanNet(),
			Faults:          faults,
			ClientClockRate: clientRates,
			ServerClockRate: serverRate,
		})
	}
	t := Table{
		Title:  "Fault tolerance (§5): write delay bounded by term; clock-failure matrix",
		Header: []string{"scenario", "max write delay", "stale reads", "consistent"},
	}
	add := func(name string, r *tracesim.Result) {
		t.Rows = append(t.Rows, []string{
			name,
			r.WriteDelay.Max.Truncate(time.Millisecond).String(),
			fmt.Sprintf("%d", r.StaleReads),
			map[bool]string{true: "yes", false: "NO"}[r.StaleReads == 0],
		})
	}
	add("no faults", mk(nil, nil, 0))
	add("holder crashes (write waits ≤ term)",
		mk([]tracesim.Fault{{Kind: tracesim.ClientCrash, At: 2 * time.Second, Client: 0}}, nil, 0))
	add("holder partitioned",
		mk([]tracesim.Fault{{Kind: tracesim.PartitionClient, At: 2 * time.Second, Client: 0}}, nil, 0))
	add("server crash + restart (recovery window)",
		mk([]tracesim.Fault{
			{Kind: tracesim.ServerCrash, At: 2 * time.Second},
			{Kind: tracesim.ServerRestart, At: 2500 * time.Millisecond},
		}, nil, 0))
	add("fast client clock (benign: extra traffic)", mk(nil, []float64{2.0, 1.0}, 0))
	add("slow server clock (benign)", mk(nil, nil, 0.5))
	add("SLOW client clock + partition (unsafe)",
		mk([]tracesim.Fault{{Kind: tracesim.PartitionClient, At: 2 * time.Second, Client: 0}}, []float64{0.5, 1.0}, 0))
	add("FAST server clock + partition (unsafe)",
		mk([]tracesim.Fault{{Kind: tracesim.PartitionClient, At: 2 * time.Second, Client: 0}}, nil, 1.5))
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
