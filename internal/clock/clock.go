// Package clock abstracts the passage of physical time.
//
// Leases are a time-based mechanism: correctness depends on the server and
// its clients observing clocks whose mutual error is bounded by the
// allowance ε (Gray & Cheriton §2, §5). Every component in this repository
// reads time through the Clock interface so that:
//
//   - production code runs against Real (the system clock),
//   - tests and the trace-driven simulator run against Sim, a manually
//     advanced deterministic clock, and
//   - the §5 clock-failure experiments run against Drift, a clock whose
//     rate is deliberately wrong, and Skew, a clock with a fixed offset.
//
// Durations and instants use time.Duration and time.Time throughout; Sim
// maps them onto an artificial epoch so simulated and real components are
// interchangeable.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time and timer primitives. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now reports the current instant according to this clock.
	Now() time.Time
	// After returns a channel that delivers one value once d has elapsed
	// on this clock. The returned stop function releases resources and
	// prevents delivery if it has not yet occurred; it reports whether
	// the timer was stopped before firing.
	After(d time.Duration) (<-chan time.Time, func() bool)
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Real is the wall clock. The zero value is ready to use.
type Real struct{}

// Now implements Clock using the system clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock using time.NewTimer.
func (Real) After(d time.Duration) (<-chan time.Time, func() bool) {
	t := time.NewTimer(d)
	return t.C, t.Stop
}

// Sleep implements Clock using time.Sleep.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Epoch is the instant at which simulated clocks begin. Its particular
// value is arbitrary; tests compare instants relative to it.
var Epoch = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)

// simTimer is a pending timer on a Sim clock. seq records arming order:
// timers with equal deadlines fire in the order they were created,
// pinning a total (deadline, seq) order — selecting among equal
// deadlines by map iteration would make same-tick firing order vary
// between runs of the same schedule.
type simTimer struct {
	at  time.Time
	seq uint64
	ch  chan time.Time
}

// Sim is a deterministic, manually advanced clock. Time moves only when
// Advance or AdvanceTo is called; timers fire synchronously during the
// advance, in (deadline, arming order). Sim is safe for concurrent use.
type Sim struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers map[*simTimer]struct{}
}

// NewSim returns a simulated clock reading Epoch.
func NewSim() *Sim { return NewSimAt(Epoch) }

// NewSimAt returns a simulated clock reading start.
func NewSimAt(start time.Time) *Sim {
	return &Sim{now: start, timers: make(map[*simTimer]struct{})}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After implements Clock. A timer with a non-positive duration fires on
// the next Advance call (or immediately if the clock is advanced to or
// past its deadline), never synchronously inside After.
func (s *Sim) After(d time.Duration) (<-chan time.Time, func() bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &simTimer{at: s.now.Add(d), seq: s.seq, ch: make(chan time.Time, 1)}
	s.seq++
	if d <= 0 {
		// Fire immediately: the deadline has already passed.
		t.ch <- s.now
		return t.ch, func() bool { return false }
	}
	s.timers[t] = struct{}{}
	stop := func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, ok := s.timers[t]; ok {
			delete(s.timers, t)
			return true
		}
		return false
	}
	return t.ch, stop
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline. Sleeping on a Sim that nothing advances blocks
// forever; tests advance from a separate goroutine or use timers instead.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch, _ := s.After(d)
	<-ch
}

// Advance moves the clock forward by d, firing any timers whose deadlines
// are reached, in deadline order.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	s.mu.Unlock()
	s.AdvanceTo(target)
}

// AdvanceTo moves the clock forward to instant t. Moving backwards is a
// no-op. Timers fire in (deadline, arming) order; each timer observes
// Now equal to its own deadline, as a real clock would.
func (s *Sim) AdvanceTo(at time.Time) {
	for {
		s.mu.Lock()
		next := s.earliestTimerLocked(at)
		if next == nil {
			if at.After(s.now) {
				s.now = at
			}
			s.mu.Unlock()
			return
		}
		delete(s.timers, next)
		if next.at.After(s.now) {
			s.now = next.at
		}
		fireAt := s.now
		s.mu.Unlock()
		next.ch <- fireAt
	}
}

// earliestTimerLocked returns the armed timer with the earliest
// deadline at or before limit, breaking deadline ties by arming order.
// Callers hold s.mu.
func (s *Sim) earliestTimerLocked(limit time.Time) *simTimer {
	var next *simTimer
	for t := range s.timers {
		if t.at.After(limit) {
			continue
		}
		if next == nil || t.at.Before(next.at) ||
			(t.at.Equal(next.at) && t.seq < next.seq) {
			next = t
		}
	}
	return next
}

// PendingTimers reports how many timers are armed. Useful in tests to
// assert that protocol code released its timers.
func (s *Sim) PendingTimers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.timers)
}

// Drift wraps a base clock and scales its rate by Rate relative to the
// instant the Drift was created: a Rate of 1.02 is a clock running 2%
// fast, 0.98 is 2% slow. It models the §5 failure in which "a server
// clock that advances too quickly can cause errors" and the benign
// inverses that merely generate extra traffic.
type Drift struct {
	base   Clock
	origin time.Time
	rate   float64
}

// NewDrift returns a clock that runs at rate times the speed of base.
// Rate must be positive.
func NewDrift(base Clock, rate float64) *Drift {
	if rate <= 0 {
		panic("clock: non-positive drift rate")
	}
	return &Drift{base: base, origin: base.Now(), rate: rate}
}

// Now implements Clock: origin + rate·(base elapsed).
func (d *Drift) Now() time.Time {
	elapsed := d.base.Now().Sub(d.origin)
	return d.origin.Add(time.Duration(float64(elapsed) * d.rate))
}

// After implements Clock. The duration is converted to base-clock time so
// that the timer fires when d has elapsed on the drifting clock.
func (d *Drift) After(dur time.Duration) (<-chan time.Time, func() bool) {
	return d.base.After(time.Duration(float64(dur) / d.rate))
}

// Sleep implements Clock.
func (d *Drift) Sleep(dur time.Duration) {
	d.base.Sleep(time.Duration(float64(dur) / d.rate))
}

// Rate reports the drift rate.
func (d *Drift) Rate() float64 { return d.rate }

// Skew wraps a base clock and offsets every reading by a fixed amount.
// It models bounded clock asynchrony: two well-behaved hosts differ by at
// most ε, the allowance the client subtracts when computing its effective
// term t_c (§3.1).
type Skew struct {
	base   Clock
	offset time.Duration
}

// NewSkew returns a clock reading base.Now().Add(offset).
func NewSkew(base Clock, offset time.Duration) *Skew {
	return &Skew{base: base, offset: offset}
}

// Now implements Clock.
func (s *Skew) Now() time.Time { return s.base.Now().Add(s.offset) }

// After implements Clock; durations are unaffected by a constant offset.
func (s *Skew) After(d time.Duration) (<-chan time.Time, func() bool) {
	return s.base.After(d)
}

// Sleep implements Clock.
func (s *Skew) Sleep(d time.Duration) { s.base.Sleep(d) }

// Offset reports the fixed offset.
func (s *Skew) Offset() time.Duration { return s.offset }
