package clock

import (
	"testing"
	"time"
)

// TestSimTimersFireInArmingOrderAtEqualDeadlines pins the (deadline,
// arming order) total order: before seq was added, equal-deadline
// timers fired in map-iteration order, which varied between runs of
// the same schedule.
func TestSimTimersFireInArmingOrderAtEqualDeadlines(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := NewSim()
		const n = 8
		chans := make([]<-chan time.Time, n)
		for i := range chans {
			ch, _ := s.After(time.Second)
			chans[i] = ch
		}
		s.Advance(time.Second)
		// Timers fired synchronously during Advance, in arming order;
		// each buffered channel holds its tick. Draining in arming
		// order must never block.
		for i, ch := range chans {
			select {
			case at := <-ch:
				if want := Epoch.Add(time.Second); !at.Equal(want) {
					t.Fatalf("timer %d fired at %v, want %v", i, at, want)
				}
			default:
				t.Fatalf("round %d: timer %d did not fire", round, i)
			}
		}
	}
}

// TestSimTimerOrderInterleavedDeadlines checks the full (at, seq)
// order with mixed deadlines armed out of order.
func TestSimTimerOrderInterleavedDeadlines(t *testing.T) {
	s := NewSim()
	var fired []int
	record := func(idx int, ch <-chan time.Time) (drain func()) {
		return func() {
			select {
			case <-ch:
				fired = append(fired, idx)
			default:
			}
		}
	}
	c2a, _ := s.After(2 * time.Second) // armed first at t+2
	c1a, _ := s.After(1 * time.Second) // armed second at t+1
	c2b, _ := s.After(2 * time.Second) // armed third at t+2
	c1b, _ := s.After(1 * time.Second) // armed fourth at t+1
	drains := []func(){record(0, c2a), record(1, c1a), record(2, c2b), record(3, c1b)}

	s.Advance(time.Second)
	for _, d := range drains {
		d()
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("after 1s fired %v, want [1 3] (deadline then arming order)", fired)
	}
	s.Advance(time.Second)
	for _, d := range drains {
		d()
	}
	if len(fired) != 4 || fired[2] != 0 || fired[3] != 2 {
		t.Fatalf("after 2s fired %v, want [1 3 0 2]", fired)
	}
}
