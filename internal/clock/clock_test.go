package clock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRealNowMonotonicEnough(t *testing.T) {
	var c Real
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("Real.Now went backwards: %v then %v", a, b)
	}
}

func TestRealAfterFires(t *testing.T) {
	var c Real
	ch, stop := c.After(time.Millisecond)
	defer stop()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("Real.After timer never fired")
	}
}

func TestRealAfterStop(t *testing.T) {
	var c Real
	_, stop := c.After(time.Hour)
	if !stop() {
		t.Fatal("stopping an unfired real timer should report true")
	}
}

func TestSimStartsAtEpoch(t *testing.T) {
	s := NewSim()
	if !s.Now().Equal(Epoch) {
		t.Fatalf("NewSim reads %v, want %v", s.Now(), Epoch)
	}
}

func TestSimAdvance(t *testing.T) {
	s := NewSim()
	s.Advance(3 * time.Second)
	if got, want := s.Now(), Epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("after Advance got %v, want %v", got, want)
	}
	s.AdvanceTo(Epoch.Add(10 * time.Second))
	if got, want := s.Now(), Epoch.Add(10*time.Second); !got.Equal(want) {
		t.Fatalf("after AdvanceTo got %v, want %v", got, want)
	}
}

func TestSimAdvanceBackwardsIsNoop(t *testing.T) {
	s := NewSim()
	s.Advance(5 * time.Second)
	s.AdvanceTo(Epoch)
	if got, want := s.Now(), Epoch.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("clock moved backwards to %v, want %v", got, want)
	}
}

func TestSimTimerFiresAtDeadline(t *testing.T) {
	s := NewSim()
	ch, _ := s.After(2 * time.Second)
	s.Advance(time.Second)
	select {
	case at := <-ch:
		t.Fatalf("timer fired early at %v", at)
	default:
	}
	s.Advance(time.Second)
	select {
	case at := <-ch:
		if want := Epoch.Add(2 * time.Second); !at.Equal(want) {
			t.Fatalf("timer fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestSimTimerObservesOwnDeadline(t *testing.T) {
	s := NewSim()
	// Arm out of order: 3s, 1s, 2s. A single advance past all deadlines
	// must deliver each timer a timestamp equal to its own deadline, as
	// a real clock would, not the final advance target.
	durations := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	chans := make([]<-chan time.Time, len(durations))
	for i, d := range durations {
		ch, _ := s.After(d)
		chans[i] = ch
	}
	s.Advance(5 * time.Second)
	for i, d := range durations {
		select {
		case at := <-chans[i]:
			if want := Epoch.Add(d); !at.Equal(want) {
				t.Fatalf("timer %d fired at %v, want %v", i, at, want)
			}
		default:
			t.Fatalf("timer %d did not fire", i)
		}
	}
}

func TestSimZeroDurationTimerFiresImmediately(t *testing.T) {
	s := NewSim()
	ch, stop := s.After(0)
	select {
	case <-ch:
	default:
		t.Fatal("zero-duration timer did not fire immediately")
	}
	if stop() {
		t.Fatal("stop on an already-fired timer should report false")
	}
}

func TestSimNegativeDurationTimerFiresImmediately(t *testing.T) {
	s := NewSim()
	ch, _ := s.After(-time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("negative-duration timer did not fire immediately")
	}
}

func TestSimStopPreventsFiring(t *testing.T) {
	s := NewSim()
	ch, stop := s.After(time.Second)
	if !stop() {
		t.Fatal("stop on an armed timer should report true")
	}
	if stop() {
		t.Fatal("double stop should report false")
	}
	s.Advance(2 * time.Second)
	select {
	case <-ch:
		t.Fatal("stopped timer fired anyway")
	default:
	}
}

func TestSimPendingTimers(t *testing.T) {
	s := NewSim()
	if n := s.PendingTimers(); n != 0 {
		t.Fatalf("fresh clock has %d pending timers, want 0", n)
	}
	_, stop := s.After(time.Second)
	s.After(2 * time.Second)
	if n := s.PendingTimers(); n != 2 {
		t.Fatalf("got %d pending timers, want 2", n)
	}
	stop()
	if n := s.PendingTimers(); n != 1 {
		t.Fatalf("after stop got %d pending timers, want 1", n)
	}
	s.Advance(3 * time.Second)
	if n := s.PendingTimers(); n != 0 {
		t.Fatalf("after advancing past all deadlines got %d pending timers, want 0", n)
	}
}

func TestSimSleepWakesOnAdvance(t *testing.T) {
	s := NewSim()
	done := make(chan struct{})
	go func() {
		s.Sleep(time.Second)
		close(done)
	}()
	// Wait for the sleeper to arm its timer.
	for s.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	s.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not wake after Advance")
	}
}

func TestSimSleepZeroReturnsImmediately(t *testing.T) {
	s := NewSim()
	s.Sleep(0)
	s.Sleep(-time.Minute)
}

func TestSimConcurrentAdvanceAndAfter(t *testing.T) {
	s := NewSim()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ch, stop := s.After(time.Duration(j) * time.Millisecond)
				if j%2 == 0 {
					stop()
				} else {
					select {
					case <-ch:
					default:
					}
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		s.Advance(10 * time.Millisecond)
	}
	wg.Wait()
	// Drain: advance far enough that all armed timers fire.
	s.Advance(time.Second)
}

func TestDriftFastClockRunsAhead(t *testing.T) {
	base := NewSim()
	fast := NewDrift(base, 2.0)
	base.Advance(10 * time.Second)
	got := fast.Now().Sub(Epoch)
	if got != 20*time.Second {
		t.Fatalf("2x drift clock advanced %v over 10s, want 20s", got)
	}
}

func TestDriftSlowClockLagsBehind(t *testing.T) {
	base := NewSim()
	slow := NewDrift(base, 0.5)
	base.Advance(10 * time.Second)
	got := slow.Now().Sub(Epoch)
	if got != 5*time.Second {
		t.Fatalf("0.5x drift clock advanced %v over 10s, want 5s", got)
	}
}

func TestDriftTimerFiresInDriftTime(t *testing.T) {
	base := NewSim()
	fast := NewDrift(base, 2.0)
	ch, _ := fast.After(10 * time.Second)
	// 10s of drift time is 5s of base time.
	base.Advance(4 * time.Second)
	select {
	case <-ch:
		t.Fatal("fast-clock timer fired before its drift-time deadline")
	default:
	}
	base.Advance(time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("fast-clock timer did not fire at its drift-time deadline")
	}
}

func TestDriftRejectsNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDrift(0) did not panic")
		}
	}()
	NewDrift(NewSim(), 0)
}

func TestSkewOffsetsReadings(t *testing.T) {
	base := NewSim()
	ahead := NewSkew(base, 3*time.Second)
	behind := NewSkew(base, -3*time.Second)
	if got, want := ahead.Now(), Epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("ahead skew reads %v, want %v", got, want)
	}
	if got, want := behind.Now(), Epoch.Add(-3*time.Second); !got.Equal(want) {
		t.Fatalf("behind skew reads %v, want %v", got, want)
	}
	if ahead.Offset() != 3*time.Second {
		t.Fatalf("Offset() = %v, want 3s", ahead.Offset())
	}
}

func TestSkewDurationsUnaffected(t *testing.T) {
	base := NewSim()
	skewed := NewSkew(base, time.Hour)
	ch, _ := skewed.After(time.Second)
	base.Advance(time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("skewed timer did not fire after base advanced by the duration")
	}
}

// Property: for any sequence of advances, Sim time is the sum of the
// advances and never decreases.
func TestSimAdvanceSumProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		s := NewSim()
		var total time.Duration
		prev := s.Now()
		for _, st := range steps {
			d := time.Duration(st) * time.Millisecond
			s.Advance(d)
			total += d
			now := s.Now()
			if now.Before(prev) {
				return false
			}
			prev = now
		}
		return s.Now().Equal(Epoch.Add(total))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a Drift clock composed with its reciprocal rate tracks the
// base clock to within rounding error.
func TestDriftReciprocalProperty(t *testing.T) {
	f := func(rateCenti uint8, advanceMS uint16) bool {
		rate := 0.5 + float64(rateCenti)/100.0 // 0.50 .. 3.05
		base := NewSim()
		d := NewDrift(base, rate)
		inv := NewDrift(d, 1/rate)
		base.Advance(time.Duration(advanceMS) * time.Millisecond)
		diff := inv.Now().Sub(base.Now())
		if diff < 0 {
			diff = -diff
		}
		return diff < time.Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: skew offset is exactly preserved across arbitrary advances.
func TestSkewInvariantProperty(t *testing.T) {
	f := func(offsetMS int16, advances []uint8) bool {
		base := NewSim()
		sk := NewSkew(base, time.Duration(offsetMS)*time.Millisecond)
		for _, a := range advances {
			base.Advance(time.Duration(a) * time.Millisecond)
			if sk.Now().Sub(base.Now()) != time.Duration(offsetMS)*time.Millisecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
