package faultnet

import (
	"sort"
	"time"

	"leases/internal/clock"
	"leases/internal/obs"
)

// Action is one scripted fault: at offset At from the schedule's start,
// Do runs (e.g. partition the proxy, kill the server, crash a client).
type Action struct {
	At   time.Duration
	Name string
	Do   func()
}

// Schedule is a scriptable fault timeline: a sorted list of actions
// replayed against live components. Together with the proxy's seeded
// RNGs it makes a failure scenario — "at t=2s partition client A for
// 5s; at t=10s kill the server for 3s" — reproducible: the same
// schedule and seed yield the same fault pattern every run.
type Schedule struct {
	actions []Action
	obs     *obs.Observer
}

// NewSchedule returns an empty schedule. o may be nil; when set, every
// fired action is recorded as a fault-inject event named after the
// action.
func NewSchedule(o *obs.Observer) *Schedule {
	return &Schedule{obs: o}
}

// At appends an action and returns the schedule for chaining.
func (s *Schedule) At(offset time.Duration, name string, do func()) *Schedule {
	s.actions = append(s.actions, Action{At: offset, Name: name, Do: do})
	return s
}

// Len reports the number of scheduled actions.
func (s *Schedule) Len() int { return len(s.actions) }

// Run fires the actions in offset order, sleeping on clk between them,
// until done or stop closes. It blocks; callers wanting a background
// timeline run it in a goroutine.
func (s *Schedule) Run(clk clock.Clock, stop <-chan struct{}) {
	acts := make([]Action, len(s.actions))
	copy(acts, s.actions)
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].At < acts[j].At })
	start := clk.Now()
	for _, a := range acts {
		wait := a.At - clk.Now().Sub(start)
		if wait > 0 {
			ch, stopTimer := clk.After(wait)
			select {
			case <-stop:
				stopTimer()
				return
			case <-ch:
			}
		} else {
			select {
			case <-stop:
				return
			default:
			}
		}
		if s.obs.Enabled() {
			s.obs.Record(obs.Event{Type: obs.EvFaultInject, Client: a.Name})
		}
		a.Do()
	}
}
