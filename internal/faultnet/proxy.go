package faultnet

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"leases/internal/obs"
)

// ProxyConfig parameterizes a Proxy.
type ProxyConfig struct {
	// Listen is the address the proxy accepts client connections on.
	// Empty means an ephemeral loopback port ("127.0.0.1:0").
	Listen string
	// Target is the server address the proxy forwards to. Required.
	Target string
	// Seed makes the probabilistic faults (drops, jitter) reproducible:
	// each accepted connection derives its two pump RNGs from Seed and
	// the connection's accept sequence number, so a re-run with the
	// same seed and the same connection order rolls the same dice.
	Seed int64
	// Up and Down are the initial per-direction fault configs
	// (client→server and server→client).
	Up, Down LinkConfig
	// DialTimeout bounds the proxy's own dial to Target. Zero means 5s.
	DialTimeout time.Duration
	// Obs, when non-nil, receives a fault-inject event for every fault
	// the proxy applies (drops, severs, partitions, refused conns).
	Obs *obs.Observer
}

// Proxy is a fault-injecting TCP forwarder. Clients dial Addr; the
// proxy dials Target and pumps bytes both ways, applying the current
// LinkConfig of each direction per forwarded chunk. Faults can be
// reconfigured at any time (typically from a Schedule), so a scenario
// script can partition, heal, throttle and sever a live deployment
// deterministically.
type Proxy struct {
	target      string
	ln          net.Listener
	dialTimeout time.Duration
	obs         *obs.Observer
	seed        int64

	mu          sync.Mutex
	up, down    LinkConfig
	partitioned bool
	closed      bool
	connSeq     int64
	conns       map[net.Conn]struct{} // both legs of every live pipe

	wg sync.WaitGroup
}

// NewProxy starts a proxy forwarding to cfg.Target.
func NewProxy(cfg ProxyConfig) (*Proxy, error) {
	listen := cfg.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	p := &Proxy{
		target:      cfg.Target,
		ln:          ln,
		dialTimeout: cfg.DialTimeout,
		obs:         cfg.Obs,
		seed:        cfg.Seed,
		up:          cfg.Up,
		down:        cfg.Down,
		conns:       make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// record files one fault event, when observing.
func (p *Proxy) record(label string) {
	if p.obs.Enabled() {
		p.obs.Record(obs.Event{Type: obs.EvFaultInject, Client: label})
	}
}

// SetLink replaces one direction's fault config.
func (p *Proxy) SetLink(dir Dir, lc LinkConfig) {
	p.mu.Lock()
	if dir == Up {
		p.up = lc
	} else {
		p.down = lc
	}
	p.mu.Unlock()
}

// SetBoth replaces both directions' fault configs.
func (p *Proxy) SetBoth(lc LinkConfig) {
	p.mu.Lock()
	p.up, p.down = lc, lc
	p.mu.Unlock()
}

func (p *Proxy) link(dir Dir) LinkConfig {
	p.mu.Lock()
	defer p.mu.Unlock()
	if dir == Up {
		return p.up
	}
	return p.down
}

// Partition isolates the client side: new connections are refused and
// every established pipe is severed, until Heal. This is the §5
// communication failure — clients keep their leases but cannot extend
// them, so a conflicting write waits at most the remaining term.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	p.severLocked()
	p.mu.Unlock()
	p.record("partition")
}

// Heal ends a partition; new connections flow again.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
	p.record("heal")
}

// Partitioned reports whether the proxy is currently partitioned.
func (p *Proxy) Partitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned
}

// SeverAll drops every established connection once — a transient storm
// rather than a standing partition; reconnects succeed immediately.
func (p *Proxy) SeverAll() {
	p.mu.Lock()
	p.severLocked()
	p.mu.Unlock()
	p.record("sever-all")
}

func (p *Proxy) severLocked() {
	for nc := range p.conns {
		nc.Close()
	}
}

// ActiveConns reports the number of live client pipes.
func (p *Proxy) ActiveConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns) / 2
}

// Close stops the proxy and severs everything.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.severLocked()
	p.mu.Unlock()
	p.ln.Close()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cc, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed || p.partitioned {
			p.mu.Unlock()
			cc.Close()
			p.record("refuse-conn")
			continue
		}
		seq := p.connSeq
		p.connSeq++
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serve(cc, seq)
	}
}

// serve dials the target and pumps one client pipe until either leg
// fails or a fault severs it.
func (p *Proxy) serve(cc net.Conn, seq int64) {
	defer p.wg.Done()
	sc, err := net.DialTimeout("tcp", p.target, p.dialTimeout)
	if err != nil {
		cc.Close()
		return
	}
	p.mu.Lock()
	if p.closed || p.partitioned {
		p.mu.Unlock()
		cc.Close()
		sc.Close()
		return
	}
	p.conns[cc] = struct{}{}
	p.conns[sc] = struct{}{}
	p.mu.Unlock()

	// Each pump direction gets its own RNG derived from the proxy seed
	// and the connection's accept order, so fault patterns replay.
	var wg sync.WaitGroup
	wg.Add(2)
	go p.pump(&wg, cc, sc, Up, rand.New(rand.NewSource(p.seed^(seq*2+1))))
	go p.pump(&wg, sc, cc, Down, rand.New(rand.NewSource(p.seed^(seq*2+2))))
	wg.Wait()

	cc.Close()
	sc.Close()
	p.mu.Lock()
	delete(p.conns, cc)
	delete(p.conns, sc)
	p.mu.Unlock()
}

// pump forwards one direction chunk by chunk, applying the direction's
// current fault config to each chunk. Injected latency is
// stream-granular: a delayed chunk delays everything queued behind it,
// which is how latency on a single TCP connection actually behaves.
func (p *Proxy) pump(wg *sync.WaitGroup, src, dst net.Conn, dir Dir, rng *rand.Rand) {
	defer wg.Done()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			lc := p.link(dir)
			if lc.drop(rng) {
				p.record("drop-" + dir.String())
				src.Close()
				dst.Close()
				return
			}
			if d := lc.delay(rng, n); d > 0 {
				time.Sleep(d)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				src.Close()
				return
			}
		}
		if err != nil {
			// Half-close so in-flight replies on the other direction
			// still drain, as a real TCP FIN would allow.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			} else {
				dst.Close()
			}
			return
		}
	}
}
