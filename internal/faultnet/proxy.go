package faultnet

import (
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"leases/internal/obs"
)

// ProxyConfig parameterizes a Proxy.
type ProxyConfig struct {
	// Listen is the address the proxy accepts client connections on.
	// Empty means an ephemeral loopback port ("127.0.0.1:0").
	Listen string
	// Target is the server address the proxy forwards to. Required.
	Target string
	// Seed makes the probabilistic faults (drops, jitter) reproducible:
	// each accepted connection derives its two pump RNGs from Seed and
	// the connection's accept sequence number, so a re-run with the
	// same seed and the same connection order rolls the same dice.
	Seed int64
	// Up and Down are the initial per-direction fault configs
	// (client→server and server→client).
	Up, Down LinkConfig
	// DialTimeout bounds the proxy's own dial to Target. Zero means 5s.
	DialTimeout time.Duration
	// Obs, when non-nil, receives a fault-inject event for every fault
	// the proxy applies (drops, severs, partitions, refused conns).
	Obs *obs.Observer
}

// Proxy is a fault-injecting TCP forwarder. Clients dial Addr; the
// proxy dials Target and pumps bytes both ways, applying the current
// LinkConfig of each direction per forwarded chunk. Faults can be
// reconfigured at any time (typically from a Schedule), so a scenario
// script can partition, heal, throttle and sever a live deployment
// deterministically.
type Proxy struct {
	target      string
	ln          net.Listener
	dialTimeout time.Duration
	obs         *obs.Observer
	seed        int64

	mu          sync.Mutex
	up, down    LinkConfig
	partitioned bool
	oneway      [2]bool // per-Dir asymmetric partition (frames held, not severed)
	closed      bool
	connSeq     int64
	conns       map[net.Conn]struct{}   // both legs of every live pipe
	pumps       map[*pumpState]struct{} // one per live pump direction

	wg sync.WaitGroup
}

// pumpState is the deliverable end of one pump direction. While its
// direction is asymmetrically partitioned, forwarded chunks accumulate
// in buf instead of reaching dst; Heal flushes them in arrival order.
type pumpState struct {
	seq int64
	dir Dir
	dst net.Conn

	mu   sync.Mutex
	held bool
	buf  []byte
}

// deliver forwards one chunk, or buffers it while the direction is
// held. Any backlog flushes first so bytes never reorder.
func (ps *pumpState) deliver(chunk []byte) error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.held {
		ps.buf = append(ps.buf, chunk...)
		return nil
	}
	if len(ps.buf) > 0 {
		if _, err := ps.dst.Write(ps.buf); err != nil {
			return err
		}
		ps.buf = nil
	}
	_, err := ps.dst.Write(chunk)
	return err
}

// release ends the hold and drains the backlog to dst.
func (ps *pumpState) release() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.held = false
	if len(ps.buf) > 0 {
		ps.dst.Write(ps.buf)
		ps.buf = nil
	}
}

func (ps *pumpState) hold() {
	ps.mu.Lock()
	ps.held = true
	ps.mu.Unlock()
}

// NewProxy starts a proxy forwarding to cfg.Target.
func NewProxy(cfg ProxyConfig) (*Proxy, error) {
	listen := cfg.Listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	p := &Proxy{
		target:      cfg.Target,
		ln:          ln,
		dialTimeout: cfg.DialTimeout,
		obs:         cfg.Obs,
		seed:        cfg.Seed,
		up:          cfg.Up,
		down:        cfg.Down,
		conns:       make(map[net.Conn]struct{}),
		pumps:       make(map[*pumpState]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// record files one fault event, when observing.
func (p *Proxy) record(label string) {
	if p.obs.Enabled() {
		p.obs.Record(obs.Event{Type: obs.EvFaultInject, Client: label})
	}
}

// SetLink replaces one direction's fault config.
func (p *Proxy) SetLink(dir Dir, lc LinkConfig) {
	p.mu.Lock()
	if dir == Up {
		p.up = lc
	} else {
		p.down = lc
	}
	p.mu.Unlock()
}

// SetBoth replaces both directions' fault configs.
func (p *Proxy) SetBoth(lc LinkConfig) {
	p.mu.Lock()
	p.up, p.down = lc, lc
	p.mu.Unlock()
}

func (p *Proxy) link(dir Dir) LinkConfig {
	p.mu.Lock()
	defer p.mu.Unlock()
	if dir == Up {
		return p.up
	}
	return p.down
}

// Partition isolates the client side: new connections are refused and
// every established pipe is severed, until Heal. This is the §5
// communication failure — clients keep their leases but cannot extend
// them, so a conflicting write waits at most the remaining term.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	p.severLocked()
	p.mu.Unlock()
	p.record("partition")
}

// PartitionOneWay installs an asymmetric partition: traffic in dir is
// held at the proxy (buffered, not severed, not delivered) while the
// opposite direction keeps flowing. This is the nastiest §5 failure for
// an election protocol — a master that can hear its peers but cannot
// reach them (or vice versa) must still lose mastership within one
// lease term. New connections are still accepted; their dir-side pump
// starts held.
func (p *Proxy) PartitionOneWay(dir Dir) {
	p.mu.Lock()
	p.oneway[dir] = true
	for ps := range p.pumps {
		if ps.dir == dir {
			ps.hold()
		}
	}
	p.mu.Unlock()
	p.record("partition-oneway-" + dir.String())
}

// Heal ends every partition — symmetric and asymmetric — and flushes
// held in-flight frames deterministically: pumps drain in accept order
// (Up before Down within a connection), each buffer in arrival order,
// all before Heal returns. A replayed schedule therefore delivers the
// delayed bytes at the same point in the run every time.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.oneway = [2]bool{}
	pumps := make([]*pumpState, 0, len(p.pumps))
	for ps := range p.pumps {
		pumps = append(pumps, ps)
	}
	p.mu.Unlock()
	sort.Slice(pumps, func(i, j int) bool {
		if pumps[i].seq != pumps[j].seq {
			return pumps[i].seq < pumps[j].seq
		}
		return pumps[i].dir < pumps[j].dir
	})
	for _, ps := range pumps {
		ps.release()
	}
	p.record("heal")
}

// Partitioned reports whether the proxy is currently partitioned.
func (p *Proxy) Partitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned
}

// SeverAll drops every established connection once — a transient storm
// rather than a standing partition; reconnects succeed immediately.
func (p *Proxy) SeverAll() {
	p.mu.Lock()
	p.severLocked()
	p.mu.Unlock()
	p.record("sever-all")
}

func (p *Proxy) severLocked() {
	for nc := range p.conns {
		nc.Close()
	}
}

// ActiveConns reports the number of live client pipes.
func (p *Proxy) ActiveConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns) / 2
}

// Close stops the proxy and severs everything.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.severLocked()
	p.mu.Unlock()
	p.ln.Close()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cc, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed || p.partitioned {
			p.mu.Unlock()
			cc.Close()
			p.record("refuse-conn")
			continue
		}
		seq := p.connSeq
		p.connSeq++
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serve(cc, seq)
	}
}

// serve dials the target and pumps one client pipe until either leg
// fails or a fault severs it.
func (p *Proxy) serve(cc net.Conn, seq int64) {
	defer p.wg.Done()
	sc, err := net.DialTimeout("tcp", p.target, p.dialTimeout)
	if err != nil {
		cc.Close()
		return
	}
	p.mu.Lock()
	if p.closed || p.partitioned {
		p.mu.Unlock()
		cc.Close()
		sc.Close()
		return
	}
	p.conns[cc] = struct{}{}
	p.conns[sc] = struct{}{}
	upState := &pumpState{seq: seq, dir: Up, dst: sc, held: p.oneway[Up]}
	downState := &pumpState{seq: seq, dir: Down, dst: cc, held: p.oneway[Down]}
	p.pumps[upState] = struct{}{}
	p.pumps[downState] = struct{}{}
	p.mu.Unlock()

	// Each pump direction gets its own RNG derived from the proxy seed
	// and the connection's accept order, so fault patterns replay.
	var wg sync.WaitGroup
	wg.Add(2)
	go p.pump(&wg, cc, upState, Up, rand.New(rand.NewSource(p.seed^(seq*2+1))))
	go p.pump(&wg, sc, downState, Down, rand.New(rand.NewSource(p.seed^(seq*2+2))))
	wg.Wait()

	cc.Close()
	sc.Close()
	p.mu.Lock()
	delete(p.conns, cc)
	delete(p.conns, sc)
	delete(p.pumps, upState)
	delete(p.pumps, downState)
	p.mu.Unlock()
}

// pump forwards one direction chunk by chunk, applying the direction's
// current fault config to each chunk. Injected latency is
// stream-granular: a delayed chunk delays everything queued behind it,
// which is how latency on a single TCP connection actually behaves.
func (p *Proxy) pump(wg *sync.WaitGroup, src net.Conn, ps *pumpState, dir Dir, rng *rand.Rand) {
	defer wg.Done()
	dst := ps.dst
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			lc := p.link(dir)
			if lc.drop(rng) {
				p.record("drop-" + dir.String())
				src.Close()
				dst.Close()
				return
			}
			if d := lc.delay(rng, n); d > 0 {
				time.Sleep(d)
			}
			if werr := ps.deliver(buf[:n]); werr != nil {
				src.Close()
				return
			}
		}
		if err != nil {
			// Half-close so in-flight replies on the other direction
			// still drain, as a real TCP FIN would allow.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			} else {
				dst.Close()
			}
			return
		}
	}
}
