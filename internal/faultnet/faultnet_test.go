package faultnet_test

import (
	"io"
	"net"
	"testing"
	"time"

	"leases/internal/clock"
	"leases/internal/faultnet"
	"leases/internal/obs"
)

// startEcho runs a TCP echo server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String()
}

func roundtrip(t *testing.T, nc net.Conn, msg string) (string, error) {
	t.Helper()
	if _, err := nc.Write([]byte(msg)); err != nil {
		return "", err
	}
	buf := make([]byte, len(msg))
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(nc, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func TestProxyForwardsCleanly(t *testing.T) {
	echo := startEcho(t)
	p, err := faultnet.NewProxy(faultnet.ProxyConfig{Target: echo, Seed: 1})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close()

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer nc.Close()
	got, err := roundtrip(t, nc, "hello through the proxy")
	if err != nil || got != "hello through the proxy" {
		t.Fatalf("roundtrip = %q, %v", got, err)
	}
	if p.ActiveConns() != 1 {
		t.Fatalf("ActiveConns = %d, want 1", p.ActiveConns())
	}
}

func TestProxyPartitionSeversAndRefuses(t *testing.T) {
	echo := startEcho(t)
	o := obs.New(obs.Config{})
	p, err := faultnet.NewProxy(faultnet.ProxyConfig{Target: echo, Seed: 1, Obs: o})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close()

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer nc.Close()
	if _, err := roundtrip(t, nc, "pre"); err != nil {
		t.Fatalf("pre-partition roundtrip: %v", err)
	}

	p.Partition()
	if !p.Partitioned() {
		t.Fatal("Partitioned = false after Partition")
	}
	// The established pipe is severed: the next read fails.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on severed conn succeeded")
	}
	// New connections are refused (accepted then immediately closed, so
	// the client observes an unusable conn).
	nc2, err := net.Dial("tcp", p.Addr())
	if err == nil {
		if _, rerr := roundtrip(t, nc2, "during"); rerr == nil {
			t.Fatal("roundtrip succeeded during partition")
		}
		nc2.Close()
	}

	p.Heal()
	nc3, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	defer nc3.Close()
	if got, err := roundtrip(t, nc3, "post"); err != nil || got != "post" {
		t.Fatalf("post-heal roundtrip = %q, %v", got, err)
	}

	// The partition and heal were recorded as fault events.
	var labels []string
	for _, ev := range o.Events(0) {
		if ev.Type == obs.EvFaultInject {
			labels = append(labels, ev.Client)
		}
	}
	if len(labels) < 2 {
		t.Fatalf("fault-inject events = %v, want partition and heal", labels)
	}
}

// TestProxyPartitionOneWay: an asymmetric partition holds one
// direction's frames at the proxy while the other keeps flowing, and
// Heal flushes the held bytes so delayed traffic arrives — late, in
// order, not lost.
func TestProxyPartitionOneWay(t *testing.T) {
	echo := startEcho(t)
	p, err := faultnet.NewProxy(faultnet.ProxyConfig{Target: echo, Seed: 9})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close()

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer nc.Close()
	if _, err := roundtrip(t, nc, "pre"); err != nil {
		t.Fatalf("pre-partition roundtrip: %v", err)
	}

	// Hold client→server: the write is swallowed by the proxy, so no
	// echo comes back, but the connection is NOT severed.
	p.PartitionOneWay(faultnet.Up)
	if _, err := nc.Write([]byte("held")); err != nil {
		t.Fatalf("write during one-way partition: %v", err)
	}
	buf := make([]byte, 4)
	nc.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if n, err := nc.Read(buf); err == nil {
		t.Fatalf("read got %q during up-partition, want timeout", buf[:n])
	}

	// Heal flushes the held frame; the echo finally arrives, intact.
	p.Heal()
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(nc, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if string(buf) != "held" {
		t.Fatalf("flushed frame = %q, want %q", buf, "held")
	}

	// The reverse asymmetry: requests reach the server, replies hang.
	p.PartitionOneWay(faultnet.Down)
	if _, err := nc.Write([]byte("down")); err != nil {
		t.Fatalf("write during down-partition: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if n, err := nc.Read(buf); err == nil {
		t.Fatalf("read got %q during down-partition, want timeout", buf[:n])
	}
	p.Heal()
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(nc, buf); err != nil {
		t.Fatalf("read after second heal: %v", err)
	}
	if string(buf) != "down" {
		t.Fatalf("flushed reply = %q, want %q", buf, "down")
	}
}

func TestProxyProbabilisticDropSevers(t *testing.T) {
	echo := startEcho(t)
	p, err := faultnet.NewProxy(faultnet.ProxyConfig{
		Target: echo, Seed: 42,
		Up: faultnet.LinkConfig{DropProb: 1}, // every chunk severs
	})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close()

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer nc.Close()
	if _, err := roundtrip(t, nc, "doomed"); err == nil {
		t.Fatal("roundtrip survived DropProb=1")
	}
}

func TestProxyInjectsLatency(t *testing.T) {
	echo := startEcho(t)
	const lat = 50 * time.Millisecond
	p, err := faultnet.NewProxy(faultnet.ProxyConfig{
		Target: echo, Seed: 7,
		Up: faultnet.LinkConfig{Latency: lat},
	})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close()

	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer nc.Close()
	start := time.Now()
	if _, err := roundtrip(t, nc, "slow"); err != nil {
		t.Fatalf("roundtrip: %v", err)
	}
	if el := time.Since(start); el < lat {
		t.Fatalf("roundtrip took %v, want ≥ %v injected latency", el, lat)
	}
}

func TestWrapAppliesFaults(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	w := faultnet.Wrap(a, 3, faultnet.LinkConfig{}, faultnet.LinkConfig{DropProb: 1}, nil)
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write survived DropProb=1")
	}
	// The underlying conn was closed by the injected drop.
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("underlying conn still open after drop")
	}
}

func TestScheduleFiresInOrderAndStops(t *testing.T) {
	clk := clock.NewSim()
	var fired []string
	stop := make(chan struct{})
	s := faultnet.NewSchedule(nil).
		At(2*time.Second, "second", func() { fired = append(fired, "second") }).
		At(1*time.Second, "first", func() { fired = append(fired, "first") }).
		At(10*time.Second, "never", func() { fired = append(fired, "never") })
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Run(clk, stop)
	}()
	waitTimers := func(n int) {
		for i := 0; i < 200 && clk.PendingTimers() < n; i++ {
			time.Sleep(time.Millisecond)
		}
	}
	waitTimers(1)
	clk.Advance(1 * time.Second) // fires "first"
	waitTimers(1)
	clk.Advance(1 * time.Second) // fires "second"
	waitTimers(1)
	close(stop)
	<-done
	if len(fired) != 2 || fired[0] != "first" || fired[1] != "second" {
		t.Fatalf("fired = %v, want [first second]", fired)
	}
}
