// Package faultnet injects deterministic, seeded faults into real TCP
// connections, so the §5 failure schedules the simulators replay
// (internal/netsim loss, partitions, crashes) can also be thrown at the
// live deployment (internal/server, internal/client).
//
// Two entry points share one fault vocabulary (LinkConfig):
//
//   - Proxy: a TCP forwarder that sits between clients and a server,
//     injecting per-direction latency (fixed + jitter), probabilistic
//     and scripted connection severs, partitions (refuse new
//     connections and sever established ones) and bandwidth
//     throttling. The peers run unmodified — faults happen on the
//     wire, exactly where the paper's §5 failure analysis places them.
//   - Wrap: an in-process net.Conn wrapper applying the same link
//     faults without a proxy hop, for tests that own both conn ends.
//
// All randomness flows from caller-supplied seeds: the same seed and
// the same Schedule reproduce the same fault pattern, which is what
// makes a chaos run (cmd/leasechaos) a regression test rather than a
// dice roll. TCP is a byte stream, so "message loss" cannot be injected
// without corrupting framing; faultnet instead severs the connection
// (the failure a lost TCP segment escalates to after retries) and
// leaves recovery to the client session layer — the paper's point is
// precisely that any such non-Byzantine failure costs bounded delay,
// never inconsistency.
package faultnet

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"leases/internal/obs"
)

// Dir selects a fault direction through a Proxy.
type Dir int

// Proxy directions.
const (
	// Up is client→server traffic.
	Up Dir = iota
	// Down is server→client traffic.
	Down
)

// String names the direction for fault events.
func (d Dir) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// LinkConfig describes the faults injected on one direction of a link.
// The zero value is a clean link.
type LinkConfig struct {
	// Latency is a fixed delay added to every forwarded chunk.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) on top of
	// Latency, drawn from the link's seeded RNG.
	Jitter time.Duration
	// DropProb severs the connection with this probability per
	// forwarded chunk — the TCP-stream analogue of message loss (a
	// lease-protocol message whose connection died is a message that
	// never arrived).
	DropProb float64
	// Bandwidth throttles the link to this many bytes per second;
	// zero means unlimited.
	Bandwidth int64
}

// delay computes the injected delay for forwarding n bytes: fixed
// latency, seeded jitter, and the serialization time the configured
// bandwidth implies.
func (lc LinkConfig) delay(rng *rand.Rand, n int) time.Duration {
	d := lc.Latency
	if lc.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(lc.Jitter)))
	}
	if lc.Bandwidth > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / lc.Bandwidth)
	}
	return d
}

// drop reports whether this chunk's forwarding should sever the
// connection.
func (lc LinkConfig) drop(rng *rand.Rand) bool {
	return lc.DropProb > 0 && rng.Float64() < lc.DropProb
}

// Conn wraps a net.Conn with link faults for in-process use: the
// Transport-level counterpart of the Proxy for tests that hold both
// ends of a pipe. Read and write faults are configured independently
// and may be swapped mid-flight; an injected drop closes the underlying
// connection, so both peers observe the failure the way they would a
// severed TCP session.
type Conn struct {
	net.Conn

	mu    sync.Mutex
	rng   *rand.Rand
	read  LinkConfig
	write LinkConfig
	obs   *obs.Observer
}

// Wrap returns nc with seeded link faults applied to reads and writes.
// o may be nil; when set, injected drops are recorded as fault-inject
// events.
func Wrap(nc net.Conn, seed int64, read, write LinkConfig, o *obs.Observer) *Conn {
	return &Conn{
		Conn:  nc,
		rng:   rand.New(rand.NewSource(seed)),
		read:  read,
		write: write,
		obs:   o,
	}
}

// SetRead replaces the read-side fault config.
func (c *Conn) SetRead(lc LinkConfig) {
	c.mu.Lock()
	c.read = lc
	c.mu.Unlock()
}

// SetWrite replaces the write-side fault config.
func (c *Conn) SetWrite(lc LinkConfig) {
	c.mu.Lock()
	c.write = lc
	c.mu.Unlock()
}

// apply rolls the link's dice for one chunk: it sleeps out any injected
// delay and reports whether the connection must be severed instead.
func (c *Conn) apply(lc LinkConfig, n int, side string) bool {
	c.mu.Lock()
	dropped := lc.drop(c.rng)
	var d time.Duration
	if !dropped {
		d = lc.delay(c.rng, n)
	}
	c.mu.Unlock()
	if dropped {
		if c.obs.Enabled() {
			c.obs.Record(obs.Event{Type: obs.EvFaultInject, Client: "wrap:drop-" + side})
		}
		return true
	}
	if d > 0 {
		time.Sleep(d)
	}
	return false
}

// Read implements net.Conn with read-side faults.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	lc := c.read
	c.mu.Unlock()
	n, err := c.Conn.Read(p)
	if n > 0 && c.apply(lc, n, "read") {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	return n, err
}

// Write implements net.Conn with write-side faults.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	lc := c.write
	c.mu.Unlock()
	if c.apply(lc, len(p), "write") {
		c.Conn.Close()
		return 0, net.ErrClosed
	}
	return c.Conn.Write(p)
}
