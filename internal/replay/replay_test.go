package replay_test

import (
	"net"
	"testing"
	"time"

	"leases/internal/replay"
	"leases/internal/server"
	"leases/internal/trace"
)

func startServer(t *testing.T, term time.Duration) string {
	t.Helper()
	s := server.New(server.Config{Term: term, WriteTimeout: 5 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan struct{})
	go func() { defer close(done); s.Serve(ln) }()
	t.Cleanup(func() { s.Stop(); <-done })
	return ln.Addr().String()
}

func smallTrace(seed int64) *trace.Trace {
	return trace.Poisson(trace.PoissonConfig{
		Seed: seed, Duration: 2 * time.Minute, Clients: 3, Files: 4,
		ReadRate: 1.2, WriteRate: 0.1,
	})
}

func TestReplayAgainstRealServer(t *testing.T) {
	addr := startServer(t, 30*time.Second)
	tr := smallTrace(1)
	if err := replay.Prepare(addr, tr); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	res, err := replay.Run(replay.Config{
		Addr: addr, Trace: tr, Speedup: 120,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d operation errors", res.Errors)
	}
	if res.Ops == 0 || res.Reads == 0 {
		t.Fatalf("nothing replayed: %+v", res)
	}
	// With a 30 s real-time term and compressed gaps, most reads hit.
	hitRate := float64(res.ReadHits) / float64(res.Reads)
	if hitRate < 0.5 {
		t.Fatalf("hit rate %.2f under a long term — leases not working over TCP", hitRate)
	}
}

// The real stack must show the same ordering the simulator shows: a
// longer term yields a higher hit rate than a zero term.
func TestReplayTermOrdering(t *testing.T) {
	tr := smallTrace(2)

	run := func(term time.Duration) float64 {
		addr := startServer(t, term)
		if err := replay.Prepare(addr, tr); err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		res, err := replay.Run(replay.Config{Addr: addr, Trace: tr, Speedup: 240, MaxOps: 150})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.Errors != 0 {
			t.Fatalf("%d errors at term %v", res.Errors, term)
		}
		if res.Reads == 0 {
			return 0
		}
		return float64(res.ReadHits) / float64(res.Reads)
	}

	zero := run(0)
	long := run(time.Minute)
	if zero != 0 {
		t.Fatalf("zero-term hit rate %.2f, want 0", zero)
	}
	if long <= zero {
		t.Fatalf("term ordering violated: hit rate %.2f at 1m vs %.2f at 0", long, zero)
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := replay.Run(replay.Config{}); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := replay.Run(replay.Config{Trace: smallTrace(3), Speedup: -1}); err == nil {
		t.Fatal("negative speedup accepted")
	}
	if _, err := replay.Run(replay.Config{Trace: smallTrace(3), Addr: "127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

func TestSortEventsForDisplay(t *testing.T) {
	events := []trace.Event{
		{At: 2 * time.Second, Client: 1},
		{At: time.Second, Client: 2},
		{At: time.Second, Client: 0},
	}
	out := replay.SortEventsForDisplay(events)
	if out[0].Client != 0 || out[1].Client != 2 || out[2].Client != 1 {
		t.Fatalf("sorted = %+v", out)
	}
	// Input untouched.
	if events[0].Client != 1 {
		t.Fatal("input mutated")
	}
}
