// Package replay drives a workload trace (internal/trace) against a
// live networked lease server (internal/server) over real TCP — the
// bridge between the deterministic simulator and the deployment. The
// same traces that regenerate the paper's figures in simulation can be
// replayed here to sanity-check that the real stack exhibits the same
// behaviour: cache hit rates rising with the term, writes deferred
// behind leases, zero staleness.
//
// Traces are replayed under time compression: a Speedup of 60 replays
// an hour-long trace in a minute. Message timing then differs from the
// simulator's model (real TCP on a real host), so the comparable
// quantities are counts and ratios, not absolute delays.
package replay

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"leases/internal/client"
	"leases/internal/obs/tracing"
	"leases/internal/stats"
	"leases/internal/trace"
	"leases/internal/vfs"
)

// Config parameterizes a replay.
type Config struct {
	// Addr is the server address.
	Addr string
	// Trace is the workload. Required. File indices map to paths
	// "/f<N>" which must exist on the server (Prepare creates them).
	Trace *trace.Trace
	// Speedup divides all trace gaps; 0 means 60.
	Speedup float64
	// Allowance is ε for the client caches.
	Allowance time.Duration
	// MaxOps bounds the number of events replayed (0 = all), for quick
	// smoke runs.
	MaxOps int
	// Depth is the per-client pipeline depth: how many operations one
	// client keeps in flight through the async API (StartRead /
	// StartWrite) before harvesting the oldest. 0 or 1 replays in the
	// classic blocking lock-step. At depth > 1 the client's write
	// coalescer batches the outstanding requests into few syscalls and
	// the per-op latencies become issue-to-harvest times — they include
	// time a completed reply waits in the window, so throughput and hit
	// ratios are the meaningful outputs there, not tail latencies.
	Depth int
	// OpenLoop, when set, ignores the trace's timestamps: each client
	// issues its next operation as soon as its pipeline window has room,
	// measuring the sustainable throughput of the serving path rather
	// than replaying the trace's arrival process. Speedup is ignored.
	OpenLoop bool
	// Tracer, when non-nil, roots a client-side span on every sampled
	// operation; when the server negotiated trace propagation, the
	// context rides the wire so server-side /traces correlates.
	Tracer *tracing.Tracer
}

// Result reports replay measurements.
type Result struct {
	Ops, Reads, Writes int64
	// ReadHits counts reads served from cache under a valid lease.
	ReadHits int64
	// Errors counts failed operations.
	Errors int64
	// ReadLatency and WriteLatency summarize operation times.
	ReadLatency, WriteLatency LatencySummary
	// CachedRead and UncachedRead split ReadLatency by op class: reads
	// served from the local cache under a valid lease versus reads that
	// cost a server round-trip — the two regimes whose gap is the whole
	// point of leasing (§3's consistency-induced delay is exactly the
	// uncached excess).
	CachedRead, UncachedRead LatencySummary
	// WallTime is how long the replay took.
	WallTime time.Duration
	// Stalls counts open-loop issue attempts that found the pipeline
	// window full and had to harvest first — the client-side
	// backpressure signal (the serving path, not the arrival process,
	// was the bottleneck at that moment).
	Stalls int64
}

// LatencySummary is a compact latency digest with exact quantiles
// (nearest-rank over every observation).
type LatencySummary struct {
	Count         int64
	Mean, Max     time.Duration
	P50, P95, P99 time.Duration
}

func summarize(s *stats.DurationSample) LatencySummary {
	return LatencySummary{
		Count: s.Count(), Mean: s.Mean(), Max: s.Max(),
		P50: s.Quantile(0.50), P95: s.Quantile(0.95), P99: s.Quantile(0.99),
	}
}

// PathForFile maps a trace file index to its server path.
func PathForFile(f uint32) string { return fmt.Sprintf("/f%d", f) }

// Prepare creates the trace's files on the server through a temporary
// client connection. Call once before Run against a fresh server.
func Prepare(addr string, tr *trace.Trace) error {
	c, err := client.Dial(addr, client.Config{ID: "replay-prepare"})
	if err != nil {
		return err
	}
	defer c.Close()
	for f := 0; f < tr.Files; f++ {
		if _, err := c.Create(PathForFile(uint32(f)), vfs.DefaultPerm|vfs.WorldWrite); err != nil {
			return fmt.Errorf("creating %s: %w", PathForFile(uint32(f)), err)
		}
		if err := c.Write(PathForFile(uint32(f)), []byte("seed")); err != nil {
			return fmt.Errorf("seeding %s: %w", PathForFile(uint32(f)), err)
		}
	}
	return nil
}

// Run replays the trace. Each trace client gets its own connection and
// goroutine; events fire at their compressed offsets.
func Run(cfg Config) (*Result, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("replay: nil trace")
	}
	if cfg.Speedup == 0 {
		cfg.Speedup = 60
	}
	if cfg.Speedup <= 0 {
		return nil, fmt.Errorf("replay: non-positive speedup")
	}

	// Partition events per client, preserving order.
	perClient := make([][]trace.Event, cfg.Trace.Clients)
	total := 0
	for _, e := range cfg.Trace.Events {
		if cfg.MaxOps > 0 && total >= cfg.MaxOps {
			break
		}
		perClient[e.Client] = append(perClient[e.Client], e)
		total++
	}

	caches := make([]*client.Cache, cfg.Trace.Clients)
	for i := range caches {
		c, err := client.Dial(cfg.Addr, client.Config{
			ID:        fmt.Sprintf("replay-c%d", i),
			Allowance: cfg.Allowance,
			Tracer:    cfg.Tracer,
		})
		if err != nil {
			for _, prev := range caches[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("replay: dialing client %d: %w", i, err)
		}
		caches[i] = c
	}
	defer func() {
		for _, c := range caches {
			c.Close()
		}
	}()

	var (
		errs        stats.Counter
		readLat     stats.DurationSample
		writeLat    stats.DurationSample
		cachedLat   stats.DurationSample
		uncachedLat stats.DurationSample
		reads       stats.Counter
		writes      stats.Counter
		stalls      stats.Counter
		readPayload = []byte("replayed write")
	)
	depth := cfg.Depth
	if depth < 1 {
		depth = 1
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i, events := range perClient {
		if len(events) == 0 {
			continue
		}
		wg.Add(1)
		go func(idx int, events []trace.Event) {
			defer wg.Done()
			c := caches[idx]
			// window holds this client's in-flight operations, oldest
			// first; harvest blocks on the oldest future.
			window := make([]inflightOp, 0, depth)
			harvest := func() {
				op := window[0]
				window = window[1:]
				var err error
				// Latency is measured after Wait returns so it includes
				// the time blocked on the reply: at depth 1 this is the
				// full issue-to-completion round trip, at depth > 1 the
				// issue-to-harvest time (see Config.Depth).
				switch {
				case op.read != nil:
					_, err = op.read.Wait()
					d := time.Since(op.start)
					reads.Inc()
					readLat.Observe(d)
					// The future knows directly whether it was served
					// from cache — no hit-counter delta needed, which
					// also stays exact when several reads are in flight.
					if op.read.Hit() {
						cachedLat.Observe(d)
					} else {
						uncachedLat.Observe(d)
					}
				case op.write != nil:
					err = op.write.Wait()
					writes.Inc()
					writeLat.Observe(time.Since(op.start))
				}
				if err != nil {
					errs.Inc()
				}
			}
			for _, e := range events {
				// Make room before pacing, so a blocking harvest never
				// counts the inter-arrival sleep as operation latency.
				if len(window) >= depth {
					if cfg.OpenLoop {
						stalls.Inc()
					}
					harvest()
				}
				if !cfg.OpenLoop {
					target := start.Add(time.Duration(float64(e.At) / cfg.Speedup))
					if d := time.Until(target); d > 0 {
						time.Sleep(d)
					}
				}
				path := PathForFile(e.File)
				op := inflightOp{start: time.Now()}
				switch e.Op {
				case trace.OpRead:
					op.read = c.StartRead(path)
				case trace.OpWrite:
					op.write = c.StartWrite(path, readPayload)
				default:
					continue
				}
				window = append(window, op)
			}
			for len(window) > 0 {
				harvest()
			}
		}(i, events)
	}
	wg.Wait()

	var hits int64
	for _, c := range caches {
		m := c.Metrics()
		hits += m.ReadHits
	}
	return &Result{
		Ops:          reads.Value() + writes.Value(),
		Reads:        reads.Value(),
		Writes:       writes.Value(),
		ReadHits:     hits,
		Errors:       errs.Value(),
		ReadLatency:  summarize(&readLat),
		WriteLatency: summarize(&writeLat),
		CachedRead:   summarize(&cachedLat),
		UncachedRead: summarize(&uncachedLat),
		WallTime:     time.Since(start),
		Stalls:       stalls.Value(),
	}, nil
}

// inflightOp is one issued-but-unharvested operation in a client's
// pipeline window: exactly one of read/write is set.
type inflightOp struct {
	start time.Time
	read  *client.ReadCall
	write *client.WriteCall
}

// SortEventsForDisplay orders a copy of events by time then client, for
// debugging dumps.
func SortEventsForDisplay(events []trace.Event) []trace.Event {
	out := make([]trace.Event, len(events))
	copy(out, events)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Client < out[j].Client
	})
	return out
}
