package proto

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
)

// TestAppendFrameRoundTrip pins the in-place encoders against the
// original writer: a frame built with BeginFrame/FinishFrame (or
// AppendFrame) must be byte-identical to WriteFrame's output.
func TestAppendFrameRoundTrip(t *testing.T) {
	f := Frame{Type: TReadRep, ReqID: 42, Payload: []byte("hello world")}
	var direct bytes.Buffer
	if err := WriteFrame(&direct, f); err != nil {
		t.Fatal(err)
	}
	appended, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), appended) {
		t.Fatalf("AppendFrame bytes differ from WriteFrame:\n%x\n%x", appended, direct.Bytes())
	}

	buf := BeginFrame(nil, f.Type, f.ReqID)
	e := EncOn(buf)
	e.Blob(nil) // arbitrary payload built through the encoder
	buf = e.Bytes()
	if err := FinishFrame(buf, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != f.Type || got.ReqID != f.ReqID {
		t.Fatalf("decoded type=%d reqID=%d, want %d/%d", got.Type, got.ReqID, f.Type, f.ReqID)
	}
}

// TestFinishFrameTooBig: a payload over MaxFrame must be rejected when
// the length prefix is patched.
func TestFinishFrameTooBig(t *testing.T) {
	buf := BeginFrame(nil, TWrite, 1)
	buf = append(buf, make([]byte, MaxFrame+1)...)
	if err := FinishFrame(buf, 0); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("FinishFrame err = %v, want ErrFrameTooBig", err)
	}
}

// chunkWriter records every Write call — the flush syscalls a coalesced
// connection would issue. When gated, each Write announces itself on
// entered and then blocks until a gate tick, so tests can sequence
// appends against an in-flight flush deterministically.
type chunkWriter struct {
	mu      sync.Mutex
	chunks  [][]byte
	gate    chan struct{} // when non-nil, each Write blocks until a tick
	entered chan struct{} // when non-nil, each Write signals entry first
	err     error
}

func (w *chunkWriter) Write(p []byte) (int, error) {
	if w.entered != nil {
		w.entered <- struct{}{}
	}
	if w.gate != nil {
		<-w.gate
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	w.chunks = append(w.chunks, append([]byte(nil), p...))
	return len(p), nil
}

func (w *chunkWriter) all() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []byte
	for _, c := range w.chunks {
		out = append(out, c...)
	}
	return out
}

func (w *chunkWriter) count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.chunks)
}

// TestCoalescerBatches: frames appended while a flush is blocked must
// go out together in the next flush — the group-commit effect.
func TestCoalescerBatches(t *testing.T) {
	w := &chunkWriter{gate: make(chan struct{}), entered: make(chan struct{})}
	c := NewCoalescer(w)
	var framesFlushed atomic.Int64
	c.OnFlush = func(frames, bytes int) { framesFlushed.Add(int64(frames)) }

	// The first append wins leadership and writes inline, blocking on
	// the gate, so it runs on its own goroutine.
	leaderDone := make(chan bool, 1)
	go func() { leaderDone <- c.AppendPayload(TOK, 1, nil) }()
	<-w.entered // leader holds frame 1, stuck in Write
	// Pile up more frames while the leader is stuck; these see the
	// flush in progress and return without I/O.
	for id := uint64(2); id <= 10; id++ {
		if !c.AppendPayload(TOK, id, []byte("x")) {
			t.Fatalf("append %d failed", id)
		}
	}
	w.gate <- struct{}{} // release first flush
	<-w.entered          // leader's second flush: the batched 9
	w.gate <- struct{}{}
	if !<-leaderDone {
		t.Fatal("append 1 failed")
	}
	c.Close()

	if got := w.count(); got != 2 {
		t.Fatalf("flush syscalls = %d, want 2 (1 leader + 1 batch)", got)
	}
	if got := framesFlushed.Load(); got != 10 {
		t.Fatalf("frames flushed = %d, want 10", got)
	}
	// The concatenated stream must decode as the ten frames in order.
	r := bytes.NewReader(w.all())
	for id := uint64(1); id <= 10; id++ {
		f, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("decoding frame %d: %v", id, err)
		}
		if f.ReqID != id {
			t.Fatalf("frame order broken: got reqID %d, want %d", f.ReqID, id)
		}
		f.Recycle()
	}
}

// TestCoalescerCloseDrains: a Close racing an in-flight flush must wait
// for the leader to finish draining, so every appended frame reaches
// the wire before Close returns.
func TestCoalescerCloseDrains(t *testing.T) {
	w := &chunkWriter{gate: make(chan struct{}), entered: make(chan struct{})}
	c := NewCoalescer(w)
	go c.AppendPayload(TOK, 1, nil) // leader, stuck in the gated Write
	<-w.entered
	for id := uint64(2); id <= 5; id++ {
		c.AppendPayload(TOK, id, nil) // pend behind the stuck leader
	}
	closed := make(chan struct{})
	go func() { c.Close(); close(closed) }()
	w.gate <- struct{}{} // frame 1 lands
	<-w.entered          // leader flushing the batched 2..5
	w.gate <- struct{}{}
	<-closed
	r := bytes.NewReader(w.all())
	for id := uint64(1); id <= 5; id++ {
		f, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", id, err)
		}
		f.Recycle()
	}
	if c.AppendPayload(TOK, 6, nil) {
		t.Fatal("append after Close should report failure")
	}
}

// TestCoalescerWriteError: a failing transport must surface through
// Err/OnError, fail subsequent appends, and never deadlock Close.
func TestCoalescerWriteError(t *testing.T) {
	w := &chunkWriter{err: fmt.Errorf("boom")}
	c := NewCoalescer(w)
	errCh := make(chan error, 1)
	c.OnError = func(err error) { errCh <- err }
	c.AppendPayload(TOK, 1, nil)
	if err := <-errCh; err == nil {
		t.Fatal("OnError got nil")
	}
	// The error is recorded before OnError fires.
	if c.Err() == nil {
		t.Fatal("Err() not set after failed flush")
	}
	if c.AppendPayload(TOK, 2, nil) {
		t.Fatal("append succeeded after transport failure")
	}
	c.Close()
}

// TestCoalescerBackpressure: an appender exceeding MaxPending must
// block until the flusher drains, and OnStall must fire.
func TestCoalescerBackpressure(t *testing.T) {
	w := &chunkWriter{gate: make(chan struct{}), entered: make(chan struct{}, 64)}
	c := NewCoalescer(w)
	stallCh := make(chan int, 1)
	c.OnStall = func(depth int) {
		select {
		case stallCh <- depth:
		default:
		}
	}

	big := make([]byte, 1<<20)
	go c.AppendPayload(TWrite, 0, big) // leader, stuck in a gated Write
	<-w.entered
	done := make(chan struct{})
	go func() {
		defer close(done)
		// With the leader stuck, everything below accumulates in
		// pending; crossing MaxPending must stall the appender.
		for i := 1; i <= MaxPending/len(big)+1; i++ {
			if !c.AppendPayload(TWrite, uint64(i), big) {
				return
			}
		}
	}()
	depth := <-stallCh // the appender hit backpressure
	if depth == 0 {
		t.Fatal("stall reported zero queue depth")
	}
	// Drain: release flushes until the appender finishes and the
	// coalescer shuts down.
	quit := make(chan struct{})
	go func() {
		for {
			select {
			case w.gate <- struct{}{}:
			case <-quit:
				return
			}
		}
	}()
	<-done
	c.Close()
	close(quit)
}

// TestCoalescerConcurrentAppend hammers Append from many goroutines —
// the server's reply+push mix — and checks every frame arrives intact
// (run under -race in CI).
func TestCoalescerConcurrentAppend(t *testing.T) {
	w := &chunkWriter{}
	c := NewCoalescer(w)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := uint64(g*per + i + 1)
				if g%2 == 0 {
					c.AppendPayload(TOK, id, []byte("reply"))
				} else {
					c.Append(TApprovalReq, id, func(e *Enc) { e.Str("push") })
				}
			}
		}(g)
	}
	wg.Wait()
	c.Close()

	seen := make(map[uint64]bool)
	r := bytes.NewReader(w.all())
	for {
		f, err := ReadFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("corrupt stream: %v", err)
		}
		if seen[f.ReqID] {
			t.Fatalf("duplicate reqID %d", f.ReqID)
		}
		seen[f.ReqID] = true
		f.Recycle()
	}
	if len(seen) != workers*per {
		t.Fatalf("decoded %d frames, want %d", len(seen), workers*per)
	}
}

// TestFrameReaderBatch: many frames delivered in one read must decode
// without further I/O, and a frame larger than the initial buffer must
// grow it transparently.
func TestFrameReaderBatch(t *testing.T) {
	var wire []byte
	var err error
	for id := uint64(1); id <= 50; id++ {
		wire, err = AppendFrame(wire, Frame{Type: TOK, ReqID: id, Payload: []byte("abc")})
		if err != nil {
			t.Fatal(err)
		}
	}
	big := make([]byte, 64<<10) // outgrows readBufInit
	for i := range big {
		big[i] = byte(i)
	}
	wire, err = AppendFrame(wire, Frame{Type: TReadRep, ReqID: 51, Payload: big})
	if err != nil {
		t.Fatal(err)
	}

	fr := NewFrameReader(&oneShotReader{data: wire})
	for id := uint64(1); id <= 50; id++ {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", id, err)
		}
		if f.ReqID != id || string(f.Payload) != "abc" {
			t.Fatalf("frame %d corrupted: id=%d payload=%q", id, f.ReqID, f.Payload)
		}
		f.Recycle()
	}
	f, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Payload, big) {
		t.Fatal("big frame payload corrupted")
	}
	f.Recycle()
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("trailing Next err = %v, want EOF", err)
	}
}

// TestFrameReaderTruncated: a stream ending mid-frame must report
// ErrTruncated, not a silent EOF.
func TestFrameReaderTruncated(t *testing.T) {
	wire, err := AppendFrame(nil, Frame{Type: TOK, ReqID: 1, Payload: []byte("abcdef")})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(wire); cut++ {
		fr := NewFrameReader(bytes.NewReader(wire[:cut]))
		if _, err := fr.Next(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestFrameReaderShrinks: after an outsized frame drains, the grown
// buffer must be released so idle connections stay small.
func TestFrameReaderShrinks(t *testing.T) {
	big := make([]byte, readBufMax*2)
	wire, err := AppendFrame(nil, Frame{Type: TReadRep, ReqID: 1, Payload: big})
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bytes.NewReader(wire))
	f, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	f.Recycle()
	if cap(fr.buf) > readBufMax {
		t.Fatalf("buffer not shrunk: cap %d > max %d", cap(fr.buf), readBufMax)
	}
}

// oneShotReader returns everything in a single Read — the batched
// delivery a coalesced peer produces.
type oneShotReader struct {
	data []byte
	off  int
}

func (r *oneShotReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
