package proto

import (
	"time"

	"leases/internal/vfs"
)

// InstalledWire is the payload of TInstalledRep: one snapshot of the
// installed-files class (§4.3). Generation changes whenever membership
// changes (promotion or drop-on-write demotion), so a client holding a
// stale snapshot can tell from a TBroadcastExt stamp alone that it must
// refetch. SentAt is the server's clock at encode time; the client
// anchors the covering lease at SentAt + Term − ε, exactly as it does
// for broadcast extensions.
type InstalledWire struct {
	Generation uint64
	Term       time.Duration
	SentAt     time.Time
	Data       []vfs.Datum
}

// installedDatumLen is the encoded size of one member datum.
const installedDatumLen = 1 + 8

// EncodeInstalled appends an installed-class snapshot.
func (e *Enc) EncodeInstalled(w InstalledWire) *Enc {
	e.U64(w.Generation).Dur(w.Term).Time(w.SentAt).U32(uint32(len(w.Data)))
	for _, d := range w.Data {
		e.Datum(d)
	}
	return e
}

// DecodeInstalled reads an installed-class snapshot.
func (d *Dec) DecodeInstalled() InstalledWire {
	w := InstalledWire{
		Generation: d.U64(),
		Term:       d.Dur(),
		SentAt:     d.Time(),
	}
	n := d.U32()
	if d.Err != nil || uint64(n)*installedDatumLen > uint64(len(d.b)) {
		if n != 0 {
			d.Err = ErrTruncated
		}
		return w
	}
	w.Data = make([]vfs.Datum, 0, n)
	for i := uint32(0); i < n; i++ {
		w.Data = append(w.Data, d.Datum())
	}
	return w
}

// BroadcastExtWire is the payload of TBroadcastExt: the periodic O(1)
// renewal of the installed class. A client whose snapshot generation
// matches extends every installed datum it holds; on mismatch it
// refetches the class with TInstalled and, until the fresh snapshot
// arrives, simply stops treating the stale members as covered — safe,
// never stale.
type BroadcastExtWire struct {
	Generation uint64
	Term       time.Duration
	SentAt     time.Time
}

// EncodeBroadcastExt appends a broadcast-extension payload.
func (e *Enc) EncodeBroadcastExt(w BroadcastExtWire) *Enc {
	return e.U64(w.Generation).Dur(w.Term).Time(w.SentAt)
}

// DecodeBroadcastExt reads a broadcast-extension payload.
func (d *Dec) DecodeBroadcastExt() BroadcastExtWire {
	return BroadcastExtWire{
		Generation: d.U64(),
		Term:       d.Dur(),
		SentAt:     d.Time(),
	}
}

// PiggyExtWire is the payload of TPiggyExt: anticipatory extension
// grants appended to the same flush as another reply (§4). The grants
// are unsolicited, so each carries the server's send time as its
// anchor; the client extends only leases it already holds, never
// shortens them, and ignores grants whose version disagrees with its
// copy.
type PiggyExtWire struct {
	SentAt time.Time
	Grants []GrantWire
}

// EncodePiggyExt appends a piggybacked-extension payload.
func (e *Enc) EncodePiggyExt(w PiggyExtWire) *Enc {
	return e.Time(w.SentAt).EncodeGrants(w.Grants)
}

// DecodePiggyExt reads a piggybacked-extension payload.
func (d *Dec) DecodePiggyExt() PiggyExtWire {
	return PiggyExtWire{
		SentAt: d.Time(),
		Grants: d.DecodeGrants(),
	}
}
