package proto

import (
	"bytes"
	"testing"
	"time"

	"leases/internal/obs/tracing"
	"leases/internal/vfs"
)

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must never
// panic, and any frame it accepts must re-encode to a stream that parses
// to the same frame.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, Frame{Type: TRead, ReqID: 42, Payload: []byte("hello")})
	f.Add(seed.Bytes())
	var traced bytes.Buffer
	WriteFrame(&traced, Frame{
		Type:    TWrite,
		ReqID:   7,
		Trace:   tracing.Context{TraceID: 0xdeadbeefcafe, SpanID: 0x0123456789ab, Sampled: true},
		Payload: []byte("traced"),
	})
	f.Add(traced.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{9, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0})
	// Trace flag set but the 17-byte header truncated.
	f.Add([]byte{10, 0, 0, 0, byte(TWrite) | TraceFlag, 1, 0, 0, 0, 0, 0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := WriteFrame(&buf, fr); werr != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", werr)
		}
		fr2, rerr := ReadFrame(&buf)
		if rerr != nil {
			t.Fatalf("re-encoded frame failed to parse: %v", rerr)
		}
		if fr2.Type != fr.Type || fr2.ReqID != fr.ReqID || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("re-encode mismatch: %+v vs %+v", fr2, fr)
		}
		// A valid decoded context must survive the round trip; an
		// invalid one (header present but unsampled) normalizes away
		// rather than resurrecting as valid.
		if fr.Trace.Valid() && fr2.Trace != fr.Trace {
			t.Fatalf("trace context lost: %+v vs %+v", fr2.Trace, fr.Trace)
		}
		if !fr.Trace.Valid() && fr2.Trace.Valid() {
			t.Fatalf("invalid trace context resurrected: %+v", fr2.Trace)
		}
	})
}

// FuzzDec exercises every decoder primitive on arbitrary bytes: no
// panics, and after any error all further reads return zero values.
func FuzzDec(f *testing.F) {
	var e Enc
	e.Attr(attrFixture()).EncodeGrants(nil).Str("x")
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		d.Attr()
		d.DecodeGrants()
		d.DecodeApproval()
		d.Str()
		d.Blob()
		d.Time()
		d.Dur()
		if d.Err != nil {
			if d.U64() != 0 || d.Str() != "" {
				t.Fatal("reads after decode error returned data")
			}
		}
	})
}

func attrFixture() vfs.Attr {
	return vfs.Attr{ID: 7, Name: "f", Size: 3, Owner: "root", Perm: vfs.DefaultPerm, ModTime: time.Unix(1, 0), Version: 2}
}
