package proto

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// FrameReader decodes frames from a transport through a growable
// internal buffer: one Read syscall pulls in as many frames as the
// peer batched (a pipelined client or a coalesced server flush), and
// Next then slices them out without further I/O. The buffer starts
// small, doubles to fit whatever batch or oversized frame arrives, and
// shrinks back after an outsized one so idle connections stay cheap.
//
// Frames returned by Next carry pooled payloads exactly like ReadFrame:
// recycle them once decoded. A FrameReader is not safe for concurrent
// use; it is owned by one read loop.
type FrameReader struct {
	r   io.Reader
	buf []byte
	ro  int // start of unconsumed bytes
	wo  int // end of unconsumed bytes
	// Stats, when non-nil, counts every decoded frame by type and wire
	// size. Cleared by Reset; rebind it after GetReader.
	Stats *WireStats
}

// Read buffer sizing: connections start at readBufInit; the buffer
// doubles as batches or big frames demand, and capacities above
// readBufMax are released after use (and never pooled).
const (
	readBufInit = 4 << 10
	readBufMax  = 256 << 10
)

// NewFrameReader returns a reader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, buf: make([]byte, readBufInit)}
}

// Reset rebinds the reader to a new transport, discarding buffered
// bytes — for reuse across connections (see the reader pool).
func (fr *FrameReader) Reset(r io.Reader) {
	fr.r = r
	fr.ro, fr.wo = 0, 0
	fr.Stats = nil
	if cap(fr.buf) > readBufMax {
		fr.buf = make([]byte, readBufInit)
	}
}

// Buffered reports how many undecoded bytes sit in the buffer — >0
// means Next will return at least a partial frame without a syscall.
func (fr *FrameReader) Buffered() int { return fr.wo - fr.ro }

// fill ensures at least need unconsumed bytes are buffered, growing the
// buffer when a frame outgrows it and compacting leftovers first.
func (fr *FrameReader) fill(need int) error {
	if fr.wo-fr.ro >= need {
		return nil
	}
	if fr.ro > 0 && (fr.ro+need > len(fr.buf) || fr.wo == len(fr.buf)) {
		copy(fr.buf, fr.buf[fr.ro:fr.wo])
		fr.wo -= fr.ro
		fr.ro = 0
	}
	if need > len(fr.buf) {
		size := len(fr.buf)
		for size < need {
			size *= 2
		}
		grown := make([]byte, size)
		copy(grown, fr.buf[fr.ro:fr.wo])
		fr.wo -= fr.ro
		fr.ro = 0
		fr.buf = grown
	}
	for fr.wo-fr.ro < need {
		n, err := fr.r.Read(fr.buf[fr.wo:])
		fr.wo += n
		if err != nil {
			if fr.wo-fr.ro >= need {
				return nil
			}
			return err
		}
	}
	return nil
}

// Next returns the next frame. The payload lives in a pooled buffer;
// call Frame.Recycle once done with it (or don't — see Recycle).
func (fr *FrameReader) Next() (Frame, error) {
	if err := fr.fill(4); err != nil {
		if err == io.EOF && fr.Buffered() > 0 {
			err = fmt.Errorf("%w: %v", ErrTruncated, io.ErrUnexpectedEOF)
		}
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(fr.buf[fr.ro:])
	if n < 9 {
		return Frame{}, ErrTruncated
	}
	if n > MaxFrame+9 {
		return Frame{}, ErrFrameTooBig
	}
	if err := fr.fill(4 + int(n)); err != nil {
		if err == io.EOF {
			err = fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return Frame{}, err
	}
	body := fr.buf[fr.ro+4 : fr.ro+4+int(n)]
	fr.ro += 4 + int(n)
	if fr.ro == fr.wo {
		fr.ro, fr.wo = 0, 0
		if cap(fr.buf) > readBufMax {
			// An outsized frame grew the buffer; release it now that
			// nothing is buffered so idle connections shrink back.
			fr.buf = make([]byte, readBufInit)
		}
	}
	// Copy the payload into a pooled frame buffer: dispatch hands frames
	// to other goroutines while this reader refills the shared buffer.
	bp := getBuf(int(n))
	out := append((*bp)[:0], body...)
	*bp = out
	f, err := parseBody(out)
	if err != nil {
		putBuf(bp)
		return Frame{}, err
	}
	f.pooled = bp
	fr.Stats.CountIn(f.Type, 4+int(n))
	return f, nil
}

// readerPool recycles FrameReaders (and their grown buffers) across
// connections, so a churning accept loop does not re-learn its batch
// size from 4KB every time.
var readerPool = sync.Pool{
	New: func() any { return NewFrameReader(nil) },
}

// GetReader returns a pooled FrameReader bound to r.
func GetReader(r io.Reader) *FrameReader {
	fr := readerPool.Get().(*FrameReader)
	fr.Reset(r)
	return fr
}

// PutReader returns a reader to the pool once its connection is done.
func PutReader(fr *FrameReader) {
	fr.Reset(nil)
	readerPool.Put(fr)
}
