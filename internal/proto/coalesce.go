package proto

import (
	"io"
	"sync"

	"leases/internal/obs/tracing"
)

// Coalescer batches outbound frames for one connection by group commit
// with an inline leader: the appender that finds the coalescer idle
// writes its frame itself — one syscall, no goroutine handoff, exactly
// the blocking path an uncoalesced connection would take — while
// appenders arriving during that write only append encoded bytes under
// a short mutex and return. The leader re-checks the pending buffer
// after each write and carries whatever accumulated in the next one, so
// under load many replies, pushes or pipelined requests cost one write
// syscall instead of one each, and batch size grows exactly when the
// wire is the bottleneck. The transport is any io.Writer, so the same
// coalescer serves the TCP server, the pipelined client, and in-memory
// test pipes.
//
// Because Append can write inline, it must not be called from a
// goroutine that can never block on the transport (the client read
// loop hands approval replies to a helper goroutine for this reason).
//
// Backpressure: when the pending buffer exceeds MaxPending the
// appending goroutine blocks until the leader drains it — the same
// stall a direct per-frame Write against a full socket buffer would
// have produced, so a slow peer still slows its producers instead of
// ballooning memory.
type Coalescer struct {
	w io.Writer

	// OnFlush, when non-nil, observes every flush with the number of
	// frames and bytes it coalesced. Set before the first Append.
	OnFlush func(frames, bytes int)
	// OnStall, when non-nil, observes every backpressure stall with the
	// queue depth (frames pending) that triggered it. Set before the
	// first Append.
	OnStall func(depth int)
	// OnError, when non-nil, runs once when a flush fails (typically
	// closing the transport so the read side notices). Set before the
	// first Append. Hooks run under the leader's flush and must not call
	// Close, which waits for that flush to finish.
	OnError func(error)
	// Stats, when non-nil, counts every appended frame by type and wire
	// size. Set before the first Append.
	Stats *WireStats

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []byte
	frames   int
	spare    []byte // flushed buffer recycled for the next pending swap
	flushing bool   // a leader is draining pending
	closed   bool
	err      error
}

// MaxPending bounds the pending buffer before appenders block. It must
// exceed MaxFrame so a maximal frame can always be enqueued once the
// buffer drains.
const MaxPending = MaxFrame + (1 << 20)

// maxRetainedFlush caps the buffer capacity kept across flushes, so one
// oversized reply does not pin megabytes for an idle connection.
const maxRetainedFlush = 256 << 10

// NewCoalescer returns a coalescer over w. Callers set the On* hooks
// before the first Append and must call Close when done.
func NewCoalescer(w io.Writer) *Coalescer {
	c := &Coalescer{w: w}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Append encodes one frame into the pending buffer: a header via
// BeginFrame, the payload through fill (an encoder appending in place;
// nil means an empty payload), and the patched length prefix. It
// returns false when the coalescer is closed or its transport failed.
// When no flush is in progress the appender becomes the leader and
// writes inline before returning; otherwise it returns immediately and
// the active leader's next batch carries the frame. It may also block
// on backpressure.
func (c *Coalescer) Append(t MsgType, reqID uint64, fill func(*Enc)) bool {
	return c.AppendCtx(t, reqID, tracing.Context{}, fill)
}

// AppendCtx is Append with a trace context: when tc is valid the frame
// carries a trace header (callers only pass a valid tc toward peers
// that negotiated FeatTrace).
func (c *Coalescer) AppendCtx(t MsgType, reqID uint64, tc tracing.Context, fill func(*Enc)) bool {
	c.mu.Lock()
	for len(c.pending) >= MaxPending && !c.closed && c.err == nil {
		if c.OnStall != nil {
			c.OnStall(c.frames)
		}
		c.cond.Wait()
	}
	if c.closed || c.err != nil {
		c.mu.Unlock()
		return false
	}
	start := len(c.pending)
	c.pending = BeginFrameCtx(c.pending, t, reqID, tc)
	if fill != nil {
		e := EncOn(c.pending)
		fill(&e)
		c.pending = e.Bytes()
	}
	if err := FinishFrame(c.pending, start); err != nil {
		c.pending = c.pending[:start]
		c.mu.Unlock()
		return false
	}
	c.Stats.CountOut(t, len(c.pending)-start)
	c.frames++
	if !c.flushing {
		c.flushing = true
		c.flushAsLeader()
	}
	c.mu.Unlock()
	return true
}

// AppendPayload is the one-shot form of Append for callers already
// holding an encoded payload.
func (c *Coalescer) AppendPayload(t MsgType, reqID uint64, payload []byte) bool {
	return c.AppendPayloadCtx(t, reqID, tracing.Context{}, payload)
}

// AppendPayloadCtx is AppendPayload with a trace context (see
// AppendCtx).
func (c *Coalescer) AppendPayloadCtx(t MsgType, reqID uint64, tc tracing.Context, payload []byte) bool {
	if len(payload) == 0 {
		return c.AppendCtx(t, reqID, tc, nil)
	}
	return c.AppendCtx(t, reqID, tc, func(e *Enc) { e.b = append(e.b, payload...) })
}

// Err reports the transport error that stopped the coalescer, if any.
func (c *Coalescer) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close waits out any in-flight flush (which drains everything pending,
// since the leader only steps down on an empty buffer or an error) and
// marks the coalescer dead. Appends after Close are dropped. It is
// idempotent.
func (c *Coalescer) Close() {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast() // release backpressure waiters
	for c.flushing {
		c.cond.Wait()
	}
	// Unreachable in practice — a stepping-down leader leaves pending
	// empty — but cheap insurance that Close never strands frames.
	if len(c.pending) > 0 && c.err == nil {
		c.flushing = true
		c.flushAsLeader()
	}
	c.mu.Unlock()
}

// flushAsLeader drains the pending buffer, one Write per accumulated
// batch, until it is empty or the transport fails. Called with c.mu
// held and c.flushing set; returns with c.mu held and c.flushing
// cleared.
func (c *Coalescer) flushAsLeader() {
	for len(c.pending) > 0 && c.err == nil {
		buf, frames := c.pending, c.frames
		c.pending, c.frames = c.spare[:0], 0
		c.spare = nil
		c.mu.Unlock()

		_, err := c.w.Write(buf)
		if c.OnFlush != nil && err == nil {
			c.OnFlush(frames, len(buf))
		}

		c.mu.Lock()
		if cap(buf) <= maxRetainedFlush {
			c.spare = buf[:0]
		}
		if err != nil {
			// Latch the error (so Err is set before OnError observes it)
			// and drop frames appended during the failed write: they were
			// bound for a dead transport.
			c.err = err
			c.pending = nil
			c.mu.Unlock()
			if c.OnError != nil {
				c.OnError(err)
			}
			c.mu.Lock()
			break
		}
		c.cond.Broadcast() // wake backpressure waiters and Close
	}
	c.flushing = false
	c.cond.Broadcast()
}
