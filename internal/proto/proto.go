// Package proto defines the wire protocol spoken between the networked
// lease file server (internal/server) and its caching clients
// (internal/client).
//
// Framing: every message is
//
//	length  uint32  // bytes after this field
//	type    uint8
//	reqID   uint64  // correlates requests and responses; 0 for pushes
//	payload []byte  // type-specific, encoded little-endian
//
// Client→server messages are requests answered by exactly one response
// carrying the same reqID (a write's response may be delayed while the
// server gathers approvals). Server→client approval requests and
// client→server approvals are one-way pushes with reqID 0 — the lease
// protocol's callback path. All integers are little-endian; strings and
// byte slices are length-prefixed with uint32.
//
// Trace header: a frame whose type byte has TraceFlag (0x80) set
// carries a 17-byte trace context — traceID uint64, spanID uint64,
// flags uint8 — between reqID and the payload, decoded into
// Frame.Trace. The header is feature-negotiated: a peer only sets the
// bit after the hello exchange advertised FeatTrace on both sides
// (THello and THelloAck each end with an optional feature-bits uint64
// that pre-feature decoders ignore as trailing bytes), so old peers
// never see a type byte they can't parse.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"leases/internal/core"
	"leases/internal/obs/tracing"
	"leases/internal/vfs"
)

// MsgType identifies a message.
type MsgType uint8

// Message types.
const (
	// THello introduces a client (payload: client ID string). Answered
	// by THelloAck, whose payload carries the server's boot ID
	// (uint64; absent from servers predating it — decoders treat an
	// empty payload as boot 0). The hello is idempotent: re-sending it
	// on a new connection with the same ID — a client session
	// reconnecting after a fault — replaces the old connection while
	// the server-side lease records, keyed by client ID, survive.
	THello MsgType = iota + 1
	THelloAck
	// TLookup resolves a path (payload: path). Answered by TLookupRep.
	TLookup
	TLookupRep
	// TRead fetches a file (payload: node). Answered by TReadRep with
	// contents, version and a lease.
	TRead
	TReadRep
	// TWrite writes a file through (payload: node, data). Answered by
	// TWriteRep once every conflicting lease is approved or expired.
	TWrite
	TWriteRep
	// TExtend extends leases on a batch of data. Answered by TExtendRep.
	TExtend
	TExtendRep
	// TRelease relinquishes leases (payload: data). Answered by TOK.
	TRelease
	// TReadDir lists a directory (payload: node). Answered by
	// TReadDirRep with entries, version and a lease on the binding.
	TReadDir
	TReadDirRep
	// TCreate / TMkdir / TRemove / TRename mutate bindings. Answered by
	// TCreateRep / TOK; binding writes defer like data writes.
	TCreate
	TCreateRep
	TMkdir
	TRemove
	TRename
	// TStat fetches attributes (payload: node). Answered by TStatRep.
	TStat
	TStatRep
	// TSetPerm changes a node's owner and permissions (payload: node,
	// owner, perm) — a write to the parent directory's binding datum,
	// deferred like any other write. Answered by TOK.
	TSetPerm
	// TApprovalReq is a server push asking the client to approve a
	// write on a datum it holds a lease over.
	TApprovalReq
	// TApprove is the client's push granting approval.
	TApprove
	// TOK is an empty success response.
	TOK
	// TError carries an error string response.
	TError
	// TNotMaster is the reply a non-master replica gives to THello:
	// payload is the listen address of the replica it believes is master
	// (empty when unknown). The client redials against that hint.
	TNotMaster
	// TPrepare / TPromise / TPropose / TAccept carry the PaxosLease
	// master-election rounds between replicas (internal/replica).
	TPrepare
	TPromise
	TPropose
	TAccept
	// TReplApply pushes a committed file write from the master to its
	// peers (payload: seq, path, data); answered by TOK with the same
	// reqID. TReplSync asks a peer for its full replicated file state
	// during a new master's catch-up; TReplSyncRep answers it.
	// TReplMaxTerm replicates a raise of the durable max lease term to a
	// quorum before the grant that caused it is sent.
	TReplApply
	TReplSync
	TReplSyncRep
	TReplMaxTerm
	// TInstalled asks the server for the installed-files class (§4.3):
	// the set of data covered by the client's single directory-granularity
	// lease. Payload: the generation the client already knows (0 for
	// none). Answered by TInstalledRep: generation, term, server send
	// time, and the member datum list. Sent only after both sides
	// advertised FeatClass.
	TInstalled
	TInstalledRep
	// TBroadcastExt is the periodic server push (reqID 0) renewing the
	// installed class for every connected holder: generation, term and
	// the server's send time. O(1) payload regardless of class size — the
	// client extends every installed datum it holds, anchored at the
	// stamp. A generation mismatch means the class changed (drop-on-write
	// demotion or promotion); the client refetches with TInstalled.
	TBroadcastExt
	// TPiggyExt is a server push (reqID 0) carrying anticipatory
	// extension grants piggybacked on another reply's flush (§4): send
	// time plus a grant list for leases the server saw nearing expiry.
	TPiggyExt
	// TRing asks a sharded server for its current ring snapshot (empty
	// payload). Answered by TRingRep with the shard.Ring wire form
	// (epoch, groups, replica addresses). Sent only after both sides
	// advertised FeatShard.
	TRing
	TRingRep
	// TNotOwner is the reply a sharded server gives to a path operation
	// it does not own: payload is the owning group's ID and the server's
	// ring epoch. The client refreshes its routing table (if its epoch is
	// older) and retries against the owner — the sharded analogue of
	// TNotMaster steering.
	TNotOwner
	// TShardPrepare / TShardCommit / TShardAbort carry the two-phase
	// cross-shard rename between group masters. Prepare (payload: ring
	// epoch, destination path, file node, contents, owner, perm) asks the
	// destination group to clear the destination binding per §2 and stage
	// the file invisibly; it is answered by TShardPrepareRep. Commit
	// (payload: ring epoch, destination path) makes the staged file
	// visible after the source committed its removal; abort discards the
	// staged entry. Both are answered by TOK / TError.
	TShardPrepare
	TShardPrepareRep
	TShardCommit
	TShardAbort
)

// TraceFlag marks a frame's type byte as carrying a trace header.
// Message type values must stay below it.
const TraceFlag = 0x80

// traceWireLen is the encoded trace header: traceID, spanID, flags.
const traceWireLen = 8 + 8 + 1

// traceFlagSampled marks the context head-sampled (the only reason to
// send it today; reserved bits must be zero on encode, ignored on
// decode).
const traceFlagSampled = 0x01

// Feature bits exchanged in the hello handshake. THello's payload may
// end with a uint64 of the client's feature bits, THelloAck's with the
// server's; decoders that predate a feature ignore the trailing bytes,
// so absence means "none". A capability is in force only when both
// sides advertised it.
const (
	// FeatTrace: the peer understands TraceFlag'd frames.
	FeatTrace uint64 = 1 << 0
	// FeatClass: the peer understands the lease-class frames (TInstalled,
	// TInstalledRep, TBroadcastExt, TPiggyExt). When either side lacks
	// the bit the server sends none of them and the byte stream is
	// identical to a pre-class peer's.
	FeatClass uint64 = 1 << 1
	// FeatShard: the peer understands the sharding frames (TRing,
	// TRingRep, TNotOwner and the TShard* rename handshake). Clients
	// advertise it only when routing via a ring; servers only when
	// configured with one, so a single-group deployment's byte stream is
	// identical to a pre-shard peer's.
	FeatShard uint64 = 1 << 2
)

// msgTypeNames maps request and push types to stable operation names
// for metrics and tracing. Reply types are derived from their request.
var msgTypeNames = map[MsgType]string{
	THello:           "hello",
	THelloAck:        "hello",
	TLookup:          "lookup",
	TLookupRep:       "lookup",
	TRead:            "read",
	TReadRep:         "read",
	TWrite:           "write",
	TWriteRep:        "write",
	TExtend:          "extend",
	TExtendRep:       "extend",
	TRelease:         "release",
	TReadDir:         "readdir",
	TReadDirRep:      "readdir",
	TCreate:          "create",
	TCreateRep:       "create",
	TMkdir:           "mkdir",
	TRemove:          "remove",
	TRename:          "rename",
	TStat:            "stat",
	TStatRep:         "stat",
	TSetPerm:         "setperm",
	TApprovalReq:     "approval-req",
	TApprove:         "approve",
	TOK:              "ok",
	TError:           "error",
	TNotMaster:       "not-master",
	TPrepare:         "prepare",
	TPromise:         "promise",
	TPropose:         "propose",
	TAccept:          "accept",
	TReplApply:       "repl-apply",
	TReplSync:        "repl-sync",
	TReplSyncRep:     "repl-sync",
	TReplMaxTerm:     "repl-maxterm",
	TInstalled:       "installed",
	TInstalledRep:    "installed",
	TBroadcastExt:    "broadcast-ext",
	TPiggyExt:        "piggy-ext",
	TRing:            "ring",
	TRingRep:         "ring",
	TNotOwner:        "not-owner",
	TShardPrepare:    "shard-prepare",
	TShardPrepareRep: "shard-prepare",
	TShardCommit:     "shard-commit",
	TShardAbort:      "shard-abort",
}

// String names the message's operation: request and reply share a name
// ("read"), so a latency keyed by the request type and a trace keyed by
// the reply agree.
func (t MsgType) String() string {
	if n, ok := msgTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("type%d", uint8(t))
}

// MaxFrame bounds a frame's payload to keep a malicious peer from
// forcing huge allocations.
const MaxFrame = 16 << 20

// Errors.
var (
	ErrFrameTooBig = errors.New("proto: frame exceeds MaxFrame")
	ErrTruncated   = errors.New("proto: truncated message")
)

// Frame is one decoded message envelope.
type Frame struct {
	Type  MsgType
	ReqID uint64
	// Trace is the frame's trace context; the zero Context for frames
	// without a trace header. Encoders emit a header exactly when
	// Trace.Valid() — callers must only set it toward peers that
	// negotiated FeatTrace.
	Trace   tracing.Context
	Payload []byte
	// pooled is the backing buffer when the frame came off the frame
	// pool; Recycle returns it.
	pooled *[]byte
}

// framePool recycles frame buffers between messages. Frames on the hot
// path (lease extensions, cached reads, approvals) are tens of bytes;
// without pooling every ReadFrame and WriteFrame allocates afresh.
// Oversized buffers are dropped on the floor rather than pooled so one
// large write doesn't pin megabytes.
var framePool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

const maxPooled = 64 << 10

func getBuf(n int) *[]byte {
	bp := framePool.Get().(*[]byte)
	if cap(*bp) < n {
		b := make([]byte, 0, n)
		*bp = b
	}
	return bp
}

func putBuf(bp *[]byte) {
	if cap(*bp) > maxPooled {
		return
	}
	*bp = (*bp)[:0]
	framePool.Put(bp)
}

// Recycle returns the frame's backing buffer to the pool. Only call it
// once the payload (and anything aliasing it) is no longer referenced:
// handlers that decode with Dec.Str/Dec.Blob copy out of the buffer, so
// recycling after dispatch is safe; holding a sub-slice of Payload past
// Recycle is not. Recycling is optional — frames whose payloads escape
// are simply left to the garbage collector.
func (f *Frame) Recycle() {
	if f.pooled == nil {
		return
	}
	bp := f.pooled
	f.pooled, f.Payload = nil, nil
	putBuf(bp)
}

// frameHeader is the encoded size of the length, type and reqID fields.
const frameHeader = 4 + 1 + 8

// BeginFrame appends a frame header to dst with a placeholder length
// and returns the extended slice. The caller appends the payload (e.g.
// through EncOn) and then calls FinishFrame with dst's pre-call length
// to patch the length prefix. Together they let an encoder write a
// frame directly into a connection's pending flush buffer with no
// intermediate per-frame copy.
func BeginFrame(dst []byte, t MsgType, reqID uint64) []byte {
	dst = append(dst, 0, 0, 0, 0, byte(t))
	return binary.LittleEndian.AppendUint64(dst, reqID)
}

// BeginFrameCtx is BeginFrame plus a trace header when tc is a valid
// (sampled) context; with the zero context it is exactly BeginFrame.
// Only use a valid tc toward a peer that negotiated FeatTrace.
func BeginFrameCtx(dst []byte, t MsgType, reqID uint64, tc tracing.Context) []byte {
	if !tc.Valid() {
		return BeginFrame(dst, t, reqID)
	}
	dst = append(dst, 0, 0, 0, 0, byte(t)|TraceFlag)
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tc.TraceID))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tc.SpanID))
	return append(dst, traceFlagSampled)
}

// FinishFrame patches the length prefix of the frame begun at offset
// start in buf, where start is len(buf) at the BeginFrame call. It
// reports ErrFrameTooBig (leaving the prefix unpatched) if the payload
// appended since exceeds MaxFrame.
func FinishFrame(buf []byte, start int) error {
	payload := len(buf) - start - frameHeader
	if payload > MaxFrame {
		return ErrFrameTooBig
	}
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(1+8+payload))
	return nil
}

// AppendFrame appends the fully encoded frame to dst and returns the
// extended slice — the one-shot form of BeginFrame+FinishFrame for
// callers that already hold the payload.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > MaxFrame {
		return dst, ErrFrameTooBig
	}
	start := len(dst)
	dst = BeginFrameCtx(dst, f.Type, f.ReqID, f.Trace)
	dst = append(dst, f.Payload...)
	if err := FinishFrame(dst, start); err != nil {
		return dst[:start], err
	}
	return dst, nil
}

// WriteFrame encodes and writes one frame. The header and payload are
// assembled into one pooled buffer and issued as a single Write, so a
// frame costs one syscall and no steady-state allocation.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrame {
		return ErrFrameTooBig
	}
	bp := getBuf(frameHeader + traceWireLen + len(f.Payload))
	b, err := AppendFrame((*bp)[:0], f)
	if err == nil {
		_, err = w.Write(b)
	}
	*bp = b
	putBuf(bp)
	return err
}

// ReadFrame reads one frame. The returned frame's payload lives in a
// pooled buffer; call Frame.Recycle once done with it (or don't — see
// Recycle).
func ReadFrame(r io.Reader) (Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < 9 {
		return Frame{}, ErrTruncated
	}
	if n > MaxFrame+9 {
		return Frame{}, ErrFrameTooBig
	}
	bp := getBuf(int(n))
	body := (*bp)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		putBuf(bp)
		return Frame{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	*bp = body
	f, err := parseBody(body)
	if err != nil {
		putBuf(bp)
		return Frame{}, err
	}
	f.pooled = bp
	return f, nil
}

// parseBody decodes a frame body (everything after the length prefix):
// type, reqID, the optional trace header, and the payload view. The
// payload aliases body.
func parseBody(body []byte) (Frame, error) {
	f := Frame{
		Type:    MsgType(body[0]),
		ReqID:   binary.LittleEndian.Uint64(body[1:9]),
		Payload: body[9:],
	}
	if f.Type&TraceFlag != 0 {
		if len(f.Payload) < traceWireLen {
			return Frame{}, ErrTruncated
		}
		f.Type &^= TraceFlag
		f.Trace = tracing.Context{
			TraceID: tracing.TraceID(binary.LittleEndian.Uint64(f.Payload[0:8])),
			SpanID:  tracing.SpanID(binary.LittleEndian.Uint64(f.Payload[8:16])),
			Sampled: f.Payload[16]&traceFlagSampled != 0,
		}
		f.Payload = f.Payload[traceWireLen:]
	}
	return f, nil
}

// Enc is an append-style payload encoder.
type Enc struct{ b []byte }

// EncOn returns an encoder that appends to buf in place, so a payload
// can be encoded directly into a pending flush buffer (see BeginFrame).
// The caller takes the grown slice back with Bytes.
func EncOn(buf []byte) Enc { return Enc{b: buf} }

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.b }

// U8 appends a uint8.
func (e *Enc) U8(v uint8) *Enc { e.b = append(e.b, v); return e }

// U32 appends a uint32.
func (e *Enc) U32(v uint32) *Enc {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
	return e
}

// U64 appends a uint64.
func (e *Enc) U64(v uint64) *Enc {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
	return e
}

// I64 appends an int64 (two's complement).
func (e *Enc) I64(v int64) *Enc { return e.U64(uint64(v)) }

// Dur appends a time.Duration.
func (e *Enc) Dur(v time.Duration) *Enc { return e.I64(int64(v)) }

// Time appends a time.Time as Unix nanoseconds (zero time encodes as
// math.MinInt64, preserving "never expires").
func (e *Enc) Time(v time.Time) *Enc {
	if v.IsZero() {
		return e.I64(math.MinInt64)
	}
	return e.I64(v.UnixNano())
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) *Enc {
	e.U32(uint32(len(s)))
	e.b = append(e.b, s...)
	return e
}

// Blob appends a length-prefixed byte slice.
func (e *Enc) Blob(b []byte) *Enc {
	e.U32(uint32(len(b)))
	e.b = append(e.b, b...)
	return e
}

// Datum appends a vfs.Datum.
func (e *Enc) Datum(d vfs.Datum) *Enc {
	return e.U8(uint8(d.Kind)).U64(uint64(d.Node))
}

// Attr appends a vfs.Attr.
func (e *Enc) Attr(a vfs.Attr) *Enc {
	e.U64(uint64(a.ID)).Str(a.Name)
	if a.IsDir {
		e.U8(1)
	} else {
		e.U8(0)
	}
	return e.I64(a.Size).Str(a.Owner).U8(uint8(a.Perm)).Time(a.ModTime).U64(a.Version)
}

// Dec is a cursor-style payload decoder. Decoding past the end sets Err
// and returns zero values; callers check Err once at the end.
type Dec struct {
	b   []byte
	Err error
}

// NewDec returns a decoder over the payload.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

func (d *Dec) take(n int) []byte {
	if d.Err != nil {
		return nil
	}
	if len(d.b) < n {
		d.Err = ErrTruncated
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

// U8 reads a uint8.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Dur reads a time.Duration.
func (d *Dec) Dur() time.Duration { return time.Duration(d.I64()) }

// Time reads a time.Time written by Enc.Time.
func (d *Dec) Time() time.Time {
	v := d.I64()
	if v == math.MinInt64 || d.Err != nil {
		return time.Time{}
	}
	return time.Unix(0, v)
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.U32()
	if d.Err == nil && uint64(n) > uint64(len(d.b)) {
		d.Err = ErrTruncated
		return ""
	}
	return string(d.take(int(n)))
}

// Blob reads a length-prefixed byte slice (copied).
func (d *Dec) Blob() []byte {
	n := d.U32()
	if d.Err == nil && uint64(n) > uint64(len(d.b)) {
		d.Err = ErrTruncated
		return nil
	}
	b := d.take(int(n))
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Datum reads a vfs.Datum.
func (d *Dec) Datum() vfs.Datum {
	return vfs.Datum{Kind: vfs.DatumKind(d.U8()), Node: vfs.NodeID(d.U64())}
}

// Attr reads a vfs.Attr.
func (d *Dec) Attr() vfs.Attr {
	var a vfs.Attr
	a.ID = vfs.NodeID(d.U64())
	a.Name = d.Str()
	a.IsDir = d.U8() == 1
	a.Size = d.I64()
	a.Owner = d.Str()
	a.Perm = vfs.Perm(d.U8())
	a.ModTime = d.Time()
	a.Version = d.U64()
	return a
}

// Remaining reports how many undecoded bytes remain.
func (d *Dec) Remaining() int { return len(d.b) }

// GrantWire is the per-datum grant carried in extension and read
// replies.
type GrantWire struct {
	Datum   vfs.Datum
	Term    time.Duration
	Version uint64
	Leased  bool
}

// EncodeGrants appends a grant list.
func (e *Enc) EncodeGrants(gs []GrantWire) *Enc {
	e.U32(uint32(len(gs)))
	for _, g := range gs {
		e.Datum(g.Datum).Dur(g.Term).U64(g.Version)
		if g.Leased {
			e.U8(1)
		} else {
			e.U8(0)
		}
	}
	return e
}

// DecodeGrants reads a grant list.
func (d *Dec) DecodeGrants() []GrantWire {
	n := d.U32()
	if d.Err != nil || uint64(n)*18 > uint64(len(d.b)) {
		if n != 0 {
			d.Err = ErrTruncated
		}
		return nil
	}
	out := make([]GrantWire, 0, n)
	for i := uint32(0); i < n; i++ {
		g := GrantWire{
			Datum:   d.Datum(),
			Term:    d.Dur(),
			Version: d.U64(),
			Leased:  d.U8() == 1,
		}
		out = append(out, g)
	}
	return out
}

// ApprovalWire is the payload of TApprovalReq and TApprove.
type ApprovalWire struct {
	WriteID core.WriteID
	Datum   vfs.Datum
}

// EncodeApproval appends an approval payload.
func (e *Enc) EncodeApproval(a ApprovalWire) *Enc {
	return e.U64(uint64(a.WriteID)).Datum(a.Datum)
}

// DecodeApproval reads an approval payload.
func (d *Dec) DecodeApproval() ApprovalWire {
	return ApprovalWire{
		WriteID: core.WriteID(d.U64()),
		Datum:   d.Datum(),
	}
}
