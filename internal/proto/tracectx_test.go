package proto

import (
	"bytes"
	"testing"

	"leases/internal/obs/tracing"
)

var testCtx = tracing.Context{TraceID: 0x1122334455667788, SpanID: 0x99aabbccddeeff00, Sampled: true}

// TestTraceHeaderRoundTrip: a frame written with a valid trace context
// decodes with the same context, type and payload on every decode path
// (ReadFrame and FrameReader).
func TestTraceHeaderRoundTrip(t *testing.T) {
	in := Frame{Type: TWrite, ReqID: 99, Trace: testCtx, Payload: []byte("payload")}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), buf.Bytes()...)
	if wire[4] != byte(TWrite)|TraceFlag {
		t.Fatalf("type byte = %#x, want trace flag set", wire[4])
	}

	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != TWrite || out.ReqID != 99 || out.Trace != testCtx || !bytes.Equal(out.Payload, []byte("payload")) {
		t.Fatalf("ReadFrame round trip: %+v", out)
	}

	fr := NewFrameReader(bytes.NewReader(wire))
	out2, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if out2.Type != TWrite || out2.ReqID != 99 || out2.Trace != testCtx || !bytes.Equal(out2.Payload, []byte("payload")) {
		t.Fatalf("FrameReader round trip: %+v", out2)
	}
}

// TestTraceHeaderCoalescerRoundTrip: AppendCtx and AppendPayloadCtx
// carry the context; the plain Append forms do not.
func TestTraceHeaderCoalescerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	co := NewCoalescer(&buf)
	if !co.AppendCtx(TWrite, 1, testCtx, func(e *Enc) { e.Str("a") }) {
		t.Fatal("AppendCtx refused")
	}
	if !co.AppendPayloadCtx(TRead, 2, testCtx, []byte("b")) {
		t.Fatal("AppendPayloadCtx refused")
	}
	if !co.Append(TExtend, 3, nil) {
		t.Fatal("Append refused")
	}
	co.Close()

	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
	for i, want := range []struct {
		typ MsgType
		tc  tracing.Context
	}{{TWrite, testCtx}, {TRead, testCtx}, {TExtend, tracing.Context{}}} {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != want.typ || f.Trace != want.tc {
			t.Fatalf("frame %d: type=%v trace=%+v, want %v %+v", i, f.Type, f.Trace, want.typ, want.tc)
		}
	}
}

// TestTraceHeaderCompat pins the negotiation contract from both sides:
// an untraced frame is byte-identical to the pre-trace encoding (what
// an old peer receives), and a frame without the flag decodes with the
// zero context (what an old peer sends).
func TestTraceHeaderCompat(t *testing.T) {
	old := BeginFrame(nil, TWrite, 7)
	old = append(old, "data"...)
	if err := FinishFrame(old, 0); err != nil {
		t.Fatal(err)
	}

	invalid := BeginFrameCtx(nil, TWrite, 7, tracing.Context{TraceID: 1}) // unsampled → invalid
	invalid = append(invalid, "data"...)
	if err := FinishFrame(invalid, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old, invalid) {
		t.Fatalf("untraced BeginFrameCtx differs from BeginFrame:\n%x\n%x", old, invalid)
	}

	f, err := ReadFrame(bytes.NewReader(old))
	if err != nil {
		t.Fatal(err)
	}
	if f.Trace.Valid() || f.Trace != (tracing.Context{}) {
		t.Fatalf("old-peer frame decoded with context %+v", f.Trace)
	}
	if f.Type != TWrite || string(f.Payload) != "data" {
		t.Fatalf("old-peer frame mangled: %+v", f)
	}
}

// TestTraceHeaderTruncated: a flagged frame whose body is shorter than
// the header is rejected as truncated, not mis-sliced.
func TestTraceHeaderTruncated(t *testing.T) {
	body := []byte{byte(TWrite) | TraceFlag, 1, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3}
	wire := []byte{byte(len(body)), 0, 0, 0}
	wire = append(wire, body...)
	if _, err := ReadFrame(bytes.NewReader(wire)); err != ErrTruncated {
		t.Fatalf("ReadFrame err = %v, want ErrTruncated", err)
	}
	fr := NewFrameReader(bytes.NewReader(wire))
	if _, err := fr.Next(); err != ErrTruncated {
		t.Fatalf("FrameReader err = %v, want ErrTruncated", err)
	}
}

// TestHelloFeatureTrailing pins the negotiation vehicle: a hello
// payload with trailing feature bits still yields the ID to a decoder
// that only reads the string, and the features to one that knows to
// look.
func TestHelloFeatureTrailing(t *testing.T) {
	var e Enc
	e.Str("client-1").U64(FeatTrace)

	oldDec := NewDec(e.Bytes())
	if id := oldDec.Str(); id != "client-1" || oldDec.Err != nil {
		t.Fatalf("pre-feature decode: id=%q err=%v", id, oldDec.Err)
	}

	newDec := NewDec(e.Bytes())
	_ = newDec.Str()
	feats := uint64(0)
	if newDec.Remaining() >= 8 {
		feats = newDec.U64()
	}
	if feats&FeatTrace == 0 {
		t.Fatalf("features = %#x, want FeatTrace", feats)
	}

	// An old client's hello has no feature bits: absence decodes as 0.
	var bare Enc
	bare.Str("client-2")
	d := NewDec(bare.Bytes())
	_ = d.Str()
	if d.Remaining() != 0 {
		t.Fatal("bare hello left trailing bytes")
	}
}
