package proto

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"leases/internal/vfs"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Frame{Type: TRead, ReqID: 42, Payload: []byte("hello")}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if out.Type != in.Type || out.ReqID != in.ReqID || string(out.Payload) != "hello" {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{Type: TOK, ReqID: 7})
	out, err := ReadFrame(&buf)
	if err != nil || out.Type != TOK || out.ReqID != 7 || len(out.Payload) != 0 {
		t.Fatalf("empty payload round trip: %+v %v", out, err)
	}
}

func TestFrameSequence(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		WriteFrame(&buf, Frame{Type: THello, ReqID: uint64(i), Payload: []byte{byte(i)}})
	}
	for i := 0; i < 10; i++ {
		f, err := ReadFrame(&buf)
		if err != nil || f.ReqID != uint64(i) || f.Payload[0] != byte(i) {
			t.Fatalf("frame %d: %+v %v", i, f, err)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("read past end = %v, want EOF", err)
	}
}

func TestFrameTooBigRejected(t *testing.T) {
	if err := WriteFrame(io.Discard, Frame{Payload: make([]byte, MaxFrame+1)}); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversize write = %v", err)
	}
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // absurd length
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversize read = %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{Type: TRead, ReqID: 1, Payload: []byte("abcdef")})
	data := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(data)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated read = %v", err)
	}
	// Length below header size.
	if _, err := ReadFrame(bytes.NewReader([]byte{3, 0, 0, 0, 1, 2, 3})); !errors.Is(err, ErrTruncated) {
		t.Fatalf("undersize read = %v", err)
	}
}

func TestScalarCodecRoundTrip(t *testing.T) {
	var e Enc
	now := time.Unix(123456789, 987654321)
	e.U8(7).U32(1 << 30).U64(1 << 60).I64(-5).Dur(10 * time.Second).Time(now).Time(time.Time{}).Str("path/to/x").Blob([]byte{1, 2, 3})
	d := NewDec(e.Bytes())
	if d.U8() != 7 || d.U32() != 1<<30 || d.U64() != 1<<60 || d.I64() != -5 {
		t.Fatal("scalar mismatch")
	}
	if d.Dur() != 10*time.Second {
		t.Fatal("duration mismatch")
	}
	if !d.Time().Equal(now) {
		t.Fatal("time mismatch")
	}
	if !d.Time().IsZero() {
		t.Fatal("zero time not preserved")
	}
	if d.Str() != "path/to/x" {
		t.Fatal("string mismatch")
	}
	b := d.Blob()
	if len(b) != 3 || b[2] != 3 {
		t.Fatal("blob mismatch")
	}
	if d.Err != nil || d.Remaining() != 0 {
		t.Fatalf("decoder state: err=%v remaining=%d", d.Err, d.Remaining())
	}
}

func TestDecShortInputSetsErr(t *testing.T) {
	d := NewDec([]byte{1, 2})
	d.U64()
	if d.Err == nil {
		t.Fatal("short U64 did not set Err")
	}
	// Further reads stay safe.
	if d.Str() != "" || d.U32() != 0 {
		t.Fatal("reads after error returned data")
	}
}

func TestDecHugeStringLengthRejected(t *testing.T) {
	var e Enc
	e.U32(1 << 31)
	d := NewDec(e.Bytes())
	if d.Str() != "" || d.Err == nil {
		t.Fatal("huge declared string length not rejected")
	}
}

func TestAttrRoundTrip(t *testing.T) {
	in := vfs.Attr{
		ID: 42, Name: "latex", IsDir: false, Size: 12345,
		Owner: "root", Perm: vfs.DefaultPerm,
		ModTime: time.Unix(1e9, 500), Version: 17,
	}
	var e Enc
	e.Attr(in)
	out := NewDec(e.Bytes()).Attr()
	if out.ID != in.ID || out.Name != in.Name || out.IsDir != in.IsDir ||
		out.Size != in.Size || out.Owner != in.Owner || out.Perm != in.Perm ||
		!out.ModTime.Equal(in.ModTime) || out.Version != in.Version {
		t.Fatalf("attr round trip: %+v vs %+v", out, in)
	}
}

func TestGrantsRoundTrip(t *testing.T) {
	in := []GrantWire{
		{Datum: vfs.Datum{Kind: vfs.FileData, Node: 5}, Term: 10 * time.Second, Version: 3, Leased: true},
		{Datum: vfs.Datum{Kind: vfs.DirBinding, Node: 1}, Term: 0, Version: 9, Leased: false},
	}
	var e Enc
	e.EncodeGrants(in)
	d := NewDec(e.Bytes())
	out := d.DecodeGrants()
	if d.Err != nil || len(out) != 2 {
		t.Fatalf("grants decode: %v %v", out, d.Err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("grant %d: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestGrantsBogusCountRejected(t *testing.T) {
	var e Enc
	e.U32(1 << 30)
	d := NewDec(e.Bytes())
	if got := d.DecodeGrants(); got != nil || d.Err == nil {
		t.Fatal("bogus grant count not rejected")
	}
}

func TestApprovalRoundTrip(t *testing.T) {
	in := ApprovalWire{WriteID: 99, Datum: vfs.Datum{Kind: vfs.FileData, Node: 7}}
	var e Enc
	e.EncodeApproval(in)
	out := NewDec(e.Bytes()).DecodeApproval()
	if out != in {
		t.Fatalf("approval round trip: %+v", out)
	}
}

// Property: any frame round-trips through a buffer.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(typ uint8, reqID uint64, payload []byte) bool {
		// The high bit of the type byte is the trace-header flag, not
		// part of the message type space.
		typ &^= TraceFlag
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		var buf bytes.Buffer
		in := Frame{Type: MsgType(typ), ReqID: reqID, Payload: payload}
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil || out.Type != in.Type || out.ReqID != in.ReqID {
			return false
		}
		return bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary bytes.
func TestDecoderNeverPanicsProperty(t *testing.T) {
	f := func(b []byte) bool {
		d := NewDec(b)
		d.Attr()
		d.DecodeGrants()
		d.DecodeApproval()
		d.Str()
		d.Blob()
		d.Time()
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
