package proto

import "sync/atomic"

// WireStats counts frames and bytes per message type and direction, so
// a traffic claim ("installed mode cuts extension frames to O(clients)")
// is read off a counter instead of inferred. One instance is shared by
// everything on one endpoint: the server wires it into every
// connection's FrameReader (inbound) and Coalescer (outbound), the
// client into its own. Counters are atomic; Snapshot is wait-free and
// sums nothing, so reading under load is cheap.
//
// Bytes are wire bytes — the length prefix, header, optional trace
// header and payload — so the totals match what tcpdump would see.
type WireStats struct {
	in  [TraceFlag]wireCounter
	out [TraceFlag]wireCounter
}

type wireCounter struct {
	frames atomic.Uint64
	bytes  atomic.Uint64
}

// CountIn records one received frame of wire size n.
func (s *WireStats) CountIn(t MsgType, n int) {
	if s == nil || t >= TraceFlag {
		return
	}
	s.in[t].frames.Add(1)
	s.in[t].bytes.Add(uint64(n))
}

// CountOut records one sent frame of wire size n.
func (s *WireStats) CountOut(t MsgType, n int) {
	if s == nil || t >= TraceFlag {
		return
	}
	s.out[t].frames.Add(1)
	s.out[t].bytes.Add(uint64(n))
}

// WireCount is one row of a WireStats snapshot.
type WireCount struct {
	Type   MsgType
	Dir    string // "in" or "out"
	Frames uint64
	Bytes  uint64
}

// Snapshot returns the nonzero counters, "in" rows first, each in
// ascending type order — a deterministic layout for /metrics.
func (s *WireStats) Snapshot() []WireCount {
	if s == nil {
		return nil
	}
	var out []WireCount
	for t := range s.in {
		if f := s.in[t].frames.Load(); f > 0 {
			out = append(out, WireCount{Type: MsgType(t), Dir: "in", Frames: f, Bytes: s.in[t].bytes.Load()})
		}
	}
	for t := range s.out {
		if f := s.out[t].frames.Load(); f > 0 {
			out = append(out, WireCount{Type: MsgType(t), Dir: "out", Frames: f, Bytes: s.out[t].bytes.Load()})
		}
	}
	return out
}

// Frames returns the frame count for one type and direction — the
// benchmark's probe.
func (s *WireStats) Frames(t MsgType, dir string) uint64 {
	if s == nil || t >= TraceFlag {
		return 0
	}
	if dir == "in" {
		return s.in[t].frames.Load()
	}
	return s.out[t].frames.Load()
}
