package netsim

import (
	"testing"
	"time"

	"leases/internal/clock"
	"leases/internal/sim"
)

func TestFaultFuncDropDiscardsAndCountsLoss(t *testing.T) {
	e := sim.New(clock.Epoch)
	f := New(e, lanParams())
	delivered := 0
	f.Register("a", func(Message) {})
	f.Register("b", func(Message) { delivered++ })
	f.SetFaults(func(from, to NodeID, kind string) FaultDecision {
		return FaultDecision{Drop: kind == "drop.me"}
	})
	f.Unicast("a", "b", "drop.me", nil)
	f.Unicast("a", "b", "keep.me", nil)
	e.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d messages, want 1", delivered)
	}
	if got := f.Losses(); got != 1 {
		t.Fatalf("Losses = %d, want 1", got)
	}
}

func TestFaultFuncDelayAddsToDeliveryDelay(t *testing.T) {
	e := sim.New(clock.Epoch)
	p := lanParams()
	f := New(e, p)
	extra := 10 * time.Millisecond
	var at time.Time
	f.Register("a", func(Message) {})
	f.Register("b", func(Message) { at = e.Now() })
	f.SetFaults(func(NodeID, NodeID, string) FaultDecision {
		return FaultDecision{Delay: extra}
	})
	f.Unicast("a", "b", "slow", nil)
	e.Run()
	want := clock.Epoch.Add(p.DeliveryDelay() + extra)
	if !at.Equal(want) {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestFaultFuncSeesEndpointsAndKind(t *testing.T) {
	e := sim.New(clock.Epoch)
	f := New(e, lanParams())
	f.Register("a", func(Message) {})
	f.Register("b", func(Message) {})
	type call struct {
		from, to NodeID
		kind     string
	}
	var calls []call
	f.SetFaults(func(from, to NodeID, kind string) FaultDecision {
		calls = append(calls, call{from, to, kind})
		return FaultDecision{}
	})
	f.Unicast("a", "b", "k1", nil)
	f.Unicast("b", "a", "k2", nil)
	e.Run()
	if len(calls) != 2 {
		t.Fatalf("fault func consulted %d times, want 2", len(calls))
	}
	if calls[0] != (call{"a", "b", "k1"}) || calls[1] != (call{"b", "a", "k2"}) {
		t.Fatalf("fault func saw %v", calls)
	}
}

func TestFaultFuncNotConsultedAcrossCutLink(t *testing.T) {
	e := sim.New(clock.Epoch)
	f := New(e, lanParams())
	f.Register("a", func(Message) {})
	f.Register("b", func(Message) {})
	f.CutLink("a", "b")
	calls := 0
	f.SetFaults(func(NodeID, NodeID, string) FaultDecision { calls++; return FaultDecision{} })
	f.Unicast("a", "b", "k", nil)
	e.Run()
	if calls != 0 {
		t.Fatalf("fault func consulted %d times across a cut link, want 0", calls)
	}
	if got := f.PartitionDrops(); got != 1 {
		t.Fatalf("PartitionDrops = %d, want 1", got)
	}
}

func TestSetFaultsNilRemovesHook(t *testing.T) {
	e := sim.New(clock.Epoch)
	f := New(e, lanParams())
	delivered := 0
	f.Register("a", func(Message) {})
	f.Register("b", func(Message) { delivered++ })
	f.SetFaults(func(NodeID, NodeID, string) FaultDecision { return FaultDecision{Drop: true} })
	f.Unicast("a", "b", "k", nil)
	f.SetFaults(nil)
	f.Unicast("a", "b", "k", nil)
	e.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (first dropped, second clean)", delivered)
	}
}
