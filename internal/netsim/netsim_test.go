package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"leases/internal/clock"
	"leases/internal/sim"
)

func lanParams() Params {
	return Params{Prop: 500 * time.Microsecond, Proc: 500 * time.Microsecond, Seed: 1}
}

func TestDeliveryDelayModel(t *testing.T) {
	p := lanParams()
	if got, want := p.DeliveryDelay(), 1500*time.Microsecond; got != want {
		t.Fatalf("DeliveryDelay = %v, want %v (m_prop + 2·m_proc)", got, want)
	}
	if got, want := p.RoundTrip(), 3*time.Millisecond; got != want {
		t.Fatalf("RoundTrip = %v, want %v (2·m_prop + 4·m_proc)", got, want)
	}
}

func TestUnicastDeliversAfterModelDelay(t *testing.T) {
	e := sim.New(clock.Epoch)
	f := New(e, lanParams())
	var deliveredAt time.Time
	var got Message
	f.Register("srv", func(m Message) { deliveredAt = e.Now(); got = m })
	f.Register("cli", func(Message) {})
	f.Unicast("cli", "srv", "lease.extend", "hello")
	e.Run()
	want := clock.Epoch.Add(lanParams().DeliveryDelay())
	if !deliveredAt.Equal(want) {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
	if got.From != "cli" || got.To != "srv" || got.Kind != "lease.extend" || got.Payload != "hello" {
		t.Fatalf("message corrupted: %+v", got)
	}
	if !got.SentAt.Equal(clock.Epoch) {
		t.Fatalf("SentAt = %v, want epoch", got.SentAt)
	}
}

func TestMessageAccountingSentRecvHandled(t *testing.T) {
	e := sim.New(clock.Epoch)
	f := New(e, lanParams())
	f.Register("srv", func(Message) {})
	f.Register("cli", func(Message) {})
	f.Unicast("cli", "srv", "lease.extend", nil)
	f.Unicast("srv", "cli", "lease.grant", nil)
	e.Run()
	if got := f.Handled("srv", ""); got != 2 {
		t.Fatalf("server handled %d messages, want 2 (one recv + one sent)", got)
	}
	if got := f.Handled("srv", "lease."); got != 2 {
		t.Fatalf("server handled %d lease messages, want 2", got)
	}
	if got := f.Handled("srv", "lease.grant"); got != 1 {
		t.Fatalf("server handled %d lease.grant, want 1", got)
	}
	if got := f.Handled("cli", ""); got != 2 {
		t.Fatalf("client handled %d, want 2", got)
	}
	if f.Deliveries() != 2 {
		t.Fatalf("Deliveries = %d, want 2", f.Deliveries())
	}
}

func TestMulticastCountsOneSendPerMessage(t *testing.T) {
	e := sim.New(clock.Epoch)
	f := New(e, lanParams())
	received := map[NodeID]int{}
	for _, id := range []NodeID{"a", "b", "c"} {
		id := id
		f.Register(id, func(Message) { received[id]++ })
	}
	f.Register("srv", func(Message) {})
	f.Multicast("srv", []NodeID{"a", "b", "c"}, "lease.approval-req", nil)
	e.Run()
	if got := f.Handled("srv", ""); got != 1 {
		t.Fatalf("multicast charged %d messages at sender, want 1", got)
	}
	for _, id := range []NodeID{"a", "b", "c"} {
		if received[id] != 1 {
			t.Fatalf("node %s received %d, want 1", id, received[id])
		}
	}
}

func TestPartitionBlocksBothDirections(t *testing.T) {
	e := sim.New(clock.Epoch)
	f := New(e, lanParams())
	var srvGot, cliGot int
	f.Register("srv", func(Message) { srvGot++ })
	f.Register("cli", func(Message) { cliGot++ })
	f.CutLink("cli", "srv")
	f.Unicast("cli", "srv", "x", nil)
	f.Unicast("srv", "cli", "x", nil)
	e.Run()
	if srvGot != 0 || cliGot != 0 {
		t.Fatalf("partitioned link delivered messages: srv=%d cli=%d", srvGot, cliGot)
	}
	if f.PartitionDrops() != 2 {
		t.Fatalf("PartitionDrops = %d, want 2", f.PartitionDrops())
	}
	f.HealLink("srv", "cli") // heal accepts either order
	f.Unicast("cli", "srv", "x", nil)
	e.Run()
	if srvGot != 1 {
		t.Fatalf("healed link did not deliver: srv=%d", srvGot)
	}
}

func TestDownNodeNeitherSendsNorReceives(t *testing.T) {
	e := sim.New(clock.Epoch)
	f := New(e, lanParams())
	var srvGot, cliGot int
	f.Register("srv", func(Message) { srvGot++ })
	f.Register("cli", func(Message) { cliGot++ })
	f.SetDown("cli", true)
	f.Unicast("cli", "srv", "x", nil) // crashed sender: nothing happens
	f.Unicast("srv", "cli", "x", nil) // delivery to crashed node lost
	e.Run()
	if srvGot != 0 || cliGot != 0 {
		t.Fatalf("down node exchanged messages: srv=%d cli=%d", srvGot, cliGot)
	}
	if !f.Down("cli") {
		t.Fatal("Down(cli) = false after SetDown")
	}
	f.SetDown("cli", false)
	f.Unicast("srv", "cli", "x", nil)
	e.Run()
	if cliGot != 1 {
		t.Fatalf("restarted node did not receive: cli=%d", cliGot)
	}
}

func TestInFlightMessageToCrashingNodeIsLost(t *testing.T) {
	e := sim.New(clock.Epoch)
	f := New(e, lanParams())
	var got int
	f.Register("srv", func(Message) {})
	f.Register("cli", func(Message) { got++ })
	f.Unicast("srv", "cli", "x", nil)
	// Crash the client while the message is in flight.
	f.SetDown("cli", true)
	e.Run()
	if got != 0 {
		t.Fatal("message delivered to node that crashed mid-flight")
	}
	if f.Losses() != 1 {
		t.Fatalf("Losses = %d, want 1", f.Losses())
	}
}

func TestLossRateDropsApproximatelyThatFraction(t *testing.T) {
	e := sim.New(clock.Epoch)
	p := lanParams()
	p.LossRate = 0.3
	f := New(e, p)
	var got int
	f.Register("srv", func(Message) { got++ })
	f.Register("cli", func(Message) {})
	const n = 10000
	for i := 0; i < n; i++ {
		f.Unicast("cli", "srv", "x", nil)
	}
	e.Run()
	frac := float64(n-got) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("loss fraction %.3f, want ≈0.30", frac)
	}
}

func TestLossIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) int {
		e := sim.New(clock.Epoch)
		p := lanParams()
		p.LossRate = 0.5
		p.Seed = seed
		f := New(e, p)
		var got int
		f.Register("srv", func(Message) { got++ })
		f.Register("cli", func(Message) {})
		for i := 0; i < 1000; i++ {
			f.Unicast("cli", "srv", "x", nil)
		}
		e.Run()
		return got
	}
	if run(42) != run(42) {
		t.Fatal("identical seeds produced different loss patterns")
	}
	if run(42) == run(43) {
		t.Fatal("different seeds produced identical loss patterns (suspicious)")
	}
}

func TestPerLinkPropagationOverride(t *testing.T) {
	e := sim.New(clock.Epoch)
	f := New(e, lanParams())
	var at time.Time
	f.Register("srv", func(Message) { at = e.Now() })
	f.Register("far", func(Message) {})
	f.SetLinkProp("far", "srv", 50*time.Millisecond)
	f.Unicast("far", "srv", "x", nil)
	e.Run()
	want := clock.Epoch.Add(50*time.Millisecond + 2*lanParams().Proc)
	if !at.Equal(want) {
		t.Fatalf("WAN delivery at %v, want %v", at, want)
	}
	if got := f.DeliveryDelayBetween("srv", "far"); got != 50*time.Millisecond+2*lanParams().Proc {
		t.Fatalf("DeliveryDelayBetween = %v", got)
	}
}

func TestUnregisteredDestinationCountsAsLoss(t *testing.T) {
	e := sim.New(clock.Epoch)
	f := New(e, lanParams())
	f.Register("cli", func(Message) {})
	f.Unicast("cli", "ghost", "x", nil)
	e.Run()
	if f.Losses() != 1 {
		t.Fatalf("Losses = %d, want 1", f.Losses())
	}
}

func TestSelfSendPanics(t *testing.T) {
	e := sim.New(clock.Epoch)
	f := New(e, lanParams())
	f.Register("a", func(Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("self-send did not panic")
		}
	}()
	f.Unicast("a", "a", "x", nil)
}

func TestBadLossRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LossRate=1.5 did not panic")
		}
	}()
	New(sim.New(clock.Epoch), Params{LossRate: 1.5})
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := sim.New(clock.Epoch)
		p := lanParams()
		p.Jitter = 10 * time.Millisecond
		p.Seed = seed
		f := New(e, p)
		var arrivals []time.Duration
		f.Register("srv", func(m Message) {
			arrivals = append(arrivals, e.Now().Sub(m.SentAt))
		})
		f.Register("cli", func(Message) {})
		for i := 0; i < 200; i++ {
			f.Unicast("cli", "srv", "x", nil)
		}
		e.Run()
		return arrivals
	}
	a := run(5)
	base := lanParams().DeliveryDelay()
	varied := false
	for _, d := range a {
		if d < base || d >= base+10*time.Millisecond {
			t.Fatalf("jittered delay %v outside [%v, %v)", d, base, base+10*time.Millisecond)
		}
		if d != a[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter produced identical delays")
	}
	b := run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different jitter")
		}
	}
}

func TestJitterReordersDeliveries(t *testing.T) {
	e := sim.New(clock.Epoch)
	p := lanParams()
	p.Jitter = 20 * time.Millisecond
	p.Seed = 3
	f := New(e, p)
	var order []int
	f.Register("srv", func(m Message) { order = append(order, m.Payload.(int)) })
	f.Register("cli", func(Message) {})
	for i := 0; i < 50; i++ {
		f.Unicast("cli", "srv", "x", i)
		e.RunFor(time.Millisecond) // stagger sends
	}
	e.Run()
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("large jitter never reordered staggered sends")
	}
}

// Property: with no loss or partitions, every unicast is delivered and
// conservation holds: total sent == total received == deliveries.
func TestConservationProperty(t *testing.T) {
	f := func(plan []uint8) bool {
		e := sim.New(clock.Epoch)
		fab := New(e, lanParams())
		nodes := []NodeID{"n0", "n1", "n2", "n3"}
		recv := 0
		for _, id := range nodes {
			fab.Register(id, func(Message) { recv++ })
		}
		sent := 0
		for _, b := range plan {
			from := nodes[int(b)%len(nodes)]
			to := nodes[(int(b)/4)%len(nodes)]
			if from == to {
				continue
			}
			fab.Unicast(from, to, "k", nil)
			sent++
		}
		e.Run()
		return recv == sent && fab.Deliveries() == int64(sent) && fab.Losses() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
