// Package netsim simulates the message fabric between file-caching
// clients and the file server.
//
// It implements the message-cost model of §3.1 of the paper: every
// message spends m_proc of processing at the sender, m_prop of
// propagation, and m_proc of processing at the receiver, so a message is
// received m_prop + 2·m_proc after it is sent, and a unicast
// request-response takes 2·m_prop + 4·m_proc. A multicast is sent once
// (one send processing) and received by every recipient with high
// probability, as with the V host-group facility.
//
// The fabric also injects the partial failures the paper's fault-
// tolerance analysis (§5) is about: probabilistic message loss, link and
// node partitions, and crashed nodes. Per-node counters record messages
// handled (sent or received), split by message kind, which is exactly the
// quantity formula (1) models as server consistency load.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"leases/internal/sim"
	"leases/internal/stats"
)

// NodeID names a host on the fabric.
type NodeID string

// Message is a payload in flight. SentAt is the virtual send instant;
// handlers run at SentAt + m_prop + 2·m_proc.
type Message struct {
	From    NodeID
	To      NodeID
	Kind    string // protocol-assigned class, e.g. "lease.extend"
	SentAt  time.Time
	Payload any
}

// Handler consumes a delivered message.
type Handler func(Message)

// FaultDecision tells the fabric what to do with one candidate
// delivery.
type FaultDecision struct {
	// Drop silently discards the message (counted as a loss).
	Drop bool
	// Delay adds extra latency on top of the normal delivery delay,
	// letting a fault schedule reorder specific messages against later
	// traffic.
	Delay time.Duration
}

// FaultFunc is a deterministic fault choice point, consulted once per
// candidate delivery after partitions are checked and before the
// fabric's own probabilistic loss process. The model checker threads
// its fault grammar through here; because the fabric calls it in a
// deterministic order, equal seeds make equal decisions.
type FaultFunc func(from, to NodeID, kind string) FaultDecision

// Params configures the fabric.
type Params struct {
	// Prop is the one-way propagation delay m_prop.
	Prop time.Duration
	// Proc is the per-message processing time m_proc at a sender or
	// receiver on the critical path.
	Proc time.Duration
	// LossRate is the probability in [0,1) that any given message is
	// silently dropped.
	LossRate float64
	// Jitter, when positive, adds a uniformly random extra delay in
	// [0, Jitter) to each delivery. Messages may then arrive out of
	// order, as on the datagram transport the V system used — the
	// protocol must tolerate a grant overtaken by a later invalidation.
	Jitter time.Duration
	// Seed seeds the loss and jitter processes; runs with equal seeds
	// are identical.
	Seed int64
}

// DeliveryDelay reports how long after sending a message is received:
// m_prop + 2·m_proc.
func (p Params) DeliveryDelay() time.Duration { return p.Prop + 2*p.Proc }

// RoundTrip reports the time for a unicast request-response:
// 2·m_prop + 4·m_proc.
func (p Params) RoundTrip() time.Duration { return 2*p.Prop + 4*p.Proc }

// pair is an unordered node pair.
type pair struct{ a, b NodeID }

func mkPair(a, b NodeID) pair {
	if a > b {
		a, b = b, a
	}
	return pair{a, b}
}

// Fabric connects nodes through the simulated network. It is driven by a
// sim.Engine and is not safe for concurrent use except for the metrics
// registry; the engine is single-threaded by design.
type Fabric struct {
	engine      *sim.Engine
	params      Params
	rng         *rand.Rand
	mu          sync.Mutex // guards handler map mutation vs delivery
	nodes       map[NodeID]Handler
	cutLinks    map[pair]bool
	downNodes   map[NodeID]bool
	linkProp    map[pair]time.Duration
	faults      FaultFunc
	reg         *stats.Registry
	deliveries  stats.Counter
	losses      stats.Counter
	partitioned stats.Counter
}

// New returns a fabric driven by engine.
func New(engine *sim.Engine, params Params) *Fabric {
	if params.LossRate < 0 || params.LossRate >= 1 {
		if params.LossRate != 0 {
			panic(fmt.Sprintf("netsim: loss rate %v outside [0,1)", params.LossRate))
		}
	}
	return &Fabric{
		engine:    engine,
		params:    params,
		rng:       rand.New(rand.NewSource(params.Seed)),
		nodes:     make(map[NodeID]Handler),
		cutLinks:  make(map[pair]bool),
		downNodes: make(map[NodeID]bool),
		linkProp:  make(map[pair]time.Duration),
		reg:       stats.NewRegistry(),
	}
}

// Params reports the fabric's timing parameters.
func (f *Fabric) Params() Params { return f.params }

// Register attaches a node to the fabric. Re-registering replaces the
// handler (used when a crashed node restarts with fresh state).
func (f *Fabric) Register(id NodeID, h Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nodes[id] = h
}

// Metrics exposes the per-node counters. Counter names are
// "<node>.sent", "<node>.recv", "<node>.handled", and kind-split
// variants "<node>.sent.<kind>" / "<node>.recv.<kind>" /
// "<node>.handled.<kind>".
func (f *Fabric) Metrics() *stats.Registry { return f.reg }

// Deliveries reports how many messages have been delivered.
func (f *Fabric) Deliveries() int64 { return f.deliveries.Value() }

// Losses reports how many messages were dropped by the loss process or a
// down node; partition drops are counted separately.
func (f *Fabric) Losses() int64 { return f.losses.Value() }

// PartitionDrops reports how many messages were dropped by partitions.
func (f *Fabric) PartitionDrops() int64 { return f.partitioned.Value() }

// SetFaults installs fn as the fabric's per-delivery fault choice
// point; nil removes it.
func (f *Fabric) SetFaults(fn FaultFunc) { f.faults = fn }

// CutLink blocks traffic in both directions between a and b.
func (f *Fabric) CutLink(a, b NodeID) { f.cutLinks[mkPair(a, b)] = true }

// HealLink restores traffic between a and b.
func (f *Fabric) HealLink(a, b NodeID) { delete(f.cutLinks, mkPair(a, b)) }

// SetDown marks a node crashed: it neither sends nor receives. Messages
// already in flight toward it are dropped at delivery time.
func (f *Fabric) SetDown(id NodeID, down bool) {
	if down {
		f.downNodes[id] = true
	} else {
		delete(f.downNodes, id)
	}
}

// Down reports whether the node is marked crashed.
func (f *Fabric) Down(id NodeID) bool { return f.downNodes[id] }

// SetLinkProp overrides the propagation delay between a and b, modelling
// a distant client on a wide-area path (§3.3).
func (f *Fabric) SetLinkProp(a, b NodeID, prop time.Duration) {
	f.linkProp[mkPair(a, b)] = prop
}

func (f *Fabric) propBetween(a, b NodeID) time.Duration {
	if d, ok := f.linkProp[mkPair(a, b)]; ok {
		return d
	}
	return f.params.Prop
}

// DeliveryDelayBetween reports the send-to-receive latency between two
// specific nodes, honoring per-link overrides.
func (f *Fabric) DeliveryDelayBetween(a, b NodeID) time.Duration {
	return f.propBetween(a, b) + 2*f.params.Proc
}

func (f *Fabric) countSent(id NodeID, kind string) {
	f.reg.Counter(string(id) + ".sent").Inc()
	f.reg.Counter(string(id) + ".handled").Inc()
	if kind != "" {
		f.reg.Counter(string(id) + ".sent." + kind).Inc()
		f.reg.Counter(string(id) + ".handled." + kind).Inc()
	}
}

func (f *Fabric) countRecv(id NodeID, kind string) {
	f.reg.Counter(string(id) + ".recv").Inc()
	f.reg.Counter(string(id) + ".handled").Inc()
	if kind != "" {
		f.reg.Counter(string(id) + ".recv." + kind).Inc()
		f.reg.Counter(string(id) + ".handled." + kind).Inc()
	}
}

// Handled reports the number of messages sent or received by a node,
// optionally restricted to a kind prefix (e.g. "lease." counts all
// lease-protocol traffic). An empty prefix counts everything.
func (f *Fabric) Handled(id NodeID, kindPrefix string) int64 {
	if kindPrefix == "" {
		return f.reg.Counter(string(id) + ".handled").Value()
	}
	var total int64
	for _, name := range f.reg.Names() {
		pfx := string(id) + ".handled."
		if len(name) > len(pfx) && name[:len(pfx)] == pfx {
			if kind := name[len(pfx):]; len(kind) >= len(kindPrefix) && kind[:len(kindPrefix)] == kindPrefix {
				total += f.reg.Counter(name).Value()
			}
		}
	}
	return total
}

// Unicast sends one message from one node to another. The send is charged
// to the sender immediately; delivery occurs after the link's propagation
// plus processing delay unless the message is lost, a partition blocks the
// link, or either end is down.
func (f *Fabric) Unicast(from, to NodeID, kind string, payload any) {
	if f.downNodes[from] {
		return // a crashed node sends nothing
	}
	f.countSent(from, kind)
	f.deliver(from, to, kind, payload)
}

// Multicast sends one message from a node to a set of recipients using
// the multicast facility: a single send at the sender, one receive at
// each reachable recipient. Loss is evaluated independently per
// recipient, as datagram multicast loses receivers independently.
func (f *Fabric) Multicast(from NodeID, to []NodeID, kind string, payload any) {
	if f.downNodes[from] {
		return
	}
	f.countSent(from, kind)
	for _, t := range to {
		f.deliver(from, t, kind, payload)
	}
}

func (f *Fabric) deliver(from, to NodeID, kind string, payload any) {
	if from == to {
		panic("netsim: node sending to itself")
	}
	if f.cutLinks[mkPair(from, to)] {
		f.partitioned.Inc()
		return
	}
	var extra time.Duration
	if f.faults != nil {
		dec := f.faults(from, to, kind)
		if dec.Drop {
			f.losses.Inc()
			return
		}
		if dec.Delay > 0 {
			extra = dec.Delay
		}
	}
	if f.params.LossRate > 0 && f.rng.Float64() < f.params.LossRate {
		f.losses.Inc()
		return
	}
	msg := Message{From: from, To: to, Kind: kind, SentAt: f.engine.Now()}
	msg.Payload = payload
	delay := f.DeliveryDelayBetween(from, to) + extra
	if f.params.Jitter > 0 {
		delay += time.Duration(f.rng.Int63n(int64(f.params.Jitter)))
	}
	f.engine.After(delay, func() {
		if f.downNodes[to] {
			f.losses.Inc()
			return
		}
		f.mu.Lock()
		h := f.nodes[to]
		f.mu.Unlock()
		if h == nil {
			f.losses.Inc()
			return
		}
		f.countRecv(to, kind)
		f.deliveries.Inc()
		h(msg)
	})
}
