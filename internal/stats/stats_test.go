package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero Counter has value %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("got %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("after Reset got %d, want 0", c.Value())
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("got %d, want 16000", c.Value())
	}
}

func TestDurationStat(t *testing.T) {
	var d DurationStat
	if d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 || d.Count() != 0 {
		t.Fatal("zero DurationStat not empty")
	}
	d.Observe(2 * time.Second)
	d.Observe(4 * time.Second)
	d.Observe(6 * time.Second)
	if d.Count() != 3 {
		t.Fatalf("Count = %d, want 3", d.Count())
	}
	if d.Mean() != 4*time.Second {
		t.Fatalf("Mean = %v, want 4s", d.Mean())
	}
	if d.Min() != 2*time.Second || d.Max() != 6*time.Second {
		t.Fatalf("Min/Max = %v/%v, want 2s/6s", d.Min(), d.Max())
	}
	if d.Sum() != 12*time.Second {
		t.Fatalf("Sum = %v, want 12s", d.Sum())
	}
	d.Reset()
	if d.Count() != 0 || d.Sum() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestDurationStatSingleObservation(t *testing.T) {
	var d DurationStat
	d.Observe(5 * time.Millisecond)
	if d.Min() != 5*time.Millisecond || d.Max() != 5*time.Millisecond {
		t.Fatalf("single observation Min/Max = %v/%v", d.Min(), d.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1.5, 1.9, 3, 10} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("Buckets() lengths %d/%d, want 3/4", len(bounds), len(counts))
	}
	want := []int64{1, 2, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d count %d, want %d (%v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got := h.Mean(); math.Abs(got-3.38) > 1e-9 {
		t.Fatalf("Mean = %v, want 3.38", got)
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(1) // exactly on a bound: belongs to the ≤1 bucket
	_, counts := h.Buckets()
	if counts[0] != 1 {
		t.Fatalf("value on bound landed in %v, want first bucket", counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 40; i++ {
		h.Observe(3)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %v, want 1", q)
	}
	if q := h.Quantile(0.9); q != 4 {
		t.Fatalf("p90 = %v, want 4", q)
	}
	if q := h.Quantile(0.99); !math.IsInf(q, 1) {
		t.Fatalf("p99 = %v, want +Inf (overflow)", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(1)
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(0.5)
	h.Observe(5)
	s := h.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestRegistryReusesMetrics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reads")
	b := r.Counter("reads")
	if a != b {
		t.Fatal("Counter with same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counters with same name not shared")
	}
	d1 := r.Duration("latency")
	d2 := r.Duration("latency")
	if d1 != d2 {
		t.Fatal("Duration with same name returned distinct stats")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs").Add(7)
	r.Duration("rt").Observe(10 * time.Millisecond)
	r.Duration("rt").Observe(20 * time.Millisecond)
	snap := r.Snapshot()
	if snap["msgs"] != 7 {
		t.Fatalf("snapshot msgs = %d, want 7", snap["msgs"])
	}
	if snap["rt.count"] != 2 {
		t.Fatalf("snapshot rt.count = %d, want 2", snap["rt.count"])
	}
	if snap["rt.mean"] != int64(15*time.Millisecond) {
		t.Fatalf("snapshot rt.mean = %d, want 15ms", snap["rt.mean"])
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta")
	r.Counter("alpha")
	names := r.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("Names() = %v", names)
	}
}

// Property: histogram total always equals the number of Observe calls,
// and the sum of bucket counts equals the total.
func TestHistogramCountProperty(t *testing.T) {
	f := func(values []float64) bool {
		h := NewHistogram(0.25, 0.5, 0.75)
		for _, v := range values {
			if math.IsNaN(v) {
				continue
			}
			h.Observe(v)
		}
		_, counts := h.Buckets()
		var sum int64
		for _, c := range counts {
			sum += c
		}
		return sum == h.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DurationStat mean lies between min and max.
func TestDurationStatMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var d DurationStat
		for _, v := range raw {
			d.Observe(time.Duration(v))
		}
		m := d.Mean()
		return m >= d.Min() && m <= d.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	h.Observe(1.5)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 2 {
			t.Errorf("Quantile(%v) = %v, want upper bound 2 of the sample's bucket", q, got)
		}
	}
}

func TestHistogramQuantileAllEqual(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got != 4 {
			t.Errorf("Quantile(%v) = %v, want 4 for identical samples", q, got)
		}
	}
}

func TestHistogramSumAndSnapshot(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(10)
	if got := h.Sum(); math.Abs(got-12) > 1e-9 {
		t.Errorf("Sum() = %v, want 12", got)
	}
	s := h.Snapshot()
	if s.Count != 3 || math.Abs(s.Sum-12) > 1e-9 {
		t.Errorf("snapshot count/sum = %d/%v", s.Count, s.Sum)
	}
	if s.P50 != 2 {
		t.Errorf("snapshot P50 = %v, want 2", s.P50)
	}
	if !math.IsInf(s.P99, 1) {
		t.Errorf("snapshot P99 = %v, want +Inf (overflow bucket)", s.P99)
	}
	if len(s.Bounds) != 2 || len(s.Counts) != 3 {
		t.Errorf("snapshot shape bounds=%d counts=%d", len(s.Bounds), len(s.Counts))
	}
	// The snapshot is a copy: further observations must not leak in.
	h.Observe(0.5)
	if s.Count != 3 {
		t.Errorf("snapshot mutated by later Observe")
	}
}

func TestLatencyBoundsSortedPositive(t *testing.T) {
	b := LatencyBounds()
	if len(b) == 0 || b[0] <= 0 {
		t.Fatalf("bad first bound: %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, b)
		}
	}
	NewLatencyHistogram().Observe(0.001) // must not panic
}

func TestDurationSampleEmpty(t *testing.T) {
	var s DurationSample
	if s.Count() != 0 || s.Mean() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 {
		t.Errorf("empty sample not all-zero: count=%d mean=%v max=%v p50=%v",
			s.Count(), s.Mean(), s.Max(), s.Quantile(0.5))
	}
}

func TestDurationSampleSingle(t *testing.T) {
	var s DurationSample
	s.Observe(7 * time.Millisecond)
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 7*time.Millisecond {
			t.Errorf("Quantile(%v) = %v, want the single sample", q, got)
		}
	}
	if s.Mean() != 7*time.Millisecond || s.Max() != 7*time.Millisecond {
		t.Errorf("mean/max = %v/%v", s.Mean(), s.Max())
	}
}

func TestDurationSampleAllEqual(t *testing.T) {
	var s DurationSample
	for i := 0; i < 64; i++ {
		s.Observe(time.Second)
	}
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99} {
		if got := s.Quantile(q); got != time.Second {
			t.Errorf("Quantile(%v) = %v, want 1s", q, got)
		}
	}
}

// Nearest-rank on a known set: quantiles are always actual observations.
func TestDurationSampleNearestRank(t *testing.T) {
	var s DurationSample
	for i := 10; i >= 1; i-- { // out of order on purpose
		s.Observe(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.10, 1 * time.Millisecond},
		{0.50, 5 * time.Millisecond},
		{0.90, 9 * time.Millisecond},
		{0.95, 10 * time.Millisecond},
		{1.00, 10 * time.Millisecond},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if s.Max() != 10*time.Millisecond {
		t.Errorf("Max = %v", s.Max())
	}
}

func TestDurationSampleConcurrent(t *testing.T) {
	var s DurationSample
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Observe(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if s.Count() != 1600 {
		t.Fatalf("count = %d, want 1600", s.Count())
	}
}
