// Package stats provides the measurement primitives used by the lease
// simulator, the networked server, and the benchmark harness: atomic
// counters, duration accumulators with mean/min/max, and fixed-bucket
// histograms.
//
// The paper's evaluation (§3) is expressed in terms of message counts at
// the server (formula 1) and per-operation added delay (formula 2); the
// types here accumulate exactly those quantities so that the trace-driven
// simulation and the analytic model can be compared number for number.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count, safe for concurrent
// use. The zero value is ready to use.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta. Negative deltas are rejected so
// that a Counter is always a count of events.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("stats: negative delta on Counter")
	}
	c.n.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n.Store(0) }

// DurationStat accumulates a stream of durations, tracking count, sum,
// minimum and maximum. It is safe for concurrent use. The zero value is
// ready to use.
type DurationStat struct {
	mu    sync.Mutex
	count int64
	sum   time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one duration.
func (d *DurationStat) Observe(v time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == 0 || v < d.min {
		d.min = v
	}
	if d.count == 0 || v > d.max {
		d.max = v
	}
	d.count++
	d.sum += v
}

// Count reports the number of observations.
func (d *DurationStat) Count() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Sum reports the total of all observations.
func (d *DurationStat) Sum() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sum
}

// Mean reports the average observation, or zero if none were recorded.
func (d *DurationStat) Mean() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == 0 {
		return 0
	}
	return d.sum / time.Duration(d.count)
}

// Min reports the smallest observation, or zero if none were recorded.
func (d *DurationStat) Min() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.min
}

// Max reports the largest observation, or zero if none were recorded.
func (d *DurationStat) Max() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.max
}

// Reset discards all observations.
func (d *DurationStat) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.count, d.sum, d.min, d.max = 0, 0, 0, 0
}

// Histogram accumulates observations into fixed buckets defined by their
// upper bounds, plus an overflow bucket. It is safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds
	counts []int64   // len(bounds)+1, last is overflow
	total  int64
	sum    float64
}

// NewHistogram returns a histogram with the given bucket upper bounds,
// which must be strictly increasing and non-empty.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram requires at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.total++
	h.sum += v
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean reports the average observation, or zero if none were recorded.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile reports an upper bound on the q-quantile (0 ≤ q ≤ 1) of the
// observations: the bound of the first bucket at which the cumulative
// count reaches q·total. It returns +Inf if the quantile falls in the
// overflow bucket, and zero if nothing was recorded.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i == len(h.bounds) {
				return math.Inf(1)
			}
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

// Sum reports the total of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// HistogramSnapshot is a point-in-time copy of a Histogram, decorated
// with the quantiles an operator actually reads (p50/p95/p99). Counts
// are per-bucket (not cumulative); the final count is the overflow
// bucket.
type HistogramSnapshot struct {
	Count         int64
	Sum           float64
	Mean          float64
	P50, P95, P99 float64
	Bounds        []float64
	Counts        []int64
}

// Snapshot captures the histogram's state and quantile digest in one
// consistent read.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count:  h.total,
		Sum:    h.sum,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
	}
	if h.total > 0 {
		s.Mean = h.sum / float64(h.total)
	}
	s.P50 = h.quantileLocked(0.50)
	s.P95 = h.quantileLocked(0.95)
	s.P99 = h.quantileLocked(0.99)
	return s
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i == len(h.bounds) {
				return math.Inf(1)
			}
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

// LatencyBounds returns the default latency bucket upper bounds in
// seconds: a roughly 1-2.5-5 exponential ladder from 50µs to 10s, wide
// enough for a cached in-process hit and a write deferred behind a
// multi-second lease term alike.
func LatencyBounds() []float64 {
	return []float64{
		0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// NewLatencyHistogram returns a histogram over LatencyBounds, for
// recording operation latencies in seconds.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(LatencyBounds()...)
}

// Buckets returns copies of the bucket bounds and counts (the final count
// is the overflow bucket).
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append(bounds, h.bounds...)
	counts = append(counts, h.counts...)
	return bounds, counts
}

// String renders a compact textual summary.
func (h *Histogram) String() string {
	bounds, counts := h.Buckets()
	var b strings.Builder
	fmt.Fprintf(&b, "hist n=%d mean=%.4g [", h.Count(), h.Mean())
	for i, c := range counts {
		if i > 0 {
			b.WriteString(" ")
		}
		if i < len(bounds) {
			fmt.Fprintf(&b, "≤%.4g:%d", bounds[i], c)
		} else {
			fmt.Fprintf(&b, ">:%d", c)
		}
	}
	b.WriteString("]")
	return b.String()
}

// DurationSample records every observation so that exact quantiles can
// be extracted afterwards — the right tool for a bounded replay or
// benchmark run where the paper's evaluation style (per-operation delay
// distributions, §3) wants true percentiles rather than bucket upper
// bounds. For unbounded production streams use Histogram instead. It is
// safe for concurrent use. The zero value is ready to use.
type DurationSample struct {
	mu   sync.Mutex
	vals []time.Duration
}

// Observe records one duration.
func (s *DurationSample) Observe(v time.Duration) {
	s.mu.Lock()
	s.vals = append(s.vals, v)
	s.mu.Unlock()
}

// Count reports the number of observations.
func (s *DurationSample) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.vals))
}

// Mean reports the average observation, or zero if none were recorded.
func (s *DurationSample) Mean() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vals) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range s.vals {
		sum += v
	}
	return sum / time.Duration(len(s.vals))
}

// Max reports the largest observation, or zero if none were recorded.
func (s *DurationSample) Max() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max time.Duration
	for _, v := range s.vals {
		if v > max {
			max = v
		}
	}
	return max
}

// Quantile reports the exact q-quantile (0 ≤ q ≤ 1) by the nearest-rank
// method: the smallest observation v such that at least q·n observations
// are ≤ v. It returns zero if nothing was recorded.
func (s *DurationSample) Quantile(q float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	sorted := make([]time.Duration, n)
	copy(sorted, s.vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return sorted[rank]
}

// Registry is a named collection of counters and duration statistics, so
// that a component can expose all of its metrics for snapshotting.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	durations map[string]*DurationStat
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		durations: make(map[string]*DurationStat),
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Duration returns the duration statistic with the given name, creating
// it if needed.
func (r *Registry) Duration(name string) *DurationStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.durations[name]
	if !ok {
		d = &DurationStat{}
		r.durations[name] = d
	}
	return d
}

// Snapshot returns the current value of every counter and the mean of
// every duration statistic, keyed by name. Duration means appear under
// "<name>.mean" in nanoseconds and counts under "<name>.count".
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+2*len(r.durations))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, d := range r.durations {
		out[name+".count"] = d.Count()
		out[name+".mean"] = int64(d.Mean())
	}
	return out
}

// Names returns the sorted names of all registered counters.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
