// Package tokensim simulates the token extension (non-write-through
// caching, §2/§6) over the same workloads and fabric as tracesim, so the
// write-back and write-through regimes can be compared head to head —
// the study the paper suggests for Echo and MFS: "with extension, our
// analysis of performance could be profitably applied to these systems."
//
// Under tokens, a client holding a write token absorbs writes locally
// and flushes only when recalled (another cache wants the datum), when
// its token is about to expire with dirty data, or at a periodic flush
// interval. The interesting trade-off: write-back removes per-write
// server round trips (a big win for write-heavy private data) but adds
// recall round trips to reads of recently-written data, and buffered
// writes are exposed to loss if the holder crashes.
package tokensim

import (
	"fmt"
	"time"

	"leases/internal/clock"
	"leases/internal/core"
	"leases/internal/netsim"
	"leases/internal/sim"
	"leases/internal/stats"
	"leases/internal/trace"
	"leases/internal/vfs"
)

// Message kinds; "lease."-prefixed kinds count as consistency traffic,
// "data." kinds as base traffic, matching tracesim's accounting.
const (
	kindAcquire  = "lease.acquire"
	kindGrant    = "lease.grant"
	kindRecall   = "lease.recall"
	kindRecallOK = "lease.recall-ack"
	kindFlush    = "data.flush"
	kindFlushAck = "data.flush-ack"
)

// Config parameterizes a token simulation.
type Config struct {
	// Trace is the workload. Required.
	Trace *trace.Trace
	// Term is the token term.
	Term time.Duration
	// Net is the fabric model.
	Net netsim.Params
	// FlushInterval bounds how long dirty data may sit unflushed. Zero
	// means flush only on recall or pre-expiry.
	FlushInterval time.Duration
}

// Result reports the measurements.
type Result struct {
	Duration              time.Duration
	ServerConsistencyMsgs int64
	ServerTotalMsgs       int64
	ConsistencyLoad       float64
	Reads, Writes         int64
	ReadHits, WriteHits   int64 // served/absorbed locally under a token
	Flushes               int64
	Recalls               int64
	// LostWrites counts data whose locally buffered writes never
	// reached the server because the write token expired before a flush
	// — the write-back hazard. Frequent flushing (FlushInterval) or
	// terms comfortably above the write burst length drive this to
	// zero.
	LostWrites int64
	// StaleReads counts consistency violations (must be zero).
	StaleReads int64
}

type tokenSim struct {
	cfg    Config
	engine *sim.Engine
	fabric *netsim.Fabric
	mgr    *core.TokenManager
	// server state
	versions map[vfs.Datum]uint64
	// per-acquisition bookkeeping at the server
	reqs map[core.TokenReqID]*pendingAcq
	// clients
	clients []*tokenClient

	reads, writes, readHits, writeHits stats.Counter
	flushes, recalls, stale, lost      stats.Counter
	deadlineEv                         *sim.Event
}

type pendingAcq struct {
	client core.ClientID
	datum  vfs.Datum
	mode   core.TokenMode
	reqID  uint64 // client-side request id
}

type tokenClient struct {
	s      *tokenSim
	index  int
	id     core.ClientID
	node   netsim.NodeID
	holder *core.TokenHolder
	// cached maps datum → last version seen (server or local).
	cached map[vfs.Datum]uint64
	// pendingMode tracks the outstanding acquisition per datum so reads
	// and writes issued meanwhile don't duplicate requests.
	pendingMode map[vfs.Datum]core.TokenMode
	// afterFlush holds continuations awaiting a flush ack, keyed by
	// datum (recall answers that had to flush first).
	afterFlush map[vfs.Datum]func()
	nextReq    uint64
}

const serverNode netsim.NodeID = "srv"

// Run executes the simulation.
func Run(cfg Config) *Result {
	if cfg.Trace == nil {
		panic("tokensim: nil trace")
	}
	if cfg.Term <= 0 {
		panic("tokensim: token term must be positive")
	}
	s := &tokenSim{
		cfg:      cfg,
		engine:   sim.New(clock.Epoch),
		versions: make(map[vfs.Datum]uint64),
		reqs:     make(map[core.TokenReqID]*pendingAcq),
	}
	s.fabric = netsim.New(s.engine, cfg.Net)
	s.mgr = core.NewTokenManager(core.FixedTerm(cfg.Term))
	s.fabric.Register(serverNode, s.handleServer)
	for i := 0; i < cfg.Trace.Clients; i++ {
		c := &tokenClient{
			s:     s,
			index: i,
			id:    core.ClientID(fmt.Sprintf("c%d", i)),
			node:  netsim.NodeID(fmt.Sprintf("c%d", i)),
			holder: core.NewTokenHolder(core.HolderConfig{
				Delivery: cfg.Net.DeliveryDelay(),
			}),
			cached:      make(map[vfs.Datum]uint64),
			pendingMode: make(map[vfs.Datum]core.TokenMode),
		}
		s.fabric.Register(c.node, c.handle)
		s.clients = append(s.clients, c)
		if cfg.FlushInterval > 0 {
			c.scheduleFlush()
		}
	}
	for _, e := range cfg.Trace.Events {
		e := e
		s.engine.At(clock.Epoch.Add(e.At), func() {
			c := s.clients[e.Client]
			d := vfs.Datum{Kind: vfs.FileData, Node: vfs.NodeID(e.File) + 2}
			switch e.Op {
			case trace.OpRead:
				c.read(d)
			case trace.OpWrite:
				c.write(d)
			}
		})
	}
	// Drain flush at trace end so no writes are silently lost.
	s.engine.At(clock.Epoch.Add(cfg.Trace.Duration), func() {
		for _, c := range s.clients {
			for _, d := range c.holder.DirtyData() {
				c.flush(d)
			}
		}
	})
	s.engine.Run()

	lost := s.lost.Value()
	for _, c := range s.clients {
		lost += int64(len(c.holder.DirtyData()))
	}
	r := &Result{
		Duration:              cfg.Trace.Duration,
		ServerConsistencyMsgs: s.fabric.Handled(serverNode, "lease."),
		ServerTotalMsgs:       s.fabric.Handled(serverNode, ""),
		Reads:                 s.reads.Value(),
		Writes:                s.writes.Value(),
		ReadHits:              s.readHits.Value(),
		WriteHits:             s.writeHits.Value(),
		Flushes:               s.flushes.Value(),
		Recalls:               s.recalls.Value(),
		LostWrites:            lost,
		StaleReads:            s.stale.Value(),
	}
	r.ConsistencyLoad = float64(r.ServerConsistencyMsgs) / cfg.Trace.Duration.Seconds()
	return r
}

// --- messages ---

type acquireMsg struct {
	ReqID uint64
	From  core.ClientID
	Datum vfs.Datum
	Mode  core.TokenMode
}

type grantMsg struct {
	ReqID   uint64
	Datum   vfs.Datum
	Mode    core.TokenMode
	Term    time.Duration
	Version uint64
}

type recallMsg struct {
	AcqID core.TokenReqID
	Datum vfs.Datum
	// ReadOnly reports that the requester only wants to read: a write
	// holder may downgrade instead of invalidating.
	ReadOnly bool
}

type recallAckMsg struct {
	AcqID      core.TokenReqID
	From       core.ClientID
	Downgraded bool
}

type flushMsg struct {
	From    core.ClientID
	Datum   vfs.Datum
	Version uint64
}

type flushAckMsg struct {
	Datum   vfs.Datum
	Version uint64
}

// --- server ---

func (s *tokenSim) handleServer(m netsim.Message) {
	now := s.engine.Now()
	if debugTokens {
		fmt.Printf("%v srv <- %s %T %+v\n", now.Sub(clock.Epoch), m.From, m.Payload, m.Payload)
	}
	switch p := m.Payload.(type) {
	case acquireMsg:
		disp := s.mgr.Acquire(p.From, p.Datum, p.Mode, now)
		if disp.Granted {
			s.fabric.Unicast(serverNode, m.From, kindGrant, grantMsg{
				ReqID: p.ReqID, Datum: p.Datum, Mode: p.Mode,
				Term: disp.Term, Version: s.versions[p.Datum],
			})
			return
		}
		if disp.ReqID == 0 {
			// Refused outright (zero-term policy); grant nothing. The
			// client treats a zero-term grant as a one-shot read.
			s.fabric.Unicast(serverNode, m.From, kindGrant, grantMsg{
				ReqID: p.ReqID, Datum: p.Datum, Mode: p.Mode,
				Term: 0, Version: s.versions[p.Datum],
			})
			return
		}
		s.reqs[disp.ReqID] = &pendingAcq{client: p.From, datum: p.Datum, mode: p.Mode, reqID: p.ReqID}
		for _, holder := range disp.NeedRecall {
			s.recalls.Inc()
			s.fabric.Unicast(serverNode, netsim.NodeID(holder), kindRecall, recallMsg{
				AcqID: disp.ReqID, Datum: p.Datum, ReadOnly: p.Mode == core.TokenRead,
			})
		}
		s.armDeadline()
	case recallAckMsg:
		var ready bool
		if p.Downgraded {
			// The holder flushed and kept a read token.
			ready = s.mgr.DowngradeAck(p.From, p.AcqID, now)
		} else {
			ready = s.mgr.RecallAck(p.From, p.AcqID, now)
		}
		if ready {
			s.grantReady(now)
		}
	case flushMsg:
		s.versions[p.Datum] = p.Version
		s.flushes.Inc()
		s.fabric.Unicast(serverNode, m.From, kindFlushAck, flushAckMsg{Datum: p.Datum, Version: p.Version})
	default:
		panic("tokensim: unknown payload at server")
	}
}

func (s *tokenSim) grantReady(now time.Time) {
	for {
		ready := s.mgr.ReadyAcquisitions(now)
		if len(ready) == 0 {
			break
		}
		for _, id := range ready {
			pa := s.reqs[id]
			delete(s.reqs, id)
			client, term := s.mgr.GrantReady(id, now)
			s.fabric.Unicast(serverNode, netsim.NodeID(client), kindGrant, grantMsg{
				ReqID: pa.reqID, Datum: pa.datum, Mode: pa.mode,
				Term: term, Version: s.versions[pa.datum],
			})
			// The token just granted may newly block the next queued
			// acquisition on the same datum: recall it.
			s.recallNewBlockers(pa.datum, now)
		}
	}
	s.armDeadline()
}

// recallNewBlockers sends recalls to holders that became blockers of
// the head acquisition after the queue moved.
func (s *tokenSim) recallNewBlockers(d vfs.Datum, now time.Time) {
	added := s.mgr.RefreshHead(d, now)
	if len(added) == 0 {
		return
	}
	// Identify the head acquisition to address the recalls.
	var headID core.TokenReqID
	var head *pendingAcq
	for id, pa := range s.reqs {
		if pa.datum == d {
			if head == nil || id < headID {
				headID, head = id, pa
			}
		}
	}
	if head == nil {
		return
	}
	for _, holder := range added {
		s.recalls.Inc()
		s.fabric.Unicast(serverNode, netsim.NodeID(holder), kindRecall, recallMsg{
			AcqID: headID, Datum: d, ReadOnly: head.mode == core.TokenRead,
		})
	}
}

func (s *tokenSim) armDeadline() {
	dl, ok := s.mgr.NextTokenDeadline()
	if !ok {
		if s.deadlineEv != nil {
			s.engine.Cancel(s.deadlineEv)
			s.deadlineEv = nil
		}
		return
	}
	fire := dl.Add(time.Millisecond)
	if fire.Before(s.engine.Now()) {
		fire = s.engine.Now()
	}
	if s.deadlineEv != nil {
		s.engine.Cancel(s.deadlineEv)
	}
	s.deadlineEv = s.engine.At(fire, func() {
		s.deadlineEv = nil
		s.grantReady(s.engine.Now())
	})
}

// --- client ---

// scrubExpired discards an expired token record. If the token was a
// dirty write token, its buffered writes are lost: after expiry the
// holder no longer has the right to flush (another cache may already
// hold the token and have advanced the data) — this is the write-back
// hazard the paper's write-through design avoids.
func (c *tokenClient) scrubExpired(d vfs.Datum, now time.Time) {
	if c.holder.Mode(d) == 0 {
		return
	}
	if c.holder.CanRead(d, now) {
		return // still live
	}
	if c.holder.Dirty(d) {
		c.s.lost.Inc()
	}
	c.holder.Invalidate(d)
	delete(c.cached, d)
}

func (c *tokenClient) read(d vfs.Datum) {
	c.s.reads.Inc()
	now := c.s.engine.Now()
	if c.holder.CanRead(d, now) {
		c.s.readHits.Inc()
		c.checkFreshness(d)
		return
	}
	c.scrubExpired(d, now)
	c.acquire(d, core.TokenRead)
}

func (c *tokenClient) write(d vfs.Datum) {
	c.s.writes.Inc()
	now := c.s.engine.Now()
	if c.holder.CanWrite(d, now) {
		// Write-back: absorbed locally, zero messages.
		c.holder.WriteLocal(d, now)
		v, _ := c.holder.Version(d)
		c.cached[d] = v
		c.s.writeHits.Inc()
		// Renew before expiry while actively writing, so buffered
		// writes are not lost to a lapsed token (the token analogue of
		// lease extension).
		if c.holder.ExpiresWithin(d, now, c.s.cfg.Term/4) {
			c.acquire(d, core.TokenWrite)
		}
		return
	}
	c.scrubExpired(d, now)
	c.acquire(d, core.TokenWrite)
}

// acquire asks the server for a token unless an equal-or-stronger
// acquisition is already outstanding.
func (c *tokenClient) acquire(d vfs.Datum, mode core.TokenMode) {
	if cur, ok := c.pendingMode[d]; ok {
		if cur == core.TokenWrite || cur == mode {
			return
		}
	}
	c.pendingMode[d] = mode
	c.nextReq++
	c.s.fabric.Unicast(c.node, serverNode, kindAcquire, acquireMsg{
		ReqID: c.nextReq, From: c.id, Datum: d, Mode: mode,
	})
}

var debugTokens = false

func (c *tokenClient) handle(m netsim.Message) {
	now := c.s.engine.Now()
	if debugTokens {
		fmt.Printf("%v %s <- %T %+v\n", now.Sub(clock.Epoch), c.id, m.Payload, m.Payload)
	}
	switch p := m.Payload.(type) {
	case grantMsg:
		delete(c.pendingMode, p.Datum)
		if p.Term > 0 {
			c.holder.ApplyToken(p.Datum, p.Mode, p.Version, p.Term, now, now)
		}
		c.cached[p.Datum] = p.Version
		if p.Mode == core.TokenWrite {
			// The deferred write the acquisition served: apply locally.
			c.holder.WriteLocal(p.Datum, now)
			if v, ok := c.holder.Version(p.Datum); ok {
				c.cached[p.Datum] = v
			}
		}
	case recallMsg:
		if c.holder.OnRecall(p.Datum) {
			// Dirty: flush first, then answer the recall.
			c.flushThen(p.Datum, func() { c.answerRecall(p) })
			return
		}
		c.answerRecall(p)
	case flushAckMsg:
		c.holder.Flushed(p.Datum, p.Version)
		if cb := c.afterFlush[p.Datum]; cb != nil {
			delete(c.afterFlush, p.Datum)
			cb()
		}
	default:
		panic("tokensim: unknown payload at client")
	}
}

func (c *tokenClient) answerRecall(p recallMsg) {
	downgraded := false
	if p.ReadOnly && c.holder.Mode(p.Datum) == core.TokenWrite && !c.holder.Dirty(p.Datum) {
		downgraded = c.holder.DowngradeLocal(p.Datum)
	}
	if !downgraded {
		c.holder.Invalidate(p.Datum)
		delete(c.cached, p.Datum)
	}
	c.s.fabric.Unicast(c.node, serverNode, kindRecallOK, recallAckMsg{
		AcqID: p.AcqID, From: c.id, Downgraded: downgraded,
	})
}

// flush sends dirty contents to the server. Only a live write token
// confers the right to flush; dirty data under an expired token is lost
// (see scrubExpired).
func (c *tokenClient) flush(d vfs.Datum) {
	now := c.s.engine.Now()
	if !c.holder.CanWrite(d, now) {
		c.scrubExpired(d, now)
		return
	}
	v, ok := c.holder.Version(d)
	if !ok || !c.holder.Dirty(d) {
		return
	}
	c.s.fabric.Unicast(c.node, serverNode, kindFlush, flushMsg{From: c.id, Datum: d, Version: v})
}

// flushThen flushes and runs cb when the ack arrives.
func (c *tokenClient) flushThen(d vfs.Datum, cb func()) {
	if c.afterFlush == nil {
		c.afterFlush = make(map[vfs.Datum]func())
	}
	c.afterFlush[d] = cb
	c.flush(d)
}

func (c *tokenClient) scheduleFlush() {
	var tick func()
	tick = func() {
		for _, d := range c.holder.DirtyData() {
			c.flush(d)
		}
		if c.s.engine.Now().Before(clock.Epoch.Add(c.s.cfg.Trace.Duration)) {
			c.s.engine.After(c.s.cfg.FlushInterval, tick)
		}
	}
	c.s.engine.After(c.s.cfg.FlushInterval, tick)
}

// checkFreshness asserts the token consistency invariant on a local
// read: the cached version is at least the server's flushed version
// (a write-token holder may be ahead; a read-token holder must match,
// since any writer had to recall this token first).
func (c *tokenClient) checkFreshness(d vfs.Datum) {
	server := c.s.versions[d]
	if c.cached[d] < server {
		fmt.Printf("STALE: client=%s datum=%v cached=%d server=%d mode=%v dirty=%v t=%v\n",
			c.id, d, c.cached[d], server, c.holder.Mode(d), c.holder.Dirty(d), c.s.engine.Now())
		c.s.stale.Inc()
	}
}
