package tokensim

import (
	"testing"
	"time"

	"leases/internal/netsim"
	"leases/internal/trace"
	"leases/internal/tracesim"
)

func lanNet() netsim.Params {
	return netsim.Params{Prop: 500 * time.Microsecond, Proc: 50 * time.Microsecond, Seed: 1}
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r := Run(cfg)
	if r.StaleReads != 0 {
		t.Fatalf("TOKEN CONSISTENCY VIOLATION: %d stale reads", r.StaleReads)
	}
	return r
}

// A private write-heavy workload: each client hammers its own file.
// Write-back should absorb nearly all writes locally.
func privateWriteHeavy(seed int64) *trace.Trace {
	tr := trace.Poisson(trace.PoissonConfig{
		Seed: seed, Duration: 30 * time.Minute, Clients: 4, Files: 4,
		ReadRate: 0.4, WriteRate: 1.0,
	})
	// Make file access private: client i uses file i only.
	for j := range tr.Events {
		tr.Events[j].File = tr.Events[j].Client
	}
	return tr
}

func TestWriteBackAbsorbsPrivateWrites(t *testing.T) {
	tr := privateWriteHeavy(1)
	res := run(t, Config{Trace: tr, Term: 30 * time.Second, Net: lanNet()})
	if res.Writes == 0 {
		t.Skip("no writes generated")
	}
	frac := float64(res.WriteHits) / float64(res.Writes)
	if frac < 0.95 {
		t.Fatalf("only %.2f of private writes absorbed locally, want ≥0.95", frac)
	}
}

// Head-to-head: on the private write-heavy workload, write-back (tokens)
// sends far fewer messages to the server than write-through (leases).
func TestWriteBackBeatsWriteThroughOnPrivateData(t *testing.T) {
	tr := privateWriteHeavy(2)
	tokens := run(t, Config{Trace: tr, Term: 30 * time.Second, Net: lanNet()})
	leases := tracesim.Run(tracesim.Config{Trace: tr, Term: 30 * time.Second, Net: lanNet()})
	if leases.StaleReads != 0 {
		t.Fatal("lease run inconsistent")
	}
	// Write-through pays 2 messages per write (request + ack, "data."
	// kinds) plus consistency traffic; write-back pays only occasional
	// flushes. Compare total server messages.
	if tokens.ServerTotalMsgs*2 >= leases.ServerTotalMsgs {
		t.Fatalf("write-back total %d not well below write-through %d on private write-heavy data",
			tokens.ServerTotalMsgs, leases.ServerTotalMsgs)
	}
}

// Shared data with interleaved writers: recalls force flushes; readers
// always see flushed data (the run helper asserts zero staleness).
func TestTokensConsistentUnderSharing(t *testing.T) {
	tr := trace.Shared(trace.SharedConfig{
		Seed: 3, Duration: 30 * time.Minute, Clients: 5, Files: 2,
		ReadRate: 0.6, WriteRate: 0.1,
	})
	res := run(t, Config{Trace: tr, Term: 10 * time.Second, Net: lanNet()})
	if res.Recalls == 0 {
		t.Fatal("sharing produced no recalls — conflict path not exercised")
	}
	if res.Flushes == 0 {
		t.Fatal("no flushes despite recalled dirty tokens")
	}
}

// Periodic flushing bounds the window of unflushed data at the cost of
// extra flush traffic — and it is what prevents the write-back hazard:
// lazy flushing loses buffered writes when tokens expire dirty, eager
// flushing does not.
func TestPeriodicFlushTradeoff(t *testing.T) {
	tr := privateWriteHeavy(4)
	lazy := run(t, Config{Trace: tr, Term: 30 * time.Second, Net: lanNet()})
	eager := run(t, Config{Trace: tr, Term: 30 * time.Second, Net: lanNet(), FlushInterval: 5 * time.Second})
	if eager.Flushes <= lazy.Flushes {
		t.Fatalf("periodic flushing produced %d flushes, lazy %d — interval not working",
			eager.Flushes, lazy.Flushes)
	}
	// With pre-expiry renewal, active writers never lose buffered
	// writes in either regime (loss requires a crash, which the
	// write-back example and core tests exercise).
	if lazy.LostWrites != 0 || eager.LostWrites != 0 {
		t.Fatalf("writes lost without crashes: lazy=%d eager=%d", lazy.LostWrites, eager.LostWrites)
	}
}

// Read-mostly shared data: tokens behave like plain leases (read tokens
// shared by all, writers recall), with similar consistency load.
func TestTokensOnReadMostlyMatchLeases(t *testing.T) {
	tr := trace.Shared(trace.SharedConfig{
		Seed: 5, Duration: 30 * time.Minute, Clients: 4, Files: 2,
		ReadRate: 0.864, WriteRate: 0.01,
	})
	tokens := run(t, Config{Trace: tr, Term: 10 * time.Second, Net: lanNet()})
	leaseRes := tracesim.Run(tracesim.Config{Trace: tr, Term: 10 * time.Second, Net: lanNet()})
	ratio := tokens.ConsistencyLoad / leaseRes.ConsistencyLoad
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("token consistency load %.3f/s vs lease %.3f/s (ratio %.2f) — should be comparable on read-mostly data",
			tokens.ConsistencyLoad, leaseRes.ConsistencyLoad, ratio)
	}
}

func TestRunValidation(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Trace: privateWriteHeavy(6), Term: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad config did not panic")
				}
			}()
			Run(cfg)
		}()
	}
}
