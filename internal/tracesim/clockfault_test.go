package tracesim

import (
	"testing"
	"time"

	"leases/internal/trace"
)

// §5: "a server clock that advances too quickly can cause errors because
// it may allow a write before the term of a lease held by a previous
// client has expired at that client." Two clients share a file; the
// server's clock runs 50% fast, so it releases a crashed-holder-blocked
// write while the reader still trusts its lease.
func TestFastServerClockViolatesConsistency(t *testing.T) {
	tr := sharingScenario()
	res := Run(Config{
		Trace: tr, Term: 10 * time.Second, Net: lanNet(),
		ServerClockRate: 1.5,
		// Reader is partitioned so it cannot receive the approval
		// request; the write must wait out the lease — which the fast
		// server clock cuts short.
		Faults: []Fault{{Kind: PartitionClient, At: 2 * time.Second, Client: 0}},
	})
	if res.StaleReads == 0 {
		t.Fatal("fast server clock produced no stale reads — the failure mode is not being modelled")
	}
}

// The same scenario with a well-behaved server clock is consistent.
func TestSameScenarioConsistentWithGoodClocks(t *testing.T) {
	tr := sharingScenario()
	res := Run(Config{
		Trace: tr, Term: 10 * time.Second, Net: lanNet(),
		Faults: []Fault{{Kind: PartitionClient, At: 2 * time.Second, Client: 0}},
	})
	if res.StaleReads != 0 {
		t.Fatalf("well-behaved clocks produced %d stale reads", res.StaleReads)
	}
}

// §5: "if a client clock fails by advancing too slowly, it may continue
// using a lease which the server regards as having expired."
func TestSlowClientClockViolatesConsistency(t *testing.T) {
	tr := sharingScenario()
	res := Run(Config{
		Trace: tr, Term: 10 * time.Second, Net: lanNet(),
		ClientClockRate: []float64{0.5, 1.0},
		Faults:          []Fault{{Kind: PartitionClient, At: 2 * time.Second, Client: 0}},
	})
	if res.StaleReads == 0 {
		t.Fatal("slow client clock produced no stale reads")
	}
}

// §5: "The opposite errors — a slow server clock or fast client clock —
// do not result in inconsistencies, but do generate extra traffic since
// a client will regard leases to have expired before the server does."
func TestBenignClockErrorsCostOnlyTraffic(t *testing.T) {
	tr := trace.Poisson(trace.PoissonConfig{
		Seed: 77, Duration: time.Hour, Clients: 1, Files: 1,
		ReadRate: 0.864, WriteRate: 0.04,
	})
	good := Run(Config{Trace: tr, Term: 10 * time.Second, Net: lanNet()})
	fastClient := Run(Config{
		Trace: tr, Term: 10 * time.Second, Net: lanNet(),
		ClientClockRate: []float64{2.0},
	})
	if fastClient.StaleReads != 0 {
		t.Fatalf("fast client clock caused %d stale reads — should be safe", fastClient.StaleReads)
	}
	if fastClient.ServerConsistencyMsgs <= good.ServerConsistencyMsgs {
		t.Fatalf("fast client clock traffic %d not above well-behaved %d",
			fastClient.ServerConsistencyMsgs, good.ServerConsistencyMsgs)
	}
	slowServer := Run(Config{
		Trace: tr, Term: 10 * time.Second, Net: lanNet(),
		ServerClockRate: 0.5,
	})
	if slowServer.StaleReads != 0 {
		t.Fatalf("slow server clock caused %d stale reads — should be safe", slowServer.StaleReads)
	}
}

// The ε allowance absorbs bounded skew: with drift small enough that the
// accumulated error within a term stays below ε, even a slow client
// clock stays consistent.
func TestAllowanceAbsorbsBoundedDrift(t *testing.T) {
	tr := sharingScenario()
	// 1% slow over a 10 s term accrues ≤ 100 ms of error, within ε=200ms.
	res := Run(Config{
		Trace: tr, Term: 10 * time.Second, Net: lanNet(),
		Allowance:       200 * time.Millisecond,
		ClientClockRate: []float64{0.99, 1.0},
		Faults:          []Fault{{Kind: PartitionClient, At: 2 * time.Second, Client: 0}},
	})
	if res.StaleReads != 0 {
		t.Fatalf("ε did not absorb 1%% drift: %d stale reads", res.StaleReads)
	}
}

// sharingScenario: client 0 reads and keeps re-reading a file under
// lease; client 1 writes it mid-term. Used by the clock-failure tests.
func sharingScenario() *trace.Trace {
	events := []trace.Event{
		{At: 1 * time.Second, Client: 0, File: 0, Op: trace.OpRead},
		{At: 3 * time.Second, Client: 1, File: 0, Op: trace.OpWrite},
	}
	// Client 0 re-reads every 500 ms through the term: if the write
	// applies while its lease is still locally valid, staleness shows.
	for at := 3500 * time.Millisecond; at < 14*time.Second; at += 500 * time.Millisecond {
		events = append(events, trace.Event{At: at, Client: 0, File: 0, Op: trace.OpRead})
	}
	tr := &trace.Trace{Duration: 30 * time.Second, Clients: 2, Files: 1}
	tr.Events = events
	return tr
}
