package tracesim

import (
	"time"

	"leases/internal/core"
	"leases/internal/vfs"
)

// Message kinds on the fabric. Kinds under "lease." are consistency
// traffic — the quantity formula (1) models; "data." kinds are the base
// file traffic every design pays.
const (
	kindExtendReq    = "lease.extend"        // client → server: fetch/extend request
	kindExtendRep    = "lease.grant"         // server → client: grant(s) + version(s)
	kindApprovalReq  = "lease.approval-req"  // server → holders: approve write?
	kindApprove      = "lease.approve"       // holder → server: approved
	kindInstalledExt = "lease.installed-ext" // server → all: multicast extension
	kindWriteReq     = "data.write"          // client → server: write-through
	kindWriteAck     = "data.ack"            // server → client: write applied
)

// consistencyPrefix selects lease-protocol traffic in fabric accounting.
const consistencyPrefix = "lease."

// extendReq asks the server to grant or extend leases on data (and
// return current versions). A read miss sends a request covering the
// missed datum, or, with batching enabled, every datum the cache holds.
type extendReq struct {
	ReqID uint64
	From  core.ClientID
	Data  []vfs.Datum
	// SentAt anchors the conservative effective-term computation.
	SentAt time.Time
}

// grantInfo is the per-datum part of an extension reply.
type grantInfo struct {
	Datum   vfs.Datum
	Term    time.Duration
	Version uint64
	Leased  bool
}

// extendRep answers an extendReq.
type extendRep struct {
	ReqID  uint64
	Grants []grantInfo
}

// writeReq submits a write-through write.
type writeReq struct {
	ReqID uint64
	From  core.ClientID
	Datum vfs.Datum
}

// writeAck confirms a write was applied at the given version.
type writeAck struct {
	ReqID   uint64
	Version uint64
}

// approvalReq asks a leaseholder to approve a pending write.
type approvalReq struct {
	WriteID core.WriteID
	Datum   vfs.Datum
}

// approveMsg grants approval for a pending write.
type approveMsg struct {
	WriteID core.WriteID
	From    core.ClientID
}

// installedExt is the periodic multicast extension over installed data.
type installedExt struct {
	Data   []vfs.Datum
	Term   time.Duration
	SentAt time.Time
}
