// Package tracesim is the trace-driven simulator of §3.2: it replays a
// workload trace against the lease protocol (internal/core) over the
// simulated network (internal/netsim) and measures exactly what the
// paper measures — consistency-related messages handled by the server
// and the delay consistency adds to each read and write.
//
// The "Trace" curve of Figure 1 is this simulator run over a bursty
// V-like workload; the analytic curves are validated against it in the
// package tests (the simulated Poisson workload must track formula (1)
// closely, while burstier traces show the sharper knee the paper
// predicts).
package tracesim

import (
	"fmt"
	"time"

	"leases/internal/clock"
	"leases/internal/core"
	"leases/internal/netsim"
	"leases/internal/sim"
	"leases/internal/stats"
	"leases/internal/trace"
	"leases/internal/vfs"
)

// AdaptiveConfig parameterizes the adaptive term policy.
type AdaptiveConfig struct {
	// Window is the sliding window over which access rates are
	// estimated. Zero means 60 s.
	Window time.Duration
	// Min and Max clamp granted terms. Zeros mean 1 s and 30 s.
	Min, Max time.Duration
}

func (a *AdaptiveConfig) withDefaults() AdaptiveConfig {
	out := *a
	if out.Window == 0 {
		out.Window = time.Minute
	}
	if out.Min == 0 {
		out.Min = time.Second
	}
	if out.Max == 0 {
		out.Max = 30 * time.Second
	}
	return out
}

// InstalledConfig enables the §4 installed-files optimization.
type InstalledConfig struct {
	// Term granted by each multicast extension.
	Term time.Duration
	// Period between extensions. Must be below Term or leases lapse
	// between extensions.
	Period time.Duration
}

// FaultKind enumerates injectable failures.
type FaultKind uint8

// Fault kinds.
const (
	ClientCrash FaultKind = iota + 1
	ClientRestart
	ServerCrash
	ServerRestart
	PartitionClient // cut the client↔server link
	HealClient
)

// Fault schedules one failure event.
type Fault struct {
	Kind FaultKind
	// At is the offset from trace start.
	At time.Duration
	// Client selects the affected client (ignored for server faults).
	Client int
}

// Config parameterizes a simulation run.
type Config struct {
	// Trace is the workload to replay. Required.
	Trace *trace.Trace
	// Term is the fixed lease term t_s the server grants; 0 is the
	// zero-term baseline and core.Infinite the callback baseline.
	Term time.Duration
	// Policy, when non-nil, overrides Term with an arbitrary policy.
	Policy core.TermPolicy
	// Net is the message fabric model (m_prop, m_proc, loss, seed).
	Net netsim.Params
	// Allowance is ε.
	Allowance time.Duration
	// BatchExtension makes a miss extend every lease the cache holds in
	// one request rather than just the missed datum (§3.1 option).
	BatchExtension bool
	// AnticipatoryLead, when positive, makes clients renew leases that
	// will expire within the lead, checking twice per lead (§4 option:
	// better response time, more server load).
	AnticipatoryLead time.Duration
	// Installed enables the installed-files optimization for the files
	// the trace marks installed.
	Installed *InstalledConfig
	// Faults to inject.
	Faults []Fault
	// RetryTimeout and MaxRetries govern client retransmission. Zero
	// values mean 4×RTT and 10.
	RetryTimeout time.Duration
	MaxRetries   int
	// DetailedRecovery makes a restarting server restore a persisted
	// lease snapshot instead of waiting out the maximum granted term
	// (the §2 alternative).
	DetailedRecovery bool
	// Adaptive, when non-nil, replaces the fixed term with the §4/§7
	// adaptive policy: the server monitors per-datum access rates and
	// sets terms from the analytic model ("we plan to explore adaptive
	// policies that vary the coverage and term of leases in response to
	// system behavior in place of static, administratively set
	// policies"). Overrides Term and Policy.
	Adaptive *AdaptiveConfig
	// UnicastApprovals sends one approval request per leaseholder
	// instead of a single multicast — the ablation behind the paper's
	// footnote "Without multicast, it would require 2(S−1) messages"
	// and the α_unicast = R/((S−1)W) benefit factor.
	UnicastApprovals bool
	// ClientClockRate, when non-nil, gives client i a clock running at
	// rate ClientClockRate[i] relative to true time (1.0 = perfect;
	// <1 slow, >1 fast). ServerClockRate does the same for the server;
	// zero means 1.0. These inject the §5 clock failures: a fast server
	// clock or slow client clock can violate consistency (observable as
	// StaleReads); the opposite errors only add traffic.
	ClientClockRate []float64
	ServerClockRate float64
}

// Result reports what the run measured.
type Result struct {
	// Duration is the virtual time simulated (trace duration plus
	// drain).
	Duration time.Duration
	// ServerConsistencyMsgs counts lease-protocol messages handled
	// (sent or received) by the server — formula (1)'s quantity.
	ServerConsistencyMsgs int64
	// ServerTotalMsgs counts all messages handled by the server.
	ServerTotalMsgs int64
	// ConsistencyLoad is ServerConsistencyMsgs per second.
	ConsistencyLoad float64
	// Reads/Writes are completed operations; CacheHits are reads served
	// from cache under a valid lease.
	Reads, Writes, CacheHits int64
	// StaleReads counts consistency violations observed (cache hits
	// whose version lagged the server). Zero in every non-Byzantine
	// run; clock-failure experiments make it positive.
	StaleReads int64
	// ReadDelay and WriteDelay summarize the delay consistency added to
	// each operation (reads: 0 on hit, round trip on miss; writes: time
	// beyond the base round trip).
	ReadDelay, WriteDelay DelaySummary
	// AddedDelayMean is formula (2)'s quantity: mean added delay over
	// all reads and writes.
	AddedDelayMean time.Duration
	// WriteWaits summarizes server-side write deferrals.
	WriteWaits DelaySummary
	// LostMessages and PartitionDrops report fabric-level failures.
	LostMessages, PartitionDrops int64
	// GivenUpOps counts operations abandoned after MaxRetries.
	GivenUpOps int64
	// MaxLeaseRecords is the peak number of lease records at the server.
	MaxLeaseRecords int
}

// DelaySummary is a compact distribution summary.
type DelaySummary struct {
	Count          int64
	Mean, Min, Max time.Duration
}

func summarize(d *stats.DurationStat) DelaySummary {
	return DelaySummary{Count: d.Count(), Mean: d.Mean(), Min: d.Min(), Max: d.Max()}
}

// Run executes the simulation.
func Run(cfg Config) *Result {
	if cfg.Trace == nil {
		panic("tracesim: nil trace")
	}
	if cfg.RetryTimeout == 0 {
		cfg.RetryTimeout = 4 * cfg.Net.RoundTrip()
		if cfg.RetryTimeout == 0 {
			cfg.RetryTimeout = time.Second
		}
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 10
	}
	s := newSimulation(cfg)
	s.scheduleTrace()
	s.scheduleFaults()
	s.engine.Run()
	return s.result()
}

// simulation wires the server, clients, fabric and accounting together.
type simulation struct {
	cfg     Config
	engine  *sim.Engine
	fabric  *netsim.Fabric
	server  *simServer
	clients []*simClient

	readDelay  stats.DurationStat
	writeDelay stats.DurationStat
	writeWaits stats.DurationStat
	reads      stats.Counter
	writes     stats.Counter
	hits       stats.Counter
	stale      stats.Counter
	givenUp    stats.Counter
	start      time.Time
	end        time.Time
}

func newSimulation(cfg Config) *simulation {
	engine := sim.New(clock.Epoch)
	fabric := netsim.New(engine, cfg.Net)
	s := &simulation{cfg: cfg, engine: engine, fabric: fabric, start: clock.Epoch}
	s.server = newSimServer(s)
	for i := 0; i < cfg.Trace.Clients; i++ {
		s.clients = append(s.clients, newSimClient(s, i))
	}
	return s
}

func datumForFile(f uint32) vfs.Datum {
	return vfs.Datum{Kind: vfs.FileData, Node: vfs.NodeID(f) + 2} // root is 1
}

func clientNode(i int) netsim.NodeID {
	return netsim.NodeID(fmt.Sprintf("c%d", i))
}

const serverNode netsim.NodeID = "srv"

func (s *simulation) scheduleTrace() {
	for _, e := range s.cfg.Trace.Events {
		e := e
		s.engine.At(s.start.Add(e.At), func() {
			c := s.clients[e.Client]
			switch e.Op {
			case trace.OpRead:
				c.read(datumForFile(e.File))
			case trace.OpWrite:
				c.write(datumForFile(e.File))
			}
		})
	}
	s.end = s.start.Add(s.cfg.Trace.Duration)
}

func (s *simulation) scheduleFaults() {
	for _, f := range s.cfg.Faults {
		f := f
		s.engine.At(s.start.Add(f.At), func() {
			switch f.Kind {
			case ClientCrash:
				s.clients[f.Client].crash()
			case ClientRestart:
				s.clients[f.Client].restart()
			case ServerCrash:
				s.server.crash()
			case ServerRestart:
				s.server.restart()
			case PartitionClient:
				s.fabric.CutLink(clientNode(f.Client), serverNode)
			case HealClient:
				s.fabric.HealLink(clientNode(f.Client), serverNode)
			}
		})
	}
}

func (s *simulation) now() time.Time { return s.engine.Now() }

// localTime maps true time onto a drifting local clock that read start
// at the true instant start.
func localTime(start, now time.Time, rate float64) time.Time {
	if rate == 0 || rate == 1 {
		return now
	}
	return start.Add(time.Duration(float64(now.Sub(start)) * rate))
}

// trueTime inverts localTime: the true instant at which the drifting
// clock will read local.
func trueTime(start, local time.Time, rate float64) time.Time {
	if rate == 0 || rate == 1 {
		return local
	}
	return start.Add(time.Duration(float64(local.Sub(start)) / rate))
}

func (s *simulation) result() *Result {
	duration := s.engine.Now().Sub(s.start)
	if duration < s.cfg.Trace.Duration {
		duration = s.cfg.Trace.Duration
	}
	r := &Result{
		Duration:              duration,
		ServerConsistencyMsgs: s.fabric.Handled(serverNode, consistencyPrefix),
		ServerTotalMsgs:       s.fabric.Handled(serverNode, ""),
		Reads:                 s.reads.Value(),
		Writes:                s.writes.Value(),
		CacheHits:             s.hits.Value(),
		StaleReads:            s.stale.Value(),
		ReadDelay:             summarize(&s.readDelay),
		WriteDelay:            summarize(&s.writeDelay),
		WriteWaits:            summarize(&s.writeWaits),
		LostMessages:          s.fabric.Losses(),
		PartitionDrops:        s.fabric.PartitionDrops(),
		GivenUpOps:            s.givenUp.Value(),
		MaxLeaseRecords:       s.server.maxLeaseRecords,
	}
	r.ConsistencyLoad = float64(r.ServerConsistencyMsgs) / s.cfg.Trace.Duration.Seconds()
	total := s.readDelay.Sum() + s.writeDelay.Sum()
	ops := s.readDelay.Count() + s.writeDelay.Count()
	if ops > 0 {
		r.AddedDelayMean = total / time.Duration(ops)
	}
	return r
}
