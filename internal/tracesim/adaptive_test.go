package tracesim

import (
	"testing"
	"time"

	"leases/internal/trace"
)

// mixedWorkload: file 0 is read-mostly by everyone; file 1 is heavily
// write-shared. A single fixed term cannot serve both well.
func mixedWorkload(seed int64, dur time.Duration) *trace.Trace {
	readMostly := trace.Poisson(trace.PoissonConfig{
		Seed: seed, Duration: dur, Clients: 6, Files: 1,
		ReadRate: 0.864, WriteRate: 0.005,
	})
	writeHot := trace.Poisson(trace.PoissonConfig{
		Seed: seed + 1, Duration: dur, Clients: 6, Files: 1,
		ReadRate: 0.4, WriteRate: 1.0,
	})
	// Shift the write-hot stream onto file index 1.
	for i := range writeHot.Events {
		writeHot.Events[i].File = 1
	}
	m := trace.Merge(readMostly, writeHot)
	m.Files = 2
	return m
}

// The adaptive policy (§4/§7) must beat the best *wrong* fixed term on
// a mixed workload: long terms hurt the write-hot file (approval storms
// and false sharing), zero terms hurt the read-mostly file.
func TestAdaptivePolicyBeatsBadFixedTerms(t *testing.T) {
	tr := mixedWorkload(51, time.Hour)
	adaptive := run(t, Config{
		Trace: tr, Net: lanNet(),
		Adaptive: &AdaptiveConfig{Window: time.Minute, Min: time.Second, Max: 30 * time.Second},
	})
	fixedLong := run(t, Config{Trace: tr, Term: 30 * time.Second, Net: lanNet()})
	fixedZero := run(t, Config{Trace: tr, Term: 0, Net: lanNet()})

	if adaptive.ServerConsistencyMsgs >= fixedLong.ServerConsistencyMsgs {
		t.Errorf("adaptive load %d not below fixed-30s %d on mixed workload",
			adaptive.ServerConsistencyMsgs, fixedLong.ServerConsistencyMsgs)
	}
	if adaptive.ServerConsistencyMsgs >= fixedZero.ServerConsistencyMsgs {
		t.Errorf("adaptive load %d not below fixed-0 %d on mixed workload",
			adaptive.ServerConsistencyMsgs, fixedZero.ServerConsistencyMsgs)
	}
	if adaptive.CacheHits == 0 {
		t.Error("adaptive policy produced no cache hits — read-mostly file not leased")
	}
}

// On the pure read-mostly workload, adaptive converges to long terms:
// its load approaches the long-fixed-term load, far below zero-term.
func TestAdaptiveConvergesOnReadMostly(t *testing.T) {
	tr := trace.Poisson(trace.PoissonConfig{
		Seed: 3, Duration: time.Hour, Clients: 1, Files: 1,
		ReadRate: 0.864, WriteRate: 0.004,
	})
	adaptive := run(t, Config{
		Trace: tr, Net: lanNet(),
		Adaptive: &AdaptiveConfig{},
	})
	zero := run(t, Config{Trace: tr, Term: 0, Net: lanNet()})
	if adaptive.ServerConsistencyMsgs*3 >= zero.ServerConsistencyMsgs {
		t.Fatalf("adaptive %d not well below zero-term %d on read-mostly workload",
			adaptive.ServerConsistencyMsgs, zero.ServerConsistencyMsgs)
	}
}

// Unicast approvals cost more server messages than multicast at the
// same sharing level: S messages (1 multicast + S−1 approvals) versus
// 2(S−1) (requests + approvals).
func TestUnicastApprovalsCostMore(t *testing.T) {
	tr := trace.Shared(trace.SharedConfig{
		Seed: 13, Duration: 30 * time.Minute, Clients: 10, Files: 1,
		ReadRate: 0.864, WriteRate: 0.01,
	})
	multicast := run(t, Config{Trace: tr, Term: 30 * time.Second, Net: lanNet()})
	unicast := run(t, Config{Trace: tr, Term: 30 * time.Second, Net: lanNet(), UnicastApprovals: true})
	if unicast.ServerConsistencyMsgs <= multicast.ServerConsistencyMsgs {
		t.Fatalf("unicast approvals %d not above multicast %d",
			unicast.ServerConsistencyMsgs, multicast.ServerConsistencyMsgs)
	}
}
