package tracesim

import (
	"math"
	"testing"
	"time"

	"leases/internal/analytic"
	"leases/internal/core"
	"leases/internal/netsim"
	"leases/internal/trace"
)

func lanNet() netsim.Params {
	return netsim.Params{Prop: 500 * time.Microsecond, Proc: 500 * time.Microsecond, Seed: 1}
}

// singleFilePoisson is the analytic model's world made concrete: one
// client, one file, Poisson reads and writes.
func singleFilePoisson(seed int64, dur time.Duration) *trace.Trace {
	return trace.Poisson(trace.PoissonConfig{
		Seed:      seed,
		Duration:  dur,
		Clients:   1,
		Files:     1,
		ReadRate:  0.864,
		WriteRate: 0.04,
	})
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r := Run(cfg)
	if r.StaleReads != 0 {
		t.Fatalf("CONSISTENCY VIOLATION: %d stale reads", r.StaleReads)
	}
	return r
}

// The simulator must track formula (1): relative consistency load at
// term t equals 1/(1+R·t_c) for the unshared Poisson workload. This is
// the validation the paper performs with its Trace curve ("the proximity
// of this curve to the no-sharing (S = 1) curve ... validates the
// model").
func TestSimulatorMatchesAnalyticModelS1(t *testing.T) {
	tr := singleFilePoisson(42, 2*time.Hour)
	p := analytic.VParams()
	p.Eps = 100 * time.Millisecond

	zero := run(t, Config{Trace: tr, Term: 0, Net: lanNet(), Allowance: p.Eps})
	zeroLoad := zero.ConsistencyLoad
	// Zero term: 2 messages per read (request + response).
	wantZero := 2 * float64(zero.Reads) / tr.Duration.Seconds()
	if math.Abs(zeroLoad-wantZero)/wantZero > 0.01 {
		t.Fatalf("zero-term load %.4f msg/s, want %.4f (2 per read)", zeroLoad, wantZero)
	}

	for _, term := range []time.Duration{2 * time.Second, 10 * time.Second, 30 * time.Second} {
		res := run(t, Config{Trace: tr, Term: term, Net: lanNet(), Allowance: p.Eps})
		got := res.ConsistencyLoad / zeroLoad
		want := p.RelativeLoad(term)
		if math.Abs(got-want) > 0.05*want+0.02 {
			t.Errorf("term %v: relative load %.4f, analytic %.4f", term, got, want)
		}
	}
}

// §3.2 headline, simulated: a 10-second term cuts consistency traffic to
// ≈10% of the zero-term level.
func TestHeadlineTenSecondTermSimulated(t *testing.T) {
	tr := singleFilePoisson(7, 2*time.Hour)
	zero := run(t, Config{Trace: tr, Term: 0, Net: lanNet()})
	ten := run(t, Config{Trace: tr, Term: 10 * time.Second, Net: lanNet()})
	rel := ten.ConsistencyLoad / zero.ConsistencyLoad
	if rel < 0.07 || rel > 0.14 {
		t.Fatalf("10s-term relative load %.3f, want ≈0.10", rel)
	}
}

// The bursty trace must show the sharper, lower knee the paper reports
// for the real V trace: at a short term it achieves a lower relative
// load than the Poisson workload of equal rates.
func TestBurstyTraceHasSharperKnee(t *testing.T) {
	const term = 5 * time.Second
	poisson := trace.Poisson(trace.PoissonConfig{
		Seed: 3, Duration: 2 * time.Hour, Clients: 1, Files: 1,
		ReadRate: 0.864, WriteRate: 0.04,
	})
	bursty := trace.Bursty(trace.BurstyConfig{
		Seed: 3, Duration: 2 * time.Hour, Clients: 1, Files: 1,
		ReadRate: 0.864, WriteRate: 0.04,
	})
	relFor := func(tr *trace.Trace) float64 {
		z := run(t, Config{Trace: tr, Term: 0, Net: lanNet()})
		s := run(t, Config{Trace: tr, Term: term, Net: lanNet()})
		return s.ConsistencyLoad / z.ConsistencyLoad
	}
	rp, rb := relFor(poisson), relFor(bursty)
	if rb >= rp {
		t.Fatalf("bursty relative load %.4f not below Poisson %.4f at %v", rb, rp, term)
	}
}

func TestCacheHitsGrowWithTerm(t *testing.T) {
	tr := singleFilePoisson(5, time.Hour)
	prev := int64(-1)
	for _, term := range []time.Duration{0, time.Second, 10 * time.Second, core.Infinite} {
		res := run(t, Config{Trace: tr, Term: term, Net: lanNet()})
		if res.CacheHits < prev {
			t.Fatalf("cache hits decreased at term %v", term)
		}
		prev = res.CacheHits
	}
}

func TestInfiniteTermNearZeroSteadyLoad(t *testing.T) {
	tr := singleFilePoisson(11, time.Hour)
	res := run(t, Config{Trace: tr, Term: core.Infinite, Net: lanNet()})
	// One fetch for the file, then silence (writes are by the sole
	// leaseholder, needing no consistency traffic).
	if res.ServerConsistencyMsgs > 4 {
		t.Fatalf("infinite-term consistency messages = %d, want ≤4", res.ServerConsistencyMsgs)
	}
	if res.CacheHits < res.Reads-2 {
		t.Fatalf("hits %d of %d reads under infinite term", res.CacheHits, res.Reads)
	}
}

// Write sharing: S clients all caching one file, every write must gather
// S−1 approvals — and the per-write server message count matches the
// model's S messages (one multicast + S−1 approvals).
func TestSharedWritesGatherApprovals(t *testing.T) {
	tr := trace.Shared(trace.SharedConfig{
		Seed: 9, Duration: 30 * time.Minute, Clients: 10, Files: 1,
		ReadRate: 0.864, WriteRate: 0.01,
	})
	res := run(t, Config{Trace: tr, Term: 30 * time.Second, Net: lanNet()})
	if res.Writes == 0 {
		t.Skip("trace generated no writes")
	}
	if res.WriteDelay.Max == 0 {
		t.Fatal("no write ever waited for approvals despite 10-way sharing")
	}
	// Approval gathering is fast (milliseconds), far below the term:
	// writes must not be waiting out lease expiries when all holders are
	// reachable.
	if res.WriteDelay.Max > time.Second {
		t.Fatalf("max write delay %v — approvals should release writes in milliseconds", res.WriteDelay.Max)
	}
}

// A crashed client's lease delays a conflicting write by at most the
// remaining term (§2, §5).
func TestClientCrashDelaysWriteBoundedByTerm(t *testing.T) {
	const term = 10 * time.Second
	// Client 0 reads the file at t=1s then crashes at 2s; client 1
	// writes at 3s.
	tr := &trace.Trace{
		Duration: 60 * time.Second,
		Clients:  2,
		Files:    1,
		Events: []trace.Event{
			{At: 1 * time.Second, Client: 0, File: 0, Op: trace.OpRead},
			{At: 3 * time.Second, Client: 1, File: 0, Op: trace.OpWrite},
		},
	}
	res := run(t, Config{
		Trace: tr, Term: term, Net: lanNet(),
		Faults: []Fault{{Kind: ClientCrash, At: 2 * time.Second, Client: 0}},
	})
	if res.Writes != 1 {
		t.Fatalf("writes completed = %d", res.Writes)
	}
	// The lease was granted around t=1s with a 10s term; the write at
	// t=3s waits until ≈11s ⇒ ~8s of added delay.
	if res.WriteDelay.Max < 7*time.Second || res.WriteDelay.Max > term {
		t.Fatalf("write delay %v, want ≈8s (remaining term), ≤ term", res.WriteDelay.Max)
	}
}

// Server crash: after restart the server honours pre-crash leases by
// delaying writes for the maximum granted term (§2).
func TestServerCrashRecoveryWindow(t *testing.T) {
	const term = 10 * time.Second
	tr := &trace.Trace{
		Duration: 120 * time.Second,
		Clients:  2,
		Files:    2,
		Events: []trace.Event{
			{At: 1 * time.Second, Client: 0, File: 0, Op: trace.OpRead},
			// After restart at t=5s, client 1 writes file 1 (never
			// leased) — still delayed by the blanket recovery window.
			{At: 6 * time.Second, Client: 1, File: 1, Op: trace.OpWrite},
		},
	}
	res := run(t, Config{
		Trace: tr, Term: term, Net: lanNet(),
		Faults: []Fault{
			{Kind: ServerCrash, At: 4 * time.Second},
			{Kind: ServerRestart, At: 5 * time.Second},
		},
	})
	if res.Writes != 1 {
		t.Fatalf("writes completed = %d", res.Writes)
	}
	// Recovery until ≈15s; write submitted ≈6s ⇒ ≈9s delay.
	if res.WriteDelay.Max < 7*time.Second || res.WriteDelay.Max > 11*time.Second {
		t.Fatalf("write delay %v, want ≈9s (recovery window)", res.WriteDelay.Max)
	}
}

// With the detailed persistent record (§2's alternative), the restarted
// server knows file 1 has no lease and applies the write immediately.
func TestServerCrashDetailedRecovery(t *testing.T) {
	const term = 10 * time.Second
	tr := &trace.Trace{
		Duration: 120 * time.Second,
		Clients:  2,
		Files:    2,
		Events: []trace.Event{
			{At: 1 * time.Second, Client: 0, File: 0, Op: trace.OpRead},
			{At: 6 * time.Second, Client: 1, File: 1, Op: trace.OpWrite},
			// File 0 is still leased by client 0: this write must wait.
			{At: 6 * time.Second, Client: 1, File: 0, Op: trace.OpWrite},
		},
	}
	res := run(t, Config{
		Trace: tr, Term: term, Net: lanNet(), DetailedRecovery: true,
		Faults: []Fault{
			{Kind: ServerCrash, At: 4 * time.Second},
			{Kind: ServerRestart, At: 5 * time.Second},
		},
	})
	if res.Writes != 2 {
		t.Fatalf("writes completed = %d", res.Writes)
	}
	if res.WriteDelay.Min > 50*time.Millisecond {
		t.Fatalf("unleased write delayed %v under detailed recovery", res.WriteDelay.Min)
	}
	// The leased write still waits for the restored lease: the approval
	// callback reaches the crashed... no — client 0 is alive, so it
	// approves and the wait is short but nonzero network time.
	if res.WriteDelay.Max == 0 {
		t.Fatal("leased write applied without honouring the restored lease")
	}
}

// Partition: the client on the far side keeps using valid leases; the
// writer's conflicting write waits out the partitioned holder's lease.
func TestPartitionDelaysWriteWithoutInconsistency(t *testing.T) {
	const term = 10 * time.Second
	tr := &trace.Trace{
		Duration: 60 * time.Second,
		Clients:  2,
		Files:    1,
		Events: []trace.Event{
			{At: 1 * time.Second, Client: 0, File: 0, Op: trace.OpRead},
			{At: 2 * time.Second, Client: 0, File: 0, Op: trace.OpRead}, // hit under lease
			{At: 3 * time.Second, Client: 1, File: 0, Op: trace.OpWrite},
			// Reads during the partition are hits while the lease lasts.
			{At: 4 * time.Second, Client: 0, File: 0, Op: trace.OpRead},
		},
		Installed: nil,
	}
	res := run(t, Config{
		Trace: tr, Term: term, Net: lanNet(),
		Faults: []Fault{{Kind: PartitionClient, At: 2500 * time.Millisecond, Client: 0}},
	})
	if res.Writes != 1 {
		t.Fatalf("writes completed = %d", res.Writes)
	}
	if res.WriteDelay.Max < 6*time.Second {
		t.Fatalf("write delay %v, want ≈8s (partitioned holder's lease)", res.WriteDelay.Max)
	}
	if res.CacheHits < 2 {
		t.Fatalf("cache hits %d — partitioned client should still use valid leases", res.CacheHits)
	}
}

// Message loss: consistency must hold; performance degrades only.
func TestMessageLossRemainsConsistent(t *testing.T) {
	tr := trace.Shared(trace.SharedConfig{
		Seed: 13, Duration: 20 * time.Minute, Clients: 4, Files: 2,
		ReadRate: 0.8, WriteRate: 0.02,
	})
	net := lanNet()
	net.LossRate = 0.05
	res := run(t, Config{Trace: tr, Term: 10 * time.Second, Net: net})
	if res.LostMessages == 0 {
		t.Fatal("loss rate produced no losses — test not exercising anything")
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Fatal("no operations completed under loss")
	}
}

// Anticipatory extension (§4): better read delay, more server load.
func TestAnticipatoryExtensionTradeoff(t *testing.T) {
	tr := singleFilePoisson(21, time.Hour)
	const term = 5 * time.Second
	onDemand := run(t, Config{Trace: tr, Term: term, Net: lanNet()})
	antic := run(t, Config{Trace: tr, Term: term, Net: lanNet(), AnticipatoryLead: 2 * time.Second})
	if antic.ReadDelay.Mean >= onDemand.ReadDelay.Mean {
		t.Fatalf("anticipatory read delay %v not below on-demand %v",
			antic.ReadDelay.Mean, onDemand.ReadDelay.Mean)
	}
	if antic.ServerConsistencyMsgs <= onDemand.ServerConsistencyMsgs {
		t.Fatalf("anticipatory server load %d not above on-demand %d — no free lunch",
			antic.ServerConsistencyMsgs, onDemand.ServerConsistencyMsgs)
	}
}

// Batched extension (§3.1): one request covers many files, cutting the
// extension message rate for multi-file working sets.
func TestBatchedExtensionReducesLoad(t *testing.T) {
	tr := trace.Bursty(trace.BurstyConfig{
		Seed: 31, Duration: time.Hour, Clients: 1, Files: 10,
		ReadRate: 0.864, WriteRate: 0.02, WorkingSet: 10,
	})
	const term = 10 * time.Second
	plain := run(t, Config{Trace: tr, Term: term, Net: lanNet()})
	batched := run(t, Config{Trace: tr, Term: term, Net: lanNet(), BatchExtension: true})
	if batched.ServerConsistencyMsgs >= plain.ServerConsistencyMsgs {
		t.Fatalf("batched load %d not below per-file load %d",
			batched.ServerConsistencyMsgs, plain.ServerConsistencyMsgs)
	}
}

// Lease records at the server stay bounded and are reclaimed by expiry.
func TestLeaseRecordStorageBounded(t *testing.T) {
	tr := trace.Poisson(trace.PoissonConfig{
		Seed: 41, Duration: time.Hour, Clients: 4, Files: 50,
		ReadRate: 1, WriteRate: 0.02,
	})
	res := run(t, Config{Trace: tr, Term: 10 * time.Second, Net: lanNet()})
	// 4 clients × 50 files is the absolute ceiling.
	if res.MaxLeaseRecords > 200 {
		t.Fatalf("MaxLeaseRecords = %d > 200", res.MaxLeaseRecords)
	}
	if res.MaxLeaseRecords == 0 {
		t.Fatal("no lease records tracked")
	}
}

func TestZeroTermEveryReadChecks(t *testing.T) {
	tr := singleFilePoisson(51, 30*time.Minute)
	res := run(t, Config{Trace: tr, Term: 0, Net: lanNet()})
	if res.CacheHits != 0 {
		t.Fatalf("zero term produced %d cache hits", res.CacheHits)
	}
	if res.ReadDelay.Min < lanNet().RoundTrip() {
		t.Fatalf("zero-term read delay %v below a round trip", res.ReadDelay.Min)
	}
}

func TestRunPanicsWithoutTrace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run without trace did not panic")
		}
	}()
	Run(Config{})
}
