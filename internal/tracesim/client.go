package tracesim

import (
	"time"

	"leases/internal/core"
	"leases/internal/netsim"
	"leases/internal/sim"
	"leases/internal/vfs"
)

// simClient is one caching client: a lease holder, a cached-version map,
// in-flight request tracking with retransmission, and the fault hooks.
type simClient struct {
	sim    *simulation
	index  int
	id     core.ClientID
	node   netsim.NodeID
	holder *core.Holder
	// cached maps each datum to the version this cache last saw.
	cached map[vfs.Datum]uint64
	// invalidatedAt records, per datum, the server send time of the
	// latest approval request processed. On a reordering transport a
	// grant sent *before* that invalidation can arrive *after* it;
	// recording it would resurrect a lease over data the client just
	// agreed to stop using. Grants older than the barrier are dropped.
	invalidatedAt map[vfs.Datum]time.Time

	nextReq uint64
	// inflight tracks outstanding requests by reqID.
	inflight map[uint64]*inflightOp
	// extending maps a datum to the reqID of the extension covering it,
	// so concurrent reads of the same datum share one request.
	extending map[vfs.Datum]uint64

	down bool
	// incarnation invalidates in-flight state across restarts.
	incarnation uint64
	// anticipatoryEv is the periodic renewal loop event, if enabled.
	anticipatoryEv *sim.Event
}

type opKind uint8

const (
	opExtend opKind = iota + 1
	opWrite
)

// inflightOp is one outstanding request-response exchange.
type inflightOp struct {
	kind         opKind
	reqID        uint64
	data         []vfs.Datum // extension targets
	datum        vfs.Datum   // write target
	startedAt    time.Time   // true time, for delay accounting
	startedLocal time.Time   // client-clock time, for lease anchoring
	retries      int
	incarnation  uint64
	retryEv      *sim.Event
	// waiters counts trace reads blocked on this extension (each
	// records a read completion when the reply lands).
	waiters int
	// anticipatory marks renewals not triggered by a read; their
	// completion adds no read delay.
	anticipatory bool
}

func newSimClient(s *simulation, index int) *simClient {
	c := &simClient{
		sim:           s,
		index:         index,
		id:            core.ClientID(clientNode(index)),
		node:          clientNode(index),
		holder:        s.newHolder(),
		cached:        make(map[vfs.Datum]uint64),
		invalidatedAt: make(map[vfs.Datum]time.Time),
		inflight:      make(map[uint64]*inflightOp),
		extending:     make(map[vfs.Datum]uint64),
	}
	s.fabric.Register(c.node, c.handle)
	if s.cfg.AnticipatoryLead > 0 {
		c.scheduleAnticipatory()
	}
	return c
}

func (s *simulation) newHolder() *core.Holder {
	return core.NewHolder(core.HolderConfig{
		Allowance: s.cfg.Allowance,
		Delivery:  s.cfg.Net.DeliveryDelay(),
	})
}

// localNow reads this client's (possibly drifting) clock.
func (c *simClient) localNow() time.Time {
	rates := c.sim.cfg.ClientClockRate
	if rates == nil || c.index >= len(rates) {
		return c.sim.now()
	}
	return localTime(c.sim.start, c.sim.now(), rates[c.index])
}

// read performs one trace read: served from cache under a valid lease,
// otherwise fetch+extend from the server.
func (c *simClient) read(d vfs.Datum) {
	if c.down {
		return
	}
	now := c.localNow()
	if c.holder.Valid(d, now) {
		c.sim.reads.Inc()
		c.sim.hits.Inc()
		c.sim.readDelay.Observe(0)
		c.checkFreshness(d)
		return
	}
	// Miss. If an extension covering this datum is already in flight,
	// ride it rather than issuing another.
	if reqID, ok := c.extending[d]; ok {
		if op, live := c.inflight[reqID]; live {
			op.waiters++
			return
		}
		delete(c.extending, d)
	}
	data := []vfs.Datum{d}
	if c.sim.cfg.BatchExtension {
		for _, held := range c.holder.Held() {
			if held != d {
				data = append(data, held)
			}
		}
	}
	op := c.sendExtend(data, false)
	op.waiters = 1
}

// sendExtend issues an extension request covering data.
func (c *simClient) sendExtend(data []vfs.Datum, anticipatory bool) *inflightOp {
	now := c.sim.now()
	op := &inflightOp{
		kind:         opExtend,
		reqID:        c.allocReq(),
		data:         data,
		startedAt:    now,
		startedLocal: c.localNow(),
		incarnation:  c.incarnation,
		anticipatory: anticipatory,
	}
	c.inflight[op.reqID] = op
	for _, d := range data {
		c.extending[d] = op.reqID
	}
	c.transmit(op)
	return op
}

// write performs one trace write (write-through).
func (c *simClient) write(d vfs.Datum) {
	if c.down {
		return
	}
	op := &inflightOp{
		kind:         opWrite,
		reqID:        c.allocReq(),
		datum:        d,
		startedAt:    c.sim.now(),
		startedLocal: c.localNow(),
		incarnation:  c.incarnation,
	}
	c.inflight[op.reqID] = op
	c.transmit(op)
}

func (c *simClient) allocReq() uint64 {
	c.nextReq++
	// Disambiguate across restarts so the server's dedupe map never
	// confuses a new incarnation's request with an old one.
	return c.incarnation<<32 | c.nextReq
}

// transmit sends (or resends) the request and arms the retry timer.
func (c *simClient) transmit(op *inflightOp) {
	switch op.kind {
	case opExtend:
		c.sim.fabric.Unicast(c.node, serverNode, kindExtendReq, extendReq{
			ReqID:  op.reqID,
			From:   c.id,
			Data:   op.data,
			SentAt: c.sim.now(),
		})
	case opWrite:
		c.sim.fabric.Unicast(c.node, serverNode, kindWriteReq, writeReq{
			ReqID: op.reqID,
			From:  c.id,
			Datum: op.datum,
		})
	}
	timeout := c.sim.cfg.RetryTimeout << uint(op.retries) // exponential backoff
	op.retryEv = c.sim.engine.After(timeout, func() {
		c.retry(op)
	})
}

func (c *simClient) retry(op *inflightOp) {
	if c.down || op.incarnation != c.incarnation {
		return
	}
	if _, live := c.inflight[op.reqID]; !live {
		return
	}
	// Writes must never give up silently: a lost write would violate
	// write-through semantics. Extensions may give up (the read simply
	// counts its delay so far); writes keep retrying.
	if op.kind == opExtend && op.retries >= c.sim.cfg.MaxRetries {
		c.finishExtend(op, nil)
		c.sim.givenUp.Inc()
		return
	}
	if op.retries < 62 { // cap the shift
		op.retries++
	}
	c.transmit(op)
}

func (c *simClient) handle(m netsim.Message) {
	if c.down {
		return
	}
	now := c.sim.now()
	switch p := m.Payload.(type) {
	case extendRep:
		op, ok := c.inflight[p.ReqID]
		if !ok || op.incarnation != c.incarnation {
			return // stale reply (retransmit already answered, or pre-crash)
		}
		c.applyGrants(op, p.Grants, m.SentAt)
		c.finishExtend(op, p.Grants)
	case writeAck:
		op, ok := c.inflight[p.ReqID]
		if !ok || op.incarnation != c.incarnation {
			return
		}
		delete(c.inflight, p.ReqID)
		c.sim.engine.Cancel(op.retryEv)
		// The writer's cache holds the new contents under its retained
		// lease.
		c.cached[op.datum] = p.Version
		c.holder.Update(op.datum, p.Version)
		c.sim.writes.Inc()
		// Added write delay: total minus the base round trip every
		// write-through write pays.
		added := now.Sub(op.startedAt) - c.sim.cfg.Net.RoundTrip()
		if added < 0 {
			added = 0
		}
		c.sim.writeDelay.Observe(added)
	case approvalReq:
		// Invalidate the local copy, then approve (§2). The barrier
		// guards against a reordered grant resurrecting the lease.
		if m.SentAt.After(c.invalidatedAt[p.Datum]) {
			c.invalidatedAt[p.Datum] = m.SentAt
		}
		c.holder.Invalidate(p.Datum)
		delete(c.cached, p.Datum)
		c.sim.fabric.Unicast(c.node, serverNode, kindApprove, approveMsg{
			WriteID: p.WriteID,
			From:    c.id,
		})
	case installedExt:
		c.holder.ApplyInstalledExtension(p.Data, p.Term, p.SentAt, c.localNow())
	default:
		panic("tracesim: client received unknown payload")
	}
}

func (c *simClient) applyGrants(op *inflightOp, grants []grantInfo, sentAt time.Time) {
	now := c.localNow()
	for _, g := range grants {
		if barrier, ok := c.invalidatedAt[g.Datum]; ok && !sentAt.After(barrier) {
			// The grant predates an invalidation this cache already
			// honoured: a reordered datagram. Recording it would let a
			// read hit on data the approved write has since replaced.
			continue
		}
		if g.Leased {
			c.holder.ApplyGrant(g.Datum, g.Version, g.Term, op.startedLocal, now)
		} else {
			c.holder.Invalidate(g.Datum)
		}
		c.cached[g.Datum] = g.Version
	}
}

// finishExtend completes an extension: waiting reads record their delay.
func (c *simClient) finishExtend(op *inflightOp, grants []grantInfo) {
	delete(c.inflight, op.reqID)
	c.sim.engine.Cancel(op.retryEv)
	for _, d := range op.data {
		if c.extending[d] == op.reqID {
			delete(c.extending, d)
		}
	}
	if op.anticipatory {
		return
	}
	delay := c.sim.now().Sub(op.startedAt)
	for i := 0; i < op.waiters; i++ {
		c.sim.reads.Inc()
		c.sim.readDelay.Observe(delay)
	}
}

// checkFreshness asserts the consistency invariant on a cache hit: the
// cached version must match the server's current version. Staleness is
// counted, not fatal — the clock-failure experiments rely on observing
// it.
func (c *simClient) checkFreshness(d vfs.Datum) {
	// A read concurrent with this client's own in-flight write is
	// ordered before the write completes; comparing it against the
	// server's already-advanced version would be a false positive.
	for _, op := range c.inflight {
		if op.kind == opWrite && op.datum == d {
			return
		}
	}
	v, err := c.sim.server.store.Version(d)
	if err != nil {
		panic(err)
	}
	if c.cached[d] != v {
		c.sim.stale.Inc()
	}
}

func (c *simClient) scheduleAnticipatory() {
	lead := c.sim.cfg.AnticipatoryLead
	var tick func()
	tick = func() {
		if !c.down {
			now := c.localNow()
			expiring := c.holder.ExpiringWithin(now, lead)
			if len(expiring) > 0 {
				c.sendExtend(expiring, true)
			}
		}
		if c.sim.engine.Now().Before(c.sim.end) {
			c.anticipatoryEv = c.sim.engine.After(lead/2, tick)
		}
	}
	c.anticipatoryEv = c.sim.engine.After(lead/2, tick)
}

// crash drops the client from the network and forgets all cache state.
func (c *simClient) crash() {
	if c.down {
		return
	}
	c.down = true
	c.sim.fabric.SetDown(c.node, true)
	for _, op := range c.inflight {
		c.sim.engine.Cancel(op.retryEv)
	}
	c.inflight = make(map[uint64]*inflightOp)
	c.extending = make(map[vfs.Datum]uint64)
}

// restart rejoins with a cold cache.
func (c *simClient) restart() {
	if !c.down {
		return
	}
	c.down = false
	c.incarnation++
	c.nextReq = 0
	c.holder = c.sim.newHolder()
	c.cached = make(map[vfs.Datum]uint64)
	c.invalidatedAt = make(map[vfs.Datum]time.Time)
	c.sim.fabric.SetDown(c.node, false)
}
