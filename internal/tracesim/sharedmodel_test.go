package tracesim

import (
	"math"
	"testing"
	"time"

	"leases/internal/analytic"
	"leases/internal/trace"
)

// With N clients all caching one file, the sharing degree at each write
// approaches S = N, and the simulated consistency load must track
// formula (1) with that S: 2NR/(1+R·t_c) + NSW. This extends the S=1
// validation to the shared case.
func TestSimulatorMatchesAnalyticModelShared(t *testing.T) {
	const (
		n    = 5
		r    = 0.864
		w    = 0.01 // rare writes keep S ≈ N at write time
		term = 20 * time.Second
	)
	tr := trace.Shared(trace.SharedConfig{
		Seed: 99, Duration: 2 * time.Hour, Clients: n, Files: 1,
		ReadRate: r, WriteRate: w,
	})
	res := run(t, Config{Trace: tr, Term: term, Net: lanNet()})

	p := analytic.VParams()
	p.N, p.R, p.W, p.S = n, r, w, n
	// The model is "only approximate" (§7): it ignores that each shared
	// write invalidates S−1 cached copies whose next read refetches.
	// That adds at most 2·(N·W)·(S−1) messages per second (two per
	// refetch), partially absorbed by the extension term it resets. The
	// simulated load must land between the raw model and the model plus
	// the full correction.
	lower := p.ConsistencyLoad(term)
	upper := lower + 2*(n*w)*(n-1)
	got := res.ConsistencyLoad
	if got < lower*0.95 || got > upper*1.05 {
		t.Fatalf("shared consistency load %.4f/s outside model band [%.4f, %.4f]",
			got, lower, upper)
	}

	// The write path itself: each deferred write should cost about S
	// messages at the server (1 multicast + S−1 approvals). Count the
	// approval-related traffic per write.
	approvals := res.ServerConsistencyMsgs // total; cross-check via rates instead
	_ = approvals
	if res.WriteDelay.Max > time.Second {
		t.Fatalf("approval gathering took %v — writes should clear in milliseconds with live holders", res.WriteDelay.Max)
	}
}

// The zero-term shared system pays no approval traffic at all (no
// leases exist), matching the model's S-independence at t_s = 0.
func TestSharedZeroTermNoApprovals(t *testing.T) {
	tr := trace.Shared(trace.SharedConfig{
		Seed: 7, Duration: 30 * time.Minute, Clients: 6, Files: 1,
		ReadRate: 0.864, WriteRate: 0.05,
	})
	res := run(t, Config{Trace: tr, Term: 0, Net: lanNet()})
	wantLoad := 2 * float64(res.Reads) / tr.Duration.Seconds()
	if math.Abs(res.ConsistencyLoad-wantLoad)/wantLoad > 0.02 {
		t.Fatalf("zero-term shared load %.4f, want %.4f (2 per read, no approvals)",
			res.ConsistencyLoad, wantLoad)
	}
	if res.WriteDelay.Max != 0 {
		t.Fatalf("zero-term write delayed %v — no leases can conflict", res.WriteDelay.Max)
	}
}
