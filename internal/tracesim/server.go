package tracesim

import (
	"time"

	"leases/internal/clock"
	"leases/internal/core"
	"leases/internal/netsim"
	"leases/internal/sim"
	"leases/internal/vfs"
)

// simServer is the file server: the vfs store, the lease manager, write
// deferral timers, write deduplication across client retransmits, and
// the installed-files multicast loop.
type simServer struct {
	sim   *simulation
	store *vfs.Store
	mgr   *core.Manager
	inst  *core.InstalledSet

	// writers maps pending write IDs to the information needed to ack
	// the writer once the write applies.
	writers map[core.WriteID]pendingWriter
	// seenWrites dedupes retransmitted write requests: client → reqID →
	// version acked (0 while still pending).
	seenWrites map[core.ClientID]map[uint64]uint64
	// deadlineEv is the armed expiry timer, if any.
	deadlineEv *sim.Event
	deadlineAt time.Time

	// stats feeds the adaptive term policy, when configured.
	stats *core.AccessStats

	down            bool
	maxLeaseRecords int
	// snapshot persists lease records for DetailedRecovery mode.
	snapshot []core.LeaseSnapshot
	// persistedMaxTerm survives crashes (the one value the paper's
	// default recovery rule requires).
	persistedMaxTerm time.Duration
	// installedExtEv is the periodic multicast loop event.
	installedExtEv *sim.Event
}

type pendingWriter struct {
	client core.ClientID
	reqID  uint64
	datum  vfs.Datum
	// queuedAt lets the run record how long the write was deferred.
	queuedAt time.Time
}

func newSimServer(s *simulation) *simServer {
	srv := &simServer{
		sim:        s,
		store:      vfs.New(clockAt(s), "srv"),
		writers:    make(map[core.WriteID]pendingWriter),
		seenWrites: make(map[core.ClientID]map[uint64]uint64),
	}
	srv.initFiles()
	srv.initManager(time.Time{})
	s.fabric.Register(serverNode, srv.handle)
	if ic := s.cfg.Installed; ic != nil {
		srv.inst = core.NewInstalledSet(ic.Term)
		for f := range s.cfg.Trace.Installed {
			srv.inst.Add(datumForFile(f))
		}
		srv.initManager(time.Time{}) // rebuild with installed set attached
		srv.scheduleInstalledExtension()
	}
	return srv
}

// clockAt adapts the engine to the vfs clock dependency.
func clockAt(s *simulation) clock.Clock { return engineClock{s} }

type engineClock struct{ s *simulation }

func (c engineClock) Now() time.Time { return c.s.engine.Now() }
func (c engineClock) After(d time.Duration) (<-chan time.Time, func() bool) {
	panic("tracesim: engine clock has no timers; use the engine")
}
func (c engineClock) Sleep(time.Duration) { panic("tracesim: engine clock cannot sleep") }

func (srv *simServer) initFiles() {
	for f := 0; f < srv.sim.cfg.Trace.Files; f++ {
		path := pathForFile(uint32(f))
		if _, err := srv.store.Create(path, "srv", vfs.DefaultPerm|vfs.WorldWrite); err != nil {
			panic(err)
		}
	}
}

func pathForFile(f uint32) string {
	// Node IDs are allocated sequentially from 2, matching datumForFile.
	return "/f" + itoa(int(f))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func (srv *simServer) initManager(recoverUntil time.Time) {
	policy := srv.sim.cfg.Policy
	if ac := srv.sim.cfg.Adaptive; ac != nil {
		// Adaptive terms (§4/§7): fresh monitoring state per server
		// incarnation — it is soft state, lost with the lease table.
		cfg := ac.withDefaults()
		srv.stats = core.NewAccessStats(cfg.Window)
		policy = &core.AdaptiveTerm{Stats: srv.stats, Min: cfg.Min, Max: cfg.Max}
	}
	if policy == nil {
		policy = core.FixedTerm(srv.sim.cfg.Term)
	}
	opts := []core.ManagerOption{}
	if !recoverUntil.IsZero() {
		opts = append(opts, core.WithRecoveryWindow(recoverUntil))
	}
	if srv.inst != nil {
		opts = append(opts, core.WithInstalled(srv.inst))
	}
	srv.mgr = core.NewManager(policy, opts...)
}

func (srv *simServer) scheduleInstalledExtension() {
	ic := srv.sim.cfg.Installed
	var tick func()
	tick = func() {
		if !srv.down {
			now := srv.localNow()
			data := srv.inst.Extension(now)
			if len(data) > 0 {
				var to []netsim.NodeID
				for i := range srv.sim.clients {
					to = append(to, clientNode(i))
				}
				srv.sim.fabric.Multicast(serverNode, to, kindInstalledExt, installedExt{
					Data:   data,
					Term:   ic.Term,
					SentAt: now,
				})
			}
		}
		if srv.sim.engine.Now().Before(srv.sim.end) {
			srv.installedExtEv = srv.sim.engine.After(ic.Period, tick)
		}
	}
	srv.installedExtEv = srv.sim.engine.After(0, tick)
}

// localNow reads the server's (possibly drifting) clock.
func (srv *simServer) localNow() time.Time {
	return localTime(srv.sim.start, srv.sim.now(), srv.sim.cfg.ServerClockRate)
}

func (srv *simServer) handle(m netsim.Message) {
	now := srv.localNow()
	switch p := m.Payload.(type) {
	case extendReq:
		srv.handleExtend(m.From, p, now)
	case writeReq:
		srv.handleWrite(m.From, p, now)
	case approveMsg:
		srv.handleApprove(p, now)
	default:
		panic("tracesim: server received unknown payload")
	}
	srv.trackStorage()
}

func (srv *simServer) trackStorage() {
	if n := srv.mgr.LeaseCount(); n > srv.maxLeaseRecords {
		srv.maxLeaseRecords = n
	}
}

func (srv *simServer) handleExtend(from netsim.NodeID, req extendReq, now time.Time) {
	rep := extendRep{ReqID: req.ReqID}
	for _, d := range req.Data {
		if srv.stats != nil {
			srv.stats.ObserveRead(d, req.From, now)
		}
		g := srv.mgr.Grant(req.From, d, now)
		version, err := srv.store.Version(d)
		if err != nil {
			panic(err)
		}
		rep.Grants = append(rep.Grants, grantInfo{
			Datum:   d,
			Term:    g.Term,
			Version: version,
			Leased:  g.Leased,
		})
	}
	srv.sim.fabric.Unicast(serverNode, from, kindExtendRep, rep)
}

func (srv *simServer) handleWrite(from netsim.NodeID, req writeReq, now time.Time) {
	seen := srv.seenWrites[req.From]
	if seen == nil {
		seen = make(map[uint64]uint64)
		srv.seenWrites[req.From] = seen
	}
	if v, ok := seen[req.ReqID]; ok {
		// Retransmit. If already applied, re-ack; if still pending, the
		// writer will be acked when it applies.
		if v != 0 {
			srv.sim.fabric.Unicast(serverNode, from, kindWriteAck, writeAck{ReqID: req.ReqID, Version: v})
		}
		return
	}
	seen[req.ReqID] = 0

	if srv.stats != nil {
		srv.stats.ObserveWrite(req.Datum, now)
	}
	disp := srv.mgr.SubmitWrite(req.From, req.Datum, now)
	if disp.Ready {
		srv.applyWriteNow(req.From, req.ReqID, req.Datum)
		return
	}
	srv.writers[disp.WriteID] = pendingWriter{
		client:   req.From,
		reqID:    req.ReqID,
		datum:    req.Datum,
		queuedAt: now,
	}
	// Ask the live leaseholders — one multicast normally (the writer's
	// own request was its implicit approval), or per-holder unicasts
	// under the ablation ("Without multicast, it would require 2(S−1)
	// messages").
	if len(disp.NeedApproval) > 0 {
		payload := approvalReq{WriteID: disp.WriteID, Datum: req.Datum}
		if srv.sim.cfg.UnicastApprovals {
			for _, c := range disp.NeedApproval {
				srv.sim.fabric.Unicast(serverNode, netsim.NodeID(c), kindApprovalReq, payload)
			}
		} else {
			var to []netsim.NodeID
			for _, c := range disp.NeedApproval {
				to = append(to, netsim.NodeID(c))
			}
			srv.sim.fabric.Multicast(serverNode, to, kindApprovalReq, payload)
		}
	}
	srv.armDeadline()
}

func (srv *simServer) handleApprove(p approveMsg, now time.Time) {
	if srv.mgr.Approve(p.From, p.WriteID, now) {
		srv.applyReady(now)
	}
}

// applyWriteNow applies an immediately-ready write and acks the writer.
func (srv *simServer) applyWriteNow(client core.ClientID, reqID uint64, d vfs.Datum) {
	attr, _, err := srv.store.WriteFile(d.Node, payloadFor(client, reqID))
	if err != nil {
		panic(err)
	}
	srv.seenWrites[client][reqID] = attr.Version
	srv.sim.writeWaits.Observe(0)
	srv.sim.fabric.Unicast(serverNode, netsim.NodeID(client), kindWriteAck, writeAck{ReqID: reqID, Version: attr.Version})
}

// applyReady drains every write the manager says may proceed.
func (srv *simServer) applyReady(now time.Time) {
	for {
		ready := srv.mgr.ReadyWrites(now)
		if len(ready) == 0 {
			break
		}
		for _, id := range ready {
			w := srv.writers[id]
			delete(srv.writers, id)
			srv.mgr.WriteApplied(id, now)
			attr, _, err := srv.store.WriteFile(w.datum.Node, payloadFor(w.client, w.reqID))
			if err != nil {
				panic(err)
			}
			srv.seenWrites[w.client][w.reqID] = attr.Version
			srv.sim.writeWaits.Observe(now.Sub(w.queuedAt))
			if srv.inst != nil {
				srv.inst.Readmit(w.datum)
			}
			srv.sim.fabric.Unicast(serverNode, netsim.NodeID(w.client), kindWriteAck, writeAck{ReqID: w.reqID, Version: attr.Version})
		}
	}
	srv.armDeadline()
}

// armDeadline keeps exactly one timer armed at the manager's earliest
// write-release deadline.
func (srv *simServer) armDeadline() {
	dl, ok := srv.mgr.NextDeadline()
	if !ok {
		if srv.deadlineEv != nil {
			srv.sim.engine.Cancel(srv.deadlineEv)
			srv.deadlineEv = nil
		}
		return
	}
	// dl is in server-clock time; convert to true (engine) time. The
	// microsecond of slack swallows float rounding in the conversion —
	// without it a drifting server clock can re-arm a timer at the same
	// virtual instant forever.
	fire := trueTime(srv.sim.start, dl.Add(time.Microsecond), srv.sim.cfg.ServerClockRate)
	if now := srv.sim.engine.Now(); fire.Before(now) {
		// The blocking lease already expired (e.g. an approval was lost
		// and the old timer fired before this write queued): drain on
		// the next engine step.
		fire = now
	}
	if srv.deadlineEv != nil {
		if srv.deadlineAt.Equal(fire) {
			return
		}
		srv.sim.engine.Cancel(srv.deadlineEv)
	}
	srv.deadlineAt = fire
	srv.deadlineEv = srv.sim.engine.At(fire, func() {
		srv.deadlineEv = nil
		if srv.down {
			return
		}
		srv.applyReady(srv.localNow())
	})
}

// payloadFor fabricates distinct file contents per write so staleness is
// observable.
func payloadFor(client core.ClientID, reqID uint64) []byte {
	return []byte(string(client) + "#" + itoa(int(reqID)))
}

// crash loses all soft state: the lease table, pending writes, dedupe
// records, timers. The vfs store persists ("writes are persistent at
// the server across a crash"), as does the maximum granted term.
func (srv *simServer) crash() {
	if srv.down {
		return
	}
	srv.down = true
	srv.persistedMaxTerm = srv.mgr.MaxTermGranted()
	if srv.sim.cfg.DetailedRecovery {
		srv.snapshot = srv.mgr.Snapshot(srv.localNow())
	}
	srv.sim.fabric.SetDown(serverNode, true)
	if srv.deadlineEv != nil {
		srv.sim.engine.Cancel(srv.deadlineEv)
		srv.deadlineEv = nil
	}
	srv.writers = make(map[core.WriteID]pendingWriter)
	srv.seenWrites = make(map[core.ClientID]map[uint64]uint64)
}

// restart rebuilds the manager. With the default rule it delays all
// writes for the persisted maximum term; with DetailedRecovery it
// restores the exact lease snapshot instead.
func (srv *simServer) restart() {
	if !srv.down {
		return
	}
	srv.down = false
	srv.sim.fabric.SetDown(serverNode, false)
	now := srv.localNow()
	if srv.sim.cfg.DetailedRecovery {
		srv.initManager(time.Time{})
		srv.mgr.Restore(srv.snapshot, now)
		srv.snapshot = nil
	} else {
		var until time.Time
		if srv.persistedMaxTerm > 0 && srv.persistedMaxTerm < core.Infinite {
			until = now.Add(srv.persistedMaxTerm)
		}
		srv.initManager(until)
	}
}
