package tracesim

import (
	"testing"
	"time"

	"leases/internal/netsim"
	"leases/internal/trace"
)

// jitterNet returns a fabric with delivery jitter large relative to the
// base delay, so messages frequently arrive out of order — the datagram
// conditions the V system ran under.
func jitterNet(seed int64) netsim.Params {
	p := lanNet()
	p.Jitter = 5 * time.Millisecond // ≈8× the base delivery delay
	p.Seed = seed
	return p
}

// Reordering stress: shared files, frequent writes, heavy jitter. The
// invalidation barrier must keep every run consistent — without it, a
// grant overtaken by an approval request resurrects a stale lease.
func TestReorderingRemainsConsistent(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tr := trace.Shared(trace.SharedConfig{
			Seed: seed, Duration: 20 * time.Minute, Clients: 6, Files: 2,
			ReadRate: 1.2, WriteRate: 0.1,
		})
		res := Run(Config{Trace: tr, Term: 10 * time.Second, Net: jitterNet(seed)})
		if res.StaleReads != 0 {
			t.Fatalf("seed %d: %d stale reads under reordering", seed, res.StaleReads)
		}
		if res.Reads == 0 || res.Writes == 0 {
			t.Fatalf("seed %d: degenerate run %+v", seed, res)
		}
	}
}

// Reordering plus loss plus crashes — the full non-Byzantine gauntlet.
func TestReorderingLossCrashGauntlet(t *testing.T) {
	tr := trace.Shared(trace.SharedConfig{
		Seed: 7, Duration: 20 * time.Minute, Clients: 4, Files: 2,
		ReadRate: 1.0, WriteRate: 0.05,
	})
	net := jitterNet(7)
	net.LossRate = 0.03
	res := Run(Config{
		Trace: tr, Term: 10 * time.Second, Net: net,
		Faults: []Fault{
			{Kind: ClientCrash, At: 3 * time.Minute, Client: 0},
			{Kind: ClientRestart, At: 4 * time.Minute, Client: 0},
			{Kind: ServerCrash, At: 8 * time.Minute},
			{Kind: ServerRestart, At: 8*time.Minute + 10*time.Second},
			{Kind: PartitionClient, At: 12 * time.Minute, Client: 1},
			{Kind: HealClient, At: 13 * time.Minute, Client: 1},
		},
	})
	if res.StaleReads != 0 {
		t.Fatalf("%d stale reads in the gauntlet", res.StaleReads)
	}
	if res.LostMessages == 0 {
		t.Fatal("gauntlet lost no messages — not exercising loss")
	}
}

// The jitter process actually reorders: with jitter much larger than
// the base delay, some later-sent message overtakes an earlier one.
func TestJitterActuallyReorders(t *testing.T) {
	// Indirect check via the fabric: deliveries of back-to-back sends
	// land out of order at least once.
	tr := &trace.Trace{Duration: time.Minute, Clients: 1, Files: 1}
	for i := 0; i < 200; i++ {
		tr.Events = append(tr.Events, trace.Event{
			At: time.Duration(i) * 200 * time.Millisecond, Client: 0, File: 0, Op: trace.OpRead,
		})
	}
	// Zero term: every read is a request-response; with 5 ms jitter on
	// a 0.6 ms path, responses overtake. The run must stay correct.
	res := Run(Config{Trace: tr, Term: 0, Net: jitterNet(11)})
	if res.StaleReads != 0 {
		t.Fatalf("%d stale reads", res.StaleReads)
	}
	if res.Reads == 0 {
		t.Fatal("no reads completed")
	}
}
