// Package vfs is a versioned, hierarchical, in-memory file store: the
// primary storage site of every datum that leases cover.
//
// The paper (§2) is explicit that the data covered by leases are not only
// file contents: "the cache must also hold the name-to-file binding and
// permission information, and it needs a lease over this information in
// order to use that information to perform the open. Similarly,
// modification of this information, such as renaming the file, would
// constitute a write." The store therefore exposes two kinds of datum,
// file contents and directory bindings, each with its own monotonically
// increasing version number. The lease layer (internal/core) addresses
// data by Datum values and uses versions for revalidation when a lease is
// extended after expiry.
//
// Writes are applied atomically under a single store lock; durability is
// out of scope (the paper assumes "writes are persistent at the server
// across a crash" — we model a crash as the loss of lease soft state, not
// file data, and the store survives a simulated server restart).
package vfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"leases/internal/clock"
)

// Errors reported by the store.
var (
	ErrNotExist = errors.New("vfs: file does not exist")
	ErrExist    = errors.New("vfs: file already exists")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
	ErrPerm     = errors.New("vfs: permission denied")
	ErrBadPath  = errors.New("vfs: invalid path")
	ErrRootOp   = errors.New("vfs: operation not permitted on root")
)

// NodeID identifies a file or directory for the life of the store.
type NodeID uint64

// RootID is the NodeID of the root directory of every store.
const RootID NodeID = 1

// DatumKind distinguishes the two classes of leased data.
type DatumKind uint8

const (
	// FileData is a file's contents.
	FileData DatumKind = iota + 1
	// DirBinding is a directory's name→file bindings plus the attributes
	// (permissions, ownership) of its entries.
	DirBinding
)

// String implements fmt.Stringer.
func (k DatumKind) String() string {
	switch k {
	case FileData:
		return "file"
	case DirBinding:
		return "dir"
	default:
		return fmt.Sprintf("DatumKind(%d)", uint8(k))
	}
}

// Datum names one leasable unit of data.
type Datum struct {
	Kind DatumKind
	Node NodeID
}

// String implements fmt.Stringer.
func (d Datum) String() string { return fmt.Sprintf("%s:%d", d.Kind, d.Node) }

// Perm is a simple permission word: owner and world read/write bits.
type Perm uint8

// Permission bits.
const (
	OwnerRead Perm = 1 << iota
	OwnerWrite
	WorldRead
	WorldWrite
)

// DefaultPerm grants the owner read/write and the world read.
const DefaultPerm = OwnerRead | OwnerWrite | WorldRead

// Attr describes a node.
type Attr struct {
	ID      NodeID
	Name    string // base name within parent; "/" for the root
	IsDir   bool
	Size    int64
	Owner   string
	Perm    Perm
	ModTime time.Time
	// Version counts writes to this node's datum: file content writes
	// for files; binding changes (create, remove, rename, chmod of a
	// child) for directories.
	Version uint64
}

// DirEntry is one name→node binding inside a directory.
type DirEntry struct {
	Name  string
	ID    NodeID
	IsDir bool
}

type node struct {
	id      NodeID
	name    string
	isDir   bool
	parent  *node
	data    []byte
	entries map[string]*node // directories only
	owner   string
	perm    Perm
	modTime time.Time
	version uint64
}

func (n *node) attr() Attr {
	return Attr{
		ID:      n.id,
		Name:    n.name,
		IsDir:   n.isDir,
		Size:    int64(len(n.data)),
		Owner:   n.owner,
		Perm:    n.perm,
		ModTime: n.modTime,
		Version: n.version,
	}
}

// Store is an in-memory file tree. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	clk    clock.Clock
	nodes  map[NodeID]*node
	nextID NodeID
}

// New returns an empty store whose root directory is owned by owner.
// Timestamps are read from clk.
func New(clk clock.Clock, owner string) *Store {
	s := &Store{clk: clk, nodes: make(map[NodeID]*node), nextID: RootID}
	root := &node{
		id:      s.alloc(),
		name:    "/",
		isDir:   true,
		entries: make(map[string]*node),
		owner:   owner,
		perm:    DefaultPerm | WorldWrite,
		modTime: clk.Now(),
	}
	s.nodes[root.id] = root
	return s
}

func (s *Store) alloc() NodeID {
	id := s.nextID
	s.nextID++
	return id
}

// splitPath validates and splits an absolute slash path into components.
func splitPath(p string) ([]string, error) {
	if p == "" || p[0] != '/' {
		return nil, fmt.Errorf("%w: %q (must be absolute)", ErrBadPath, p)
	}
	if p == "/" {
		return nil, nil
	}
	parts := strings.Split(p[1:], "/")
	for _, part := range parts {
		if part == "" || part == "." || part == ".." {
			return nil, fmt.Errorf("%w: %q", ErrBadPath, p)
		}
	}
	return parts, nil
}

// lookup walks the tree. Caller holds at least the read lock.
func (s *Store) lookup(p string) (*node, error) {
	parts, err := splitPath(p)
	if err != nil {
		return nil, err
	}
	n := s.nodes[RootID]
	for _, part := range parts {
		if !n.isDir {
			return nil, fmt.Errorf("%w: %q", ErrNotDir, p)
		}
		child, ok := n.entries[part]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotExist, p)
		}
		n = child
	}
	return n, nil
}

// lookupParent resolves the parent directory and base name of p.
func (s *Store) lookupParent(p string) (*node, string, error) {
	parts, err := splitPath(p)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", ErrRootOp
	}
	dirParts, base := parts[:len(parts)-1], parts[len(parts)-1]
	n := s.nodes[RootID]
	for _, part := range dirParts {
		if !n.isDir {
			return nil, "", fmt.Errorf("%w: %q", ErrNotDir, p)
		}
		child, ok := n.entries[part]
		if !ok {
			return nil, "", fmt.Errorf("%w: %q", ErrNotExist, p)
		}
		n = child
	}
	if !n.isDir {
		return nil, "", fmt.Errorf("%w: %q", ErrNotDir, p)
	}
	return n, base, nil
}

func (s *Store) touchBinding(dir *node) {
	dir.version++
	dir.modTime = s.clk.Now()
}

// Lookup resolves an absolute path to the node's identity and datum.
func (s *Store) Lookup(p string) (Attr, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.lookup(p)
	if err != nil {
		return Attr{}, err
	}
	return n.attr(), nil
}

// Stat reports the attributes of a node by ID.
func (s *Store) Stat(id NodeID) (Attr, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[id]
	if !ok {
		return Attr{}, ErrNotExist
	}
	return n.attr(), nil
}

// Create makes an empty file at path p owned by owner. It fails if the
// name exists.
func (s *Store) Create(p, owner string, perm Perm) (Attr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir, base, err := s.lookupParent(p)
	if err != nil {
		return Attr{}, err
	}
	if _, exists := dir.entries[base]; exists {
		return Attr{}, fmt.Errorf("%w: %q", ErrExist, p)
	}
	n := &node{
		id:      s.alloc(),
		name:    base,
		parent:  dir,
		owner:   owner,
		perm:    perm,
		modTime: s.clk.Now(),
	}
	s.nodes[n.id] = n
	dir.entries[base] = n
	s.touchBinding(dir)
	return n.attr(), nil
}

// CreateWith makes a file at path p with its initial contents, in one
// step under the store lock: the name and the bytes become visible
// together, so no reader — and no lease grant — can ever observe the
// file empty. The commit of a cross-shard rename depends on this
// atomicity; a Create-then-WriteFile pair would expose an empty file
// a concurrent read could lease and cache.
func (s *Store) CreateWith(p, owner string, perm Perm, data []byte) (Attr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir, base, err := s.lookupParent(p)
	if err != nil {
		return Attr{}, err
	}
	if _, exists := dir.entries[base]; exists {
		return Attr{}, fmt.Errorf("%w: %q", ErrExist, p)
	}
	n := &node{
		id:      s.alloc(),
		name:    base,
		parent:  dir,
		owner:   owner,
		perm:    perm,
		modTime: s.clk.Now(),
		data:    append([]byte(nil), data...),
		version: 1,
	}
	s.nodes[n.id] = n
	dir.entries[base] = n
	s.touchBinding(dir)
	return n.attr(), nil
}

// Mkdir makes a directory at path p owned by owner.
func (s *Store) Mkdir(p, owner string, perm Perm) (Attr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir, base, err := s.lookupParent(p)
	if err != nil {
		return Attr{}, err
	}
	if _, exists := dir.entries[base]; exists {
		return Attr{}, fmt.Errorf("%w: %q", ErrExist, p)
	}
	n := &node{
		id:      s.alloc(),
		name:    base,
		isDir:   true,
		parent:  dir,
		entries: make(map[string]*node),
		owner:   owner,
		perm:    perm,
		modTime: s.clk.Now(),
	}
	s.nodes[n.id] = n
	dir.entries[base] = n
	s.touchBinding(dir)
	return n.attr(), nil
}

// Remove deletes the file or empty directory at path p. It returns the
// data affected: the removed node's datum and its parent's binding datum.
func (s *Store) Remove(p string) ([]Datum, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir, base, err := s.lookupParent(p)
	if err != nil {
		return nil, err
	}
	n, ok := dir.entries[base]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	if n.isDir && len(n.entries) > 0 {
		return nil, fmt.Errorf("%w: %q", ErrNotEmpty, p)
	}
	delete(dir.entries, base)
	delete(s.nodes, n.id)
	s.touchBinding(dir)
	kind := FileData
	if n.isDir {
		kind = DirBinding
	}
	return []Datum{{kind, n.id}, {DirBinding, dir.id}}, nil
}

// Rename moves the node at oldPath to newPath (which must not exist).
// It returns the binding data affected (old parent, new parent).
func (s *Store) Rename(oldPath, newPath string) ([]Datum, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	oldDir, oldBase, err := s.lookupParent(oldPath)
	if err != nil {
		return nil, err
	}
	n, ok := oldDir.entries[oldBase]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, oldPath)
	}
	newDir, newBase, err := s.lookupParent(newPath)
	if err != nil {
		return nil, err
	}
	if _, exists := newDir.entries[newBase]; exists {
		return nil, fmt.Errorf("%w: %q", ErrExist, newPath)
	}
	// Refuse to move a directory into its own subtree.
	for a := newDir; a != nil; a = a.parent {
		if a == n {
			return nil, fmt.Errorf("%w: %q into %q", ErrBadPath, oldPath, newPath)
		}
	}
	delete(oldDir.entries, oldBase)
	n.name = newBase
	n.parent = newDir
	newDir.entries[newBase] = n
	s.touchBinding(oldDir)
	data := []Datum{{DirBinding, oldDir.id}}
	if newDir != oldDir {
		s.touchBinding(newDir)
		data = append(data, Datum{DirBinding, newDir.id})
	}
	return data, nil
}

// ReadFile returns a copy of the file's contents and its attributes.
func (s *Store) ReadFile(id NodeID) ([]byte, Attr, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[id]
	if !ok {
		return nil, Attr{}, ErrNotExist
	}
	if n.isDir {
		return nil, Attr{}, fmt.Errorf("%w: %q", ErrIsDir, n.name)
	}
	data := make([]byte, len(n.data))
	copy(data, n.data)
	return data, n.attr(), nil
}

// WriteFile replaces the file's contents, bumping its version. It
// returns the new attributes and the datum written.
func (s *Store) WriteFile(id NodeID, data []byte) (Attr, Datum, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[id]
	if !ok {
		return Attr{}, Datum{}, ErrNotExist
	}
	if n.isDir {
		return Attr{}, Datum{}, fmt.Errorf("%w: %q", ErrIsDir, n.name)
	}
	n.data = make([]byte, len(data))
	copy(n.data, data)
	n.version++
	n.modTime = s.clk.Now()
	return n.attr(), Datum{FileData, n.id}, nil
}

// SetPerm changes a node's permissions and owner, bumping the parent's
// binding version (attributes are part of the binding datum). It returns
// the binding datum affected, or the node's own datum for the root.
func (s *Store) SetPerm(id NodeID, owner string, perm Perm) (Datum, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[id]
	if !ok {
		return Datum{}, ErrNotExist
	}
	n.owner = owner
	n.perm = perm
	if n.parent != nil {
		s.touchBinding(n.parent)
		return Datum{DirBinding, n.parent.id}, nil
	}
	s.touchBinding(n)
	return Datum{DirBinding, n.id}, nil
}

// ReadDir lists a directory's entries in name order.
func (s *Store) ReadDir(id NodeID) ([]DirEntry, Attr, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[id]
	if !ok {
		return nil, Attr{}, ErrNotExist
	}
	if !n.isDir {
		return nil, Attr{}, fmt.Errorf("%w: %q", ErrNotDir, n.name)
	}
	entries := make([]DirEntry, 0, len(n.entries))
	for name, child := range n.entries {
		entries = append(entries, DirEntry{Name: name, ID: child.id, IsDir: child.isDir})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, n.attr(), nil
}

// Version reports the current version of a datum. For a FileData datum
// that names a directory (or vice versa) it returns ErrNotExist, since no
// such datum exists.
func (s *Store) Version(d Datum) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[d.Node]
	if !ok {
		return 0, ErrNotExist
	}
	switch d.Kind {
	case FileData:
		if n.isDir {
			return 0, ErrNotExist
		}
	case DirBinding:
		if !n.isDir {
			return 0, ErrNotExist
		}
	default:
		return 0, ErrNotExist
	}
	return n.version, nil
}

// Path reconstructs the absolute path of a node.
func (s *Store) Path(id NodeID) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[id]
	if !ok {
		return "", ErrNotExist
	}
	if n.parent == nil {
		return "/", nil
	}
	var parts []string
	for ; n.parent != nil; n = n.parent {
		parts = append(parts, n.name)
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String(), nil
}

// CheckAccess reports whether principal may perform the operation on the
// node: write=false checks read permission.
func (s *Store) CheckAccess(id NodeID, principal string, write bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[id]
	if !ok {
		return ErrNotExist
	}
	var need Perm
	if principal == n.owner {
		need = OwnerRead
		if write {
			need = OwnerWrite
		}
	} else {
		need = WorldRead
		if write {
			need = WorldWrite
		}
	}
	if n.perm&need == 0 {
		return fmt.Errorf("%w: %s on %q by %q", ErrPerm, map[bool]string{false: "read", true: "write"}[write], n.name, principal)
	}
	return nil
}

// NodeCount reports how many nodes (files and directories) exist.
func (s *Store) NodeCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// Walk visits every node under the given directory in depth-first name
// order, invoking fn with the absolute path and attributes.
func (s *Store) Walk(id NodeID, fn func(path string, a Attr) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[id]
	if !ok {
		return ErrNotExist
	}
	base, err := s.pathLocked(n)
	if err != nil {
		return err
	}
	return s.walkLocked(n, base, fn)
}

func (s *Store) pathLocked(n *node) (string, error) {
	if n.parent == nil {
		return "/", nil
	}
	var parts []string
	for m := n; m.parent != nil; m = m.parent {
		parts = append(parts, m.name)
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String(), nil
}

func (s *Store) walkLocked(n *node, path string, fn func(string, Attr) error) error {
	if err := fn(path, n.attr()); err != nil {
		return err
	}
	if !n.isDir {
		return nil
	}
	names := make([]string, 0, len(n.entries))
	for name := range n.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		childPath := path + "/" + name
		if path == "/" {
			childPath = "/" + name
		}
		if err := s.walkLocked(n.entries[name], childPath, fn); err != nil {
			return err
		}
	}
	return nil
}
