package vfs

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"leases/internal/clock"
)

func newStore() (*Store, *clock.Sim) {
	clk := clock.NewSim()
	return New(clk, "root"), clk
}

func TestRootExists(t *testing.T) {
	s, _ := newStore()
	a, err := s.Lookup("/")
	if err != nil {
		t.Fatalf("Lookup(/): %v", err)
	}
	if a.ID != RootID || !a.IsDir || a.Name != "/" {
		t.Fatalf("root attr = %+v", a)
	}
}

func TestCreateLookupReadWrite(t *testing.T) {
	s, clk := newStore()
	a, err := s.Create("/hello.txt", "alice", DefaultPerm)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if a.IsDir || a.Name != "hello.txt" || a.Owner != "alice" {
		t.Fatalf("created attr = %+v", a)
	}
	if a.Version != 0 {
		t.Fatalf("new file version = %d, want 0", a.Version)
	}
	clk.Advance(time.Second)
	a2, d, err := s.WriteFile(a.ID, []byte("contents"))
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if a2.Version != 1 || a2.Size != 8 {
		t.Fatalf("post-write attr = %+v", a2)
	}
	if d != (Datum{FileData, a.ID}) {
		t.Fatalf("write datum = %v", d)
	}
	if !a2.ModTime.Equal(clock.Epoch.Add(time.Second)) {
		t.Fatalf("ModTime = %v", a2.ModTime)
	}
	data, a3, err := s.ReadFile(a.ID)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(data) != "contents" || a3.Version != 1 {
		t.Fatalf("read %q v%d", data, a3.Version)
	}
}

func TestReadFileReturnsACopy(t *testing.T) {
	s, _ := newStore()
	a, _ := s.Create("/f", "u", DefaultPerm)
	s.WriteFile(a.ID, []byte("abc"))
	data, _, _ := s.ReadFile(a.ID)
	data[0] = 'X'
	data2, _, _ := s.ReadFile(a.ID)
	if string(data2) != "abc" {
		t.Fatal("mutating a read buffer changed stored contents")
	}
}

func TestWriteFileCopiesInput(t *testing.T) {
	s, _ := newStore()
	a, _ := s.Create("/f", "u", DefaultPerm)
	buf := []byte("abc")
	s.WriteFile(a.ID, buf)
	buf[0] = 'X'
	data, _, _ := s.ReadFile(a.ID)
	if string(data) != "abc" {
		t.Fatal("mutating the caller's buffer changed stored contents")
	}
}

func TestCreateBumpsParentBindingVersion(t *testing.T) {
	s, _ := newStore()
	before, _ := s.Stat(RootID)
	s.Create("/a", "u", DefaultPerm)
	after, _ := s.Stat(RootID)
	if after.Version != before.Version+1 {
		t.Fatalf("root binding version %d → %d, want +1", before.Version, after.Version)
	}
}

func TestMkdirAndNesting(t *testing.T) {
	s, _ := newStore()
	if _, err := s.Mkdir("/usr", "root", DefaultPerm); err != nil {
		t.Fatalf("Mkdir /usr: %v", err)
	}
	if _, err := s.Mkdir("/usr/bin", "root", DefaultPerm); err != nil {
		t.Fatalf("Mkdir /usr/bin: %v", err)
	}
	a, err := s.Create("/usr/bin/latex", "root", DefaultPerm)
	if err != nil {
		t.Fatalf("Create nested: %v", err)
	}
	got, err := s.Lookup("/usr/bin/latex")
	if err != nil || got.ID != a.ID {
		t.Fatalf("Lookup nested: %v %+v", err, got)
	}
	p, err := s.Path(a.ID)
	if err != nil || p != "/usr/bin/latex" {
		t.Fatalf("Path = %q, %v", p, err)
	}
}

func TestLookupErrors(t *testing.T) {
	s, _ := newStore()
	s.Create("/f", "u", DefaultPerm)
	cases := []struct {
		path string
		want error
	}{
		{"/missing", ErrNotExist},
		{"/f/child", ErrNotDir},
		{"relative", ErrBadPath},
		{"", ErrBadPath},
		{"//double", ErrBadPath},
		{"/a/../b", ErrBadPath},
		{"/./x", ErrBadPath},
	}
	for _, c := range cases {
		if _, err := s.Lookup(c.path); !errors.Is(err, c.want) {
			t.Errorf("Lookup(%q) = %v, want %v", c.path, err, c.want)
		}
	}
}

func TestCreateExistingFails(t *testing.T) {
	s, _ := newStore()
	s.Create("/f", "u", DefaultPerm)
	if _, err := s.Create("/f", "u", DefaultPerm); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate Create = %v, want ErrExist", err)
	}
	if _, err := s.Mkdir("/f", "u", DefaultPerm); !errors.Is(err, ErrExist) {
		t.Fatalf("Mkdir over file = %v, want ErrExist", err)
	}
}

func TestCreateInMissingDirFails(t *testing.T) {
	s, _ := newStore()
	if _, err := s.Create("/no/such/f", "u", DefaultPerm); !errors.Is(err, ErrNotExist) {
		t.Fatalf("got %v, want ErrNotExist", err)
	}
}

func TestCreateAtRootPathFails(t *testing.T) {
	s, _ := newStore()
	if _, err := s.Create("/", "u", DefaultPerm); !errors.Is(err, ErrRootOp) {
		t.Fatalf("Create(/) = %v, want ErrRootOp", err)
	}
}

func TestRemoveFile(t *testing.T) {
	s, _ := newStore()
	a, _ := s.Create("/f", "u", DefaultPerm)
	rootBefore, _ := s.Stat(RootID)
	data, err := s.Remove("/f")
	if err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if len(data) != 2 || data[0] != (Datum{FileData, a.ID}) || data[1] != (Datum{DirBinding, RootID}) {
		t.Fatalf("Remove data = %v", data)
	}
	if _, err := s.Lookup("/f"); !errors.Is(err, ErrNotExist) {
		t.Fatal("file still resolvable after Remove")
	}
	if _, err := s.Stat(a.ID); !errors.Is(err, ErrNotExist) {
		t.Fatal("node still stat-able after Remove")
	}
	rootAfter, _ := s.Stat(RootID)
	if rootAfter.Version != rootBefore.Version+1 {
		t.Fatal("Remove did not bump parent binding version")
	}
}

func TestRemoveNonEmptyDirFails(t *testing.T) {
	s, _ := newStore()
	s.Mkdir("/d", "u", DefaultPerm)
	s.Create("/d/f", "u", DefaultPerm)
	if _, err := s.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("Remove non-empty dir = %v, want ErrNotEmpty", err)
	}
	s.Remove("/d/f")
	if _, err := s.Remove("/d"); err != nil {
		t.Fatalf("Remove empty dir: %v", err)
	}
}

func TestRename(t *testing.T) {
	s, _ := newStore()
	s.Mkdir("/a", "u", DefaultPerm)
	s.Mkdir("/b", "u", DefaultPerm)
	f, _ := s.Create("/a/f", "u", DefaultPerm)
	aAttr, _ := s.Lookup("/a")
	bAttr, _ := s.Lookup("/b")
	aV, bV := aAttr.Version, bAttr.Version
	data, err := s.Rename("/a/f", "/b/g")
	if err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if len(data) != 2 {
		t.Fatalf("Rename data = %v, want both parents", data)
	}
	if _, err := s.Lookup("/a/f"); !errors.Is(err, ErrNotExist) {
		t.Fatal("old name still resolves")
	}
	got, err := s.Lookup("/b/g")
	if err != nil || got.ID != f.ID {
		t.Fatalf("new name: %v %+v", err, got)
	}
	aAttr, _ = s.Lookup("/a")
	bAttr, _ = s.Lookup("/b")
	if aAttr.Version != aV+1 || bAttr.Version != bV+1 {
		t.Fatal("Rename did not bump both parents' binding versions")
	}
	p, _ := s.Path(f.ID)
	if p != "/b/g" {
		t.Fatalf("Path after rename = %q", p)
	}
}

func TestRenameWithinSameDirBumpsOnce(t *testing.T) {
	s, _ := newStore()
	s.Create("/f", "u", DefaultPerm)
	before, _ := s.Stat(RootID)
	data, err := s.Rename("/f", "/g")
	if err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if len(data) != 1 {
		t.Fatalf("same-dir rename data = %v, want one datum", data)
	}
	after, _ := s.Stat(RootID)
	if after.Version != before.Version+1 {
		t.Fatalf("version bumped %d times, want 1", after.Version-before.Version)
	}
}

func TestRenameOntoExistingFails(t *testing.T) {
	s, _ := newStore()
	s.Create("/f", "u", DefaultPerm)
	s.Create("/g", "u", DefaultPerm)
	if _, err := s.Rename("/f", "/g"); !errors.Is(err, ErrExist) {
		t.Fatalf("Rename onto existing = %v, want ErrExist", err)
	}
}

func TestRenameDirIntoOwnSubtreeFails(t *testing.T) {
	s, _ := newStore()
	s.Mkdir("/d", "u", DefaultPerm)
	s.Mkdir("/d/sub", "u", DefaultPerm)
	if _, err := s.Rename("/d", "/d/sub/d2"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("cycle rename = %v, want ErrBadPath", err)
	}
}

func TestReadDirSorted(t *testing.T) {
	s, _ := newStore()
	s.Create("/zebra", "u", DefaultPerm)
	s.Mkdir("/apple", "u", DefaultPerm)
	s.Create("/mango", "u", DefaultPerm)
	entries, attr, err := s.ReadDir(RootID)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if attr.ID != RootID {
		t.Fatalf("ReadDir attr = %+v", attr)
	}
	want := []string{"apple", "mango", "zebra"}
	if len(entries) != 3 {
		t.Fatalf("entries = %v", entries)
	}
	for i, w := range want {
		if entries[i].Name != w {
			t.Fatalf("entries = %v, want sorted %v", entries, want)
		}
	}
	if !entries[0].IsDir || entries[1].IsDir {
		t.Fatal("IsDir flags wrong")
	}
}

func TestReadDirOnFileFails(t *testing.T) {
	s, _ := newStore()
	a, _ := s.Create("/f", "u", DefaultPerm)
	if _, _, err := s.ReadDir(a.ID); !errors.Is(err, ErrNotDir) {
		t.Fatalf("ReadDir(file) = %v, want ErrNotDir", err)
	}
	if _, _, err := s.ReadFile(RootID); !errors.Is(err, ErrIsDir) {
		t.Fatalf("ReadFile(dir) = %v, want ErrIsDir", err)
	}
	if _, _, err := s.WriteFile(RootID, nil); !errors.Is(err, ErrIsDir) {
		t.Fatalf("WriteFile(dir) = %v, want ErrIsDir", err)
	}
}

func TestVersionDatumKinds(t *testing.T) {
	s, _ := newStore()
	a, _ := s.Create("/f", "u", DefaultPerm)
	if v, err := s.Version(Datum{FileData, a.ID}); err != nil || v != 0 {
		t.Fatalf("file version = %d, %v", v, err)
	}
	if _, err := s.Version(Datum{DirBinding, a.ID}); !errors.Is(err, ErrNotExist) {
		t.Fatalf("DirBinding datum on a file = %v, want ErrNotExist", err)
	}
	if _, err := s.Version(Datum{FileData, RootID}); !errors.Is(err, ErrNotExist) {
		t.Fatalf("FileData datum on a dir = %v, want ErrNotExist", err)
	}
	if v, err := s.Version(Datum{DirBinding, RootID}); err != nil || v == 0 {
		t.Fatalf("root binding version = %d, %v (want >0 after create)", v, err)
	}
	if _, err := s.Version(Datum{FileData, 9999}); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing node = %v", err)
	}
}

func TestSetPermBumpsParentBinding(t *testing.T) {
	s, _ := newStore()
	a, _ := s.Create("/f", "u", DefaultPerm)
	before, _ := s.Stat(RootID)
	d, err := s.SetPerm(a.ID, "v", OwnerRead)
	if err != nil {
		t.Fatalf("SetPerm: %v", err)
	}
	if d != (Datum{DirBinding, RootID}) {
		t.Fatalf("SetPerm datum = %v", d)
	}
	after, _ := s.Stat(RootID)
	if after.Version != before.Version+1 {
		t.Fatal("SetPerm did not bump parent binding version")
	}
	na, _ := s.Stat(a.ID)
	if na.Owner != "v" || na.Perm != OwnerRead {
		t.Fatalf("attrs not updated: %+v", na)
	}
}

func TestSetPermOnRoot(t *testing.T) {
	s, _ := newStore()
	d, err := s.SetPerm(RootID, "admin", DefaultPerm)
	if err != nil {
		t.Fatalf("SetPerm(root): %v", err)
	}
	if d != (Datum{DirBinding, RootID}) {
		t.Fatalf("datum = %v", d)
	}
}

func TestCheckAccess(t *testing.T) {
	s, _ := newStore()
	a, _ := s.Create("/f", "alice", OwnerRead|OwnerWrite|WorldRead)
	if err := s.CheckAccess(a.ID, "alice", true); err != nil {
		t.Fatalf("owner write: %v", err)
	}
	if err := s.CheckAccess(a.ID, "bob", false); err != nil {
		t.Fatalf("world read: %v", err)
	}
	if err := s.CheckAccess(a.ID, "bob", true); !errors.Is(err, ErrPerm) {
		t.Fatalf("world write = %v, want ErrPerm", err)
	}
	b, _ := s.Create("/g", "alice", OwnerWrite)
	if err := s.CheckAccess(b.ID, "alice", false); !errors.Is(err, ErrPerm) {
		t.Fatalf("owner read without bit = %v, want ErrPerm", err)
	}
	if err := s.CheckAccess(9999, "x", false); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing node = %v", err)
	}
}

func TestWalkVisitsAllDepthFirstSorted(t *testing.T) {
	s, _ := newStore()
	s.Mkdir("/b", "u", DefaultPerm)
	s.Create("/b/y", "u", DefaultPerm)
	s.Create("/b/x", "u", DefaultPerm)
	s.Create("/a", "u", DefaultPerm)
	var paths []string
	err := s.Walk(RootID, func(p string, _ Attr) error {
		paths = append(paths, p)
		return nil
	})
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	want := []string{"/", "/a", "/b", "/b/x", "/b/y"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("paths = %v, want %v", paths, want)
		}
	}
}

func TestWalkStopsOnError(t *testing.T) {
	s, _ := newStore()
	s.Create("/a", "u", DefaultPerm)
	s.Create("/b", "u", DefaultPerm)
	sentinel := errors.New("stop")
	count := 0
	err := s.Walk(RootID, func(string, Attr) error {
		count++
		if count == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || count != 2 {
		t.Fatalf("Walk err=%v count=%d", err, count)
	}
}

func TestNodeCount(t *testing.T) {
	s, _ := newStore()
	if s.NodeCount() != 1 {
		t.Fatalf("fresh store NodeCount = %d, want 1 (root)", s.NodeCount())
	}
	s.Create("/a", "u", DefaultPerm)
	s.Mkdir("/d", "u", DefaultPerm)
	if s.NodeCount() != 3 {
		t.Fatalf("NodeCount = %d, want 3", s.NodeCount())
	}
	s.Remove("/a")
	if s.NodeCount() != 2 {
		t.Fatalf("NodeCount after remove = %d, want 2", s.NodeCount())
	}
}

func TestDatumString(t *testing.T) {
	d := Datum{FileData, 7}
	if d.String() != "file:7" {
		t.Fatalf("Datum.String = %q", d.String())
	}
	d2 := Datum{DirBinding, 1}
	if d2.String() != "dir:1" {
		t.Fatalf("Datum.String = %q", d2.String())
	}
	if DatumKind(99).String() == "" {
		t.Fatal("unknown kind String empty")
	}
}

// The store is shared by every connection goroutine of the networked
// server: hammer it concurrently under -race.
func TestConcurrentStoreAccess(t *testing.T) {
	s, _ := newStore()
	for i := 0; i < 8; i++ {
		s.Create(fmt.Sprintf("/f%d", i), "u", DefaultPerm|WorldWrite)
	}
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			var err error
			defer func() { done <- err }()
			for i := 0; i < 200; i++ {
				id := NodeID(i%8 + 2)
				switch i % 5 {
				case 0:
					_, _, err = s.WriteFile(id, []byte{byte(g), byte(i)})
				case 1:
					_, _, err = s.ReadFile(id)
				case 2:
					_, err = s.Stat(id)
				case 3:
					_, _, err = s.ReadDir(RootID)
				case 4:
					_, err = s.Version(Datum{FileData, id})
				}
				if err != nil {
					return
				}
			}
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent op: %v", err)
		}
	}
}

// Property: file content writes bump exactly the file's version by one
// per write, and the content read back is the content written.
func TestWriteVersionProperty(t *testing.T) {
	f := func(writes [][]byte) bool {
		s, _ := newStore()
		a, _ := s.Create("/f", "u", DefaultPerm)
		for i, w := range writes {
			attr, _, err := s.WriteFile(a.ID, w)
			if err != nil || attr.Version != uint64(i+1) {
				return false
			}
			data, _, err := s.ReadFile(a.ID)
			if err != nil || string(data) != string(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after any sequence of creates in the root, ReadDir lists
// exactly the created names, sorted.
func TestReadDirContentsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		s, _ := newStore()
		want := map[string]bool{}
		for _, r := range raw {
			name := fmt.Sprintf("f%d", r)
			if want[name] {
				continue
			}
			if _, err := s.Create("/"+name, "u", DefaultPerm); err != nil {
				return false
			}
			want[name] = true
		}
		entries, _, err := s.ReadDir(RootID)
		if err != nil || len(entries) != len(want) {
			return false
		}
		for i, e := range entries {
			if !want[e.Name] {
				return false
			}
			if i > 0 && entries[i-1].Name >= e.Name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
