package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"leases/internal/vfs"
)

// Snapshot persistence: the §2 alternative to max-term recovery.
// "Alternately, the server can maintain a more detailed record of leases
// on persistent storage, but the additional I/O traffic is unlikely to
// be justified unless terms of leases are much longer than the time to
// recover." The format is deliberately simple — the point of the
// paper's default rule is that persisting one duration suffices; this
// codec exists for deployments with long terms.
//
// Binary format (little-endian):
//
//	magic   [4]byte "LSN1"
//	count   uint32
//	records [count]{kind uint8, node uint64, clientLen uint32,
//	                client []byte, expiryUnixNano int64}
//
// A zero expiry (infinite lease) encodes as math.MinInt64.

var snapshotMagic = [4]byte{'L', 'S', 'N', '1'}

// ErrBadSnapshot reports a malformed snapshot stream.
var ErrBadSnapshot = errors.New("core: bad lease snapshot")

// WriteSnapshot encodes lease records to w.
func WriteSnapshot(w io.Writer, records []LeaseSnapshot) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	var u32 [4]byte
	le.PutUint32(u32[:], uint32(len(records)))
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	var u64 [8]byte
	for _, r := range records {
		if err := bw.WriteByte(byte(r.Datum.Kind)); err != nil {
			return err
		}
		le.PutUint64(u64[:], uint64(r.Datum.Node))
		if _, err := bw.Write(u64[:]); err != nil {
			return err
		}
		le.PutUint32(u32[:], uint32(len(r.Client)))
		if _, err := bw.Write(u32[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(string(r.Client)); err != nil {
			return err
		}
		nanos := int64(math.MinInt64)
		if !r.Expiry.IsZero() {
			nanos = r.Expiry.UnixNano()
		}
		le.PutUint64(u64[:], uint64(nanos))
		if _, err := bw.Write(u64[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot decodes lease records from r.
func ReadSnapshot(r io.Reader) ([]LeaseSnapshot, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if m != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, m)
	}
	le := binary.LittleEndian
	var u32 [4]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	n := le.Uint32(u32[:])
	const maxRecords = 1 << 24
	if n > maxRecords {
		return nil, fmt.Errorf("%w: %d records exceeds limit", ErrBadSnapshot, n)
	}
	// Preallocate conservatively; the count is untrusted.
	prealloc := int(n)
	if prealloc > 1<<12 {
		prealloc = 1 << 12
	}
	out := make([]LeaseSnapshot, 0, prealloc)
	var u64 [8]byte
	for i := uint32(0); i < n; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		dk := vfs.DatumKind(kind)
		if dk != vfs.FileData && dk != vfs.DirBinding {
			return nil, fmt.Errorf("%w: bad datum kind %d", ErrBadSnapshot, kind)
		}
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		node := vfs.NodeID(le.Uint64(u64[:]))
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		clen := le.Uint32(u32[:])
		if clen > 1<<16 {
			return nil, fmt.Errorf("%w: client name of %d bytes", ErrBadSnapshot, clen)
		}
		name := make([]byte, clen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		nanos := int64(le.Uint64(u64[:]))
		var expiry time.Time
		if nanos != math.MinInt64 {
			expiry = time.Unix(0, nanos)
		}
		out = append(out, LeaseSnapshot{
			Client: ClientID(name),
			Datum:  vfs.Datum{Kind: dk, Node: node},
			Expiry: expiry,
		})
	}
	return out, nil
}
