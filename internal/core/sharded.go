package core

import (
	"sync"
	"time"

	"leases/internal/vfs"
)

// ShardedManager is a concurrency-safe lease manager built from N
// lock-striped Manager shards, keyed by hash(datum) mod N. The paper's
// storage argument (§2) makes lease state embarrassingly shardable:
// every lease record and every pending-write queue is per-datum, and no
// protocol rule couples two data (multi-datum writes are the driver's
// business — internal/server acquires clearance datum by datum in a
// global order). Each shard owns a full Manager — lease table, pending
// queues, deadline heap and metrics — under its own mutex, so requests
// for different data proceed in parallel and the hot grant path never
// touches a global lock.
//
// WriteIDs stay globally unique and self-routing: shard i allocates
// i+1, i+1+N, i+1+2N, …, so Approve/WriteApplied/CancelWrite find their
// shard by (id-1) mod N without consulting a shared table.
//
// Cross-shard reads (Snapshot, LeaseCount, Metrics, ReadyWrites without
// a shard index) visit shards one at a time; they are consistent per
// shard, not globally atomic — exactly what soft state that expires by
// the passage of time tolerates.
//
// The single-threaded Manager remains the right choice for
// deterministic drivers (internal/tracesim); ShardedManager is for
// concurrent drivers like the TCP server.
type ShardedManager struct {
	shards []*managerShard
}

// managerShard pads each shard to its own cache lines so shard locks on
// neighbouring shards do not false-share.
type managerShard struct {
	mu  sync.Mutex
	mgr *Manager
	_   [64]byte
}

// DefaultShards is the shard count used when a driver passes 0: enough
// stripes that a few dozen concurrent clients rarely collide, cheap
// enough that cross-shard sweeps stay trivial.
const DefaultShards = 16

// lockedPolicy serializes a TermPolicy shared by all shards. Policies
// may be stateful (AdaptiveTerm trims its sliding windows inside Term),
// so a shared instance needs its own lock once shards stop sharing one.
type lockedPolicy struct {
	mu sync.Mutex
	p  TermPolicy
}

func (l *lockedPolicy) Term(d vfs.Datum, client ClientID, now time.Time) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.p.Term(d, client, now)
}

// NewShardedManager returns a sharded manager with n shards (0 means
// DefaultShards) granting terms from policy. The options are applied to
// every shard (a recovery window blocks writes on all of them).
// Stateless policies (FixedTerm) are shared as-is; anything else is
// wrapped in a mutex, since shards call Term concurrently.
func NewShardedManager(n int, policy TermPolicy, opts ...ManagerOption) *ShardedManager {
	if n <= 0 {
		n = DefaultShards
	}
	if policy == nil {
		panic("core: nil TermPolicy")
	}
	if _, stateless := policy.(FixedTerm); !stateless {
		policy = &lockedPolicy{p: policy}
	}
	s := &ShardedManager{shards: make([]*managerShard, n)}
	for i := range s.shards {
		m := NewManager(policy, opts...)
		m.nextID = WriteID(i + 1)
		m.idStride = WriteID(n)
		s.shards[i] = &managerShard{mgr: m}
	}
	return s
}

// Shards reports the shard count.
func (s *ShardedManager) Shards() int { return len(s.shards) }

// ShardFor reports which shard owns d, for drivers that run per-shard
// deadline timers.
func (s *ShardedManager) ShardFor(d vfs.Datum) int {
	// FNV-1a over the datum's kind and node. Node IDs are small and
	// sequential; FNV spreads them so neighbouring files do not pile
	// onto neighbouring shards.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(d.Kind)
	h *= prime64
	n := uint64(d.Node)
	for i := 0; i < 8; i++ {
		h ^= n & 0xff
		h *= prime64
		n >>= 8
	}
	return int(h % uint64(len(s.shards)))
}

// ShardForWrite reports which shard owns the identified write.
func (s *ShardedManager) ShardForWrite(id WriteID) int {
	return int(uint64(id-1) % uint64(len(s.shards)))
}

func (s *ShardedManager) shard(d vfs.Datum) *managerShard {
	return s.shards[s.ShardFor(d)]
}

func (s *ShardedManager) writeShard(id WriteID) *managerShard {
	return s.shards[s.ShardForWrite(id)]
}

// Grant records (or extends) a lease on d for client. See Manager.Grant.
func (s *ShardedManager) Grant(client ClientID, d vfs.Datum, now time.Time) Grant {
	sh := s.shard(d)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.mgr.Grant(client, d, now)
}

// GrantBatch grants leases on several data at once, locking each datum's
// shard in turn. See Manager.GrantBatch.
func (s *ShardedManager) GrantBatch(client ClientID, data []vfs.Datum, now time.Time) []Grant {
	out := make([]Grant, len(data))
	for i, d := range data {
		out[i] = s.Grant(client, d, now)
	}
	return out
}

// Release relinquishes client's leases on the given data. See
// Manager.Release.
func (s *ShardedManager) Release(client ClientID, data []vfs.Datum, now time.Time) {
	for _, d := range data {
		sh := s.shard(d)
		sh.mu.Lock()
		sh.mgr.Release(client, []vfs.Datum{d}, now)
		sh.mu.Unlock()
	}
}

// SubmitWrite asks to write d on behalf of writer. See
// Manager.SubmitWrite.
func (s *ShardedManager) SubmitWrite(writer ClientID, d vfs.Datum, now time.Time) WriteDisposition {
	sh := s.shard(d)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.mgr.SubmitWrite(writer, d, now)
}

// SubmitWriteHeld always enqueues, for drivers that apply the write
// outside the shard lock. See Manager.SubmitWriteHeld.
func (s *ShardedManager) SubmitWriteHeld(writer ClientID, d vfs.Datum, now time.Time) WriteDisposition {
	sh := s.shard(d)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.mgr.SubmitWriteHeld(writer, d, now)
}

// Approve records client's approval of the identified write. See
// Manager.Approve.
func (s *ShardedManager) Approve(client ClientID, id WriteID, now time.Time) bool {
	sh := s.writeShard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.mgr.Approve(client, id, now)
}

// WriteApplied tells the manager the driver has applied the write. See
// Manager.WriteApplied.
func (s *ShardedManager) WriteApplied(id WriteID, now time.Time) {
	sh := s.writeShard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.mgr.WriteApplied(id, now)
}

// CancelWrite abandons a queued write. See Manager.CancelWrite.
func (s *ShardedManager) CancelWrite(id WriteID, now time.Time) {
	sh := s.writeShard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.mgr.CancelWrite(id, now)
}

// ReadyWritesShard returns the applicable writes owned by one shard,
// sorted by ID. Drivers running a deadline timer per shard drain each
// shard independently.
func (s *ShardedManager) ReadyWritesShard(shard int, now time.Time) []WriteID {
	sh := s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.mgr.ReadyWrites(now)
}

// ReadyWrites returns the applicable writes across every shard, sorted
// by ID. Shards are visited one at a time; use ReadyWritesShard from
// per-shard timers to avoid sweeping.
func (s *ShardedManager) ReadyWrites(now time.Time) []WriteID {
	var out []WriteID
	for i := range s.shards {
		out = append(out, s.ReadyWritesShard(i, now)...)
	}
	// Shard-strided IDs interleave; restore global ID order.
	sortWriteIDs(out)
	return out
}

// NextDeadlineShard reports the earliest instant a write owned by one
// shard may become ready by expiry.
func (s *ShardedManager) NextDeadlineShard(shard int) (time.Time, bool) {
	sh := s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.mgr.NextDeadline()
}

// NextDeadline reports the earliest deadline across all shards.
func (s *ShardedManager) NextDeadline() (time.Time, bool) {
	var earliest time.Time
	found := false
	for i := range s.shards {
		dl, ok := s.NextDeadlineShard(i)
		if ok && (!found || dl.Before(earliest)) {
			earliest, found = dl, true
		}
	}
	return earliest, found
}

// Pending returns the queued writes for a datum in application order.
func (s *ShardedManager) Pending(d vfs.Datum) []PendingWrite {
	sh := s.shard(d)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.mgr.Pending(d)
}

// Holders returns the clients holding unexpired leases on d, sorted.
func (s *ShardedManager) Holders(d vfs.Datum, now time.Time) []ClientID {
	sh := s.shard(d)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.mgr.Holders(d, now)
}

// HoldsLease reports whether client holds an unexpired lease on d.
func (s *ShardedManager) HoldsLease(client ClientID, d vfs.Datum, now time.Time) bool {
	sh := s.shard(d)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.mgr.HoldsLease(client, d, now)
}

// Metrics returns the event counters summed across shards. Each shard
// is read under its own lock; the sum is per-shard consistent rather
// than a global atomic snapshot.
func (s *ShardedManager) Metrics() ManagerMetrics {
	var out ManagerMetrics
	for _, sh := range s.shards {
		sh.mu.Lock()
		m := sh.mgr.Metrics()
		sh.mu.Unlock()
		out.Grants += m.Grants
		out.Refusals += m.Refusals
		out.WritesImmediate += m.WritesImmediate
		out.WritesDeferred += m.WritesDeferred
		out.ApprovalsApplied += m.ApprovalsApplied
		out.ExpiryReleases += m.ExpiryReleases
		out.Releases += m.Releases
	}
	return out
}

// ShardMetrics returns each shard's event counters separately, in shard
// order — the per-stripe view that makes shard imbalance visible (a hot
// datum shows up as one stripe carrying most of the grants or
// deferrals). Each shard is read under its own lock; the slice is
// per-shard consistent rather than a global atomic snapshot.
func (s *ShardedManager) ShardMetrics() []ManagerMetrics {
	out := make([]ManagerMetrics, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = sh.mgr.Metrics()
		sh.mu.Unlock()
	}
	return out
}

// MaxTermGranted reports the longest lease term granted by any shard —
// the value a server persists for crash recovery.
func (s *ShardedManager) MaxTermGranted() time.Duration {
	var max time.Duration
	for _, sh := range s.shards {
		sh.mu.Lock()
		if t := sh.mgr.MaxTermGranted(); t > max {
			max = t
		}
		sh.mu.Unlock()
	}
	return max
}

// Recovering reports whether the manager is inside a post-restart
// recovery window at now. All shards share the window.
func (s *ShardedManager) Recovering(now time.Time) bool {
	sh := s.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.mgr.Recovering(now)
}

// LeaseCount reports the number of lease records across all shards.
func (s *ShardedManager) LeaseCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.mgr.LeaseCount()
		sh.mu.Unlock()
	}
	return n
}

// Compact discards expired lease records shard by shard. No global
// pause: each shard is swept under its own lock while the others keep
// serving.
func (s *ShardedManager) Compact(now time.Time) {
	for i := range s.shards {
		s.CompactShard(i, now)
	}
}

// CompactShard sweeps one shard, for drivers amortizing compaction
// incrementally across timer ticks.
func (s *ShardedManager) CompactShard(shard int, now time.Time) {
	sh := s.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.mgr.Compact(now)
}

// Snapshot returns every live lease record across shards, sorted by
// datum then client — the persistent-record recovery alternative (§2).
func (s *ShardedManager) Snapshot(now time.Time) []LeaseSnapshot {
	var out []LeaseSnapshot
	for _, sh := range s.shards {
		sh.mu.Lock()
		out = append(out, sh.mgr.Snapshot(now)...)
		sh.mu.Unlock()
	}
	sortSnapshots(out)
	return out
}

// Restore reloads lease records from a snapshot, routing each record to
// its datum's shard.
func (s *ShardedManager) Restore(records []LeaseSnapshot, now time.Time) {
	for _, r := range records {
		sh := s.shard(r.Datum)
		sh.mu.Lock()
		sh.mgr.Restore([]LeaseSnapshot{r}, now)
		sh.mu.Unlock()
	}
}
