// Package core implements the lease protocol of Gray & Cheriton (SOSP
// 1989): the server-side lease Manager and the client-side lease Holder.
//
// A lease is a contract: while a client holds an unexpired lease on a
// datum, the server must obtain that client's approval before the datum
// may be written (§2). The package is transport-free ("sans-IO"): every
// method takes the current time explicitly and returns the messages the
// driver must send, so the same protocol code runs under the
// deterministic trace-driven simulator (internal/tracesim), the real TCP
// server (internal/server), and direct unit tests.
package core

import (
	"math"
	"time"

	"leases/internal/vfs"
)

// ClientID names a caching client.
type ClientID string

// Infinite is the lease term that never expires. The revised Andrew file
// system effectively uses this term (§2); it is also the natural encoding
// for the paper's infinite-term baseline.
const Infinite time.Duration = math.MaxInt64

// ExpiryAt computes the instant a lease granted at now with the given
// term expires. For Infinite terms it returns the zero Time, which this
// package uses throughout to mean "never expires".
func ExpiryAt(now time.Time, term time.Duration) time.Time {
	if term >= Infinite {
		return time.Time{}
	}
	return now.Add(term)
}

// Expired reports whether a lease with the given expiry instant has
// expired at now. The zero expiry never expires. A lease is valid through
// its expiry instant and invalid strictly after it.
func Expired(expiry time.Time, now time.Time) bool {
	if expiry.IsZero() {
		return false
	}
	return now.After(expiry)
}

// maxExpiry returns the later of two expiry instants, treating the zero
// value as "never" (always latest).
func maxExpiry(a, b time.Time) time.Time {
	if a.IsZero() || b.IsZero() {
		return time.Time{}
	}
	if a.After(b) {
		return a
	}
	return b
}

// TermPolicy chooses the lease term the server offers for a datum. The
// server "can set the lease term based on the file access characteristics
// for the requested file as well as the propagation delay to the client"
// (§4); policies receive both.
type TermPolicy interface {
	// Term returns the lease term t_s to grant client for datum at now.
	// Zero means grant no caching rights (the datum may be read once).
	Term(d vfs.Datum, client ClientID, now time.Time) time.Duration
}

// FixedTerm grants every lease the same term. FixedTerm(0) is the
// zero-term baseline (Sprite, RFS, the Andrew prototype: a consistency
// check on every use); FixedTerm(core.Infinite) is the infinite-term
// baseline (revised Andrew).
type FixedTerm time.Duration

// Term implements TermPolicy.
func (t FixedTerm) Term(vfs.Datum, ClientID, time.Time) time.Duration {
	return time.Duration(t)
}

// PerDatumTerm grants datum-specific terms with a default for data not
// listed, modelling "a heavily write-shared file might be given a lease
// term of zero" (§4).
type PerDatumTerm struct {
	// Default applies to data without an explicit entry.
	Default time.Duration
	// Terms overrides the term for specific data.
	Terms map[vfs.Datum]time.Duration
}

// Term implements TermPolicy.
func (p *PerDatumTerm) Term(d vfs.Datum, _ ClientID, _ time.Time) time.Duration {
	if t, ok := p.Terms[d]; ok {
		return t
	}
	return p.Default
}

// TermFunc adapts a function to TermPolicy.
type TermFunc func(d vfs.Datum, client ClientID, now time.Time) time.Duration

// Term implements TermPolicy.
func (f TermFunc) Term(d vfs.Datum, client ClientID, now time.Time) time.Duration {
	return f(d, client, now)
}

// AccessStats accumulates the per-datum read and write rates the adaptive
// policy consumes. Rates are estimated over a sliding window.
type AccessStats struct {
	window time.Duration
	data   map[vfs.Datum]*accessRecord
}

type accessRecord struct {
	reads, writes []time.Time
	sharers       map[ClientID]time.Time // last reader per client
}

// NewAccessStats returns an estimator using the given sliding window.
func NewAccessStats(window time.Duration) *AccessStats {
	if window <= 0 {
		panic("core: non-positive AccessStats window")
	}
	return &AccessStats{window: window, data: make(map[vfs.Datum]*accessRecord)}
}

func (s *AccessStats) record(d vfs.Datum) *accessRecord {
	r, ok := s.data[d]
	if !ok {
		r = &accessRecord{sharers: make(map[ClientID]time.Time)}
		s.data[d] = r
	}
	return r
}

func trim(events []time.Time, cutoff time.Time) []time.Time {
	i := 0
	for i < len(events) && events[i].Before(cutoff) {
		i++
	}
	return events[i:]
}

// ObserveRead records a read of d by client at now.
func (s *AccessStats) ObserveRead(d vfs.Datum, client ClientID, now time.Time) {
	r := s.record(d)
	r.reads = append(trim(r.reads, now.Add(-s.window)), now)
	r.sharers[client] = now
}

// ObserveWrite records a write of d at now.
func (s *AccessStats) ObserveWrite(d vfs.Datum, now time.Time) {
	r := s.record(d)
	r.writes = append(trim(r.writes, now.Add(-s.window)), now)
}

// Rates reports the estimated per-second read and write rates and the
// number of distinct clients that read d within the window.
func (s *AccessStats) Rates(d vfs.Datum, now time.Time) (reads, writes float64, sharers int) {
	r, ok := s.data[d]
	if !ok {
		return 0, 0, 0
	}
	cutoff := now.Add(-s.window)
	r.reads = trim(r.reads, cutoff)
	r.writes = trim(r.writes, cutoff)
	for c, last := range r.sharers {
		if last.Before(cutoff) {
			delete(r.sharers, c)
		}
	}
	w := s.window.Seconds()
	return float64(len(r.reads)) / w, float64(len(r.writes)) / w, len(r.sharers)
}

// AdaptiveTerm chooses terms per datum from observed access rates using
// the paper's analytic model (§3.1): leasing pays off when the benefit
// factor α = 2R/(S·W) exceeds one, and then any term above 1/(R(α−1))
// reduces server load. The policy grants zero when α ≤ 1 (heavy write
// sharing makes caching counterproductive) and otherwise a term
// proportional to the threshold, clamped to [Min, Max].
type AdaptiveTerm struct {
	// Stats supplies observed access rates. Required.
	Stats *AccessStats
	// Min and Max clamp granted terms. Max also serves as the term for
	// data that are read but never written within the window.
	Min, Max time.Duration
	// Headroom scales the break-even threshold 1/(R(α−1)); the paper
	// shows most of the benefit arrives within a small multiple of it.
	// Zero means 10.
	Headroom float64
}

// Term implements TermPolicy.
func (a *AdaptiveTerm) Term(d vfs.Datum, _ ClientID, now time.Time) time.Duration {
	r, w, s := a.Stats.Rates(d, now)
	if r == 0 {
		// First contact: nothing known, grant the minimum.
		return a.Min
	}
	if w == 0 {
		return a.Max
	}
	if s < 1 {
		s = 1
	}
	alpha := 2 * r / (float64(s) * w)
	if alpha <= 1 {
		return 0
	}
	headroom := a.Headroom
	if headroom == 0 {
		headroom = 10
	}
	threshold := 1 / (r * (alpha - 1))
	term := time.Duration(headroom * threshold * float64(time.Second))
	if term < a.Min {
		term = a.Min
	}
	if term > a.Max {
		term = a.Max
	}
	return term
}
