package core

import (
	"time"

	"leases/internal/vfs"
)

// TokenHolder is the client side of the token extension: which data this
// cache may read, which it may write locally (write-back), and which of
// those carry dirty (unflushed) contents. Transport-free and not safe
// for concurrent use, like Holder.
type TokenHolder struct {
	cfg    HolderConfig
	tokens map[vfs.Datum]*heldToken
}

type heldToken struct {
	mode    TokenMode
	expiry  time.Time // local clock, ε deducted; zero = never
	version uint64
	dirty   bool
}

// NewTokenHolder returns an empty token holder.
func NewTokenHolder(cfg HolderConfig) *TokenHolder {
	return &TokenHolder{cfg: cfg, tokens: make(map[vfs.Datum]*heldToken)}
}

// effectiveExpiry mirrors Holder's rule.
func (h *TokenHolder) effectiveExpiry(term time.Duration, requestedAt, receivedAt time.Time) time.Time {
	if term >= Infinite {
		return time.Time{}
	}
	anchor := requestedAt
	budget := term - h.cfg.Allowance
	if h.cfg.Delivery > 0 {
		anchor = receivedAt
		budget -= h.cfg.Delivery
	}
	if budget <= 0 {
		return anchor.Add(-time.Nanosecond)
	}
	return anchor.Add(budget)
}

// ApplyToken records a granted token. A zero term records nothing.
func (h *TokenHolder) ApplyToken(d vfs.Datum, mode TokenMode, version uint64, term time.Duration, requestedAt, receivedAt time.Time) {
	if term <= 0 {
		delete(h.tokens, d)
		return
	}
	expiry := h.effectiveExpiry(term, requestedAt, receivedAt)
	if Expired(expiry, receivedAt) {
		delete(h.tokens, d)
		return
	}
	t, ok := h.tokens[d]
	if !ok {
		t = &heldToken{}
		h.tokens[d] = t
	} else {
		expiry = maxExpiry(t.expiry, expiry)
	}
	t.mode = mode
	t.expiry = expiry
	if version > t.version {
		t.version = version
	}
}

// CanRead reports whether the cache may serve a read of d locally.
func (h *TokenHolder) CanRead(d vfs.Datum, now time.Time) bool {
	t, ok := h.tokens[d]
	return ok && !Expired(t.expiry, now)
}

// CanWrite reports whether the cache may buffer a write of d locally —
// a live write token.
func (h *TokenHolder) CanWrite(d vfs.Datum, now time.Time) bool {
	t, ok := h.tokens[d]
	return ok && t.mode == TokenWrite && !Expired(t.expiry, now)
}

// WriteLocal records a local (write-back) write under a live write
// token, marking the datum dirty and bumping the local version. It
// reports false (and records nothing) without a live write token — the
// caller must then write through.
func (h *TokenHolder) WriteLocal(d vfs.Datum, now time.Time) bool {
	if !h.CanWrite(d, now) {
		return false
	}
	t := h.tokens[d]
	t.dirty = true
	t.version++
	return true
}

// Dirty reports whether d carries unflushed local writes.
func (h *TokenHolder) Dirty(d vfs.Datum) bool {
	t, ok := h.tokens[d]
	return ok && t.dirty
}

// DirtyData returns every dirty datum, sorted — the flush set on recall
// or shutdown.
func (h *TokenHolder) DirtyData() []vfs.Datum {
	var out []vfs.Datum
	for d, t := range h.tokens {
		if t.dirty {
			out = append(out, d)
		}
	}
	sortData(out)
	return out
}

// Flushed records that the dirty contents of d reached the server,
// which assigned the given version.
func (h *TokenHolder) Flushed(d vfs.Datum, serverVersion uint64) {
	t, ok := h.tokens[d]
	if !ok {
		return
	}
	t.dirty = false
	if serverVersion > t.version {
		t.version = serverVersion
	}
}

// OnRecall handles a recall of d: it returns whether a flush is needed
// (write token with dirty data) before the ack may be sent. After
// flushing (or immediately when clean), the driver calls Invalidate (the
// requester wanted to write) or keeps a downgraded read token via
// DowngradeLocal (the requester only wanted to read).
func (h *TokenHolder) OnRecall(d vfs.Datum) (mustFlush bool) {
	t, ok := h.tokens[d]
	if !ok {
		return false
	}
	return t.mode == TokenWrite && t.dirty
}

// DowngradeLocal converts a write token to a read token after its dirty
// data has been flushed.
func (h *TokenHolder) DowngradeLocal(d vfs.Datum) bool {
	t, ok := h.tokens[d]
	if !ok || t.mode != TokenWrite || t.dirty {
		return false
	}
	t.mode = TokenRead
	return true
}

// Invalidate discards the token and any cached copy. Invalidating a
// dirty datum loses the buffered writes — the write-back hazard the
// paper's write-through design avoids; callers flush first.
func (h *TokenHolder) Invalidate(d vfs.Datum) {
	delete(h.tokens, d)
}

// ExpiresWithin reports whether the token on d is live at now but will
// expire within lead — the renewal trigger for caches actively using a
// token (the token analogue of anticipatory lease extension, §4).
func (h *TokenHolder) ExpiresWithin(d vfs.Datum, now time.Time, lead time.Duration) bool {
	t, ok := h.tokens[d]
	if !ok || t.expiry.IsZero() || Expired(t.expiry, now) {
		return false
	}
	return !t.expiry.After(now.Add(lead))
}

// Mode reports the held token's mode for d (0 if none), ignoring
// expiry; combine with CanRead/CanWrite for validity.
func (h *TokenHolder) Mode(d vfs.Datum) TokenMode {
	t, ok := h.tokens[d]
	if !ok {
		return 0
	}
	return t.mode
}

// Version reports the local version of d.
func (h *TokenHolder) Version(d vfs.Datum) (uint64, bool) {
	t, ok := h.tokens[d]
	if !ok {
		return 0, false
	}
	return t.version, true
}

// Len reports how many tokens are held.
func (h *TokenHolder) Len() int { return len(h.tokens) }
