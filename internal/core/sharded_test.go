package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leases/internal/clock"
	"leases/internal/vfs"
)

func shardedTestData(n int) []vfs.Datum {
	out := make([]vfs.Datum, n)
	for i := range out {
		kind := vfs.FileData
		if i%3 == 0 {
			kind = vfs.DirBinding
		}
		out[i] = vfs.Datum{Kind: kind, Node: vfs.NodeID(i + 2)}
	}
	return out
}

// TestShardedManagerRouting: datum→shard and write→shard routing agree
// with the strided WriteID allocation, and per-datum state lands on
// exactly one shard.
func TestShardedManagerRouting(t *testing.T) {
	s := NewShardedManager(8, FixedTerm(10*time.Second))
	now := time.Now()
	for _, d := range shardedTestData(64) {
		if g := s.Grant("c1", d, now); !g.Leased {
			t.Fatalf("grant refused on %v", d)
		}
		if !s.HoldsLease("c1", d, now) {
			t.Fatalf("HoldsLease false after grant on %v", d)
		}
		disp := s.SubmitWrite("w", d, now)
		if disp.Ready {
			t.Fatalf("write ready with live holder on %v", d)
		}
		if got := s.ShardForWrite(disp.WriteID); got != s.ShardFor(d) {
			t.Fatalf("write %d routed to shard %d, datum %v lives on %d",
				disp.WriteID, got, d, s.ShardFor(d))
		}
		if !s.Approve("c1", disp.WriteID, now) {
			t.Fatalf("approve did not ready write %d", disp.WriteID)
		}
		s.WriteApplied(disp.WriteID, now)
	}
	if n := s.LeaseCount(); n != 0 {
		t.Fatalf("LeaseCount = %d after all leases approved away", n)
	}
	m := s.Metrics()
	if m.Grants != 64 || m.WritesDeferred != 64 || m.ApprovalsApplied != 64 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestShardedManagerWriteIDsUnique: concurrent submissions across
// shards never collide on WriteID.
func TestShardedManagerWriteIDsUnique(t *testing.T) {
	s := NewShardedManager(8, FixedTerm(0))
	now := time.Now()
	var mu sync.Mutex
	seen := make(map[WriteID]bool)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := vfs.Datum{Kind: vfs.FileData, Node: vfs.NodeID(g*1000 + i + 2)}
				disp := s.SubmitWriteHeld("w", d, now)
				mu.Lock()
				if seen[disp.WriteID] {
					t.Errorf("duplicate WriteID %d", disp.WriteID)
				}
				seen[disp.WriteID] = true
				mu.Unlock()
				s.WriteApplied(disp.WriteID, now)
			}
		}(g)
	}
	wg.Wait()
}

// TestShardedManagerExpiryHeap: a deferred write is released by lease
// expiry on the owning shard's deadline, and only that shard reports a
// deadline.
func TestShardedManagerExpiryHeap(t *testing.T) {
	clk := clock.NewSim()
	s := NewShardedManager(4, FixedTerm(10*time.Second))
	d := vfs.Datum{Kind: vfs.FileData, Node: 2}
	s.Grant("holder", d, clk.Now())
	disp := s.SubmitWrite("writer", d, clk.Now())
	if disp.Ready {
		t.Fatal("write ready with live holder")
	}
	owner := s.ShardFor(d)
	for i := 0; i < s.Shards(); i++ {
		dl, ok := s.NextDeadlineShard(i)
		if (i == owner) != ok {
			t.Fatalf("shard %d deadline ok=%v (owner %d)", i, ok, owner)
		}
		if i == owner && !dl.Equal(disp.Deadline) {
			t.Fatalf("shard %d deadline %v, want %v", i, dl, disp.Deadline)
		}
	}
	if dl, ok := s.NextDeadline(); !ok || !dl.Equal(disp.Deadline) {
		t.Fatalf("NextDeadline = %v %v", dl, ok)
	}
	clk.Advance(10*time.Second + time.Millisecond)
	got := s.ReadyWritesShard(owner, clk.Now())
	if len(got) != 1 || got[0] != disp.WriteID {
		t.Fatalf("ReadyWritesShard = %v", got)
	}
	if all := s.ReadyWrites(clk.Now()); len(all) != 1 || all[0] != disp.WriteID {
		t.Fatalf("ReadyWrites = %v", all)
	}
	s.WriteApplied(disp.WriteID, clk.Now())
	if m := s.Metrics(); m.ExpiryReleases != 1 {
		t.Fatalf("ExpiryReleases = %d", m.ExpiryReleases)
	}
}

// TestShardedManagerSnapshotRestore: a snapshot taken across shards
// restores the same holders into a manager with a different shard
// count, and matches a single Manager fed the same grants.
func TestShardedManagerSnapshotRestore(t *testing.T) {
	now := time.Now()
	s := NewShardedManager(8, FixedTerm(10*time.Second))
	single := NewManager(FixedTerm(10 * time.Second))
	data := shardedTestData(40)
	for i, d := range data {
		c := ClientID(fmt.Sprintf("c%d", i%5))
		s.Grant(c, d, now)
		single.Grant(c, d, now)
	}
	snap := s.Snapshot(now)
	want := single.Snapshot(now)
	if len(snap) != len(want) {
		t.Fatalf("snapshot length %d, want %d", len(snap), len(want))
	}
	for i := range snap {
		if snap[i] != want[i] {
			t.Fatalf("snapshot[%d] = %+v, want %+v", i, snap[i], want[i])
		}
	}
	s2 := NewShardedManager(3, FixedTerm(10*time.Second))
	s2.Restore(snap, now)
	for i, d := range data {
		c := ClientID(fmt.Sprintf("c%d", i%5))
		if !s2.HoldsLease(c, d, now) {
			t.Fatalf("restored manager lost lease of %s on %v", c, d)
		}
	}
}

// TestShardedManagerRecoveryWindow: the recovery window blocks writes on
// every shard and MaxTermGranted aggregates across shards.
func TestShardedManagerRecoveryWindow(t *testing.T) {
	clk := clock.NewSim()
	until := clk.Now().Add(30 * time.Second)
	s := NewShardedManager(4, FixedTerm(10*time.Second), WithRecoveryWindow(until))
	if !s.Recovering(clk.Now()) {
		t.Fatal("not recovering")
	}
	for _, d := range shardedTestData(8) {
		disp := s.SubmitWrite("w", d, clk.Now())
		if disp.Ready {
			t.Fatalf("write ready during recovery window on %v", d)
		}
		if !disp.Deadline.Equal(until) {
			t.Fatalf("deadline %v, want recovery end %v", disp.Deadline, until)
		}
	}
	clk.Advance(30*time.Second + time.Millisecond)
	ready := s.ReadyWrites(clk.Now())
	if len(ready) != 8 {
		t.Fatalf("%d writes ready after recovery, want 8", len(ready))
	}
	for i := 1; i < len(ready); i++ {
		if ready[i] <= ready[i-1] {
			t.Fatalf("ReadyWrites not sorted: %v", ready)
		}
	}
	for _, id := range ready {
		s.WriteApplied(id, clk.Now())
	}
	// Recovery over: grants flow again and MaxTermGranted aggregates the
	// max across shards.
	if g := s.Grant("c1", vfs.Datum{Kind: vfs.FileData, Node: 99}, clk.Now()); !g.Leased {
		t.Fatal("grant refused after recovery window")
	}
	if s.MaxTermGranted() != 10*time.Second {
		t.Fatalf("MaxTermGranted = %v", s.MaxTermGranted())
	}
}

// TestShardedManagerConcurrentInvariant is the §2 consistency invariant
// under real concurrency and -race: readers grant and release leases
// while writers race deferred writes against them on overlapping data,
// with approvals and expiries interleaving. Whenever a write is cleared
// for application, no other client may hold an unexpired lease on the
// datum — approval or expiry must have voided every conflicting lease.
// Cross-shard sweeps (Compact, Snapshot, Metrics, LeaseCount) run
// throughout to race against the per-shard paths.
func TestShardedManagerConcurrentInvariant(t *testing.T) {
	const (
		shards  = 8
		nData   = 24
		readers = 6
		writers = 3
		term    = 25 * time.Millisecond
	)
	s := NewShardedManager(shards, FixedTerm(term))
	data := shardedTestData(nData)
	deadline := time.Now().Add(1200 * time.Millisecond)
	if testing.Short() {
		deadline = time.Now().Add(300 * time.Millisecond)
	}
	readerIDs := make([]ClientID, readers)
	for i := range readerIDs {
		readerIDs[i] = ClientID(fmt.Sprintf("r%d", i))
	}
	var violations atomic.Int64
	var wg sync.WaitGroup

	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			c := readerIDs[i]
			for time.Now().Before(deadline) {
				d := data[rng.Intn(nData)]
				s.Grant(c, d, time.Now())
				if rng.Intn(8) == 0 {
					s.Release(c, []vfs.Datum{d}, time.Now())
				}
			}
		}(i)
	}

	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 100))
			c := ClientID(fmt.Sprintf("w%d", i))
			for time.Now().Before(deadline) {
				d := data[rng.Intn(nData)]
				disp := s.SubmitWriteHeld(c, d, time.Now())
				// Half the time deliver the callback approvals, the
				// other half let the leases run out — both release
				// paths race the readers.
				if rng.Intn(2) == 0 {
					for _, h := range disp.NeedApproval {
						s.Approve(h, disp.WriteID, time.Now())
					}
				}
				if rng.Intn(16) == 0 {
					s.CancelWrite(disp.WriteID, time.Now())
					continue
				}
				shard := s.ShardFor(d)
				applied := false
				for attempt := 0; attempt < 4000; attempt++ {
					ready := s.ReadyWritesShard(shard, time.Now())
					mine := false
					for _, id := range ready {
						if id == disp.WriteID {
							mine = true
						}
					}
					if !mine {
						time.Sleep(500 * time.Microsecond)
						continue
					}
					// Cleared: the §2 invariant must hold — no other
					// client has an unexpired lease. New leases cannot
					// appear while the write is pending, so this check
					// cannot race a fresh grant.
					now := time.Now()
					for _, rc := range readerIDs {
						if s.HoldsLease(rc, d, now) {
							violations.Add(1)
							t.Errorf("write %d on %v cleared while %s holds an unexpired lease",
								disp.WriteID, d, rc)
						}
					}
					s.WriteApplied(disp.WriteID, time.Now())
					applied = true
					break
				}
				if !applied {
					t.Errorf("write %d on %v never cleared (leases expire in %v)", disp.WriteID, d, term)
					s.CancelWrite(disp.WriteID, time.Now())
				}
			}
		}(i)
	}

	// Cross-shard sweeps racing the per-shard paths.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			s.Compact(time.Now())
			s.Snapshot(time.Now())
			s.Metrics()
			s.LeaseCount()
			s.NextDeadline()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d consistency violations", v)
	}
	// Everything expires within a term; compaction must drain all state.
	settle := time.Now().Add(2 * term)
	s.Compact(settle)
	if n := s.LeaseCount(); n != 0 {
		t.Fatalf("LeaseCount = %d after universal expiry", n)
	}
}

// TestShardedManagerShardMetrics: per-shard counters are exposed in
// shard order and sum to the aggregate Metrics(), and an imbalanced
// workload is visible in the per-shard view (the signal the /metrics
// shard series exists to surface).
func TestShardedManagerShardMetrics(t *testing.T) {
	const shards = 4
	s := NewShardedManager(shards, FixedTerm(10*time.Second))
	now := time.Now()

	// Route every grant to a single datum — one shard absorbs them all.
	hot := vfs.Datum{Kind: vfs.FileData, Node: 2}
	for i := 0; i < 12; i++ {
		if g := s.Grant(ClientID(fmt.Sprintf("c%d", i)), hot, now); !g.Leased {
			t.Fatalf("grant %d refused", i)
		}
	}
	// Spread a few more across all shards.
	for _, d := range shardedTestData(8) {
		s.Grant("cx", d, now)
	}

	per := s.ShardMetrics()
	if len(per) != shards {
		t.Fatalf("ShardMetrics() has %d entries, want %d", len(per), shards)
	}
	var sum ManagerMetrics
	for _, m := range per {
		sum.Grants += m.Grants
		sum.Refusals += m.Refusals
		sum.WritesImmediate += m.WritesImmediate
		sum.WritesDeferred += m.WritesDeferred
		sum.ApprovalsApplied += m.ApprovalsApplied
		sum.ExpiryReleases += m.ExpiryReleases
		sum.Releases += m.Releases
	}
	if total := s.Metrics(); sum != total {
		t.Fatalf("shard sum %+v != aggregate %+v", sum, total)
	}
	if hotShard := s.ShardFor(hot); per[hotShard].Grants < 12 {
		t.Fatalf("hot shard %d shows %d grants, want >= 12", hotShard, per[hotShard].Grants)
	}
}
