package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"leases/internal/clock"
	"leases/internal/vfs"
)

func TestTokenModeString(t *testing.T) {
	if TokenRead.String() != "read" || TokenWrite.String() != "write" {
		t.Fatal("mode strings wrong")
	}
	if TokenMode(9).String() == "" {
		t.Fatal("unknown mode string empty")
	}
}

func TestTokenSharedReaders(t *testing.T) {
	m := NewTokenManager(FixedTerm(10 * time.Second))
	now := epoch()
	for _, c := range []ClientID{"a", "b", "c"} {
		disp := m.Acquire(c, datumA, TokenRead, now)
		if !disp.Granted {
			t.Fatalf("read token for %s not granted: %+v", c, disp)
		}
	}
	if m.TokenCount() != 3 {
		t.Fatalf("TokenCount = %d", m.TokenCount())
	}
	for _, c := range []ClientID{"a", "b", "c"} {
		if m.Mode(c, datumA, now) != TokenRead {
			t.Fatalf("%s mode = %v", c, m.Mode(c, datumA, now))
		}
	}
}

func TestWriteTokenExcludesReaders(t *testing.T) {
	m := NewTokenManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Acquire("reader", datumA, TokenRead, now)
	disp := m.Acquire("writer", datumA, TokenWrite, now)
	if disp.Granted {
		t.Fatal("write token granted over a live read token")
	}
	if len(disp.NeedRecall) != 1 || disp.NeedRecall[0] != "reader" {
		t.Fatalf("NeedRecall = %v", disp.NeedRecall)
	}
	if !disp.Deadline.Equal(now.Add(10 * time.Second)) {
		t.Fatalf("Deadline = %v", disp.Deadline)
	}
	// Reader acks the recall (it invalidated its copy).
	if !m.RecallAck("reader", disp.ReqID, now.Add(time.Second)) {
		t.Fatal("acquisition not ready after recall ack")
	}
	client, term := m.GrantReady(disp.ReqID, now.Add(time.Second))
	if client != "writer" || term != 10*time.Second {
		t.Fatalf("GrantReady = %s %v", client, term)
	}
	if m.Mode("writer", datumA, now.Add(time.Second)) != TokenWrite {
		t.Fatal("writer does not hold the write token")
	}
	if m.Mode("reader", datumA, now.Add(time.Second)) != 0 {
		t.Fatal("reader still holds a token")
	}
}

func TestReadAcquisitionRecallsWriter(t *testing.T) {
	m := NewTokenManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Acquire("writer", datumA, TokenWrite, now)
	disp := m.Acquire("reader", datumA, TokenRead, now.Add(time.Second))
	if disp.Granted {
		t.Fatal("read token granted under an exclusive write token")
	}
	if len(disp.NeedRecall) != 1 || disp.NeedRecall[0] != "writer" {
		t.Fatalf("NeedRecall = %v", disp.NeedRecall)
	}
	// The writer flushes then acks; driver grants the reader.
	m.RecallAck("writer", disp.ReqID, now.Add(2*time.Second))
	c, _ := m.GrantReady(disp.ReqID, now.Add(2*time.Second))
	if c != "reader" {
		t.Fatalf("granted to %s", c)
	}
}

func TestWriterDowngradeKeepsReadToken(t *testing.T) {
	m := NewTokenManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Acquire("w", datumA, TokenWrite, now)
	if !m.Downgrade("w", datumA, now.Add(time.Second)) {
		t.Fatal("downgrade failed")
	}
	if m.Mode("w", datumA, now.Add(time.Second)) != TokenRead {
		t.Fatal("downgraded holder lost its read token")
	}
	// Another reader can now share.
	if disp := m.Acquire("r", datumA, TokenRead, now.Add(time.Second)); !disp.Granted {
		t.Fatalf("shared read after downgrade not granted: %+v", disp)
	}
	if m.Downgrade("ghost", datumA, now) {
		t.Fatal("downgrade by non-writer succeeded")
	}
}

func TestUpgradeReadToWrite(t *testing.T) {
	m := NewTokenManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Acquire("c", datumA, TokenRead, now)
	disp := m.Acquire("c", datumA, TokenWrite, now.Add(time.Second))
	if !disp.Granted {
		t.Fatalf("sole reader's upgrade not immediate: %+v", disp)
	}
	if m.Mode("c", datumA, now.Add(time.Second)) != TokenWrite {
		t.Fatal("upgrade did not take")
	}
	if m.TokenCount() != 1 {
		t.Fatalf("TokenCount after upgrade = %d", m.TokenCount())
	}
}

func TestCrashedWriterFreesByExpiry(t *testing.T) {
	m := NewTokenManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Acquire("crashed", datumA, TokenWrite, now)
	disp := m.Acquire("r", datumA, TokenRead, now.Add(2*time.Second))
	if disp.Granted {
		t.Fatal("granted under live write token")
	}
	if got := m.ReadyAcquisitions(now.Add(9 * time.Second)); len(got) != 0 {
		t.Fatal("acquisition ready before writer expiry")
	}
	got := m.ReadyAcquisitions(now.Add(10*time.Second + time.Millisecond))
	if len(got) != 1 || got[0] != disp.ReqID {
		t.Fatalf("ReadyAcquisitions = %v", got)
	}
	m.GrantReady(disp.ReqID, now.Add(10*time.Second+time.Millisecond))
	if m.Metrics().ExpiryFrees != 1 {
		t.Fatalf("ExpiryFrees = %d", m.Metrics().ExpiryFrees)
	}
}

func TestNoNewTokensWhileAcquisitionPending(t *testing.T) {
	m := NewTokenManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Acquire("r1", datumA, TokenRead, now)
	m.Acquire("w", datumA, TokenWrite, now) // queued
	disp := m.Acquire("r2", datumA, TokenRead, now)
	if disp.Granted {
		t.Fatal("read token granted while a write acquisition waits — writer starvation")
	}
}

func TestQueuedAcquisitionsFIFO(t *testing.T) {
	m := NewTokenManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Acquire("r1", datumA, TokenRead, now)
	w := m.Acquire("w", datumA, TokenWrite, now)
	r2 := m.Acquire("r2", datumA, TokenRead, now)
	m.RecallAck("r1", w.ReqID, now.Add(time.Second))
	ready := m.ReadyAcquisitions(now.Add(time.Second))
	if len(ready) != 1 || ready[0] != w.ReqID {
		t.Fatalf("ready = %v, want writer first", ready)
	}
	m.GrantReady(w.ReqID, now.Add(time.Second))
	// r2 is behind the new write token; it must recall it in turn. Its
	// waitingOn was captured at enqueue (r1 + w? only conflicts at that
	// time: r1). After the writer holds the token, r2's readiness
	// depends on the live state via its queue head position.
	if got := m.ReadyAcquisitions(now.Add(time.Second)); len(got) != 0 && got[0] == r2.ReqID {
		// r2 may report ready if its recorded blockers acked; granting
		// it must still be safe only when no live writer exists. The
		// protocol resolves this by the driver recalling the writer —
		// covered in the simulator integration. Here we just require
		// FIFO ordering was respected for the first grant.
		t.Log("r2 ready immediately after writer grant; driver recalls writer next")
	}
}

func TestTokenReleaseToken(t *testing.T) {
	m := NewTokenManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Acquire("a", datumA, TokenRead, now)
	m.ReleaseToken("a", datumA, now)
	if m.Mode("a", datumA, now) != 0 {
		t.Fatal("token survived release")
	}
	if m.TokenCount() != 0 {
		t.Fatal("state not compacted")
	}
	m.ReleaseToken("ghost", datumB, now) // no-op
}

func TestCancelAcquisition(t *testing.T) {
	m := NewTokenManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Acquire("r", datumA, TokenRead, now)
	disp := m.Acquire("w", datumA, TokenWrite, now)
	m.CancelAcquisition(disp.ReqID, now)
	if got := m.ReadyAcquisitions(now.Add(time.Hour)); len(got) != 0 {
		t.Fatalf("cancelled acquisition still queued: %v", got)
	}
	m.CancelAcquisition(999, now) // unknown: no-op
}

func TestTokenZeroTermPolicyRefuses(t *testing.T) {
	m := NewTokenManager(FixedTerm(0))
	disp := m.Acquire("c", datumA, TokenRead, epoch())
	if disp.Granted || disp.ReqID != 0 {
		t.Fatalf("zero-term acquire = %+v", disp)
	}
}

func TestNewTokenManagerNilPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTokenManager(nil)
}

func TestAcquireBadModePanics(t *testing.T) {
	m := NewTokenManager(FixedTerm(time.Second))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Acquire("c", datumA, TokenMode(9), epoch())
}

func TestNextTokenDeadline(t *testing.T) {
	m := NewTokenManager(FixedTerm(10 * time.Second))
	now := epoch()
	if _, ok := m.NextTokenDeadline(); ok {
		t.Fatal("idle manager reported deadline")
	}
	m.Acquire("r", datumA, TokenRead, now)
	m.Acquire("w", datumA, TokenWrite, now.Add(time.Second))
	dl, ok := m.NextTokenDeadline()
	if !ok || !dl.Equal(now.Add(10*time.Second)) {
		t.Fatalf("NextTokenDeadline = %v %v", dl, ok)
	}
}

// --- TokenHolder ---

func TestTokenHolderWriteBack(t *testing.T) {
	h := NewTokenHolder(HolderConfig{})
	now := clock.Epoch
	h.ApplyToken(datumA, TokenWrite, 1, 10*time.Second, now, now)
	if !h.CanRead(datumA, now) || !h.CanWrite(datumA, now) {
		t.Fatal("write token does not confer rights")
	}
	// Local writes: no server communication, dirty tracking.
	for i := 0; i < 3; i++ {
		if !h.WriteLocal(datumA, now) {
			t.Fatal("local write refused under write token")
		}
	}
	if !h.Dirty(datumA) {
		t.Fatal("datum not dirty after local writes")
	}
	if v, _ := h.Version(datumA); v != 4 {
		t.Fatalf("local version = %d, want 4", v)
	}
	dirty := h.DirtyData()
	if len(dirty) != 1 || dirty[0] != datumA {
		t.Fatalf("DirtyData = %v", dirty)
	}
	h.Flushed(datumA, 9)
	if h.Dirty(datumA) {
		t.Fatal("dirty after flush")
	}
	if v, _ := h.Version(datumA); v != 9 {
		t.Fatalf("version after flush = %d", v)
	}
}

func TestTokenHolderReadTokenCannotWriteLocally(t *testing.T) {
	h := NewTokenHolder(HolderConfig{})
	now := clock.Epoch
	h.ApplyToken(datumA, TokenRead, 1, 10*time.Second, now, now)
	if h.WriteLocal(datumA, now) {
		t.Fatal("local write accepted under read token")
	}
	if h.CanWrite(datumA, now) {
		t.Fatal("CanWrite true under read token")
	}
}

func TestTokenHolderExpiry(t *testing.T) {
	h := NewTokenHolder(HolderConfig{Allowance: 100 * time.Millisecond})
	now := clock.Epoch
	h.ApplyToken(datumA, TokenWrite, 1, 10*time.Second, now, now)
	if h.CanWrite(datumA, now.Add(11*time.Second)) {
		t.Fatal("expired write token still usable")
	}
	if h.WriteLocal(datumA, now.Add(11*time.Second)) {
		t.Fatal("local write accepted on expired token")
	}
}

func TestTokenHolderRecallFlow(t *testing.T) {
	h := NewTokenHolder(HolderConfig{})
	now := clock.Epoch
	h.ApplyToken(datumA, TokenWrite, 1, 10*time.Second, now, now)
	h.WriteLocal(datumA, now)
	if !h.OnRecall(datumA) {
		t.Fatal("recall of dirty write token does not require flush")
	}
	h.Flushed(datumA, 2)
	if h.OnRecall(datumA) {
		t.Fatal("recall requires flush after flushing")
	}
	// Requester only reads: downgrade and keep serving reads.
	if !h.DowngradeLocal(datumA) {
		t.Fatal("downgrade failed")
	}
	if h.CanWrite(datumA, now) || !h.CanRead(datumA, now) {
		t.Fatal("downgraded token rights wrong")
	}
	if h.DowngradeLocal(datumA) {
		t.Fatal("double downgrade succeeded")
	}
}

func TestTokenHolderDowngradeRefusedWhileDirty(t *testing.T) {
	h := NewTokenHolder(HolderConfig{})
	now := clock.Epoch
	h.ApplyToken(datumA, TokenWrite, 1, 10*time.Second, now, now)
	h.WriteLocal(datumA, now)
	if h.DowngradeLocal(datumA) {
		t.Fatal("downgrade succeeded with unflushed dirty data — writes would be lost")
	}
}

func TestTokenHolderZeroTermRefused(t *testing.T) {
	h := NewTokenHolder(HolderConfig{})
	h.ApplyToken(datumA, TokenRead, 1, 0, clock.Epoch, clock.Epoch)
	if h.Len() != 0 {
		t.Fatal("zero-term token recorded")
	}
}

// End-to-end token consistency: random readers/writers over one datum;
// the invariant is single-writer-or-many-readers, and no reader ever
// sees a version older than the last flushed write.
func TestTokenProtocolConsistencyRandomized(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clk := clock.NewSim()
		m := NewTokenManager(FixedTerm(5 * time.Second))
		d := vfs.Datum{Kind: vfs.FileData, Node: 2}

		type cacheState struct {
			h       *TokenHolder
			local   uint64
			crashed bool
		}
		server := uint64(0) // flushed version at the server
		caches := map[ClientID]*cacheState{}
		for i := 0; i < 4; i++ {
			caches[ClientID(fmt.Sprintf("c%d", i))] = &cacheState{h: NewTokenHolder(HolderConfig{})}
		}
		ids := []ClientID{"c0", "c1", "c2", "c3"}

		// acquire drives the recall protocol synchronously.
		acquire := func(c ClientID, mode TokenMode) bool {
			cs := caches[c]
			disp := m.Acquire(c, d, mode, clk.Now())
			if disp.Granted {
				cs.h.ApplyToken(d, mode, server, disp.Term, clk.Now(), clk.Now())
				cs.local = server
				return true
			}
			if disp.ReqID == 0 {
				return false
			}
			for _, holder := range disp.NeedRecall {
				hc := caches[holder]
				if hc.crashed {
					continue
				}
				if hc.h.OnRecall(d) {
					// Flush dirty data to the server first.
					server = hc.local
					v, _ := hc.h.Version(d)
					server = v
					hc.h.Flushed(d, v)
				}
				hc.h.Invalidate(d)
				m.RecallAck(holder, disp.ReqID, clk.Now())
			}
			ready := m.ReadyAcquisitions(clk.Now())
			if len(ready) == 0 || ready[0] != disp.ReqID {
				if disp.Deadline.IsZero() {
					m.CancelAcquisition(disp.ReqID, clk.Now())
					return false
				}
				clk.AdvanceTo(disp.Deadline.Add(time.Millisecond))
				ready = m.ReadyAcquisitions(clk.Now())
				if len(ready) == 0 || ready[0] != disp.ReqID {
					m.CancelAcquisition(disp.ReqID, clk.Now())
					return false
				}
				// Crashed holder expired with dirty data: its local
				// writes are lost (the write-back hazard). The server
				// version stands.
			}
			_, term := m.GrantReady(disp.ReqID, clk.Now())
			cs.h.ApplyToken(d, mode, server, term, clk.Now(), clk.Now())
			cs.local = server
			return true
		}

		for step := 0; step < 1500; step++ {
			c := ids[rng.Intn(len(ids))]
			cs := caches[c]
			if cs.crashed {
				if rng.Float64() < 0.3 {
					cs.crashed = false
					cs.h = NewTokenHolder(HolderConfig{})
					cs.local = 0
				}
				continue
			}
			switch r := rng.Float64(); {
			case r < 0.5: // read
				if cs.h.CanRead(d, clk.Now()) {
					if cs.local < server && !cs.h.Dirty(d) && cs.h.Mode(d) != TokenWrite {
						t.Fatalf("seed %d: stale read: local %d < server %d", seed, cs.local, server)
					}
				} else if acquire(c, TokenRead) {
					if cs.local != server {
						t.Fatalf("seed %d: fetch got stale version", seed)
					}
				}
			case r < 0.8: // local write
				if cs.h.CanWrite(d, clk.Now()) {
					cs.h.WriteLocal(d, clk.Now())
					v, _ := cs.h.Version(d)
					cs.local = v
				} else {
					acquire(c, TokenWrite)
				}
			case r < 0.9: // flush voluntarily
				if cs.h.Dirty(d) && cs.h.CanWrite(d, clk.Now()) {
					v, _ := cs.h.Version(d)
					server = v
					cs.h.Flushed(d, v)
				}
			case r < 0.95:
				cs.crashed = true
			default:
				clk.Advance(time.Duration(rng.Intn(3000)) * time.Millisecond)
			}

			// Invariant: at most one live write token.
			writers := 0
			for _, id := range ids {
				if m.Mode(id, d, clk.Now()) == TokenWrite {
					writers++
				}
			}
			if writers > 1 {
				t.Fatalf("seed %d: %d simultaneous write tokens", seed, writers)
			}
		}
	}
}
