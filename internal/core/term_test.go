package core

import (
	"testing"
	"testing/quick"
	"time"

	"leases/internal/clock"
	"leases/internal/vfs"
)

var (
	datumA = vfs.Datum{Kind: vfs.FileData, Node: 10}
	datumB = vfs.Datum{Kind: vfs.FileData, Node: 11}
	datumD = vfs.Datum{Kind: vfs.DirBinding, Node: 2}
)

func TestExpiryAtFinite(t *testing.T) {
	now := clock.Epoch
	e := ExpiryAt(now, 10*time.Second)
	if !e.Equal(now.Add(10 * time.Second)) {
		t.Fatalf("ExpiryAt = %v", e)
	}
}

func TestExpiryAtInfinite(t *testing.T) {
	if !ExpiryAt(clock.Epoch, Infinite).IsZero() {
		t.Fatal("infinite term should produce the zero expiry")
	}
}

func TestExpiredSemantics(t *testing.T) {
	now := clock.Epoch
	exp := now.Add(time.Second)
	if Expired(exp, now) {
		t.Fatal("lease expired before its deadline")
	}
	if Expired(exp, exp) {
		t.Fatal("lease should be valid through its expiry instant")
	}
	if !Expired(exp, exp.Add(time.Nanosecond)) {
		t.Fatal("lease still valid after its expiry instant")
	}
	if Expired(time.Time{}, now.Add(1000*time.Hour)) {
		t.Fatal("zero expiry (never) reported expired")
	}
}

func TestFixedTermPolicy(t *testing.T) {
	p := FixedTerm(10 * time.Second)
	if got := p.Term(datumA, "c1", clock.Epoch); got != 10*time.Second {
		t.Fatalf("FixedTerm = %v", got)
	}
	if got := FixedTerm(0).Term(datumA, "c1", clock.Epoch); got != 0 {
		t.Fatalf("FixedTerm(0) = %v", got)
	}
	if got := FixedTerm(Infinite).Term(datumA, "c1", clock.Epoch); got != Infinite {
		t.Fatalf("FixedTerm(Infinite) = %v", got)
	}
}

func TestPerDatumTermPolicy(t *testing.T) {
	p := &PerDatumTerm{
		Default: 10 * time.Second,
		Terms:   map[vfs.Datum]time.Duration{datumA: 0, datumD: time.Minute},
	}
	if got := p.Term(datumA, "c", clock.Epoch); got != 0 {
		t.Fatalf("write-shared datum term = %v, want 0", got)
	}
	if got := p.Term(datumD, "c", clock.Epoch); got != time.Minute {
		t.Fatalf("dir term = %v, want 1m", got)
	}
	if got := p.Term(datumB, "c", clock.Epoch); got != 10*time.Second {
		t.Fatalf("default term = %v, want 10s", got)
	}
}

func TestTermFunc(t *testing.T) {
	p := TermFunc(func(d vfs.Datum, c ClientID, _ time.Time) time.Duration {
		if c == "far" {
			return 20 * time.Second
		}
		return 5 * time.Second
	})
	if got := p.Term(datumA, "far", clock.Epoch); got != 20*time.Second {
		t.Fatalf("TermFunc = %v", got)
	}
	if got := p.Term(datumA, "near", clock.Epoch); got != 5*time.Second {
		t.Fatalf("TermFunc = %v", got)
	}
}

func TestAccessStatsRates(t *testing.T) {
	s := NewAccessStats(10 * time.Second)
	now := clock.Epoch
	for i := 0; i < 20; i++ {
		s.ObserveRead(datumA, "c1", now.Add(time.Duration(i)*500*time.Millisecond))
	}
	s.ObserveWrite(datumA, now.Add(5*time.Second))
	r, w, sh := s.Rates(datumA, now.Add(10*time.Second))
	if r != 2.0 {
		t.Fatalf("read rate = %v, want 2.0/s", r)
	}
	if w != 0.1 {
		t.Fatalf("write rate = %v, want 0.1/s", w)
	}
	if sh != 1 {
		t.Fatalf("sharers = %d, want 1", sh)
	}
}

func TestAccessStatsWindowExpiry(t *testing.T) {
	s := NewAccessStats(10 * time.Second)
	s.ObserveRead(datumA, "c1", clock.Epoch)
	s.ObserveRead(datumA, "c2", clock.Epoch.Add(time.Second))
	r, _, sh := s.Rates(datumA, clock.Epoch.Add(30*time.Second))
	if r != 0 || sh != 0 {
		t.Fatalf("stale events survived window: r=%v sharers=%d", r, sh)
	}
}

func TestAccessStatsUnknownDatum(t *testing.T) {
	s := NewAccessStats(time.Second)
	r, w, sh := s.Rates(datumB, clock.Epoch)
	if r != 0 || w != 0 || sh != 0 {
		t.Fatal("unknown datum reported nonzero rates")
	}
}

func TestAccessStatsPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAccessStats(0) did not panic")
		}
	}()
	NewAccessStats(0)
}

func TestAdaptiveTermReadOnlyGetsMax(t *testing.T) {
	s := NewAccessStats(100 * time.Second)
	a := &AdaptiveTerm{Stats: s, Min: time.Second, Max: time.Minute}
	now := clock.Epoch
	for i := 0; i < 50; i++ {
		s.ObserveRead(datumA, "c1", now.Add(time.Duration(i)*time.Second))
	}
	if got := a.Term(datumA, "c1", now.Add(60*time.Second)); got != time.Minute {
		t.Fatalf("read-only datum term = %v, want Max", got)
	}
}

func TestAdaptiveTermUnknownGetsMin(t *testing.T) {
	s := NewAccessStats(100 * time.Second)
	a := &AdaptiveTerm{Stats: s, Min: 2 * time.Second, Max: time.Minute}
	if got := a.Term(datumA, "c1", clock.Epoch); got != 2*time.Second {
		t.Fatalf("first-contact term = %v, want Min", got)
	}
}

func TestAdaptiveTermHeavyWriteSharingGetsZero(t *testing.T) {
	s := NewAccessStats(100 * time.Second)
	a := &AdaptiveTerm{Stats: s, Min: time.Second, Max: time.Minute}
	now := clock.Epoch
	// R = 0.5/s spread over 10 sharers, W = 2/s: α = 2·0.5/(10·2) = 0.05.
	for i := 0; i < 50; i++ {
		at := now.Add(time.Duration(i) * 2 * time.Second)
		s.ObserveRead(datumA, ClientID(rune('a'+i%10)), at)
	}
	for i := 0; i < 200; i++ {
		s.ObserveWrite(datumA, now.Add(time.Duration(i)*500*time.Millisecond))
	}
	if got := a.Term(datumA, "c", now.Add(100*time.Second)); got != 0 {
		t.Fatalf("write-shared datum term = %v, want 0 (α ≤ 1)", got)
	}
}

func TestAdaptiveTermBeneficialGetsBoundedTerm(t *testing.T) {
	s := NewAccessStats(100 * time.Second)
	a := &AdaptiveTerm{Stats: s, Min: time.Second, Max: 30 * time.Second}
	now := clock.Epoch
	// R ≈ 0.9/s from one client, W = 0.04/s: α = 2·0.9/0.04 = 45 ≫ 1.
	for i := 0; i < 90; i++ {
		s.ObserveRead(datumA, "c1", now.Add(time.Duration(i)*time.Second))
	}
	for i := 0; i < 4; i++ {
		s.ObserveWrite(datumA, now.Add(time.Duration(i)*25*time.Second))
	}
	got := a.Term(datumA, "c1", now.Add(99*time.Second))
	if got < time.Second || got > 30*time.Second {
		t.Fatalf("beneficial datum term = %v, want within [Min, Max]", got)
	}
	if got == 0 {
		t.Fatal("beneficial datum refused a lease")
	}
}

// Property: AdaptiveTerm never grants outside [0] ∪ [Min, Max].
func TestAdaptiveTermRangeProperty(t *testing.T) {
	f := func(reads, writes uint8, sharers uint8) bool {
		s := NewAccessStats(100 * time.Second)
		now := clock.Epoch
		nsh := int(sharers%8) + 1
		for i := 0; i < int(reads); i++ {
			s.ObserveRead(datumA, ClientID(rune('a'+i%nsh)), now.Add(time.Duration(i)*100*time.Millisecond))
		}
		for i := 0; i < int(writes); i++ {
			s.ObserveWrite(datumA, now.Add(time.Duration(i)*100*time.Millisecond))
		}
		a := &AdaptiveTerm{Stats: s, Min: time.Second, Max: time.Minute}
		got := a.Term(datumA, "c", now.Add(50*time.Second))
		return got == 0 || (got >= time.Second && got <= time.Minute)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
