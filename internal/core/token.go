package core

import (
	"fmt"
	"sort"
	"time"

	"leases/internal/vfs"
)

// This file implements the token extension: leases generalized to
// non-write-through caches. The paper limits its exposition to
// write-through "for doing so simplifies the explanation; extending the
// mechanism to support non-write-through caches is straightforward"
// (§2), and §6 identifies Burrows's MFS and the Echo file system as
// using "tokens, which can be regarded as limited-term leases, but
// supporting non-write-through caches".
//
// A token is a time-limited right over a datum in one of two modes:
//
//   - TokenRead: shared; the holder may serve reads from its cache.
//     Identical to the base lease.
//   - TokenWrite: exclusive; the holder may additionally buffer writes
//     locally (write-back) without contacting the server.
//
// Compatibility is reader-sharing: any number of read tokens coexist; a
// write token excludes everything else. Conflicting acquisitions are
// resolved exactly like lease-protected writes: the server recalls the
// conflicting tokens (a read holder invalidates; a write holder flushes
// its dirty data and releases or downgrades) and, if a holder is
// unreachable, waits out its term. The cost of write-back is the loss of
// the paper's clean failure semantics: writes buffered under a write
// token that expires with its holder crashed are lost, which is exactly
// why the paper prefers write-through for file caches.

// TokenMode is the access mode of a token.
type TokenMode uint8

// Token modes.
const (
	// TokenRead is a shared caching right (a plain lease).
	TokenRead TokenMode = iota + 1
	// TokenWrite is an exclusive right including local (write-back)
	// writes.
	TokenWrite
)

// String implements fmt.Stringer.
func (m TokenMode) String() string {
	switch m {
	case TokenRead:
		return "read"
	case TokenWrite:
		return "write"
	default:
		return fmt.Sprintf("TokenMode(%d)", uint8(m))
	}
}

// TokenReqID identifies a pending token acquisition.
type TokenReqID uint64

// TokenDisposition answers an acquisition request.
type TokenDisposition struct {
	// Granted reports the token was issued immediately; Term is its
	// term.
	Granted bool
	Term    time.Duration
	// ReqID identifies the queued acquisition when Granted is false.
	ReqID TokenReqID
	// NeedRecall lists holders whose tokens conflict, sorted. The
	// driver sends each a recall; read holders invalidate and ack,
	// write holders flush dirty data first.
	NeedRecall []ClientID
	// Deadline is when the last conflicting token expires; the
	// acquisition proceeds then even without acks. Zero only when a
	// conflicting token is infinite.
	Deadline time.Time
}

// tokenState is the server's soft state for one datum under tokens.
type tokenState struct {
	readers map[ClientID]time.Time // shared read tokens → expiry
	writer  ClientID               // exclusive holder, if any
	wExp    time.Time
	pending []*tokenReq
}

func (ts *tokenState) empty() bool {
	return len(ts.readers) == 0 && ts.writer == "" && len(ts.pending) == 0
}

// liveWriter reports the exclusive holder if its token is unexpired.
func (ts *tokenState) liveWriter(now time.Time) (ClientID, bool) {
	if ts.writer != "" && !Expired(ts.wExp, now) {
		return ts.writer, true
	}
	return "", false
}

type tokenReq struct {
	id        TokenReqID
	client    ClientID
	datum     vfs.Datum
	mode      TokenMode
	waitingOn map[ClientID]time.Time
	deadline  time.Time
	queuedAt  time.Time
}

// TokenMetrics counts token events.
type TokenMetrics struct {
	Grants      int64 // immediate grants
	Queued      int64 // acquisitions that had to wait
	Recalls     int64 // recall acks processed
	ExpiryFrees int64 // acquisitions freed by token expiry
	Downgrades  int64 // write→read downgrades
	Releases    int64
}

// TokenManager is the server side of the token protocol. Like Manager
// it is transport-free and not safe for concurrent use.
type TokenManager struct {
	policy  TermPolicy
	data    map[vfs.Datum]*tokenState
	reqs    map[TokenReqID]*tokenReq
	nextID  TokenReqID
	maxTerm time.Duration
	metrics TokenMetrics
}

// NewTokenManager returns a token manager granting terms from policy.
func NewTokenManager(policy TermPolicy) *TokenManager {
	if policy == nil {
		panic("core: nil TermPolicy")
	}
	return &TokenManager{
		policy: policy,
		data:   make(map[vfs.Datum]*tokenState),
		reqs:   make(map[TokenReqID]*tokenReq),
		nextID: 1,
	}
}

// Metrics returns a copy of the event counters.
func (m *TokenManager) Metrics() TokenMetrics { return m.metrics }

// MaxTermGranted reports the longest term ever granted, for crash
// recovery (identical rule to the base protocol).
func (m *TokenManager) MaxTermGranted() time.Duration { return m.maxTerm }

func (m *TokenManager) state(d vfs.Datum) *tokenState {
	ts, ok := m.data[d]
	if !ok {
		ts = &tokenState{readers: make(map[ClientID]time.Time)}
		m.data[d] = ts
	}
	return ts
}

func (m *TokenManager) compactIfEmpty(d vfs.Datum, ts *tokenState) {
	if ts.empty() {
		delete(m.data, d)
	}
}

// expireLocked drops expired tokens from a state.
func (ts *tokenState) expire(now time.Time) {
	for c, exp := range ts.readers {
		if Expired(exp, now) {
			delete(ts.readers, c)
		}
	}
	if ts.writer != "" && Expired(ts.wExp, now) {
		ts.writer = ""
		ts.wExp = time.Time{}
	}
}

// conflicts returns the holders (other than client) whose tokens are
// incompatible with acquiring mode.
func (ts *tokenState) conflicts(client ClientID, mode TokenMode, now time.Time) map[ClientID]time.Time {
	out := make(map[ClientID]time.Time)
	if w, ok := ts.liveWriter(now); ok && w != client {
		out[w] = ts.wExp
	}
	if mode == TokenWrite {
		for c, exp := range ts.readers {
			if c != client && !Expired(exp, now) {
				out[c] = exp
			}
		}
	}
	return out
}

// Acquire requests a token on d in the given mode. Upgrades (read →
// write by the same holder) and re-acquisitions extend naturally. While
// any acquisition is queued on d no new tokens are granted, preserving
// the base protocol's anti-starvation rule.
func (m *TokenManager) Acquire(client ClientID, d vfs.Datum, mode TokenMode, now time.Time) TokenDisposition {
	if mode != TokenRead && mode != TokenWrite {
		panic(fmt.Sprintf("core: bad token mode %d", mode))
	}
	ts := m.state(d)
	ts.expire(now)

	if len(ts.pending) > 0 {
		return m.enqueueToken(client, d, mode, ts, now)
	}
	conf := ts.conflicts(client, mode, now)
	if len(conf) > 0 {
		return m.enqueueToken(client, d, mode, ts, now)
	}
	term := m.policy.Term(d, client, now)
	if term <= 0 {
		return TokenDisposition{}
	}
	m.grant(client, d, mode, term, ts, now)
	return TokenDisposition{Granted: true, Term: term}
}

func (m *TokenManager) grant(client ClientID, d vfs.Datum, mode TokenMode, term time.Duration, ts *tokenState, now time.Time) {
	expiry := ExpiryAt(now, term)
	switch mode {
	case TokenRead:
		if old, held := ts.readers[client]; held {
			expiry = maxExpiry(old, expiry)
		}
		// A writer acquiring read is a downgrade handled elsewhere; a
		// reader staying a reader just extends.
		ts.readers[client] = expiry
	case TokenWrite:
		// Upgrade: the client's own read token is subsumed.
		delete(ts.readers, client)
		ts.writer = client
		ts.wExp = expiry
	}
	if term > m.maxTerm {
		m.maxTerm = term
	}
	m.metrics.Grants++
	_ = d
}

func (m *TokenManager) enqueueToken(client ClientID, d vfs.Datum, mode TokenMode, ts *tokenState, now time.Time) TokenDisposition {
	conf := ts.conflicts(client, mode, now)
	req := &tokenReq{
		id:        m.nextID,
		client:    client,
		datum:     d,
		mode:      mode,
		waitingOn: conf,
		queuedAt:  now,
	}
	m.nextID++
	infinite := false
	for _, exp := range conf {
		if exp.IsZero() {
			infinite = true
			break
		}
		req.deadline = maxDeadline(req.deadline, exp)
	}
	if infinite {
		req.deadline = time.Time{}
	}
	ts.pending = append(ts.pending, req)
	m.reqs[req.id] = req
	m.metrics.Queued++
	return TokenDisposition{
		ReqID:      req.id,
		NeedRecall: sortedClients(conf),
		Deadline:   req.deadline,
	}
}

// RecallAck records that a holder answered a recall: a read holder has
// invalidated; a write holder has flushed (the driver applies the flush
// to storage before calling this) and released. The holder's token on
// the datum is dropped. It reports whether the head acquisition on the
// datum is now grantable.
func (m *TokenManager) RecallAck(client ClientID, id TokenReqID, now time.Time) bool {
	req, ok := m.reqs[id]
	if !ok {
		return false
	}
	if _, waiting := req.waitingOn[client]; !waiting {
		return false
	}
	delete(req.waitingOn, client)
	m.metrics.Recalls++
	ts := m.data[req.datum]
	delete(ts.readers, client)
	if ts.writer == client {
		ts.writer = ""
		ts.wExp = time.Time{}
	}
	return m.reqReady(req, now)
}

// DowngradeAck resolves a read acquisition's recall by downgrading the
// conflicting write token to a read token: the holder flushed its dirty
// data (driver's responsibility) and keeps serving reads from its
// cache, which no longer conflicts with the read-mode acquisition. It
// reports whether the acquisition is now grantable. For write-mode
// acquisitions a downgrade does not resolve the conflict and this
// returns false without changing state.
func (m *TokenManager) DowngradeAck(client ClientID, id TokenReqID, now time.Time) bool {
	req, ok := m.reqs[id]
	if !ok || req.mode != TokenRead {
		return false
	}
	if _, waiting := req.waitingOn[client]; !waiting {
		return false
	}
	// Downgrade if the write token is still live; if it expired the
	// conflict is gone anyway.
	m.Downgrade(client, req.datum, now)
	delete(req.waitingOn, client)
	m.metrics.Recalls++
	return m.reqReady(req, now)
}

func (m *TokenManager) reqReady(req *tokenReq, now time.Time) bool {
	ts, ok := m.data[req.datum]
	if !ok || len(ts.pending) == 0 || ts.pending[0] != req {
		return false
	}
	for _, exp := range req.waitingOn {
		if !Expired(exp, now) {
			return false
		}
	}
	// The recorded blockers may be stale: a token granted from this
	// same queue ahead of req is a *new* conflict that was never in
	// waitingOn. Granting over it would create two incompatible live
	// tokens, so check the live state too; RefreshHead tells the driver
	// which new holders to recall.
	return len(ts.conflicts(req.client, req.mode, now)) == 0
}

// RefreshHead reconciles the head acquisition's blocker set with the
// live token state after the queue moves: tokens granted ahead of it
// from the same queue become new blockers. It returns the sorted
// newly-added blockers, which the driver must recall. It returns nil
// when nothing is pending or no new blockers appeared.
func (m *TokenManager) RefreshHead(d vfs.Datum, now time.Time) []ClientID {
	ts, ok := m.data[d]
	if !ok || len(ts.pending) == 0 {
		return nil
	}
	req := ts.pending[0]
	live := ts.conflicts(req.client, req.mode, now)
	var added map[ClientID]time.Time
	for c, exp := range live {
		if _, known := req.waitingOn[c]; !known {
			if added == nil {
				added = make(map[ClientID]time.Time)
			}
			added[c] = exp
			req.waitingOn[c] = exp
		}
	}
	// Blockers that no longer hold anything are settled.
	for c := range req.waitingOn {
		if _, still := live[c]; !still {
			delete(req.waitingOn, c)
		}
	}
	if added == nil {
		return nil
	}
	return sortedClients(added)
}

// ReadyAcquisitions returns, sorted, the queued acquisitions whose
// blockers have all acked or expired. The driver grants each via
// GrantReady.
func (m *TokenManager) ReadyAcquisitions(now time.Time) []TokenReqID {
	var out []TokenReqID
	for _, ts := range m.data {
		if len(ts.pending) == 0 {
			continue
		}
		if m.reqReady(ts.pending[0], now) {
			out = append(out, ts.pending[0].id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GrantReady issues the token for a ready acquisition and dequeues it,
// returning the client and the term granted. Expired blockers are
// counted as expiry frees.
func (m *TokenManager) GrantReady(id TokenReqID, now time.Time) (ClientID, time.Duration) {
	req, ok := m.reqs[id]
	if !ok {
		panic(fmt.Sprintf("core: GrantReady(%d): unknown request", id))
	}
	ts := m.data[req.datum]
	if len(ts.pending) == 0 || ts.pending[0] != req {
		panic(fmt.Sprintf("core: GrantReady(%d): not at queue head", id))
	}
	if !m.reqReady(req, now) {
		panic(fmt.Sprintf("core: GrantReady(%d): not ready", id))
	}
	if len(req.waitingOn) > 0 {
		m.metrics.ExpiryFrees++
		// Expired conflicting tokens are gone; scrub state.
		ts.expire(now)
	}
	ts.pending = ts.pending[1:]
	delete(m.reqs, id)
	term := m.policy.Term(req.datum, req.client, now)
	if term <= 0 {
		term = time.Nanosecond // a grant was promised; make it minimal
	}
	m.grant(req.client, req.datum, req.mode, term, ts, now)
	return req.client, term
}

// CancelAcquisition abandons a queued acquisition.
func (m *TokenManager) CancelAcquisition(id TokenReqID, now time.Time) {
	req, ok := m.reqs[id]
	if !ok {
		return
	}
	ts := m.data[req.datum]
	for i, q := range ts.pending {
		if q == req {
			ts.pending = append(ts.pending[:i], ts.pending[i+1:]...)
			break
		}
	}
	delete(m.reqs, id)
	m.compactIfEmpty(req.datum, ts)
}

// Downgrade converts client's write token to a read token with the same
// expiry — after the driver has applied the holder's flushed data. A
// holder downgrades when another cache wants to read but not write.
func (m *TokenManager) Downgrade(client ClientID, d vfs.Datum, now time.Time) bool {
	ts, ok := m.data[d]
	if !ok || ts.writer != client || Expired(ts.wExp, now) {
		return false
	}
	ts.readers[client] = ts.wExp
	ts.writer = ""
	ts.wExp = time.Time{}
	m.metrics.Downgrades++
	return true
}

// ReleaseToken relinquishes client's token on d.
func (m *TokenManager) ReleaseToken(client ClientID, d vfs.Datum, now time.Time) {
	ts, ok := m.data[d]
	if !ok {
		return
	}
	released := false
	if _, held := ts.readers[client]; held {
		delete(ts.readers, client)
		released = true
	}
	if ts.writer == client {
		ts.writer = ""
		ts.wExp = time.Time{}
		released = true
	}
	if released {
		m.metrics.Releases++
	}
	m.compactIfEmpty(d, ts)
}

// Mode reports client's live token mode on d (0 if none).
func (m *TokenManager) Mode(client ClientID, d vfs.Datum, now time.Time) TokenMode {
	ts, ok := m.data[d]
	if !ok {
		return 0
	}
	if w, live := ts.liveWriter(now); live && w == client {
		return TokenWrite
	}
	if exp, held := ts.readers[client]; held && !Expired(exp, now) {
		return TokenRead
	}
	return 0
}

// NextTokenDeadline reports the earliest expiry that could free a queued
// acquisition.
func (m *TokenManager) NextTokenDeadline() (time.Time, bool) {
	var earliest time.Time
	found := false
	for _, ts := range m.data {
		if len(ts.pending) == 0 {
			continue
		}
		req := ts.pending[0]
		var worst time.Time
		infinite := false
		for _, exp := range req.waitingOn {
			if exp.IsZero() {
				infinite = true
				break
			}
			if exp.After(worst) {
				worst = exp
			}
		}
		if infinite || worst.IsZero() {
			continue
		}
		if !found || worst.Before(earliest) {
			earliest = worst
			found = true
		}
	}
	return earliest, found
}

// TokenCount reports live token records (for the storage claim).
func (m *TokenManager) TokenCount() int {
	n := 0
	for _, ts := range m.data {
		n += len(ts.readers)
		if ts.writer != "" {
			n++
		}
	}
	return n
}
