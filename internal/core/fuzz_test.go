package core

import (
	"bytes"
	"testing"
	"time"

	"leases/internal/clock"
	"leases/internal/vfs"
)

// FuzzReadSnapshot feeds arbitrary bytes to the lease-snapshot decoder:
// never panic; accepted snapshots round-trip.
func FuzzReadSnapshot(f *testing.F) {
	var seed bytes.Buffer
	WriteSnapshot(&seed, []LeaseSnapshot{
		{Client: "c1", Datum: vfs.Datum{Kind: vfs.FileData, Node: 2}, Expiry: clock.Epoch.Add(time.Second)},
	})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("LSN1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := WriteSnapshot(&buf, records); werr != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", werr)
		}
		again, rerr := ReadSnapshot(&buf)
		if rerr != nil || len(again) != len(records) {
			t.Fatalf("round trip failed: %v (%d vs %d records)", rerr, len(again), len(records))
		}
		for i := range records {
			if again[i].Client != records[i].Client || again[i].Datum != records[i].Datum || !again[i].Expiry.Equal(records[i].Expiry) {
				t.Fatalf("record %d mismatch", i)
			}
		}
	})
}
