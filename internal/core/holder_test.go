package core

import (
	"testing"
	"time"

	"leases/internal/clock"
	"leases/internal/vfs"
)

func lanHolder() *Holder {
	return NewHolder(HolderConfig{
		Allowance: 100 * time.Millisecond,
		Delivery:  1500 * time.Microsecond, // m_prop + 2·m_proc
	})
}

func TestApplyGrantEffectiveTermFormula(t *testing.T) {
	h := lanHolder()
	req := clock.Epoch
	recv := req.Add(3 * time.Millisecond)
	exp := h.ApplyGrant(datumA, 1, 10*time.Second, req, recv)
	// t_c = t_s − (m_prop + 2·m_proc) − ε, anchored at receipt.
	want := recv.Add(10*time.Second - 1500*time.Microsecond - 100*time.Millisecond)
	if !exp.Equal(want) {
		t.Fatalf("expiry = %v, want %v", exp, want)
	}
	if !h.Valid(datumA, recv) {
		t.Fatal("fresh lease invalid")
	}
	if h.Valid(datumA, exp.Add(time.Nanosecond)) {
		t.Fatal("lease valid past effective expiry")
	}
}

func TestApplyGrantConservativeAnchorWithoutDeliveryEstimate(t *testing.T) {
	h := NewHolder(HolderConfig{Allowance: 100 * time.Millisecond})
	req := clock.Epoch
	recv := req.Add(50 * time.Millisecond)
	exp := h.ApplyGrant(datumA, 1, 10*time.Second, req, recv)
	// Without a delivery estimate the term anchors at the request send:
	// the server cannot have granted earlier than that.
	want := req.Add(10*time.Second - 100*time.Millisecond)
	if !exp.Equal(want) {
		t.Fatalf("expiry = %v, want %v", exp, want)
	}
}

func TestApplyGrantZeroEffectiveTerm(t *testing.T) {
	// t_s too short to survive delivery + ε: usable once, not cached.
	h := lanHolder()
	req := clock.Epoch
	recv := req.Add(3 * time.Millisecond)
	h.ApplyGrant(datumA, 1, 50*time.Millisecond, req, recv)
	if h.Valid(datumA, recv) {
		t.Fatal("zero-effective lease reported valid")
	}
	if h.Metrics().ZeroEffective != 1 {
		t.Fatalf("ZeroEffective = %d", h.Metrics().ZeroEffective)
	}
}

func TestApplyGrantZeroTermRefusal(t *testing.T) {
	h := lanHolder()
	h.ApplyGrant(datumA, 7, 0, clock.Epoch, clock.Epoch.Add(time.Millisecond))
	if h.Len() != 0 {
		t.Fatal("refused grant left a lease record")
	}
}

func TestApplyGrantInfinite(t *testing.T) {
	h := lanHolder()
	exp := h.ApplyGrant(datumA, 1, Infinite, clock.Epoch, clock.Epoch.Add(time.Millisecond))
	if !exp.IsZero() {
		t.Fatalf("infinite grant expiry = %v, want zero (never)", exp)
	}
	if !h.Valid(datumA, clock.Epoch.Add(100000*time.Hour)) {
		t.Fatal("infinite lease expired")
	}
}

func TestExtensionNeverShortensAtHolder(t *testing.T) {
	h := lanHolder()
	req := clock.Epoch
	h.ApplyGrant(datumA, 1, 30*time.Second, req, req.Add(3*time.Millisecond))
	h.ApplyGrant(datumA, 1, time.Second, req.Add(time.Second), req.Add(time.Second+3*time.Millisecond))
	if !h.Valid(datumA, req.Add(20*time.Second)) {
		t.Fatal("shorter re-grant shortened the held lease")
	}
}

func TestVersionNeverRegresses(t *testing.T) {
	h := lanHolder()
	req := clock.Epoch
	h.ApplyGrant(datumA, 5, 10*time.Second, req, req.Add(time.Millisecond))
	h.ApplyGrant(datumA, 3, 10*time.Second, req.Add(time.Second), req.Add(time.Second+time.Millisecond))
	v, _, held := h.Peek(datumA)
	if !held || v != 5 {
		t.Fatalf("version = %d (held=%v), want 5", v, held)
	}
}

func TestInvalidateOnApproval(t *testing.T) {
	h := lanHolder()
	h.ApplyGrant(datumA, 1, 10*time.Second, clock.Epoch, clock.Epoch.Add(time.Millisecond))
	h.Invalidate(datumA)
	if h.Valid(datumA, clock.Epoch.Add(time.Second)) {
		t.Fatal("invalidated lease still valid")
	}
	if h.Metrics().Invalidations != 1 {
		t.Fatalf("Invalidations = %d", h.Metrics().Invalidations)
	}
	h.Invalidate(datumA) // second invalidation is a no-op
	if h.Metrics().Invalidations != 1 {
		t.Fatal("no-op invalidation counted")
	}
}

func TestUpdateBumpsVersionUnderLease(t *testing.T) {
	h := lanHolder()
	h.ApplyGrant(datumA, 1, 10*time.Second, clock.Epoch, clock.Epoch.Add(time.Millisecond))
	h.Update(datumA, 2)
	v, _, _ := h.Peek(datumA)
	if v != 2 {
		t.Fatalf("version after Update = %d, want 2", v)
	}
	h.Update(datumA, 1) // regression ignored
	if v, _, _ := h.Peek(datumA); v != 2 {
		t.Fatalf("version regressed to %d", v)
	}
	h.Update(datumB, 9) // no lease: no-op
	if _, _, held := h.Peek(datumB); held {
		t.Fatal("Update created a lease record")
	}
}

func TestHeldSorted(t *testing.T) {
	h := lanHolder()
	now := clock.Epoch
	h.ApplyGrant(datumB, 1, time.Minute, now, now.Add(time.Millisecond))
	h.ApplyGrant(datumD, 1, time.Minute, now, now.Add(time.Millisecond))
	h.ApplyGrant(datumA, 1, time.Minute, now, now.Add(time.Millisecond))
	held := h.Held()
	if len(held) != 3 {
		t.Fatalf("Held = %v", held)
	}
	if held[0] != datumA || held[1] != datumB || held[2] != datumD {
		t.Fatalf("Held = %v, want file data before dir bindings, by node", held)
	}
}

func TestExpiringWithin(t *testing.T) {
	h := lanHolder()
	now := clock.Epoch
	h.ApplyGrant(datumA, 1, 5*time.Second, now, now.Add(time.Millisecond))
	h.ApplyGrant(datumB, 1, time.Hour, now, now.Add(time.Millisecond))
	h.ApplyGrant(datumD, 1, Infinite, now, now.Add(time.Millisecond))
	got := h.ExpiringWithin(now.Add(time.Second), 10*time.Second)
	if len(got) != 1 || got[0] != datumA {
		t.Fatalf("ExpiringWithin = %v, want [datumA]", got)
	}
	// Already-expired leases are not listed: extension is driven by use.
	got = h.ExpiringWithin(now.Add(time.Minute), 10*time.Second)
	if len(got) != 0 {
		t.Fatalf("expired lease listed for anticipatory extension: %v", got)
	}
}

func TestDropForgetsWithoutInvalidationCount(t *testing.T) {
	h := lanHolder()
	h.ApplyGrant(datumA, 1, time.Minute, clock.Epoch, clock.Epoch.Add(time.Millisecond))
	h.Drop(datumA)
	if h.Len() != 0 {
		t.Fatal("Drop left a record")
	}
	if h.Metrics().Invalidations != 0 {
		t.Fatal("voluntary drop counted as invalidation")
	}
}

func TestHolderMetricsHitAndExpiry(t *testing.T) {
	h := lanHolder()
	now := clock.Epoch
	h.ApplyGrant(datumA, 1, time.Second, now, now.Add(time.Millisecond))
	h.Valid(datumA, now.Add(500*time.Millisecond)) // hit
	h.Valid(datumA, now.Add(time.Hour))            // expired
	h.Valid(datumB, now)                           // never held: neither
	m := h.Metrics()
	if m.Hits != 1 || m.Expirations != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestApplyInstalledExtension(t *testing.T) {
	h := lanHolder()
	now := clock.Epoch
	// Hold datumA (fetched earlier); datumB unknown to this cache.
	h.ApplyGrant(datumA, 1, 5*time.Second, now, now.Add(time.Millisecond))
	sentAt := now.Add(4 * time.Second)
	n := h.ApplyInstalledExtension([]vfs.Datum{datumA, datumB}, 30*time.Second, sentAt, sentAt)
	if n != 1 {
		t.Fatalf("extended %d leases, want 1 (only held data)", n)
	}
	// New expiry = sentAt + 30s − ε.
	wantExp := sentAt.Add(30*time.Second - 100*time.Millisecond)
	_, exp, _ := h.Peek(datumA)
	if !exp.Equal(wantExp) {
		t.Fatalf("expiry = %v, want %v", exp, wantExp)
	}
	if _, _, held := h.Peek(datumB); held {
		t.Fatal("extension created a record for unheld datum")
	}
}

func TestApplyInstalledExtensionNeverShortens(t *testing.T) {
	h := lanHolder()
	now := clock.Epoch
	h.ApplyGrant(datumA, 1, time.Hour, now, now.Add(time.Millisecond))
	_, before, _ := h.Peek(datumA)
	h.ApplyInstalledExtension([]vfs.Datum{datumA}, time.Second, now, now)
	_, after, _ := h.Peek(datumA)
	if !after.Equal(before) {
		t.Fatalf("short multicast extension shortened lease: %v → %v", before, after)
	}
}

func TestApplyInstalledExtensionZeroTermNoop(t *testing.T) {
	h := lanHolder()
	h.ApplyGrant(datumA, 1, time.Second, clock.Epoch, clock.Epoch.Add(time.Millisecond))
	if n := h.ApplyInstalledExtension([]vfs.Datum{datumA}, 0, clock.Epoch, clock.Epoch); n != 0 {
		t.Fatalf("zero-term extension extended %d", n)
	}
}

// A broadcast extension must never revive an expired copy: the datum
// may have left the class on a write (invalidating every covered copy
// by expiry) and been re-installed later — a client that held it across
// that gap has an arbitrarily stale value. Coverage prolongs live
// belief only.
func TestApplyInstalledExtensionSkipsExpired(t *testing.T) {
	h := lanHolder()
	now := clock.Epoch
	h.ApplyGrant(datumA, 1, time.Second, now, now.Add(time.Millisecond))
	// Well past expiry: the copy is dead, the file may have been
	// rewritten and re-installed since.
	late := now.Add(time.Minute)
	if n := h.ApplyInstalledExtension([]vfs.Datum{datumA}, 30*time.Second, late, late); n != 0 {
		t.Fatalf("extension resurrected %d expired leases, want 0", n)
	}
	if h.Valid(datumA, late) {
		t.Fatal("expired copy became valid again after a broadcast extension")
	}
}

// The §5 clock-failure experiment at the holder level: a client whose
// clock runs slow continues using a lease the server regards as expired.
// The ε allowance absorbs bounded skew; drift beyond it breaks safety —
// which is why the paper calls for drift-bounded clocks.
func TestSlowClientClockOverrunsLeaseWithoutAllowance(t *testing.T) {
	base := clock.NewSim()
	slow := clock.NewDrift(base, 0.5) // client clock at half speed
	h := NewHolder(HolderConfig{})    // no allowance: unsafe on purpose
	req := slow.Now()
	h.ApplyGrant(datumA, 1, 10*time.Second, req, req)
	base.Advance(15 * time.Second) // server time: lease long expired
	if !h.Valid(datumA, slow.Now()) {
		t.Fatal("test setup broken: slow clock should still consider lease valid")
	}
	// With ε covering the accrued skew, the same client is safe.
	h2 := NewHolder(HolderConfig{Allowance: 8 * time.Second})
	h2.ApplyGrant(datumA, 1, 10*time.Second, req, req)
	if h2.Valid(datumA, slow.Now()) {
		t.Fatal("allowance did not protect against slow clock")
	}
}
