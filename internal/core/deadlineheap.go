package core

import "time"

// deadlineEntry schedules the instant a pending write may become
// releasable by the passage of time alone: the latest expiry among its
// blocking leases, its blocked-until window, or the recovery window.
type deadlineEntry struct {
	at time.Time
	id WriteID
}

// deadlineHeap is a lazy min-heap of write-release deadlines, ordered by
// instant (ties by WriteID for determinism). "Lazy" because entries are
// never removed in place: a write's effective deadline only shrinks
// (approvals remove blockers; leases cannot be extended while a write is
// pending), so each shrink pushes a fresh, smaller entry and records the
// new value in pendingWrite.scheduled. An entry is live iff its write is
// still pending and its instant equals that write's scheduled value;
// anything else is skipped on pop. This keeps ReadyWrites and
// NextDeadline O(log n) in place of the seed's scan of every datum.
type deadlineHeap []deadlineEntry

func (h deadlineHeap) less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].id < h[j].id
}

func (h *deadlineHeap) push(e deadlineEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *deadlineHeap) pop() deadlineEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && (*h).less(left, smallest) {
			smallest = left
		}
		if right < n && (*h).less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}
