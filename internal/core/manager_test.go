package core

import (
	"testing"
	"time"

	"leases/internal/clock"
	"leases/internal/vfs"
)

func epoch() time.Time { return clock.Epoch }

func TestGrantRecordsLease(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	g := m.Grant("c1", datumA, now)
	if !g.Leased || g.Term != 10*time.Second {
		t.Fatalf("Grant = %+v", g)
	}
	if !m.HoldsLease("c1", datumA, now) {
		t.Fatal("lease not recorded")
	}
	if m.HoldsLease("c1", datumA, now.Add(10*time.Second+time.Nanosecond)) {
		t.Fatal("lease survived its term")
	}
	if m.MaxTermGranted() != 10*time.Second {
		t.Fatalf("MaxTermGranted = %v", m.MaxTermGranted())
	}
}

func TestZeroTermPolicyRefuses(t *testing.T) {
	m := NewManager(FixedTerm(0))
	g := m.Grant("c1", datumA, epoch())
	if g.Leased || g.Term != 0 {
		t.Fatalf("zero-term Grant = %+v", g)
	}
	if m.LeaseCount() != 0 {
		t.Fatal("refused grant left a record")
	}
	if m.Metrics().Refusals != 1 {
		t.Fatalf("Refusals = %d", m.Metrics().Refusals)
	}
}

func TestExtensionNeverShortens(t *testing.T) {
	now := epoch()
	terms := []time.Duration{30 * time.Second, 10 * time.Second}
	i := 0
	m := NewManager(TermFunc(func(vfs.Datum, ClientID, time.Time) time.Duration {
		d := terms[i%len(terms)]
		i++
		return d
	}))
	m.Grant("c1", datumA, now) // 30s
	m.Grant("c1", datumA, now) // 10s — must not shorten the 30s lease
	if !m.HoldsLease("c1", datumA, now.Add(25*time.Second)) {
		t.Fatal("extension shortened an existing lease")
	}
}

func TestInfiniteLeaseNeverExpires(t *testing.T) {
	m := NewManager(FixedTerm(Infinite))
	now := epoch()
	m.Grant("c1", datumA, now)
	if !m.HoldsLease("c1", datumA, now.Add(1000000*time.Hour)) {
		t.Fatal("infinite lease expired")
	}
}

func TestWriteWithNoLeasesIsImmediate(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	disp := m.SubmitWrite("w", datumA, epoch())
	if !disp.Ready {
		t.Fatalf("unleased write not immediate: %+v", disp)
	}
	if m.Metrics().WritesImmediate != 1 {
		t.Fatal("metrics missed immediate write")
	}
}

func TestWritersOwnLeaseIsImplicitApproval(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Grant("w", datumA, now)
	disp := m.SubmitWrite("w", datumA, now.Add(time.Second))
	if !disp.Ready {
		t.Fatalf("write blocked by writer's own lease: %+v", disp)
	}
	// The writer retains its lease: its write-through cache holds the
	// new contents.
	if !m.HoldsLease("w", datumA, now.Add(time.Second)) {
		t.Fatal("writer lost its lease after writing")
	}
}

func TestWriteDeferredBehindOtherLease(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Grant("reader", datumA, now)
	disp := m.SubmitWrite("writer", datumA, now.Add(time.Second))
	if disp.Ready {
		t.Fatal("conflicting write applied immediately")
	}
	if len(disp.NeedApproval) != 1 || disp.NeedApproval[0] != "reader" {
		t.Fatalf("NeedApproval = %v", disp.NeedApproval)
	}
	if !disp.Deadline.Equal(now.Add(10 * time.Second)) {
		t.Fatalf("Deadline = %v, want lease expiry", disp.Deadline)
	}
	if m.Metrics().WritesDeferred != 1 {
		t.Fatal("metrics missed deferred write")
	}
}

func TestApprovalReleasesWrite(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Grant("r1", datumA, now)
	m.Grant("r2", datumA, now)
	disp := m.SubmitWrite("w", datumA, now.Add(time.Second))
	if len(disp.NeedApproval) != 2 {
		t.Fatalf("NeedApproval = %v", disp.NeedApproval)
	}
	if ready := m.Approve("r1", disp.WriteID, now.Add(2*time.Second)); ready {
		t.Fatal("write ready after only one of two approvals")
	}
	if ready := m.Approve("r2", disp.WriteID, now.Add(2*time.Second)); !ready {
		t.Fatal("write not ready after all approvals")
	}
	// Approving clients invalidated their copies: leases dropped.
	if m.HoldsLease("r1", datumA, now.Add(2*time.Second)) || m.HoldsLease("r2", datumA, now.Add(2*time.Second)) {
		t.Fatal("approving client retained its lease")
	}
	m.WriteApplied(disp.WriteID, now.Add(2*time.Second))
	if len(m.Pending(datumA)) != 0 {
		t.Fatal("write still pending after WriteApplied")
	}
}

func TestDuplicateApprovalIsNoop(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Grant("r1", datumA, now)
	m.Grant("r2", datumA, now)
	disp := m.SubmitWrite("w", datumA, now)
	m.Approve("r1", disp.WriteID, now)
	if m.Approve("r1", disp.WriteID, now) {
		t.Fatal("duplicate approval released the write")
	}
	if m.Approve("stranger", disp.WriteID, now) {
		t.Fatal("approval from non-holder released the write")
	}
	if m.Approve("r2", 9999, now) {
		t.Fatal("approval of unknown write reported ready")
	}
	if m.Metrics().ApprovalsApplied != 1 {
		t.Fatalf("ApprovalsApplied = %d, want 1", m.Metrics().ApprovalsApplied)
	}
}

func TestExpiryReleasesWrite(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Grant("unreachable", datumA, now)
	disp := m.SubmitWrite("w", datumA, now.Add(time.Second))
	if disp.Ready {
		t.Fatal("write should defer")
	}
	if got := m.ReadyWrites(now.Add(5 * time.Second)); len(got) != 0 {
		t.Fatalf("write ready before lease expiry: %v", got)
	}
	got := m.ReadyWrites(now.Add(10*time.Second + time.Millisecond))
	if len(got) != 1 || got[0] != disp.WriteID {
		t.Fatalf("ReadyWrites after expiry = %v", got)
	}
	if m.Metrics().ExpiryReleases != 1 {
		t.Fatalf("ExpiryReleases = %d", m.Metrics().ExpiryReleases)
	}
	// Repeated polling must not double-count the metric.
	m.ReadyWrites(now.Add(11 * time.Second))
	if m.Metrics().ExpiryReleases != 1 {
		t.Fatal("ExpiryReleases double-counted")
	}
	m.WriteApplied(disp.WriteID, now.Add(11*time.Second))
}

func TestNoNewLeasesWhileWritePending(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Grant("r1", datumA, now)
	disp := m.SubmitWrite("w", datumA, now.Add(time.Second))
	// Anti-starvation (§2 fn 1): no new leases while the write waits.
	g := m.Grant("r2", datumA, now.Add(2*time.Second))
	if g.Leased {
		t.Fatal("lease granted while write pending — writes can starve")
	}
	// Leases on other data are unaffected.
	if g2 := m.Grant("r2", datumB, now.Add(2*time.Second)); !g2.Leased {
		t.Fatal("pending write on A blocked grants on B")
	}
	m.Approve("r1", disp.WriteID, now.Add(3*time.Second))
	m.WriteApplied(disp.WriteID, now.Add(3*time.Second))
	if g := m.Grant("r2", datumA, now.Add(4*time.Second)); !g.Leased {
		t.Fatal("grants still blocked after write applied")
	}
}

func TestQueuedWritesApplyInOrder(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Grant("r1", datumA, now)
	d1 := m.SubmitWrite("w1", datumA, now.Add(time.Second))
	d2 := m.SubmitWrite("w2", datumA, now.Add(2*time.Second))
	if d1.Ready || d2.Ready {
		t.Fatal("queued writes reported ready")
	}
	pend := m.Pending(datumA)
	if len(pend) != 2 || pend[0].WriteID != d1.WriteID || pend[1].WriteID != d2.WriteID {
		t.Fatalf("Pending = %+v", pend)
	}
	// r1 approves w1; w2 was queued while r1 still held its lease, but
	// the approval invalidates r1's copy, so w2 must not wait on it.
	if !m.Approve("r1", d1.WriteID, now.Add(3*time.Second)) {
		t.Fatal("w1 not ready after approval")
	}
	// w2 is not ready until w1 applies (ordering).
	if got := m.ReadyWrites(now.Add(3 * time.Second)); len(got) != 1 || got[0] != d1.WriteID {
		t.Fatalf("ReadyWrites = %v, want only w1", got)
	}
	m.WriteApplied(d1.WriteID, now.Add(3*time.Second))
	got := m.ReadyWrites(now.Add(3 * time.Second))
	if len(got) != 1 || got[0] != d2.WriteID {
		t.Fatalf("after w1 applied, ReadyWrites = %v, want w2", got)
	}
	m.WriteApplied(d2.WriteID, now.Add(3*time.Second))
}

func TestWriteAppliedOutOfOrderPanics(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Grant("r1", datumA, now)
	m.SubmitWrite("w1", datumA, now)
	d2 := m.SubmitWrite("w2", datumA, now)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order WriteApplied did not panic")
		}
	}()
	m.WriteApplied(d2.WriteID, now)
}

func TestWriteAppliedUnknownPanics(t *testing.T) {
	m := NewManager(FixedTerm(time.Second))
	defer func() {
		if recover() == nil {
			t.Fatal("unknown WriteApplied did not panic")
		}
	}()
	m.WriteApplied(42, epoch())
}

func TestCancelWrite(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Grant("r1", datumA, now)
	d1 := m.SubmitWrite("w1", datumA, now)
	d2 := m.SubmitWrite("w2", datumA, now)
	m.CancelWrite(d1.WriteID, now)
	pend := m.Pending(datumA)
	if len(pend) != 1 || pend[0].WriteID != d2.WriteID {
		t.Fatalf("Pending after cancel = %+v", pend)
	}
	m.CancelWrite(9999, now) // unknown: no-op
	m.Approve("r1", d2.WriteID, now)
	m.WriteApplied(d2.WriteID, now)
}

func TestExpiredLeaseDoesNotBlockWrite(t *testing.T) {
	m := NewManager(FixedTerm(2 * time.Second))
	now := epoch()
	m.Grant("r1", datumA, now)
	disp := m.SubmitWrite("w", datumA, now.Add(3*time.Second))
	if !disp.Ready {
		t.Fatalf("expired lease blocked a write: %+v", disp)
	}
}

func TestReleaseDropsLeaseAndUnblocksWrite(t *testing.T) {
	m := NewManager(FixedTerm(time.Hour))
	now := epoch()
	m.Grant("r1", datumA, now)
	m.Grant("r1", datumB, now)
	disp := m.SubmitWrite("w", datumA, now)
	if disp.Ready {
		t.Fatal("expected deferral")
	}
	m.Release("r1", []vfs.Datum{datumA}, now.Add(time.Second))
	got := m.ReadyWrites(now.Add(time.Second))
	if len(got) != 1 || got[0] != disp.WriteID {
		t.Fatalf("release did not unblock write: %v", got)
	}
	if !m.HoldsLease("r1", datumB, now.Add(time.Second)) {
		t.Fatal("release of A dropped lease on B")
	}
	m.Release("ghost", []vfs.Datum{datumA}, now) // non-holder: no-op
	m.WriteApplied(disp.WriteID, now.Add(time.Second))
}

func TestGrantBatch(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	grants := m.GrantBatch("c1", []vfs.Datum{datumA, datumB, datumD}, now)
	if len(grants) != 3 {
		t.Fatalf("GrantBatch returned %d grants", len(grants))
	}
	for _, g := range grants {
		if !g.Leased {
			t.Fatalf("batch grant refused: %+v", g)
		}
	}
	if m.LeaseCount() != 3 {
		t.Fatalf("LeaseCount = %d, want 3", m.LeaseCount())
	}
}

func TestHolders(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Grant("zeta", datumA, now)
	m.Grant("alpha", datumA, now)
	h := m.Holders(datumA, now)
	if len(h) != 2 || h[0] != "alpha" || h[1] != "zeta" {
		t.Fatalf("Holders = %v, want sorted [alpha zeta]", h)
	}
	if got := m.Holders(datumA, now.Add(time.Minute)); len(got) != 0 {
		t.Fatalf("expired holders listed: %v", got)
	}
	if got := m.Holders(datumB, now); got != nil {
		t.Fatalf("Holders of unleased datum = %v", got)
	}
}

func TestNextDeadline(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	if _, ok := m.NextDeadline(); ok {
		t.Fatal("idle manager reported a deadline")
	}
	m.Grant("r1", datumA, now)
	m.Grant("r2", datumB, now.Add(5*time.Second))
	m.SubmitWrite("w", datumA, now.Add(time.Second))
	m.SubmitWrite("w", datumB, now.Add(6*time.Second))
	dl, ok := m.NextDeadline()
	if !ok || !dl.Equal(now.Add(10*time.Second)) {
		t.Fatalf("NextDeadline = %v %v, want r1 expiry", dl, ok)
	}
}

func TestNextDeadlineInfiniteLeaseHasNone(t *testing.T) {
	m := NewManager(FixedTerm(Infinite))
	now := epoch()
	m.Grant("r1", datumA, now)
	m.SubmitWrite("w", datumA, now)
	if _, ok := m.NextDeadline(); ok {
		t.Fatal("infinite-lease blocker reported an expiry deadline")
	}
}

func TestRecoveryWindowBlocksWrites(t *testing.T) {
	now := epoch()
	recoverUntil := now.Add(10 * time.Second)
	m := NewManager(FixedTerm(10*time.Second), WithRecoveryWindow(recoverUntil))
	if !m.Recovering(now) {
		t.Fatal("not recovering")
	}
	disp := m.SubmitWrite("w", datumA, now)
	if disp.Ready {
		t.Fatal("write applied during recovery window — pre-crash lease could be violated")
	}
	if !disp.Deadline.Equal(recoverUntil) {
		t.Fatalf("Deadline = %v, want recovery end", disp.Deadline)
	}
	if got := m.ReadyWrites(now.Add(5 * time.Second)); len(got) != 0 {
		t.Fatalf("write ready during recovery: %v", got)
	}
	got := m.ReadyWrites(now.Add(10*time.Second + time.Millisecond))
	if len(got) != 1 {
		t.Fatalf("write not released after recovery window: %v", got)
	}
	// Grants during recovery are safe and allowed.
	if g := m.Grant("c", datumB, now); !g.Leased {
		t.Fatal("grant refused during recovery")
	}
	m.WriteApplied(got[0], now.Add(11*time.Second))
}

func TestSnapshotRestore(t *testing.T) {
	m := NewManager(FixedTerm(time.Minute))
	now := epoch()
	m.Grant("c1", datumA, now)
	m.Grant("c2", datumA, now)
	m.Grant("c1", datumB, now)
	snap := m.Snapshot(now)
	if len(snap) != 3 {
		t.Fatalf("Snapshot has %d records, want 3", len(snap))
	}
	// The detailed-record recovery path: a fresh manager restores the
	// snapshot and immediately honours the old leases without a blanket
	// recovery window.
	m2 := NewManager(FixedTerm(time.Minute))
	m2.Restore(snap, now.Add(time.Second))
	disp := m2.SubmitWrite("w", datumA, now.Add(time.Second))
	if disp.Ready {
		t.Fatal("restored lease did not block write")
	}
	if len(disp.NeedApproval) != 2 {
		t.Fatalf("NeedApproval after restore = %v", disp.NeedApproval)
	}
}

func TestRestoreSkipsExpired(t *testing.T) {
	m := NewManager(FixedTerm(time.Second))
	now := epoch()
	m.Grant("c1", datumA, now)
	snap := m.Snapshot(now)
	m2 := NewManager(FixedTerm(time.Second))
	m2.Restore(snap, now.Add(time.Hour))
	if m2.LeaseCount() != 0 {
		t.Fatal("expired snapshot record restored")
	}
}

func TestCompactReclaimsExpiredRecords(t *testing.T) {
	m := NewManager(FixedTerm(time.Second))
	now := epoch()
	for i := 0; i < 100; i++ {
		m.Grant(ClientID(rune('a'+i%26)), vfs.Datum{Kind: vfs.FileData, Node: vfs.NodeID(i)}, now)
	}
	if m.LeaseCount() != 100 {
		t.Fatalf("LeaseCount = %d", m.LeaseCount())
	}
	m.Compact(now.Add(2 * time.Second))
	if m.LeaseCount() != 0 {
		t.Fatalf("Compact left %d expired records", m.LeaseCount())
	}
}

func TestNilPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewManager(nil) did not panic")
		}
	}()
	NewManager(nil)
}

func TestWriterWaitsBehindInfiniteLeaseUntilApproval(t *testing.T) {
	m := NewManager(FixedTerm(Infinite))
	now := epoch()
	m.Grant("holder", datumA, now)
	disp := m.SubmitWrite("w", datumA, now)
	if disp.Ready {
		t.Fatal("write applied despite infinite lease")
	}
	if !disp.Deadline.IsZero() {
		t.Fatalf("Deadline = %v, want zero (approval-only release)", disp.Deadline)
	}
	if got := m.ReadyWrites(now.Add(1000 * time.Hour)); len(got) != 0 {
		t.Fatal("infinite lease expired")
	}
	if !m.Approve("holder", disp.WriteID, now) {
		t.Fatal("approval did not release write")
	}
	m.WriteApplied(disp.WriteID, now)
}
