package core

import (
	"sort"
	"time"

	"leases/internal/vfs"
)

// HolderConfig sets the timing assumptions under which a client judges
// its leases valid.
type HolderConfig struct {
	// Allowance is ε, the bound on clock asynchrony between this client
	// and the server (§3.1). The client treats its leases as expiring ε
	// early so that a skewed clock cannot make it read stale data.
	Allowance time.Duration
	// Delivery, when positive, is the known one-way delivery time
	// m_prop + 2·m_proc; the effective term is then the paper's
	// t_c = max(0, t_s − (m_prop + 2·m_proc) − ε), anchored at the
	// instant the grant was received. When zero, the client falls back
	// to the strictly safe rule of anchoring the term at the instant it
	// *sent* the request: the server cannot have granted the lease
	// before then, so requestedAt + t_s − ε is always conservative.
	Delivery time.Duration
}

// heldLease is the client's record of one lease.
type heldLease struct {
	expiry  time.Time // zero = never; local clock, ε already deducted
	version uint64
	term    time.Duration // t_s as granted, for renewal bookkeeping
}

// HolderMetrics counts client-side lease events.
type HolderMetrics struct {
	Grants        int64 // grants/extensions applied
	ZeroEffective int64 // grants whose effective term was zero
	Invalidations int64 // copies invalidated by approval requests
	Expirations   int64 // uses refused because the lease had expired
	Hits          int64 // uses satisfied under a valid lease
}

// Holder is the client side of the lease protocol: the record of which
// data this cache may use without consulting the server, with what
// version, and until when. Like Manager it is transport-free and not
// safe for concurrent use; drivers serialize access.
type Holder struct {
	cfg     HolderConfig
	leases  map[vfs.Datum]*heldLease
	metrics HolderMetrics
}

// NewHolder returns an empty holder.
func NewHolder(cfg HolderConfig) *Holder {
	return &Holder{cfg: cfg, leases: make(map[vfs.Datum]*heldLease)}
}

// effectiveExpiry converts a granted term into a local expiry instant.
func (h *Holder) effectiveExpiry(term time.Duration, requestedAt, receivedAt time.Time) time.Time {
	if term >= Infinite {
		return time.Time{}
	}
	var anchor time.Time
	budget := term - h.cfg.Allowance
	if h.cfg.Delivery > 0 {
		anchor = receivedAt
		budget -= h.cfg.Delivery
	} else {
		anchor = requestedAt
	}
	if budget <= 0 {
		// t_c = 0: the datum may be used for the access that fetched it
		// but not cached. Represent as an expiry in the past.
		return anchor.Add(-time.Nanosecond)
	}
	return anchor.Add(budget)
}

// ApplyGrant records a lease granted with term t_s for a request sent at
// requestedAt and answered at receivedAt, covering the datum at the given
// version. A zero term (the server refused to lease) still records the
// version so the driver can use the data once, but leaves nothing valid.
// It returns the effective local expiry (zero = never).
func (h *Holder) ApplyGrant(d vfs.Datum, version uint64, term time.Duration, requestedAt, receivedAt time.Time) time.Time {
	h.metrics.Grants++
	if term <= 0 {
		h.metrics.ZeroEffective++
		delete(h.leases, d)
		return receivedAt.Add(-time.Nanosecond)
	}
	expiry := h.effectiveExpiry(term, requestedAt, receivedAt)
	if Expired(expiry, receivedAt) {
		h.metrics.ZeroEffective++
		delete(h.leases, d)
		return expiry
	}
	l, ok := h.leases[d]
	if !ok {
		l = &heldLease{}
		h.leases[d] = l
	}
	// An extension never shortens a lease, and a re-fetch never regresses
	// the version.
	if ok {
		expiry = maxExpiry(l.expiry, expiry)
	}
	l.expiry = expiry
	if version > l.version || !ok {
		l.version = version
	}
	l.term = term
	return expiry
}

// ApplyInstalledExtension processes a periodic multicast extension (§4)
// covering the given installed data for term, stamped with the server's
// send time. Only data this cache already holds a *currently valid*
// lease on (judged at now) are extended — the extension is unsolicited,
// so there is no fetched copy to cover otherwise, and an expired entry's
// value may have been rewritten any number of times since the lease
// lapsed: coverage prolongs live belief, it never resurrects a dead
// copy. (A datum can leave the class on a write and be re-installed
// later; a client that held it across that gap would otherwise have its
// stale copy revived by the first broadcast under the new membership.)
// The expiry is anchored at the server's timestamp minus the clock
// allowance: sentAt + term − ε, valid whenever mutual clock error is
// within ε. It returns how many held leases were extended.
func (h *Holder) ApplyInstalledExtension(data []vfs.Datum, term time.Duration, sentAt, now time.Time) int {
	if term <= 0 {
		return 0
	}
	expiry := ExpiryAt(sentAt, term)
	if !expiry.IsZero() {
		expiry = expiry.Add(-h.cfg.Allowance)
	}
	n := 0
	for _, d := range data {
		l, ok := h.leases[d]
		if !ok || Expired(l.expiry, now) {
			continue
		}
		l.expiry = maxExpiry(l.expiry, expiry)
		n++
	}
	if n > 0 {
		h.metrics.Grants++
	}
	return n
}

// ApplyStampedGrant processes one unsolicited, server-stamped extension
// grant — the anticipatory extension a server piggybacks on another
// reply (§4). Like an installed extension it can only extend a lease
// this cache already holds (there is no fetched copy for it to cover
// otherwise) and is anchored at the server's send time minus the clock
// allowance: sentAt + term − ε. A version disagreeing with the held
// copy means the copy is stale — the grant is ignored and the normal
// invalidation path deals with it. Reports whether a lease was
// extended.
func (h *Holder) ApplyStampedGrant(d vfs.Datum, version uint64, term time.Duration, sentAt time.Time) bool {
	if term <= 0 {
		return false
	}
	l, ok := h.leases[d]
	if !ok || version != l.version {
		return false
	}
	expiry := ExpiryAt(sentAt, term)
	if !expiry.IsZero() {
		expiry = expiry.Add(-h.cfg.Allowance)
	}
	l.expiry = maxExpiry(l.expiry, expiry)
	l.term = term
	h.metrics.Grants++
	return true
}

// Valid reports whether the holder may use its cached copy of d at now:
// a lease is held and unexpired. It updates the hit/expiry metrics.
func (h *Holder) Valid(d vfs.Datum, now time.Time) bool {
	l, ok := h.leases[d]
	if !ok {
		return false
	}
	if Expired(l.expiry, now) {
		h.metrics.Expirations++
		return false
	}
	h.metrics.Hits++
	return true
}

// Peek reports lease state without touching metrics: the version held,
// the local expiry, and whether any record exists (possibly expired).
func (h *Holder) Peek(d vfs.Datum) (version uint64, expiry time.Time, held bool) {
	l, ok := h.leases[d]
	if !ok {
		return 0, time.Time{}, false
	}
	return l.version, l.expiry, true
}

// Invalidate discards the lease and any claim to a cached copy of d.
// Clients call this when approving a write: "When a leaseholder grants
// approval for a write, it invalidates its local copy of the datum" (§2).
func (h *Holder) Invalidate(d vfs.Datum) {
	if _, ok := h.leases[d]; ok {
		h.metrics.Invalidations++
		delete(h.leases, d)
	}
}

// Update refreshes the cached version under an existing valid lease —
// used by a write-through cache when its own write is applied: the writer
// retains its lease over the new contents.
func (h *Holder) Update(d vfs.Datum, version uint64) {
	if l, ok := h.leases[d]; ok && version > l.version {
		l.version = version
	}
}

// Held returns every datum with a lease record (valid or expired),
// sorted. "In general, a cache should extend together all leases over
// all files that it still holds" (§3.1) — this is the batch to extend.
func (h *Holder) Held() []vfs.Datum {
	out := make([]vfs.Datum, 0, len(h.leases))
	for d := range h.leases {
		out = append(out, d)
	}
	sortData(out)
	return out
}

// ExpiringWithin returns the data whose leases are valid now but will
// expire within lead, sorted — the set an anticipatory-extension policy
// renews ahead of use (§4).
func (h *Holder) ExpiringWithin(now time.Time, lead time.Duration) []vfs.Datum {
	var out []vfs.Datum
	deadline := now.Add(lead)
	for d, l := range h.leases {
		if l.expiry.IsZero() {
			continue
		}
		if !Expired(l.expiry, now) && !l.expiry.After(deadline) {
			out = append(out, d)
		}
	}
	sortData(out)
	return out
}

// Drop forgets the lease on d without counting an invalidation — used
// when the cache evicts the datum and relinquishes the lease voluntarily.
func (h *Holder) Drop(d vfs.Datum) { delete(h.leases, d) }

// Len reports how many lease records are held.
func (h *Holder) Len() int { return len(h.leases) }

// Metrics returns a copy of the event counters.
func (h *Holder) Metrics() HolderMetrics { return h.metrics }

func sortData(data []vfs.Datum) {
	sort.Slice(data, func(i, j int) bool {
		if data[i].Kind != data[j].Kind {
			return data[i].Kind < data[j].Kind
		}
		return data[i].Node < data[j].Node
	})
}
