package core

import (
	"testing"
	"time"

	"leases/internal/clock"
)

// SubmitWriteHeld is the concurrent-driver variant used by the TCP
// server: it must enqueue even when the datum is unleased, so that no
// grant can slip in between clearance and application.
func TestSubmitWriteHeldBlocksGrantsUntilApplied(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	disp := m.SubmitWriteHeld("w", datumA, now)
	if disp.Ready {
		t.Fatal("held submission reported Ready")
	}
	// No conflicting leases: releasable immediately...
	ready := m.ReadyWrites(now)
	if len(ready) != 1 || ready[0] != disp.WriteID {
		t.Fatalf("ReadyWrites = %v", ready)
	}
	// ...but until WriteApplied, the queue entry blocks new grants.
	if g := m.Grant("r", datumA, now); g.Leased {
		t.Fatal("grant slipped in while a held write was pending")
	}
	m.WriteApplied(disp.WriteID, now)
	if g := m.Grant("r", datumA, now); !g.Leased {
		t.Fatal("grants still blocked after apply")
	}
	if m.Metrics().WritesImmediate != 1 {
		t.Fatalf("metrics = %+v, want the unblocked held write counted immediate", m.Metrics())
	}
}

func TestSubmitWriteHeldWithBlockers(t *testing.T) {
	m := NewManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Grant("r1", datumA, now)
	disp := m.SubmitWriteHeld("w", datumA, now)
	if len(disp.NeedApproval) != 1 || disp.NeedApproval[0] != "r1" {
		t.Fatalf("NeedApproval = %v", disp.NeedApproval)
	}
	if !disp.Deadline.Equal(now.Add(10 * time.Second)) {
		t.Fatalf("Deadline = %v", disp.Deadline)
	}
	if len(m.ReadyWrites(now)) != 0 {
		t.Fatal("ready despite live blocker")
	}
	if !m.Approve("r1", disp.WriteID, now) {
		t.Fatal("approval did not release")
	}
	m.WriteApplied(disp.WriteID, now)
	if m.Metrics().WritesDeferred != 1 {
		t.Fatalf("metrics = %+v", m.Metrics())
	}
}

func TestSubmitWriteHeldInfiniteBlocker(t *testing.T) {
	m := NewManager(FixedTerm(Infinite))
	now := epoch()
	m.Grant("r1", datumA, now)
	disp := m.SubmitWriteHeld("w", datumA, now)
	if !disp.Deadline.IsZero() {
		t.Fatalf("Deadline = %v, want zero (approval-only)", disp.Deadline)
	}
	m.CancelWrite(disp.WriteID, now)
}

func TestSubmitWriteHeldDuringRecovery(t *testing.T) {
	now := epoch()
	m := NewManager(FixedTerm(time.Second), WithRecoveryWindow(now.Add(5*time.Second)))
	disp := m.SubmitWriteHeld("w", datumA, now)
	if len(m.ReadyWrites(now.Add(4*time.Second))) != 0 {
		t.Fatal("held write released during recovery window")
	}
	if got := m.ReadyWrites(now.Add(5*time.Second + time.Millisecond)); len(got) != 1 {
		t.Fatalf("held write not released after recovery: %v", got)
	}
	m.WriteApplied(disp.WriteID, now.Add(6*time.Second))
}

func TestSubmitWriteHeldInstalledDatum(t *testing.T) {
	inst := NewInstalledSet(30 * time.Second)
	inst.Add(datumA)
	m := NewManager(FixedTerm(10*time.Second), WithInstalled(inst))
	now := epoch()
	inst.Extension(now)
	disp := m.SubmitWriteHeld("w", datumA, now.Add(time.Second))
	if len(disp.NeedApproval) != 0 {
		t.Fatalf("installed held write asked approvals: %v", disp.NeedApproval)
	}
	if len(m.ReadyWrites(now.Add(29*time.Second))) != 0 {
		t.Fatal("released before multicast cover expiry")
	}
	if got := m.ReadyWrites(now.Add(30*time.Second + time.Millisecond)); len(got) != 1 {
		t.Fatalf("not released after cover expiry: %v", got)
	}
	m.WriteApplied(disp.WriteID, now.Add(31*time.Second))
}

func TestTokenManagerMaxTermGranted(t *testing.T) {
	m := NewTokenManager(FixedTerm(42 * time.Second))
	if m.MaxTermGranted() != 0 {
		t.Fatal("fresh manager has a max term")
	}
	m.Acquire("c", datumA, TokenRead, epoch())
	if m.MaxTermGranted() != 42*time.Second {
		t.Fatalf("MaxTermGranted = %v", m.MaxTermGranted())
	}
}

func TestTokenHolderExpiresWithin(t *testing.T) {
	h := NewTokenHolder(HolderConfig{})
	now := clock.Epoch
	h.ApplyToken(datumA, TokenWrite, 1, 10*time.Second, now, now)
	if h.ExpiresWithin(datumA, now, time.Second) {
		t.Fatal("fresh token reported expiring")
	}
	if !h.ExpiresWithin(datumA, now.Add(9500*time.Millisecond), time.Second) {
		t.Fatal("near-expiry token not reported")
	}
	if h.ExpiresWithin(datumA, now.Add(time.Minute), time.Second) {
		t.Fatal("already-expired token reported as expiring")
	}
	if h.ExpiresWithin(datumB, now, time.Second) {
		t.Fatal("unheld datum reported expiring")
	}
	h2 := NewTokenHolder(HolderConfig{})
	h2.ApplyToken(datumA, TokenRead, 1, Infinite, now, now)
	if h2.ExpiresWithin(datumA, now, time.Hour) {
		t.Fatal("infinite token reported expiring")
	}
	if h2.Mode(datumA) != TokenRead {
		t.Fatalf("Mode = %v", h2.Mode(datumA))
	}
	if h2.Mode(datumB) != 0 {
		t.Fatal("unheld Mode nonzero")
	}
}

// DowngradeAck and RefreshHead drive the recall-resolution paths the
// simulator uses; exercise them directly.
func TestDowngradeAckResolvesReadAcquisition(t *testing.T) {
	m := NewTokenManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Acquire("writer", datumA, TokenWrite, now)
	disp := m.Acquire("reader", datumA, TokenRead, now)
	if disp.Granted {
		t.Fatal("granted under write token")
	}
	if !m.DowngradeAck("writer", disp.ReqID, now.Add(time.Second)) {
		t.Fatal("DowngradeAck did not resolve")
	}
	// The writer kept a read token.
	if m.Mode("writer", datumA, now.Add(time.Second)) != TokenRead {
		t.Fatal("writer lost its token on downgrade")
	}
	m.GrantReady(disp.ReqID, now.Add(time.Second))
	if m.Mode("reader", datumA, now.Add(time.Second)) != TokenRead {
		t.Fatal("reader not granted")
	}
	// DowngradeAck on a write-mode acquisition refuses.
	disp2 := m.Acquire("w2", datumA, TokenWrite, now.Add(2*time.Second))
	if m.DowngradeAck("writer", disp2.ReqID, now.Add(2*time.Second)) {
		t.Fatal("DowngradeAck resolved a write acquisition")
	}
	// Unknown request / non-blocker are no-ops.
	if m.DowngradeAck("writer", 999, now) {
		t.Fatal("unknown request resolved")
	}
}

func TestRefreshHeadPicksUpNewBlockers(t *testing.T) {
	m := NewTokenManager(FixedTerm(10 * time.Second))
	now := epoch()
	m.Acquire("r1", datumA, TokenRead, now)
	w := m.Acquire("w", datumA, TokenWrite, now) // queued behind r1
	r2 := m.Acquire("r2", datumA, TokenRead, now)
	_ = r2
	// r1 acks; the writer is granted.
	m.RecallAck("r1", w.ReqID, now)
	m.GrantReady(w.ReqID, now)
	// r2's recorded blockers ({r1}) are stale: the live blocker is now
	// the writer. RefreshHead must surface it.
	added := m.RefreshHead(datumA, now)
	if len(added) != 1 || added[0] != "w" {
		t.Fatalf("RefreshHead = %v, want [w]", added)
	}
	// And r2 is not grantable until the writer resolves.
	if got := m.ReadyAcquisitions(now); len(got) != 0 {
		t.Fatalf("r2 ready over a live write token: %v", got)
	}
	m.RecallAck("w", r2.ReqID, now)
	if got := m.ReadyAcquisitions(now); len(got) != 1 {
		t.Fatalf("r2 not ready after writer ack: %v", got)
	}
	// RefreshHead with nothing pending is nil.
	if m.RefreshHead(datumB, now) != nil {
		t.Fatal("RefreshHead invented blockers")
	}
}

func TestTokenHolderConservativeAnchor(t *testing.T) {
	// Without a delivery estimate, the token anchors at the request
	// send time.
	h := NewTokenHolder(HolderConfig{Allowance: 100 * time.Millisecond})
	req := clock.Epoch
	recv := req.Add(50 * time.Millisecond)
	h.ApplyToken(datumA, TokenRead, 1, 10*time.Second, req, recv)
	// Expiry = req + 10s − ε.
	if !h.CanRead(datumA, req.Add(9800*time.Millisecond)) {
		t.Fatal("token expired too early")
	}
	if h.CanRead(datumA, req.Add(9950*time.Millisecond)) {
		t.Fatal("token valid past conservative expiry")
	}
	// A term shorter than ε is unusable.
	h.ApplyToken(datumB, TokenRead, 1, 50*time.Millisecond, req, recv)
	if h.CanRead(datumB, recv) {
		t.Fatal("sub-ε token usable")
	}
}
