package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"leases/internal/clock"
	"leases/internal/vfs"
)

func TestSnapshotCodecRoundTrip(t *testing.T) {
	now := clock.Epoch
	in := []LeaseSnapshot{
		{Client: "c1", Datum: vfs.Datum{Kind: vfs.FileData, Node: 5}, Expiry: now.Add(10 * time.Second)},
		{Client: "c2", Datum: vfs.Datum{Kind: vfs.DirBinding, Node: 1}, Expiry: time.Time{}}, // infinite
		{Client: "a-much-longer-client-name", Datum: vfs.Datum{Kind: vfs.FileData, Node: 9}, Expiry: now.Add(time.Hour)},
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, in); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	out, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records", len(out))
	}
	for i := range in {
		if out[i].Client != in[i].Client || out[i].Datum != in[i].Datum {
			t.Fatalf("record %d: %+v vs %+v", i, out[i], in[i])
		}
		if !out[i].Expiry.Equal(in[i].Expiry) {
			t.Fatalf("record %d expiry: %v vs %v", i, out[i].Expiry, in[i].Expiry)
		}
	}
}

func TestSnapshotCodecEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSnapshot(&buf)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty round trip: %v %v", out, err)
	}
}

func TestSnapshotCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("LSN1"),                         // truncated count
		append([]byte("LSN1"), 1, 0, 0, 0),     // truncated record
		append([]byte("LSN1"), 1, 0, 0, 0, 99), // bad kind
		append([]byte("LSN1"), 255, 255, 255, 255), // absurd count
	}
	for i, c := range cases {
		if _, err := ReadSnapshot(bytes.NewReader(c)); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("case %d: err = %v, want ErrBadSnapshot", i, err)
		}
	}
}

func TestSnapshotCodecEndToEndRecovery(t *testing.T) {
	// Full cycle: running manager → snapshot → file bytes → restored
	// manager that still honours the lease.
	m := NewManager(FixedTerm(time.Hour))
	now := clock.Epoch
	m.Grant("c1", datumA, now)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, m.Snapshot(now)); err != nil {
		t.Fatal(err)
	}
	records, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(FixedTerm(time.Hour))
	m2.Restore(records, now.Add(time.Minute))
	disp := m2.SubmitWrite("w", datumA, now.Add(time.Minute))
	if disp.Ready {
		t.Fatal("restored lease did not block the write")
	}
	if len(disp.NeedApproval) != 1 || disp.NeedApproval[0] != "c1" {
		t.Fatalf("NeedApproval = %v", disp.NeedApproval)
	}
}

// Property: the codec round-trips arbitrary record lists.
func TestSnapshotCodecProperty(t *testing.T) {
	f := func(names []string, nodes []uint16, expiries []int32) bool {
		n := len(names)
		if len(nodes) < n {
			n = len(nodes)
		}
		if len(expiries) < n {
			n = len(expiries)
		}
		in := make([]LeaseSnapshot, 0, n)
		for i := 0; i < n; i++ {
			kind := vfs.FileData
			if nodes[i]%2 == 0 {
				kind = vfs.DirBinding
			}
			in = append(in, LeaseSnapshot{
				Client: ClientID(names[i]),
				Datum:  vfs.Datum{Kind: kind, Node: vfs.NodeID(nodes[i])},
				Expiry: clock.Epoch.Add(time.Duration(expiries[i]) * time.Millisecond),
			})
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, in); err != nil {
			return false
		}
		out, err := ReadSnapshot(&buf)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i].Client != in[i].Client || out[i].Datum != in[i].Datum || !out[i].Expiry.Equal(in[i].Expiry) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
