package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"leases/internal/clock"
	"leases/internal/vfs"
)

// managerModel is a reference model of the Manager's externally
// observable obligations, driven alongside it through random operations.
type managerModel struct {
	t   *testing.T
	m   *Manager
	clk *clock.Sim
	// pending mirrors the queued writes we have been told about.
	pending map[WriteID]vfs.Datum
	applied map[WriteID]bool
}

// TestManagerInvariantsRandomized drives the Manager through random
// grant/write/approve/expiry/release/compact sequences and checks
// structural invariants after every step:
//
//  1. A datum with a pending write never grants new leases.
//  2. ReadyWrites only reports writes whose disposition blockers have
//     all approved or expired.
//  3. Holders lists exactly the unexpired grantees.
//  4. LeaseCount never exceeds grants issued and reaches 0 after
//     Compact once everything expired.
func TestManagerInvariantsRandomized(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clk := clock.NewSim()
		m := NewManager(FixedTerm(time.Duration(1+rng.Intn(10)) * time.Second))
		data := []vfs.Datum{
			{Kind: vfs.FileData, Node: 2},
			{Kind: vfs.FileData, Node: 3},
			{Kind: vfs.DirBinding, Node: 1},
		}
		clients := []ClientID{"a", "b", "c", "d"}
		type pend struct {
			id     WriteID
			datum  vfs.Datum
			need   map[ClientID]bool
			orExp  time.Time
			writer ClientID
		}
		var pendings []*pend

		granted := map[vfs.Datum]map[ClientID]time.Time{}
		for _, d := range data {
			granted[d] = map[ClientID]time.Time{}
		}

		for step := 0; step < 3000; step++ {
			now := clk.Now()
			d := data[rng.Intn(len(data))]
			c := clients[rng.Intn(len(clients))]
			switch r := rng.Float64(); {
			case r < 0.45: // grant
				g := m.Grant(c, d, now)
				hasPending := false
				for _, p := range pendings {
					if p.datum == d {
						hasPending = true
					}
				}
				if hasPending && g.Leased {
					t.Fatalf("seed %d step %d: lease granted on %v while write pending", seed, step, d)
				}
				if g.Leased {
					exp := ExpiryAt(now, g.Term)
					if old, ok := granted[d][c]; ok {
						exp = maxExpiry(old, exp)
					}
					granted[d][c] = exp
				}
			case r < 0.60: // submit write
				disp := m.SubmitWrite(c, d, now)
				if disp.Ready {
					// Model: no other live holder.
					for hc, exp := range granted[d] {
						if hc != c && !Expired(exp, now) {
							t.Fatalf("seed %d step %d: immediate write with live holder %s (exp %v, now %v)",
								seed, step, hc, exp, now)
						}
					}
				} else {
					p := &pend{id: disp.WriteID, datum: d, need: map[ClientID]bool{}, orExp: disp.Deadline, writer: c}
					for _, h := range disp.NeedApproval {
						p.need[h] = true
					}
					pendings = append(pendings, p)
				}
			case r < 0.75: // approve something
				if len(pendings) > 0 {
					p := pendings[rng.Intn(len(pendings))]
					var hs []ClientID
					for h := range p.need {
						hs = append(hs, h)
					}
					if len(hs) > 0 {
						h := hs[rng.Intn(len(hs))]
						m.Approve(h, p.id, now)
						delete(p.need, h)
						delete(granted[p.datum], h)
					}
				}
			case r < 0.85: // advance time
				clk.Advance(time.Duration(rng.Intn(4000)) * time.Millisecond)
			case r < 0.92: // drain ready writes
				ready := m.ReadyWrites(clk.Now())
				for _, id := range ready {
					var p *pend
					idx := -1
					for i, q := range pendings {
						if q.id == id {
							p, idx = q, i
						}
					}
					if p == nil {
						t.Fatalf("seed %d step %d: ReadyWrites returned unknown write %d", seed, step, id)
					}
					// Every recorded blocker must have approved or
					// expired per the model.
					for h := range p.need {
						exp, held := granted[p.datum][h]
						if held && !Expired(exp, clk.Now()) {
							t.Fatalf("seed %d step %d: write %d ready with live blocker %s",
								seed, step, id, h)
						}
					}
					// Only the queue head may apply; ReadyWrites
					// guarantees that.
					m.WriteApplied(id, clk.Now())
					pendings = append(pendings[:idx], pendings[idx+1:]...)
				}
			case r < 0.96: // release
				m.Release(c, []vfs.Datum{d}, now)
				delete(granted[d], c)
			default: // holders check + compact
				hs := m.Holders(d, now)
				for _, h := range hs {
					exp, ok := granted[d][h]
					if !ok || Expired(exp, now) {
						t.Fatalf("seed %d step %d: Holders lists %s without a live model lease", seed, step, h)
					}
				}
				m.Compact(now)
			}
		}

		// Drain: advance far, apply everything, compact — no residue.
		clk.Advance(time.Hour)
		for _, id := range m.ReadyWrites(clk.Now()) {
			m.WriteApplied(id, clk.Now())
		}
		m.Compact(clk.Now())
		if n := m.LeaseCount(); n != 0 {
			t.Fatalf("seed %d: %d lease records survive compaction after universal expiry", seed, n)
		}
	}
}

// TestSnapshotRoundTripRandomized: Snapshot/Restore preserves exactly
// the live lease set.
func TestSnapshotRoundTripRandomized(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clk := clock.NewSim()
		m := NewManager(FixedTerm(10 * time.Second))
		for i := 0; i < 200; i++ {
			c := ClientID(fmt.Sprintf("c%d", rng.Intn(8)))
			d := vfs.Datum{Kind: vfs.FileData, Node: vfs.NodeID(rng.Intn(20) + 2)}
			m.Grant(c, d, clk.Now())
			clk.Advance(time.Duration(rng.Intn(500)) * time.Millisecond)
		}
		now := clk.Now()
		snap := m.Snapshot(now)
		m2 := NewManager(FixedTerm(10 * time.Second))
		m2.Restore(snap, now)
		// Same holders on every datum.
		for node := vfs.NodeID(2); node < 22; node++ {
			d := vfs.Datum{Kind: vfs.FileData, Node: node}
			a, b := m.Holders(d, now), m2.Holders(d, now)
			if len(a) != len(b) {
				t.Fatalf("seed %d: holders mismatch on %v: %v vs %v", seed, d, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d: holders mismatch on %v: %v vs %v", seed, d, a, b)
				}
			}
		}
	}
}
