package core

import (
	"testing"
	"time"

	"leases/internal/clock"
)

func TestInstalledSetBasics(t *testing.T) {
	s := NewInstalledSet(30 * time.Second)
	if s.Term() != 30*time.Second {
		t.Fatalf("Term = %v", s.Term())
	}
	s.Add(datumA)
	s.Add(datumA) // idempotent
	s.Add(datumB)
	if !s.Contains(datumA) || !s.Contains(datumB) || s.Contains(datumD) {
		t.Fatal("Contains wrong")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Remove(datumB)
	if s.Contains(datumB) || s.Len() != 1 {
		t.Fatal("Remove failed")
	}
}

func TestInstalledSetTermValidation(t *testing.T) {
	for _, term := range []time.Duration{0, -time.Second, Infinite} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewInstalledSet(%v) did not panic", term)
				}
			}()
			NewInstalledSet(term)
		}()
	}
}

func TestExtensionCoversAndSorts(t *testing.T) {
	s := NewInstalledSet(30 * time.Second)
	s.Add(datumD)
	s.Add(datumB)
	s.Add(datumA)
	now := clock.Epoch
	ext := s.Extension(now)
	if len(ext) != 3 || ext[0] != datumA || ext[1] != datumB || ext[2] != datumD {
		t.Fatalf("Extension = %v, want sorted", ext)
	}
	exp, ok := s.CoveredUntil(datumA)
	if !ok || !exp.Equal(now.Add(30*time.Second)) {
		t.Fatalf("CoveredUntil = %v %v", exp, ok)
	}
}

func TestDropExcludesFromExtensionAndReturnsDeadline(t *testing.T) {
	s := NewInstalledSet(30 * time.Second)
	s.Add(datumA)
	s.Add(datumB)
	now := clock.Epoch
	s.Extension(now)
	deadline := s.Drop(datumA)
	if !deadline.Equal(now.Add(30 * time.Second)) {
		t.Fatalf("Drop deadline = %v, want last cover expiry", deadline)
	}
	ext := s.Extension(now.Add(10 * time.Second))
	if len(ext) != 1 || ext[0] != datumB {
		t.Fatalf("Extension after drop = %v, want only datumB", ext)
	}
	// Still governed by the installed regime while dropped.
	if !s.Contains(datumA) {
		t.Fatal("dropped datum left the installed regime")
	}
	// Dropping again returns the same deadline.
	if d2 := s.Drop(datumA); !d2.Equal(deadline) {
		t.Fatalf("re-Drop deadline = %v, want %v", d2, deadline)
	}
}

func TestDropNeverExtendedHasZeroDeadline(t *testing.T) {
	s := NewInstalledSet(30 * time.Second)
	s.Add(datumA)
	if d := s.Drop(datumA); !d.IsZero() {
		t.Fatalf("Drop before any extension = %v, want zero", d)
	}
}

func TestDropNotInstalledHasZeroDeadline(t *testing.T) {
	s := NewInstalledSet(30 * time.Second)
	if d := s.Drop(datumA); !d.IsZero() {
		t.Fatalf("Drop of non-installed = %v", d)
	}
}

func TestReadmitRejoinsExtension(t *testing.T) {
	s := NewInstalledSet(30 * time.Second)
	s.Add(datumA)
	s.Extension(clock.Epoch)
	s.Drop(datumA)
	s.Readmit(datumA)
	ext := s.Extension(clock.Epoch.Add(time.Minute))
	if len(ext) != 1 || ext[0] != datumA {
		t.Fatalf("Extension after Readmit = %v", ext)
	}
	s.Readmit(datumB) // not dropped: no-op
	if s.Contains(datumB) {
		t.Fatal("Readmit invented a datum")
	}
}

// Manager-level integration of the installed-file regime.

func TestManagerInstalledGrantUsesRemainingCover(t *testing.T) {
	inst := NewInstalledSet(30 * time.Second)
	inst.Add(datumA)
	m := NewManager(FixedTerm(10*time.Second), WithInstalled(inst))
	now := clock.Epoch

	// Before any extension: refused (not yet covered).
	if g := m.Grant("c1", datumA, now); g.Leased {
		t.Fatalf("grant before first extension: %+v", g)
	}

	inst.Extension(now)
	g := m.Grant("c1", datumA, now.Add(10*time.Second))
	if !g.Leased || g.Term != 20*time.Second {
		t.Fatalf("installed grant = %+v, want remaining cover 20s", g)
	}
	// Crucially: no per-client record.
	if m.LeaseCount() != 0 {
		t.Fatalf("installed grant recorded per-client state: %d records", m.LeaseCount())
	}
}

func TestManagerInstalledWriteWaitsOutMulticastCover(t *testing.T) {
	inst := NewInstalledSet(30 * time.Second)
	inst.Add(datumA)
	m := NewManager(FixedTerm(10*time.Second), WithInstalled(inst))
	now := clock.Epoch
	inst.Extension(now)

	disp := m.SubmitWrite("w", datumA, now.Add(5*time.Second))
	if disp.Ready {
		t.Fatal("installed write applied under live multicast cover")
	}
	if len(disp.NeedApproval) != 0 {
		t.Fatalf("installed write asked for approvals: %v — the point is to avoid response implosion", disp.NeedApproval)
	}
	if !disp.Deadline.Equal(now.Add(30 * time.Second)) {
		t.Fatalf("Deadline = %v, want multicast cover expiry", disp.Deadline)
	}
	if got := m.ReadyWrites(now.Add(29 * time.Second)); len(got) != 0 {
		t.Fatal("write ready before cover expiry")
	}
	got := m.ReadyWrites(now.Add(30*time.Second + time.Millisecond))
	if len(got) != 1 || got[0] != disp.WriteID {
		t.Fatalf("ReadyWrites = %v", got)
	}
	m.WriteApplied(disp.WriteID, now.Add(31*time.Second))

	// After the write, the datum is no longer in the extension until
	// readmitted, so further extensions exclude it and a second write is
	// immediate.
	inst.Extension(now.Add(31 * time.Second))
	d2 := m.SubmitWrite("w", datumA, now.Add(32*time.Second))
	if !d2.Ready {
		t.Fatalf("second write while dropped = %+v, want immediate", d2)
	}
}

func TestManagerInstalledWriteNeverCoveredIsImmediate(t *testing.T) {
	inst := NewInstalledSet(30 * time.Second)
	inst.Add(datumA)
	m := NewManager(FixedTerm(10*time.Second), WithInstalled(inst))
	disp := m.SubmitWrite("w", datumA, clock.Epoch)
	if !disp.Ready {
		t.Fatalf("write to never-extended installed file deferred: %+v", disp)
	}
}

func TestManagerInstalledNextDeadline(t *testing.T) {
	inst := NewInstalledSet(30 * time.Second)
	inst.Add(datumA)
	m := NewManager(FixedTerm(10*time.Second), WithInstalled(inst))
	now := clock.Epoch
	inst.Extension(now)
	m.SubmitWrite("w", datumA, now.Add(time.Second))
	dl, ok := m.NextDeadline()
	if !ok || !dl.Equal(now.Add(30*time.Second)) {
		t.Fatalf("NextDeadline = %v %v", dl, ok)
	}
}

func TestManagerNonInstalledUnaffectedByInstalledSet(t *testing.T) {
	inst := NewInstalledSet(30 * time.Second)
	inst.Add(datumA)
	m := NewManager(FixedTerm(10*time.Second), WithInstalled(inst))
	now := clock.Epoch
	if g := m.Grant("c1", datumB, now); !g.Leased || g.Term != 10*time.Second {
		t.Fatalf("non-installed grant = %+v", g)
	}
	if m.LeaseCount() != 1 {
		t.Fatalf("LeaseCount = %d", m.LeaseCount())
	}
}
