package core

import (
	"sort"
	"time"

	"leases/internal/vfs"
)

// InstalledSet implements the §4 optimization for installed files —
// "commands, header files and libraries which are part of the standard
// system support", widely shared, heavily read, and only infrequently
// written. Instead of per-client leases, the server periodically
// multicasts a single extension covering every installed datum to all
// clients; each client that receives it holds a lease for the announced
// term. The server keeps no per-client record at all.
//
// To write an installed datum, the server "simply eliminates the lease
// from the multicast extension": the datum is dropped from subsequent
// extensions and the write proceeds once the last multicast-granted
// lease has expired. This avoids contacting a large number of clients
// and the resulting implosion of responses.
type InstalledSet struct {
	term time.Duration
	// covered maps each installed datum to the expiry of the most recent
	// multicast extension that covered it (zero until first extension).
	covered map[vfs.Datum]time.Time
	// dropped maps data eliminated from the extension to the expiry of
	// the last extension that covered them; a pending write may apply
	// after that instant. Entries are re-admitted by Readmit.
	dropped map[vfs.Datum]time.Time
}

// NewInstalledSet returns an empty set whose multicast extensions grant
// the given term. The term must be positive and finite: an infinite
// multicast lease could never be written out from under.
func NewInstalledSet(term time.Duration) *InstalledSet {
	if term <= 0 || term >= Infinite {
		panic("core: installed-file term must be positive and finite")
	}
	return &InstalledSet{
		term:    term,
		covered: make(map[vfs.Datum]time.Time),
		dropped: make(map[vfs.Datum]time.Time),
	}
}

// Term reports the term granted by each multicast extension.
func (s *InstalledSet) Term() time.Duration { return s.term }

// Add marks a datum as installed. Adding an already-installed datum is a
// no-op; adding a previously dropped datum re-admits it.
func (s *InstalledSet) Add(d vfs.Datum) {
	if _, ok := s.covered[d]; ok {
		return
	}
	delete(s.dropped, d)
	s.covered[d] = time.Time{}
}

// Remove takes a datum out of the installed regime entirely (it reverts
// to per-client leasing). Any outstanding multicast cover is forgotten;
// callers that need write safety should use Drop and wait instead.
func (s *InstalledSet) Remove(d vfs.Datum) {
	delete(s.covered, d)
	delete(s.dropped, d)
}

// Contains reports whether d is governed by the installed regime — either
// still covered by extensions or dropped pending a write.
func (s *InstalledSet) Contains(d vfs.Datum) bool {
	if _, ok := s.covered[d]; ok {
		return true
	}
	_, ok := s.dropped[d]
	return ok
}

// Extension returns the data to include in the next multicast extension,
// sorted, and records that each will be covered until now + term. Data
// dropped for writing are excluded.
func (s *InstalledSet) Extension(now time.Time) []vfs.Datum {
	out := make([]vfs.Datum, 0, len(s.covered))
	expiry := now.Add(s.term)
	for d := range s.covered {
		s.covered[d] = expiry
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Drop eliminates d from future extensions because a write is waiting.
// It returns the instant after which no client can still hold a
// multicast-granted lease on d (zero if no extension ever covered it).
// Dropping a non-installed or already-dropped datum returns its existing
// deadline.
func (s *InstalledSet) Drop(d vfs.Datum) time.Time {
	if exp, ok := s.dropped[d]; ok {
		return exp
	}
	exp, ok := s.covered[d]
	if !ok {
		return time.Time{}
	}
	delete(s.covered, d)
	s.dropped[d] = exp
	return exp
}

// Readmit returns a dropped datum to the extension set, typically after
// the deferred write has been applied: the new version is again widely
// read and rarely written.
func (s *InstalledSet) Readmit(d vfs.Datum) {
	if _, ok := s.dropped[d]; !ok {
		return
	}
	delete(s.dropped, d)
	s.covered[d] = time.Time{}
}

// CoveredUntil reports the expiry of the latest extension covering d and
// whether d is currently covered.
func (s *InstalledSet) CoveredUntil(d vfs.Datum) (time.Time, bool) {
	exp, ok := s.covered[d]
	return exp, ok
}

// Len reports how many data are installed (covered or dropped).
func (s *InstalledSet) Len() int { return len(s.covered) + len(s.dropped) }
