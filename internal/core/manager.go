package core

import (
	"fmt"
	"sort"
	"time"

	"leases/internal/vfs"
)

// WriteID identifies a pending write at the server.
type WriteID uint64

// Grant is the server's answer to a read or extension request for one
// datum: the term t_s granted (zero if leasing is refused, e.g. while a
// write is waiting) and whether the caller now holds a lease.
type Grant struct {
	Datum vfs.Datum
	Term  time.Duration
	// Leased reports whether a lease was recorded. A zero Term with
	// Leased false means the datum may be used once but not cached.
	Leased bool
}

// WriteDisposition is the server's answer to a write request.
type WriteDisposition struct {
	ID vfs.Datum // echo of the datum, for logging
	// WriteID identifies the queued write when Ready is false.
	WriteID WriteID
	// Ready reports that no conflicting leases exist: the driver applies
	// the write to storage immediately.
	Ready bool
	// NeedApproval lists the leaseholders whose approval must be
	// obtained, in sorted order. The writer itself is never listed: its
	// request carries implicit approval (§3.1), saving one message.
	NeedApproval []ClientID
	// Deadline is the latest expiry among conflicting leases; if
	// approvals do not arrive, the write proceeds at Deadline. The zero
	// Deadline (only possible with infinite-term leases) means the write
	// waits for approvals alone.
	Deadline time.Time
}

// pendingWrite is a queued write awaiting approvals or expiry.
type pendingWrite struct {
	id        WriteID
	writer    ClientID
	datum     vfs.Datum
	waitingOn map[ClientID]time.Time // holder → lease expiry at enqueue
	deadline  time.Time
	// blockedUntil, when non-zero, forbids applying the write before the
	// given instant regardless of approvals: the multicast-lease expiry
	// for an installed-file write, or the recovery window after a
	// restart. No approval can release it because the server holds no
	// per-client record for those leases.
	blockedUntil time.Time
	queuedAt     time.Time
	// countedExpiry dedupes the ExpiryReleases metric across repeated
	// ReadyWrites calls.
	countedExpiry bool
	// scheduled is the instant of this write's live entry in the
	// deadline heap; zero when the write has no timed release (it is in
	// the due set, or only approvals can release it). Maintained by
	// Manager.schedule; see deadlineHeap for the laziness contract.
	scheduled time.Time
}

// datumState is the server's soft state for one datum.
type datumState struct {
	leases  map[ClientID]time.Time // holder → expiry (zero = never)
	pending []*pendingWrite        // FIFO
}

func (ds *datumState) empty() bool {
	return len(ds.leases) == 0 && len(ds.pending) == 0
}

// ManagerMetrics counts protocol events at the server.
type ManagerMetrics struct {
	Grants           int64 // leases granted or extended
	Refusals         int64 // grants refused (write pending or zero policy)
	WritesImmediate  int64 // writes applied with no conflicting leases
	WritesDeferred   int64 // writes queued behind leases
	ApprovalsApplied int64 // approvals received and recorded
	ExpiryReleases   int64 // writes unblocked by lease expiry
	Releases         int64 // leases relinquished voluntarily
}

// Manager is the server side of the lease protocol. It tracks which
// client holds a lease over which datum and defers conflicting writes
// until every leaseholder approves or its lease expires (§2). Manager is
// not safe for concurrent use; drivers serialize access (the simulator is
// single-threaded, the TCP server wraps it in a mutex).
//
// Manager holds soft state only. The storage substrate (internal/vfs) is
// not referenced: drivers apply writes to storage when the Manager says
// they may proceed.
type Manager struct {
	policy TermPolicy
	data   map[vfs.Datum]*datumState
	writes map[WriteID]*pendingWrite
	nextID WriteID
	// idStride spaces consecutive WriteIDs; 1 for a standalone manager.
	// A ShardedManager gives shard i the IDs i+1, i+1+N, i+1+2N, … so
	// IDs stay unique across shards and route back by (id-1) mod N.
	idStride WriteID
	// dl schedules pending writes' earliest release-by-time instants;
	// due holds writes whose deadlines have passed (or that never had
	// timed blockers) and that await application. Together they replace
	// the seed's O(all-data) scans in ReadyWrites and NextDeadline.
	dl  deadlineHeap
	due map[WriteID]struct{}
	// maxTerm is the longest term ever granted; a recovering server
	// delays writes for this long (§2).
	maxTerm time.Duration
	// recoverUntil blocks all writes until the given instant after a
	// restart, honouring leases granted before the crash.
	recoverUntil time.Time
	metrics      ManagerMetrics
	installed    *InstalledSet
}

// ManagerOption configures a Manager.
type ManagerOption func(*Manager)

// WithRecoveryWindow makes the manager honour unknown pre-crash leases by
// refusing to apply any write before the given instant. Use after a
// restart, passing now + the persisted maximum granted term: "it delays
// writes to all files for that period" (§2).
func WithRecoveryWindow(until time.Time) ManagerOption {
	return func(m *Manager) { m.recoverUntil = until }
}

// WithInstalled attaches an installed-file set (§4) to the manager.
func WithInstalled(set *InstalledSet) ManagerOption {
	return func(m *Manager) { m.installed = set }
}

// NewManager returns a manager granting terms from policy.
func NewManager(policy TermPolicy, opts ...ManagerOption) *Manager {
	if policy == nil {
		panic("core: nil TermPolicy")
	}
	m := &Manager{
		policy:   policy,
		data:     make(map[vfs.Datum]*datumState),
		writes:   make(map[WriteID]*pendingWrite),
		nextID:   1,
		idStride: 1,
		due:      make(map[WriteID]struct{}),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Metrics returns a copy of the event counters.
func (m *Manager) Metrics() ManagerMetrics { return m.metrics }

// MaxTermGranted reports the longest lease term the manager has ever
// granted. A server persists (only) this value so that after a crash it
// can delay writes long enough to honour every outstanding lease.
func (m *Manager) MaxTermGranted() time.Duration { return m.maxTerm }

// Recovering reports whether the manager is still inside a post-restart
// recovery window at now.
func (m *Manager) Recovering(now time.Time) bool { return now.Before(m.recoverUntil) }

func (m *Manager) state(d vfs.Datum) *datumState {
	ds, ok := m.data[d]
	if !ok {
		ds = &datumState{leases: make(map[ClientID]time.Time)}
		m.data[d] = ds
	}
	return ds
}

// Grant records (or extends) a lease on d for client and returns the
// term granted. While a write is waiting on d, no new lease is granted —
// the anti-starvation rule of §2 footnote 1 — and the datum may be read
// once without caching. Installed data are never granted per-client
// leases; clients cover them through the multicast extension instead.
func (m *Manager) Grant(client ClientID, d vfs.Datum, now time.Time) Grant {
	if m.installed != nil && m.installed.Contains(d) {
		// Per-client record elimination (§4): no per-client lease is
		// recorded for an installed datum. A fetch is granted the
		// remainder of the current multicast cover — the client is
		// covered exactly as if it had heard the last extension — and
		// future extensions arrive by multicast.
		if exp, ok := m.installed.CoveredUntil(d); ok && !Expired(exp, now) && !exp.IsZero() {
			m.metrics.Grants++
			return Grant{Datum: d, Term: exp.Sub(now), Leased: true}
		}
		m.metrics.Refusals++
		return Grant{Datum: d}
	}
	ds := m.state(d)
	if len(ds.pending) > 0 {
		m.metrics.Refusals++
		m.compactIfEmpty(d, ds)
		return Grant{Datum: d}
	}
	term := m.policy.Term(d, client, now)
	if term <= 0 {
		m.metrics.Refusals++
		m.compactIfEmpty(d, ds)
		return Grant{Datum: d}
	}
	expiry := ExpiryAt(now, term)
	// An extension never shortens an existing lease.
	if old, ok := ds.leases[client]; ok {
		expiry = maxExpiry(old, expiry)
	}
	ds.leases[client] = expiry
	if term > m.maxTerm {
		m.maxTerm = term
	}
	m.metrics.Grants++
	return Grant{Datum: d, Term: term, Leased: true}
}

// GrantBatch grants leases on several data at once; the client batches
// its extension requests "so that a single request covers many files"
// (§3.1).
func (m *Manager) GrantBatch(client ClientID, data []vfs.Datum, now time.Time) []Grant {
	out := make([]Grant, len(data))
	for i, d := range data {
		out[i] = m.Grant(client, d, now)
	}
	return out
}

// Release relinquishes client's leases on the given data. Releasing a
// lease the client does not hold is a no-op.
func (m *Manager) Release(client ClientID, data []vfs.Datum, now time.Time) {
	for _, d := range data {
		ds, ok := m.data[d]
		if !ok {
			continue
		}
		if _, held := ds.leases[client]; held {
			delete(ds.leases, client)
			m.metrics.Releases++
			m.promote(d, ds, now)
		}
		m.compactIfEmpty(d, ds)
	}
}

// holders returns the clients other than writer with unexpired leases.
func (ds *datumState) holders(writer ClientID, now time.Time) map[ClientID]time.Time {
	out := make(map[ClientID]time.Time)
	for c, exp := range ds.leases {
		if c == writer {
			continue
		}
		if !Expired(exp, now) {
			out[c] = exp
		}
	}
	return out
}

// SubmitWrite asks to write d on behalf of writer. If no other client
// holds an unexpired lease, the write may be applied immediately
// (Ready=true). Otherwise it is queued and the disposition lists the
// leaseholders to ask for approval plus the expiry deadline after which
// the write proceeds regardless. The writer's own lease is implicit
// approval and is retained: a write-through cache holds the new contents.
func (m *Manager) SubmitWrite(writer ClientID, d vfs.Datum, now time.Time) WriteDisposition {
	ds := m.state(d)

	// Expired leases confer no rights; drop them eagerly so they do not
	// generate approval traffic.
	for c, exp := range ds.leases {
		if Expired(exp, now) {
			delete(ds.leases, c)
		}
	}

	disp := WriteDisposition{ID: d}

	if m.installed != nil && m.installed.Contains(d) {
		// §4: drop the datum from the multicast extension; the write
		// proceeds when the last multicast-granted lease has expired.
		// No approval requests are sent and no per-client state exists.
		blocked := maxDeadline(m.installed.Drop(d), m.recoverUntil)
		if !blocked.After(now) && len(ds.pending) == 0 {
			disp.Ready = true
			m.metrics.WritesImmediate++
			m.compactIfEmpty(d, ds)
			return disp
		}
		pw := &pendingWrite{
			id:           m.allocWrite(),
			writer:       writer,
			datum:        d,
			deadline:     blocked,
			blockedUntil: blocked,
			queuedAt:     now,
		}
		m.enqueue(pw, ds, now)
		disp.WriteID = pw.id
		disp.Deadline = blocked
		m.metrics.WritesDeferred++
		return disp
	}

	holders := ds.holders(writer, now)
	if len(holders) == 0 && len(ds.pending) == 0 && !m.Recovering(now) {
		disp.Ready = true
		m.metrics.WritesImmediate++
		m.compactIfEmpty(d, ds)
		return disp
	}

	pw := &pendingWrite{
		id:        m.allocWrite(),
		writer:    writer,
		datum:     d,
		waitingOn: holders,
		queuedAt:  now,
	}
	// The deadline is the latest blocker expiry; any infinite lease
	// (zero expiry) means there is no deadline — only approvals release.
	infinite := false
	for _, exp := range holders {
		if exp.IsZero() {
			infinite = true
			break
		}
		pw.deadline = maxDeadline(pw.deadline, exp)
	}
	if infinite {
		pw.deadline = time.Time{}
	}
	if m.Recovering(now) {
		pw.blockedUntil = m.recoverUntil
		if !infinite {
			pw.deadline = maxDeadline(pw.deadline, m.recoverUntil)
		}
	}
	m.enqueue(pw, ds, now)

	disp.WriteID = pw.id
	disp.Deadline = pw.deadline
	disp.NeedApproval = sortedClients(holders)
	m.metrics.WritesDeferred++
	return disp
}

// SubmitWriteHeld is SubmitWrite for concurrent drivers that cannot
// apply the write atomically with the submission: it always enqueues,
// even when no conflicting lease exists, so that the pending entry keeps
// new leases from being granted between clearance and application. The
// returned disposition always has Ready == false; when the write has no
// blockers, ReadyWrites reports it releasable immediately. The driver
// must eventually call WriteApplied or CancelWrite.
func (m *Manager) SubmitWriteHeld(writer ClientID, d vfs.Datum, now time.Time) WriteDisposition {
	ds := m.state(d)
	for c, exp := range ds.leases {
		if Expired(exp, now) {
			delete(ds.leases, c)
		}
	}
	disp := WriteDisposition{ID: d}
	var blocked time.Time
	if m.installed != nil && m.installed.Contains(d) {
		blocked = m.installed.Drop(d)
	}
	if m.Recovering(now) {
		blocked = maxDeadline(blocked, m.recoverUntil)
	}
	holders := ds.holders(writer, now)
	pw := &pendingWrite{
		id:           m.allocWrite(),
		writer:       writer,
		datum:        d,
		waitingOn:    holders,
		blockedUntil: blocked,
		queuedAt:     now,
	}
	infinite := false
	for _, exp := range holders {
		if exp.IsZero() {
			infinite = true
			break
		}
		pw.deadline = maxDeadline(pw.deadline, exp)
	}
	if infinite {
		pw.deadline = time.Time{}
	} else {
		pw.deadline = maxDeadline(pw.deadline, blocked)
	}
	m.enqueue(pw, ds, now)
	disp.WriteID = pw.id
	disp.Deadline = pw.deadline
	disp.NeedApproval = sortedClients(holders)
	if len(holders) == 0 && blocked.IsZero() && len(ds.pending) == 1 {
		m.metrics.WritesImmediate++
	} else {
		m.metrics.WritesDeferred++
	}
	return disp
}

// maxDeadline is maxExpiry for deadlines, except that a zero deadline
// means "no constraint" rather than "never", so the non-zero one wins.
func maxDeadline(a, b time.Time) time.Time {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	if a.After(b) {
		return a
	}
	return b
}

func sortedClients(set map[ClientID]time.Time) []ClientID {
	out := make([]ClientID, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *Manager) allocWrite() WriteID {
	id := m.nextID
	m.nextID += m.idStride
	return id
}

func (m *Manager) enqueue(pw *pendingWrite, ds *datumState, now time.Time) {
	ds.pending = append(ds.pending, pw)
	m.writes[pw.id] = pw
	if ds.pending[0] == pw {
		// Only the queue head is schedulable; a write behind another is
		// scheduled by promote when it reaches the head.
		m.schedule(pw, now)
	}
}

// schedule (re)computes pw's earliest release-by-time instant and files
// it: a future instant goes to the deadline heap, a passed or absent one
// puts the write in the due set (it may be applied as soon as a driver
// asks), and an infinite blocker leaves it unfiled — only an approval
// can release it, and that approval reschedules. Callers must only pass
// queue-head writes. A reschedule changes scheduled, so the write's
// older heap entries turn stale (normally deadlines only shrink — leases
// cannot be extended while a write is pending — but Restore may lengthen
// a blocking lease, and both directions are handled).
func (m *Manager) schedule(pw *pendingWrite, now time.Time) {
	var worst time.Time
	for _, exp := range pw.waitingOn {
		if exp.IsZero() {
			// An infinite lease blocks until approved: no timer helps.
			pw.scheduled = time.Time{}
			delete(m.due, pw.id)
			return
		}
		worst = maxDeadline(worst, exp)
	}
	worst = maxDeadline(worst, pw.blockedUntil)
	if m.Recovering(now) {
		worst = maxDeadline(worst, m.recoverUntil)
	}
	if worst.IsZero() || !worst.After(now) {
		pw.scheduled = time.Time{}
		m.due[pw.id] = struct{}{}
		return
	}
	if worst.Equal(pw.scheduled) {
		return
	}
	pw.scheduled = worst
	delete(m.due, pw.id)
	m.dl.push(deadlineEntry{at: worst, id: pw.id})
}

// liveEntry reports whether a heap entry is still authoritative for its
// write: the write is pending and the entry carries its current
// scheduled instant. Stale entries (superseded or applied) are dropped
// by the callers' pop loops.
func (m *Manager) liveEntry(e deadlineEntry) (*pendingWrite, bool) {
	pw, ok := m.writes[e.id]
	if !ok || !e.at.Equal(pw.scheduled) {
		return nil, false
	}
	return pw, true
}

// Approve records that client approves the identified write, having
// invalidated its cached copy. The client's lease on the datum is
// dropped (its copy is gone). It reports whether the write is now ready
// to apply. Approving an unknown or already-ready write is a no-op
// returning false; drivers may see duplicate approvals after retransmits.
func (m *Manager) Approve(client ClientID, id WriteID, now time.Time) bool {
	pw, ok := m.writes[id]
	if !ok {
		return false
	}
	if _, waiting := pw.waitingOn[client]; !waiting {
		return false
	}
	delete(pw.waitingOn, client)
	m.metrics.ApprovalsApplied++
	if ds, ok := m.data[pw.datum]; ok {
		delete(ds.leases, client)
		if len(ds.pending) > 0 && ds.pending[0] == pw {
			// The approval may have shrunk the head write's release
			// deadline (or removed its last timed blocker).
			m.schedule(pw, now)
		}
	}
	return m.writeReady(pw, now)
}

// writeReady reports whether pw may be applied at now: it is at the head
// of its datum's queue, any blocking window (installed-file drop or
// recovery) has passed, and every remaining blocker's lease has expired.
func (m *Manager) writeReady(pw *pendingWrite, now time.Time) bool {
	ds, ok := m.data[pw.datum]
	if !ok || len(ds.pending) == 0 || ds.pending[0] != pw {
		return false
	}
	if m.Recovering(now) {
		return false
	}
	if !pw.blockedUntil.IsZero() && now.Before(pw.blockedUntil) {
		return false
	}
	for _, exp := range pw.waitingOn {
		if !Expired(exp, now) {
			return false
		}
	}
	return true
}

// ReadyWrites returns, sorted by ID, the writes that may be applied at
// now — those whose blocking leases have all expired or been approved,
// including writes released by the passage of an installed-file drop
// deadline or the recovery window. Drivers call this when a deadline
// timer fires. Each returned write is still pending; the driver applies
// it to storage and then calls WriteApplied.
func (m *Manager) ReadyWrites(now time.Time) []WriteID {
	// Move every write whose deadline has passed from the heap into the
	// due set, dropping stale entries along the way.
	for len(m.dl) > 0 {
		pw, live := m.liveEntry(m.dl[0])
		if !live {
			m.dl.pop()
			continue
		}
		if m.dl[0].at.After(now) {
			break
		}
		m.dl.pop()
		pw.scheduled = time.Time{}
		m.due[pw.id] = struct{}{}
	}
	out := make([]WriteID, 0, len(m.due))
	for id := range m.due {
		pw, ok := m.writes[id]
		if !ok {
			delete(m.due, id)
			continue
		}
		// Not ready despite a passed deadline happens only at the exact
		// expiry instant (a lease is valid through it); keep the entry,
		// a later call re-checks.
		if !m.writeReady(pw, now) {
			continue
		}
		if len(pw.waitingOn) > 0 && !pw.countedExpiry {
			pw.countedExpiry = true
			m.metrics.ExpiryReleases++
		}
		out = append(out, id)
	}
	sortWriteIDs(out)
	return out
}

func sortWriteIDs(ids []WriteID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// NextDeadline reports the earliest instant at which some pending write
// may become ready by expiry, so drivers can arm one timer. The second
// result is false when nothing is pending or every blocker holds an
// infinite lease (only approvals can release those writes).
func (m *Manager) NextDeadline() (time.Time, bool) {
	for len(m.dl) > 0 {
		if _, live := m.liveEntry(m.dl[0]); !live {
			m.dl.pop()
			continue
		}
		return m.dl[0].at, true
	}
	return time.Time{}, false
}

// WriteApplied tells the manager the driver has applied the write to
// storage. The write is dequeued; if another write is queued behind it,
// the driver should immediately consult its disposition via Pending. It
// panics if the write is not at the head of its queue — applying writes
// out of order would reorder conflicting updates.
func (m *Manager) WriteApplied(id WriteID, now time.Time) {
	pw, ok := m.writes[id]
	if !ok {
		panic(fmt.Sprintf("core: WriteApplied(%d): unknown write", id))
	}
	ds := m.data[pw.datum]
	if ds == nil || len(ds.pending) == 0 || ds.pending[0] != pw {
		panic(fmt.Sprintf("core: WriteApplied(%d): write not at queue head", id))
	}
	ds.pending = ds.pending[1:]
	delete(m.writes, id)
	delete(m.due, id)
	m.promote(pw.datum, ds, now)
	m.compactIfEmpty(pw.datum, ds)
}

// CancelWrite abandons a queued write (e.g. the writer disconnected).
func (m *Manager) CancelWrite(id WriteID, now time.Time) {
	pw, ok := m.writes[id]
	if !ok {
		return
	}
	ds := m.data[pw.datum]
	for i, q := range ds.pending {
		if q == pw {
			ds.pending = append(ds.pending[:i], ds.pending[i+1:]...)
			break
		}
	}
	delete(m.writes, id)
	delete(m.due, id)
	m.promote(pw.datum, ds, now)
	m.compactIfEmpty(pw.datum, ds)
}

// promote refreshes the head pending write's blocker set after the queue
// changes: leases approved or expired while it waited behind another
// write no longer block it. The head is then (re)scheduled on the
// deadline heap, since a write that just reached the head has never been
// scheduled and a shrunk blocker set shrinks the deadline.
func (m *Manager) promote(d vfs.Datum, ds *datumState, now time.Time) {
	if len(ds.pending) == 0 {
		return
	}
	head := ds.pending[0]
	for c, exp := range head.waitingOn {
		live, held := ds.leases[c]
		if !held || Expired(live, now) {
			delete(head.waitingOn, c)
			continue
		}
		head.waitingOn[c] = live
		_ = exp
	}
	m.schedule(head, now)
	_ = d
}

// PendingWrite describes a queued write for drivers and tests.
type PendingWrite struct {
	WriteID   WriteID
	Writer    ClientID
	Datum     vfs.Datum
	WaitingOn []ClientID
	Deadline  time.Time
	QueuedAt  time.Time
}

// Pending returns the queued writes for a datum in application order.
func (m *Manager) Pending(d vfs.Datum) []PendingWrite {
	ds, ok := m.data[d]
	if !ok {
		return nil
	}
	out := make([]PendingWrite, 0, len(ds.pending))
	for _, pw := range ds.pending {
		out = append(out, PendingWrite{
			WriteID:   pw.id,
			Writer:    pw.writer,
			Datum:     pw.datum,
			WaitingOn: sortedClients(pw.waitingOn),
			Deadline:  pw.deadline,
			QueuedAt:  pw.queuedAt,
		})
	}
	return out
}

// Holders returns the clients holding unexpired leases on d, sorted.
func (m *Manager) Holders(d vfs.Datum, now time.Time) []ClientID {
	ds, ok := m.data[d]
	if !ok {
		return nil
	}
	live := make(map[ClientID]time.Time)
	for c, exp := range ds.leases {
		if !Expired(exp, now) {
			live[c] = exp
		}
	}
	return sortedClients(live)
}

// HoldsLease reports whether client holds an unexpired lease on d.
func (m *Manager) HoldsLease(client ClientID, d vfs.Datum, now time.Time) bool {
	ds, ok := m.data[d]
	if !ok {
		return false
	}
	exp, held := ds.leases[client]
	return held && !Expired(exp, now)
}

// Compact discards expired lease records and empty datum states: "short
// lease terms reduce the storage requirements at the server, since the
// record of expired leases could be reclaimed" (§2).
func (m *Manager) Compact(now time.Time) {
	for d, ds := range m.data {
		for c, exp := range ds.leases {
			if Expired(exp, now) {
				delete(ds.leases, c)
			}
		}
		m.promote(d, ds, now)
		m.compactIfEmpty(d, ds)
	}
}

func (m *Manager) compactIfEmpty(d vfs.Datum, ds *datumState) {
	if ds.empty() {
		delete(m.data, d)
	}
}

// LeaseCount reports the number of lease records currently held,
// including expired records not yet compacted.
func (m *Manager) LeaseCount() int {
	n := 0
	for _, ds := range m.data {
		n += len(ds.leases)
	}
	return n
}

// LeaseSnapshot is one lease record in a persistent snapshot — the
// "more detailed record of leases on persistent storage" alternative to
// the max-term recovery rule (§2).
type LeaseSnapshot struct {
	Client ClientID
	Datum  vfs.Datum
	Expiry time.Time
}

// Snapshot returns every live lease record, sorted by datum then client,
// for persisting.
func (m *Manager) Snapshot(now time.Time) []LeaseSnapshot {
	var out []LeaseSnapshot
	for d, ds := range m.data {
		for c, exp := range ds.leases {
			if !Expired(exp, now) {
				out = append(out, LeaseSnapshot{Client: c, Datum: d, Expiry: exp})
			}
		}
	}
	sortSnapshots(out)
	return out
}

func sortSnapshots(out []LeaseSnapshot) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Datum != b.Datum {
			if a.Datum.Kind != b.Datum.Kind {
				return a.Datum.Kind < b.Datum.Kind
			}
			return a.Datum.Node < b.Datum.Node
		}
		return a.Client < b.Client
	})
}

// Restore reloads lease records from a snapshot taken before a crash.
// With a full snapshot the server need not delay writes for the maximum
// term: it knows exactly which leases to honour.
func (m *Manager) Restore(records []LeaseSnapshot, now time.Time) {
	for _, r := range records {
		if Expired(r.Expiry, now) {
			continue
		}
		ds := m.state(r.Datum)
		if old, ok := ds.leases[r.Client]; ok {
			ds.leases[r.Client] = maxExpiry(old, r.Expiry)
		} else {
			ds.leases[r.Client] = r.Expiry
		}
	}
}
