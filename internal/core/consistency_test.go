package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"leases/internal/clock"
	"leases/internal/vfs"
)

// consistencyHarness drives the Manager and a set of Holders through
// random operations, checking the paper's definition of consistency
// throughout: "the behavior is equivalent to there being only a single
// (uncached) copy of the data except for the performance benefit of the
// cache" (§1). Concretely: whenever a client's lease on a datum is
// valid, the version it cached equals the version at the server.
//
// Messages are delivered instantly (delays and losses are exercised by
// the tracesim tests); clocks are perfectly synchronized, so ε = 0.
type consistencyHarness struct {
	t       *testing.T
	rng     *rand.Rand
	clk     *clock.Sim
	mgr     *Manager
	data    []vfs.Datum
	clients []*harnessClient
	// storage is the authoritative version per datum.
	storage map[vfs.Datum]uint64
}

type harnessClient struct {
	id      ClientID
	holder  *Holder
	cached  map[vfs.Datum]uint64 // version this cache last fetched/wrote
	crashed bool
}

func newConsistencyHarness(t *testing.T, seed int64, term time.Duration, clients, data int) *consistencyHarness {
	h := &consistencyHarness{
		t:       t,
		rng:     rand.New(rand.NewSource(seed)),
		clk:     clock.NewSim(),
		mgr:     NewManager(FixedTerm(term)),
		storage: make(map[vfs.Datum]uint64),
	}
	for i := 0; i < data; i++ {
		d := vfs.Datum{Kind: vfs.FileData, Node: vfs.NodeID(i + 1)}
		h.data = append(h.data, d)
		h.storage[d] = 0
	}
	for i := 0; i < clients; i++ {
		h.clients = append(h.clients, &harnessClient{
			id:     ClientID(fmt.Sprintf("c%d", i)),
			holder: NewHolder(HolderConfig{}),
			cached: make(map[vfs.Datum]uint64),
		})
	}
	return h
}

func (h *consistencyHarness) now() time.Time { return h.clk.Now() }

// read performs a client read with the full protocol: use the cache under
// a valid lease, otherwise fetch from the server (which grants a lease).
func (h *consistencyHarness) read(c *harnessClient, d vfs.Datum) {
	if c.crashed {
		return
	}
	now := h.now()
	if c.holder.Valid(d, now) {
		// Cache hit under lease: this is where staleness would show.
		if c.cached[d] != h.storage[d] {
			h.t.Fatalf("STALE READ: client %s read %s version %d under a valid lease, server has %d (t=%v)",
				c.id, d, c.cached[d], h.storage[d], now.Sub(clock.Epoch))
		}
		return
	}
	// Miss: fetch + lease from the server (instant round trip).
	g := h.mgr.Grant(c.id, d, now)
	c.cached[d] = h.storage[d]
	if g.Leased {
		c.holder.ApplyGrant(d, h.storage[d], g.Term, now, now)
	} else {
		c.holder.Invalidate(d)
	}
}

// write performs a client write with the full protocol, including
// approval callbacks to live leaseholders and expiry waits for crashed
// ones.
func (h *consistencyHarness) write(c *harnessClient, d vfs.Datum) {
	if c.crashed {
		return
	}
	disp := h.mgr.SubmitWrite(c.id, d, h.now())
	if !disp.Ready {
		// Deliver approval callbacks to reachable holders.
		for _, holderID := range disp.NeedApproval {
			hc := h.client(holderID)
			if hc.crashed {
				continue
			}
			hc.holder.Invalidate(d)
			delete(hc.cached, d)
			h.mgr.Approve(hc.id, disp.WriteID, h.now())
		}
		// If still pending, wait out the deadline — exactly what the
		// server does when a leaseholder is unreachable (§2).
		ready := h.mgr.ReadyWrites(h.now())
		if !contains(ready, disp.WriteID) {
			if disp.Deadline.IsZero() {
				// An infinite lease held by a crashed client blocks the
				// write indefinitely — the failure mode the paper holds
				// against infinite terms (§2, §6). The writer gives up.
				h.mgr.CancelWrite(disp.WriteID, h.now())
				return
			}
			h.clk.AdvanceTo(disp.Deadline.Add(time.Nanosecond))
			ready = h.mgr.ReadyWrites(h.now())
			if !contains(ready, disp.WriteID) {
				h.t.Fatalf("write %d not ready after deadline %v", disp.WriteID, disp.Deadline)
			}
		}
		h.mgr.WriteApplied(disp.WriteID, h.now())
	}
	// Apply to storage; the writer's cache holds the new version.
	h.storage[d]++
	c.cached[d] = h.storage[d]
	if c.holder.Valid(d, h.now()) {
		c.holder.Update(d, h.storage[d])
	}
}

func (h *consistencyHarness) client(id ClientID) *harnessClient {
	for _, c := range h.clients {
		if c.id == id {
			return c
		}
	}
	h.t.Fatalf("unknown client %s", id)
	return nil
}

func contains(ids []WriteID, id WriteID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// checkAll asserts the consistency invariant for every client and datum.
func (h *consistencyHarness) checkAll() {
	now := h.now()
	for _, c := range h.clients {
		if c.crashed {
			continue
		}
		for _, d := range h.data {
			if _, _, held := c.holder.Peek(d); !held {
				continue
			}
			if c.holder.Valid(d, now) && c.cached[d] != h.storage[d] {
				h.t.Fatalf("INVARIANT VIOLATION: client %s holds valid lease on %s with version %d, server has %d",
					c.id, d, c.cached[d], h.storage[d])
			}
		}
	}
}

func (h *consistencyHarness) step() {
	c := h.clients[h.rng.Intn(len(h.clients))]
	d := h.data[h.rng.Intn(len(h.data))]
	switch r := h.rng.Float64(); {
	case r < 0.70:
		h.read(c, d)
	case r < 0.85:
		h.write(c, d)
	case r < 0.90:
		// Crash: the client loses everything; the server keeps its
		// lease records and must wait them out for writes.
		c.crashed = true
	case r < 0.95:
		// Restart with cold cache: pre-crash leases are gone at the
		// client; whatever the server still records is harmless (it
		// only delays writes).
		if c.crashed {
			c.crashed = false
			c.holder = NewHolder(HolderConfig{})
			c.cached = make(map[vfs.Datum]uint64)
		}
	default:
		h.clk.Advance(time.Duration(h.rng.Intn(5000)) * time.Millisecond)
	}
	h.checkAll()
}

func TestConsistencyInvariantUnderRandomOperations(t *testing.T) {
	for _, term := range []time.Duration{0, time.Second, 10 * time.Second, Infinite} {
		term := term
		t.Run(fmt.Sprintf("term=%v", term), func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				h := newConsistencyHarness(t, seed, term, 6, 4)
				for i := 0; i < 2000; i++ {
					h.step()
				}
			}
		})
	}
}

// With an infinite term and no crashes, a write must gather an approval
// from every holder — the Andrew-style callback regime — and afterwards
// every holder refetches. This checks the full invalidate-on-approve
// cycle end to end.
func TestInfiniteTermCallbackCycle(t *testing.T) {
	h := newConsistencyHarness(t, 99, Infinite, 5, 1)
	d := h.data[0]
	for _, c := range h.clients {
		h.read(c, d)
	}
	if got := len(h.mgr.Holders(d, h.now())); got != 5 {
		t.Fatalf("holders = %d, want 5", got)
	}
	writer := h.clients[0]
	h.write(writer, d)
	// All other holders were invalidated.
	for _, c := range h.clients[1:] {
		if c.holder.Valid(d, h.now()) {
			t.Fatalf("client %s still valid after write", c.id)
		}
	}
	// Writer kept its lease over the new version.
	if !writer.holder.Valid(d, h.now()) {
		t.Fatal("writer lost its lease")
	}
	for _, c := range h.clients {
		h.read(c, d)
		if c.cached[d] != h.storage[d] {
			t.Fatalf("client %s refetched stale version", c.id)
		}
	}
}

// A crashed client holding a finite lease delays a write by at most the
// remaining term — the §5 availability guarantee.
func TestCrashedClientDelaysWriteAtMostRemainingTerm(t *testing.T) {
	h := newConsistencyHarness(t, 7, 10*time.Second, 2, 1)
	d := h.data[0]
	reader, writer := h.clients[0], h.clients[1]
	h.read(reader, d)
	reader.crashed = true
	h.clk.Advance(4 * time.Second)
	start := h.now()
	h.write(writer, d)
	delay := h.now().Sub(start)
	if delay > 6*time.Second+time.Millisecond {
		t.Fatalf("write delayed %v, want ≤ remaining term 6s", delay)
	}
	if delay < 6*time.Second-time.Millisecond {
		t.Fatalf("write delayed only %v — lease expired early", delay)
	}
}
