package shard

import "testing"

// FuzzRingLookup drives Lookup with arbitrary paths and asserts the
// determinism contract: the owning group depends only on the path and
// the membership, never on the epoch stamp, and repeated lookups agree.
func FuzzRingLookup(f *testing.F) {
	f.Add("/f0")
	f.Add("/home/u3/mail/inbox")
	f.Add("")
	f.Add("/\x00\xff")
	f.Add("/usr/share/pkg7/data.bin")
	groups := testGroups(3)
	r1, err := New(1, groups, DefaultVnodes)
	if err != nil {
		f.Fatal(err)
	}
	r2, err := New(1<<40, groups, DefaultVnodes)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, path string) {
		g := r1.Lookup(path)
		if _, ok := r1.Group(g); !ok {
			t.Fatalf("Lookup(%q) = %d, not a member group", path, g)
		}
		if again := r1.Lookup(path); again != g {
			t.Fatalf("Lookup(%q) unstable: %d then %d", path, g, again)
		}
		if other := r2.Lookup(path); other != g {
			t.Fatalf("Lookup(%q) depends on epoch: %d vs %d", path, g, other)
		}
	})
}
