package shard

import (
	"fmt"

	"leases/internal/proto"
)

// Encode appends the ring snapshot to a frame payload: epoch, group
// count, then per group ID, weight and the replica address list. This
// is the TRingRep payload.
func Encode(e *proto.Enc, r *Ring) {
	e.U64(r.Epoch).U32(uint32(len(r.Groups))).U32(uint32(r.vnodes))
	for _, g := range r.Groups {
		e.U32(uint32(g.ID)).U32(uint32(g.Weight)).U32(uint32(len(g.Replicas)))
		for _, a := range g.Replicas {
			e.Str(a)
		}
	}
}

// Decode parses an Encode'd ring snapshot and rebuilds the ring.
func Decode(d *proto.Dec) (*Ring, error) {
	epoch := d.U64()
	ngroups := int(d.U32())
	vnodes := int(d.U32())
	if d.Err != nil || ngroups <= 0 || ngroups > 1<<16 {
		return nil, fmt.Errorf("shard: bad ring header (groups=%d err=%v)", ngroups, d.Err)
	}
	groups := make([]Group, 0, ngroups)
	for i := 0; i < ngroups; i++ {
		g := Group{ID: int(d.U32()), Weight: int(d.U32())}
		naddrs := int(d.U32())
		if d.Err != nil || naddrs < 0 || naddrs > 1<<12 {
			return nil, fmt.Errorf("shard: bad ring group %d", i)
		}
		for a := 0; a < naddrs; a++ {
			g.Replicas = append(g.Replicas, d.Str())
		}
		groups = append(groups, g)
	}
	if err := d.Err; err != nil {
		return nil, fmt.Errorf("shard: decoding ring: %w", err)
	}
	return New(epoch, groups, vnodes)
}
