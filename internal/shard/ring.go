// Package shard maps file paths to replica groups with a consistent-
// hash ring, the horizontal half of the availability-and-scale story:
// capacity grows with group count while each group keeps the PaxosLease
// replication of internal/replica. The ring is pure data — weighted
// virtual nodes placed by a deterministic hash — so every party
// (servers, clients, the model checker) derives identical ownership
// from an identical snapshot, and membership changes move only the
// minimal share of the keyspace.
//
// A ring snapshot is stamped with an epoch. Servers refuse cross-shard
// prepares from a different epoch, and NOT_OWNER redirects carry the
// server's epoch so a stale client knows to refetch before retrying —
// the sharded analogue of the replicated deployment's NOT_MASTER
// steering.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// DefaultVnodes is the virtual-node count per unit of group weight.
// 256 keeps the max/mean load ratio across groups within 1.25 (see the
// balance property test) while the ring stays a few tens of KB.
const DefaultVnodes = 256

// Group is one replica group on the ring.
type Group struct {
	// ID identifies the group; NOT_OWNER redirects and prepare fencing
	// speak group IDs, never addresses.
	ID int
	// Weight scales the group's share of the keyspace (default 1).
	Weight int
	// Replicas are the group's lease-server addresses in replica-ID
	// order, the same contract as client.Config.Replicas.
	Replicas []string
}

// point is one virtual node: a position on the 64-bit ring owned by a
// group.
type point struct {
	hash  uint64
	group int // index into Ring.Groups
}

// Ring is an immutable, epoch-stamped ownership snapshot.
type Ring struct {
	// Epoch orders snapshots; a larger epoch supersedes a smaller one.
	Epoch  uint64
	Groups []Group

	points []point
	vnodes int
	byID   map[int]int // group ID → Groups index
}

// New builds a ring from groups with vnodes virtual nodes per unit of
// weight (0 means DefaultVnodes). Construction is deterministic: equal
// (epoch, groups, vnodes) build byte-identical rings on every node,
// with no seed material beyond the group IDs themselves.
func New(epoch uint64, groups []Group, vnodes int) (*Ring, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one group")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{Epoch: epoch, vnodes: vnodes, byID: make(map[int]int, len(groups))}
	for _, g := range groups {
		if g.ID < 0 {
			return nil, fmt.Errorf("shard: negative group ID %d", g.ID)
		}
		if g.Weight == 0 {
			g.Weight = 1
		}
		if g.Weight < 0 {
			return nil, fmt.Errorf("shard: group %d has negative weight", g.ID)
		}
		if _, dup := r.byID[g.ID]; dup {
			return nil, fmt.Errorf("shard: duplicate group ID %d", g.ID)
		}
		r.byID[g.ID] = len(r.Groups)
		r.Groups = append(r.Groups, g)
	}
	for gi, g := range r.Groups {
		n := g.Weight * vnodes
		for v := 0; v < n; v++ {
			r.points = append(r.points, point{hash: vnodeHash(g.ID, v), group: gi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare) break on group ID so the sort —
		// and therefore every lookup — is total and deterministic.
		return r.Groups[a.group].ID < r.Groups[b.group].ID
	})
	return r, nil
}

// Vnodes reports the per-weight-unit virtual node count the ring was
// built with.
func (r *Ring) Vnodes() int { return r.vnodes }

// Lookup maps a file path to the ID of the group that owns it: the
// first virtual node at or clockwise of the path's hash.
func (r *Ring) Lookup(path string) int {
	h := keyHash(path)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.Groups[r.points[i].group].ID
}

// Group returns the group with the given ID.
func (r *Ring) Group(id int) (Group, bool) {
	i, ok := r.byID[id]
	if !ok {
		return Group{}, false
	}
	return r.Groups[i], true
}

// GroupIDs lists the member group IDs in ascending order.
func (r *Ring) GroupIDs() []int {
	out := make([]int, 0, len(r.Groups))
	for _, g := range r.Groups {
		out = append(out, g.ID)
	}
	sort.Ints(out)
	return out
}

// vnodeHash places virtual node v of group id on the ring. The layout
// depends only on (id, v): adding or removing a group leaves every
// other group's points exactly where they were, which is what makes
// membership changes minimally disruptive.
func vnodeHash(id, v int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "g%d#%d", id, v)
	return mix64(h.Sum64())
}

// keyHash hashes a file path onto the ring.
func keyHash(path string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(path))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer, scattering FNV's output so
// structured inputs (sequential vnode indexes, common path prefixes)
// spread uniformly over the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Format renders the ring as the flag/spec syntax Parse accepts:
//
//	epoch@id[*weight]=addr,addr;id[*weight]=addr,addr
func (r *Ring) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d@", r.Epoch)
	for i, g := range r.Groups {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d", g.ID)
		if g.Weight > 1 {
			fmt.Fprintf(&b, "*%d", g.Weight)
		}
		b.WriteByte('=')
		b.WriteString(strings.Join(g.Replicas, ","))
	}
	return b.String()
}

// Parse builds a ring from the spec syntax used by the -ring flags:
//
//	[epoch@]id[*weight]=addr[,addr...][;...]
//
// The epoch defaults to 1 and weights default to 1.
func Parse(spec string) (*Ring, error) {
	epoch := uint64(1)
	if at := strings.IndexByte(spec, '@'); at >= 0 {
		e, err := strconv.ParseUint(spec[:at], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("shard: bad ring epoch %q: %v", spec[:at], err)
		}
		epoch = e
		spec = spec[at+1:]
	}
	var groups []Group
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return nil, fmt.Errorf("shard: ring group %q has no '='", part)
		}
		head, tail := part[:eq], part[eq+1:]
		weight := 1
		if star := strings.IndexByte(head, '*'); star >= 0 {
			w, err := strconv.Atoi(head[star+1:])
			if err != nil {
				return nil, fmt.Errorf("shard: bad weight in %q: %v", part, err)
			}
			weight = w
			head = head[:star]
		}
		id, err := strconv.Atoi(head)
		if err != nil {
			return nil, fmt.Errorf("shard: bad group ID in %q: %v", part, err)
		}
		var addrs []string
		for _, a := range strings.Split(tail, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		groups = append(groups, Group{ID: id, Weight: weight, Replicas: addrs})
	}
	return New(epoch, groups, 0)
}
