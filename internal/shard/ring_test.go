package shard

import (
	"fmt"
	"testing"

	"leases/internal/proto"
)

func testGroups(n int) []Group {
	gs := make([]Group, 0, n)
	for i := 0; i < n; i++ {
		gs = append(gs, Group{ID: i, Replicas: []string{fmt.Sprintf("127.0.0.1:%d", 7000+i)}})
	}
	return gs
}

func synthPaths(n int) []string {
	// Mix of flat files, nested directories and shared prefixes — the
	// shapes a real namespace throws at the ring.
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			out = append(out, fmt.Sprintf("/f%d", i))
		case 1:
			out = append(out, fmt.Sprintf("/home/u%d/mail/inbox%d", i%17, i))
		default:
			out = append(out, fmt.Sprintf("/usr/share/pkg%d/data.bin", i))
		}
	}
	return out
}

// TestRingBalance is the ISSUE's balance bound: across 1k synthetic
// paths and ≥64 vnodes, the most loaded group carries at most 1.25× the
// mean.
func TestRingBalance(t *testing.T) {
	for _, ngroups := range []int{2, 3, 5, 8} {
		r, err := New(1, testGroups(ngroups), DefaultVnodes)
		if err != nil {
			t.Fatal(err)
		}
		paths := synthPaths(1000)
		load := map[int]int{}
		for _, p := range paths {
			load[r.Lookup(p)]++
		}
		mean := float64(len(paths)) / float64(ngroups)
		for id, n := range load {
			if ratio := float64(n) / mean; ratio > 1.25 {
				t.Errorf("groups=%d: group %d holds %d/%d keys (%.2f× mean, want ≤1.25)",
					ngroups, id, n, len(paths), ratio)
			}
		}
		if len(load) != ngroups {
			t.Errorf("groups=%d: only %d groups received keys", ngroups, len(load))
		}
	}
}

// TestRingMinimalDisruption checks the consistent-hashing contract:
// adding or removing one group moves at most 2·K/G + ε keys, where K is
// the key count and G the larger group count.
func TestRingMinimalDisruption(t *testing.T) {
	paths := synthPaths(1000)
	for _, base := range []int{2, 3, 5} {
		small, err := New(1, testGroups(base), DefaultVnodes)
		if err != nil {
			t.Fatal(err)
		}
		big, err := New(2, testGroups(base+1), DefaultVnodes)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, p := range paths {
			if small.Lookup(p) != big.Lookup(p) {
				moved++
			}
		}
		bound := 2*len(paths)/(base+1) + 50
		if moved > bound {
			t.Errorf("base=%d: %d keys moved on add-group, want ≤ %d", base, moved, bound)
		}
		if moved == 0 {
			t.Errorf("base=%d: no keys moved on add-group; new group owns nothing", base)
		}
		// Every moved key must land on the new group — keys never shuffle
		// between surviving groups.
		for _, p := range paths {
			if g := big.Lookup(p); g != small.Lookup(p) && g != base {
				t.Fatalf("base=%d: key %q moved to surviving group %d", base, p, g)
			}
		}
	}
}

// TestRingDeterminism: identical inputs build identical rings, and the
// epoch stamp has no influence on placement.
func TestRingDeterminism(t *testing.T) {
	a, err := New(1, testGroups(3), DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(99, testGroups(3), DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range synthPaths(500) {
		if a.Lookup(p) != b.Lookup(p) {
			t.Fatalf("lookup of %q differs across epochs: %d vs %d", p, a.Lookup(p), b.Lookup(p))
		}
	}
}

func TestRingWeight(t *testing.T) {
	groups := testGroups(2)
	groups[1].Weight = 3
	r, err := New(1, groups, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	load := map[int]int{}
	for _, p := range synthPaths(2000) {
		load[r.Lookup(p)]++
	}
	// Group 1 has 3× the weight, so expect roughly 3× the keys; accept a
	// generous band.
	if load[1] < 2*load[0] {
		t.Errorf("weighted group underloaded: load=%v", load)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := New(1, nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := New(1, []Group{{ID: -1}}, 0); err == nil {
		t.Error("negative group ID accepted")
	}
	if _, err := New(1, []Group{{ID: 0}, {ID: 0}}, 0); err == nil {
		t.Error("duplicate group ID accepted")
	}
	if _, err := New(1, []Group{{ID: 0, Weight: -2}}, 0); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestRingParseFormat(t *testing.T) {
	spec := "7@0=127.0.0.1:7000,127.0.0.1:7001;1*2=127.0.0.1:7100"
	r, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch != 7 {
		t.Errorf("epoch = %d, want 7", r.Epoch)
	}
	g0, ok := r.Group(0)
	if !ok || len(g0.Replicas) != 2 {
		t.Errorf("group 0 = %+v, ok=%v", g0, ok)
	}
	g1, ok := r.Group(1)
	if !ok || g1.Weight != 2 || len(g1.Replicas) != 1 {
		t.Errorf("group 1 = %+v, ok=%v", g1, ok)
	}
	if got := r.Format(); got != spec {
		t.Errorf("Format() = %q, want %q", got, spec)
	}
	// Epoch defaults to 1 when omitted.
	r2, err := Parse("0=a;1=b")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Epoch != 1 {
		t.Errorf("default epoch = %d, want 1", r2.Epoch)
	}
	for _, bad := range []string{"", "x=a", "0", "e@0=a", "0*w=a"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestRingWireRoundTrip(t *testing.T) {
	groups := testGroups(3)
	groups[2].Weight = 2
	r, err := New(42, groups, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	var e proto.Enc
	Encode(&e, r)
	got, err := Decode(proto.NewDec(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != r.Epoch || got.Vnodes() != r.Vnodes() || len(got.Groups) != len(r.Groups) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
	for i := range r.Groups {
		a, b := r.Groups[i], got.Groups[i]
		if a.ID != b.ID || a.Weight != b.Weight || fmt.Sprint(a.Replicas) != fmt.Sprint(b.Replicas) {
			t.Errorf("group %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	for _, p := range synthPaths(200) {
		if r.Lookup(p) != got.Lookup(p) {
			t.Fatalf("lookup of %q differs after wire round trip", p)
		}
	}
	// Truncated payloads must error, not panic.
	b := e.Bytes()
	for cut := 0; cut < len(b); cut += 3 {
		if _, err := Decode(proto.NewDec(b[:cut])); err == nil {
			t.Fatalf("truncated decode at %d accepted", cut)
		}
	}
}
