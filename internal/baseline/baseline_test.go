package baseline

import (
	"testing"
	"time"

	"leases/internal/netsim"
	"leases/internal/trace"
)

func lanNet() netsim.Params {
	return netsim.Params{Prop: 500 * time.Microsecond, Proc: 500 * time.Microsecond, Seed: 1}
}

func sharedTrace(seed int64) *trace.Trace {
	return trace.Shared(trace.SharedConfig{
		Seed: seed, Duration: 30 * time.Minute, Clients: 4, Files: 2,
		ReadRate: 0.864, WriteRate: 0.04,
	})
}

func TestCheckOnUseAlwaysConsistent(t *testing.T) {
	res := Run(Config{Trace: sharedTrace(1), Kind: CheckOnUse, Net: lanNet()})
	if res.StaleReads != 0 {
		t.Fatalf("check-on-use produced %d stale reads", res.StaleReads)
	}
	if res.CacheHits != 0 {
		t.Fatalf("check-on-use produced %d cache hits", res.CacheHits)
	}
	// Every read costs a request-response pair: 2 messages.
	want := 2 * res.Reads
	if res.ServerConsistencyMsgs != want {
		t.Fatalf("consistency messages %d, want %d (2 per read)", res.ServerConsistencyMsgs, want)
	}
}

func TestPollingHintsAdmitsStaleness(t *testing.T) {
	res := Run(Config{Trace: sharedTrace(2), Kind: PollingHints, TTL: 10 * time.Minute, Net: lanNet()})
	if res.StaleReads == 0 {
		t.Fatal("10-minute polling with write sharing produced no stale reads — the staleness window is not being modelled")
	}
	if res.MaxStaleness <= 0 || res.MaxStaleness > 10*time.Minute+time.Second {
		t.Fatalf("MaxStaleness = %v, want within (0, TTL]", res.MaxStaleness)
	}
}

func TestPollingHintsStalenessBoundedByTTL(t *testing.T) {
	for _, ttl := range []time.Duration{30 * time.Second, 5 * time.Minute} {
		res := Run(Config{Trace: sharedTrace(3), Kind: PollingHints, TTL: ttl, Net: lanNet()})
		if res.MaxStaleness > ttl+time.Second {
			t.Fatalf("TTL %v: staleness %v exceeds TTL", ttl, res.MaxStaleness)
		}
	}
}

func TestPollingCheaperButInconsistent(t *testing.T) {
	tr := sharedTrace(4)
	check := Run(Config{Trace: tr, Kind: CheckOnUse, Net: lanNet()})
	poll := Run(Config{Trace: tr, Kind: PollingHints, TTL: time.Minute, Net: lanNet()})
	if poll.ServerConsistencyMsgs >= check.ServerConsistencyMsgs {
		t.Fatalf("polling load %d not below check-on-use %d",
			poll.ServerConsistencyMsgs, check.ServerConsistencyMsgs)
	}
	if poll.CacheHits == 0 {
		t.Fatal("polling produced no cache hits")
	}
}

func TestShorterTTLReducesStaleness(t *testing.T) {
	tr := sharedTrace(5)
	long := Run(Config{Trace: tr, Kind: PollingHints, TTL: 10 * time.Minute, Net: lanNet()})
	short := Run(Config{Trace: tr, Kind: PollingHints, TTL: 10 * time.Second, Net: lanNet()})
	if short.StaleReads >= long.StaleReads {
		t.Fatalf("short TTL staleness %d not below long TTL %d", short.StaleReads, long.StaleReads)
	}
}

func TestRunValidation(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Trace: sharedTrace(6), Kind: PollingHints, TTL: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad config did not panic")
				}
			}()
			Run(cfg)
		}()
	}
}
