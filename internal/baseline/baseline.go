// Package baseline implements the non-lease consistency regimes the
// paper compares against (§6), runnable over the same simulated fabric
// and workloads as the lease protocol so the comparison is apples to
// apples:
//
//   - CheckOnUse: a consistency check on every access — Sprite, RFS and
//     the Andrew prototype at open granularity. Identical performance
//     shape to a zero-term lease; always consistent; heavy server load.
//   - PollingHints: server-supplied time-to-live with no write deferral —
//     the DNS model, and the behaviour the revised Andrew file system
//     degrades to when a callback cannot be delivered ("possibly leaving
//     the client operating on stale data ... polling with a period of
//     ten minutes is used to limit the interval for which inconsistent
//     data may be used"). Cheap, but it admits a staleness window that
//     leases provably close.
//
// The zero-term and infinite-term lease baselines need no separate
// implementation: they are core.FixedTerm(0) and
// core.FixedTerm(core.Infinite) run through tracesim.
package baseline

import (
	"time"

	"leases/internal/clock"
	"leases/internal/netsim"
	"leases/internal/sim"
	"leases/internal/stats"
	"leases/internal/trace"
)

// Kind selects a baseline regime.
type Kind uint8

// Baseline regimes.
const (
	// CheckOnUse validates the cached copy with the server on every
	// access.
	CheckOnUse Kind = iota + 1
	// PollingHints caches data for a server-specified TTL with no
	// approval protocol: writes apply immediately; readers may be stale
	// for up to the TTL.
	PollingHints
)

// Config parameterizes a baseline run.
type Config struct {
	Trace *trace.Trace
	Kind  Kind
	// TTL is the hint lifetime for PollingHints (the AFS comparison
	// point is 10 minutes; DNS-style TTLs vary).
	TTL time.Duration
	Net netsim.Params
}

// Result mirrors the tracesim result fields relevant to comparison.
type Result struct {
	Duration              time.Duration
	ServerConsistencyMsgs int64
	ConsistencyLoad       float64
	Reads, Writes         int64
	CacheHits             int64
	// StaleReads counts reads served from cache after the server copy
	// changed — impossible under leases with correct clocks, expected
	// under PollingHints.
	StaleReads int64
	// MaxStaleness is the longest interval between a server-side write
	// and a stale read of the overwritten data.
	MaxStaleness  time.Duration
	ReadDelayMean time.Duration
}

// message kinds for the baseline fabric.
const (
	kindCheck = "lease.check" // counted as consistency traffic
	kindReply = "lease.reply"
)

type checkReq struct {
	ReqID  uint64
	Client int
	File   uint32
}

type checkRep struct {
	ReqID   uint64
	File    uint32
	Version uint64
	TTL     time.Duration
}

// Run executes a baseline simulation.
func Run(cfg Config) *Result {
	if cfg.Trace == nil {
		panic("baseline: nil trace")
	}
	if cfg.Kind == PollingHints && cfg.TTL <= 0 {
		panic("baseline: PollingHints requires a TTL")
	}
	engine := sim.New(clock.Epoch)
	fabric := netsim.New(engine, cfg.Net)

	versions := make([]uint64, cfg.Trace.Files)
	lastWrite := make([]time.Time, cfg.Trace.Files)

	var reads, writes, hits, stale stats.Counter
	var readDelay stats.DurationStat
	var maxStale time.Duration

	type cacheEntry struct {
		version    uint64
		validUntil time.Time
	}
	clients := make([]map[uint32]cacheEntry, cfg.Trace.Clients)
	nextReq := uint64(0)
	pendingReads := make(map[uint64]time.Time)

	const serverNode netsim.NodeID = "srv"
	fabric.Register(serverNode, func(m netsim.Message) {
		switch p := m.Payload.(type) {
		case checkReq:
			rep := checkRep{ReqID: p.ReqID, File: p.File, Version: versions[p.File], TTL: cfg.TTL}
			fabric.Unicast(serverNode, m.From, kindReply, rep)
		default:
			panic("baseline: unknown payload at server")
		}
	})
	for i := 0; i < cfg.Trace.Clients; i++ {
		i := i
		clients[i] = make(map[uint32]cacheEntry)
		fabric.Register(netsim.NodeID(clientName(i)), func(m netsim.Message) {
			rep, ok := m.Payload.(checkRep)
			if !ok {
				panic("baseline: unknown payload at client")
			}
			start, live := pendingReads[rep.ReqID]
			if !live {
				return
			}
			delete(pendingReads, rep.ReqID)
			validUntil := engine.Now().Add(rep.TTL)
			if cfg.Kind == CheckOnUse {
				validUntil = engine.Now() // valid for this use only
			}
			clients[i][rep.File] = cacheEntry{version: rep.Version, validUntil: validUntil}
			reads.Inc()
			readDelay.Observe(engine.Now().Sub(start))
		})
	}

	for _, e := range cfg.Trace.Events {
		e := e
		engine.At(clock.Epoch.Add(e.At), func() {
			now := engine.Now()
			switch e.Op {
			case trace.OpRead:
				entry, cached := clients[int(e.Client)][e.File]
				if cfg.Kind == PollingHints && cached && now.Before(entry.validUntil) {
					reads.Inc()
					hits.Inc()
					readDelay.Observe(0)
					if entry.version != versions[e.File] {
						stale.Inc()
						if d := now.Sub(lastWrite[e.File]); d > maxStale {
							maxStale = d
						}
					}
					return
				}
				nextReq++
				pendingReads[nextReq] = now
				fabric.Unicast(netsim.NodeID(clientName(int(e.Client))), serverNode, kindCheck, checkReq{
					ReqID:  nextReq,
					Client: int(e.Client),
					File:   e.File,
				})
			case trace.OpWrite:
				// No deferral: the write applies as soon as it reaches
				// the server. Model the round trip as base (data) cost;
				// no consistency messages are exchanged at all.
				versions[e.File]++
				lastWrite[e.File] = now
				writes.Inc()
			}
		})
	}
	engine.Run()

	r := &Result{
		Duration:              cfg.Trace.Duration,
		ServerConsistencyMsgs: fabric.Handled(serverNode, "lease."),
		Reads:                 reads.Value(),
		Writes:                writes.Value(),
		CacheHits:             hits.Value(),
		StaleReads:            stale.Value(),
		MaxStaleness:          maxStale,
		ReadDelayMean:         readDelay.Mean(),
	}
	r.ConsistencyLoad = float64(r.ServerConsistencyMsgs) / cfg.Trace.Duration.Seconds()
	return r
}

func clientName(i int) string {
	return "c" + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10))
}
