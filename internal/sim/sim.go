// Package sim is a deterministic discrete-event simulation engine.
//
// The paper validates its analytic model with a trace-driven simulation of
// the cache and server (§3.2, the "Trace" curve of Figure 1). Package
// tracesim rebuilds that simulation on top of this engine: events are
// scheduled at virtual instants, executed strictly in time order (ties
// broken by scheduling order, so runs are reproducible), and virtual time
// jumps instantaneously between events.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled action.
type Event struct {
	at  time.Time
	seq uint64
	fn  func()
	// index in the heap, or -1 when cancelled/executed.
	index int
}

// At reports the instant at which the event is scheduled.
func (e *Event) At() time.Time { return e.at }

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use: all scheduling and execution happens on the caller's
// goroutine, which is what makes simulations deterministic.
type Engine struct {
	now      time.Time
	queue    eventQueue
	seq      uint64
	executed uint64
	running  bool
	// choose, when set, is the same-instant choice point (SetTieBreaker).
	choose func(n int) int
}

// New returns an engine whose virtual clock reads start.
func New(start time.Time) *Engine {
	return &Engine{now: start}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Executed reports how many events have run.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are scheduled and not yet run.
func (e *Engine) Pending() int { return e.queue.Len() }

// At schedules fn to run at the given virtual instant. Scheduling in the
// past (before Now) panics: such an event would require time to move
// backwards. Scheduling exactly at Now is allowed and runs after events
// already queued for that instant.
func (e *Engine) At(at time.Time, fn func()) *Event {
	if at.Before(e.now) {
		panic(fmt.Sprintf("sim: event scheduled at %v, before current time %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current virtual time. Negative
// durations are clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a scheduled event. It reports whether the event was
// still pending (false if already executed or cancelled).
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.fn = nil
	return true
}

// SetTieBreaker installs choose as the engine's same-instant choice
// point, or removes it when nil. Events at distinct instants always run
// in time order; but when several pending events share the earliest
// instant, their order is a real scheduling freedom — on a network, two
// messages delivered "at the same time" arrive in either order. With a
// chooser installed, Step gathers the tied events in scheduling order
// and runs the one at index choose(n) (clamped into [0,n)); the rest
// stay pending with their original sequence numbers, so a nil or
// constant-zero chooser degenerates to the default FIFO tie-break. A
// model checker threads a seeded RNG through here to explore
// interleavings; replaying the seed replays the schedule.
func (e *Engine) SetTieBreaker(choose func(n int) int) { e.choose = choose }

// Step executes the single earliest pending event, advancing virtual time
// to its instant. It reports false if no events are pending.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	if e.choose != nil && e.queue.Len() > 0 && e.queue[0].at.Equal(ev.at) {
		ev = e.popTied(ev)
	}
	e.now = ev.at
	e.executed++
	fn := ev.fn
	ev.fn = nil
	fn()
	return true
}

// popTied collects every event tied with first's instant, asks the
// chooser to pick one, and re-queues the rest (which keep their
// sequence numbers, preserving their relative order).
func (e *Engine) popTied(first *Event) *Event {
	tied := []*Event{first}
	for e.queue.Len() > 0 && e.queue[0].at.Equal(first.at) {
		tied = append(tied, heap.Pop(&e.queue).(*Event))
	}
	k := e.choose(len(tied))
	if k < 0 || k >= len(tied) {
		k = 0
	}
	for i, ev := range tied {
		if i != k {
			heap.Push(&e.queue, ev)
		}
	}
	return tied[k]
}

// Run executes events until none remain. It guards against re-entrant
// calls from inside an event handler.
func (e *Engine) Run() {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil executes events with instants at or before deadline, then
// advances virtual time to the deadline. Events scheduled later remain
// pending.
func (e *Engine) RunUntil(deadline time.Time) {
	if e.running {
		panic("sim: re-entrant RunUntil")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.queue.Len() > 0 && !e.queue[0].at.After(deadline) {
		e.Step()
	}
	if deadline.After(e.now) {
		e.now = deadline
	}
}

// RunFor executes events for the next d of virtual time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }
