package sim

import (
	"math/rand"
	"testing"
	"time"

	"leases/internal/clock"
)

func TestTieBreakerChoosesAmongTiedEvents(t *testing.T) {
	e := New(clock.Epoch)
	e.SetTieBreaker(func(n int) int { return n - 1 }) // always pick the last tied event
	var order []int
	at := clock.Epoch.Add(time.Second)
	for i := 0; i < 4; i++ {
		i := i
		e.At(at, func() { order = append(order, i) })
	}
	e.Run()
	// Picking the last each round reverses the schedule order.
	want := []int{3, 2, 1, 0}
	for i, v := range order {
		if v != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestTieBreakerZeroKeepsScheduleOrder(t *testing.T) {
	e := New(clock.Epoch)
	e.SetTieBreaker(func(int) int { return 0 })
	var order []int
	at := clock.Epoch.Add(time.Second)
	for i := 0; i < 5; i++ {
		i := i
		e.At(at, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("constant-zero chooser broke FIFO order: %v", order)
		}
	}
}

func TestTieBreakerOnlyAffectsTies(t *testing.T) {
	e := New(clock.Epoch)
	e.SetTieBreaker(func(n int) int { return n - 1 })
	var order []int
	e.After(2*time.Second, func() { order = append(order, 2) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("distinct instants reordered: %v", order)
	}
}

func TestTieBreakerOutOfRangeClampsToFirst(t *testing.T) {
	e := New(clock.Epoch)
	e.SetTieBreaker(func(n int) int { return n + 7 })
	var order []int
	at := clock.Epoch.Add(time.Second)
	for i := 0; i < 3; i++ {
		i := i
		e.At(at, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("clamped chooser should behave as FIFO, got %v", order)
		}
	}
}

func TestTieBreakerSeededReplayIsIdentical(t *testing.T) {
	run := func(seed int64) []int {
		e := New(clock.Epoch)
		rng := rand.New(rand.NewSource(seed))
		e.SetTieBreaker(func(n int) int { return rng.Intn(n) })
		var order []int
		for batch := 0; batch < 10; batch++ {
			at := clock.Epoch.Add(time.Duration(batch+1) * time.Second)
			for i := 0; i < 6; i++ {
				v := batch*10 + i
				e.At(at, func() { order = append(order, v) })
			}
		}
		e.Run()
		return order
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical tie-broken orders across 10 batches; chooser appears unused")
	}
}

func TestTieBreakerUnaffectedBySoloEvents(t *testing.T) {
	e := New(clock.Epoch)
	calls := 0
	e.SetTieBreaker(func(n int) int { calls++; return 0 })
	e.After(time.Second, func() {})
	e.After(2*time.Second, func() {})
	e.Run()
	if calls != 0 {
		t.Fatalf("chooser consulted %d times with no ties", calls)
	}
}
