package sim

import (
	"testing"
	"testing/quick"
	"time"

	"leases/internal/clock"
)

func TestEngineStartsAtGivenTime(t *testing.T) {
	e := New(clock.Epoch)
	if !e.Now().Equal(clock.Epoch) {
		t.Fatalf("Now = %v, want %v", e.Now(), clock.Epoch)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New(clock.Epoch)
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order %v, want [1 2 3]", order)
	}
	if got, want := e.Now(), clock.Epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("final time %v, want %v", got, want)
	}
}

func TestSimultaneousEventsRunInScheduleOrder(t *testing.T) {
	e := New(clock.Epoch)
	var order []int
	at := clock.Epoch.Add(time.Second)
	for i := 0; i < 5; i++ {
		i := i
		e.At(at, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order %v, want ascending", order)
		}
	}
}

func TestEventsScheduledFromHandlers(t *testing.T) {
	e := New(clock.Epoch)
	var fired []time.Duration
	e.After(time.Second, func() {
		fired = append(fired, e.Now().Sub(clock.Epoch))
		e.After(time.Second, func() {
			fired = append(fired, e.Now().Sub(clock.Epoch))
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("fired at %v, want [1s 2s]", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(clock.Epoch)
	e.After(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling before Now did not panic")
		}
	}()
	e.At(clock.Epoch, func() {})
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	e := New(clock.Epoch)
	ran := false
	e.After(-time.Hour, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if !e.Now().Equal(clock.Epoch) {
		t.Fatalf("time moved to %v, want epoch", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := New(clock.Epoch)
	ran := false
	ev := e.After(time.Second, func() { ran = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel on pending event reported false")
	}
	if e.Cancel(ev) {
		t.Fatal("double Cancel reported true")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestCancelExecutedEvent(t *testing.T) {
	e := New(clock.Epoch)
	ev := e.After(0, func() {})
	e.Run()
	if e.Cancel(ev) {
		t.Fatal("Cancel on executed event reported true")
	}
	if e.Cancel(nil) {
		t.Fatal("Cancel(nil) reported true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New(clock.Epoch)
	var order []int
	events := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		events[i] = e.After(time.Duration(i)*time.Second, func() { order = append(order, i) })
	}
	e.Cancel(events[4])
	e.Cancel(events[7])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New(clock.Epoch)
	var ran []int
	e.After(1*time.Second, func() { ran = append(ran, 1) })
	e.After(5*time.Second, func() { ran = append(ran, 5) })
	e.RunUntil(clock.Epoch.Add(3 * time.Second))
	if len(ran) != 1 || ran[0] != 1 {
		t.Fatalf("ran %v, want [1]", ran)
	}
	if got, want := e.Now(), clock.Epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("Now = %v, want %v (deadline)", got, want)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.RunFor(2 * time.Second)
	if len(ran) != 2 {
		t.Fatalf("ran %v, want both events", ran)
	}
}

func TestRunUntilEventExactlyAtDeadlineRuns(t *testing.T) {
	e := New(clock.Epoch)
	ran := false
	e.After(time.Second, func() { ran = true })
	e.RunUntil(clock.Epoch.Add(time.Second))
	if !ran {
		t.Fatal("event at the deadline did not run")
	}
}

func TestExecutedCount(t *testing.T) {
	e := New(clock.Epoch)
	for i := 0; i < 7; i++ {
		e.After(time.Duration(i)*time.Millisecond, func() {})
	}
	e.Run()
	if e.Executed() != 7 {
		t.Fatalf("Executed = %d, want 7", e.Executed())
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := New(clock.Epoch)
	var recovered any
	e.After(0, func() {
		defer func() { recovered = recover() }()
		e.Run()
	})
	e.Run()
	if recovered == nil {
		t.Fatal("re-entrant Run did not panic")
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New(clock.Epoch)
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

// Property: for any multiset of delays, events execute in nondecreasing
// time order and the engine finishes at the maximum delay.
func TestTimeOrderProperty(t *testing.T) {
	f := func(delaysMS []uint16) bool {
		e := New(clock.Epoch)
		var fired []time.Time
		var maxAt time.Time = clock.Epoch
		for _, d := range delaysMS {
			at := clock.Epoch.Add(time.Duration(d) * time.Millisecond)
			if at.After(maxAt) {
				maxAt = at
			}
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i].Before(fired[i-1]) {
				return false
			}
		}
		return e.Now().Equal(maxAt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
