package server_test

import (
	"testing"
	"time"

	"leases/internal/client"
	"leases/internal/obs/tracing"
	"leases/internal/server"
)

// gateReplica is a stub Replica that always claims mastership, so the
// tests below isolate the serving gate: with a Replica configured, a
// server must refuse sessions until Promote completes, no matter what
// IsMaster says.
type gateReplica struct{}

func (gateReplica) IsMaster() bool                                               { return true }
func (gateReplica) MasterIndex() int                                             { return 0 }
func (gateReplica) MasterExpiry() time.Time                                      { return time.Time{} }
func (gateReplica) Role() string                                                 { return "master" }
func (gateReplica) ReplicateWrite(tracing.Context, string, uint64, []byte) error { return nil }
func (gateReplica) ReplicateMaxTerm(time.Duration) error                         { return nil }

// TestServingGateOpensAtPromote: a replicated server refuses hellos
// between the election win (IsMaster true) and the completed promotion
// (catch-up state merged, recovery window armed) — and again after a
// demotion — so no session can observe the unmerged gap state.
func TestServingGateOpensAtPromote(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		Term:    time.Minute,
		Replica: gateReplica{},
	})

	cfg := client.Config{ID: "gate"}
	if c, err := client.Dial(addr, cfg); err == nil {
		c.Close()
		t.Fatal("server accepted a session before Promote")
	}

	srv.Promote(tracing.Context{}, nil, 0)
	c, err := client.Dial(addr, cfg)
	if err != nil {
		t.Fatalf("dial after Promote: %v", err)
	}
	c.Close()

	srv.Demote()
	if c, err := client.Dial(addr, cfg); err == nil {
		c.Close()
		t.Fatal("server accepted a session after Demote")
	}
}

// TestApplyReplicatedReportsStaleDrop: ApplyReplicated distinguishes a
// real apply from a stale-sequence drop, because only real applies may
// count toward the master's replication quorum.
func TestApplyReplicatedReportsStaleDrop(t *testing.T) {
	srv := server.New(server.Config{Term: time.Minute, Replica: gateReplica{}})

	applied, err := srv.ApplyReplicated("/f", 2, []byte("v2"))
	if err != nil || !applied {
		t.Fatalf("fresh apply: applied=%v err=%v", applied, err)
	}
	applied, err = srv.ApplyReplicated("/f", 2, []byte("v2"))
	if err != nil || applied {
		t.Fatalf("duplicate seq reported applied=%v err=%v", applied, err)
	}
	applied, err = srv.ApplyReplicated("/f", 1, []byte("v1"))
	if err != nil || applied {
		t.Fatalf("older seq reported applied=%v err=%v", applied, err)
	}
	applied, err = srv.ApplyReplicated("/f", 3, []byte("v3"))
	if err != nil || !applied {
		t.Fatalf("newer seq: applied=%v err=%v", applied, err)
	}
}
