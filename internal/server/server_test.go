package server_test

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"leases/internal/client"
	"leases/internal/proto"
	"leases/internal/server"
	"leases/internal/vfs"
)

// startServer launches a server on a loopback listener and returns it
// with its address and a cleanup.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	s := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Serve(ln)
	}()
	t.Cleanup(func() {
		s.Stop()
		<-done
	})
	return s, ln.Addr().String()
}

func dial(t *testing.T, addr, id string, cfg client.Config) *client.Cache {
	t.Helper()
	cfg.ID = id
	c, err := client.Dial(addr, cfg)
	if err != nil {
		t.Fatalf("dial %s: %v", id, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestEndToEndFileOperations(t *testing.T) {
	_, addr := startServer(t, server.Config{Term: 10 * time.Second})
	c := dial(t, addr, "c1", client.Config{})

	if _, err := c.Mkdir("/docs", vfs.DefaultPerm|vfs.WorldWrite); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	if _, err := c.Create("/docs/paper.tex", vfs.DefaultPerm|vfs.WorldWrite); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := c.Write("/docs/paper.tex", []byte("\\documentclass{article}")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	data, err := c.Read("/docs/paper.tex")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(data) != "\\documentclass{article}" {
		t.Fatalf("Read = %q", data)
	}
	entries, err := c.ReadDir("/docs")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 || entries[0].Name != "paper.tex" {
		t.Fatalf("ReadDir = %v", entries)
	}
	if err := c.Rename("/docs/paper.tex", "/docs/final.tex"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := c.Read("/docs/paper.tex"); err == nil {
		t.Fatal("old name still readable after rename")
	}
	if data, err := c.Read("/docs/final.tex"); err != nil || string(data) == "" {
		t.Fatalf("new name: %v %q", err, data)
	}
	if err := c.Remove("/docs/final.tex"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := c.Remove("/docs"); err != nil {
		t.Fatalf("Remove dir: %v", err)
	}
}

func TestRepeatedReadServedFromCache(t *testing.T) {
	srv, addr := startServer(t, server.Config{Term: 30 * time.Second})
	srv.Store().Create("/latex", "root", vfs.DefaultPerm)
	srv.Store().WriteFile(2, []byte("binary"))
	c := dial(t, addr, "c1", client.Config{})

	for i := 0; i < 10; i++ {
		if _, err := c.Read("/latex"); err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
	}
	m := c.Metrics()
	if m.Reads != 10 {
		t.Fatalf("Reads = %d", m.Reads)
	}
	if m.ReadHits < 9 {
		t.Fatalf("ReadHits = %d, want ≥9 — the cache is not serving under its lease", m.ReadHits)
	}
	if m.LookupHits < 9 {
		t.Fatalf("LookupHits = %d, want ≥9 — repeated opens should use the cached binding", m.LookupHits)
	}
}

func TestWriteCallbackInvalidatesOtherClient(t *testing.T) {
	srv, addr := startServer(t, server.Config{Term: 30 * time.Second})
	srv.Store().Create("/shared", "root", vfs.DefaultPerm|vfs.WorldWrite)
	reader := dial(t, addr, "reader", client.Config{})
	writer := dial(t, addr, "writer", client.Config{})

	if _, err := reader.Read("/shared"); err != nil {
		t.Fatalf("reader Read: %v", err)
	}
	start := time.Now()
	if err := writer.Write("/shared", []byte("v2")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("write with reachable holder took %v — approval callback is not working", took)
	}
	// The reader must now refetch and see the new contents (its copy
	// was invalidated by the approval it granted).
	deadline := time.Now().Add(5 * time.Second)
	for {
		data, err := reader.Read("/shared")
		if err != nil {
			t.Fatalf("reader re-Read: %v", err)
		}
		if string(data) == "v2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reader still sees %q after write", data)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if inv := reader.Metrics().Invalidations; inv == 0 {
		t.Fatal("reader recorded no invalidations")
	}
}

func TestWriteWaitsOutUnreachableHolder(t *testing.T) {
	const term = 700 * time.Millisecond
	srv, addr := startServer(t, server.Config{Term: term})
	srv.Store().Create("/f", "root", vfs.DefaultPerm|vfs.WorldWrite)

	// The holder connects, reads (taking a lease), then vanishes
	// without releasing — a crash.
	holder, err := client.Dial(addr, client.Config{ID: "holder"})
	if err != nil {
		t.Fatalf("dial holder: %v", err)
	}
	if _, err := holder.Read("/f"); err != nil {
		t.Fatalf("holder Read: %v", err)
	}
	leaseTaken := time.Now()
	// Abrupt close: no Release (Close would release; simulate crash by
	// closing the raw connection path — Close here releases, so instead
	// we test with a client whose releases we suppress by killing the
	// server's view... simplest: close and rely on release failing).
	// client.Close sends TRelease; to model a crash, use a raw conn.
	holder.Close()

	// A fresh raw-protocol "crashed" holder: handshake, read, vanish.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	var e proto.Enc
	e.Str("crasher")
	proto.WriteFrame(raw, proto.Frame{Type: proto.THello, ReqID: 1, Payload: e.Bytes()})
	proto.ReadFrame(raw) // hello ack
	var e2 proto.Enc
	e2.U64(2) // node of /f
	proto.WriteFrame(raw, proto.Frame{Type: proto.TRead, ReqID: 2, Payload: e2.Bytes()})
	if _, err := proto.ReadFrame(raw); err != nil {
		t.Fatalf("raw read reply: %v", err)
	}
	leaseTaken = time.Now()
	raw.Close() // crash: lease survives at the server

	writer := dial(t, addr, "writer", client.Config{})
	start := time.Now()
	if err := writer.Write("/f", []byte("v2")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	took := time.Since(start)
	remaining := term - time.Since(leaseTaken) // ≈ how long it had to wait
	_ = remaining
	if took < 300*time.Millisecond {
		t.Fatalf("write completed in %v — crashed holder's lease was not honoured", took)
	}
	if took > term+2*time.Second {
		t.Fatalf("write took %v — far beyond the lease term", took)
	}
}

func TestCleanCloseReleasesLeases(t *testing.T) {
	srv, addr := startServer(t, server.Config{Term: time.Hour})
	srv.Store().Create("/f", "root", vfs.DefaultPerm|vfs.WorldWrite)

	holder := dial(t, addr, "holder", client.Config{})
	if _, err := holder.Read("/f"); err != nil {
		t.Fatalf("Read: %v", err)
	}
	holder.Close() // releases the hour-long lease

	writer := dial(t, addr, "writer", client.Config{})
	start := time.Now()
	if err := writer.Write("/f", []byte("v2")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("write after clean release took %v", took)
	}
}

func TestBindingMutationDefersOnDirLease(t *testing.T) {
	const term = 700 * time.Millisecond
	srv, addr := startServer(t, server.Config{Term: term})
	srv.Store().Mkdir("/dir", "root", vfs.DefaultPerm|vfs.WorldWrite)

	// A raw client takes a lease on /dir's binding (via ReadDir), then
	// crashes.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	var e proto.Enc
	e.Str("crasher")
	proto.WriteFrame(raw, proto.Frame{Type: proto.THello, ReqID: 1, Payload: e.Bytes()})
	proto.ReadFrame(raw)
	var e2 proto.Enc
	e2.U64(2) // node of /dir
	proto.WriteFrame(raw, proto.Frame{Type: proto.TReadDir, ReqID: 2, Payload: e2.Bytes()})
	if _, err := proto.ReadFrame(raw); err != nil {
		t.Fatalf("raw readdir: %v", err)
	}
	raw.Close()

	// Creating a file in /dir is a write to its binding: it must wait
	// out the crashed holder's lease.
	c := dial(t, addr, "creator", client.Config{})
	start := time.Now()
	if _, err := c.Create("/dir/new", vfs.DefaultPerm); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if took := time.Since(start); took < 300*time.Millisecond {
		t.Fatalf("binding mutation completed in %v — directory lease not honoured (renames/creates are writes too)", took)
	}
}

func TestRecoveryWindowDelaysWrites(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		Term:           time.Minute,
		RecoveryWindow: time.Second,
	})
	srv.Store().Create("/f", "root", vfs.DefaultPerm|vfs.WorldWrite)
	c := dial(t, addr, "c1", client.Config{})

	// Reads work during recovery.
	if _, err := c.Read("/f"); err != nil {
		t.Fatalf("Read during recovery: %v", err)
	}
	start := time.Now()
	if err := c.Write("/f", []byte("post-crash")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if took := time.Since(start); took < 500*time.Millisecond {
		t.Fatalf("write during recovery window completed in %v — pre-crash leases could be violated", took)
	}
}

func TestWriteTimeoutFailsBlockedWrite(t *testing.T) {
	srv, addr := startServer(t, server.Config{
		Term:         time.Hour,
		WriteTimeout: 500 * time.Millisecond,
	})
	srv.Store().Create("/f", "root", vfs.DefaultPerm|vfs.WorldWrite)

	// A raw holder that takes a lease and ignores approval pushes.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	defer raw.Close()
	var e proto.Enc
	e.Str("mute-holder")
	proto.WriteFrame(raw, proto.Frame{Type: proto.THello, ReqID: 1, Payload: e.Bytes()})
	proto.ReadFrame(raw)
	var e2 proto.Enc
	e2.U64(2)
	proto.WriteFrame(raw, proto.Frame{Type: proto.TRead, ReqID: 2, Payload: e2.Bytes()})
	proto.ReadFrame(raw)
	// Keep the connection open but never answer pushes.

	writer := dial(t, addr, "writer", client.Config{})
	err = writer.Write("/f", []byte("v2"))
	if err == nil {
		t.Fatal("write succeeded despite mute holder with hour-long lease")
	}
	if !errors.Is(err, client.ErrRemote) {
		t.Fatalf("err = %v, want remote error", err)
	}
}

func TestConcurrentClientsRace(t *testing.T) {
	srv, addr := startServer(t, server.Config{Term: 300 * time.Millisecond})
	for i := 0; i < 4; i++ {
		srv.Store().Create(fmt.Sprintf("/f%d", i), "root", vfs.DefaultPerm|vfs.WorldWrite)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Config{ID: fmt.Sprintf("c%d", i)})
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for j := 0; j < 40; j++ {
				path := fmt.Sprintf("/f%d", j%4)
				if j%7 == 0 {
					if err := c.Write(path, []byte(fmt.Sprintf("%d-%d", i, j))); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				} else {
					if _, err := c.Read(path); err != nil {
						t.Errorf("read: %v", err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestExtendAllRevalidatesStaleData(t *testing.T) {
	srv, addr := startServer(t, server.Config{Term: 400 * time.Millisecond})
	srv.Store().Create("/f", "root", vfs.DefaultPerm|vfs.WorldWrite)
	srv.Store().WriteFile(2, []byte("v1"))

	c := dial(t, addr, "c1", client.Config{})
	if _, err := c.Read("/f"); err != nil {
		t.Fatalf("Read: %v", err)
	}
	// Let the lease lapse, then change the file via a second client.
	time.Sleep(600 * time.Millisecond)
	w := dial(t, addr, "w", client.Config{})
	if err := w.Write("/f", []byte("v2")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// ExtendAll renews the lapsed lease; the version moved, so the
	// cached copy must be dropped, and the next read refetches v2.
	if err := c.ExtendAll(); err != nil {
		t.Fatalf("ExtendAll: %v", err)
	}
	data, err := c.Read("/f")
	if err != nil {
		t.Fatalf("re-Read: %v", err)
	}
	if string(data) != "v2" {
		t.Fatalf("stale read after extension: %q", data)
	}
}

func TestSnapshotRestoreAcrossRestart(t *testing.T) {
	srv1, addr1 := startServer(t, server.Config{Term: time.Hour})
	srv1.Store().Create("/f", "root", vfs.DefaultPerm|vfs.WorldWrite)
	c := dial(t, addr1, "c1", client.Config{})
	if _, err := c.Read("/f"); err != nil {
		t.Fatalf("Read: %v", err)
	}
	snap := srv1.Snapshot()
	if len(snap) == 0 {
		t.Fatal("no lease records snapshotted")
	}

	// "Restart": a new server restores the snapshot; the old lease
	// still blocks a write (until timeout fails it).
	srv2, addr2 := startServer(t, server.Config{Term: time.Hour, WriteTimeout: 400 * time.Millisecond})
	srv2.Store().Create("/f", "root", vfs.DefaultPerm|vfs.WorldWrite)
	srv2.Restore(snap)
	w := dial(t, addr2, "writer", client.Config{})
	if err := w.Write("/f", []byte("x")); err == nil {
		t.Fatal("restored lease did not block the write")
	}
}

func TestServerMetricsAndLeaseCount(t *testing.T) {
	srv, addr := startServer(t, server.Config{Term: time.Minute})
	srv.Store().Create("/f", "root", vfs.DefaultPerm|vfs.WorldWrite)
	reader := dial(t, addr, "reader", client.Config{})
	writer := dial(t, addr, "writer", client.Config{})
	if _, err := reader.Read("/f"); err != nil {
		t.Fatal(err)
	}
	if srv.LeaseCount() == 0 {
		t.Fatal("LeaseCount zero after a leased read")
	}
	if err := writer.Write("/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	if m.Grants == 0 {
		t.Fatalf("metrics = %+v, want grants recorded", m)
	}
	if m.WritesDeferred == 0 || m.ApprovalsApplied == 0 {
		t.Fatalf("metrics = %+v, want the deferred write and its approval recorded", m)
	}
}

func TestMaxTermGrantedTracked(t *testing.T) {
	srv, addr := startServer(t, server.Config{Term: 42 * time.Second})
	srv.Store().Create("/f", "root", vfs.DefaultPerm)
	c := dial(t, addr, "c1", client.Config{})
	if _, err := c.Read("/f"); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := srv.MaxTermGranted(); got != 42*time.Second {
		t.Fatalf("MaxTermGranted = %v", got)
	}
}

func TestListenAndServeAndAddr(t *testing.T) {
	s := server.New(server.Config{Term: time.Second})
	s.Store().Create("/f", "root", vfs.DefaultPerm)
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 100; i++ {
		if a := s.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("Addr never became available")
	}
	c := dial(t, addr, "c1", client.Config{})
	if _, err := c.Read("/f"); err != nil {
		t.Fatalf("Read: %v", err)
	}
	s.Stop()
	if err := <-done; err != nil {
		t.Fatalf("ListenAndServe returned %v after Stop", err)
	}
	// A bad address errors immediately.
	if err := server.New(server.Config{}).ListenAndServe("256.0.0.1:bogus"); err == nil {
		t.Fatal("bogus address accepted")
	}
}

// TStat is the attribute-only wire operation (the client library
// prefers Lookup, which also grants a binding lease): exercise it raw.
func TestStatWireOperation(t *testing.T) {
	srv, addr := startServer(t, server.Config{Term: time.Second})
	a, _ := srv.Store().Create("/f", "alice", vfs.DefaultPerm)
	srv.Store().WriteFile(a.ID, []byte("xyz"))

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var e proto.Enc
	e.Str("rawstat")
	proto.WriteFrame(raw, proto.Frame{Type: proto.THello, ReqID: 1, Payload: e.Bytes()})
	proto.ReadFrame(raw)

	var e2 proto.Enc
	e2.U64(uint64(a.ID))
	proto.WriteFrame(raw, proto.Frame{Type: proto.TStat, ReqID: 2, Payload: e2.Bytes()})
	f, err := proto.ReadFrame(raw)
	if err != nil || f.Type != proto.TStatRep {
		t.Fatalf("TStat reply: %v type=%d", err, f.Type)
	}
	attr := proto.NewDec(f.Payload).Attr()
	if attr.Owner != "alice" || attr.Size != 3 || attr.Version != 1 {
		t.Fatalf("attr = %+v", attr)
	}
	// Unknown node errors.
	var e3 proto.Enc
	e3.U64(9999)
	proto.WriteFrame(raw, proto.Frame{Type: proto.TStat, ReqID: 3, Payload: e3.Bytes()})
	f, _ = proto.ReadFrame(raw)
	if f.Type != proto.TError {
		t.Fatalf("missing node reply type = %d, want TError", f.Type)
	}
	// Unknown message types error rather than hang. (The type byte's
	// high bit is the trace-header flag, so stay below proto.TraceFlag —
	// a flagged-but-truncated frame is a framing error, not a dispatch
	// error, and kills the connection instead.)
	proto.WriteFrame(raw, proto.Frame{Type: 120, ReqID: 4})
	f, _ = proto.ReadFrame(raw)
	if f.Type != proto.TError {
		t.Fatalf("unknown type reply = %d, want TError", f.Type)
	}
}

func TestAutoExtendKeepsLeaseAlive(t *testing.T) {
	srv, addr := startServer(t, server.Config{Term: 500 * time.Millisecond})
	srv.Store().Create("/f", "root", vfs.DefaultPerm)
	srv.Store().WriteFile(2, []byte("data"))
	c := dial(t, addr, "c1", client.Config{AutoExtend: 150 * time.Millisecond})
	if _, err := c.Read("/f"); err != nil {
		t.Fatalf("Read: %v", err)
	}
	before := c.Metrics().ReadHits
	time.Sleep(time.Second) // well past the original term
	if _, err := c.Read("/f"); err != nil {
		t.Fatalf("Read after term: %v", err)
	}
	if c.Metrics().ReadHits != before+1 {
		t.Fatal("auto-extend did not keep the lease alive across the term")
	}
}
