package server

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Durable max-term recovery (§2): "the server need only remember the
// maximum term for which it has granted a lease … after a crash it
// delays writes to all files for that period." The file holds one
// decimal integer — the maximum granted term in nanoseconds — and is
// replaced atomically (temp file, fsync, rename, directory fsync), so a
// crash at any instant leaves either the old value or the new one,
// never a torn write. Because the value only ever grows and changes at
// most once per policy change, the fsync cost is a one-time event, not
// a per-grant tax.

// MaxDurableTerm bounds what a max-term file may claim. No sane
// configuration grants year-long leases, so a larger value is corruption
// (a wall-clock timestamp written where a duration belongs, a flipped
// bit in the high digits), and honoring it would park the server in its
// recovery window for decades. Refusing to load it forces the operator
// to inspect the file instead.
const MaxDurableTerm = 365 * 24 * time.Hour

// LoadMaxTerm reads a durable max-term file written by a server with
// Config.MaxTermPath set. It returns the persisted term and whether the
// file existed; a missing file is a fresh boot, not an error. Anything
// unparseable, negative, or beyond MaxDurableTerm is reported as
// corrupt: the recovery window must come from evidence, not garbage.
func LoadMaxTerm(path string) (time.Duration, bool, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	s := strings.TrimSpace(string(b))
	n, perr := strconv.ParseInt(s, 10, 64)
	if perr != nil || n < 0 || time.Duration(n) > MaxDurableTerm {
		return 0, false, fmt.Errorf("server: corrupt max-term file %s: %q", path, s)
	}
	return time.Duration(n), true, nil
}

// maxTermFile persists the largest lease term ever granted. update is
// called on the grant path before the grant is sent, so the durability
// ordering is correct: no client ever holds a lease longer than the
// persisted recovery window.
type maxTermFile struct {
	mu   sync.Mutex
	path string
	last time.Duration
}

// update persists t if it exceeds the last persisted value. The write
// is atomic and fsync'd; on error nothing is recorded and the caller
// must not grant the term.
func (f *maxTermFile) update(t time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if t <= f.last {
		return nil
	}
	if t > MaxDurableTerm {
		// A term this long would be unloadable after the restart it is
		// supposed to protect; the grant must be refused instead.
		return fmt.Errorf("server: max term %v exceeds durable cap %v", t, MaxDurableTerm)
	}
	dir := filepath.Dir(f.path)
	tmp, err := os.CreateTemp(dir, ".maxterm-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.WriteString(strconv.FormatInt(int64(t), 10) + "\n"); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), f.path); err != nil {
		return err
	}
	// Make the rename itself durable.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	f.last = t
	return nil
}
