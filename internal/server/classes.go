package server

import (
	"sort"
	"strings"
	"sync"
	"time"

	"leases/internal/core"
	"leases/internal/obs"
	"leases/internal/obs/tracing"
	"leases/internal/proto"
	"leases/internal/vfs"
)

// This file is the server side of the paper's §4 scaling options: the
// installed-files lease class (one directory-granularity lease per
// client covering rarely-written data, renewed by a periodic O(1)
// broadcast and dropped on the first write) and the anticipatory
// extension piggybacked on replies. Both are negotiated through the
// proto.FeatClass hello bit; to a client that never advertised it the
// server's byte stream is identical to a pre-class server's.
//
// The class is a coverage layer ON TOP of per-file leases, not a
// replacement for the lease manager's records. The server never enters
// installed data into the manager; instead the classTable records, for
// every broadcast or snapshot it is ABOUT to send, the latest instant
// any client could believe itself covered (sentAt + term). A write
// touching installed data demotes it from the class — membership drops,
// the generation bumps so every holder's next broadcast stamp exposes
// the staleness — and then waits out that recorded horizon before
// taking the normal per-file clearance path. Recording before sending
// keeps the server's wait ≥ any client's belief, which is anchored at
// sentAt + term − ε; the scheme needs no per-client bookkeeping and no
// acknowledgement traffic, exactly the economy §4.3 is after.

// ClassConfig configures the lease-class subsystem. The zero value
// disables it entirely (and keeps the wire byte-identical to a server
// without the subsystem, since FeatClass is then not advertised).
type ClassConfig struct {
	// InstalledDirs statically installs every file under these directory
	// prefixes ("/bin", "/lib", ...) on first read — the operator's list
	// of installed, rarely-written subtrees (§4.3).
	InstalledDirs []string
	// AutoInstall additionally promotes any file read by
	// PromoteReaders distinct clients with no recent write — the
	// write-frequency heuristic for spotting installed-class data
	// outside the static list.
	AutoInstall bool
	// PromoteReaders is the distinct-reader threshold for AutoInstall.
	// Zero means 3.
	PromoteReaders int
	// QuietAfterWrite is how long after a write a file is ineligible for
	// (re-)promotion. Zero means InstalledTerm.
	QuietAfterWrite time.Duration
	// InstalledTerm is the term each broadcast extension grants the
	// whole class. Zero means 30s.
	InstalledTerm time.Duration
	// BroadcastEvery is the broadcast-extension period. Zero means
	// InstalledTerm/4.
	BroadcastEvery time.Duration
	// PiggybackLead enables anticipatory extension: whenever a reply is
	// flushed to a FeatClass client, leases of that client expiring
	// within this lead are re-granted in a TPiggyExt frame appended to
	// the same flush (§4). Zero disables piggybacking.
	PiggybackLead time.Duration
}

// installedEnabled reports whether the installed-files class itself is
// on; enabled reports whether any class feature (and hence FeatClass
// advertisement) is.
func (cc ClassConfig) installedEnabled() bool {
	return len(cc.InstalledDirs) > 0 || cc.AutoInstall
}

func (cc ClassConfig) enabled() bool {
	return cc.installedEnabled() || cc.PiggybackLead > 0
}

// classStatePath is the reserved replication key for class membership.
// It never exists in the vfs store; ApplyReplicated routes it to the
// class table so a failing-over master inherits the installed set and
// clients see only a generation bump, not a coverage gap.
const classStatePath = "/.lease-class-state"

// classTable is the installed-files class: membership, the coverage
// horizon, and the promotion heuristic's observations. It has its own
// mutex — class decisions span data on different manager shards, so no
// shard lock could cover them.
type classTable struct {
	cfg ClassConfig

	mu  sync.Mutex
	gen uint64
	// members maps each installed datum to its path (the replication
	// and admin representation; node IDs are not stable across
	// replicas).
	members map[vfs.Datum]string
	// coverUntil is the latest instant any client could believe any
	// member covered: maxed with sentAt+term BEFORE every broadcast or
	// snapshot leaves the server.
	coverUntil time.Time
	// demoted records, per recently demoted datum, the coverage horizon
	// a write must wait out. Entries are dropped once they pass.
	demoted map[vfs.Datum]time.Time
	// readers and lastWrite feed the AutoInstall heuristic.
	readers   map[vfs.Datum]map[core.ClientID]struct{}
	lastWrite map[vfs.Datum]time.Time
}

func newClassTable(cfg ClassConfig) *classTable {
	for i, dir := range cfg.InstalledDirs {
		cfg.InstalledDirs[i] = strings.TrimRight(dir, "/")
	}
	return &classTable{
		cfg:       cfg,
		members:   make(map[vfs.Datum]string),
		demoted:   make(map[vfs.Datum]time.Time),
		readers:   make(map[vfs.Datum]map[core.ClientID]struct{}),
		lastWrite: make(map[vfs.Datum]time.Time),
	}
}

// staticPath reports whether path falls under a configured installed
// directory.
func (ct *classTable) staticPath(path string) bool {
	for _, dir := range ct.cfg.InstalledDirs {
		if dir == "" {
			// "/" normalizes to empty: the whole tree is installed.
			return true
		}
		if path == dir || strings.HasPrefix(path, dir+"/") {
			return true
		}
	}
	return false
}

// contains reports membership; safe on a nil table.
func (ct *classTable) contains(d vfs.Datum) bool {
	if ct == nil {
		return false
	}
	ct.mu.Lock()
	_, ok := ct.members[d]
	ct.mu.Unlock()
	return ok
}

// membersLocked snapshots the member set, sorted for a deterministic
// wire image.
func (ct *classTable) membersLocked() []vfs.Datum {
	out := make([]vfs.Datum, 0, len(ct.members))
	for d := range ct.members {
		out = append(out, d)
	}
	sortDatums(out)
	return out
}

// quiet returns the post-write promotion holdoff.
func (ct *classTable) quiet() time.Duration { return ct.cfg.QuietAfterWrite }

// observeReadLocked records one read for the promotion heuristic and
// reports whether d should be promoted into the class.
func (ct *classTable) observeReadLocked(d vfs.Datum, path string, client core.ClientID, now time.Time) bool {
	if _, ok := ct.members[d]; ok {
		return false
	}
	set := ct.readers[d]
	if set == nil {
		set = make(map[core.ClientID]struct{})
		ct.readers[d] = set
	}
	set[client] = struct{}{}
	if lw, ok := ct.lastWrite[d]; ok && now.Before(lw.Add(ct.quiet())) {
		return false
	}
	if ct.staticPath(path) {
		return true
	}
	return ct.cfg.AutoInstall && len(set) >= ct.cfg.PromoteReaders
}

// addMemberLocked installs d, re-checking eligibility (a write may have
// landed between the unlocked durability step and here). Reports
// whether membership actually changed.
func (ct *classTable) addMemberLocked(d vfs.Datum, path string, now time.Time) bool {
	if _, ok := ct.members[d]; ok {
		return false
	}
	if lw, ok := ct.lastWrite[d]; ok && now.Before(lw.Add(ct.quiet())) {
		return false
	}
	ct.members[d] = path
	ct.gen++
	return true
}

// demoteLocked is drop-on-write (§4.3): every datum in data leaves the
// class, and the returned deadline is the coverage horizon the write
// must wait out — the max over the data's recorded demotion horizons,
// including horizons left by earlier demotions that have not yet
// passed. It also feeds the heuristic (a write resets the reader set
// and stamps lastWrite). dropped lists the data that actually left the
// class.
func (ct *classTable) demoteLocked(data []vfs.Datum, now time.Time) (deadline time.Time, dropped []vfs.Datum) {
	for d, until := range ct.demoted {
		if !until.After(now) {
			delete(ct.demoted, d)
		}
	}
	for _, d := range data {
		ct.lastWrite[d] = now
		delete(ct.readers, d)
		if _, ok := ct.members[d]; ok {
			delete(ct.members, d)
			if ct.coverUntil.After(now) {
				ct.demoted[d] = ct.coverUntil
			}
			dropped = append(dropped, d)
		}
		if until, ok := ct.demoted[d]; ok && until.After(deadline) {
			deadline = until
		}
	}
	if len(dropped) > 0 {
		ct.gen++
	}
	return deadline, dropped
}

// encodeStateLocked serializes generation and membership (as kind+path
// pairs) for the classStatePath replication record.
func (ct *classTable) encodeStateLocked() []byte {
	var e proto.Enc
	e.U64(ct.gen).U32(uint32(len(ct.members)))
	// Sort by path for a deterministic image.
	paths := make([]string, 0, len(ct.members))
	byPath := make(map[string]vfs.Datum, len(ct.members))
	for d, p := range ct.members {
		key := p + "\x00" + string(rune(d.Kind))
		paths = append(paths, key)
		byPath[key] = d
	}
	sort.Strings(paths)
	for _, key := range paths {
		d := byPath[key]
		p := ct.members[d]
		e.U8(uint8(d.Kind)).Str(p)
	}
	return e.Bytes()
}

// classMemberState is one decoded membership entry.
type classMemberState struct {
	kind vfs.DatumKind
	path string
}

// decodeClassState parses an encodeStateLocked image.
func decodeClassState(b []byte) (gen uint64, entries []classMemberState, ok bool) {
	d := proto.NewDec(b)
	gen = d.U64()
	n := d.U32()
	if d.Err != nil || n > 1<<20 {
		return 0, nil, false
	}
	entries = make([]classMemberState, 0, n)
	for i := uint32(0); i < n; i++ {
		k := vfs.DatumKind(d.U8())
		p := d.Str()
		if d.Err != nil {
			return 0, nil, false
		}
		entries = append(entries, classMemberState{kind: k, path: p})
	}
	return gen, entries, true
}

// classTermDurable makes the installed term crash- and failover-safe
// BEFORE any coverage at that term is extended: the same durability
// ordering grant() observes, and a no-op after the first success.
func (s *Server) classTermDurable() error {
	term := s.cfg.Class.InstalledTerm
	if s.maxTermF != nil {
		if err := s.maxTermF.update(term); err != nil {
			return err
		}
	}
	return s.replicateTermRaise(term)
}

// classObserveRead feeds one served read to the promotion heuristic,
// installing the datum when it qualifies.
func (s *Server) classObserveRead(client core.ClientID, d vfs.Datum) {
	ct := s.classes
	if ct == nil {
		return
	}
	path, err := s.store.Path(d.Node)
	if err != nil {
		return
	}
	now := s.clk.Now()
	ct.mu.Lock()
	promote := ct.observeReadLocked(d, path, client, now)
	ct.mu.Unlock()
	if !promote {
		return
	}
	// Durability before coverage: the term must be recoverable before
	// the first broadcast could cover this datum.
	if err := s.classTermDurable(); err != nil {
		return
	}
	ct.mu.Lock()
	added := ct.addMemberLocked(d, path, s.clk.Now())
	var state []byte
	if added {
		state = ct.encodeStateLocked()
	}
	ct.mu.Unlock()
	if !added {
		return
	}
	if s.obs.Enabled() {
		s.obs.Record(obs.Event{Type: obs.EvClassPromote, Client: string(client), Datum: d})
	}
	s.replicateClassState(state)
}

// classAwaitWrite is the write-path hook: demote any installed data
// being written and wait out the recorded coverage horizon, so no
// client can still believe itself covered when the write applies. Runs
// before per-file clearance; re-granting per-file leases on the demoted
// data during the wait is fine — those go through the normal approval
// path.
func (s *Server) classAwaitWrite(data []vfs.Datum) error {
	ct := s.classes
	if ct == nil {
		return nil
	}
	now := s.clk.Now()
	ct.mu.Lock()
	deadline, dropped := ct.demoteLocked(data, now)
	var state []byte
	if len(dropped) > 0 {
		state = ct.encodeStateLocked()
	}
	ct.mu.Unlock()
	if len(dropped) > 0 {
		if s.obs.Enabled() {
			for _, d := range dropped {
				s.obs.Record(obs.Event{Type: obs.EvClassDemote, Datum: d, Shard: s.lm.ShardFor(d)})
			}
		}
		s.replicateClassState(state)
	}
	for {
		d := deadline.Sub(s.clk.Now())
		if deadline.IsZero() || d <= 0 {
			return nil
		}
		fire, stopTimer := s.clk.After(d)
		select {
		case <-fire:
		case <-s.stopped:
			stopTimer()
			return errShutdown
		}
	}
}

// installedSnapshot answers TInstalled: the current membership plus a
// covering extension, its horizon recorded before the reply can leave.
func (s *Server) installedSnapshot() proto.InstalledWire {
	ct := s.classes
	if ct == nil {
		return proto.InstalledWire{}
	}
	if err := s.classTermDurable(); err != nil {
		return proto.InstalledWire{}
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	w := proto.InstalledWire{Generation: ct.gen, Term: ct.cfg.InstalledTerm, SentAt: s.clk.Now()}
	if len(ct.members) > 0 {
		if until := w.SentAt.Add(w.Term); until.After(ct.coverUntil) {
			ct.coverUntil = until
		}
		w.Data = ct.membersLocked()
	}
	return w
}

// broadcastLoop periodically renews the whole installed class with one
// O(1) frame per connected FeatClass client — the §4.3 economy: the
// extension traffic is O(clients), independent of how many files each
// client caches.
func (s *Server) broadcastLoop() {
	defer s.wg.Done()
	for {
		fire, stopTimer := s.clk.After(s.cfg.Class.BroadcastEvery)
		select {
		case <-s.stopped:
			stopTimer()
			return
		case <-fire:
		}
		s.broadcastInstalled()
	}
}

// broadcastInstalled sends one broadcast-extension round. The coverage
// horizon is recorded before any frame is enqueued, and the encoded
// payload is shared read-only across all connections (AppendPayload
// copies into each coalescer).
func (s *Server) broadcastInstalled() {
	ct := s.classes
	if ct == nil || !s.serving() {
		return
	}
	if err := s.classTermDurable(); err != nil {
		return
	}
	ct.mu.Lock()
	if len(ct.members) == 0 {
		ct.mu.Unlock()
		return
	}
	w := proto.BroadcastExtWire{Generation: ct.gen, Term: ct.cfg.InstalledTerm, SentAt: s.clk.Now()}
	if until := w.SentAt.Add(w.Term); until.After(ct.coverUntil) {
		ct.coverUntil = until
	}
	ct.mu.Unlock()
	var e proto.Enc
	e.EncodeBroadcastExt(w)
	payload := e.Bytes()
	n := 0
	s.connMu.RLock()
	for _, hc := range s.conns {
		if hc.feats&proto.FeatClass != 0 {
			hc.pushFrame(proto.TBroadcastExt, payload)
			n++
		}
	}
	s.connMu.RUnlock()
	if n > 0 && s.obs.Enabled() {
		s.obs.Record(obs.Event{Type: obs.EvBroadcastExt, Depth: n, Term: w.Term})
	}
}

// replicateClassState pushes the membership image to the peers, best
// effort: unlike file writes, class state is a traffic optimization —
// failover SAFETY rests on the replicated installed term and the §2
// recovery window, so a failed push costs renewal traffic, never
// correctness.
func (s *Server) replicateClassState(state []byte) {
	s.replMu.Lock()
	seq := s.replSeq[classStatePath] + 1
	s.replSeq[classStatePath] = seq
	s.classRepl = state
	s.replMu.Unlock()
	if r := s.cfg.Replica; r != nil && r.IsMaster() {
		_ = r.ReplicateWrite(tracing.Context{}, classStatePath, seq, state)
	}
}

// rebindClassState rebuilds membership from the replicated image during
// promotion: paths become local node IDs (IDs are not stable across
// replicas), missing paths drop out, and the generation bumps past the
// image's so every client refetches against this incarnation. The
// coverage horizon resets — this master has extended nothing yet, and
// the predecessor's outstanding coverage is bounded by the replicated
// installed term, which the recovery window already waits out.
func (s *Server) rebindClassState() {
	ct := s.classes
	if ct == nil {
		return
	}
	s.replMu.Lock()
	state := s.classRepl
	s.replMu.Unlock()
	if len(state) == 0 {
		return
	}
	gen, entries, ok := decodeClassState(state)
	if !ok {
		return
	}
	members := make(map[vfs.Datum]string, len(entries))
	for _, ent := range entries {
		attr, err := s.store.Lookup(ent.path)
		if err != nil {
			continue
		}
		members[vfs.Datum{Kind: ent.kind, Node: attr.ID}] = ent.path
	}
	ct.mu.Lock()
	if gen < ct.gen {
		gen = ct.gen
	}
	ct.gen = gen + 1
	ct.members = members
	ct.coverUntil = time.Time{}
	ct.mu.Unlock()
}

// ClassInfo is the admin plane's view of the installed class.
type ClassInfo struct {
	Generation uint64        `json:"generation"`
	Term       time.Duration `json:"term"`
	Members    []ClassMember `json:"members"`
	Demoted    int           `json:"demoted_pending"`
	CoverUntil time.Time     `json:"cover_until"`
}

// ClassMember is one installed datum with its path.
type ClassMember struct {
	Path string `json:"path"`
	Kind uint8  `json:"kind"`
	Node uint64 `json:"node"`
}

// ClassSnapshot reports the installed class for the admin plane; ok is
// false when the class is disabled.
func (s *Server) ClassSnapshot() (ClassInfo, bool) {
	ct := s.classes
	if ct == nil {
		return ClassInfo{}, false
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	info := ClassInfo{
		Generation: ct.gen,
		Term:       ct.cfg.InstalledTerm,
		Demoted:    len(ct.demoted),
		CoverUntil: ct.coverUntil,
	}
	for d, p := range ct.members {
		info.Members = append(info.Members, ClassMember{Path: p, Kind: uint8(d.Kind), Node: uint64(d.Node)})
	}
	sort.Slice(info.Members, func(i, j int) bool { return info.Members[i].Path < info.Members[j].Path })
	return info, true
}

// accessPolicy couples an AccessStats estimator with the term policy it
// feeds under one mutex: AdaptiveTerm.Term mutates the estimator's
// sliding windows, so observations and term decisions must not
// interleave.
type accessPolicy struct {
	mu    sync.Mutex
	stats *core.AccessStats
	inner core.TermPolicy
}

// Term implements core.TermPolicy.
func (p *accessPolicy) Term(d vfs.Datum, client core.ClientID, now time.Time) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inner.Term(d, client, now)
}

func (p *accessPolicy) observeRead(d vfs.Datum, client core.ClientID, now time.Time) {
	p.mu.Lock()
	p.stats.ObserveRead(d, client, now)
	p.mu.Unlock()
}

func (p *accessPolicy) observeWrite(d vfs.Datum, now time.Time) {
	p.mu.Lock()
	p.stats.ObserveWrite(d, now)
	p.mu.Unlock()
}

// observeRead/observeWrite feed the adaptive-term estimator when one is
// configured; a branch and nothing else otherwise.
func (s *Server) observeRead(client core.ClientID, d vfs.Datum) {
	if s.access != nil {
		s.access.observeRead(d, client, s.clk.Now())
	}
}

func (s *Server) observeWrite(d vfs.Datum) {
	if s.access != nil {
		s.access.observeWrite(d, s.clk.Now())
	}
}

func sortDatums(data []vfs.Datum) {
	sort.Slice(data, func(i, j int) bool {
		if data[i].Kind != data[j].Kind {
			return data[i].Kind < data[j].Kind
		}
		return data[i].Node < data[j].Node
	})
}
