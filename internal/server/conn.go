package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"leases/internal/core"
	"leases/internal/obs"
	"leases/internal/obs/tracing"
	"leases/internal/proto"
	"leases/internal/vfs"
)

// serverSpanNames precomputes per-request span names so a traced
// dispatch never builds a string on the hot path.
var serverSpanNames = func() map[proto.MsgType]string {
	m := make(map[proto.MsgType]string)
	for _, t := range []proto.MsgType{
		proto.TLookup, proto.TRead, proto.TWrite, proto.TExtend,
		proto.TRelease, proto.TReadDir, proto.TStat, proto.TCreate,
		proto.TMkdir, proto.TRemove, proto.TRename, proto.TSetPerm,
	} {
		m[t] = "server." + t.String()
	}
	return m
}()

func serverSpanName(t proto.MsgType) string {
	if n, ok := serverSpanNames[t]; ok {
		return n
	}
	return "server.op"
}

// serverConn is one client connection. All outbound frames — replies
// from request goroutines and unsolicited approval pushes — funnel
// through the write coalescer, which batches whatever accumulates
// while a flush syscall is in flight into the next one. Handlers never
// touch the transport directly.
type serverConn struct {
	srv    *Server
	nc     net.Conn
	co     *proto.Coalescer
	client core.ClientID
	closed sync.Once
	// feats is the feature mask in force on this connection: the bits
	// both the client's hello and this server advertised. Class frames
	// are only ever sent when FeatClass is set here, so a pre-class
	// client's byte stream is untouched.
	feats uint64
	// pushes feeds the connection's push sender: one long-lived
	// goroutine appends pushes (approval requests, broadcast
	// extensions, piggybacked grants) to the coalescer in arrival
	// order, so a coalescer stalled on backpressure blocks that one
	// goroutine instead of accumulating one per push. serveConn closes
	// the channel after deregistering the conn (pushApproval/pushFrame
	// are only reached through s.conns under connMu, which serializes
	// against the deregistration), so a send never races the close.
	pushes chan connPush

	// piggy tracks this client's per-file lease expiries for
	// anticipatory extension: nil unless PiggybackLead is configured
	// and the client negotiated FeatClass. piggyNext caches the
	// earliest expiry so the common reply pays one time comparison.
	piggyMu   sync.Mutex
	piggy     map[vfs.Datum]time.Time
	piggyNext time.Time
}

// connPush is one queued unsolicited frame: an approval request, or a
// pre-encoded payload (broadcast extension) shared read-only across
// connections.
type connPush struct {
	t        proto.MsgType
	approval proto.ApprovalWire
	payload  []byte
}

// pushQueue bounds the per-connection approval push queue; see
// pushApproval for the overflow policy.
const pushQueue = 1024

func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.raw, nc)
		s.connMu.Unlock()
	}()
	c := &serverConn{srv: s, nc: nc}
	c.co = proto.NewCoalescer(nc)
	c.co.Stats = s.wire
	if s.obs.Enabled() {
		c.co.OnFlush = s.obs.ObserveFlush
		c.co.OnStall = func(depth int) {
			s.obs.Record(obs.Event{
				Type: obs.EvQueueFull, Client: string(c.client), Depth: depth,
			})
		}
	}
	// A failed flush closes the transport so the read loop notices; the
	// hook must not Close the coalescer itself (it runs under the flush
	// leadership Close waits out).
	c.co.OnError = func(error) { c.close() }
	// Defer order (LIFO): the coalescer drains pending replies while the
	// conn is still open, then the conn closes.
	defer c.close()
	defer c.co.Close()
	c.pushes = make(chan connPush, pushQueue)
	var pushWG sync.WaitGroup
	pushWG.Add(1)
	go func() {
		defer pushWG.Done()
		for p := range c.pushes {
			// A false Append means the coalescer is dead: keep draining
			// so close never races a blocked sender.
			if p.t == proto.TApprovalReq {
				a := p.approval
				c.co.Append(proto.TApprovalReq, 0, func(e *proto.Enc) { e.EncodeApproval(a) })
			} else {
				c.co.AppendPayload(p.t, 0, p.payload)
			}
		}
	}()
	// LIFO: the queue closes before the coalescer does, so queued pushes
	// still reach the final flush; it closes after the conns-map
	// deregistration (deferred below, post-hello), so no pushApproval
	// can be sending concurrently.
	defer pushWG.Wait()
	defer close(c.pushes)
	// The frame reader pulls whole batches per read syscall — a
	// pipelined client's burst decodes from one fill — and its grown
	// buffer is recycled across connections.
	fr := proto.GetReader(nc)
	fr.Stats = s.wire
	defer proto.PutReader(fr)

	// The first frame must be THello, identifying the client for lease
	// records and approval pushes.
	f, err := fr.Next()
	if err != nil || f.Type != proto.THello {
		return
	}
	d := proto.NewDec(f.Payload)
	id := core.ClientID(d.Str())
	if d.Err != nil || id == "" {
		c.fail(f.ReqID, fmt.Errorf("bad hello"))
		return
	}
	// Optional trailing feature bits (absent from pre-feature clients:
	// an empty remainder decodes as "no features"). A capability is in
	// force only when both sides advertise it.
	var clientFeats uint64
	if d.Remaining() >= 8 {
		clientFeats = d.U64()
	}
	c.feats = clientFeats & s.features
	// A replica that does not hold the master lease — or holds it but
	// has not finished promoting (catch-up sync + recovery window; see
	// Server.serving) — refuses the session outright, carrying its
	// master belief as a redirect hint; the conn then closes (the
	// deferred coalescer Close drains the reply) and the client's
	// failover logic redials toward the hinted replica, retrying here
	// once promotion completes.
	if r := s.cfg.Replica; r != nil && (!r.IsMaster() || !s.serving()) {
		hint := int64(r.MasterIndex())
		c.replyEnc(f.ReqID, proto.TNotMaster, func(e *proto.Enc) { e.I64(hint) })
		f.Recycle()
		return
	}
	c.client = id
	s.connMu.Lock()
	if old, ok := s.conns[id]; ok {
		old.close()
	}
	s.conns[id] = c
	s.connMu.Unlock()
	// The hello is idempotent: a re-hello with the same ID (a client
	// session reconnecting) replaces the dead conn while the client's
	// lease records — keyed by ID, not connection — survive untouched.
	// The ack carries the server's boot ID so the client can tell a
	// restart from a transient fault, then the server's feature bits:
	// advertising FeatTrace invites the client to stamp sampled
	// requests with trace headers (pre-feature clients ignore the
	// trailing bytes).
	c.replyEnc(f.ReqID, proto.THelloAck, func(e *proto.Enc) { e.U64(s.boot).U64(s.features) })
	f.Recycle()
	if s.cfg.Class.PiggybackLead > 0 && c.feats&proto.FeatClass != 0 {
		c.piggy = make(map[vfs.Datum]time.Time)
	}

	defer func() {
		s.connMu.Lock()
		if s.conns[id] == c {
			delete(s.conns, id)
		}
		s.connMu.Unlock()
	}()

	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		f, err := fr.Next()
		if err != nil {
			return
		}
		if f.Type == proto.TApprove {
			// Pushes are handled inline: cheap, never blocking.
			c.handleApprove(f)
			f.Recycle()
			continue
		}
		// Each request runs in its own goroutine so a deferred write
		// blocks only itself. f is freshly declared each iteration.
		// Handlers decode with copying Dec methods, so the frame buffer
		// can be recycled once dispatch returns.
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			defer f.Recycle()
			c.dispatchTimed(f)
		}()
	}
}

func (c *serverConn) close() {
	c.closed.Do(func() { c.nc.Close() })
}

// reply enqueues a pre-encoded reply. A false Append means the
// connection already failed; the frame is dropped, exactly as a write
// against the dead socket would have been.
func (c *serverConn) reply(reqID uint64, t proto.MsgType, payload []byte) {
	c.co.AppendPayload(t, reqID, payload)
}

// replyEnc encodes a reply directly into the coalescer's pending
// buffer: fill appends the payload in place, so the frame costs no
// intermediate Enc allocation and no copy between encode and flush.
func (c *serverConn) replyEnc(reqID uint64, t proto.MsgType, fill func(*proto.Enc)) {
	c.co.Append(t, reqID, fill)
}

// pushApproval sends an unsolicited approval request. Callers may hold
// s.connMu, and Append can block on coalescer backpressure, so the
// enqueue hands the push to the connection's sender goroutine without
// blocking: if the queue is full behind a stalled coalescer the push
// is dropped — the deferred write then waits out the holder's lease
// term, the protocol's fault path (§2) — rather than holding a server
// lock across the stall or spawning an unbounded goroutine per push.
func (c *serverConn) pushApproval(a proto.ApprovalWire) {
	c.push(connPush{t: proto.TApprovalReq, approval: a})
}

// pushFrame enqueues a pre-encoded unsolicited frame (a broadcast
// extension); payload is shared read-only across connections and
// copied into the coalescer by the sender.
func (c *serverConn) pushFrame(t proto.MsgType, payload []byte) {
	c.push(connPush{t: t, payload: payload})
}

func (c *serverConn) push(p connPush) {
	select {
	case c.pushes <- p:
	default:
		if s := c.srv; s.obs.Enabled() {
			s.obs.Record(obs.Event{
				Type: obs.EvQueueFull, Client: string(c.client), Depth: pushQueue,
			})
		}
	}
}

func (c *serverConn) fail(reqID uint64, err error) {
	msg := err.Error()
	c.replyEnc(reqID, proto.TError, func(e *proto.Enc) { e.Str(msg) })
}

// dispatchTimed wraps dispatch with the server-side op latency
// histogram: decode through reply, including any write deferral — what
// a client would see minus the network. It exists as a method (rather
// than inline in the request goroutine) so the disabled path does not
// grow the goroutine closure. A frame carrying a sampled trace context
// gets a dispatch span covering the same extent; its context parents
// the approval fan-out, apply, and replication spans downstream.
func (c *serverConn) dispatchTimed(f proto.Frame) {
	s := c.srv
	var sp tracing.Span
	if f.Trace.Valid() {
		sp = s.tracer.StartChild(f.Trace, serverSpanName(f.Type))
	}
	if o := s.obs; o.Enabled() {
		start := s.clk.Now()
		c.dispatch(f, sp.Context())
		o.ObserveOp(f.Type.String(), s.clk.Now().Sub(start))
	} else {
		c.dispatch(f, sp.Context())
	}
	// Anticipatory extension rides the reply's flush (§4): free while
	// the coalescer's write is in flight, and the client's extension
	// request never happens.
	c.maybePiggyback()
	sp.End()
}

func (c *serverConn) dispatch(f proto.Frame, tc tracing.Context) {
	switch f.Type {
	case proto.TLookup:
		c.handleLookup(f)
	case proto.TRead:
		c.handleRead(f)
	case proto.TWrite:
		c.handleWrite(f, tc)
	case proto.TExtend:
		c.handleExtend(f)
	case proto.TRelease:
		c.handleRelease(f)
	case proto.TReadDir:
		c.handleReadDir(f)
	case proto.TStat:
		c.handleStat(f)
	case proto.TCreate:
		c.handleCreate(f, false, tc)
	case proto.TMkdir:
		c.handleCreate(f, true, tc)
	case proto.TRemove:
		c.handleRemove(f, tc)
	case proto.TRename:
		c.handleRename(f, tc)
	case proto.TSetPerm:
		c.handleSetPerm(f, tc)
	case proto.TInstalled:
		c.handleInstalled(f)
	case proto.TRing:
		c.handleRing(f)
	case proto.TShardPrepare:
		c.handleShardPrepare(f, tc)
	case proto.TShardCommit:
		c.handleShardCommit(f, tc)
	case proto.TShardAbort:
		c.handleShardAbort(f)
	default:
		c.fail(f.ReqID, fmt.Errorf("server: unknown message type %d", f.Type))
	}
}

// grant grants a lease on d and packages it for the wire, recording the
// trace event as et (EvGrant for first-contact grants, EvExtend for
// batch extensions). The sharded manager locks d's stripe internally.
func (c *serverConn) grant(d vfs.Datum, et obs.EventType) proto.GrantWire {
	s := c.srv
	g := s.lm.Grant(c.client, d, s.clk.Now())
	if g.Leased && s.maxTermF != nil {
		// Durability ordering: the recovery window must cover this term
		// before any client holds it. The update is a no-op unless the
		// term exceeds every term ever persisted, so steady state pays
		// one comparison, not an fsync. If persistence fails, withdraw
		// the lease — the client may still use the reply's data once,
		// it just cannot cache it — rather than risk a post-crash
		// window shorter than an outstanding lease.
		if err := s.maxTermF.update(g.Term); err != nil {
			s.lm.Release(c.client, []vfs.Datum{d}, s.clk.Now())
			g = core.Grant{Datum: d}
		}
	}
	if g.Leased {
		// Same ordering discipline at the replication layer: a quorum
		// must know the new maximum term before any client holds a
		// lease that long, or a failing-over master could compute too
		// short a recovery window. No-op for standalone servers and for
		// terms already covered by a replicated raise.
		if err := s.replicateTermRaise(g.Term); err != nil {
			s.lm.Release(c.client, []vfs.Datum{d}, s.clk.Now())
			g = core.Grant{Datum: d}
		}
	}
	if s.obs.Enabled() {
		// Term zero marks a refusal (write pending / zero policy).
		s.obs.Record(obs.Event{
			Type: et, Client: string(c.client), Datum: d,
			Shard: s.lm.ShardFor(d), Term: g.Term,
		})
	}
	version, err := s.store.Version(d)
	if err != nil {
		version = 0
	}
	if g.Leased && c.piggy != nil && g.Term < core.Infinite {
		c.notePiggyLease(d, s.clk.Now().Add(g.Term))
	}
	return proto.GrantWire{Datum: d, Term: g.Term, Version: version, Leased: g.Leased}
}

// notePiggyLease records (or refreshes) a granted lease's expiry for
// the anticipatory-extension scan.
func (c *serverConn) notePiggyLease(d vfs.Datum, expiry time.Time) {
	c.piggyMu.Lock()
	c.piggy[d] = expiry
	if c.piggyNext.IsZero() || expiry.Before(c.piggyNext) {
		c.piggyNext = expiry
	}
	c.piggyMu.Unlock()
}

// dropPiggy forgets a lease the client released or approved away. The
// cached earliest-expiry hint may go stale-early; the next scan
// recomputes it.
func (c *serverConn) dropPiggy(d vfs.Datum) {
	if c.piggy == nil {
		return
	}
	c.piggyMu.Lock()
	delete(c.piggy, d)
	c.piggyMu.Unlock()
}

// piggyBatchMax caps one piggybacked frame's grant list; anything left
// over goes out with the next reply.
const piggyBatchMax = 128

// maybePiggyback appends a TPiggyExt frame re-granting this client's
// soon-expiring leases to the flush the current reply rides (§4's
// anticipatory extension). Installed-class members are skipped — the
// broadcast renews them — and a refused re-grant drops the lease from
// the scan (the client's copy just expires). Runs on the request
// goroutine after the reply is appended, so the grants share its
// flush.
func (c *serverConn) maybePiggyback() {
	if c.piggy == nil {
		return
	}
	s := c.srv
	now := s.clk.Now()
	horizon := now.Add(s.cfg.Class.PiggybackLead)
	c.piggyMu.Lock()
	if c.piggyNext.IsZero() || c.piggyNext.After(horizon) {
		c.piggyMu.Unlock()
		return
	}
	var due []vfs.Datum
	next := time.Time{}
	for d, exp := range c.piggy {
		if !exp.After(horizon) {
			due = append(due, d)
		} else if next.IsZero() || exp.Before(next) {
			next = exp
		}
	}
	if len(due) > piggyBatchMax {
		due = due[:piggyBatchMax]
		next = now // leftovers go with the next reply
	}
	c.piggyNext = next
	c.piggyMu.Unlock()
	if len(due) == 0 {
		return
	}
	sortDatums(due)
	grants := make([]proto.GrantWire, 0, len(due))
	for _, d := range due {
		if s.classes.contains(d) {
			c.dropPiggy(d)
			continue
		}
		g := c.grant(d, obs.EvExtend)
		if !g.Leased {
			c.dropPiggy(d)
			continue
		}
		grants = append(grants, g)
	}
	if len(grants) == 0 {
		return
	}
	w := proto.PiggyExtWire{SentAt: now, Grants: grants}
	c.co.Append(proto.TPiggyExt, 0, func(e *proto.Enc) { e.EncodePiggyExt(w) })
	if s.obs.Enabled() {
		s.obs.Record(obs.Event{Type: obs.EvPiggyExt, Client: string(c.client), Depth: len(grants)})
	}
}

// handleInstalled answers a TInstalled class-snapshot fetch. A server
// with the installed class disabled (piggyback-only FeatClass) answers
// the empty snapshot.
func (c *serverConn) handleInstalled(f proto.Frame) {
	d := proto.NewDec(f.Payload)
	_ = d.U64() // the client's current generation; reserved
	w := c.srv.installedSnapshot()
	c.replyEnc(f.ReqID, proto.TInstalledRep, func(e *proto.Enc) { e.EncodeInstalled(w) })
}

func (c *serverConn) handleLookup(f proto.Frame) {
	d := proto.NewDec(f.Payload)
	path := d.Str()
	if d.Err != nil {
		c.fail(f.ReqID, d.Err)
		return
	}
	if !c.checkOwner(f.ReqID, path) {
		return
	}
	s := c.srv
	attr, err := s.store.Lookup(path)
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	// Grant a lease on the parent directory's binding so the client can
	// repeat this open locally (§2: the cache "must also hold the
	// name-to-file binding and permission information, and it needs a
	// lease over this information").
	parentAttr, err := s.store.Lookup(parentOf(path))
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	parentDatum := vfs.Datum{Kind: vfs.DirBinding, Node: parentAttr.ID}
	grants := []proto.GrantWire{c.grant(parentDatum, obs.EvGrant)}
	s.observeRead(c.client, parentDatum)
	s.classObserveRead(c.client, parentDatum)

	c.replyEnc(f.ReqID, proto.TLookupRep, func(e *proto.Enc) {
		e.Attr(attr).U64(uint64(parentAttr.ID)).EncodeGrants(grants)
	})
}

func (c *serverConn) handleRead(f proto.Frame) {
	d := proto.NewDec(f.Payload)
	node := vfs.NodeID(d.U64())
	if d.Err != nil {
		c.fail(f.ReqID, d.Err)
		return
	}
	s := c.srv
	if err := s.store.CheckAccess(node, string(c.client), false); err != nil {
		c.fail(f.ReqID, err)
		return
	}
	data, attr, err := s.store.ReadFile(node)
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	readDatum := vfs.Datum{Kind: vfs.FileData, Node: node}
	grant := c.grant(readDatum, obs.EvGrant)
	s.observeRead(c.client, readDatum)
	s.classObserveRead(c.client, readDatum)
	// Re-read under the granted version if a write slipped between the
	// read and the grant, so data and version always agree.
	if grant.Version != attr.Version {
		data, attr, err = s.store.ReadFile(node)
		if err != nil {
			c.fail(f.ReqID, err)
			return
		}
		grant.Version = attr.Version
	}
	c.replyEnc(f.ReqID, proto.TReadRep, func(e *proto.Enc) {
		e.Attr(attr).EncodeGrants([]proto.GrantWire{grant}).Blob(data)
	})
}

func (c *serverConn) handleWrite(f proto.Frame, tc tracing.Context) {
	dec := proto.NewDec(f.Payload)
	node := vfs.NodeID(dec.U64())
	data := dec.Blob()
	if dec.Err != nil {
		c.fail(f.ReqID, dec.Err)
		return
	}
	s := c.srv
	if err := s.store.CheckAccess(node, string(c.client), true); err != nil {
		c.fail(f.ReqID, err)
		return
	}
	var attr vfs.Attr
	err := s.acquireClearance(c.client, []vfs.Datum{{Kind: vfs.FileData, Node: node}}, tc, func() error {
		// Replicate-before-apply: a quorum of replicas must hold the
		// write before the local store does, so nothing a reader can
		// observe at this master is ever lost to a failover.
		if rerr := s.replicateFile(node, data, tc); rerr != nil {
			return rerr
		}
		var werr error
		attr, _, werr = s.store.WriteFile(node, data)
		return werr
	})
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	c.replyEnc(f.ReqID, proto.TWriteRep, func(e *proto.Enc) { e.Attr(attr) })
}

func (c *serverConn) handleExtend(f proto.Frame) {
	dec := proto.NewDec(f.Payload)
	n := dec.U32()
	if dec.Err != nil || n > 1<<16 {
		c.fail(f.ReqID, proto.ErrTruncated)
		return
	}
	data := make([]vfs.Datum, 0, n)
	for i := uint32(0); i < n; i++ {
		data = append(data, dec.Datum())
	}
	if dec.Err != nil {
		c.fail(f.ReqID, dec.Err)
		return
	}
	grants := make([]proto.GrantWire, 0, len(data))
	for _, d := range data {
		grants = append(grants, c.grant(d, obs.EvExtend))
	}
	c.replyEnc(f.ReqID, proto.TExtendRep, func(e *proto.Enc) { e.EncodeGrants(grants) })
}

func (c *serverConn) handleRelease(f proto.Frame) {
	dec := proto.NewDec(f.Payload)
	n := dec.U32()
	if dec.Err != nil || n > 1<<16 {
		c.fail(f.ReqID, proto.ErrTruncated)
		return
	}
	data := make([]vfs.Datum, 0, n)
	for i := uint32(0); i < n; i++ {
		data = append(data, dec.Datum())
	}
	if dec.Err != nil {
		c.fail(f.ReqID, dec.Err)
		return
	}
	s := c.srv
	s.lm.Release(c.client, data, s.clk.Now())
	for _, d := range data {
		c.dropPiggy(d)
	}
	// A released lease may have been the last blocker on a deferred
	// write; re-check each touched shard.
	touched := make(map[int]struct{}, len(data))
	for _, d := range data {
		touched[s.lm.ShardFor(d)] = struct{}{}
	}
	for shard := range touched {
		s.releaseReady(shard)
		s.wake(shard)
	}
	c.reply(f.ReqID, proto.TOK, nil)
}

func (c *serverConn) handleReadDir(f proto.Frame) {
	dec := proto.NewDec(f.Payload)
	node := vfs.NodeID(dec.U64())
	if dec.Err != nil {
		c.fail(f.ReqID, dec.Err)
		return
	}
	s := c.srv
	entries, attr, err := s.store.ReadDir(node)
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	dirDatum := vfs.Datum{Kind: vfs.DirBinding, Node: node}
	grant := c.grant(dirDatum, obs.EvGrant)
	s.observeRead(c.client, dirDatum)
	s.classObserveRead(c.client, dirDatum)
	c.replyEnc(f.ReqID, proto.TReadDirRep, func(e *proto.Enc) {
		e.Attr(attr).EncodeGrants([]proto.GrantWire{grant}).U32(uint32(len(entries)))
		for _, ent := range entries {
			e.Str(ent.Name).U64(uint64(ent.ID))
			if ent.IsDir {
				e.U8(1)
			} else {
				e.U8(0)
			}
		}
	})
}

func (c *serverConn) handleStat(f proto.Frame) {
	dec := proto.NewDec(f.Payload)
	node := vfs.NodeID(dec.U64())
	if dec.Err != nil {
		c.fail(f.ReqID, dec.Err)
		return
	}
	attr, err := c.srv.store.Stat(node)
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	c.replyEnc(f.ReqID, proto.TStatRep, func(e *proto.Enc) { e.Attr(attr) })
}

// handleCreate covers TCreate (files) and TMkdir (directories): a write
// to the parent directory's binding datum.
func (c *serverConn) handleCreate(f proto.Frame, dir bool, tc tracing.Context) {
	dec := proto.NewDec(f.Payload)
	path := dec.Str()
	perm := vfs.Perm(dec.U8())
	if dec.Err != nil {
		c.fail(f.ReqID, dec.Err)
		return
	}
	// Directories are the namespace skeleton, not sharded data: files
	// under one directory hash across every group, so the directory must
	// exist on all of them (the Router mkdirs group-wide) and only file
	// creation is ownership-gated.
	if !dir && !c.checkOwner(f.ReqID, path) {
		return
	}
	s := c.srv
	parentAttr, err := s.store.Lookup(parentOf(path))
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	var attr vfs.Attr
	err = s.acquireClearance(c.client, []vfs.Datum{{Kind: vfs.DirBinding, Node: parentAttr.ID}}, tc, func() error {
		var cerr error
		if dir {
			attr, cerr = s.store.Mkdir(path, string(c.client), perm)
		} else {
			attr, cerr = s.store.Create(path, string(c.client), perm)
		}
		return cerr
	})
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	c.replyEnc(f.ReqID, proto.TCreateRep, func(e *proto.Enc) { e.Attr(attr) })
}

func (c *serverConn) handleRemove(f proto.Frame, tc tracing.Context) {
	dec := proto.NewDec(f.Payload)
	path := dec.Str()
	if dec.Err != nil {
		c.fail(f.ReqID, dec.Err)
		return
	}
	if !c.checkOwner(f.ReqID, path) {
		return
	}
	s := c.srv
	attr, err := s.store.Lookup(path)
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	parentAttr, err := s.store.Lookup(parentOf(path))
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	kind := vfs.FileData
	if attr.IsDir {
		kind = vfs.DirBinding
	}
	data := []vfs.Datum{
		{Kind: kind, Node: attr.ID},
		{Kind: vfs.DirBinding, Node: parentAttr.ID},
	}
	err = s.acquireClearance(c.client, data, tc, func() error {
		_, rerr := s.store.Remove(path)
		return rerr
	})
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	c.reply(f.ReqID, proto.TOK, nil)
}

func (c *serverConn) handleRename(f proto.Frame, tc tracing.Context) {
	dec := proto.NewDec(f.Payload)
	oldPath := dec.Str()
	newPath := dec.Str()
	if dec.Err != nil {
		c.fail(f.ReqID, dec.Err)
		return
	}
	// The rename is homed at the source shard; a destination that hashes
	// to another group runs the two-phase cross-shard protocol.
	if !c.checkOwner(f.ReqID, oldPath) {
		return
	}
	s := c.srv
	if ring := s.cfg.Shard.Ring; ring != nil {
		if dest := ring.Lookup(newPath); dest != s.cfg.Shard.GroupID {
			c.crossShardRename(f, tc, oldPath, newPath, dest)
			return
		}
	}
	oldParent, err := s.store.Lookup(parentOf(oldPath))
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	newParent, err := s.store.Lookup(parentOf(newPath))
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	data := []vfs.Datum{{Kind: vfs.DirBinding, Node: oldParent.ID}}
	if newParent.ID != oldParent.ID {
		data = append(data, vfs.Datum{Kind: vfs.DirBinding, Node: newParent.ID})
	}
	err = s.acquireClearance(c.client, data, tc, func() error {
		_, rerr := s.store.Rename(oldPath, newPath)
		return rerr
	})
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	c.reply(f.ReqID, proto.TOK, nil)
}

// handleSetPerm changes ownership/permissions — per §2, attribute
// changes are writes to the parent's binding datum, so they defer on
// conflicting binding leases like a rename would.
func (c *serverConn) handleSetPerm(f proto.Frame, tc tracing.Context) {
	dec := proto.NewDec(f.Payload)
	node := vfs.NodeID(dec.U64())
	owner := dec.Str()
	perm := vfs.Perm(dec.U8())
	if dec.Err != nil {
		c.fail(f.ReqID, dec.Err)
		return
	}
	s := c.srv
	attr, err := s.store.Stat(node)
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	// Only the current owner may change attributes.
	if attr.Owner != string(c.client) {
		c.fail(f.ReqID, vfs.ErrPerm)
		return
	}
	path, err := s.store.Path(node)
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	parentAttr, err := s.store.Lookup(parentOf(path))
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	err = s.acquireClearance(c.client, []vfs.Datum{{Kind: vfs.DirBinding, Node: parentAttr.ID}}, tc, func() error {
		_, perr := s.store.SetPerm(node, owner, perm)
		return perr
	})
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	c.reply(f.ReqID, proto.TOK, nil)
}

func (c *serverConn) handleApprove(f proto.Frame) {
	a := proto.NewDec(f.Payload).DecodeApproval()
	s := c.srv
	ready := s.lm.Approve(c.client, a.WriteID, s.clk.Now())
	// An approval means the holder invalidated its copy; stop
	// anticipatorily extending it.
	c.dropPiggy(a.Datum)
	if s.tracer.Enabled() {
		s.endApprovalSpan(a.WriteID, c.client, "approve")
	}
	if s.obs.Enabled() {
		shard := s.lm.ShardForWrite(a.WriteID)
		s.obs.Record(obs.Event{
			Type: obs.EvApprove, Client: string(c.client), Datum: a.Datum,
			Shard: shard, WriteID: uint64(a.WriteID),
		})
		// An approval means the holder invalidated its cached copy and
		// the server dropped its lease record: an eviction.
		s.obs.Record(obs.Event{
			Type: obs.EvEviction, Client: string(c.client), Datum: a.Datum,
			Shard: shard, WriteID: uint64(a.WriteID),
		})
	}
	if ready {
		shard := s.lm.ShardForWrite(a.WriteID)
		s.releaseReady(shard)
		s.wake(shard)
	}
}

var errBadRequest = errors.New("server: bad request")
