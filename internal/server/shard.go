package server

import (
	"fmt"
	"net"
	"time"

	"leases/internal/obs"
	"leases/internal/obs/tracing"
	"leases/internal/proto"
	"leases/internal/shard"
	"leases/internal/vfs"
)

// ShardConfig places a server in a sharded deployment: the consistent-
// hash ring mapping paths to replica groups, and which group this
// server belongs to. The zero value (nil Ring) is an unsharded server,
// byte-for-byte the old behavior: FeatShard is not advertised and no
// ownership checks run.
type ShardConfig struct {
	// GroupID is this server's replica group on the ring.
	GroupID int
	// Ring is the ownership snapshot this server serves. Cross-shard
	// prepares fence on its epoch; NOT_OWNER redirects carry it.
	Ring *shard.Ring
}

func (sc ShardConfig) enabled() bool { return sc.Ring != nil }

// checkOwner gates a path-carrying request on ring ownership: an
// unsharded server owns everything; a sharded one refuses paths that
// hash to another group with TNotOwner carrying the owning group's ID
// and this server's ring epoch — the sharded analogue of the
// replicated deployment's TNotMaster steering.
func (c *serverConn) checkOwner(reqID uint64, path string) bool {
	s := c.srv
	ring := s.cfg.Shard.Ring
	if ring == nil {
		return true
	}
	owner := ring.Lookup(path)
	if owner == s.cfg.Shard.GroupID {
		return true
	}
	if s.obs.Enabled() {
		s.obs.Record(obs.Event{Type: obs.EvNotOwner, Client: string(c.client), Depth: owner})
	}
	// The structured redirect is feature-gated like the class frames: a
	// client that never advertised FeatShard gets a plain error it can
	// decode instead of a frame type it has never heard of.
	if c.feats&proto.FeatShard == 0 {
		c.fail(reqID, fmt.Errorf("server: not the owner of %s (group %d owns it)", path, owner))
		return false
	}
	c.replyEnc(reqID, proto.TNotOwner, func(e *proto.Enc) {
		e.U32(uint32(owner)).U64(ring.Epoch)
	})
	return false
}

// handleRing answers a routing-table fetch with the ring snapshot.
func (c *serverConn) handleRing(f proto.Frame) {
	ring := c.srv.cfg.Shard.Ring
	if ring == nil {
		c.fail(f.ReqID, fmt.Errorf("server: not sharded"))
		return
	}
	c.replyEnc(f.ReqID, proto.TRingRep, func(e *proto.Enc) { shard.Encode(e, ring) })
}

// stagedXfer is one cross-shard rename staged on this (destination)
// group: the file's bytes and attributes, held invisibly between
// prepare and commit. Expired entries are swept lazily — a source that
// died between its local commit and the commit push leaves the entry
// to age out.
type stagedXfer struct {
	data    []byte
	owner   string
	perm    vfs.Perm
	epoch   uint64
	expires time.Time
}

// stagedTTL bounds how long a prepared transfer may wait for its
// commit before the destination discards it.
func (s *Server) stagedTTL() time.Duration {
	ttl := 2*s.cfg.Term + 10*time.Second
	if s.cfg.WriteTimeout > 0 && s.cfg.WriteTimeout > ttl {
		ttl = s.cfg.WriteTimeout + 10*time.Second
	}
	return ttl
}

// sweepStaged drops expired staged transfers; callers hold stagedMu.
func (s *Server) sweepStagedLocked(now time.Time) {
	for p, st := range s.staged {
		if now.After(st.expires) {
			delete(s.staged, p)
		}
	}
}

// handleShardPrepare is the destination half of phase one: fence on
// the ring epoch, verify ownership of the destination path, obtain §2
// clearance on the destination parent's binding (any holder of a lease
// over that directory approves or expires first), then stage the file
// invisibly. Nothing a reader can observe changes until the commit.
func (c *serverConn) handleShardPrepare(f proto.Frame, tc tracing.Context) {
	s := c.srv
	dec := proto.NewDec(f.Payload)
	epoch := dec.U64()
	newPath := dec.Str()
	owner := dec.Str()
	perm := vfs.Perm(dec.U8())
	data := dec.Blob()
	if dec.Err != nil {
		c.fail(f.ReqID, dec.Err)
		return
	}
	ring := s.cfg.Shard.Ring
	if ring == nil {
		c.fail(f.ReqID, fmt.Errorf("server: not sharded"))
		return
	}
	if epoch != ring.Epoch {
		c.fail(f.ReqID, fmt.Errorf("shard: epoch mismatch (theirs %d, ours %d)", epoch, ring.Epoch))
		return
	}
	if !c.checkOwner(f.ReqID, newPath) {
		return
	}
	parentAttr, err := s.store.Lookup(parentOf(newPath))
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	err = s.acquireClearance(c.client, []vfs.Datum{{Kind: vfs.DirBinding, Node: parentAttr.ID}}, tc, func() error {
		if _, lerr := s.store.Lookup(newPath); lerr == nil {
			return fmt.Errorf("shard: destination %s exists", newPath)
		}
		now := s.clk.Now()
		s.stagedMu.Lock()
		s.sweepStagedLocked(now)
		s.staged[newPath] = &stagedXfer{
			data: append([]byte(nil), data...), owner: owner, perm: perm,
			epoch: epoch, expires: now.Add(s.stagedTTL()),
		}
		s.stagedMu.Unlock()
		return nil
	})
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	if s.obs.Enabled() {
		s.obs.Record(obs.Event{Type: obs.EvShardPrepare, Client: string(c.client)})
	}
	c.replyEnc(f.ReqID, proto.TShardPrepareRep, func(e *proto.Enc) { e.U64(ring.Epoch) })
}

// handleShardCommit makes a staged transfer visible: the source has
// committed its removal, so the file now exists here. Clearance on the
// destination parent binding is re-acquired — a lease granted on the
// directory between prepare and commit still gets its §2 approval
// round before the namespace changes under it.
func (c *serverConn) handleShardCommit(f proto.Frame, tc tracing.Context) {
	s := c.srv
	dec := proto.NewDec(f.Payload)
	epoch := dec.U64()
	newPath := dec.Str()
	if dec.Err != nil {
		c.fail(f.ReqID, dec.Err)
		return
	}
	s.stagedMu.Lock()
	st, ok := s.staged[newPath]
	if ok && (st.epoch != epoch || s.clk.Now().After(st.expires)) {
		ok = false
	}
	if ok {
		delete(s.staged, newPath)
	}
	s.stagedMu.Unlock()
	if !ok {
		c.fail(f.ReqID, fmt.Errorf("shard: no staged transfer for %s at epoch %d", newPath, epoch))
		return
	}
	parentAttr, err := s.store.Lookup(parentOf(newPath))
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	err = s.acquireClearance(c.client, []vfs.Datum{{Kind: vfs.DirBinding, Node: parentAttr.ID}}, tc, func() error {
		// The namespace is master-only (DESIGN.md §9); the bytes
		// replicate to a quorum before the local apply, exactly as a
		// client write would — and the name appears with its bytes in
		// one atomic step. A Create-then-WriteFile pair would expose an
		// empty file that a concurrent read could lease and cache, a
		// stale read the chaos shard-split scenario catches.
		if rerr := s.replicatePath(newPath, st.data, tc); rerr != nil {
			return rerr
		}
		_, cerr := s.store.CreateWith(newPath, st.owner, st.perm, st.data)
		return cerr
	})
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	if s.obs.Enabled() {
		s.obs.Record(obs.Event{Type: obs.EvShardCommit, Client: string(c.client)})
	}
	c.reply(f.ReqID, proto.TOK, nil)
}

// handleShardAbort discards a staged transfer (source-side failure
// before its commit point).
func (c *serverConn) handleShardAbort(f proto.Frame) {
	s := c.srv
	dec := proto.NewDec(f.Payload)
	epoch := dec.U64()
	newPath := dec.Str()
	if dec.Err != nil {
		c.fail(f.ReqID, dec.Err)
		return
	}
	s.stagedMu.Lock()
	if st, ok := s.staged[newPath]; ok && st.epoch == epoch {
		delete(s.staged, newPath)
	}
	s.stagedMu.Unlock()
	if s.obs.Enabled() {
		s.obs.Record(obs.Event{Type: obs.EvShardAbort, Client: string(c.client)})
	}
	c.reply(f.ReqID, proto.TOK, nil)
}

// crossShardRename runs the source half of the two-phase protocol for
// a rename whose destination hashes to another group:
//
//  1. prepare-on-destination: the destination master clears the
//     destination parent binding per §2 and stages the file invisibly;
//  2. commit-on-source: this master obtains §2 clearance over the old
//     parent binding AND the file's data (cross-shard moves change the
//     node identity, so cached copies must invalidate), then removes
//     the file — the protocol's commit point;
//  3. commit-on-destination: the staged file becomes visible.
//
// Both remote phases fence on the ring epoch. A failure before step 2
// aborts the staged entry (best-effort; it ages out regardless). A
// failure after step 2 is reported to the client: the file has left
// this shard and the destination holds the only staged copy, which a
// retried commit — or the operator — can surface; shrinking that
// window is the rebalance follow-on in ROADMAP item 3.
func (c *serverConn) crossShardRename(f proto.Frame, tc tracing.Context, oldPath, newPath string, destGroup int) {
	s := c.srv
	ring := s.cfg.Shard.Ring
	g, ok := ring.Group(destGroup)
	if !ok || len(g.Replicas) == 0 {
		c.fail(f.ReqID, fmt.Errorf("shard: no replicas for group %d", destGroup))
		return
	}
	attr, err := s.store.Lookup(oldPath)
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	if attr.IsDir {
		c.fail(f.ReqID, fmt.Errorf("shard: cross-shard directory rename unsupported"))
		return
	}
	if err := s.store.CheckAccess(attr.ID, string(c.client), true); err != nil {
		c.fail(f.ReqID, err)
		return
	}
	data, _, err := s.store.ReadFile(attr.ID)
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}
	oldParent, err := s.store.Lookup(parentOf(oldPath))
	if err != nil {
		c.fail(f.ReqID, err)
		return
	}

	peer, err := dialGroupMaster(g, s.clk.Now)
	if err != nil {
		c.fail(f.ReqID, fmt.Errorf("shard: reaching group %d: %v", destGroup, err))
		return
	}
	defer peer.close()

	sp := s.tracer.StartChild(tc, "shard.prepare")
	err = peer.call(proto.TShardPrepare, func(e *proto.Enc) {
		e.U64(ring.Epoch).Str(newPath).Str(attr.Owner).U8(uint8(attr.Perm)).Blob(data)
	}, proto.TShardPrepareRep)
	sp.End()
	if err != nil {
		c.fail(f.ReqID, fmt.Errorf("shard: prepare on group %d: %v", destGroup, err))
		return
	}

	// Commit point: clearance over the old binding and the file data
	// (§2 — every cached copy approves or expires), then the removal.
	clear := []vfs.Datum{
		{Kind: vfs.FileData, Node: attr.ID},
		{Kind: vfs.DirBinding, Node: oldParent.ID},
	}
	err = s.acquireClearance(c.client, clear, tc, func() error {
		_, rerr := s.store.Remove(oldPath)
		return rerr
	})
	if err != nil {
		// Not yet committed: discard the staged copy (best-effort — it
		// expires on its own if the abort is lost).
		peer.call(proto.TShardAbort, func(e *proto.Enc) {
			e.U64(ring.Epoch).Str(newPath)
		}, proto.TOK)
		c.fail(f.ReqID, err)
		return
	}
	if s.obs.Enabled() {
		s.obs.Record(obs.Event{Type: obs.EvShardCommit, Client: string(c.client),
			Datum: vfs.Datum{Kind: vfs.FileData, Node: attr.ID}})
	}

	sp = s.tracer.StartChild(tc, "shard.commit")
	err = peer.call(proto.TShardCommit, func(e *proto.Enc) {
		e.U64(ring.Epoch).Str(newPath)
	}, proto.TOK)
	sp.End()
	if err != nil {
		c.fail(f.ReqID, fmt.Errorf("shard: committed locally but destination commit failed: %v", err))
		return
	}
	c.reply(f.ReqID, proto.TOK, nil)
}

// shardPeer is a minimal synchronous client for master-to-master
// shard calls: one connection, one outstanding request, NOT_MASTER
// steering at dial time.
type shardPeer struct {
	nc    net.Conn
	reqID uint64
}

// shardCallTimeout bounds each shard call (the destination's prepare
// may legitimately defer for a full lease term waiting out holders).
const shardCallTimeout = 45 * time.Second

// dialGroupMaster connects to the group's master, following TNotMaster
// hints the way a client's failover logic does, with a bounded number
// of redials.
func dialGroupMaster(g shard.Group, now func() time.Time) (*shardPeer, error) {
	idx := 0
	var lastErr error
	for attempt := 0; attempt < 3*len(g.Replicas); attempt++ {
		addr := g.Replicas[idx%len(g.Replicas)]
		nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			lastErr = err
			idx++
			continue
		}
		nc.SetDeadline(now().Add(shardCallTimeout))
		var e proto.Enc
		e.Str(fmt.Sprintf("shard-xfer:%s", nc.LocalAddr())).U64(proto.FeatShard)
		if err := proto.WriteFrame(nc, proto.Frame{Type: proto.THello, ReqID: 1, Payload: e.Bytes()}); err != nil {
			nc.Close()
			lastErr = err
			idx++
			continue
		}
		rep, err := proto.ReadFrame(nc)
		if err != nil {
			nc.Close()
			lastErr = err
			idx++
			continue
		}
		switch rep.Type {
		case proto.THelloAck:
			rep.Recycle()
			nc.SetDeadline(time.Time{})
			return &shardPeer{nc: nc, reqID: 1}, nil
		case proto.TNotMaster:
			hint := proto.NewDec(rep.Payload).I64()
			rep.Recycle()
			nc.Close()
			if hint >= 0 && int(hint) < len(g.Replicas) {
				idx = int(hint)
			} else {
				idx++
			}
			lastErr = fmt.Errorf("replica %s is not master", addr)
			// The master may still be electing; brief pause before
			// the next attempt.
			time.Sleep(200 * time.Millisecond)
		default:
			rep.Recycle()
			nc.Close()
			lastErr = fmt.Errorf("unexpected hello reply %v from %s", rep.Type, addr)
			idx++
		}
	}
	return nil, lastErr
}

// call sends one request and waits for its reply, skipping unsolicited
// pushes. A TError reply surfaces as an error; any other type than
// want fails.
func (p *shardPeer) call(t proto.MsgType, fill func(*proto.Enc), want proto.MsgType) error {
	p.reqID++
	id := p.reqID
	var e proto.Enc
	fill(&e)
	p.nc.SetDeadline(time.Now().Add(shardCallTimeout))
	defer p.nc.SetDeadline(time.Time{})
	if err := proto.WriteFrame(p.nc, proto.Frame{Type: t, ReqID: id, Payload: e.Bytes()}); err != nil {
		return err
	}
	for {
		rep, err := proto.ReadFrame(p.nc)
		if err != nil {
			return err
		}
		if rep.ReqID != id {
			rep.Recycle() // piggybacked push or stale frame
			continue
		}
		defer rep.Recycle()
		switch rep.Type {
		case want:
			return nil
		case proto.TError:
			return fmt.Errorf("%s", proto.NewDec(rep.Payload).Str())
		default:
			return fmt.Errorf("unexpected reply type %v", rep.Type)
		}
	}
}

func (p *shardPeer) close() { p.nc.Close() }
