package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"leases/internal/core"
	"leases/internal/obs"
	"leases/internal/obs/tracing"
	"leases/internal/proto"
)

// Tracer returns the server's tracer (nil when tracing is disabled).
func (s *Server) Tracer() *tracing.Tracer { return s.tracer }

// Obs returns the server's observer (nil when instrumentation is
// disabled).
func (s *Server) Obs() *obs.Observer { return s.obs }

// ShardMetrics returns the lease manager's event counters per shard.
func (s *Server) ShardMetrics() []core.ManagerMetrics { return s.lm.ShardMetrics() }

// MetricsSnapshot gathers everything the admin plane exports: manager
// counters (total and per shard), the live lease-record count, and —
// when an observer is attached — event totals and per-op latency
// histograms.
func (s *Server) MetricsSnapshot() obs.MetricsSnapshot {
	snap := obs.MetricsSnapshot{
		Manager:    s.lm.Metrics(),
		Shards:     s.lm.ShardMetrics(),
		LeaseCount: s.lm.LeaseCount(),
	}
	if s.obs.Enabled() {
		snap.Events = s.obs.EventCounts()
		snap.Ops = s.obs.OpLatencies()
		snap.FlushFrames, snap.FlushBytes = s.obs.FlushStats()
	}
	if role, master, _, ok := s.ReplicaInfo(); ok {
		snap.ReplicaRole = role
		snap.ReplicaMaster = master
	}
	if ring := s.cfg.Shard.Ring; ring != nil {
		snap.ShardRingEpoch = ring.Epoch
		snap.ShardGroup = s.cfg.Shard.GroupID
	}
	snap.Wire = WireTraffic(s.wire)
	return snap
}

// WireTraffic converts a proto.WireStats snapshot into the obs
// exposition rows, merging types that share a name (request and reply
// pairs print under one label; a row's direction keeps them distinct
// in the common case).
func WireTraffic(ws *proto.WireStats) []obs.WireTraffic {
	rows := ws.Snapshot()
	if len(rows) == 0 {
		return nil
	}
	out := make([]obs.WireTraffic, 0, len(rows))
	index := make(map[[2]string]int, len(rows))
	for _, r := range rows {
		key := [2]string{r.Type.String(), r.Dir}
		if i, ok := index[key]; ok {
			out[i].Frames += r.Frames
			out[i].Bytes += r.Bytes
			continue
		}
		index[key] = len(out)
		out = append(out, obs.WireTraffic{Type: key[0], Dir: r.Dir, Frames: r.Frames, Bytes: r.Bytes})
	}
	return out
}

// leaseRecord is one /leases entry.
type leaseRecord struct {
	Client string    `json:"client"`
	Kind   string    `json:"kind"`
	Node   uint64    `json:"node"`
	Expiry time.Time `json:"expiry"`
}

// AdminHandler returns the HTTP admin/metrics plane:
//
//	/metrics        Prometheus text exposition (counters, per-shard
//	                counters, event totals, per-op latency histograms)
//	/healthz        liveness probe
//	/leases         JSON dump of the current lease table (Snapshot)
//	/traces         recently completed trace segments (?n= caps count)
//	/traces/slow    slowest-N traces with per-span breakdown, plus one
//	                exemplar trace per populated latency bucket
//	/debug/pprof/   the standard Go profiling endpoints
//
// Serve it on a side listener (leasesrv -metrics-addr), never on the
// protocol port.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Replicated servers report their role so probes can tell the
		// master apart; a bare "ok" means standalone, preserving the old
		// contract for existing probes.
		// A sharded server appends its ring epoch and group so probes can
		// watch an epoch rollout converge across the fleet.
		shardSuffix := ""
		if ring := s.cfg.Shard.Ring; ring != nil {
			shardSuffix = fmt.Sprintf(" ring_epoch=%d group=%d", ring.Epoch, s.cfg.Shard.GroupID)
		}
		if role, master, expiry, ok := s.ReplicaInfo(); ok {
			fmt.Fprintf(w, "ok role=%s master=%d", role, master)
			if !expiry.IsZero() {
				fmt.Fprintf(w, " master_lease_expiry=%s", expiry.Format(time.RFC3339Nano))
			}
			fmt.Fprintf(w, "%s\n", shardSuffix)
			return
		}
		fmt.Fprintf(w, "ok%s\n", shardSuffix)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := s.MetricsSnapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WriteProm(w, &snap)
	})
	mux.HandleFunc("/leases", func(w http.ResponseWriter, r *http.Request) {
		now := s.clk.Now()
		records := s.Snapshot()
		out := struct {
			Now time.Time `json:"now"`
			// Replication fields; absent on a standalone server.
			Role              string        `json:"replica_role,omitempty"`
			Master            *int          `json:"replica_master,omitempty"`
			MasterLeaseExpiry *time.Time    `json:"master_lease_expiry,omitempty"`
			Count             int           `json:"count"`
			Leases            []leaseRecord `json:"leases"`
		}{Now: now, Count: len(records), Leases: make([]leaseRecord, 0, len(records))}
		if role, master, expiry, ok := s.ReplicaInfo(); ok {
			out.Role = role
			out.Master = &master
			if !expiry.IsZero() {
				out.MasterLeaseExpiry = &expiry
			}
		}
		for _, r := range records {
			out.Leases = append(out.Leases, leaseRecord{
				Client: string(r.Client),
				Kind:   r.Datum.Kind.String(),
				Node:   uint64(r.Datum.Node),
				Expiry: r.Expiry,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		out := struct {
			Enabled bool             `json:"enabled"`
			Active  int              `json:"active"`
			Traces  []*tracing.Trace `json:"traces"`
		}{Enabled: s.tracer.Enabled()}
		if s.tracer.Enabled() {
			out.Active = s.tracer.ActiveCount()
			out.Traces = s.tracer.Recent(n)
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/traces/slow", func(w http.ResponseWriter, r *http.Request) {
		n, _ := strconv.Atoi(r.URL.Query().Get("n"))
		out := struct {
			Enabled   bool               `json:"enabled"`
			Slowest   []slowTrace        `json:"slowest"`
			Exemplars []tracing.Exemplar `json:"exemplars,omitempty"`
		}{Enabled: s.tracer.Enabled()}
		if s.tracer.Enabled() {
			for _, tr := range s.tracer.Slowest(n) {
				out.Slowest = append(out.Slowest, newSlowTrace(tr))
			}
			out.Exemplars = s.tracer.Exemplars()
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/classes", func(w http.ResponseWriter, r *http.Request) {
		info, ok := s.ClassSnapshot()
		out := struct {
			Enabled bool `json:"enabled"`
			ClassInfo
		}{Enabled: ok, ClassInfo: info}
		writeJSON(w, out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// slowTrace is one /traces/slow entry: a completed trace with a
// per-span latency breakdown so a slow write decomposes into its
// approval pushes, replica ships, and apply without reading raw spans.
type slowTrace struct {
	Trace    tracing.TraceID `json:"trace"`
	Op       string          `json:"op"`
	Node     string          `json:"node,omitempty"`
	Start    time.Time       `json:"start"`
	Duration time.Duration   `json:"duration_ns"`
	Spans    []slowSpan      `json:"spans"`
}

type slowSpan struct {
	Name     string        `json:"name"`
	Node     string        `json:"node,omitempty"`
	Note     string        `json:"note,omitempty"`
	Duration time.Duration `json:"duration_ns"`
	// Share is the span's fraction of the root duration — the quick
	// read of where a slow request actually spent its time.
	Share float64 `json:"share"`
}

func newSlowTrace(tr *tracing.Trace) slowTrace {
	st := slowTrace{
		Trace: tr.ID, Op: tr.Op, Node: tr.Node,
		Start: tr.Start, Duration: tr.Duration,
		Spans: make([]slowSpan, 0, len(tr.Spans)),
	}
	for _, sp := range tr.Spans {
		share := 0.0
		if tr.Duration > 0 {
			share = float64(sp.Duration()) / float64(tr.Duration)
		}
		st.Spans = append(st.Spans, slowSpan{
			Name: sp.Name, Node: sp.Node, Note: sp.Note,
			Duration: sp.Duration(), Share: share,
		})
	}
	return st
}
