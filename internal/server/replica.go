package server

import (
	"errors"
	"fmt"
	"time"

	"leases/internal/obs/tracing"
	"leases/internal/vfs"
)

// Replica abstracts the replication runtime (internal/replica.Node)
// behind plain types, so the server package does not import the
// election machinery: cmd/leasesrv adapts a replica.Node to this
// interface when wiring a replicated deployment. A nil Replica in
// Config is the standalone server, byte-for-byte the old behavior.
//
// The contract the server relies on:
//
//   - Only one replica's IsMaster returns true at any instant (the
//     PaxosLease master lease, margined by the allowance so it holds
//     even across clock drift within the ε budget).
//   - ReplicateWrite returns nil only once a quorum of replicas
//     (counting this one) holds the write.
//   - ReplicateMaxTerm returns nil only once a quorum knows the term.
type Replica interface {
	// IsMaster reports whether this replica currently holds the master
	// lease on its own clock.
	IsMaster() bool
	// MasterIndex is this replica's belief about who the master is
	// (-1 when unknown). It is the redirect hint a refused hello
	// carries.
	MasterIndex() int
	// Role names the current role ("master", "candidate", "follower")
	// for the admin plane.
	Role() string
	// MasterExpiry is when this replica's master lease lapses on its
	// own clock (zero when not master).
	MasterExpiry() time.Time
	// ReplicateWrite pushes one committed file write to a quorum. tc
	// is the causing request's trace context: a sampled write's
	// per-peer ships record child spans under it (the zero context —
	// untraced — costs nothing).
	ReplicateWrite(tc tracing.Context, path string, seq uint64, data []byte) error
	// ReplicateMaxTerm pushes a new maximum granted term to a quorum.
	ReplicateMaxTerm(d time.Duration) error
}

// ReplFile is one replicated file's state, as exchanged during a new
// master's catch-up sync.
type ReplFile struct {
	Path string
	Seq  uint64
	Data []byte
}

// errNotMaster rejects a write reaching a replica that lost (or never
// held) the master lease; clients treat it like a severed session and
// redial toward the master.
var errNotMaster = errors.New("server: not master")

// floor reads the persisted maximum without touching durable.go's
// update path.
func (f *maxTermFile) floor() time.Duration {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// replicateFile pushes a committed write to a quorum of peers BEFORE it
// is applied to the local store (replicate-before-apply). The ordering
// matters: a reader at the master only ever sees data a quorum already
// holds, so a master crash immediately after the read can never roll
// the write back under a failover — the new master's catch-up sync
// intersects every write quorum and recovers it.
func (s *Server) replicateFile(node vfs.NodeID, data []byte, tc tracing.Context) error {
	if s.cfg.Replica == nil {
		return nil
	}
	path, err := s.store.Path(node)
	if err != nil {
		return err
	}
	return s.replicatePath(path, data, tc)
}

// replicatePath is replicateFile keyed by path instead of node: the
// destination half of a cross-shard rename replicates the incoming
// bytes BEFORE the path exists locally, so the quorum holds them before
// any reader at this master can observe the new name at all.
func (s *Server) replicatePath(path string, data []byte, tc tracing.Context) error {
	r := s.cfg.Replica
	if r == nil {
		return nil
	}
	if !r.IsMaster() || !s.serving() {
		return errNotMaster
	}
	s.replMu.Lock()
	seq := s.replSeq[path] + 1
	s.replSeq[path] = seq
	s.replMu.Unlock()
	if o := s.obs; o.Enabled() {
		// The quorum wait is the replication tax every write pays
		// before it may apply — the /metrics histogram an operator
		// reads next to the per-peer ship latencies (internal/replica).
		start := s.clk.Now()
		err := r.ReplicateWrite(tc, path, seq, data)
		o.ObserveOp("repl-quorum-wait", s.clk.Now().Sub(start))
		return err
	}
	return r.ReplicateWrite(tc, path, seq, data)
}

// replicateTermRaise mirrors maxTermFile.update at the replication
// layer: before a grant whose term exceeds every quorum-acknowledged
// maximum reaches a client, the new maximum is pushed to a quorum, so
// a failing-over master reconstructs the §2 recovery window without
// this replica's disk. Raises are monotonic and rare (once per policy
// change under a fixed-term policy), so the steady-state cost is one
// mutex'd comparison.
func (s *Server) replicateTermRaise(term time.Duration) error {
	r := s.cfg.Replica
	if r == nil {
		return nil
	}
	s.replMu.Lock()
	known := s.replTerm
	s.replMu.Unlock()
	if term <= known {
		return nil
	}
	if o := s.obs; o.Enabled() {
		start := s.clk.Now()
		err := r.ReplicateMaxTerm(term)
		o.ObserveOp("repl-term-quorum-wait", s.clk.Now().Sub(start))
		if err != nil {
			return err
		}
	} else if err := r.ReplicateMaxTerm(term); err != nil {
		return err
	}
	s.replMu.Lock()
	if term > s.replTerm {
		s.replTerm = term
	}
	s.replMu.Unlock()
	return nil
}

// ApplyReplicated installs one replicated write pushed by the master
// (or merged during promotion), reporting whether it was actually
// applied. Stale sequence numbers — retries, reordered pushes, sync
// entries older than what this replica already holds — are dropped
// with applied=false; the distinction matters because the master must
// not count a stale drop toward its replication quorum (a drop means
// this replica does NOT hold those bytes). An unknown path is created
// first: the namespace itself is master-only (DESIGN.md §9), so a file
// body can arrive for a path the follower has never seen. The created
// file is world-writable because the real owner/permission record
// lives at the master; after a promotion the §2 recovery window — not
// permissions — is what protects these bytes.
func (s *Server) ApplyReplicated(path string, seq uint64, data []byte) (applied bool, err error) {
	s.replMu.Lock()
	if seq <= s.replSeq[path] {
		s.replMu.Unlock()
		return false, nil
	}
	s.replSeq[path] = seq
	if path == classStatePath {
		// Class membership replicates under a reserved key that never
		// touches the store; a promotion rebinds it to local node IDs.
		s.classRepl = append([]byte(nil), data...)
		s.replMu.Unlock()
		return true, nil
	}
	s.replMu.Unlock()
	attr, err := s.store.Lookup(path)
	if err != nil {
		attr, err = s.store.Create(path, s.cfg.Owner, vfs.DefaultPerm|vfs.WorldWrite)
		if err != nil {
			return false, err
		}
	}
	_, _, err = s.store.WriteFile(attr.ID, data)
	if err != nil {
		return false, err
	}
	return true, nil
}

// ReplState dumps every file's replicated state, answering a new
// master's catch-up sync. Files that predate replication (seeded
// fixtures, identical on every replica by construction) report
// sequence zero and lose every merge, which is correct: nothing newer
// exists anywhere.
func (s *Server) ReplState() []ReplFile {
	root, err := s.store.Lookup("/")
	if err != nil {
		return nil
	}
	var out []ReplFile
	s.store.Walk(root.ID, func(path string, a vfs.Attr) error {
		if a.IsDir || path == classStatePath {
			return nil
		}
		data, _, rerr := s.store.ReadFile(a.ID)
		if rerr != nil {
			return nil
		}
		s.replMu.Lock()
		seq := s.replSeq[path]
		s.replMu.Unlock()
		out = append(out, ReplFile{Path: path, Seq: seq, Data: data})
		return nil
	})
	// The class-membership image rides the same sync under its reserved
	// key, so a new master inherits the installed set (traffic
	// continuity; safety never depends on it).
	s.replMu.Lock()
	if len(s.classRepl) > 0 {
		out = append(out, ReplFile{Path: classStatePath, Seq: s.replSeq[classStatePath], Data: s.classRepl})
	}
	s.replMu.Unlock()
	return out
}

// PersistMaxTerm records a master's replicated term raise: the floor a
// future promotion on this replica must wait out. When this replica
// keeps its own durable max-term file the raise is persisted there
// too, so even a restart-then-promote sequence observes it.
func (s *Server) PersistMaxTerm(d time.Duration) error {
	s.replMu.Lock()
	if d > s.replTerm {
		s.replTerm = d
	}
	s.replMu.Unlock()
	if s.maxTermF != nil {
		return s.maxTermF.update(d)
	}
	return nil
}

// Promote applies the catch-up state synced from a quorum of peers and
// opens the §2 recovery window. files pass through ApplyReplicated's
// sequence guard, which IS the merge with this replica's own state:
// self plus quorum-1 peers form a quorum, every write quorum
// intersects it, and per-path max-seq wins. termFloor is the quorum's
// merged max-term floor; the window is the worst lease any previous
// master could have granted — the max of that floor, this replica's
// own replicated/persisted floors, and (as a belt for unsynced legacy
// state) the configured term when any lease evidence exists — so
// every outstanding lease has provably expired before this replica
// clears its first write. A cluster that never granted a lease has
// all-zero floors and serves immediately.
// Serving opens only here: serveOK flips true in the same critical
// section that arms the window, so no session or write can slip in
// between the election win and the merged state (hellos and clearance
// both check serving()).
// tc is the failover's trace context (the election trace from
// internal/replica); when sampled, the promotion records a span and
// the armed recovery window gets its own span ending when the window
// elapses, so a failover trace shows exactly how long §2 held writes.
func (s *Server) Promote(tc tracing.Context, files []ReplFile, termFloor time.Duration) {
	sp := s.tracer.StartChild(tc, "failover.promote")
	for _, f := range files {
		s.ApplyReplicated(f.Path, f.Seq, f.Data)
	}
	// Rebind the inherited installed class to this replica's node IDs
	// and bump its generation so every client refetches.
	s.rebindClassState()
	window := termFloor
	if p := s.maxTermF.floor(); p > window {
		window = p
	}
	s.replMu.Lock()
	if s.replTerm > window {
		window = s.replTerm
	}
	s.recoverUntil = s.clk.Now().Add(window)
	s.serveOK = true
	s.replMu.Unlock()
	if sp.Recording() {
		sp.EndNote(fmt.Sprintf("files=%d window=%s", len(files), window))
		if window > 0 {
			winSp := s.tracer.StartChild(tc, "recovery.window")
			fire, stopTimer := s.clk.After(window)
			go func() {
				select {
				case <-fire:
					winSp.End()
				case <-s.stopped:
					stopTimer()
					winSp.EndNote("shutdown")
				}
			}()
		}
	} else {
		sp.End()
	}
}

// ReplTermFloor is the largest lease term this replica knows
// replicated or persisted — its contribution to a new master's
// recovery window.
func (s *Server) ReplTermFloor() time.Duration {
	s.replMu.Lock()
	floor := s.replTerm
	s.replMu.Unlock()
	if p := s.maxTermF.floor(); p > floor {
		floor = p
	}
	return floor
}

// Demote closes the serving gate and severs every client connection so
// their sessions redial and discover the new master; the hello path
// then refuses them here. The listener stays up (this replica may be
// promoted again — through a fresh Promote, which reopens the gate)
// and lease records are left to expire on their own — the successor's
// recovery window already covers them. The gate closes BEFORE the
// sever so no hello admitted concurrently can land after its conn was
// missed by the sweep.
func (s *Server) Demote() {
	s.replMu.Lock()
	s.serveOK = false
	s.replMu.Unlock()
	s.connMu.Lock()
	for nc := range s.raw {
		nc.Close()
	}
	s.connMu.Unlock()
}

// serving reports whether this replica may accept sessions and clear
// writes: always on a standalone server; on a replicated one only
// between a completed Promote (catch-up state merged, §2 recovery
// window armed) and the next Demote. IsMaster alone is NOT sufficient
// — it turns true at the election win, before the promotion sync has
// merged quorum state.
func (s *Server) serving() bool {
	if s.cfg.Replica == nil {
		return true
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.serveOK
}

// ReplicaInfo reports the replication role for the admin plane; ok is
// false on a standalone server.
func (s *Server) ReplicaInfo() (role string, master int, expiry time.Time, ok bool) {
	r := s.cfg.Replica
	if r == nil {
		return "", -1, time.Time{}, false
	}
	return r.Role(), r.MasterIndex(), r.MasterExpiry(), true
}

// awaitRecoverWindow holds a write while a freshly promoted master is
// inside its §2 recovery window, and rejects it outright on a replica
// that is not master or not yet promoted (a demotion — or a request
// racing the asynchronous promotion sync — can reach here past the
// hello gate). Standalone servers pass straight through — their boot
// recovery window lives in the lease manager, unchanged.
func (s *Server) awaitRecoverWindow() error {
	r := s.cfg.Replica
	if r == nil {
		return nil
	}
	for {
		if !r.IsMaster() || !s.serving() {
			return errNotMaster
		}
		s.replMu.Lock()
		until := s.recoverUntil
		s.replMu.Unlock()
		d := until.Sub(s.clk.Now())
		if d <= 0 {
			return nil
		}
		fire, stopTimer := s.clk.After(d)
		select {
		case <-fire:
		case <-s.stopped:
			stopTimer()
			return errShutdown
		}
	}
}
